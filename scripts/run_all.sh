#!/usr/bin/env bash
# Regenerate every paper table/figure. Results land in results/.
# LDIS_INSTRUCTIONS controls run length (default 100M here; the
# paper used 250M).
set -u
cd "$(dirname "$0")/.."
BUILD=${BUILD:-build}
OUT=${OUT:-results}
N=${LDIS_INSTRUCTIONS:-100000000}
mkdir -p "$OUT"

run() {
    local bin=$1 n=$2
    echo "=== $bin (${n} instructions) ==="
    LDIS_INSTRUCTIONS=$n "./$BUILD/bench/$bin" | tee "$OUT/$bin.txt"
}

run table2_benchmarks "$N"
run fig01_words_used "$N"
run fig02_recency "$N"
run fig06_mpki "$N"
run fig07_hitmiss "$N"
run fig08_capacity "$N"
# The execution-driven model is ~5x slower per instruction.
run fig09_ipc "$((N / 2))"
run table3_overhead "$N"
run fig10_compressibility "$N"
run fig11_fac "$N"
run fig13_sfp "$N"
# Mix cells simulate members x the per-member length.
run mix_mpki "$((N / 2))"
run table5_insensitive "$((N / 2))"
run table6_words_vs_size "$((N / 2))"
run abl_distill_design "$((N / 5))"
run abl_linesize "$((N / 5))"
run abl_compression "$((N / 5))"
run abl_prefetch "$((N / 5))"
run abl_wrongpath "$((N / 10))"
