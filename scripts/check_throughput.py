#!/usr/bin/env python3
"""Gate simulator throughput against a checked-in baseline.

Compares items_per_second of selected benchmarks in a
google-benchmark JSON report (scripts/bench_throughput.sh output)
against bench/throughput_baseline.json and fails when any gated
benchmark regressed by more than the allowed percentage.

Usage:
    check_throughput.py CURRENT.json BASELINE.json \
        [--max-regression PCT] [--benchmark NAME ...]

The baseline may be either a full google-benchmark report or a plain
{"BM_Name": items_per_second, ...} map. Absolute throughput varies
across machines; the default 25% budget absorbs runner noise, and CI
exposes the threshold as a workflow input for slower hosts.

All failure modes (missing file, malformed JSON, wrong schema) exit
with a one-line "error: ..." message rather than a traceback.
"""

import argparse
import json
import sys


class ReportError(Exception):
    """A report file could not be loaded or parsed."""


def items_per_second(doc, origin):
    """Benchmark-name -> items/s from either accepted schema."""
    if isinstance(doc, dict) and "benchmarks" in doc:
        doc = doc["benchmarks"]
        if not isinstance(doc, list):
            raise ReportError(
                f"{origin}: 'benchmarks' is not a list"
            )
        out = {}
        for b in doc:
            if not isinstance(b, dict) or "name" not in b:
                raise ReportError(
                    f"{origin}: benchmark entry without a name"
                )
            if "items_per_second" not in b:
                continue
            try:
                out[b["name"]] = float(b["items_per_second"])
            except (TypeError, ValueError):
                raise ReportError(
                    f"{origin}: non-numeric items_per_second "
                    f"for {b['name']}"
                ) from None
        return out
    if not isinstance(doc, dict):
        raise ReportError(
            f"{origin}: expected a JSON object, got "
            f"{type(doc).__name__}"
        )
    try:
        return {name: float(v) for name, v in doc.items()}
    except (TypeError, ValueError):
        raise ReportError(
            f"{origin}: values must be numeric items/s"
        ) from None


def load_report(path):
    """Parse @p path into a name -> items/s map (or ReportError)."""
    try:
        with open(path) as f:
            doc = json.load(f)
    except OSError as e:
        raise ReportError(f"{path}: {e.strerror}") from None
    except json.JSONDecodeError as e:
        raise ReportError(f"{path}: invalid JSON ({e})") from None
    return items_per_second(doc, path)


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("current", help="fresh benchmark JSON report")
    ap.add_argument("baseline", help="checked-in baseline JSON")
    ap.add_argument(
        "--max-regression",
        type=float,
        default=25.0,
        metavar="PCT",
        help="maximum tolerated items/s drop in percent (default 25)",
    )
    ap.add_argument(
        "--benchmark",
        action="append",
        default=None,
        metavar="NAME",
        help="benchmark(s) to gate (default: BM_DistillCache, "
        "BM_TraditionalL2, BM_FacCache and the BM_GangReplay "
        "lane sweep)",
    )
    args = ap.parse_args()
    gated = args.benchmark or [
        "BM_DistillCache",
        "BM_TraditionalL2",
        "BM_FacCache",
        "BM_GangReplay/1/real_time",
        "BM_GangReplay/2/real_time",
        "BM_GangReplay/4/real_time",
    ]

    try:
        current = load_report(args.current)
        baseline = load_report(args.baseline)
    except ReportError as e:
        print(f"error: {e}")
        return 1

    failed = False
    for name in gated:
        if name not in baseline:
            print(f"error: {name} missing from baseline")
            failed = True
            continue
        if name not in current:
            print(f"error: {name} missing from current report")
            failed = True
            continue
        base = baseline[name]
        cur = current[name]
        if base <= 0.0:
            print(f"error: {name} baseline is not positive")
            failed = True
            continue
        delta = 100.0 * (cur - base) / base
        verdict = "ok"
        if delta < -args.max_regression:
            verdict = f"FAIL (budget {args.max_regression:.0f}%)"
            failed = True
        print(
            f"{name}: {cur / 1e6:.2f}M items/s vs baseline "
            f"{base / 1e6:.2f}M ({delta:+.1f}%) {verdict}"
        )

    # Every baseline benchmark must exist in the current report,
    # gated or not: a benchmark that silently vanished (renamed,
    # dropped from the suite, crashed before registering) would
    # otherwise pass the gate forever.
    for name in sorted(baseline):
        if name not in current:
            print(
                f"error: {name} present in baseline but missing "
                f"from current report"
            )
            failed = True

    # The inverse direction only warns: a benchmark just added to
    # the suite has no baseline entry yet and shouldn't fail the
    # gate, but it runs unprotected until the baseline is
    # refreshed, so say so.
    for name in sorted(current):
        if name not in baseline:
            print(
                f"warning: {name} present in current report but "
                f"absent from baseline (not gated)"
            )

    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
