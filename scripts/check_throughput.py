#!/usr/bin/env python3
"""Gate simulator throughput against a checked-in baseline.

Compares items_per_second of selected benchmarks in a
google-benchmark JSON report (scripts/bench_throughput.sh output)
against bench/throughput_baseline.json and fails when any gated
benchmark regressed by more than the allowed percentage.

Usage:
    check_throughput.py CURRENT.json BASELINE.json \
        [--max-regression PCT] [--benchmark NAME ...]

The baseline may be either a full google-benchmark report or a plain
{"BM_Name": items_per_second, ...} map. Absolute throughput varies
across machines; the default 25% budget absorbs runner noise, and CI
exposes the threshold as a workflow input for slower hosts.
"""

import argparse
import json
import sys


def items_per_second(doc):
    """Benchmark-name -> items/s from either accepted schema."""
    if isinstance(doc, dict) and "benchmarks" in doc:
        return {
            b["name"]: float(b["items_per_second"])
            for b in doc["benchmarks"]
            if "items_per_second" in b
        }
    return {name: float(v) for name, v in doc.items()}


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("current", help="fresh benchmark JSON report")
    ap.add_argument("baseline", help="checked-in baseline JSON")
    ap.add_argument(
        "--max-regression",
        type=float,
        default=25.0,
        metavar="PCT",
        help="maximum tolerated items/s drop in percent (default 25)",
    )
    ap.add_argument(
        "--benchmark",
        action="append",
        default=None,
        metavar="NAME",
        help="benchmark(s) to gate (default: BM_DistillCache)",
    )
    args = ap.parse_args()
    gated = args.benchmark or ["BM_DistillCache"]

    with open(args.current) as f:
        current = items_per_second(json.load(f))
    with open(args.baseline) as f:
        baseline = items_per_second(json.load(f))

    failed = False
    for name in gated:
        if name not in baseline:
            print(f"error: {name} missing from baseline")
            failed = True
            continue
        if name not in current:
            print(f"error: {name} missing from current report")
            failed = True
            continue
        base = baseline[name]
        cur = current[name]
        delta = 100.0 * (cur - base) / base
        verdict = "ok"
        if delta < -args.max_regression:
            verdict = f"FAIL (budget {args.max_regression:.0f}%)"
            failed = True
        print(
            f"{name}: {cur / 1e6:.2f}M items/s vs baseline "
            f"{base / 1e6:.2f}M ({delta:+.1f}%) {verdict}"
        )

    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
