#!/usr/bin/env bash
# One-command local sanitizer wall: build the tree with audit hooks
# compiled in, run the full tier-1 test suite under the selected
# sanitizer, then drive an audited fig06 slice through the simulator
# (the TSan leg additionally exercises the threaded RunMatrix with
# LDIS_JOBS workers and the lane-parallel gang walk with LDIS_LANES
# lane workers).
#
#   ./scripts/run_sanitizers.sh            # asan, then tsan
#   SAN=asan ./scripts/run_sanitizers.sh   # one sanitizer only
#
# Build directories (build-asan/, build-tsan/) are reused across
# invocations, so only the first run pays for a full compile.
#
# Knobs (environment):
#   SAN                sanitizers to run: "asan tsan" (default), or
#                      any subset ("asan", "tsan")
#   JOBS               parallel build/test jobs (nproc)
#   LDIS_JOBS          RunMatrix worker threads for the TSan slice (4)
#   LDIS_LANES         gang walk lane budget for the TSan slice (4)
#   LDIS_INSTRUCTIONS  run length of the fig06 slice (2000000)
#
# Every requested leg runs even when an earlier one fails: one CI
# invocation reports ALL broken sanitizers instead of hiding the TSan
# result behind an ASan failure. Per-leg status is collected and the
# script exits non-zero at the end if any leg failed.
set -u
cd "$(dirname "$0")/.."
SAN=${SAN:-"asan tsan"}
JOBS=${JOBS:-$(nproc)}
TSAN_WORKERS=${LDIS_JOBS:-4}
TSAN_LANES=${LDIS_LANES:-4}
INSTRUCTIONS=${LDIS_INSTRUCTIONS:-2000000}

run_one() {
    local kind="$1" flags="$2" build="build-$1"
    echo "== $kind: configure ($build) =="
    cmake -B "$build" -S . \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DLDIS_AUDIT=ON \
        -DCMAKE_CXX_FLAGS="$flags" \
        -DCMAKE_EXE_LINKER_FLAGS="$flags" >/dev/null
    echo "== $kind: build =="
    cmake --build "$build" -j "$JOBS"
    echo "== $kind: tier-1 tests =="
    ctest --test-dir "$build" --output-on-failure -j "$JOBS"
    if [ "$kind" = tsan ]; then
        echo "== $kind: threaded runner (LDIS_JOBS=$TSAN_WORKERS) =="
        LDIS_JOBS=$TSAN_WORKERS ctest --test-dir "$build" \
            --output-on-failure -j "$JOBS" -R Matrix
        echo "== $kind: audited fig06 slice, $TSAN_WORKERS jobs =="
        LDIS_AUDIT=1 LDIS_JOBS=$TSAN_WORKERS \
            LDIS_INSTRUCTIONS=$INSTRUCTIONS \
            "./$build/bench/fig06_mpki" >/dev/null
        echo "== $kind: lane-parallel fig06 slice" \
             "(LDIS_JOBS=1 LDIS_LANES=$TSAN_LANES) =="
        LDIS_AUDIT=1 LDIS_JOBS=1 LDIS_LANES=$TSAN_LANES \
            LDIS_INSTRUCTIONS=$INSTRUCTIONS \
            "./$build/bench/fig06_mpki" >/dev/null
    else
        echo "== $kind: audited fig06 slice =="
        LDIS_AUDIT=1 LDIS_INSTRUCTIONS=$INSTRUCTIONS \
            "./$build/bench/fig06_mpki" >/dev/null
    fi
    echo "== $kind: audited simulator run =="
    "./$build/tools/ldissim" --benchmark mcf --config ldis-mt-rc \
        --instructions "$INSTRUCTIONS" --audit \
        --audit-interval 1024 >/dev/null
    echo "== $kind: PASS =="
}

# Validate the whole selection up front so a typo fails fast rather
# than after an earlier leg's multi-minute build.
for kind in $SAN; do
    case "$kind" in
        asan|tsan) ;;
        *) echo "error: unknown sanitizer '$kind' (asan|tsan)" >&2
           exit 1 ;;
    esac
done

declare -A leg_status=()
failed=0
for kind in $SAN; do
    case "$kind" in
        asan) flags="-fsanitize=address,undefined \
-fno-sanitize-recover=all -fno-omit-frame-pointer" ;;
        tsan) flags="-fsanitize=thread" ;;
    esac
    # Subshell with -e so any failing step aborts this leg only; the
    # loop carries on to the remaining legs regardless. The status is
    # captured outside an `if` condition on purpose: bash ignores
    # `set -e` (even one set inside the subshell) for commands that
    # are part of a conditional.
    (set -e; run_one "$kind" "$flags")
    leg_rc=$?
    if [ "$leg_rc" -eq 0 ]; then
        leg_status[$kind]=PASS
    else
        leg_status[$kind]=FAIL
        failed=$((failed + 1))
        echo "== $kind: FAIL (rc=$leg_rc; continuing with remaining legs) =="
    fi
done

echo "== sanitizer summary =="
for kind in $SAN; do
    echo "  $kind: ${leg_status[$kind]}"
done
if [ "$failed" -ne 0 ]; then
    echo "run_sanitizers: $failed leg(s) failed ($SAN)"
    exit 1
fi
echo "run_sanitizers: all clean ($SAN)"
