#!/usr/bin/env bash
# Golden-pair validation of the generate-once replay engine: for
# every benchmark x config pair, `ldissim --json` must emit identical
# statistics with and without --replay (timing fields excluded —
# they measure the host, not the simulation).
#
#   ./scripts/verify_replay.sh
#
# Knobs (environment):
#   BUILD              build directory holding tools/ldissim (build)
#   LDIS_INSTRUCTIONS  run length per pair (2000000)
#   BENCHMARKS         space-separated proxy names (5 defaults)
set -eu
cd "$(dirname "$0")/.."
BUILD=${BUILD:-build}
INSTRUCTIONS=${LDIS_INSTRUCTIONS:-2000000}
BENCHMARKS=${BENCHMARKS:-"art mcf twolf vpr health"}
CONFIGS="baseline trad-1.5mb trad-2mb trad-4mb trad-32b ldis-base \
ldis-mt ldis-mt-rc ldis-4xtags cmpr fac sfp-16k sfp-64k"

BIN="./$BUILD/tools/ldissim"
if [ ! -x "$BIN" ]; then
    echo "error: $BIN not built (cmake --build $BUILD)" >&2
    exit 1
fi

strip_timing() {
    sed -E 's/"(wall_seconds|inst_per_sec)": *[0-9.eE+-]+,? *//g'
}

pairs=0
failures=0
for bench in $BENCHMARKS; do
    for config in $CONFIGS; do
        pairs=$((pairs + 1))
        direct=$("$BIN" --benchmark "$bench" --config "$config" \
            --instructions "$INSTRUCTIONS" --json | strip_timing)
        replay=$("$BIN" --benchmark "$bench" --config "$config" \
            --instructions "$INSTRUCTIONS" --replay --json \
            | strip_timing)
        if [ "$direct" != "$replay" ]; then
            failures=$((failures + 1))
            echo "MISMATCH $bench/$config"
            diff <(echo "$direct" | tr ',' '\n') \
                 <(echo "$replay" | tr ',' '\n') | head -20 || true
        else
            echo "ok $bench/$config"
        fi
    done
done

echo
if [ "$failures" -ne 0 ]; then
    echo "verify_replay: $failures of $pairs pairs MISMATCHED"
    exit 1
fi
echo "verify_replay: all $pairs pairs bit-identical"
