#!/usr/bin/env python3
"""Diff two telemetry JSONL run logs (LDIS_METRICS output).

Loads every "run" and "ipc" record from each log, keys them by
(label, benchmark, config), and reports the per-cell MPKI delta plus
the throughput (inst_per_sec) delta. Two logs of the same experiment
matrix must agree on MPKI exactly — the simulator is deterministic —
so the default budget is zero; wall-clock throughput is noisy and is
informational unless --max-throughput-drop is given.

"gang" records (schema v2 adds the walk's lane-parallelism block:
lanes, decode_wall_ms, replay_wall_ms, lane_wall_ms) are compared
informationally only — lane counts and wall-clock split legitimately
differ between an LDIS_LANES=1 and an LDIS_LANES=4 run of the same
matrix, and must never fail a bit-identity gate. v1 logs without the
block still load (lanes defaults to 1).

Usage:
    compare_runs.py BASELINE.jsonl CURRENT.jsonl \
        [--max-mpki-delta ABS] [--max-throughput-drop PCT]

Failure modes (missing file, malformed line, duplicate or missing
cells, MPKI beyond budget) print a one-line "error: ..." or FAIL
verdict and exit 1, matching check_throughput.py.
"""

import argparse
import json
import sys


class LogError(Exception):
    """A run log could not be loaded or parsed."""


def load_log(path):
    """Parse @p path into a {(label, benchmark, config): result}
    map, rejecting duplicates and unparseable lines."""
    try:
        with open(path) as f:
            lines = f.readlines()
    except OSError as e:
        raise LogError(f"{path}: {e.strerror}") from None

    out = {}
    gangs = {}
    for lineno, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            rec = json.loads(line)
        except json.JSONDecodeError as e:
            raise LogError(
                f"{path}:{lineno}: invalid JSON ({e})"
            ) from None
        if not isinstance(rec, dict):
            raise LogError(
                f"{path}:{lineno}: record is not an object"
            )
        if rec.get("kind") == "gang":
            # Timing-only record; keep the last walk per key.
            gang_key = (rec.get("label", ""),
                        rec.get("benchmark", ""))
            gangs[gang_key] = rec
            continue
        if rec.get("kind") not in ("run", "ipc"):
            continue
        result = rec.get("result")
        if not isinstance(result, dict):
            raise LogError(
                f"{path}:{lineno}: {rec['kind']} record without "
                f"a result object"
            )
        key = (
            rec.get("label", ""),
            result.get("benchmark", ""),
            result.get("config", ""),
        )
        for field in ("mpki", "inst_per_sec"):
            if not isinstance(result.get(field), (int, float)):
                raise LogError(
                    f"{path}:{lineno}: result field '{field}' is "
                    f"missing or non-numeric"
                )
        if key in out:
            raise LogError(
                f"{path}:{lineno}: duplicate record for "
                f"label='{key[0]}' benchmark='{key[1]}' "
                f"config='{key[2]}'"
            )
        out[key] = result
    if not out:
        raise LogError(f"{path}: no run records")
    return out, gangs


def gang_info(rec):
    """(lanes, wall_seconds) of a gang record, with v1 defaults."""
    lanes = rec.get("lanes", 1)
    if not isinstance(lanes, int) or lanes < 1:
        lanes = 1
    wall = rec.get("wall_seconds", 0.0)
    if not isinstance(wall, (int, float)):
        wall = 0.0
    return lanes, wall


def describe(key):
    label, benchmark, config = key
    return f"{label or benchmark or '?'} [{config}]"


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline", help="baseline JSONL run log")
    ap.add_argument("current", help="current JSONL run log")
    ap.add_argument(
        "--max-mpki-delta",
        type=float,
        default=0.0,
        metavar="ABS",
        help="maximum tolerated absolute MPKI delta per cell "
        "(default 0: identical)",
    )
    ap.add_argument(
        "--max-throughput-drop",
        type=float,
        default=None,
        metavar="PCT",
        help="fail when a cell's inst_per_sec drops by more than "
        "PCT percent (default: informational only)",
    )
    args = ap.parse_args()

    try:
        baseline, base_gangs = load_log(args.baseline)
        current, cur_gangs = load_log(args.current)
    except LogError as e:
        print(f"error: {e}")
        return 1

    failed = False
    for key in sorted(baseline.keys() | current.keys()):
        if key not in current:
            print(f"error: {describe(key)} missing from "
                  f"{args.current}")
            failed = True
            continue
        if key not in baseline:
            print(f"error: {describe(key)} missing from "
                  f"{args.baseline}")
            failed = True
            continue
        base = baseline[key]
        cur = current[key]
        mpki_delta = cur["mpki"] - base["mpki"]
        base_ips = base["inst_per_sec"]
        ips_delta = (
            100.0 * (cur["inst_per_sec"] - base_ips) / base_ips
            if base_ips > 0.0
            else 0.0
        )
        verdict = "ok"
        if abs(mpki_delta) > args.max_mpki_delta:
            verdict = (
                f"FAIL (mpki budget {args.max_mpki_delta:g})"
            )
            failed = True
        elif (
            args.max_throughput_drop is not None
            and ips_delta < -args.max_throughput_drop
        ):
            verdict = (
                f"FAIL (throughput budget "
                f"{args.max_throughput_drop:g}%)"
            )
            failed = True
        print(
            f"{describe(key)}: mpki {cur['mpki']:.4f} vs "
            f"{base['mpki']:.4f} ({mpki_delta:+.4f}), "
            f"throughput {ips_delta:+.1f}% {verdict}"
        )

    # Gang walk timing is informational: the whole point of a lane
    # sweep is that these numbers change while MPKI does not.
    for key in sorted(set(base_gangs) & set(cur_gangs)):
        base_lanes, base_wall = gang_info(base_gangs[key])
        cur_lanes, cur_wall = gang_info(cur_gangs[key])
        wall_delta = (
            100.0 * (cur_wall - base_wall) / base_wall
            if base_wall > 0.0
            else 0.0
        )
        label, benchmark = key
        print(
            f"gang {label or benchmark or '?'}: lanes "
            f"{base_lanes} -> {cur_lanes}, walk wall "
            f"{wall_delta:+.1f}% (info)"
        )

    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
