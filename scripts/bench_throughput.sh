#!/usr/bin/env bash
# Run the simulator-throughput microbench (bench/micro_throughput)
# with google-benchmark's JSON reporter and emit a machine-readable
# BENCH_throughput.json in the repo root.
#
#   BUILD=build-rel ./scripts/bench_throughput.sh
#
# Knobs (environment):
#   BUILD     build directory holding bench/micro_throughput (build)
#   OUT       output JSON path (BENCH_throughput.json)
#   MIN_TIME  --benchmark_min_time per benchmark, seconds (1)
#   FILTER    optional --benchmark_filter regex (all benchmarks)
set -eu
cd "$(dirname "$0")/.."
BUILD=${BUILD:-build}
OUT=${OUT:-BENCH_throughput.json}
MIN_TIME=${MIN_TIME:-1}
FILTER=${FILTER:-}

BIN="./$BUILD/bench/micro_throughput"
if [ ! -x "$BIN" ]; then
    echo "error: $BIN not built (cmake --build $BUILD)" >&2
    exit 1
fi

# A stray LDIS_LANES would hand the gang-replay benchmarks extra
# lane workers and make the numbers incomparable to the pinned
# baseline; the lane sweep is explicit (BM_GangReplay/<lanes>).
export LDIS_LANES=1

args=(
    "--benchmark_out=$OUT"
    --benchmark_out_format=json
    "--benchmark_min_time=$MIN_TIME"
)
if [ -n "$FILTER" ]; then
    args+=("--benchmark_filter=$FILTER")
fi

"$BIN" "${args[@]}"
echo "wrote $OUT"
