#!/usr/bin/env bash
# Negative-compile harness for the Clang thread-safety wall.
#
# Every tests/thread_safety_fixtures/ts_bad_*.cc must FAIL to compile
# under -Werror=thread-safety (each seeds one class of locking bug:
# guarded access without the lock, REQUIRES unheld, EXCLUDES held,
# lock leaked past a return). ts_good_*.cc are positive controls that
# must compile cleanly — they prove a fixture failure means "the
# analysis caught the bug", not "the harness flags are broken".
#
# Clang-only by construction: the annotation macros expand to nothing
# elsewhere, so on GCC the bad fixtures compile fine and prove
# nothing. Without a clang++ on PATH (or in $CXX) the script skips
# with exit 0 so local GCC-only checkouts stay green; the
# clang-thread-safety CI job always provides one.

set -u

root="$(cd "$(dirname "$0")/.." && pwd)"
fixture_dir="${root}/tests/thread_safety_fixtures"

cxx="${CXX:-}"
if [ -n "${cxx}" ] && ! "${cxx}" --version 2>/dev/null | grep -qi clang; then
    cxx=""
fi
if [ -z "${cxx}" ]; then
    for cand in clang++ clang++-20 clang++-19 clang++-18 clang++-17 \
                clang++-16 clang++-15 clang++-14; do
        if command -v "${cand}" >/dev/null 2>&1; then
            cxx="${cand}"
            break
        fi
    done
fi
if [ -z "${cxx}" ]; then
    echo "check_thread_safety_fixtures: no clang++ found" \
         "(set \$CXX or install clang); skipping — the annotations" \
         "are no-ops off Clang, so there is nothing to test here."
    exit 0
fi

echo "check_thread_safety_fixtures: using $(${cxx} --version | head -n 1)"

flags=(-std=c++20 -fsyntax-only -I "${root}/src"
       -Wthread-safety -Wthread-safety-beta
       -Werror=thread-safety -Werror=thread-safety-beta)

failures=0
checked=0

for f in "${fixture_dir}"/ts_bad_*.cc; do
    checked=$((checked + 1))
    if "${cxx}" "${flags[@]}" "${f}" >/dev/null 2>&1; then
        echo "FAIL  $(basename "${f}"): compiled cleanly —" \
             "the seeded locking bug was NOT caught"
        failures=$((failures + 1))
    else
        echo "ok    $(basename "${f}"): rejected as expected"
    fi
done

for f in "${fixture_dir}"/ts_good_*.cc; do
    checked=$((checked + 1))
    out="$("${cxx}" "${flags[@]}" "${f}" 2>&1)"
    if [ $? -ne 0 ]; then
        echo "FAIL  $(basename "${f}"): positive control did not compile:"
        echo "${out}" | sed 's/^/      /'
        failures=$((failures + 1))
    else
        echo "ok    $(basename "${f}"): clean compile as expected"
    fi
done

if [ "${checked}" -eq 0 ]; then
    echo "FAIL  no fixtures found under ${fixture_dir}"
    exit 1
fi

if [ "${failures}" -ne 0 ]; then
    echo "check_thread_safety_fixtures: ${failures}/${checked} fixture(s) misbehaved"
    exit 1
fi
echo "check_thread_safety_fixtures: all ${checked} fixtures behaved"
