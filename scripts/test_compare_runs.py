#!/usr/bin/env python3
"""Unit tests for scripts/compare_runs.py (stdlib only).

Run directly or via CI:

    python3 scripts/test_compare_runs.py
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

SCRIPT = os.path.join(os.path.dirname(__file__), "compare_runs.py")


def record(label, benchmark, config, mpki, ips=1e6, kind="run"):
    """One telemetry JSONL record as compare_runs.py reads it."""
    return {
        "schema": 1,
        "kind": kind,
        "experiment": "test",
        "label": label,
        "result": {
            "benchmark": benchmark,
            "config": config,
            "mpki": mpki,
            "inst_per_sec": ips,
        },
    }


def gang_record(label, benchmark, lanes, wall_seconds):
    """One schema-v2 gang walk record with the lane block."""
    return {
        "schema": 2,
        "kind": "gang",
        "experiment": "test",
        "label": label,
        "benchmark": benchmark,
        "configs": 13,
        "wall_seconds": wall_seconds,
        "lanes": lanes,
        "decode_wall_ms": 1000.0 * wall_seconds / 2,
        "replay_wall_ms": 1000.0 * wall_seconds,
        "lane_wall_ms": [1000.0 * wall_seconds / lanes] * lanes,
    }


class CompareRunsTest(unittest.TestCase):
    def setUp(self):
        self.dir = tempfile.TemporaryDirectory()
        self.addCleanup(self.dir.cleanup)

    def log(self, name, records):
        p = os.path.join(self.dir.name, name)
        with open(p, "w") as f:
            if isinstance(records, str):
                f.write(records)
            else:
                for r in records:
                    f.write(json.dumps(r) + "\n")
        return p

    def run_compare(self, baseline, current, *extra):
        return subprocess.run(
            [sys.executable, SCRIPT, baseline, current, *extra],
            capture_output=True,
            text=True,
        )

    def test_identical_logs_pass(self):
        recs = [
            record("mcf/base", "mcf", "Trad 1MB", 12.5),
            record("mcf/ldis", "mcf", "LDIS-MT-RC", 8.1),
        ]
        base = self.log("base.jsonl", recs)
        cur = self.log("cur.jsonl", recs)
        r = self.run_compare(base, cur)
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)
        self.assertIn("ok", r.stdout)

    def test_mpki_delta_fails_by_default(self):
        base = self.log(
            "base.jsonl", [record("mcf/base", "mcf", "Trad", 12.5)]
        )
        cur = self.log(
            "cur.jsonl", [record("mcf/base", "mcf", "Trad", 12.6)]
        )
        r = self.run_compare(base, cur)
        self.assertEqual(r.returncode, 1)
        self.assertIn("FAIL", r.stdout)

    def test_mpki_delta_within_budget_passes(self):
        base = self.log(
            "base.jsonl", [record("mcf/base", "mcf", "Trad", 12.5)]
        )
        cur = self.log(
            "cur.jsonl", [record("mcf/base", "mcf", "Trad", 12.6)]
        )
        r = self.run_compare(base, cur, "--max-mpki-delta", "0.2")
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)

    def test_throughput_informational_by_default(self):
        base = self.log(
            "base.jsonl",
            [record("mcf/base", "mcf", "Trad", 12.5, ips=2e6)],
        )
        cur = self.log(
            "cur.jsonl",
            [record("mcf/base", "mcf", "Trad", 12.5, ips=1e6)],
        )
        r = self.run_compare(base, cur)
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)
        self.assertIn("-50.0%", r.stdout)

    def test_throughput_budget_enforced_when_given(self):
        base = self.log(
            "base.jsonl",
            [record("mcf/base", "mcf", "Trad", 12.5, ips=2e6)],
        )
        cur = self.log(
            "cur.jsonl",
            [record("mcf/base", "mcf", "Trad", 12.5, ips=1e6)],
        )
        r = self.run_compare(
            base, cur, "--max-throughput-drop", "25"
        )
        self.assertEqual(r.returncode, 1)
        self.assertIn("FAIL", r.stdout)

    def test_missing_cell_reported_both_ways(self):
        a = record("mcf/base", "mcf", "Trad", 12.5)
        b = record("art/base", "art", "Trad", 3.2)
        base = self.log("base.jsonl", [a, b])
        cur = self.log("cur.jsonl", [a])
        r = self.run_compare(base, cur)
        self.assertEqual(r.returncode, 1)
        self.assertIn("missing from", r.stdout)

    def test_duplicate_cell_is_error(self):
        a = record("mcf/base", "mcf", "Trad", 12.5)
        base = self.log("base.jsonl", [a, a])
        cur = self.log("cur.jsonl", [a])
        r = self.run_compare(base, cur)
        self.assertEqual(r.returncode, 1)
        self.assertNotIn("Traceback", r.stdout + r.stderr)
        self.assertIn("duplicate", r.stdout)

    def test_missing_file_is_one_line_error(self):
        cur = self.log(
            "cur.jsonl", [record("mcf/base", "mcf", "Trad", 12.5)]
        )
        r = self.run_compare(
            os.path.join(self.dir.name, "nope.jsonl"), cur
        )
        self.assertEqual(r.returncode, 1)
        self.assertNotIn("Traceback", r.stdout + r.stderr)
        self.assertTrue(r.stdout.startswith("error:"), r.stdout)

    def test_invalid_line_reports_line_number(self):
        base = self.log("base.jsonl", "{broken\n")
        cur = self.log(
            "cur.jsonl", [record("mcf/base", "mcf", "Trad", 12.5)]
        )
        r = self.run_compare(base, cur)
        self.assertEqual(r.returncode, 1)
        self.assertNotIn("Traceback", r.stdout + r.stderr)
        self.assertIn(":1:", r.stdout)
        self.assertIn("invalid JSON", r.stdout)

    def test_no_run_records_is_error(self):
        base = self.log(
            "base.jsonl",
            [{"schema": 1, "kind": "matrix", "result": {}}],
        )
        cur = self.log(
            "cur.jsonl", [record("mcf/base", "mcf", "Trad", 12.5)]
        )
        r = self.run_compare(base, cur)
        self.assertEqual(r.returncode, 1)
        self.assertIn("no run records", r.stdout)

    def test_non_numeric_mpki_is_error(self):
        rec = record("mcf/base", "mcf", "Trad", 12.5)
        rec["result"]["mpki"] = "fast"
        base = self.log("base.jsonl", [rec])
        cur = self.log(
            "cur.jsonl", [record("mcf/base", "mcf", "Trad", 12.5)]
        )
        r = self.run_compare(base, cur)
        self.assertEqual(r.returncode, 1)
        self.assertNotIn("Traceback", r.stdout + r.stderr)
        self.assertIn("non-numeric", r.stdout)

    def test_gang_records_are_informational_only(self):
        # A 1-lane baseline vs a 4-lane current: wall time and lane
        # count differ wildly, MPKI does not -> still a pass.
        run = record("mcf/ldis", "mcf", "LDIS-MT-RC", 8.1)
        base = self.log(
            "base.jsonl",
            [run, gang_record("mcf/gang[13]", "mcf", 1, 10.0)],
        )
        cur = self.log(
            "cur.jsonl",
            [run, gang_record("mcf/gang[13]", "mcf", 4, 3.0)],
        )
        r = self.run_compare(base, cur)
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)
        self.assertIn("gang mcf/gang[13]: lanes 1 -> 4", r.stdout)
        self.assertIn("(info)", r.stdout)

    def test_v1_gang_records_without_lane_block_tolerated(self):
        run = record("mcf/ldis", "mcf", "LDIS-MT-RC", 8.1)
        old = {
            "schema": 1,
            "kind": "gang",
            "label": "mcf/gang[13]",
            "benchmark": "mcf",
            "wall_seconds": 10.0,
        }
        base = self.log("base.jsonl", [run, old])
        cur = self.log(
            "cur.jsonl",
            [run, gang_record("mcf/gang[13]", "mcf", 4, 5.0)],
        )
        r = self.run_compare(base, cur)
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)
        self.assertIn("lanes 1 -> 4", r.stdout)

    def test_gang_record_in_one_log_only_is_not_an_error(self):
        run = record("mcf/ldis", "mcf", "LDIS-MT-RC", 8.1)
        base = self.log("base.jsonl", [run])
        cur = self.log(
            "cur.jsonl",
            [run, gang_record("mcf/gang[13]", "mcf", 2, 4.0)],
        )
        r = self.run_compare(base, cur)
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)
        self.assertNotIn("gang mcf/gang[13]", r.stdout)

    def test_ipc_records_compared_too(self):
        recs = [
            record("mcf", "mcf", "ooo", 5.0, kind="ipc"),
        ]
        base = self.log("base.jsonl", recs)
        cur = self.log(
            "cur.jsonl",
            [record("mcf", "mcf", "ooo", 6.0, kind="ipc")],
        )
        r = self.run_compare(base, cur)
        self.assertEqual(r.returncode, 1)
        self.assertIn("FAIL", r.stdout)


if __name__ == "__main__":
    unittest.main()
