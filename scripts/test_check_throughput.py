#!/usr/bin/env python3
"""Unit tests for scripts/check_throughput.py (stdlib only).

Run directly or via CI:

    python3 scripts/test_check_throughput.py
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

SCRIPT = os.path.join(os.path.dirname(__file__),
                      "check_throughput.py")


def report(names_to_items):
    """A minimal google-benchmark JSON report."""
    return {
        "benchmarks": [
            {"name": n, "items_per_second": v}
            for n, v in names_to_items.items()
        ]
    }


class CheckThroughputTest(unittest.TestCase):
    def setUp(self):
        self.dir = tempfile.TemporaryDirectory()
        self.addCleanup(self.dir.cleanup)

    def path(self, name, content):
        p = os.path.join(self.dir.name, name)
        with open(p, "w") as f:
            if isinstance(content, str):
                f.write(content)
            else:
                json.dump(content, f)
        return p

    def run_check(self, current, baseline, *extra):
        return subprocess.run(
            [sys.executable, SCRIPT, current, baseline, *extra],
            capture_output=True,
            text=True,
        )

    def test_pass_within_budget(self):
        cur = self.path("cur.json", report({"BM_DistillCache": 9e6}))
        base = self.path("base.json", {"BM_DistillCache": 10e6})
        r = self.run_check(cur, base, "--benchmark",
                           "BM_DistillCache")
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)
        self.assertIn("ok", r.stdout)

    def test_fail_beyond_budget(self):
        cur = self.path("cur.json", report({"BM_DistillCache": 5e6}))
        base = self.path("base.json", {"BM_DistillCache": 10e6})
        r = self.run_check(cur, base, "--benchmark",
                           "BM_DistillCache")
        self.assertEqual(r.returncode, 1)
        self.assertIn("FAIL", r.stdout)

    def test_default_gates_three_models(self):
        vals = {
            "BM_DistillCache": 1e6,
            "BM_TraditionalL2": 1e6,
            "BM_FacCache": 1e6,
            "BM_GangReplay/1/real_time": 1e6,
            "BM_GangReplay/2/real_time": 1e6,
            "BM_GangReplay/4/real_time": 1e6,
        }
        cur = self.path("cur.json", report(vals))
        base = self.path("base.json", vals)
        r = self.run_check(cur, base)
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)
        for name in vals:
            self.assertIn(name, r.stdout)

    def test_missing_file_is_one_line_error(self):
        base = self.path("base.json", {"BM_DistillCache": 10e6})
        r = self.run_check(os.path.join(self.dir.name, "nope.json"),
                           base)
        self.assertEqual(r.returncode, 1)
        self.assertNotIn("Traceback", r.stdout + r.stderr)
        self.assertTrue(r.stdout.startswith("error:"), r.stdout)

    def test_invalid_json_is_one_line_error(self):
        cur = self.path("cur.json", "{not json")
        base = self.path("base.json", {"BM_DistillCache": 10e6})
        r = self.run_check(cur, base)
        self.assertEqual(r.returncode, 1)
        self.assertNotIn("Traceback", r.stdout + r.stderr)
        self.assertIn("invalid JSON", r.stdout)

    def test_wrong_schema_is_one_line_error(self):
        cur = self.path("cur.json", [1, 2, 3])
        base = self.path("base.json", {"BM_DistillCache": 10e6})
        r = self.run_check(cur, base)
        self.assertEqual(r.returncode, 1)
        self.assertNotIn("Traceback", r.stdout + r.stderr)
        self.assertIn("expected a JSON object", r.stdout)

    def test_non_numeric_value_is_one_line_error(self):
        cur = self.path("cur.json", {"BM_DistillCache": "fast"})
        base = self.path("base.json", {"BM_DistillCache": 10e6})
        r = self.run_check(cur, base)
        self.assertEqual(r.returncode, 1)
        self.assertNotIn("Traceback", r.stdout + r.stderr)
        self.assertIn("numeric", r.stdout)

    def test_zero_baseline_is_error_not_crash(self):
        cur = self.path("cur.json", {"BM_DistillCache": 1e6})
        base = self.path("base.json", {"BM_DistillCache": 0})
        r = self.run_check(cur, base, "--benchmark",
                           "BM_DistillCache")
        self.assertEqual(r.returncode, 1)
        self.assertNotIn("Traceback", r.stdout + r.stderr)
        self.assertIn("not positive", r.stdout)

    def test_missing_benchmark_reported(self):
        cur = self.path("cur.json", {"BM_Other": 1e6})
        base = self.path("base.json", {"BM_Other": 1e6})
        r = self.run_check(cur, base, "--benchmark",
                           "BM_DistillCache")
        self.assertEqual(r.returncode, 1)
        self.assertIn("missing from baseline", r.stdout)

    def test_ungated_baseline_benchmark_must_exist_in_current(self):
        # A baseline benchmark outside the gated set that vanished
        # from the current report must fail, not silently pass.
        base = self.path(
            "base.json",
            {"BM_DistillCache": 1e6, "BM_L2Replay": 1e6},
        )
        cur = self.path("cur.json", report({"BM_DistillCache": 1e6}))
        r = self.run_check(cur, base, "--benchmark",
                           "BM_DistillCache")
        self.assertEqual(r.returncode, 1)
        self.assertIn("BM_L2Replay", r.stdout)
        self.assertIn("missing from current report", r.stdout)

    def test_new_benchmark_without_baseline_warns_but_passes(self):
        # The inverse direction: a benchmark that appears in the
        # report but not in the baseline (just added to the suite)
        # is a warning, not a failure — it is simply not gated yet.
        base = self.path("base.json", {"BM_DistillCache": 1e6})
        cur = self.path(
            "cur.json",
            report({"BM_DistillCache": 1e6, "BM_NewCache": 2e6}),
        )
        r = self.run_check(cur, base, "--benchmark",
                           "BM_DistillCache")
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)
        self.assertIn("warning: BM_NewCache", r.stdout)
        self.assertIn("absent from baseline", r.stdout)


if __name__ == "__main__":
    unittest.main()
