#include "set_assoc.hh"

#include <algorithm>

#include "common/intmath.hh"
#include "common/logging.hh"

namespace ldis
{

SetAssocCache::SetAssocCache(const CacheGeometry &g)
    : geom(g), rng(g.seed)
{
    if (g.lineBytes == 0 || !isPowerOf2(g.lineBytes))
        ldis_fatal("line size %u is not a power of two", g.lineBytes);
    if (g.ways == 0)
        ldis_fatal("cache must have at least one way");
    std::uint64_t lines = g.bytes / g.lineBytes;
    if (lines == 0 || lines % g.ways != 0)
        ldis_fatal("capacity %llu B does not divide into %u ways of "
                   "%u B lines",
                   static_cast<unsigned long long>(g.bytes), g.ways,
                   g.lineBytes);
    std::uint64_t num_sets = lines / g.ways;
    if (!isPowerOf2(num_sets))
        ldis_fatal("number of sets (%llu) must be a power of two",
                   static_cast<unsigned long long>(num_sets));

    setsCount = static_cast<unsigned>(num_sets);
    waysCount = g.ways;
    sets.resize(setsCount);
    for (auto &s : sets) {
        s.lines.resize(waysCount);
        s.order.resize(waysCount);
        for (unsigned w = 0; w < waysCount; ++w)
            s.order[w] = static_cast<std::uint8_t>(w);
    }
}

std::uint64_t
SetAssocCache::setIndexOf(LineAddr line) const
{
    return line & (setsCount - 1);
}

SetAssocCache::Set &
SetAssocCache::setOf(LineAddr line)
{
    return sets[setIndexOf(line)];
}

const SetAssocCache::Set &
SetAssocCache::setOf(LineAddr line) const
{
    return sets[setIndexOf(line)];
}

int
SetAssocCache::wayOf(const Set &s, LineAddr line) const
{
    for (unsigned w = 0; w < waysCount; ++w)
        if (s.lines[w].valid && s.lines[w].line == line)
            return static_cast<int>(w);
    return -1;
}

CacheLineState *
SetAssocCache::find(LineAddr line)
{
    Set &s = setOf(line);
    int w = wayOf(s, line);
    return w < 0 ? nullptr : &s.lines[w];
}

const CacheLineState *
SetAssocCache::find(LineAddr line) const
{
    const Set &s = setOf(line);
    int w = wayOf(s, line);
    return w < 0 ? nullptr : &s.lines[w];
}

unsigned
SetAssocCache::position(LineAddr line) const
{
    const Set &s = setOf(line);
    int w = wayOf(s, line);
    ldis_assert(w >= 0);
    for (unsigned pos = 0; pos < waysCount; ++pos)
        if (s.order[pos] == w)
            return pos;
    ldis_panic("line present but missing from recency order");
}

void
SetAssocCache::touch(LineAddr line)
{
    Set &s = setOf(line);
    int w = wayOf(s, line);
    ldis_assert(w >= 0);
    auto it = std::find(s.order.begin(), s.order.end(),
                        static_cast<std::uint8_t>(w));
    ldis_assert(it != s.order.end());
    s.order.erase(it);
    s.order.insert(s.order.begin(), static_cast<std::uint8_t>(w));
}

const CacheLineState *
SetAssocCache::peekVictim(LineAddr line)
{
    Set &s = setOf(line);
    for (unsigned w = 0; w < waysCount; ++w)
        if (!s.lines[w].valid)
            return nullptr;
    if (geom.repl == ReplPolicy::LRU)
        return &s.lines[s.order.back()];
    // Random policy: draw the victim now and memoize it so the next
    // install() in this set evicts the same way observers saw.
    if (s.pendingVictim < 0)
        s.pendingVictim = static_cast<int>(rng.below(waysCount));
    return &s.lines[s.pendingVictim];
}

CacheLineState
SetAssocCache::install(LineAddr line)
{
    Set &s = setOf(line);
    ldis_assert(wayOf(s, line) < 0);

    // Prefer an invalid way.
    int victim_way = -1;
    for (unsigned w = 0; w < waysCount; ++w) {
        if (!s.lines[w].valid) {
            victim_way = static_cast<int>(w);
            break;
        }
    }
    if (victim_way < 0) {
        if (geom.repl == ReplPolicy::LRU) {
            victim_way = s.order.back();
        } else if (s.pendingVictim >= 0) {
            victim_way = s.pendingVictim;
        } else {
            victim_way = static_cast<int>(rng.below(waysCount));
        }
    }
    s.pendingVictim = -1;

    CacheLineState evicted = s.lines[victim_way];
    CacheLineState fresh;
    fresh.line = line;
    fresh.valid = true;
    s.lines[victim_way] = fresh;

    auto it = std::find(s.order.begin(), s.order.end(),
                        static_cast<std::uint8_t>(victim_way));
    ldis_assert(it != s.order.end());
    s.order.erase(it);
    s.order.insert(s.order.begin(),
                   static_cast<std::uint8_t>(victim_way));
    return evicted;
}

CacheLineState
SetAssocCache::invalidate(LineAddr line)
{
    Set &s = setOf(line);
    int w = wayOf(s, line);
    if (w < 0)
        return CacheLineState{};
    CacheLineState prior = s.lines[w];
    s.lines[w] = CacheLineState{};
    // The set now has a free way, so any memoized random victim is
    // stale (install() will fill the free way instead).
    s.pendingVictim = -1;
    // Demote the invalidated way to LRU so it is reused first.
    auto it = std::find(s.order.begin(), s.order.end(),
                        static_cast<std::uint8_t>(w));
    ldis_assert(it != s.order.end());
    s.order.erase(it);
    s.order.push_back(static_cast<std::uint8_t>(w));
    return prior;
}

std::uint64_t
SetAssocCache::validCount() const
{
    std::uint64_t n = 0;
    for (const auto &s : sets)
        for (const auto &l : s.lines)
            if (l.valid)
                ++n;
    return n;
}

} // namespace ldis
