#include "set_assoc.hh"

#include <algorithm>
#include <bit>
#include <cstring>

#include "common/audit.hh"
#include "common/intmath.hh"
#include "common/logging.hh"

namespace ldis
{

namespace
{

/**
 * Promote way @p w to MRU within the @p ways -entry stack at
 * @p ord. The ubiquitous 8-way shape runs as one branchless 64-bit
 * SWAR update; other associativities keep the shift loop.
 */
inline void
promoteWay(std::uint8_t *ord, unsigned ways, unsigned w)
{
    if (ways == 8) {
        std::uint64_t v;
        std::memcpy(&v, ord, 8);
        unsigned pos = byteFind(v, static_cast<std::uint8_t>(w));
        v = mruPromote(v, pos, static_cast<std::uint8_t>(w));
        std::memcpy(ord, &v, 8);
        return;
    }
    unsigned pos = 0;
    while (ord[pos] != w) {
        ++pos;
        ldis_assert(pos < ways);
    }
    for (; pos > 0; --pos)
        ord[pos] = ord[pos - 1];
    ord[0] = static_cast<std::uint8_t>(w);
}

} // namespace

SetAssocCache::SetAssocCache(const CacheGeometry &g)
    : geom(g), rng(g.seed)
{
    if (g.lineBytes == 0 || !isPowerOf2(g.lineBytes))
        ldis_fatal("line size %u is not a power of two", g.lineBytes);
    if (g.ways == 0)
        ldis_fatal("cache must have at least one way");
    std::uint64_t num_lines = g.bytes / g.lineBytes;
    if (num_lines == 0 || num_lines % g.ways != 0)
        ldis_fatal("capacity %llu B does not divide into %u ways of "
                   "%u B lines",
                   static_cast<unsigned long long>(g.bytes), g.ways,
                   g.lineBytes);
    std::uint64_t num_sets = num_lines / g.ways;
    if (!isPowerOf2(num_sets))
        ldis_fatal("number of sets (%llu) must be a power of two",
                   static_cast<unsigned long long>(num_sets));

    setsCount = static_cast<unsigned>(num_sets);
    waysCount = g.ways;
    lines.resize(static_cast<std::size_t>(setsCount) * waysCount);
    tags.assign(lines.size(), kNoTag);
    order.resize(lines.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = static_cast<std::uint8_t>(i % waysCount);
    pendingVictim.assign(setsCount, -1);
}

std::uint64_t
SetAssocCache::setIndexOf(LineAddr line) const
{
    return line & (setsCount - 1);
}

std::size_t
SetAssocCache::baseOf(LineAddr line) const
{
    return static_cast<std::size_t>(setIndexOf(line)) * waysCount;
}

int
SetAssocCache::wayOf(std::size_t base, LineAddr line) const
{
    const LineAddr *t = &tags[base];
    if (waysCount == 8) {
        // Fixed-count branchless scan: the compiler unrolls the
        // eight compares into a match mask with no early-exit
        // branches to mispredict (the hit way is uniformly
        // distributed, so an exiting loop predicts poorly).
        unsigned m = 0;
        for (unsigned w = 0; w < 8; ++w)
            m |= static_cast<unsigned>(t[w] == line) << w;
        return m ? static_cast<int>(std::countr_zero(m)) : -1;
    }
    for (unsigned w = 0; w < waysCount; ++w)
        if (t[w] == line)
            return static_cast<int>(w);
    return -1;
}

CacheLineState *
SetAssocCache::find(LineAddr line)
{
    std::size_t base = baseOf(line);
    int w = wayOf(base, line);
    return w < 0 ? nullptr : &lines[base + w];
}

const CacheLineState *
SetAssocCache::find(LineAddr line) const
{
    std::size_t base = baseOf(line);
    int w = wayOf(base, line);
    return w < 0 ? nullptr : &lines[base + w];
}

unsigned
SetAssocCache::position(LineAddr line) const
{
    std::size_t base = baseOf(line);
    int w = wayOf(base, line);
    ldis_assert(w >= 0);
    const std::uint8_t *ord = &order[base];
    for (unsigned pos = 0; pos < waysCount; ++pos)
        if (ord[pos] == w)
            return pos;
    ldis_panic("line present but missing from recency order");
}

void
SetAssocCache::touch(LineAddr line)
{
    std::size_t base = baseOf(line);
    int w = wayOf(base, line);
    ldis_assert(w >= 0);
    promoteWay(&order[base], waysCount, static_cast<unsigned>(w));
}

CacheLineState *
SetAssocCache::findTouch(LineAddr line, unsigned *pos_before)
{
    std::size_t base = baseOf(line);
    int w = wayOf(base, line);
    if (w < 0)
        return nullptr;
    std::uint8_t *ord = &order[base];
    if (waysCount == 8) {
        std::uint64_t v;
        std::memcpy(&v, ord, 8);
        unsigned pos = byteFind(v, static_cast<std::uint8_t>(w));
        if (pos_before)
            *pos_before = pos;
        v = mruPromote(v, pos, static_cast<std::uint8_t>(w));
        std::memcpy(ord, &v, 8);
        return &lines[base + w];
    }
    unsigned pos = 0;
    while (ord[pos] != w) {
        ++pos;
        ldis_assert(pos < waysCount);
    }
    if (pos_before)
        *pos_before = pos;
    for (; pos > 0; --pos)
        ord[pos] = ord[pos - 1];
    ord[0] = static_cast<std::uint8_t>(w);
    return &lines[base + w];
}

CacheLineState *
SetAssocCache::mruLine(LineAddr line)
{
    std::size_t base = baseOf(line);
    CacheLineState &l = lines[base + order[base]];
    ldis_assert(l.valid && l.line == line);
    return &l;
}

const CacheLineState *
SetAssocCache::peekVictim(LineAddr line)
{
    std::size_t base = baseOf(line);
    for (unsigned w = 0; w < waysCount; ++w)
        if (tags[base + w] == kNoTag)
            return nullptr;
    if (geom.repl == ReplPolicy::LRU)
        return &lines[base + order[base + waysCount - 1]];
    // Random policy: draw the victim now and memoize it so the next
    // install() in this set evicts the same way observers saw.
    std::int16_t &pending = pendingVictim[setIndexOf(line)];
    if (pending < 0)
        pending = static_cast<std::int16_t>(rng.below(waysCount));
    return &lines[base + pending];
}

CacheLineState
SetAssocCache::install(LineAddr line)
{
    std::size_t base = baseOf(line);
    ldis_assert(line != kNoTag);
    ldis_assert(wayOf(base, line) < 0);

    // Prefer an invalid way.
    int victim_way = -1;
    for (unsigned w = 0; w < waysCount; ++w) {
        if (tags[base + w] == kNoTag) {
            victim_way = static_cast<int>(w);
            break;
        }
    }
    std::int16_t &pending = pendingVictim[setIndexOf(line)];
    if (victim_way < 0) {
        if (geom.repl == ReplPolicy::LRU) {
            victim_way = order[base + waysCount - 1];
        } else if (pending >= 0) {
            victim_way = pending;
        } else {
            victim_way = static_cast<int>(rng.below(waysCount));
        }
    }
    pending = -1;

    // The selection loops above only ever produce ways in range;
    // carry on in unsigned so the indexing below never mixes signs.
    unsigned vw = static_cast<unsigned>(victim_way);
    CacheLineState evicted = lines[base + vw];
    CacheLineState fresh;
    fresh.line = line;
    fresh.valid = true;
    lines[base + vw] = fresh;
    tags[base + vw] = line;

    // Promote the filled way to MRU.
    promoteWay(&order[base], waysCount, vw);

    LDIS_AUDIT_CHECK("SetAssocCache",
                     evicted.valid ? auditSet(setIndexOf(line))
                                   : std::string());
    return evicted;
}

CacheLineState
SetAssocCache::invalidate(LineAddr line)
{
    std::size_t base = baseOf(line);
    int w = wayOf(base, line);
    if (w < 0)
        return CacheLineState{};
    CacheLineState prior = lines[base + w];
    lines[base + w] = CacheLineState{};
    tags[base + w] = kNoTag;
    // The set now has a free way, so any memoized random victim is
    // stale (install() will fill the free way instead).
    pendingVictim[setIndexOf(line)] = -1;
    // Demote the invalidated way to LRU so it is reused first.
    std::uint8_t *ord = &order[base];
    if (waysCount == 8) {
        std::uint64_t v;
        std::memcpy(&v, ord, 8);
        unsigned pos = byteFind(v, static_cast<std::uint8_t>(w));
        v = mruDemote8(v, pos, static_cast<std::uint8_t>(w));
        std::memcpy(ord, &v, 8);
        return prior;
    }
    unsigned pos = 0;
    while (ord[pos] != w) {
        ++pos;
        ldis_assert(pos < waysCount);
    }
    for (; pos + 1 < waysCount; ++pos)
        ord[pos] = ord[pos + 1];
    ord[waysCount - 1] = static_cast<std::uint8_t>(w);
    return prior;
}

std::uint64_t
SetAssocCache::validCount() const
{
    std::uint64_t n = 0;
    for (const CacheLineState &l : lines)
        if (l.valid)
            ++n;
    return n;
}

std::string
SetAssocCache::auditSet(std::uint64_t set_index) const
{
    auto where = [set_index](const std::string &what) {
        return "set " + std::to_string(set_index) + ": " + what;
    };
    std::size_t base =
        static_cast<std::size_t>(set_index) * waysCount;

    // The recency order must be a permutation of [0, ways).
    std::uint64_t seen_ways = 0;
    for (unsigned p = 0; p < waysCount; ++p) {
        unsigned w = order[base + p];
        if (w >= waysCount)
            return where("recency slot " + std::to_string(p) +
                         " holds way " + std::to_string(w) +
                         " >= ways " + std::to_string(waysCount));
        if ((seen_ways >> w) & 1u)
            return where("way " + std::to_string(w) +
                         " appears twice in the recency order");
        seen_ways |= std::uint64_t{1} << w;
    }

    // Valid lines: unique tags, each mapping to this set.
    for (unsigned w = 0; w < waysCount; ++w) {
        const CacheLineState &l = lines[base + w];
        if (!l.valid)
            continue;
        if (setIndexOf(l.line) != set_index)
            return where("way " + std::to_string(w) + " holds line " +
                         std::to_string(l.line) +
                         " of another set");
        for (unsigned o = w + 1; o < waysCount; ++o) {
            const CacheLineState &other = lines[base + o];
            if (other.valid && other.line == l.line)
                return where("line " + std::to_string(l.line) +
                             " is duplicated in ways " +
                             std::to_string(w) + " and " +
                             std::to_string(o));
        }
        // Per-word metadata consistency (sectored users): every
        // dirty word must be valid in the sector sense, and the
        // word-granular dirty bits imply usage.
        if (!((l.dirtyWords & l.validWords) == l.dirtyWords) &&
            !l.validWords.empty())
            return where("way " + std::to_string(w) +
                         " has dirty words outside its valid words");
    }

    // The tag scan array must mirror the metadata records exactly
    // (a desync would make wayOf() disagree with the line states).
    for (unsigned w = 0; w < waysCount; ++w) {
        const CacheLineState &l = lines[base + w];
        LineAddr expect = l.valid ? l.line : kNoTag;
        if (tags[base + w] != expect)
            return where("tag scan array out of sync at way " +
                         std::to_string(w));
    }

    // A memoized random victim must name a real way.
    std::int16_t pending = pendingVictim[set_index];
    if (pending < -1 || pending >= static_cast<int>(waysCount))
        return where("pending random victim " +
                     std::to_string(pending) + " out of range");
    return "";
}

std::string
SetAssocCache::auditInvariants() const
{
    for (std::uint64_t s = 0; s < setsCount; ++s)
        if (std::string err = auditSet(s); !err.empty())
            return err;
    return "";
}

} // namespace ldis
