#include "shared_hierarchy.hh"

#include "common/logging.hh"

namespace ldis
{

void
StreamAttributingL2::charge(std::size_t s, const L2Stats &before)
{
    ldis_assert(s < perStream.size());
    const L2Stats &after = inner.stats();
    L2Stats &dst = perStream[s];
    dst.accesses += after.accesses - before.accesses;
    dst.locHits += after.locHits - before.locHits;
    dst.wocHits += after.wocHits - before.wocHits;
    dst.holeMisses += after.holeMisses - before.holeMisses;
    dst.lineMisses += after.lineMisses - before.lineMisses;
    dst.compulsoryMisses +=
        after.compulsoryMisses - before.compulsoryMisses;
    dst.writebacks += after.writebacks - before.writebacks;
    dst.evictions += after.evictions - before.evictions;
}

L2Result
StreamAttributingL2::access(Addr addr, bool write, Addr pc,
                            bool instr)
{
    L2Stats before = inner.stats();
    L2Result r = inner.access(addr, write, pc, instr);
    charge(mixStreamOfAddr(addr), before);
    return r;
}

void
StreamAttributingL2::l1dEviction(LineAddr line, Footprint used,
                                 Footprint dirty_words)
{
    L2Stats before = inner.stats();
    inner.l1dEviction(line, used, dirty_words);
    charge(mixStreamOfLine(line), before);
}

bool
StreamAttributingL2::prefetch(LineAddr line)
{
    L2Stats before = inner.stats();
    bool filled = inner.prefetch(line);
    charge(mixStreamOfLine(line), before);
    return filled;
}

void
StreamAttributingL2::resetStats()
{
    inner.resetStats();
    perStream.fill(L2Stats{});
}

SharedHierarchy::SharedHierarchy(MixWorkload &mix_workload,
                                 SecondLevelCache &l2,
                                 const HierarchyParams &params)
    : mix(mix_workload), modelISide(params.modelInstructionSide)
{
    members.reserve(mix.streams());
    for (std::size_t s = 0; s < mix.streams(); ++s) {
        // Same walker seed as the solo Hierarchy; only the code base
        // moves, so the member's jump sequence — and therefore its
        // private-L1I behavior — matches its solo run exactly.
        members.push_back(std::make_unique<Member>(
            params.l1d, params.l1i, l2, mix.memberCodeModel(s),
            mixStreamBase(s) + kCodeBase));
    }
}

void
SharedHierarchy::run()
{
    MixedAccess m;
    while (mix.next(m)) {
        Member &mem = *members[m.stream];
        hierStats.instructions += m.access.instructions();
        ++hierStats.dataAccesses;
        if (modelISide) {
            mem.walker.advance(
                m.access.instructions(),
                [&mem](Addr line_pc) { mem.l1i.fetchLine(line_pc); });
        }
        mem.l1d.access(m.access.addr, m.access.write, m.access.pc);
    }
}

L1DStats
SharedHierarchy::aggregateL1d() const
{
    L1DStats out;
    for (const auto &mem : members) {
        const L1DStats &s = mem->l1d.stats();
        out.accesses += s.accesses;
        out.hits += s.hits;
        out.sectorMisses += s.sectorMisses;
        out.lineMisses += s.lineMisses;
    }
    return out;
}

L1IStats
SharedHierarchy::aggregateL1i() const
{
    L1IStats out;
    for (const auto &mem : members) {
        const L1IStats &s = mem->l1i.stats();
        out.accesses += s.accesses;
        out.misses += s.misses;
    }
    return out;
}

} // namespace ldis
