/**
 * @file
 * First-level instruction cache (Table 1: 16kB, 2-way, 64B, LRU).
 * Instruction lines fetched through it are installed in the L2 with
 * the instr flag set, so the distill cache knows not to distill them
 * (Section 4: "we perform LDIS only for the data lines").
 */

#ifndef DISTILLSIM_CACHE_L1I_HH
#define DISTILLSIM_CACHE_L1I_HH

#include <string>

#include "cache/l2_interface.hh"
#include "cache/set_assoc.hh"
#include "cache/stream_sink.hh"
#include "common/audit.hh"

namespace ldis
{

/** Statistics of the L1I. */
struct L1IStats
{
    std::uint64_t accesses = 0;
    std::uint64_t misses = 0;
};

/** Simple instruction cache backed by the L2. */
class L1ICache
{
  public:
    L1ICache(const CacheGeometry &geom, SecondLevelCache &l2,
             Cycle hit_latency = 1);

    /**
     * Fetch the instruction line containing @p pc.
     * @return data-available latency
     */
    Cycle fetchLine(Addr pc);

    const L1IStats &stats() const { return statsData; }

    /** Zero the counters (warmup support); contents untouched. */
    void resetStats() { statsData = L1IStats{}; }

    /** Attach a front-end event observer (null to detach). */
    void setSink(FrontEndSink *s) { sink = s; }

    /** Tag-array audit (see common/audit.hh). */
    std::string
    auditInvariants() const
    {
        return cache.auditInvariants();
    }

  private:
    SetAssocCache cache;
    SecondLevelCache &l2;
    Cycle hitLatency;
    L1IStats statsData;
    FrontEndSink *sink = nullptr;
    audit::Clock auditClock;
};

} // namespace ldis

#endif // DISTILLSIM_CACHE_L1I_HH
