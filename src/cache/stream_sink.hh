/**
 * @file
 * Observer interface of the hierarchy front end (workload + L1I +
 * sectored L1D). The stream recorder (src/sim/replay) attaches one
 * sink while simulating against a full-line-fill backing store and
 * captures exactly the events from which the L2-visible reference
 * stream of ANY second-level cache can be reconstructed:
 *
 *  - every L1I miss (the fetch reaches the L2 with instr = true),
 *  - every L1D line miss, together with the victim it evicted — the
 *    victim's footprint and dirty words are L2-configuration-
 *    independent, because the L1D sets them on every touch
 *    regardless of which words the L2 delivered, and
 *  - every *first touch* of a word within an L1D residency. Only a
 *    residency's first touch of a word can become a sector miss
 *    (the L1D validates the word when the L2 answers one), so the
 *    first-touch sequence is what lets a replay re-derive the
 *    config-dependent sector misses produced by partial WOC fills.
 *
 * The sink pointers default to null and cost the hot paths a single
 * predictable branch; normal (non-recording) runs are unaffected.
 */

#ifndef DISTILLSIM_CACHE_STREAM_SINK_HH
#define DISTILLSIM_CACHE_STREAM_SINK_HH

#include <cstdint>

#include "cache/set_assoc.hh"
#include "common/types.hh"

namespace ldis
{

/** Front-end event observer (see file comment). */
class FrontEndSink
{
  public:
    virtual ~FrontEndSink() = default;

    /**
     * @p instructions more instructions retired (called once per
     * consumed workload access, before its L1I/L1D traffic).
     */
    virtual void advance(std::uint64_t instructions) = 0;

    /** The L1I missed on the line containing @p pc. */
    virtual void ifetchMiss(Addr pc) = 0;

    /**
     * The L1D missed on @p addr's line and installed it, evicting
     * @p victim (victim.valid == false when a free way was used).
     * The L2 sees the demand access first, then the eviction
     * notification for a valid victim.
     */
    virtual void dataLineMiss(Addr addr, bool write, Addr pc,
                              const CacheLineState &victim) = 0;

    /**
     * First touch of a word within a resident L1D line's current
     * residency (excluding the word that installed the line).
     */
    virtual void dataFirstTouch(Addr addr, bool write, Addr pc) = 0;
};

} // namespace ldis

#endif // DISTILLSIM_CACHE_STREAM_SINK_HH
