/**
 * @file
 * Abstract interface of a second-level cache as seen by the L1s.
 * Implementations: TraditionalL2 (baseline), DistillCache (the
 * paper's contribution), CompressedL2 (CMPR), FAC variants, and the
 * SFP baseline.
 */

#ifndef DISTILLSIM_CACHE_L2_INTERFACE_HH
#define DISTILLSIM_CACHE_L2_INTERFACE_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/footprint.hh"
#include "common/types.hh"

namespace ldis
{

/**
 * Outcome of a distill-cache access (Section 5.2). Traditional
 * caches only produce LocHit and LineMiss.
 */
enum class L2Outcome
{
    LocHit,   //!< hit in the line-organized portion
    WocHit,   //!< line hit and word hit in the WOC
    HoleMiss, //!< line hit in the WOC but the word is absent
    LineMiss, //!< miss in both structures
};

/** True for the two miss outcomes. */
constexpr bool
isMiss(L2Outcome o)
{
    return o == L2Outcome::HoleMiss || o == L2Outcome::LineMiss;
}

/** Result of one L2 access. */
struct L2Result
{
    L2Outcome outcome = L2Outcome::LineMiss;

    /**
     * Words delivered to the L1D: full() for LOC hits and fills from
     * memory, the resident subset for WOC hits.
     */
    Footprint validWords = Footprint::full();

    /** Data-available latency in cycles (used by the IPC model). */
    Cycle latency = 0;

    /**
     * True when this demand access is the first touch of a line
     * that was filled by a prefetch (tagged prefetching re-arms the
     * prefetcher on such hits).
     */
    bool promotedPrefetch = false;
};

/** Aggregate statistics of an L2 implementation. */
struct L2Stats
{
    std::uint64_t accesses = 0;
    std::uint64_t locHits = 0;
    std::uint64_t wocHits = 0;
    std::uint64_t holeMisses = 0;
    std::uint64_t lineMisses = 0;
    std::uint64_t compulsoryMisses = 0;
    std::uint64_t writebacks = 0;
    std::uint64_t evictions = 0;

    std::uint64_t hits() const { return locHits + wocHits; }
    std::uint64_t misses() const { return holeMisses + lineMisses; }
};

/** Second-level cache interface. */
class SecondLevelCache
{
  public:
    virtual ~SecondLevelCache() = default;

    /**
     * Service an access that missed (or sector-missed) in an L1.
     *
     * @param addr byte address (word within line is significant)
     * @param write true for stores (write-allocate)
     * @param pc PC of the access (used by the SFP baseline)
     * @param instr true for instruction-fetch lines
     */
    virtual L2Result access(Addr addr, bool write, Addr pc,
                            bool instr) = 0;

    /**
     * Notification that the L1D evicted a line: @p used is the
     * accumulated footprint, @p dirty_words the words written. The
     * LOC OR-merges the footprint (Section 4.1); dirty words update
     * the line's dirty state. Lines no longer present in the L2 fall
     * through to memory (non-inclusive hierarchy).
     */
    virtual void l1dEviction(LineAddr line, Footprint used,
                             Footprint dirty_words) = 0;

    virtual const L2Stats &stats() const = 0;

    /**
     * Zero the statistics counters without touching cache contents
     * (warmup support). First-touch state is preserved, so
     * compulsory-miss accounting stays correct across the reset.
     */
    virtual void resetStats() = 0;

    /** Short human-readable configuration description. */
    virtual std::string describe() const = 0;

    /**
     * Install @p line without a demand access (prefetch). The line
     * enters with an empty footprint; implementations that do not
     * support prefetching ignore the request.
     * @return true iff a fill was performed
     */
    virtual bool
    prefetch(LineAddr line)
    {
        (void)line;
        return false;
    }
};

/**
 * Helper shared by all L2 implementations: first-touch tracking for
 * compulsory-miss accounting (Table 2).
 *
 * Implemented as a linear-probing table of line addresses rather
 * than std::unordered_set: the node-based set allocated on every
 * first touch, which for streaming workloads means an allocation
 * every few dozen accesses forever. The flat table only allocates
 * on its rare geometric (4x) growth steps, so steady-state access
 * paths stay off the heap entirely.
 */
class CompulsoryTracker
{
  public:
    CompulsoryTracker() : slots(kInitialSlots, 0) {}

    /** Returns true iff @p line was never seen before (and marks). */
    bool
    firstTouch(LineAddr line)
    {
        // Slot value 0 doubles as "empty"; track line 0 separately.
        if (line == 0) {
            if (seenZero)
                return false;
            seenZero = true;
            return true;
        }
        std::size_t i = probe(slots, line);
        if (slots[i] == line)
            return false;
        slots[i] = line;
        ++used;
        if (2 * used > slots.size())
            grow();
        return true;
    }

  private:
    static constexpr std::size_t kInitialSlots = std::size_t{1} << 17;

    /** First slot holding @p line or the empty slot to claim. */
    static std::size_t
    probe(const std::vector<LineAddr> &table, LineAddr line)
    {
        std::size_t mask = table.size() - 1;
        // Fibonacci-style mix: line addresses are dense and
        // low-entropy in the high bits.
        std::uint64_t h = line * 0x9E3779B97F4A7C15ull;
        std::size_t i = static_cast<std::size_t>(h >> 32) & mask;
        while (table[i] != 0 && table[i] != line)
            i = (i + 1) & mask;
        return i;
    }

    void
    grow()
    {
        std::vector<LineAddr> bigger(slots.size() * 4, 0);
        for (LineAddr l : slots)
            if (l != 0)
                bigger[probe(bigger, l)] = l;
        slots.swap(bigger);
    }

    std::vector<LineAddr> slots;
    std::size_t used = 0;
    bool seenZero = false;
};

} // namespace ldis

#endif // DISTILLSIM_CACHE_L2_INTERFACE_HH
