/**
 * @file
 * Abstract interface of a second-level cache as seen by the L1s.
 * Implementations: TraditionalL2 (baseline), DistillCache (the
 * paper's contribution), CompressedL2 (CMPR), FAC variants, and the
 * SFP baseline.
 */

#ifndef DISTILLSIM_CACHE_L2_INTERFACE_HH
#define DISTILLSIM_CACHE_L2_INTERFACE_HH

#include <cstdint>
#include <string>
#include <unordered_set>

#include "common/footprint.hh"
#include "common/types.hh"

namespace ldis
{

/**
 * Outcome of a distill-cache access (Section 5.2). Traditional
 * caches only produce LocHit and LineMiss.
 */
enum class L2Outcome
{
    LocHit,   //!< hit in the line-organized portion
    WocHit,   //!< line hit and word hit in the WOC
    HoleMiss, //!< line hit in the WOC but the word is absent
    LineMiss, //!< miss in both structures
};

/** True for the two miss outcomes. */
constexpr bool
isMiss(L2Outcome o)
{
    return o == L2Outcome::HoleMiss || o == L2Outcome::LineMiss;
}

/** Result of one L2 access. */
struct L2Result
{
    L2Outcome outcome = L2Outcome::LineMiss;

    /**
     * Words delivered to the L1D: full() for LOC hits and fills from
     * memory, the resident subset for WOC hits.
     */
    Footprint validWords = Footprint::full();

    /** Data-available latency in cycles (used by the IPC model). */
    Cycle latency = 0;

    /**
     * True when this demand access is the first touch of a line
     * that was filled by a prefetch (tagged prefetching re-arms the
     * prefetcher on such hits).
     */
    bool promotedPrefetch = false;
};

/** Aggregate statistics of an L2 implementation. */
struct L2Stats
{
    std::uint64_t accesses = 0;
    std::uint64_t locHits = 0;
    std::uint64_t wocHits = 0;
    std::uint64_t holeMisses = 0;
    std::uint64_t lineMisses = 0;
    std::uint64_t compulsoryMisses = 0;
    std::uint64_t writebacks = 0;
    std::uint64_t evictions = 0;

    std::uint64_t hits() const { return locHits + wocHits; }
    std::uint64_t misses() const { return holeMisses + lineMisses; }
};

/** Second-level cache interface. */
class SecondLevelCache
{
  public:
    virtual ~SecondLevelCache() = default;

    /**
     * Service an access that missed (or sector-missed) in an L1.
     *
     * @param addr byte address (word within line is significant)
     * @param write true for stores (write-allocate)
     * @param pc PC of the access (used by the SFP baseline)
     * @param instr true for instruction-fetch lines
     */
    virtual L2Result access(Addr addr, bool write, Addr pc,
                            bool instr) = 0;

    /**
     * Notification that the L1D evicted a line: @p used is the
     * accumulated footprint, @p dirty_words the words written. The
     * LOC OR-merges the footprint (Section 4.1); dirty words update
     * the line's dirty state. Lines no longer present in the L2 fall
     * through to memory (non-inclusive hierarchy).
     */
    virtual void l1dEviction(LineAddr line, Footprint used,
                             Footprint dirty_words) = 0;

    virtual const L2Stats &stats() const = 0;

    /**
     * Zero the statistics counters without touching cache contents
     * (warmup support). First-touch state is preserved, so
     * compulsory-miss accounting stays correct across the reset.
     */
    virtual void resetStats() = 0;

    /** Short human-readable configuration description. */
    virtual std::string describe() const = 0;

    /**
     * Install @p line without a demand access (prefetch). The line
     * enters with an empty footprint; implementations that do not
     * support prefetching ignore the request.
     * @return true iff a fill was performed
     */
    virtual bool
    prefetch(LineAddr line)
    {
        (void)line;
        return false;
    }
};

/**
 * Helper shared by all L2 implementations: first-touch tracking for
 * compulsory-miss accounting (Table 2).
 */
class CompulsoryTracker
{
  public:
    /** Returns true iff @p line was never seen before (and marks). */
    bool
    firstTouch(LineAddr line)
    {
        return seen.insert(line).second;
    }

  private:
    std::unordered_set<LineAddr> seen;
};

} // namespace ldis

#endif // DISTILLSIM_CACHE_L2_INTERFACE_HH
