/**
 * @file
 * Baseline second-level cache: plain set-associative, LRU, whole-line
 * fills (Table 1: 1MB, 8-way, 64B lines, 15-cycle hit). Also carries
 * the footprint/recency instrumentation used by the motivation
 * experiments (Figures 1 and 2, Table 6).
 */

#ifndef DISTILLSIM_CACHE_TRADITIONAL_L2_HH
#define DISTILLSIM_CACHE_TRADITIONAL_L2_HH

#include <memory>
#include <string>

#include "common/audit.hh"
#include "common/histogram.hh"
#include "cache/l2_interface.hh"
#include "cache/set_assoc.hh"

namespace ldis
{

/** Latency parameters shared by L2 models (Table 1). */
struct L2Latency
{
    Cycle hit = 15;
    Cycle memory = 400;
};

/**
 * Traditional (non-distilling) L2 with usage instrumentation.
 * `final` so the gang-replay fast path devirtualizes access calls.
 */
class TraditionalL2 final : public SecondLevelCache
{
  public:
    /**
     * @param geom cache geometry (1MB/8-way/64B in the baseline)
     * @param lat hit/memory latencies
     */
    explicit TraditionalL2(const CacheGeometry &geom,
                           L2Latency lat = {});

    L2Result access(Addr addr, bool write, Addr pc,
                    bool instr) override;
    void l1dEviction(LineAddr line, Footprint used,
                     Footprint dirty_words) override;
    const L2Stats &stats() const override { return statsData; }
    void
    resetStats() override
    {
        statsData = L2Stats{};
        wordsHist.clear();
        recHist.clear();
    }
    std::string describe() const override;
    bool prefetch(LineAddr line) override;

    /**
     * Figure 1 / Table 6 instrumentation: histogram over the number
     * of words used (1..8, bucket index = count) in each evicted
     * *data* line. Bucket 0 is unused.
     */
    const Histogram &wordsUsedAtEviction() const { return wordsHist; }

    /**
     * Figure 2 instrumentation: histogram over the maximum recency
     * position attained before a footprint change, recorded at
     * eviction of each data line.
     */
    const Histogram &recencyBeforeChange() const { return recHist; }

    /** Average words used per evicted data line (Table 6). */
    double avgWordsUsed() const;

    /** Underlying tag array (read-only, for sampling experiments). */
    const SetAssocCache &tags() const { return cache; }

    /** Tag-array audit (see common/audit.hh). */
    std::string
    auditInvariants() const
    {
        return cache.auditInvariants();
    }

  private:
    /** Record instrumentation and stats for an evicted line. */
    void noteEviction(const CacheLineState &victim);

    /** Merge one (geometry-local) line's L1D eviction info. */
    void mergeL1Eviction(LineAddr line, Footprint used,
                         Footprint dirty_words);

    /** Update footprint-change instrumentation for @p line. */
    void noteFootprintTouch(CacheLineState &line, WordIdx word,
                            unsigned pos_before);

    SetAssocCache cache;
    L2Latency latency;

    /**
     * log2 of the configured line size (a validated power of two),
     * so the per-access line/word split is a shift and a mask
     * rather than two hardware divisions by a runtime value.
     */
    unsigned lineShift;
    L2Stats statsData;
    CompulsoryTracker compulsory;
    Histogram wordsHist;
    Histogram recHist;
    audit::Clock auditClock;
};

} // namespace ldis

#endif // DISTILLSIM_CACHE_TRADITIONAL_L2_HH
