#include "hierarchy.hh"

#include "common/logging.hh"

namespace ldis
{

CodeWalker::CodeWalker(const CodeModel &model, std::uint64_t seed,
                       Addr code_base)
    : code(model), rng(seed), codeBase(code_base), pc(0),
      instrsToJump(model.avgRunInstrs)
{
    ldis_assert(code.codeBytes >= kLineBytes);
    ldis_assert(code.avgRunInstrs >= 1);
}

void
CodeWalker::jump()
{
    // Jump to a random line-aligned block within the footprint.
    std::uint64_t lines = code.codeBytes / kLineBytes;
    pc = rng.below(lines) * kLineBytes;
    instrsToJump = 1 + rng.below(2 * code.avgRunInstrs);
}

Hierarchy::Hierarchy(Workload &wl, SecondLevelCache &l2_cache,
                     const HierarchyParams &params)
    : workload(wl), l2(l2_cache), l1d(params.l1d, l2_cache),
      l1i(params.l1i, l2_cache),
      walker(wl.codeModel(), 0x1234567),
      modelISide(params.modelInstructionSide)
{
}

void
Hierarchy::run(InstCount instructions)
{
    InstCount target = hierStats.instructions + instructions;
    while (hierStats.instructions < target) {
        if (batchPos >= batchLen) {
            batchLen = workload.fill(batch.data(), kBatchSize);
            batchPos = 0;
        }
        const Access &a = batch[batchPos++];
        hierStats.instructions += a.instructions();
        ++hierStats.dataAccesses;
        if (sink)
            sink->advance(a.instructions());

        if (modelISide) {
            walker.advance(a.instructions(), [this](Addr line_pc) {
                l1i.fetchLine(line_pc);
            });
        }
        l1d.access(a.addr, a.write, a.pc);
    }
}

double
Hierarchy::mpki() const
{
    if (hierStats.instructions == 0)
        return 0.0;
    return static_cast<double>(l2.stats().misses())
         / (static_cast<double>(hierStats.instructions) / 1000.0);
}

} // namespace ldis
