#include "l1i.hh"

namespace ldis
{

L1ICache::L1ICache(const CacheGeometry &geom, SecondLevelCache &l2_c,
                   Cycle hit_latency)
    : cache(geom), l2(l2_c), hitLatency(hit_latency)
{
}

Cycle
L1ICache::fetchLine(Addr pc)
{
    ++statsData.accesses;
    LDIS_AUDIT_POINT(auditClock, "L1ICache", *this);
    LineAddr line = lineAddrOf(pc);
    if (cache.findTouch(line))
        return hitLatency;
    ++statsData.misses;
    if (sink)
        sink->ifetchMiss(pc);
    L2Result r = l2.access(pc, false, pc, true);
    cache.install(line);
    return hitLatency + r.latency;
}

} // namespace ldis
