/**
 * @file
 * Next-line prefetching decorator for any second-level cache.
 * Section 9 notes that spatial-pattern prefetchers work at cache-line
 * granularity, "so LDIS can be used with these schemes for removing
 * unused words in both demand and prefetched lines" — this wrapper
 * plus SecondLevelCache::prefetch() lets bench/abl_prefetch verify
 * the composition.
 *
 * Prefetched lines are installed without any demand word in their
 * footprint; if nothing touches them before eviction, the distill
 * cache simply discards them (nothing to distill), and the baseline
 * evicts them like any line.
 */

#ifndef DISTILLSIM_CACHE_PREFETCH_HH
#define DISTILLSIM_CACHE_PREFETCH_HH

#include <memory>

#include "cache/l2_interface.hh"

namespace ldis
{

/** Prefetch statistics. */
struct PrefetchStats
{
    std::uint64_t issued = 0;   //!< prefetches sent to the L2
    std::uint64_t rejected = 0; //!< line already resident
};

/** Next-N-line prefetcher wrapped around an inner L2. */
class PrefetchingL2 : public SecondLevelCache
{
  public:
    /**
     * @param inner decorated cache (owned)
     * @param degree lines prefetched per demand line-miss {1}
     */
    explicit PrefetchingL2(std::unique_ptr<SecondLevelCache> inner,
                           unsigned degree = 1);

    L2Result access(Addr addr, bool write, Addr pc,
                    bool instr) override;
    void l1dEviction(LineAddr line, Footprint used,
                     Footprint dirty_words) override;
    bool prefetch(LineAddr line) override;
    const L2Stats &stats() const override;
    void resetStats() override;
    std::string describe() const override;

    const PrefetchStats &prefetchStats() const { return pfStats; }
    SecondLevelCache &innerCache() { return *inner; }

  private:
    std::unique_ptr<SecondLevelCache> inner;
    unsigned degree;
    PrefetchStats pfStats;
};

} // namespace ldis

#endif // DISTILLSIM_CACHE_PREFETCH_HH
