#include "sectored_l1d.hh"

#include "common/logging.hh"

namespace ldis
{

SectoredL1D::SectoredL1D(const CacheGeometry &geom,
                         SecondLevelCache &l2_cache, Cycle hit_latency)
    : cache(geom), l2(l2_cache), hitLatency(hit_latency)
{
}

void
SectoredL1D::drainToL2(const CacheLineState &victim)
{
    if (!victim.valid)
        return;
    l2.l1dEviction(victim.line, victim.footprint, victim.dirtyWords);
}

std::string
SectoredL1D::auditInvariants() const
{
    std::string violation;
    cache.forEachLine([&](const CacheLineState &l) {
        if (!violation.empty())
            return;
        if (!((l.footprint & l.validWords) == l.footprint))
            violation = "footprint outside the valid words of line " +
                std::to_string(l.line);
        else if (!((l.dirtyWords & l.footprint) == l.dirtyWords))
            violation = "dirty words outside the footprint of line " +
                std::to_string(l.line);
    });
    if (!violation.empty())
        return violation;
    return cache.auditInvariants();
}

L1DResult
SectoredL1D::access(Addr addr, bool write, Addr pc)
{
    ++statsData.accesses;
    LDIS_AUDIT_POINT(auditClock, "SectoredL1D", *this);
    LineAddr line = lineAddrOf(addr);
    WordIdx word = wordIdxOf(addr);

    // Any resident outcome (word hit or sector miss) promotes the
    // line, so fold the touch into the lookup scan.
    CacheLineState *resident = cache.findTouch(line);
    if (resident && resident->validWords.test(word)) {
        ++statsData.hits;
        // The footprint doubles as the "words touched this
        // residency" set, so a clear bit identifies a first touch —
        // the only kind of resident access that could have been a
        // sector miss under an L2 that fills lines partially.
        if (sink && !resident->footprint.test(word))
            sink->dataFirstTouch(addr, write, pc);
        resident->footprint.set(word);
        if (write)
            resident->dirtyWords.set(word);
        return {true, {}, hitLatency};
    }

    L1DResult res;
    res.l1Hit = false;

    if (resident) {
        // Sector miss: the line is resident but the word is not
        // valid (it was filled from a partial WOC line). Ask the L2
        // for the line again; the distill cache treats this as a
        // fresh access (hole-miss path if the word is absent there
        // too).
        ++statsData.sectorMisses;
        if (sink && !resident->footprint.test(word))
            sink->dataFirstTouch(addr, write, pc);
        res.l2 = l2.access(addr, write, pc, false);
        // Merge the newly delivered words. Fills from LOC/memory are
        // full lines; WOC hits deliver the resident subset, which by
        // definition includes the requested word.
        resident->validWords |= res.l2.validWords;
        ldis_assert(resident->validWords.test(word));
        resident->footprint.set(word);
        if (write)
            resident->dirtyWords.set(word);
    } else {
        // Line miss: allocate, draining the victim's footprint.
        ++statsData.lineMisses;
        res.l2 = l2.access(addr, write, pc, false);
        CacheLineState victim = cache.install(line);
        drainToL2(victim);
        if (sink)
            sink->dataLineMiss(addr, write, pc, victim);
        CacheLineState *fresh = cache.mruLine(line);
        fresh->validWords = res.l2.validWords;
        ldis_assert(fresh->validWords.test(word));
        fresh->footprint.set(word);
        if (write)
            fresh->dirtyWords.set(word);
    }

    res.latency = hitLatency + res.l2.latency;
    return res;
}

} // namespace ldis
