/**
 * @file
 * Generic set-associative cache bookkeeping: tag array, true-LRU
 * recency stacks (with position queries, needed by the Figure-2
 * instrumentation and the reverter's ATD), and victim selection.
 *
 * This class tracks tags and per-line metadata only — the simulator
 * is trace-driven and data values are synthesized on demand by the
 * value model, so no data array is stored.
 */

#ifndef DISTILLSIM_CACHE_SET_ASSOC_HH
#define DISTILLSIM_CACHE_SET_ASSOC_HH

#include <cstdint>
#include <vector>

#include "common/footprint.hh"
#include "common/random.hh"
#include "common/types.hh"

namespace ldis
{

/** Victim selection policy. */
enum class ReplPolicy
{
    LRU,
    Random,
};

/** Per-line metadata. */
struct CacheLineState
{
    /** Full line address (tag and set index combined). */
    LineAddr line = 0;

    bool valid = false;
    bool dirty = false;

    /** True for instruction lines (never distilled). */
    bool instr = false;

    /** Filled by a prefetch and not yet demand-touched. */
    bool prefetched = false;

    /** Word-usage footprint (LOC tag field / instrumentation). */
    Footprint footprint;

    /** Per-word valid bits (sectored caches). */
    Footprint validWords;

    /** Per-word dirty bits (sectored caches). */
    Footprint dirtyWords;

    /** Instrumentation: max recency position attained since fill. */
    std::uint8_t maxRecency = 0;

    /**
     * Instrumentation: max recency position attained before the most
     * recent footprint change (Figure 2's metric).
     */
    std::uint8_t maxBeforeChange = 0;
};

/** Geometry and policy of a set-associative cache. */
struct CacheGeometry
{
    /** Total capacity in bytes. */
    std::uint64_t bytes = 1 << 20;

    /** Associativity. */
    unsigned ways = 8;

    /** Line size in bytes. */
    unsigned lineBytes = kLineBytes;

    ReplPolicy repl = ReplPolicy::LRU;

    /** Seed for ReplPolicy::Random. */
    std::uint64_t seed = 7;
};

/**
 * Tag/metadata array of a set-associative cache with a true-LRU
 * recency stack per set.
 */
class SetAssocCache
{
  public:
    explicit SetAssocCache(const CacheGeometry &geom);

    unsigned numSets() const { return setsCount; }
    unsigned numWays() const { return waysCount; }
    const CacheGeometry &geometry() const { return geom; }

    /** Set index for @p line. */
    std::uint64_t setIndexOf(LineAddr line) const;

    /** Lookup without any recency side effect; nullptr on miss. */
    CacheLineState *find(LineAddr line);
    const CacheLineState *find(LineAddr line) const;

    /**
     * Recency position of a resident line: 0 = MRU,
     * ways-1 = LRU. Panics if the line is not resident.
     */
    unsigned position(LineAddr line) const;

    /** Promote a resident line to MRU. Panics if not resident. */
    void touch(LineAddr line);

    /**
     * The line that install() would evict for @p line (nullptr if a
     * free way exists). Does not modify state.
     */
    const CacheLineState *peekVictim(LineAddr line);

    /**
     * Install @p line (must not be resident), evicting a victim if
     * the set is full. The new line is placed at MRU with cleared
     * metadata. @return the evicted line's state (valid == false if
     * nothing was evicted).
     */
    CacheLineState install(LineAddr line);

    /** Invalidate a line if resident; returns its prior state. */
    CacheLineState invalidate(LineAddr line);

    /** Number of valid lines (for tests/occupancy studies). */
    std::uint64_t validCount() const;

    /** Visit every valid line (sampling experiments). */
    template <typename F>
    void
    forEachLine(F &&f) const
    {
        for (const auto &set : sets)
            for (const auto &way : set.lines)
                if (way.valid)
                    f(way);
    }

  private:
    struct Set
    {
        std::vector<CacheLineState> lines;
        /** Way indices ordered MRU (front) to LRU (back). */
        std::vector<std::uint8_t> order;
        /**
         * Random-policy victim drawn by peekVictim() and not yet
         * consumed by install(); -1 when no draw is pending. Keeps
         * the way observers saw and the way install() evicts in
         * agreement.
         */
        int pendingVictim = -1;
    };

    Set &setOf(LineAddr line);
    const Set &setOf(LineAddr line) const;

    /** Index of @p line's way within its set, or -1. */
    int wayOf(const Set &s, LineAddr line) const;

    CacheGeometry geom;
    unsigned setsCount;
    unsigned waysCount;
    std::vector<Set> sets;
    Random rng;
};

} // namespace ldis

#endif // DISTILLSIM_CACHE_SET_ASSOC_HH
