/**
 * @file
 * Generic set-associative cache bookkeeping: tag array, true-LRU
 * recency stacks (with position queries, needed by the Figure-2
 * instrumentation and the reverter's ATD), and victim selection.
 *
 * This class tracks tags and per-line metadata only — the simulator
 * is trace-driven and data values are synthesized on demand by the
 * value model, so no data array is stored.
 */

#ifndef DISTILLSIM_CACHE_SET_ASSOC_HH
#define DISTILLSIM_CACHE_SET_ASSOC_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/footprint.hh"
#include "common/random.hh"
#include "common/types.hh"

namespace ldis
{

/** Victim selection policy. */
enum class ReplPolicy
{
    LRU,
    Random,
};

/** Per-line metadata. */
struct CacheLineState
{
    /** Full line address (tag and set index combined). */
    LineAddr line = 0;

    bool valid = false;
    bool dirty = false;

    /** True for instruction lines (never distilled). */
    bool instr = false;

    /** Filled by a prefetch and not yet demand-touched. */
    bool prefetched = false;

    /** Word-usage footprint (LOC tag field / instrumentation). */
    Footprint footprint;

    /** Per-word valid bits (sectored caches). */
    Footprint validWords;

    /** Per-word dirty bits (sectored caches). */
    Footprint dirtyWords;

    /** Instrumentation: max recency position attained since fill. */
    std::uint8_t maxRecency = 0;

    /**
     * Instrumentation: max recency position attained before the most
     * recent footprint change (Figure 2's metric).
     */
    std::uint8_t maxBeforeChange = 0;
};

/** Geometry and policy of a set-associative cache. */
struct CacheGeometry
{
    /** Total capacity in bytes. */
    std::uint64_t bytes = 1 << 20;

    /** Associativity. */
    unsigned ways = 8;

    /** Line size in bytes. */
    unsigned lineBytes = kLineBytes;

    ReplPolicy repl = ReplPolicy::LRU;

    /** Seed for ReplPolicy::Random. */
    std::uint64_t seed = 7;
};

/**
 * Tag/metadata array of a set-associative cache with a true-LRU
 * recency stack per set.
 */
class SetAssocCache
{
  public:
    explicit SetAssocCache(const CacheGeometry &geom);

    unsigned numSets() const { return setsCount; }
    unsigned numWays() const { return waysCount; }
    const CacheGeometry &geometry() const { return geom; }

    /** Set index for @p line. */
    std::uint64_t setIndexOf(LineAddr line) const;

    /** Lookup without any recency side effect; nullptr on miss. */
    CacheLineState *find(LineAddr line);
    const CacheLineState *find(LineAddr line) const;

    /**
     * Recency position of a resident line: 0 = MRU,
     * ways-1 = LRU. Panics if the line is not resident.
     */
    unsigned position(LineAddr line) const;

    /** Promote a resident line to MRU. Panics if not resident. */
    void touch(LineAddr line);

    /**
     * find() + touch() in one set scan: promote @p line to MRU and
     * return its state, or nullptr (and no side effect) on a miss.
     * If @p pos_before is non-null it receives the recency position
     * the line held before the promotion.
     */
    CacheLineState *findTouch(LineAddr line,
                              unsigned *pos_before = nullptr);

    /**
     * The MRU line of @p line's set. Intended to retrieve the frame
     * just filled by install(@p line) without a second tag scan;
     * panics if the MRU way does not hold @p line.
     */
    CacheLineState *mruLine(LineAddr line);

    /**
     * The line that install() would evict for @p line (nullptr if a
     * free way exists). Does not modify state.
     */
    const CacheLineState *peekVictim(LineAddr line);

    /**
     * Install @p line (must not be resident), evicting a victim if
     * the set is full. The new line is placed at MRU with cleared
     * metadata. @return the evicted line's state (valid == false if
     * nothing was evicted).
     */
    CacheLineState install(LineAddr line);

    /** Invalidate a line if resident; returns its prior state. */
    CacheLineState invalidate(LineAddr line);

    /** Number of valid lines (for tests/occupancy studies). */
    std::uint64_t validCount() const;

    /**
     * Audit one set: the recency order is a permutation of the ways,
     * no tag appears twice among the valid lines, every valid line
     * maps to the set, and any memoized random victim is in range.
     * @return "" when well-formed, else the first violation
     */
    std::string auditSet(std::uint64_t set_index) const;

    /** auditSet() over every set (see common/audit.hh). */
    std::string auditInvariants() const;

    /** Visit every valid line (sampling experiments). */
    template <typename F>
    void
    forEachLine(F &&f) const
    {
        for (const CacheLineState &l : lines)
            if (l.valid)
                f(l);
    }

  private:
    /** Test-only state-corruption backdoor (tests/test_audit.cc). */
    friend struct AuditBackdoor;

    /**
     * `tags` slot of an invalid way. Line addresses are byte
     * addresses shifted right by the line-offset bits, so no real
     * line can ever equal the all-ones pattern (install() asserts).
     */
    static constexpr LineAddr kNoTag = ~LineAddr{0};

    /**
     * Storage is flat: way w of set s lives at index s*ways + w of
     * `lines`, and the set's MRU-to-LRU way ordering occupies the
     * same slice of `order`. One contiguous block per array keeps a
     * set's tags and recency stack on as few hardware cache lines as
     * possible.
     */
    std::size_t baseOf(LineAddr line) const;

    /** Index of @p line's way within its set's slice, or -1. */
    int wayOf(std::size_t base, LineAddr line) const;

    CacheGeometry geom;
    unsigned setsCount;
    unsigned waysCount;
    std::vector<CacheLineState> lines;

    /**
     * Tag scan array: tags[i] mirrors lines[i].line when valid and
     * holds kNoTag otherwise, so wayOf() touches one 64B slice per
     * 8-way set instead of striding through the full metadata
     * records. Kept in sync at the two mutation points (install,
     * invalidate) and audited against `lines`.
     */
    std::vector<LineAddr> tags;

    /** Per-set way indices ordered MRU (front) to LRU (back). */
    std::vector<std::uint8_t> order;

    /**
     * Per-set random-policy victim drawn by peekVictim() and not yet
     * consumed by install(); -1 when no draw is pending. Keeps the
     * way observers saw and the way install() evicts in agreement.
     */
    std::vector<std::int16_t> pendingVictim;

    Random rng;
};

} // namespace ldis

#endif // DISTILLSIM_CACHE_SET_ASSOC_HH
