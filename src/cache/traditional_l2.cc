#include "traditional_l2.hh"

#include <cstdio>

#include "common/intmath.hh"

namespace ldis
{

TraditionalL2::TraditionalL2(const CacheGeometry &geom, L2Latency lat)
    : cache(geom), latency(lat),
      lineShift(static_cast<unsigned>(floorLog2(geom.lineBytes))),
      wordsHist(kWordsPerLine + 1), recHist(geom.ways)
{
}

std::string
TraditionalL2::describe() const
{
    char buf[96];
    std::snprintf(buf, sizeof(buf), "traditional %lluKB %u-way LRU",
                  static_cast<unsigned long long>(
                      cache.geometry().bytes / 1024),
                  cache.numWays());
    return buf;
}

void
TraditionalL2::noteEviction(const CacheLineState &victim)
{
    if (!victim.valid)
        return;
    ++statsData.evictions;
    if (victim.dirty)
        ++statsData.writebacks;
    if (!victim.instr) {
        unsigned used = victim.footprint.count();
        // Every data line has at least the demand word set.
        wordsHist.record(used);
        recHist.record(victim.maxBeforeChange);
    }
}

void
TraditionalL2::noteFootprintTouch(CacheLineState &line, WordIdx word,
                                  unsigned pos_before)
{
    if (pos_before > line.maxRecency)
        line.maxRecency = static_cast<std::uint8_t>(pos_before);
    if (!line.footprint.test(word)) {
        line.footprint.set(word);
        if (line.maxRecency > line.maxBeforeChange)
            line.maxBeforeChange = line.maxRecency;
    }
}

L2Result
TraditionalL2::access(Addr addr, bool write, Addr /*pc*/, bool instr)
{
    ++statsData.accesses;
    LDIS_AUDIT_POINT(auditClock, "TraditionalL2", *this);
    // Line geometry follows the configured line size (the Section-2
    // line-size study uses 32B lines; the default is 64B).
    unsigned line_bytes = 1u << lineShift;
    LineAddr line = addr >> lineShift;
    WordIdx word = static_cast<WordIdx>(
        (addr & (line_bytes - 1)) / kWordBytes);

    // Words delivered to the (64B-line) L1D: with 32B L2 lines only
    // the containing half is supplied, so the L1D sector-misses on
    // the other half -- this is what costs small lines their spatial
    // locality (Section 2, footnote 2).
    Footprint deliver = Footprint::full();
    if (line_bytes == kLineBytes / 2) {
        unsigned half = static_cast<unsigned>(line & 1);
        Footprint mask;
        for (WordIdx w = 0; w < kWordsPerLine / 2; ++w)
            mask.set(half * (kWordsPerLine / 2) + w);
        deliver = mask;
    }

    unsigned pos = 0;
    if (CacheLineState *hit = cache.findTouch(line, &pos)) {
        noteFootprintTouch(*hit, word, pos);
        if (write)
            hit->dirty = true;
        ++statsData.locHits;
        L2Result res{L2Outcome::LocHit, deliver, latency.hit};
        if (hit->prefetched) {
            hit->prefetched = false;
            res.promotedPrefetch = true;
        }
        return res;
    }

    // Miss: fetch from memory, install whole line.
    if (compulsory.firstTouch(line))
        ++statsData.compulsoryMisses;
    ++statsData.lineMisses;

    CacheLineState victim = cache.install(line);
    noteEviction(victim);

    CacheLineState *fresh = cache.mruLine(line);
    fresh->instr = instr;
    fresh->footprint.set(word);
    fresh->dirty = write;
    fresh->validWords = deliver;
    return {L2Outcome::LineMiss, deliver,
            latency.hit + latency.memory};
}

void
TraditionalL2::l1dEviction(LineAddr line, Footprint used,
                           Footprint dirty_words)
{
    // The L1D always speaks in 64B lines. With a 32B L2 line size,
    // one L1D line spans two L2 lines: split the footprint halves.
    unsigned line_bytes = cache.geometry().lineBytes;
    if (line_bytes == kLineBytes / 2) {
        for (unsigned half = 0; half < 2; ++half) {
            Footprint used_half;
            Footprint dirty_half;
            for (WordIdx w = 0; w < kWordsPerLine / 2; ++w) {
                WordIdx src = half * (kWordsPerLine / 2) + w;
                if (used.test(src))
                    used_half.set(w);
                if (dirty_words.test(src))
                    dirty_half.set(w);
            }
            if (!used_half.empty() || !dirty_half.empty())
                mergeL1Eviction(line * 2 + half, used_half,
                                dirty_half);
        }
        return;
    }
    mergeL1Eviction(line, used, dirty_words);
}

void
TraditionalL2::mergeL1Eviction(LineAddr line, Footprint used,
                               Footprint dirty_words)
{
    CacheLineState *resident = cache.find(line);
    if (!resident) {
        // Non-inclusive: the L2 dropped the line already; dirty data
        // goes straight to memory.
        if (!dirty_words.empty())
            ++statsData.writebacks;
        return;
    }
    // OR-merge the L1D footprint (Section 4.1). A merge that adds
    // new bits counts as a footprint change for the Figure-2 metric.
    Footprint merged = resident->footprint | used;
    if (!(merged == resident->footprint)) {
        unsigned pos = cache.position(line);
        if (pos > resident->maxRecency)
            resident->maxRecency = static_cast<std::uint8_t>(pos);
        if (resident->maxRecency > resident->maxBeforeChange)
            resident->maxBeforeChange = resident->maxRecency;
        resident->footprint = merged;
    }
    if (!dirty_words.empty())
        resident->dirty = true;
}

bool
TraditionalL2::prefetch(LineAddr line)
{
    // Prefetches use the native line geometry directly and install
    // with an empty footprint; they are not demand accesses, so
    // neither the access nor the miss counters move.
    if (cache.find(line))
        return false;
    CacheLineState victim = cache.install(line);
    noteEviction(victim);
    CacheLineState *fresh = cache.mruLine(line);
    fresh->validWords = Footprint::full();
    fresh->prefetched = true;
    return true;
}

double
TraditionalL2::avgWordsUsed() const
{
    return wordsHist.mean();
}

} // namespace ldis
