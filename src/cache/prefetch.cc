#include "prefetch.hh"

#include "common/logging.hh"

namespace ldis
{

PrefetchingL2::PrefetchingL2(std::unique_ptr<SecondLevelCache> in,
                             unsigned deg)
    : inner(std::move(in)), degree(deg)
{
    ldis_assert(inner != nullptr);
    ldis_assert(degree >= 1);
}

L2Result
PrefetchingL2::access(Addr addr, bool write, Addr pc, bool instr)
{
    L2Result res = inner->access(addr, write, pc, instr);
    // Tagged prefetching: a demand miss or the first demand touch
    // of a prefetched line both arm the next-line prefetches.
    if ((res.outcome == L2Outcome::LineMiss ||
         res.promotedPrefetch) && !instr) {
        LineAddr line = lineAddrOf(addr);
        for (unsigned d = 1; d <= degree; ++d) {
            if (inner->prefetch(line + d))
                ++pfStats.issued;
            else
                ++pfStats.rejected;
        }
    }
    return res;
}

void
PrefetchingL2::l1dEviction(LineAddr line, Footprint used,
                           Footprint dirty_words)
{
    inner->l1dEviction(line, used, dirty_words);
}

bool
PrefetchingL2::prefetch(LineAddr line)
{
    return inner->prefetch(line);
}

const L2Stats &
PrefetchingL2::stats() const
{
    return inner->stats();
}

void
PrefetchingL2::resetStats()
{
    inner->resetStats();
    pfStats = PrefetchStats{};
}

std::string
PrefetchingL2::describe() const
{
    return inner->describe() + " +next-" + std::to_string(degree)
         + "-line-prefetch";
}

} // namespace ldis
