/**
 * @file
 * Sectored first-level data cache (Section 4.2). Each line carries
 * per-word valid bits (so partial WOC fills can be accommodated), a
 * usage footprint (drained to the LOC on eviction, Section 4.1), and
 * per-word dirty bits. An access to an invalid word of a resident
 * line is a *sector miss* and is forwarded to the L2 like a miss.
 */

#ifndef DISTILLSIM_CACHE_SECTORED_L1D_HH
#define DISTILLSIM_CACHE_SECTORED_L1D_HH

#include <string>

#include "cache/l2_interface.hh"
#include "cache/set_assoc.hh"
#include "cache/stream_sink.hh"
#include "common/audit.hh"

namespace ldis
{

/** Statistics of the L1D. */
struct L1DStats
{
    std::uint64_t accesses = 0;
    std::uint64_t hits = 0;
    std::uint64_t sectorMisses = 0;
    std::uint64_t lineMisses = 0;

    std::uint64_t misses() const { return sectorMisses + lineMisses; }
};

/** Result of one L1D access, including the L2 outcome if consulted. */
struct L1DResult
{
    /** True iff satisfied without consulting the L2. */
    bool l1Hit = false;

    /** Valid only when !l1Hit. */
    L2Result l2;

    /** Data-available latency (L1 hit latency or L2 latency). */
    Cycle latency = 0;
};

/** Write-back, write-allocate sectored L1D. */
class SectoredL1D
{
  public:
    /**
     * @param geom geometry (16kB, 2-way, 64B in the baseline)
     * @param l2 backing second-level cache
     * @param hit_latency L1 hit latency in cycles
     */
    SectoredL1D(const CacheGeometry &geom, SecondLevelCache &l2,
                Cycle hit_latency = 3);

    /**
     * Perform one data access.
     * @param pc PC of the load/store (forwarded to the L2 for the
     *        SFP baseline)
     */
    L1DResult access(Addr addr, bool write, Addr pc = 0);

    const L1DStats &stats() const { return statsData; }

    /** Zero the counters (warmup support); contents untouched. */
    void resetStats() { statsData = L1DStats{}; }

    /** Underlying tag array (read-only, for tests). */
    const SetAssocCache &tags() const { return cache; }

    /** Attach a front-end event observer (null to detach). */
    void setSink(FrontEndSink *s) { sink = s; }

    /**
     * Audit sector bookkeeping on top of the tag-array invariants:
     * dirty words and the usage footprint never exceed the valid
     * (filled) words of a resident line.
     * @return "" when well-formed, else the first violation
     */
    std::string auditInvariants() const;

  private:
    /** Evict @p victim, draining footprint/dirty info to the L2. */
    void drainToL2(const CacheLineState &victim);

    SetAssocCache cache;
    SecondLevelCache &l2;
    Cycle hitLatency;
    L1DStats statsData;
    FrontEndSink *sink = nullptr;
    audit::Clock auditClock;
};

} // namespace ldis

#endif // DISTILLSIM_CACHE_SECTORED_L1D_HH
