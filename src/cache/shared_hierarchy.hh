/**
 * @file
 * Multi-programmed shared-L2 hierarchy: each mix member keeps
 * private L1s (and its own synthetic PC walker), all of which miss
 * into ONE shared SecondLevelCache. Per-stream L2 stat attribution is
 * provided by StreamAttributingL2, a wrapper that splits the shared
 * cache's counter deltas by the address-space tag of each request
 * (src/trace/mix.hh), so per-stream counters sum to the aggregate
 * exactly, field by field.
 */

#ifndef DISTILLSIM_CACHE_SHARED_HIERARCHY_HH
#define DISTILLSIM_CACHE_SHARED_HIERARCHY_HH

#include <array>
#include <memory>
#include <vector>

#include "cache/hierarchy.hh"
#include "cache/l1i.hh"
#include "cache/sectored_l1d.hh"
#include "trace/mix.hh"

namespace ldis
{

/**
 * Wraps a shared L2 and attributes every counter increment to the
 * mix stream that caused it. Attribution is by delta: the wrapper
 * snapshots the inner stats before each forwarded call and charges
 * the field-wise difference to the stream owning the request's
 * address. Every mutating entry point is wrapped, so the per-stream
 * counters always sum to the inner cache's aggregate exactly.
 *
 * Cross-stream side effects (a fill of stream A evicting a line of
 * stream B) are charged to the *accessing* stream — the convention
 * throughout is "who caused the work", not "whose data moved".
 */
class StreamAttributingL2 final : public SecondLevelCache
{
  public:
    /** @param inner_l2 the shared cache (not owned) */
    explicit StreamAttributingL2(SecondLevelCache &inner_l2)
        : inner(inner_l2)
    {
    }

    L2Result access(Addr addr, bool write, Addr pc,
                    bool instr) override;
    void l1dEviction(LineAddr line, Footprint used,
                     Footprint dirty_words) override;
    bool prefetch(LineAddr line) override;

    const L2Stats &stats() const override { return inner.stats(); }
    void resetStats() override;
    std::string describe() const override { return inner.describe(); }

    /** Counters attributed to mix stream @p s. */
    const L2Stats &
    streamStats(std::size_t s) const
    {
        return perStream[s];
    }

    SecondLevelCache &innerCache() { return inner; }

  private:
    /** Charge (after - before) to stream @p s, field by field. */
    void charge(std::size_t s, const L2Stats &before);

    SecondLevelCache &inner;
    std::array<L2Stats, kMaxMixStreams> perStream{};
};

/**
 * The multi-programmed simulation engine: drives a MixWorkload's
 * interleaved access stream through per-member private L1s into one
 * shared L2. The L1 geometry is identical for every member (solo
 * defaults), and each member's walker uses the solo seed with its
 * code region relocated into the member's tagged address space — so
 * a member's private-L1 evolution is isomorphic to its solo run.
 */
class SharedHierarchy
{
  public:
    /**
     * @param mix composed workload (not owned)
     * @param l2 shared second-level cache (not owned); pass a
     *        StreamAttributingL2 for per-stream attribution
     * @param params per-member L1 geometry
     */
    SharedHierarchy(MixWorkload &mix, SecondLevelCache &l2,
                    const HierarchyParams &params = {});

    /** Simulate the mix to completion (every member at target). */
    void run();

    const HierarchyStats &stats() const { return hierStats; }

    const L1DStats &
    l1dStats(std::size_t s) const
    {
        return members[s]->l1d.stats();
    }

    const L1IStats &
    l1iStats(std::size_t s) const
    {
        return members[s]->l1i.stats();
    }

    /** Field-wise sums over the members' private L1s. */
    L1DStats aggregateL1d() const;
    L1IStats aggregateL1i() const;

  private:
    struct Member
    {
        Member(const CacheGeometry &l1d_geom,
               const CacheGeometry &l1i_geom, SecondLevelCache &l2,
               const CodeModel &code, Addr code_base)
            : l1d(l1d_geom, l2), l1i(l1i_geom, l2),
              walker(code, 0x1234567, code_base)
        {
        }

        SectoredL1D l1d;
        L1ICache l1i;
        CodeWalker walker;
    };

    MixWorkload &mix;
    std::vector<std::unique_ptr<Member>> members;
    bool modelISide;
    HierarchyStats hierStats;
};

} // namespace ldis

#endif // DISTILLSIM_CACHE_SHARED_HIERARCHY_HH
