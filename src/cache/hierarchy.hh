/**
 * @file
 * Trace-driven two-level hierarchy driver: pulls accesses from a
 * workload, walks a synthetic PC through the workload's code
 * footprint for the instruction side, and feeds the L1s (which feed
 * the pluggable L2). This is the engine behind every MPKI experiment
 * in the paper; the execution-driven IPC model (src/cpu) layers
 * timing on top of the same components.
 */

#ifndef DISTILLSIM_CACHE_HIERARCHY_HH
#define DISTILLSIM_CACHE_HIERARCHY_HH

#include <algorithm>
#include <array>
#include <cstddef>

#include "common/random.hh"
#include "cache/l1i.hh"
#include "cache/sectored_l1d.hh"
#include "trace/workload.hh"

namespace ldis
{

/** L1 geometry (Table 1 defaults). */
struct HierarchyParams
{
    CacheGeometry l1i{16 * 1024, 2, kLineBytes, ReplPolicy::LRU, 11};
    CacheGeometry l1d{16 * 1024, 2, kLineBytes, ReplPolicy::LRU, 13};

    /** If false, skip the instruction side entirely (pure D-trace). */
    bool modelInstructionSide = true;
};

/** Default base of the code region (bottom of the address space). */
inline constexpr Addr kCodeBase = 0x10000;

/** Synthetic PC walker over a workload's code footprint. */
class CodeWalker
{
  public:
    /**
     * @param code_base byte address the code region starts at; mix
     *        members relocate it into their tagged address space
     *        (src/trace/mix.hh) so instruction streams never alias.
     */
    CodeWalker(const CodeModel &model, std::uint64_t seed,
               Addr code_base = kCodeBase);

    /**
     * Advance the PC by @p instructions instructions and invoke
     * @p fetch(line_pc) for every new instruction line entered.
     */
    template <typename F>
    void
    advance(std::uint64_t instructions, F &&fetch)
    {
        while (instructions > 0) {
            if (instrsToJump == 0) {
                jump();
                continue;
            }
            // Instructions until the PC leaves the current line.
            std::uint64_t to_boundary =
                (kLineBytes - (pc % kLineBytes)) / 4;
            std::uint64_t step =
                std::min({instructions, instrsToJump, to_boundary});
            if (step == 0)
                step = 1;
            if (pc % kLineBytes == 0)
                fetch(codeBase + pc);
            pc += step * 4;
            if (pc >= code.codeBytes)
                pc = 0;
            instructions -= step;
            instrsToJump -= std::min(instrsToJump, step);
        }
    }

    Addr currentPc() const { return codeBase + pc; }

  private:
    void jump();

    CodeModel code;
    Random rng;
    Addr codeBase;
    Addr pc;             //!< byte offset within the code region
    std::uint64_t instrsToJump;
};

/** Hierarchy-level statistics. */
struct HierarchyStats
{
    InstCount instructions = 0;
    std::uint64_t dataAccesses = 0;
};

/** The trace-driven simulation engine. */
class Hierarchy
{
  public:
    /**
     * @param workload access stream (not owned)
     * @param l2 second-level cache (not owned)
     * @param params L1 geometry
     */
    Hierarchy(Workload &workload, SecondLevelCache &l2,
              const HierarchyParams &params = {});

    /** Simulate until @p instructions more instructions retire. */
    void run(InstCount instructions);

    const HierarchyStats &stats() const { return hierStats; }
    const L1DStats &l1dStats() const { return l1d.stats(); }
    const L1IStats &l1iStats() const { return l1i.stats(); }

    /**
     * Zero every statistics counter in the hierarchy and the backing
     * L2 (warmup support). Cache contents are untouched.
     */
    void
    resetStats()
    {
        hierStats = HierarchyStats{};
        l1d.resetStats();
        l1i.resetStats();
        l2.resetStats();
    }

    /** Misses per kilo-instruction of the backing L2. */
    double mpki() const;

    /**
     * Attach a front-end event observer to the hierarchy and both
     * L1s (null to detach). Used by the stream recorder to capture
     * the L2-visible reference stream (src/sim/replay).
     */
    void
    attachSink(FrontEndSink *s)
    {
        sink = s;
        l1d.setSink(s);
        l1i.setSink(s);
    }

  private:
    /** Accesses pulled per Workload::fill call. */
    static constexpr std::size_t kBatchSize = 256;

    Workload &workload;
    SecondLevelCache &l2;
    SectoredL1D l1d;
    L1ICache l1i;
    CodeWalker walker;
    bool modelISide;
    HierarchyStats hierStats;
    FrontEndSink *sink = nullptr;

    /**
     * Prefetched slice of the access stream. Unconsumed accesses
     * carry over between run() calls, so warmup/measure boundaries
     * fall on exactly the same stream positions as unbatched
     * next() consumption.
     */
    std::array<Access, kBatchSize> batch;
    std::size_t batchPos = 0;
    std::size_t batchLen = 0;
};

} // namespace ldis

#endif // DISTILLSIM_CACHE_HIERARCHY_HH
