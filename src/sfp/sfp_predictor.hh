/**
 * @file
 * Spatial Footprint Predictor (Kumar & Wilkerson, ISCA'98), the
 * comparison baseline of Figure 13. The predictor memorizes, per
 * (miss PC, miss word offset) key, the footprint the line exhibited
 * during its last residency, and predicts it at the next miss from
 * the same key. The paper evaluates 16k-entry (64kB) and 64k-entry
 * (256kB) tables.
 */

#ifndef DISTILLSIM_SFP_SFP_PREDICTOR_HH
#define DISTILLSIM_SFP_SFP_PREDICTOR_HH

#include <cstdint>
#include <vector>

#include "common/footprint.hh"
#include "common/types.hh"

namespace ldis
{

/** Prediction-table statistics. */
struct SfpPredictorStats
{
    std::uint64_t lookups = 0;
    std::uint64_t predictions = 0; //!< lookups that hit the table
    std::uint64_t trainings = 0;
};

/** The footprint history table. */
class SfpPredictor
{
  public:
    /** @param entries table size (power of two; 16k or 64k). */
    explicit SfpPredictor(std::size_t entries);

    /**
     * Predict the footprint for a miss at (@p pc, @p word). The
     * demand word is always included; without table information the
     * prediction defaults to the full line (fetch-all).
     */
    Footprint predict(Addr pc, WordIdx word);

    /**
     * Train the table with the footprint @p observed that a line
     * exhibited, keyed by the (@p pc, @p word) of the miss that
     * installed it.
     */
    void train(Addr pc, WordIdx word, Footprint observed);

    const SfpPredictorStats &stats() const { return statsData; }

    /** Table storage in bytes (footprint + valid per entry). */
    std::uint64_t storageBytes() const;

  private:
    struct Entry
    {
        bool valid = false;
        Footprint footprint;
    };

    std::size_t indexOf(Addr pc, WordIdx word) const;

    std::vector<Entry> table;
    SfpPredictorStats statsData;
};

} // namespace ldis

#endif // DISTILLSIM_SFP_SFP_PREDICTOR_HH
