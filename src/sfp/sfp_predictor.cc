#include "sfp_predictor.hh"

#include "common/intmath.hh"
#include "common/logging.hh"

namespace ldis
{

namespace
{

std::uint64_t
mix(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

} // namespace

SfpPredictor::SfpPredictor(std::size_t entries) : table(entries)
{
    if (!isPowerOf2(entries))
        ldis_fatal("SFP table size must be a power of two");
}

std::size_t
SfpPredictor::indexOf(Addr pc, WordIdx word) const
{
    return mix(pc * kWordsPerLine + word) & (table.size() - 1);
}

Footprint
SfpPredictor::predict(Addr pc, WordIdx word)
{
    ++statsData.lookups;
    const Entry &e = table[indexOf(pc, word)];
    Footprint fp;
    if (e.valid) {
        ++statsData.predictions;
        fp = e.footprint;
    } else {
        fp = Footprint::full();
    }
    fp.set(word);
    return fp;
}

void
SfpPredictor::train(Addr pc, WordIdx word, Footprint observed)
{
    ++statsData.trainings;
    Entry &e = table[indexOf(pc, word)];
    e.valid = true;
    e.footprint = observed;
}

std::uint64_t
SfpPredictor::storageBytes() const
{
    // Roughly: 8-bit footprint + valid, plus partial tag, ~4B per
    // entry in the paper's accounting (16k entries = 64kB).
    return table.size() * 4;
}

} // namespace ldis
