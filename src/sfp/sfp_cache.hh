/**
 * @file
 * SFP-managed L2 (the Figure-13 comparator): a decoupled sectored
 * cache (Seznec, ISCA'94) in which a spatial footprint predictor
 * decides, at miss time, which words of the line to fetch and
 * install.
 *
 * Placement restriction of the decoupled sectored data store: word i
 * of a line can only live in word-slot i of a data way, so two lines
 * can share a data way only if their installed footprints are
 * disjoint (Section 9: "if two lines require only the first word in
 * the line then they cannot reside together in the same data line").
 * Tag entries are over-provisioned (same count as the distill
 * cache's LOC + WOC tags) so several partial lines can share the
 * set's data ways.
 */

#ifndef DISTILLSIM_SFP_SFP_CACHE_HH
#define DISTILLSIM_SFP_SFP_CACHE_HH

#include <memory>
#include <string>
#include <vector>

#include "cache/l2_interface.hh"
#include "cache/traditional_l2.hh"
#include "common/audit.hh"
#include "common/random.hh"
#include "distill/reverter.hh"
#include "sfp/sfp_predictor.hh"

namespace ldis
{

/** SFP cache configuration. */
struct SfpParams
{
    std::uint64_t bytes = 1 << 20; //!< data capacity {1MB}
    unsigned ways = 8;             //!< data ways per set {8}

    /**
     * Tag entries per set. The paper gives the decoupled sectored
     * cache as many tag entries as the distill cache: 6 LOC tags +
     * 2 * 8 WOC tags = 22 for the default configuration.
     */
    unsigned tagEntriesPerSet = 22;

    /** Predictor table entries {16k or 64k}. */
    std::size_t predictorEntries = 16 * 1024;

    /** Add the reverter circuit (the paper does for Figure 13). */
    bool useReverter = true;

    ReverterParams reverter{};

    std::uint64_t seed = 33;
    Cycle hitLatency = 16;
    Cycle memLatency = 400;
};

/** SFP-specific statistics. */
struct SfpStats
{
    std::uint64_t partialInstalls = 0; //!< installs with < 8 words
    std::uint64_t fullInstalls = 0;
    std::uint64_t wordsInstalled = 0;
};

/** The SFP-managed decoupled sectored L2. */
class SfpCache : public SecondLevelCache
{
  public:
    explicit SfpCache(const SfpParams &params);

    L2Result access(Addr addr, bool write, Addr pc,
                    bool instr) override;
    void l1dEviction(LineAddr line, Footprint used,
                     Footprint dirty_words) override;
    const L2Stats &stats() const override { return statsData; }
    void
    resetStats() override
    {
        statsData = L2Stats{};
        extra = SfpStats{};
    }
    std::string describe() const override;

    const SfpStats &sfpStats() const { return extra; }
    const SfpPredictor &predictor() const { return pred; }

    /**
     * Audit one set: recency order is a permutation of the tag
     * entries, valid tags map here and are unique, installed words
     * never collide within a data way, usage/dirty masks stay within
     * the installed words, and the occupancy masks match the tags.
     * @return "" when well-formed, else the first violation
     */
    std::string auditSet(std::uint64_t set_index) const;

    /** auditSet() over every set plus the reverter audit. */
    std::string auditInvariants() const;

    /** auditInvariants() as a predicate (legacy tests). */
    bool
    checkIntegrity() const
    {
        return auditInvariants().empty();
    }

  private:
    /** Test-only state-corruption backdoor (tests/test_audit.cc). */
    friend struct AuditBackdoor;

    struct STag
    {
        bool valid = false;
        LineAddr line = 0;
        Footprint words;      //!< words installed
        Footprint dirty;      //!< dirty subset
        Footprint used;       //!< words touched while resident
        std::uint8_t way = 0; //!< data way holding the words
        Addr missPc = 0;      //!< training key
        WordIdx missWord = 0; //!< training key
    };

    struct SSet
    {
        std::vector<STag> tags;
        /** Tag indices ordered MRU (front) to LRU (back). */
        std::vector<std::uint8_t> order;
        /** Per-way occupied word-slots. */
        std::vector<Footprint> occupied;
    };

    std::uint64_t setIndexOf(LineAddr line) const;
    int tagOf(const SSet &s, LineAddr line) const;
    void touchTag(SSet &s, unsigned idx);

    /** Evict tag @p idx, training the predictor. */
    void evictTag(SSet &s, unsigned idx);

    /** Install @p line with footprint @p words; returns the tag. */
    STag &installTag(SSet &s, LineAddr line, Footprint words,
                     Addr pc, WordIdx word);

    SfpParams prm;
    unsigned setsCount;
    std::vector<SSet> sets;
    SfpPredictor pred;
    Random rng;
    std::unique_ptr<Reverter> reverterUnit;
    CompulsoryTracker compulsory;
    L2Stats statsData;
    SfpStats extra;
    audit::Clock auditClock;
};

} // namespace ldis

#endif // DISTILLSIM_SFP_SFP_CACHE_HH
