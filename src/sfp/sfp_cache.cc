#include "sfp_cache.hh"

#include <algorithm>
#include <cstdio>

#include "common/intmath.hh"
#include "common/logging.hh"

namespace ldis
{

SfpCache::SfpCache(const SfpParams &params)
    : prm(params), pred(params.predictorEntries), rng(params.seed)
{
    std::uint64_t lines = prm.bytes / kLineBytes;
    if (lines % prm.ways != 0)
        ldis_fatal("SFP cache: capacity does not divide into %u ways",
                   prm.ways);
    std::uint64_t num_sets = lines / prm.ways;
    if (!isPowerOf2(num_sets))
        ldis_fatal("SFP cache: set count must be a power of two");
    if (prm.tagEntriesPerSet < prm.ways || prm.tagEntriesPerSet > 255)
        ldis_fatal("SFP cache: bad tag entry count %u",
                   prm.tagEntriesPerSet);
    setsCount = static_cast<unsigned>(num_sets);

    sets.resize(setsCount);
    for (auto &s : sets) {
        s.tags.resize(prm.tagEntriesPerSet);
        s.order.resize(prm.tagEntriesPerSet);
        for (unsigned i = 0; i < prm.tagEntriesPerSet; ++i)
            s.order[i] = static_cast<std::uint8_t>(i);
        s.occupied.resize(prm.ways);
    }

    if (prm.useReverter) {
        CacheGeometry atd_geom;
        atd_geom.bytes = prm.bytes;
        atd_geom.ways = prm.ways;
        atd_geom.lineBytes = kLineBytes;
        reverterUnit =
            std::make_unique<Reverter>(atd_geom, prm.reverter);
    }
}

std::string
SfpCache::describe() const
{
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  "SFP %lluKB %u-way decoupled sectored "
                  "(%u tags/set, %zuk-entry predictor)%s",
                  static_cast<unsigned long long>(prm.bytes / 1024),
                  prm.ways, prm.tagEntriesPerSet,
                  prm.predictorEntries / 1024,
                  prm.useReverter ? " +RC" : "");
    return buf;
}

std::uint64_t
SfpCache::setIndexOf(LineAddr line) const
{
    return line & (setsCount - 1);
}

int
SfpCache::tagOf(const SSet &s, LineAddr line) const
{
    for (unsigned i = 0; i < s.tags.size(); ++i)
        if (s.tags[i].valid && s.tags[i].line == line)
            return static_cast<int>(i);
    return -1;
}

void
SfpCache::touchTag(SSet &s, unsigned idx)
{
    auto it = std::find(s.order.begin(), s.order.end(),
                        static_cast<std::uint8_t>(idx));
    ldis_assert(it != s.order.end());
    s.order.erase(it);
    s.order.insert(s.order.begin(), static_cast<std::uint8_t>(idx));
}

void
SfpCache::evictTag(SSet &s, unsigned idx)
{
    STag &t = s.tags[idx];
    ldis_assert(t.valid);
    ++statsData.evictions;
    if (!t.dirty.empty())
        ++statsData.writebacks;
    // Train the predictor with the observed usage (at least the
    // demand word is always used).
    Footprint observed = t.used;
    observed.set(t.missWord);
    pred.train(t.missPc, t.missWord, observed);
    // Release the data-way slots.
    Footprint &occ = s.occupied[t.way];
    occ = Footprint(static_cast<std::uint8_t>(
        occ.raw() & ~t.words.raw()));
    t = STag{};
    LDIS_AUDIT_CHECK("SfpCache",
                     auditSet(static_cast<std::uint64_t>(
                         &s - sets.data())));
}

SfpCache::STag &
SfpCache::installTag(SSet &s, LineAddr line, Footprint words,
                     Addr pc, WordIdx word)
{
    ldis_assert(!words.empty());

    // Find a data way whose occupied slots do not collide with the
    // requested footprint.
    int way = -1;
    for (unsigned w = 0; w < prm.ways; ++w) {
        if ((s.occupied[w] & words).empty()) {
            way = static_cast<int>(w);
            break;
        }
    }
    if (way < 0) {
        // No conflict-free way: clear the way holding the
        // least-recently-used colliding line (approximating the
        // LRU the baseline enjoys).
        for (auto it = s.order.rbegin(); it != s.order.rend();
             ++it) {
            const STag &t = s.tags[*it];
            if (t.valid && !(t.words & words).empty()) {
                way = t.way;
                break;
            }
        }
        ldis_assert(way >= 0);
        for (unsigned i = 0; i < s.tags.size(); ++i) {
            STag &t = s.tags[i];
            if (t.valid && t.way == way &&
                !(t.words & words).empty())
                evictTag(s, i);
        }
    }

    // Find a free tag entry, evicting the LRU tag if necessary.
    int slot = -1;
    for (unsigned i = 0; i < s.tags.size(); ++i) {
        if (!s.tags[i].valid) {
            slot = static_cast<int>(i);
            break;
        }
    }
    if (slot < 0) {
        for (auto it = s.order.rbegin(); it != s.order.rend(); ++it) {
            if (s.tags[*it].valid) {
                evictTag(s, *it);
                slot = *it;
                break;
            }
        }
        ldis_assert(slot >= 0);
    }

    STag &t = s.tags[slot];
    t.valid = true;
    t.line = line;
    t.words = words;
    t.dirty = Footprint{};
    t.used = Footprint{};
    t.way = static_cast<std::uint8_t>(way);
    t.missPc = pc;
    t.missWord = word;
    s.occupied[way] |= words;
    touchTag(s, static_cast<unsigned>(slot));

    extra.wordsInstalled += words.count();
    if (words.isFull())
        ++extra.fullInstalls;
    else
        ++extra.partialInstalls;
    return t;
}

L2Result
SfpCache::access(Addr addr, bool write, Addr pc, bool instr)
{
    ++statsData.accesses;
    LineAddr line = lineAddrOf(addr);
    WordIdx word = wordIdxOf(addr);
    std::uint64_t set_index = setIndexOf(line);
    SSet &s = sets[set_index];

    bool leader = prm.useReverter &&
                  reverterUnit->isLeader(set_index);
    bool predict_enabled = !prm.useReverter || leader ||
                           reverterUnit->ldisEnabled();

    L2Result res;
    int idx = tagOf(s, line);
    if (idx >= 0 && s.tags[idx].words.test(word)) {
        STag &t = s.tags[idx];
        t.used.set(word);
        if (write)
            t.dirty.set(word);
        touchTag(s, static_cast<unsigned>(idx));
        ++statsData.locHits;
        res = {L2Outcome::LocHit, t.words, prm.hitLatency};
    } else if (idx >= 0) {
        // Hole miss: the predictor under-fetched. Refetch with a
        // fresh (now trained) prediction.
        ++statsData.holeMisses;
        evictTag(s, static_cast<unsigned>(idx));
        Footprint fetch = (predict_enabled && !instr)
                        ? pred.predict(pc, word)
                        : Footprint::full();
        STag &t = installTag(s, line, fetch, pc, word);
        t.used.set(word);
        if (write)
            t.dirty.set(word);
        res = {L2Outcome::HoleMiss, t.words,
               prm.hitLatency + prm.memLatency};
    } else {
        if (compulsory.firstTouch(line))
            ++statsData.compulsoryMisses;
        ++statsData.lineMisses;
        Footprint fetch = (predict_enabled && !instr)
                        ? pred.predict(pc, word)
                        : Footprint::full();
        STag &t = installTag(s, line, fetch, pc, word);
        t.used.set(word);
        if (write)
            t.dirty.set(word);
        res = {L2Outcome::LineMiss, t.words,
               prm.hitLatency + prm.memLatency};
    }

    if (leader)
        reverterUnit->recordLeaderAccess(line, isMiss(res.outcome));
    LDIS_AUDIT_POINT(auditClock, "SfpCache", *this);
    return res;
}

void
SfpCache::l1dEviction(LineAddr line, Footprint used,
                      Footprint dirty_words)
{
    SSet &s = sets[setIndexOf(line)];
    int idx = tagOf(s, line);
    if (idx < 0) {
        if (!dirty_words.empty())
            ++statsData.writebacks;
        return;
    }
    STag &t = s.tags[static_cast<unsigned>(idx)];
    t.used |= (used & t.words);
    Footprint in_cache = dirty_words & t.words;
    t.dirty |= in_cache;
    if (!(dirty_words == in_cache))
        ++statsData.writebacks;
}

std::string
SfpCache::auditSet(std::uint64_t set_index) const
{
    ldis_assert(set_index < setsCount);
    const SSet &s = sets[set_index];
    auto in_set = [&](const char *what) {
        return std::string(what) + " in set " +
               std::to_string(set_index);
    };

    // The recency order must be a permutation of the tag indices
    // (255 tags max, so a fixed bitmap suffices).
    bool seen_tags[256] = {};
    if (s.order.size() != s.tags.size())
        return in_set("recency order size mismatch");
    for (std::uint8_t idx : s.order) {
        if (idx >= s.tags.size() || seen_tags[idx])
            return in_set("recency order is not a permutation");
        seen_tags[idx] = true;
    }

    std::vector<Footprint> occ(prm.ways);
    std::vector<LineAddr> seen;
    for (const STag &t : s.tags) {
        if (!t.valid)
            continue;
        if (setIndexOf(t.line) != set_index)
            return in_set("tag line maps to a different set");
        if (t.words.empty())
            return in_set("valid tag with no installed words");
        if (t.way >= prm.ways)
            return in_set("tag points at a nonexistent data way");
        if (!((t.used & t.words) == t.used))
            return in_set("usage outside the installed words");
        if (!((t.dirty & t.words) == t.dirty))
            return in_set("dirty words outside the installed words");
        // No slot collision within a way.
        if (!(occ[t.way] & t.words).empty())
            return in_set("word-slot collision within a data way");
        occ[t.way] |= t.words;
        for (LineAddr l : seen)
            if (l == t.line)
                return in_set("line occupies two tags");
        seen.push_back(t.line);
    }
    for (unsigned w = 0; w < prm.ways; ++w)
        if (!(occ[w] == s.occupied[w]))
            return in_set("occupancy mask disagrees with the tags");
    return "";
}

std::string
SfpCache::auditInvariants() const
{
    for (unsigned i = 0; i < setsCount; ++i) {
        std::string violation = auditSet(i);
        if (!violation.empty())
            return violation;
    }
    if (reverterUnit) {
        std::string rc_violation = reverterUnit->auditInvariants();
        if (!rc_violation.empty())
            return "reverter: " + rc_violation;
    }
    return "";
}

} // namespace ldis
