/**
 * @file
 * The unit of work produced by workload generators: one data-memory
 * access plus the instruction-stream context around it (non-memory op
 * count, branch count, dependence distance). The cache-only
 * experiments use the address/PC fields; the execution-driven IPC
 * model (src/cpu) additionally uses the dependence and branch fields.
 */

#ifndef DISTILLSIM_TRACE_ACCESS_HH
#define DISTILLSIM_TRACE_ACCESS_HH

#include <cstdint>

#include "common/types.hh"

namespace ldis
{

/** One data access and its surrounding instruction context. */
struct Access
{
    /** Byte address of the 8B (or smaller) data access. */
    Addr addr = 0;

    /** PC of the load/store instruction (used by the SFP baseline). */
    Addr pc = 0;

    /** True for stores. */
    bool write = false;

    /**
     * Number of non-memory instructions retired between the previous
     * access and this one (this access itself counts as one more
     * instruction).
     */
    std::uint32_t nonMemOps = 0;

    /** Number of conditional branches among those non-memory ops. */
    std::uint32_t branches = 0;

    /**
     * Address-generation dependence distance, in loads: this access's
     * address depends on the result of the load issued @c depDist
     * loads earlier. 0 means the address is available immediately
     * (array-style access, misses can overlap); 1 means strict
     * pointer chasing (misses serialize).
     */
    std::uint8_t depDist = 0;

    /** Instructions this record contributes (ops + the access). */
    std::uint64_t instructions() const { return nonMemOps + 1ull; }
};

/**
 * Parameters of the instruction-fetch side of a workload: the code
 * footprint and average sequential-run length. The hierarchy driver
 * walks a synthetic PC through the footprint to produce L1I traffic.
 */
struct CodeModel
{
    /** Static code footprint in bytes (region the PC jumps within). */
    std::uint64_t codeBytes = 8 * 1024;

    /** Average instructions executed between taken jumps. */
    std::uint32_t avgRunInstrs = 12;
};

} // namespace ldis

#endif // DISTILLSIM_TRACE_ACCESS_HH
