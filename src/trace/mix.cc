#include "mix.hh"

#include "common/logging.hh"

namespace ldis
{

ValueProfile
blendValueProfiles(const std::vector<ValueProfile> &profiles,
                   const std::vector<InstCount> &weights)
{
    ldis_assert(!profiles.empty());
    ldis_assert(profiles.size() == weights.size());
    double total = 0.0;
    for (InstCount w : weights)
        total += static_cast<double>(w);
    if (total == 0.0)
        return profiles.front();
    ValueProfile out;
    out.pZero = out.pOne = out.pNarrow = 0.0;
    for (std::size_t i = 0; i < profiles.size(); ++i) {
        double w = static_cast<double>(weights[i]) / total;
        out.pZero += w * profiles[i].pZero;
        out.pOne += w * profiles[i].pOne;
        out.pNarrow += w * profiles[i].pNarrow;
    }
    return out;
}

const Access &
MixWorkload::Member::peek()
{
    if (batchPos >= batchLen) {
        batchLen = workload->fill(batch.data(), kBatchSize);
        batchPos = 0;
    }
    return batch[batchPos];
}

MixWorkload::MixWorkload(const std::vector<MemberSpec> &specs,
                         InstCount quantum_instrs)
    : quantum(quantum_instrs)
{
    ldis_assert(specs.size() >= 2 && specs.size() <= kMaxMixStreams);
    ldis_assert(quantum >= 1);
    members.reserve(specs.size());
    for (const MemberSpec &spec : specs) {
        ldis_assert(spec.target > 0);
        Member m;
        m.spec = spec;
        m.workload = makeBenchmark(spec.benchmark, spec.seed);
        m.boundary = quantum;
        members.push_back(std::move(m));
    }
    remaining = members.size();
}

bool
MixWorkload::next(MixedAccess &out)
{
    while (remaining > 0) {
        Member &m = members[turn];
        if (!m.done()) {
            // Emit while the member's clock after the access stays
            // within this turn's boundary. The target check mirrors
            // the solo Hierarchy::run stop rule (consume while below
            // target, even when the last access overshoots it).
            const Access &a = m.peek();
            if (m.position + a.instructions() <= m.boundary) {
                ++m.batchPos;
                m.position += a.instructions();
                out.access = a;
                out.access.addr += mixStreamBase(turn);
                out.access.pc += mixStreamBase(turn);
                out.stream = turn;
                if (m.done())
                    --remaining;
                return true;
            }
        }
        // Turn over: the boundary advances whether or not anything
        // was emitted, so an access larger than the quantum cannot
        // stall the rotation.
        m.boundary += quantum;
        turn = (turn + 1) % members.size();
    }
    return false;
}

ValueProfile
MixWorkload::valueProfile() const
{
    std::vector<ValueProfile> profiles;
    std::vector<InstCount> weights;
    profiles.reserve(members.size());
    weights.reserve(members.size());
    for (const Member &m : members) {
        profiles.push_back(m.workload->valueProfile());
        weights.push_back(m.spec.target);
    }
    return blendValueProfiles(profiles, weights);
}

} // namespace ldis
