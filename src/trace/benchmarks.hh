/**
 * @file
 * Named benchmark proxies. Each proxy is a CompositeWorkload whose
 * region parameters are calibrated against the characteristics the
 * paper reports for that benchmark: MPKI and compulsory-miss fraction
 * (Table 2), average words used per line vs. cache size (Table 6 /
 * Fig 1), and the qualitative response to Line Distillation (Fig 6).
 *
 * The proxies replace the paper's Alpha SPEC CPU2000 SimPoint traces,
 * which are not redistributable; see DESIGN.md section 2 for the
 * substitution argument.
 */

#ifndef DISTILLSIM_TRACE_BENCHMARKS_HH
#define DISTILLSIM_TRACE_BENCHMARKS_HH

#include <memory>
#include <string>
#include <vector>

#include "trace/workload.hh"

namespace ldis
{

/** Paper-reported reference numbers for one benchmark. */
struct BenchmarkInfo
{
    std::string name;

    /** Table 2: L2 misses per 1000 instructions (baseline 1MB). */
    double paperMpki = 0.0;

    /** Table 2: fraction of misses that are compulsory. */
    double paperCompulsory = 0.0;

    /** Table 6: average words used per line at 1MB (0 if absent). */
    double paperWords1MB = 0.0;

    /** True for the Appendix-A cache-insensitive set. */
    bool insensitive = false;
};

/** Reference table for all benchmarks (studied + insensitive). */
const std::vector<BenchmarkInfo> &benchmarkTable();

/** Names of the 16 studied benchmarks, in the paper's order. */
std::vector<std::string> studiedBenchmarks();

/** Names of the Appendix-A cache-insensitive benchmarks. */
std::vector<std::string> insensitiveBenchmarks();

/** Reference info for @p name; fatal if unknown. */
const BenchmarkInfo &benchmarkInfo(const std::string &name);

/**
 * Instantiate the proxy workload for @p name.
 * @param seed stream seed; the default reproduces the shipped runs
 */
std::unique_ptr<Workload> makeBenchmark(const std::string &name,
                                        std::uint64_t seed = 1);

} // namespace ldis

#endif // DISTILLSIM_TRACE_BENCHMARKS_HH
