#include "region.hh"

#include "common/intmath.hh"
#include "common/logging.hh"

namespace ldis
{

namespace
{

std::uint64_t
mix(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

} // namespace

RegionStream::RegionStream(const RegionParams &params,
                           LineAddr base_line, Addr pc_base,
                           std::uint64_t seed)
    : regionParams(params), baseLine(base_line), pcBase(pc_base),
      lines(divCeil(params.bytes, kLineBytes)), rngSeed(seed),
      rng(seed), cursor(0), chainState(mix(seed)), sweepEpoch(0),
      delayedPhase(false)
{
    ldis_assert(lines > 0);
    if (params.pattern == Pattern::DelayedSpatial &&
        params.delayLines >= lines) {
        ldis_fatal("DelayedSpatial region: delayLines (%u) must be "
                   "smaller than the region (%llu lines)",
                   params.delayLines,
                   static_cast<unsigned long long>(lines));
    }
}

void
RegionStream::reset()
{
    rng = Random(rngSeed);
    cursor = 0;
    chainState = mix(rngSeed);
    sweepEpoch = 0;
    delayedPhase = false;
}

LineAddr
RegionStream::advance()
{
    switch (regionParams.pattern) {
      case Pattern::Sequential: {
        std::uint64_t off = cursor;
        cursor += 1;
        if (cursor >= lines) {
            cursor = 0;
            ++sweepEpoch;
        }
        return baseLine + off;
      }
      case Pattern::Strided: {
        std::uint64_t off = cursor;
        cursor += regionParams.strideLines;
        if (cursor >= lines) {
            // Shift the phase by one so successive sweeps cover the
            // interleaved lines, like a blocked numeric kernel.
            cursor = (cursor + 1) % regionParams.strideLines;
            ++sweepEpoch;
        }
        return baseLine + off;
      }
      case Pattern::RandomLine: {
        // Count a pseudo-epoch every `lines` visits so rotateWords
        // has a slowly moving key for random traversals too.
        cursor += 1;
        if (cursor >= lines) {
            cursor = 0;
            ++sweepEpoch;
        }
        return baseLine + rng.below(lines);
      }
      case Pattern::PointerChase: {
        chainState = mix(chainState);
        cursor += 1;
        if (cursor >= lines) {
            cursor = 0;
            ++sweepEpoch;
        }
        return baseLine + (chainState % lines);
      }
      case Pattern::DelayedSpatial:
        // Handled in produceVisit; advance() returns the front line.
        return baseLine + cursor;
    }
    ldis_panic("unreachable pattern");
}

void
RegionStream::selectPool(LineAddr line, unsigned p,
                         unsigned *pool_out) const
{
    ldis_assert(p >= 1 && p <= kWordsPerLine);
    bool taken[kWordsPerLine] = {};
    unsigned count = 0;
    std::uint64_t h = mix(line * 0x9e3779b97f4a7c15ull + 17);
    while (count < p) {
        unsigned w = static_cast<unsigned>(h % kWordsPerLine);
        h = mix(h);
        if (!taken[w]) {
            taken[w] = true;
            pool_out[count++] = w;
        }
    }
}

unsigned
RegionStream::selectWords(std::uint64_t sel_key, unsigned k,
                          unsigned *words_out) const
{
    ldis_assert(k >= 1 && k <= kWordsPerLine);
    std::uint64_t key = sel_key * 2654435761u;
    if (regionParams.rotateWords)
        key ^= mix(sweepEpoch + 1);
    // Draw a permutation prefix of size k from the 8 words using a
    // Feistel-ish selection: stable per (line, epoch).
    bool taken[kWordsPerLine] = {};
    unsigned count = 0;
    std::uint64_t h = mix(key);
    while (count < k) {
        unsigned w = static_cast<unsigned>(h % kWordsPerLine);
        h = mix(h);
        if (!taken[w]) {
            taken[w] = true;
            words_out[count++] = w;
        }
    }
    return count;
}

void
RegionStream::emitWords(std::vector<Access> &out, LineAddr line,
                        const unsigned *words, unsigned count,
                        std::uint64_t pc_salt)
{
    for (unsigned i = 0; i < count; ++i) {
        Access a;
        a.addr = lineBaseOf(line) + words[i] * kWordBytes;
        a.pc = pcBase + pc_salt * 64 + words[i] * 4;
        a.write = rng.chance(regionParams.writeFrac);
        // Uniform in [0, 2*mean] keeps the mean while adding jitter.
        a.nonMemOps = static_cast<std::uint32_t>(
            rng.below(2 * regionParams.meanOps + 1));
        a.branches = 0;
        for (std::uint32_t b = 0; b < a.nonMemOps; ++b)
            if (rng.chance(regionParams.branchFrac))
                ++a.branches;
        a.depDist = (i == 0) ? regionParams.depDist : 0;
        out.push_back(a);
    }
}

void
RegionStream::produceVisit(std::vector<Access> &out)
{
    unsigned words[kWordsPerLine];
    unsigned count = 0;

    if (regionParams.pattern == Pattern::DelayedSpatial) {
        if (!delayedPhase) {
            // Front cursor: a single-word touch of the lead line.
            LineAddr line = baseLine + cursor;
            words[0] = 0;
            emitWords(out, line, words, 1);
            delayedPhase = true;
        } else {
            // Trailing cursor: the full-line touch, delayLines back.
            std::uint64_t trail =
                (cursor + lines - regionParams.delayLines) % lines;
            LineAddr line = baseLine + trail;
            for (unsigned w = 0; w < kWordsPerLine; ++w)
                words[w] = w;
            emitWords(out, line, words, kWordsPerLine);
            delayedPhase = false;
            cursor += 1;
            if (cursor >= lines) {
                cursor = 0;
                ++sweepEpoch;
            }
        }
        return;
    }

    LineAddr line = advance();
    // Footprint class: per-line by default, or one of pcClasses
    // PC-correlated classes (learnable by the SFP baseline).
    std::uint64_t sel_key = line;
    std::uint64_t pc_salt = 0;
    if (regionParams.pcClasses > 0) {
        sel_key = mix(line) % regionParams.pcClasses;
        pc_salt = sel_key + 1;
    }
    switch (regionParams.wordSel) {
      case WordSel::Full:
        for (unsigned w = 0; w < kWordsPerLine; ++w)
            words[w] = w;
        count = kWordsPerLine;
        break;
      case WordSel::Single:
        count = selectWords(sel_key, 1, words);
        break;
      case WordSel::SparseK:
        count = selectWords(sel_key, regionParams.wordsPerVisit,
                            words);
        break;
      case WordSel::PartialSeq:
        ldis_assert(regionParams.wordsPerVisit >= 1 &&
                    regionParams.wordsPerVisit <= kWordsPerLine);
        for (unsigned w = 0; w < regionParams.wordsPerVisit; ++w)
            words[w] = w;
        count = regionParams.wordsPerVisit;
        break;
      case WordSel::PoolRotate: {
        unsigned pool[kWordsPerLine];
        unsigned p = regionParams.poolSize;
        ldis_assert(p >= 1 && p <= kWordsPerLine);
        ldis_assert(regionParams.wordsPerVisit >= 1 &&
                    regionParams.wordsPerVisit <= p);
        // The pool is a stable per-line selection (epoch-independent)
        // so footprints accumulate across epochs for resident lines.
        selectPool(line, p, pool);
        count = 0;
        bool taken[kWordsPerLine] = {};
        std::uint64_t rot = sweepEpoch / regionParams.rotateEvery;
        for (unsigned i = 0; i < regionParams.wordsPerVisit; ++i) {
            unsigned w = pool[(rot + i) % p];
            if (!taken[w]) {
                taken[w] = true;
                words[count++] = w;
            }
        }
        break;
      }
    }
    emitWords(out, line, words, count, pc_salt);
}

} // namespace ldis
