#include "value_model.hh"

#include "common/logging.hh"

namespace ldis
{

namespace
{

/** SplitMix64-style avalanche hash. */
std::uint64_t
mix(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

} // namespace

ValueModel::ValueModel(ValueProfile profile, std::uint64_t seed)
    : prof(profile), seedMix(mix(seed))
{
    double total = prof.pZero + prof.pOne + prof.pNarrow;
    if (total > 1.0)
        ldis_fatal("value profile probabilities sum to %f > 1", total);
}

std::uint32_t
ValueModel::dword(LineAddr line, unsigned dw) const
{
    ldis_assert(dw < kDwordsPerLine);
    std::uint64_t h = mix(seedMix ^ mix(line * kDwordsPerLine + dw));
    double u = static_cast<double>(h >> 11) * 0x1.0p-53;
    if (u < prof.pZero)
        return 0;
    u -= prof.pZero;
    if (u < prof.pOne)
        return 1;
    u -= prof.pOne;
    if (u < prof.pNarrow) {
        // Narrow value: upper 16 bits zero, lower 16 nonzero so it
        // does not collapse into the 0/1 classes.
        std::uint32_t v = static_cast<std::uint32_t>(h & 0xffff);
        return v > 1 ? v : 2;
    }
    // Incompressible: force a bit above 16 so the encoder cannot
    // classify it as narrow.
    return static_cast<std::uint32_t>(h) | 0x80000000u;
}

} // namespace ldis
