/**
 * @file
 * Deterministic synthesis of the data *values* held in memory, used by
 * the compression experiments (Section 8). Instead of threading data
 * through every cache model, each 32-bit dword of memory is a pure
 * function of its address and the benchmark's value profile, so any
 * component can reconstruct line contents on demand.
 */

#ifndef DISTILLSIM_TRACE_VALUE_MODEL_HH
#define DISTILLSIM_TRACE_VALUE_MODEL_HH

#include <cstdint>

#include "common/types.hh"

namespace ldis
{

/** Number of 32-bit dwords in a 64B line (compression granularity). */
inline constexpr unsigned kDwordsPerLine = kLineBytes / 4;

/**
 * Mixture weights describing how compressible a benchmark's data is
 * under the paper's Table-4 encoding. The remaining probability mass
 * (1 - pZero - pOne - pNarrow) is incompressible 32-bit data.
 */
struct ValueProfile
{
    /** Probability a dword is exactly 0 (2-bit encoding). */
    double pZero = 0.15;

    /** Probability a dword is exactly 1 (2-bit encoding). */
    double pOne = 0.05;

    /** Probability a dword fits in 16 bits (2+16-bit encoding). */
    double pNarrow = 0.20;
};

/**
 * Deterministic value source. Two line addresses always yield the
 * same contents within a run, which is all the sampling-based
 * compressibility study (Fig 10) requires.
 */
class ValueModel
{
  public:
    explicit ValueModel(ValueProfile profile, std::uint64_t seed = 1);

    /** The 32-bit dword at position @p dword of line @p line. */
    std::uint32_t dword(LineAddr line, unsigned dword) const;

    const ValueProfile &profile() const { return prof; }

  private:
    ValueProfile prof;
    std::uint64_t seedMix;
};

} // namespace ldis

#endif // DISTILLSIM_TRACE_VALUE_MODEL_HH
