/**
 * @file
 * CompositeWorkload: a weighted mix of region streams. Each benchmark
 * proxy is an instance of this class with calibrated region
 * parameters (see benchmarks.cc).
 */

#ifndef DISTILLSIM_TRACE_COMPOSITE_HH
#define DISTILLSIM_TRACE_COMPOSITE_HH

#include <string>
#include <vector>

#include "common/random.hh"
#include "trace/region.hh"
#include "trace/workload.hh"

namespace ldis
{

/**
 * A workload assembled from weighted regions. Visits (line-sized
 * access bursts) are drawn from regions in proportion to their
 * weights; the burst structure keeps within-line accesses adjacent,
 * which is what lets the L1D coalesce them like a real machine.
 */
class CompositeWorkload : public Workload
{
  public:
    /**
     * @param name benchmark proxy name
     * @param regions region descriptions; laid out disjointly in the
     *        simulated address space in declaration order
     * @param code instruction-side model
     * @param values data-value mixture
     * @param seed master seed (regions get derived seeds)
     */
    CompositeWorkload(std::string name,
                      std::vector<RegionParams> regions,
                      CodeModel code, ValueProfile values,
                      std::uint64_t seed = 1);

    Access next() override;
    std::size_t fill(Access *out, std::size_t max) override;
    void reset() override;
    const CodeModel &codeModel() const override { return code; }
    const ValueProfile &valueProfile() const override { return vals; }
    const std::string &name() const override { return workloadName; }

    /** Number of constituent regions (for tests). */
    std::size_t numRegions() const { return streams.size(); }

    /** Base line address of region @p i (for tests). */
    LineAddr regionBase(std::size_t i) const;

  private:
    void refill();

    std::string workloadName;
    CodeModel code;
    ValueProfile vals;
    std::uint64_t masterSeed;

    std::vector<RegionStream> streams;
    std::vector<double> cumWeight;
    Random pick;

    std::vector<Access> burst;
    std::size_t burstPos;
};

} // namespace ldis

#endif // DISTILLSIM_TRACE_COMPOSITE_HH
