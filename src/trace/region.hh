/**
 * @file
 * Region streams: the building block of synthetic benchmark proxies.
 *
 * A region is a contiguous chunk of the simulated address space with
 * a traversal pattern (sequential, strided, random, pointer-chase,
 * delayed-spatial) and a word-selection model describing which of the
 * eight words of a visited line get touched. Benchmark proxies are
 * weighted mixes of regions (see composite.hh); the parameters are
 * calibrated against the per-benchmark characteristics the paper
 * reports (Tables 2 and 6).
 */

#ifndef DISTILLSIM_TRACE_REGION_HH
#define DISTILLSIM_TRACE_REGION_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.hh"
#include "common/types.hh"
#include "trace/access.hh"

namespace ldis
{

/** How the region's line cursor advances between visits. */
enum class Pattern
{
    /** Lines visited in address order, wrapping (streaming). */
    Sequential,

    /** Cursor jumps @c strideLines lines per visit, wrapping. */
    Strided,

    /** Uniformly random line each visit (low temporal order). */
    RandomLine,

    /**
     * Deterministic hash chain: the next line is a function of the
     * current one. Models linked-data traversal; accesses carry
     * depDist = 1 so the IPC model serializes the misses.
     */
    PointerChase,

    /**
     * The swim archetype: a front cursor touches word 0 of line i
     * while a trailing cursor, @c delayLines behind, touches all
     * eight words of its line. Whether the two touches coalesce into
     * one cached line depends on cache capacity, reproducing the
     * paper's observation that swim's footprints collapse to
     * one-word under 1MB and expand to full lines above 1.25MB.
     */
    DelayedSpatial,
};

/** Which words of a visited line are accessed. */
enum class WordSel
{
    /** All eight words, in order. */
    Full,

    /** A single hash-selected word. */
    Single,

    /** @c wordsPerVisit distinct hash-selected words. */
    SparseK,

    /** Words 0 .. wordsPerVisit-1, in order. */
    PartialSeq,

    /**
     * Each line owns a small pool of @c poolSize distinct words;
     * a visit touches @c wordsPerVisit consecutive pool entries
     * starting at the current epoch's rotation. Lines that stay
     * resident across epochs accumulate the pool's words in their
     * footprint (Table 6's words-grow-with-cache-size effect), while
     * lines evicted every epoch show only @c wordsPerVisit words.
     */
    PoolRotate,
};

/** Static description of one region of a synthetic workload. */
struct RegionParams
{
    /** Region size in bytes (rounded up to whole lines). */
    std::uint64_t bytes = 1 << 20;

    Pattern pattern = Pattern::Sequential;
    WordSel wordSel = WordSel::Full;

    /** Word count per visit for SparseK / PartialSeq / PoolRotate. */
    unsigned wordsPerVisit = 8;

    /** Per-line word-pool size for WordSel::PoolRotate. */
    unsigned poolSize = 4;

    /**
     * Epochs between pool-rotation steps (PoolRotate): larger values
     * keep words stable for longer, so revisits mostly hit and only
     * occasional epoch transitions produce hole-misses.
     */
    unsigned rotateEvery = 1;

    /** Stride, in lines, for Pattern::Strided. */
    unsigned strideLines = 8;

    /** Trailing-cursor distance, in lines, for DelayedSpatial. */
    unsigned delayLines = 1 << 14;

    /** Fraction of accesses that are stores. */
    double writeFrac = 0.2;

    /**
     * If true, the hash-based word selection also keys on the sweep
     * epoch, so a line revisited in a later epoch touches different
     * words. This makes the average used-word count grow with cache
     * size (lines that survive longer accumulate bigger footprints),
     * matching Table 6's art/vpr/bzip2 rows.
     */
    bool rotateWords = false;

    /** Dependence distance stamped on this region's accesses. */
    std::uint8_t depDist = 0;

    /**
     * If nonzero, Single/SparseK word selection is drawn from this
     * many footprint *classes* instead of being a pure per-line
     * hash, and the access PC encodes the class. This models
     * PC-correlated footprints (a loop touching the same fields of
     * every record), which is what makes the SFP baseline's
     * (PC, offset)-indexed predictor learnable. 0 = per-line
     * footprints (pointer-chasing heaps, unpredictable).
     */
    unsigned pcClasses = 0;

    /** Selection weight within a composite workload. */
    double weight = 1.0;

    /** Mean non-memory ops between consecutive accesses. */
    std::uint32_t meanOps = 3;

    /** Fraction of non-memory ops that are conditional branches. */
    double branchFrac = 0.15;
};

/**
 * Stateful traversal of one region. produceVisit() appends the burst
 * of accesses for the next visited line; the composite workload
 * interleaves bursts from its regions.
 */
class RegionStream
{
  public:
    /**
     * @param params traversal description
     * @param base_line first line address of the region
     * @param pc_base first synthetic PC for this region's accesses
     * @param seed RNG seed (distinct per region)
     */
    RegionStream(const RegionParams &params, LineAddr base_line,
                 Addr pc_base, std::uint64_t seed);

    /** Append one visit's burst of accesses to @p out. */
    void produceVisit(std::vector<Access> &out);

    const RegionParams &params() const { return regionParams; }

    /** Number of lines spanned by the region. */
    std::uint64_t numLines() const { return lines; }

    /** Completed full sweeps (epochs) over the region. */
    std::uint64_t epoch() const { return sweepEpoch; }

    /** Restart traversal from the initial state. */
    void reset();

  private:
    /** Next line to visit according to the pattern. */
    LineAddr advance();

    /**
     * Append accesses for @p line with the given word list;
     * @p pc_salt distinguishes footprint classes in the PCs.
     */
    void emitWords(std::vector<Access> &out, LineAddr line,
                   const unsigned *words, unsigned count,
                   std::uint64_t pc_salt = 0);

    /** Select @p k distinct words for @p sel_key (line or class). */
    unsigned selectWords(std::uint64_t sel_key, unsigned k,
                         unsigned *words_out) const;

    /** Stable per-line pool of @p p distinct words (PoolRotate). */
    void selectPool(LineAddr line, unsigned p,
                    unsigned *pool_out) const;

    RegionParams regionParams;
    LineAddr baseLine;
    Addr pcBase;
    std::uint64_t lines;
    std::uint64_t rngSeed;
    Random rng;

    std::uint64_t cursor;      //!< line offset of the front cursor
    std::uint64_t chainState;  //!< pointer-chase hash state
    std::uint64_t sweepEpoch;  //!< completed sweeps
    bool delayedPhase;         //!< DelayedSpatial: trailing touch next
};

} // namespace ldis

#endif // DISTILLSIM_TRACE_REGION_HH
