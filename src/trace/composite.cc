#include "composite.hh"

#include <algorithm>

#include "common/intmath.hh"
#include "common/logging.hh"

namespace ldis
{

namespace
{

/** Gap, in lines, between consecutive regions. */
constexpr std::uint64_t kRegionGapLines = 1ull << 16;

/** PC space reserved per region. */
constexpr Addr kPcStride = 1ull << 16;

/** Code lives at the bottom of the address space; data above it. */
constexpr LineAddr kDataBaseLine = (1ull << 32) / kLineBytes;

} // namespace

CompositeWorkload::CompositeWorkload(std::string name,
                                     std::vector<RegionParams> regions,
                                     CodeModel code_model,
                                     ValueProfile values,
                                     std::uint64_t seed)
    : workloadName(std::move(name)), code(code_model), vals(values),
      masterSeed(seed), pick(seed ^ 0xc0ffee), burstPos(0)
{
    if (regions.empty())
        ldis_fatal("workload '%s' has no regions",
                   workloadName.c_str());

    LineAddr base = kDataBaseLine;
    double cum = 0.0;
    Addr pc_base = 0x1000;
    for (std::size_t i = 0; i < regions.size(); ++i) {
        const RegionParams &p = regions[i];
        if (p.weight <= 0.0)
            ldis_fatal("region %zu of '%s' has non-positive weight",
                       i, workloadName.c_str());
        streams.emplace_back(p, base, pc_base + i * kPcStride,
                             seed * 1315423911u + i + 1);
        cum += p.weight;
        cumWeight.push_back(cum);
        base += divCeil(p.bytes, kLineBytes) + kRegionGapLines;
    }
}

LineAddr
CompositeWorkload::regionBase(std::size_t i) const
{
    ldis_assert(i < streams.size());
    LineAddr base = kDataBaseLine;
    for (std::size_t r = 0; r < i; ++r)
        base += divCeil(streams[r].params().bytes, kLineBytes)
              + kRegionGapLines;
    return base;
}

void
CompositeWorkload::refill()
{
    burst.clear();
    burstPos = 0;
    double total = cumWeight.back();
    double u = pick.uniform() * total;
    std::size_t r = 0;
    while (r + 1 < cumWeight.size() && u >= cumWeight[r])
        ++r;
    streams[r].produceVisit(burst);
    ldis_assert(!burst.empty());
}

Access
CompositeWorkload::next()
{
    if (burstPos >= burst.size())
        refill();
    return burst[burstPos++];
}

std::size_t
CompositeWorkload::fill(Access *out, std::size_t max)
{
    std::size_t n = 0;
    while (n < max) {
        if (burstPos >= burst.size())
            refill();
        std::size_t take =
            std::min(max - n, burst.size() - burstPos);
        std::copy_n(burst.begin() + burstPos, take, out + n);
        burstPos += take;
        n += take;
    }
    return n;
}

void
CompositeWorkload::reset()
{
    for (auto &s : streams)
        s.reset();
    pick = Random(masterSeed ^ 0xc0ffee);
    burst.clear();
    burstPos = 0;
}

} // namespace ldis
