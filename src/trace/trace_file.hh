/**
 * @file
 * Trace recording and replay. A trace file captures a workload's
 * access stream (plus its code model and value profile) in a compact
 * binary format, so experiments can run against externally produced
 * traces — e.g. converted from ChampSim/gem5 trace formats — or
 * against frozen snapshots of the synthetic proxies.
 *
 * Format (little-endian):
 *   magic   "LDT1"                       (4 bytes)
 *   u32     name length, then the name bytes
 *   u64     codeBytes, u32 avgRunInstrs
 *   f64 x3  value profile (pZero, pOne, pNarrow)
 *   u64     record count
 *   records: u64 addr, u64 pc, u32 nonMemOps, u32 branches,
 *            u8 flags (bit0 = write), u8 depDist
 *
 * A second family of formats stores recorded L2-visible reference
 * streams for the replay engine (src/sim/replay): a versioned header
 * with the stream key, the payload, and a trailing FNV-1a checksum
 * over everything after the magic. The current format ("LDS2",
 * version 2) persists the packed structure-of-arrays byte streams
 * verbatim — five bulk arrays instead of per-event records — so the
 * files are several times smaller than the superseded
 * array-of-structs "LDS1" files, which readL2Stream() still accepts
 * (transcoding them into the packed in-memory form on load). Unlike
 * the trace format, stream reads are non-fatal — a corrupt,
 * truncated or unknown-version file makes readL2Stream() return
 * false so the caller regenerates the stream (the file is a cache,
 * not a source of truth).
 */

#ifndef DISTILLSIM_TRACE_TRACE_FILE_HH
#define DISTILLSIM_TRACE_TRACE_FILE_HH

#include <memory>
#include <string>
#include <vector>

#include "trace/workload.hh"

namespace ldis
{

struct L2Stream;

/**
 * Record @p num_accesses accesses of @p workload into @p path.
 * Fatal on I/O errors.
 */
void recordTrace(Workload &workload, const std::string &path,
                 std::uint64_t num_accesses);

/** Summary of a trace file (for tools / tests). */
struct TraceInfo
{
    std::string name;
    std::uint64_t records = 0;
    CodeModel code;
    ValueProfile values;
    std::uint64_t instructions = 0; //!< sum over records
};

/** Read a trace file's header and aggregate counts. */
TraceInfo traceInfo(const std::string &path);

/**
 * A workload replaying a recorded trace. The stream wraps around at
 * the end of the file so it satisfies the infinite-stream contract;
 * run lengths beyond one pass re-execute the trace (warned once).
 */
class FileWorkload : public Workload
{
  public:
    /** Load @p path fully into memory. Fatal on malformed input. */
    explicit FileWorkload(const std::string &path);

    Access next() override;
    std::size_t fill(Access *out, std::size_t max) override;
    void reset() override;
    const CodeModel &codeModel() const override { return code; }
    const ValueProfile &valueProfile() const override { return vals; }
    const std::string &name() const override { return traceName; }

    /** Number of records in the trace. */
    std::uint64_t size() const { return records.size(); }

    /** Completed full passes over the trace. */
    std::uint64_t wraps() const { return wrapCount; }

  private:
    std::string traceName;
    CodeModel code;
    ValueProfile vals;
    std::vector<Access> records;
    std::size_t pos = 0;
    std::uint64_t wrapCount = 0;
    bool warnedWrap = false;
};

/**
 * Write @p stream to @p path in the checksummed "LDS2" format. The
 * file is written to a temporary sibling and renamed into place, so
 * concurrent readers never observe a partial file.
 * @return false (with a warning) on I/O failure — callers treat the
 *         disk cache as best-effort
 */
bool writeL2Stream(const std::string &path, const L2Stream &stream);

/**
 * Write @p stream to @p path in the superseded array-of-structs
 * "LDS1" format (the event/victim records are decoded from the
 * packed stream first). Kept for the read-compat tests and for
 * producing files older binaries can read; new files should use
 * writeL2Stream().
 */
bool writeL2StreamV1(const std::string &path,
                     const L2Stream &stream);

/**
 * Load a recorded stream from @p path into @p out. Accepts the
 * current "LDS2" files and, for compatibility, "LDS1" files (which
 * are transcoded into the packed in-memory form).
 * @return false if the file is missing, truncated, corrupted, or of
 *         an unknown format version; @p out is unspecified then and
 *         the caller should regenerate the stream
 */
bool readL2Stream(const std::string &path, L2Stream &out);

} // namespace ldis

#endif // DISTILLSIM_TRACE_TRACE_FILE_HH
