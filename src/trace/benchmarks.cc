#include "benchmarks.hh"

#include "common/logging.hh"
#include "trace/composite.hh"

namespace ldis
{

namespace
{

constexpr std::uint64_t kKB = 1024;
constexpr std::uint64_t kMB = 1024 * 1024;

/** Builder shorthand for a region. */
RegionParams
region(std::uint64_t bytes, Pattern pat, WordSel sel, unsigned k,
       double weight, std::uint32_t mean_ops)
{
    RegionParams p;
    p.bytes = bytes;
    p.pattern = pat;
    p.wordSel = sel;
    p.wordsPerVisit = k;
    p.weight = weight;
    p.meanOps = mean_ops;
    if (pat == Pattern::PointerChase)
        p.depDist = 1;
    return p;
}

struct ProxyDef
{
    BenchmarkInfo info;
    std::vector<RegionParams> regions;
    CodeModel code;
    ValueProfile values;
};

/**
 * The full proxy catalogue. Region parameters were calibrated by
 * iterating bench/table2_benchmarks and bench/table6_words_vs_size
 * against the paper's Tables 2 and 6 (see EXPERIMENTS.md).
 */
std::vector<ProxyDef>
buildCatalogue()
{
    std::vector<ProxyDef> defs;

    auto add = [&defs](BenchmarkInfo info,
                       std::vector<RegionParams> regions,
                       CodeModel code, ValueProfile values) {
        ProxyDef d;
        d.info = std::move(info);
        d.regions = std::move(regions);
        d.code = code;
        d.values = values;
        defs.push_back(std::move(d));
    };

    // ---------------- studied benchmarks (Table 2) ----------------
    //
    // Sizing rationale: the baseline L2 holds C = 16384 lines. For a
    // uniformly random region of N lines the L2 miss rate is roughly
    // max(0, 1 - C/N); the distill cache's effective capacity is
    // locWays/8 * C plus 32768 WOC word-entries / nextPow2(words per
    // line). Regions are sized so each proxy's baseline MPKI and its
    // response to LDIS (Figure 6) land in the paper's regime.

    {
        // art: thrashing sweeps over a ~4MB dataset touching one
        // word per line from a 4-word per-line pool that rotates
        // every other sweep. One-word lines pack densely into the
        // WOC (capacity ~45k lines vs 16k baseline), reproducing
        // art's large LDIS gain; pool rotation reproduces both its
        // hole-misses (Section 7.2) and the growth of words-used
        // with cache size (Table 6).
        auto r1 = region(4 * kMB, Pattern::RandomLine,
                         WordSel::PoolRotate, 1, 0.90, 14);
        r1.poolSize = 4;
        r1.rotateEvery = 3;
        r1.writeFrac = 0.05;
        auto r2 = region(48 * kKB, Pattern::RandomLine,
                         WordSel::SparseK, 2, 0.10, 8);
        add({"art", 38.3, 0.005, 1.81, false}, {r1, r2},
            {8 * kKB, 12}, {0.05, 0.01, 0.10});
    }
    {
        // mcf: pointer chasing over a heap several times the cache,
        // with a mix of 1-, 2- and 4-word node footprints (paper
        // average 1.83). The 4-word population is what the median
        // threshold filters out (median = 2).
        auto r1 = region(1 * kMB, Pattern::PointerChase,
                         WordSel::SparseK, 2, 0.35, 2);
        auto r2 = region(2 * kMB, Pattern::PointerChase,
                         WordSel::SparseK, 1, 0.30, 2);
        auto r3 = region(2 * kMB, Pattern::PointerChase,
                         WordSel::SparseK, 2, 0.25, 2);
        r3.pcClasses = 24;
        auto r4 = region(1536 * kKB, Pattern::PointerChase,
                         WordSel::SparseK, 4, 0.10, 2);
        r4.pcClasses = 24;
        add({"mcf", 136.0, 0.022, 1.83, false}, {r1, r2, r3, r4},
            {16 * kKB, 10}, {0.50, 0.10, 0.25});
    }
    {
        // twolf: random structure walks, working set ~1.7MB.
        auto r1 = region(1280 * kKB, Pattern::RandomLine,
                         WordSel::SparseK, 3, 0.55, 28);
        r1.pcClasses = 48;
        auto r2 = region(160 * kKB, Pattern::RandomLine,
                         WordSel::SparseK, 4, 0.45, 28);
        r2.pcClasses = 48;
        add({"twolf", 3.6, 0.029, 3.24, false}, {r1, r2},
            {16 * kKB, 10}, {0.35, 0.05, 0.30});
    }
    {
        // vpr: like twolf with wider, slowly drifting footprints
        // (words used grow 3.7 -> 6.1 from 1MB to 2MB, Table 6).
        auto r1 = region(1280 * kKB, Pattern::RandomLine,
                         WordSel::PoolRotate, 4, 0.60, 40);
        r1.poolSize = 6;
        r1.rotateEvery = 4;
        auto r2 = region(224 * kKB, Pattern::RandomLine,
                         WordSel::SparseK, 4, 0.40, 40);
        r2.pcClasses = 64;
        add({"vpr", 2.2, 0.043, 3.71, false}, {r1, r2},
            {16 * kKB, 10}, {0.35, 0.05, 0.30});
    }
    {
        // ammp: pointer chase over ~2MB of small nodes.
        auto r1 = region(960 * kKB, Pattern::PointerChase,
                         WordSel::SparseK, 2, 0.70, 11);
        r1.pcClasses = 16;
        auto r2 = region(128 * kKB, Pattern::RandomLine,
                         WordSel::SparseK, 3, 0.30, 11);
        auto r3 = region(8 * kMB, Pattern::PointerChase,
                         WordSel::SparseK, 2, 0.02, 11);
        add({"ammp", 2.8, 0.051, 2.40, false}, {r1, r2, r3},
            {12 * kKB, 12}, {0.25, 0.05, 0.25});
    }
    {
        // galgel: dense loops that mostly fit plus a cyclic strided
        // kernel that does not.
        auto r1 = region(896 * kKB, Pattern::Sequential,
                         WordSel::Full, 8, 0.60, 16);
        auto r2 = region(1536 * kKB, Pattern::Strided,
                         WordSel::Full, 8, 0.40, 16);
        r2.strideLines = 16;
        add({"galgel", 4.7, 0.059, 7.60, false}, {r1, r2},
            {12 * kKB, 16}, {0.04, 0.01, 0.10});
    }
    {
        // bzip2: stream + random dictionary + delayed reuse (the
        // delayed component is why plain LDIS hurts and the reverter
        // has to step in, per Fig 6).
        auto r1 = region(256 * kKB, Pattern::Sequential,
                         WordSel::PartialSeq, 4, 0.45, 8);
        auto r2 = region(128 * kKB, Pattern::RandomLine,
                         WordSel::SparseK, 3, 0.30, 8);
        r2.pcClasses = 32;
        auto r3 = region(2 * kMB, Pattern::DelayedSpatial,
                         WordSel::Full, 8, 0.25, 8);
        r3.delayLines = 1900;
        add({"bzip2", 2.4, 0.155, 4.13, false}, {r1, r2, r3},
            {24 * kKB, 10}, {0.25, 0.05, 0.30});
    }
    {
        // facerec: blocked image sweeps, high spatial locality.
        auto r1 = region(256 * kKB, Pattern::Sequential,
                         WordSel::Full, 8, 0.40, 16);
        auto r2 = region(1152 * kKB, Pattern::RandomLine,
                         WordSel::SparseK, 2, 0.50, 16);
        r2.pcClasses = 96;
        auto r3 = region(3 * kMB, Pattern::Sequential,
                         WordSel::Full, 8, 0.10, 16);
        add({"facerec", 4.8, 0.18, 7.01, false}, {r1, r2, r3},
            {12 * kKB, 14}, {0.05, 0.01, 0.10});
    }
    {
        // parser: dictionary walks with wide (6 of 8 words), slowly
        // drifting footprints. Wide lines take all 8 WOC slots, so
        // plain LDIS gains nothing and the drift-induced hole-misses
        // make it a net loss the reverter must contain.
        auto r1 = region(1344 * kKB, Pattern::RandomLine,
                         WordSel::PoolRotate, 6, 0.50, 24);
        r1.poolSize = 8;
        r1.rotateEvery = 1;
        auto r2 = region(6 * kMB, Pattern::PointerChase,
                         WordSel::SparseK, 6, 0.20, 30);
        r2.pcClasses = 32;
        auto r3 = region(96 * kKB, Pattern::RandomLine,
                         WordSel::SparseK, 7, 0.30, 24);
        r3.pcClasses = 64;
        add({"parser", 1.6, 0.203, 6.42, false}, {r1, r2, r3},
            {24 * kKB, 9}, {0.40, 0.05, 0.30});
    }
    {
        // sixtrack: a 2-word random population and a full-line
        // population. The median threshold (2) installs only the
        // narrow lines, which then fit entirely in the WOC -- the
        // reason LDIS-MT beats LDIS-Base on sixtrack in Figure 6.
        auto r1 = region(800 * kKB, Pattern::RandomLine,
                         WordSel::SparseK, 2, 0.55, 55);
        r1.pcClasses = 32;
        auto r2 = region(375 * kKB, Pattern::RandomLine,
                         WordSel::Full, 8, 0.45, 55);
        add({"sixtrack", 0.4, 0.206, 4.34, false}, {r1, r2},
            {16 * kKB, 18}, {0.35, 0.05, 0.35});
    }
    {
        // apsi: dense numeric loops over ~1MB.
        auto r1 = region(1088 * kKB, Pattern::RandomLine,
                         WordSel::Full, 8, 0.90, 30);
        auto r2 = region(64 * kKB, Pattern::RandomLine,
                         WordSel::SparseK, 6, 0.10, 30);
        r2.pcClasses = 32;
        add({"apsi", 0.3, 0.228, 7.80, false}, {r1, r2},
            {16 * kKB, 16}, {0.05, 0.01, 0.12});
    }
    {
        // swim: the delayed-spatial archetype. The trailing
        // full-line touch trails the leading one-word touch by
        // ~7000 lines, i.e. ~14000 distinct lines of LRU stack
        // distance: just inside the baseline's reach, beyond the
        // 0.75MB LOC. Plain LDIS fills the WOC with one-word lines
        // that soon hole-miss (Fig 6) until the reverter disables it.
        auto r1 = region(32 * kMB, Pattern::DelayedSpatial,
                         WordSel::Full, 8, 0.32, 6);
        r1.delayLines = 2240;
        auto r2 = region(64 * kMB, Pattern::DelayedSpatial,
                         WordSel::Full, 8, 0.63, 6);
        r2.delayLines = 8000;
        auto r3 = region(64 * kKB, Pattern::Sequential,
                         WordSel::Full, 8, 0.05, 6);
        add({"swim", 26.6, 0.504, 6.91, false}, {r1, r2, r3},
            {12 * kKB, 20}, {0.03, 0.01, 0.08});
    }
    {
        // vortex: object traversal plus a compulsory-dominated
        // allocation stream.
        auto r1 = region(512 * kKB, Pattern::RandomLine,
                         WordSel::SparseK, 3, 0.94, 30);
        r1.pcClasses = 64;
        auto r2 = region(16 * kMB, Pattern::Sequential,
                         WordSel::SparseK, 3, 0.06, 30);
        r2.pcClasses = 32;
        add({"vortex", 0.7, 0.534, 3.04, false}, {r1, r2},
            {48 * kKB, 8}, {0.40, 0.05, 0.30});
    }
    {
        // gcc: compulsory-heavy data plus a large code footprint
        // (instruction-cache intensive per Section 7.4).
        auto r1 = region(10 * kMB, Pattern::Sequential,
                         WordSel::PartialSeq, 6, 0.10, 40);
        auto r2 = region(1088 * kKB, Pattern::RandomLine,
                         WordSel::SparseK, 6, 0.90, 40);
        r2.pcClasses = 64;
        add({"gcc", 0.4, 0.774, 6.38, false}, {r1, r2},
            {192 * kKB, 8}, {0.40, 0.05, 0.30});
    }
    {
        // wupwise: pure streaming; nearly all misses compulsory.
        auto r1 = region(16 * kMB, Pattern::Sequential,
                         WordSel::Full, 8, 0.90, 48);
        auto r2 = region(96 * kKB, Pattern::RandomLine,
                         WordSel::Full, 8, 0.10, 48);
        add({"wupwise", 2.3, 0.83, 7.01, false}, {r1, r2},
            {12 * kKB, 20}, {0.03, 0.01, 0.08});
    }
    {
        // health (olden): linked-list chasing, heavily thrashing.
        auto r1 = region(2432 * kKB, Pattern::PointerChase,
                         WordSel::SparseK, 1, 0.55, 3);
        r1.pcClasses = 8;
        auto r2 = region(768 * kKB, Pattern::PointerChase,
                         WordSel::SparseK, 4, 0.31, 3);
        r2.pcClasses = 8;
        auto r3 = region(32 * kKB, Pattern::RandomLine,
                         WordSel::SparseK, 3, 0.14, 3);
        add({"health", 62.0, 0.0073, 2.44, false}, {r1, r2, r3},
            {8 * kKB, 10}, {0.40, 0.05, 0.25});
    }

    // ------------- Appendix A: cache-insensitive set --------------

    {
        auto r1 = region(24 * kMB, Pattern::RandomLine,
                         WordSel::SparseK, 4, 1.0, 12);
        add({"equake", 18.42, 0.0, 0.0, true}, {r1},
            {12 * kKB, 12}, {0.10, 0.02, 0.20});
    }
    {
        auto r1 = region(32 * kMB, Pattern::Sequential,
                         WordSel::Full, 8, 1.0, 6);
        add({"lucas", 16.17, 0.0, 0.0, true}, {r1},
            {8 * kKB, 24}, {0.03, 0.01, 0.08});
    }
    {
        auto r1 = region(16 * kMB, Pattern::Strided,
                         WordSel::PartialSeq, 6, 1.0, 20);
        r1.strideLines = 4;
        add({"mgrid", 7.73, 0.0, 0.0, true}, {r1},
            {8 * kKB, 24}, {0.05, 0.01, 0.10});
    }
    {
        auto r1 = region(20 * kMB, Pattern::Sequential,
                         WordSel::PartialSeq, 7, 1.0, 10);
        add({"applu", 13.75, 0.0, 0.0, true}, {r1},
            {8 * kKB, 24}, {0.05, 0.01, 0.10});
    }
    {
        auto r1 = region(384 * kKB, Pattern::RandomLine,
                         WordSel::SparseK, 5, 0.80, 30);
        auto r2 = region(8 * kMB, Pattern::Sequential,
                         WordSel::Full, 8, 0.20, 30);
        add({"mesa", 0.62, 0.0, 0.0, true}, {r1, r2},
            {32 * kKB, 10}, {0.10, 0.02, 0.25});
    }
    {
        auto r1 = region(256 * kKB, Pattern::RandomLine,
                         WordSel::SparseK, 5, 0.90, 60);
        auto r2 = region(4 * kMB, Pattern::Sequential,
                         WordSel::Full, 8, 0.10, 60);
        add({"crafty", 0.09, 0.0, 0.0, true}, {r1, r2},
            {64 * kKB, 8}, {0.15, 0.05, 0.30});
    }
    {
        auto r1 = region(12 * kMB, Pattern::Sequential,
                         WordSel::PartialSeq, 5, 1.0, 115);
        add({"gap", 1.65, 0.0, 0.0, true}, {r1},
            {24 * kKB, 12}, {0.20, 0.05, 0.30});
    }
    {
        auto r1 = region(576 * kKB, Pattern::RandomLine,
                         WordSel::SparseK, 4, 0.92, 10);
        auto r2 = region(6 * kMB, Pattern::Sequential,
                         WordSel::Full, 8, 0.08, 10);
        add({"gzip", 1.45, 0.0, 0.0, true}, {r1, r2},
            {16 * kKB, 12}, {0.10, 0.03, 0.25});
    }
    {
        auto r1 = region(10 * kMB, Pattern::Sequential,
                         WordSel::Full, 8, 1.0, 26);
        add({"fma3d", 4.61, 0.0, 0.0, true}, {r1},
            {32 * kKB, 14}, {0.05, 0.01, 0.12});
    }
    {
        auto r1 = region(128 * kKB, Pattern::RandomLine,
                         WordSel::SparseK, 4, 1.0, 80);
        add({"perlbmk", 0.04, 0.0, 0.0, true}, {r1},
            {48 * kKB, 8}, {0.15, 0.05, 0.30});
    }
    {
        auto r1 = region(96 * kKB, Pattern::RandomLine,
                         WordSel::SparseK, 4, 1.0, 100);
        add({"eon", 0.01, 0.0, 0.0, true}, {r1},
            {32 * kKB, 8}, {0.10, 0.03, 0.25});
    }

    return defs;
}

const std::vector<ProxyDef> &
catalogue()
{
    static const std::vector<ProxyDef> defs = buildCatalogue();
    return defs;
}

} // namespace

const std::vector<BenchmarkInfo> &
benchmarkTable()
{
    static const std::vector<BenchmarkInfo> infos = [] {
        std::vector<BenchmarkInfo> v;
        for (const auto &d : catalogue())
            v.push_back(d.info);
        return v;
    }();
    return infos;
}

std::vector<std::string>
studiedBenchmarks()
{
    std::vector<std::string> names;
    for (const auto &d : catalogue())
        if (!d.info.insensitive)
            names.push_back(d.info.name);
    return names;
}

std::vector<std::string>
insensitiveBenchmarks()
{
    std::vector<std::string> names;
    for (const auto &d : catalogue())
        if (d.info.insensitive)
            names.push_back(d.info.name);
    return names;
}

const BenchmarkInfo &
benchmarkInfo(const std::string &name)
{
    for (const auto &d : catalogue())
        if (d.info.name == name)
            return d.info;
    ldis_fatal("unknown benchmark '%s'", name.c_str());
}

std::unique_ptr<Workload>
makeBenchmark(const std::string &name, std::uint64_t seed)
{
    for (const auto &d : catalogue()) {
        if (d.info.name == name) {
            return std::make_unique<CompositeWorkload>(
                d.info.name, d.regions, d.code, d.values, seed);
        }
    }
    ldis_fatal("unknown benchmark '%s'", name.c_str());
}

} // namespace ldis
