/**
 * @file
 * Abstract workload interface: an infinite, deterministic stream of
 * Access records plus the side-band models (code footprint for the
 * L1I, value profile for compression) that some experiments need.
 */

#ifndef DISTILLSIM_TRACE_WORKLOAD_HH
#define DISTILLSIM_TRACE_WORKLOAD_HH

#include <memory>
#include <string>

#include "trace/access.hh"
#include "trace/value_model.hh"

namespace ldis
{

/** An infinite reproducible access stream. */
class Workload
{
  public:
    virtual ~Workload() = default;

    /** Produce the next access. Never exhausts. */
    virtual Access next() = 0;

    /** Restart the stream from its initial state (same seed). */
    virtual void reset() = 0;

    /** Instruction-side model for L1I traffic synthesis. */
    virtual const CodeModel &codeModel() const = 0;

    /** Data-value mixture for the compression experiments. */
    virtual const ValueProfile &valueProfile() const = 0;

    /** Human-readable name ("art", "mcf", ...). */
    virtual const std::string &name() const = 0;
};

} // namespace ldis

#endif // DISTILLSIM_TRACE_WORKLOAD_HH
