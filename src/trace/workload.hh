/**
 * @file
 * Abstract workload interface: an infinite, deterministic stream of
 * Access records plus the side-band models (code footprint for the
 * L1I, value profile for compression) that some experiments need.
 */

#ifndef DISTILLSIM_TRACE_WORKLOAD_HH
#define DISTILLSIM_TRACE_WORKLOAD_HH

#include <cstddef>
#include <memory>
#include <string>

#include "trace/access.hh"
#include "trace/value_model.hh"

namespace ldis
{

/** An infinite reproducible access stream. */
class Workload
{
  public:
    virtual ~Workload() = default;

    /** Produce the next access. Never exhausts. */
    virtual Access next() = 0;

    /**
     * Produce the next @p max accesses of the stream into @p out and
     * return how many were written (always @p max for this infinite
     * stream; the count is returned so overrides may stop at internal
     * boundaries). Semantically identical to @p max calls of next();
     * generators override it to copy whole bursts and amortize the
     * per-access virtual call.
     */
    virtual std::size_t
    fill(Access *out, std::size_t max)
    {
        for (std::size_t n = 0; n < max; ++n)
            out[n] = next();
        return max;
    }

    /** Restart the stream from its initial state (same seed). */
    virtual void reset() = 0;

    /** Instruction-side model for L1I traffic synthesis. */
    virtual const CodeModel &codeModel() const = 0;

    /** Data-value mixture for the compression experiments. */
    virtual const ValueProfile &valueProfile() const = 0;

    /** Human-readable name ("art", "mcf", ...). */
    virtual const std::string &name() const = 0;
};

} // namespace ldis

#endif // DISTILLSIM_TRACE_WORKLOAD_HH
