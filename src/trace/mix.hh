/**
 * @file
 * Multi-programmed workload composition: deterministically
 * interleave 2-4 benchmark proxies into one access stream feeding a
 * shared L2 (each member keeps private L1s; see
 * src/cache/shared_hierarchy).
 *
 * Two invariants make the composition analyzable:
 *
 *  - *Address-space tagging*: member s's data addresses, PCs and code
 *    region are offset by mixStreamBase(s) = s << 36. Solo proxies
 *    live far below 2^36 (data regions start at 4GB and grow by
 *    64MB-scale gaps; code sits at 0x10000), the tag rides above
 *    every L1/L2 set-index bit, and 4 * 2^36 fits the 40-bit
 *    physical space — so streams never alias, per-stream set
 *    indexing matches the solo run, and any address or victim line
 *    can be attributed back to its stream with one shift.
 *
 *  - *Round-robin by instruction quantum*: members take fixed turns.
 *    Member s's turn t ends at boundary t * quantum of its OWN
 *    retired-instruction clock; during the turn it emits accesses
 *    while the count after the access stays within the boundary.
 *    Boundaries advance every turn even when nothing is emitted (an
 *    access larger than the quantum just waits for its boundary to
 *    catch up), so composition never deadlocks, and the turn an
 *    access falls into is a pure function of its position —
 *    ceil(position / quantum) — which is what lets the replay-side
 *    composer (src/sim/mix) interleave recorded solo streams into
 *    exactly the event order this direct interleave produces.
 */

#ifndef DISTILLSIM_TRACE_MIX_HH
#define DISTILLSIM_TRACE_MIX_HH

#include <array>
#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "trace/benchmarks.hh"
#include "trace/workload.hh"

namespace ldis
{

/** Address bits below a mix stream's tag (tag = addr >> 36). */
inline constexpr unsigned kMixStreamShift = 36;

/** Maximum members of one mix (4 tags fill the 40-bit space). */
inline constexpr std::size_t kMaxMixStreams = 4;

/** Default interleave quantum, in instructions per member turn. */
inline constexpr InstCount kDefaultMixQuantum = 100'000;

/** Base address of member @p s's tagged address space. */
constexpr Addr
mixStreamBase(std::size_t s)
{
    return static_cast<Addr>(s) << kMixStreamShift;
}

/** Member index owning byte address @p addr. */
constexpr std::size_t
mixStreamOfAddr(Addr addr)
{
    return static_cast<std::size_t>(addr >> kMixStreamShift);
}

/** Member index owning line address @p line (= addr / kLineBytes). */
constexpr std::size_t
mixStreamOfLine(LineAddr line)
{
    // Line addresses are byte addresses divided by the (power-of-
    // two) line size, so the tag sits 6 bits lower.
    static_assert(kLineBytes == 64);
    return static_cast<std::size_t>(line >> (kMixStreamShift - 6));
}

/**
 * Instruction-weighted blend of member value profiles, used to
 * parameterize the compression configurations of a mix run. Both the
 * direct and the replay composition path derive the shared profile
 * through this one function (same member order, same arithmetic), so
 * the two paths build bit-identical compression L2s.
 */
ValueProfile blendValueProfiles(
    const std::vector<ValueProfile> &profiles,
    const std::vector<InstCount> &weights);

/** One composed access: the tagged record plus its member index. */
struct MixedAccess
{
    Access access;
    std::size_t stream = 0;
};

/**
 * The direct (execution-order) composer: owns one proxy workload per
 * member and yields the interleaved, address-tagged access stream.
 * Unlike Workload this stream is *finite* — each member stops once
 * its own retired-instruction count reaches its target, exactly like
 * a solo Hierarchy::run of that length — so the consumer loop is
 * `while (mix.next(a)) ...`.
 */
class MixWorkload
{
  public:
    /** One member of the mix. */
    struct MemberSpec
    {
        std::string benchmark;
        std::uint64_t seed = 1;
        InstCount target = 0; //!< member instructions to retire
    };

    MixWorkload(const std::vector<MemberSpec> &members,
                InstCount quantum = kDefaultMixQuantum);

    /**
     * Produce the next interleaved access (tagged with
     * mixStreamBase of its member). @return false once every member
     * reached its target.
     */
    bool next(MixedAccess &out);

    std::size_t streams() const { return members.size(); }
    InstCount quantumInstructions() const { return quantum; }

    const std::string &
    memberName(std::size_t s) const
    {
        return members[s].spec.benchmark;
    }

    /** Instructions member @p s has retired so far. */
    InstCount
    memberInstructions(std::size_t s) const
    {
        return members[s].position;
    }

    InstCount
    memberTarget(std::size_t s) const
    {
        return members[s].spec.target;
    }

    const CodeModel &
    memberCodeModel(std::size_t s) const
    {
        return members[s].workload->codeModel();
    }

    /** Blended profile over the members (target-weighted). */
    ValueProfile valueProfile() const;

  private:
    /** Accesses pulled per member Workload::fill call. */
    static constexpr std::size_t kBatchSize = 256;

    struct Member
    {
        MemberSpec spec;
        std::unique_ptr<Workload> workload;
        InstCount position = 0; //!< retired instructions
        InstCount boundary = 0; //!< current turn's position limit
        std::array<Access, kBatchSize> batch;
        std::size_t batchPos = 0;
        std::size_t batchLen = 0;

        bool done() const { return position >= spec.target; }
        const Access &peek();
    };

    std::vector<Member> members;
    InstCount quantum;
    std::size_t turn = 0;      //!< member whose turn it is
    std::size_t remaining = 0; //!< members below their target
};

} // namespace ldis

#endif // DISTILLSIM_TRACE_MIX_HH
