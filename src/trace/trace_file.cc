#include "trace_file.hh"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "common/logging.hh"
#include "sim/replay.hh"

namespace ldis
{

namespace
{

constexpr char kMagic[4] = {'L', 'D', 'T', '1'};

/** RAII FILE handle. */
struct File
{
    std::FILE *f = nullptr;

    File(const std::string &path, const char *mode)
        : f(std::fopen(path.c_str(), mode))
    {
        if (!f)
            ldis_fatal("cannot open trace file '%s'", path.c_str());
    }

    ~File()
    {
        if (f)
            std::fclose(f);
    }

    File(const File &) = delete;
    File &operator=(const File &) = delete;
};

template <typename T>
void
writeScalar(std::FILE *f, T v)
{
    if (std::fwrite(&v, sizeof(T), 1, f) != 1)
        ldis_fatal("trace write failed");
}

template <typename T>
T
readScalar(std::FILE *f)
{
    T v{};
    if (std::fread(&v, sizeof(T), 1, f) != 1)
        ldis_fatal("trace file truncated");
    return v;
}

void
writeRecord(std::FILE *f, const Access &a)
{
    writeScalar<std::uint64_t>(f, a.addr);
    writeScalar<std::uint64_t>(f, a.pc);
    writeScalar<std::uint32_t>(f, a.nonMemOps);
    writeScalar<std::uint32_t>(f, a.branches);
    writeScalar<std::uint8_t>(f, a.write ? 1 : 0);
    writeScalar<std::uint8_t>(f, a.depDist);
}

Access
readRecord(std::FILE *f)
{
    Access a;
    a.addr = readScalar<std::uint64_t>(f);
    a.pc = readScalar<std::uint64_t>(f);
    a.nonMemOps = readScalar<std::uint32_t>(f);
    a.branches = readScalar<std::uint32_t>(f);
    a.write = readScalar<std::uint8_t>(f) != 0;
    a.depDist = readScalar<std::uint8_t>(f);
    return a;
}

/** On-disk size of one writeRecord()/readRecord() record. */
constexpr std::uint64_t kRecordBytes = 8 + 8 + 4 + 4 + 1 + 1;

/** Read+validate the header; returns the record count. */
std::uint64_t
readHeader(std::FILE *f, std::string &name, CodeModel &code,
           ValueProfile &values, const std::string &path)
{
    char magic[4];
    if (std::fread(magic, 1, 4, f) != 4 ||
        std::memcmp(magic, kMagic, 4) != 0)
        ldis_fatal("'%s' is not a DistillSim trace", path.c_str());
    std::uint32_t name_len = readScalar<std::uint32_t>(f);
    if (name_len > 4096)
        ldis_fatal("trace '%s': implausible name length",
                   path.c_str());
    name.resize(name_len);
    if (name_len > 0 &&
        std::fread(name.data(), 1, name_len, f) != name_len)
        ldis_fatal("trace file truncated");
    code.codeBytes = readScalar<std::uint64_t>(f);
    code.avgRunInstrs = readScalar<std::uint32_t>(f);
    values.pZero = readScalar<double>(f);
    values.pOne = readScalar<double>(f);
    values.pNarrow = readScalar<double>(f);
    std::uint64_t count = readScalar<std::uint64_t>(f);

    // Check the advertised record count against the actual payload
    // size up front: a header count larger than the file would
    // otherwise only surface as a mid-read abort (or, for a corrupt
    // oversized count, an attempted giant allocation), and trailing
    // garbage would pass entirely unnoticed.
    long header_end = std::ftell(f);
    if (header_end >= 0 && std::fseek(f, 0, SEEK_END) == 0) {
        long file_end = std::ftell(f);
        if (file_end >= 0) {
            std::uint64_t payload =
                static_cast<std::uint64_t>(file_end - header_end);
            if (count > payload / kRecordBytes)
                ldis_fatal("trace '%s' is truncated: header "
                           "promises %llu records but only %llu "
                           "payload bytes follow",
                           path.c_str(),
                           static_cast<unsigned long long>(count),
                           static_cast<unsigned long long>(payload));
            if (payload > count * kRecordBytes)
                ldis_fatal("trace '%s' has %llu trailing bytes "
                           "after the last record",
                           path.c_str(),
                           static_cast<unsigned long long>(
                               payload - count * kRecordBytes));
        }
        if (std::fseek(f, header_end, SEEK_SET) != 0)
            ldis_fatal("cannot seek in trace '%s'", path.c_str());
    }
    return count;
}

} // namespace

void
recordTrace(Workload &workload, const std::string &path,
            std::uint64_t num_accesses)
{
    ldis_assert(num_accesses > 0);
    File file(path, "wb");
    std::FILE *f = file.f;

    if (std::fwrite(kMagic, 1, 4, f) != 4)
        ldis_fatal("trace write failed");
    const std::string &name = workload.name();
    writeScalar<std::uint32_t>(
        f, static_cast<std::uint32_t>(name.size()));
    if (!name.empty() &&
        std::fwrite(name.data(), 1, name.size(), f) != name.size())
        ldis_fatal("trace write failed");
    writeScalar<std::uint64_t>(f, workload.codeModel().codeBytes);
    writeScalar<std::uint32_t>(f, workload.codeModel().avgRunInstrs);
    writeScalar<double>(f, workload.valueProfile().pZero);
    writeScalar<double>(f, workload.valueProfile().pOne);
    writeScalar<double>(f, workload.valueProfile().pNarrow);
    writeScalar<std::uint64_t>(f, num_accesses);

    for (std::uint64_t i = 0; i < num_accesses; ++i)
        writeRecord(f, workload.next());
}

TraceInfo
traceInfo(const std::string &path)
{
    File file(path, "rb");
    TraceInfo info;
    std::uint64_t count = readHeader(file.f, info.name, info.code,
                                     info.values, path);
    info.records = count;
    for (std::uint64_t i = 0; i < count; ++i)
        info.instructions += readRecord(file.f).instructions();
    return info;
}

FileWorkload::FileWorkload(const std::string &path)
{
    File file(path, "rb");
    std::uint64_t count =
        readHeader(file.f, traceName, code, vals, path);
    if (count == 0)
        ldis_fatal("trace '%s' is empty", path.c_str());
    records.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i)
        records.push_back(readRecord(file.f));
}

Access
FileWorkload::next()
{
    Access a = records[pos];
    if (++pos >= records.size()) {
        pos = 0;
        ++wrapCount;
        if (!warnedWrap) {
            warn("trace '%s' wrapped after %zu records; the run is "
                 "longer than the recording",
                 traceName.c_str(), records.size());
            warnedWrap = true;
        }
    }
    return a;
}

std::size_t
FileWorkload::fill(Access *out, std::size_t max)
{
    std::size_t n = 0;
    while (n < max) {
        std::size_t take =
            std::min(max - n, records.size() - pos);
        std::copy_n(records.begin() + pos, take, out + n);
        pos += take;
        n += take;
        if (pos >= records.size()) {
            pos = 0;
            ++wrapCount;
            if (!warnedWrap) {
                warn("trace '%s' wrapped after %zu records; the run "
                     "is longer than the recording",
                     traceName.c_str(), records.size());
                warnedWrap = true;
            }
        }
    }
    return n;
}

void
FileWorkload::reset()
{
    pos = 0;
    wrapCount = 0;
}

namespace
{

constexpr char kStreamMagicV1[4] = {'L', 'D', 'S', '1'};
constexpr char kStreamMagicV2[4] = {'L', 'D', 'S', '2'};
constexpr std::uint32_t kStreamVersionV1 = 1;

/** FNV-1a over a byte range, continuing from @p sum. */
std::uint64_t
fnv1a(std::uint64_t sum, const void *data, std::size_t len)
{
    const auto *bytes = static_cast<const unsigned char *>(data);
    for (std::size_t i = 0; i < len; ++i) {
        sum ^= bytes[i];
        sum *= 0x100000001B3ull;
    }
    return sum;
}

constexpr std::uint64_t kFnvOffset = 0xCBF29CE484222325ull;

/**
 * Checksumming writer. Unlike writeScalar above, failures latch into
 * a flag instead of aborting — stream-cache writes are best-effort.
 */
class StreamWriter
{
  public:
    explicit StreamWriter(std::FILE *file) : f(file) {}

    void
    bytes(const void *data, std::size_t len)
    {
        sum = fnv1a(sum, data, len);
        if (!failed && std::fwrite(data, 1, len, f) != len)
            failed = true;
    }

    template <typename T>
    void
    scalar(T v)
    {
        bytes(&v, sizeof(T));
    }

    void
    str(const std::string &s)
    {
        scalar<std::uint32_t>(static_cast<std::uint32_t>(s.size()));
        bytes(s.data(), s.size());
    }

    std::uint64_t checksum() const { return sum; }
    bool ok() const { return !failed; }

  private:
    std::FILE *f;
    std::uint64_t sum = kFnvOffset;
    bool failed = false;
};

/** Checksumming reader with the same latched-failure contract. */
class StreamReader
{
  public:
    explicit StreamReader(std::FILE *file) : f(file) {}

    void
    bytes(void *data, std::size_t len)
    {
        if (failed || std::fread(data, 1, len, f) != len) {
            failed = true;
            return;
        }
        sum = fnv1a(sum, data, len);
    }

    template <typename T>
    T
    scalar()
    {
        T v{};
        bytes(&v, sizeof(T));
        return v;
    }

    bool
    str(std::string &out)
    {
        std::uint32_t len = scalar<std::uint32_t>();
        if (failed || len > 4096)
            return false;
        out.resize(len);
        if (len > 0)
            bytes(out.data(), len);
        return !failed;
    }

    std::uint64_t checksum() const { return sum; }
    bool ok() const { return !failed; }

  private:
    std::FILE *f;
    std::uint64_t sum = kFnvOffset;
    bool failed = false;
};

/** Header scalars shared by the LDS1 and LDS2 layouts (everything
 *  between the benchmark name and the array sizes). */
void
writeStreamScalars(StreamWriter &w, const L2Stream &stream)
{
    w.scalar<std::uint64_t>(stream.seed);
    w.scalar<std::uint64_t>(stream.warmupInstructions);
    w.scalar<std::uint64_t>(stream.instructions);
    w.scalar<std::uint64_t>(stream.frontEndKey);
    w.scalar<std::uint64_t>(stream.code.codeBytes);
    w.scalar<std::uint32_t>(stream.code.avgRunInstrs);
    w.scalar<double>(stream.values.pZero);
    w.scalar<double>(stream.values.pOne);
    w.scalar<double>(stream.values.pNarrow);
    w.scalar<std::uint64_t>(stream.meas.instructions);
    w.scalar<std::uint64_t>(stream.meas.dataAccesses);
    w.scalar<std::uint64_t>(stream.meas.l1dAccesses);
    w.scalar<std::uint64_t>(stream.meas.l1dLineMisses);
    w.scalar<std::uint64_t>(stream.meas.l1iAccesses);
    w.scalar<std::uint64_t>(stream.meas.l1iMisses);
    w.scalar<std::uint64_t>(stream.totalLineMisses);
    w.scalar<std::uint64_t>(stream.markerEvents);
    w.scalar<std::uint64_t>(stream.markerVictims);
}

void
readStreamScalars(StreamReader &r, L2Stream &out)
{
    out.seed = r.scalar<std::uint64_t>();
    out.warmupInstructions = r.scalar<std::uint64_t>();
    out.instructions = r.scalar<std::uint64_t>();
    out.frontEndKey = r.scalar<std::uint64_t>();
    out.code.codeBytes = r.scalar<std::uint64_t>();
    out.code.avgRunInstrs = r.scalar<std::uint32_t>();
    out.values.pZero = r.scalar<double>();
    out.values.pOne = r.scalar<double>();
    out.values.pNarrow = r.scalar<double>();
    out.meas.instructions = r.scalar<std::uint64_t>();
    out.meas.dataAccesses = r.scalar<std::uint64_t>();
    out.meas.l1dAccesses = r.scalar<std::uint64_t>();
    out.meas.l1dLineMisses = r.scalar<std::uint64_t>();
    out.meas.l1iAccesses = r.scalar<std::uint64_t>();
    out.meas.l1iMisses = r.scalar<std::uint64_t>();
    out.totalLineMisses = r.scalar<std::uint64_t>();
    out.markerEvents =
        static_cast<std::size_t>(r.scalar<std::uint64_t>());
    out.markerVictims =
        static_cast<std::size_t>(r.scalar<std::uint64_t>());
}

/**
 * Bytes left in @p f from the current position; negative on a seek
 * failure (unseekable streams skip the up-front size validation).
 */
long
remainingBytes(std::FILE *f)
{
    long pos = std::ftell(f);
    if (pos < 0 || std::fseek(f, 0, SEEK_END) != 0)
        return -1;
    long end = std::ftell(f);
    if (end < 0 || std::fseek(f, pos, SEEK_SET) != 0)
        return -1;
    return end - pos;
}

/** Payload of the current "LDS2" layout (everything after the
 *  magic; the version scalar rides inside the checksummed region,
 *  exactly as in the v1 layout). */
bool
readStreamV2(std::FILE *f, const std::string &path, L2Stream &out)
{
    StreamReader r(f);
    std::uint32_t version = r.scalar<std::uint32_t>();
    if (!r.ok())
        return false;
    if (version != kStreamFormatVersion) {
        warn("stream cache '%s': format version %u (expected %u); "
             "regenerating",
             path.c_str(), version, kStreamFormatVersion);
        return false;
    }
    if (!r.str(out.benchmark))
        return false;
    readStreamScalars(r, out);
    out.victimCount = r.scalar<std::uint64_t>();

    std::uint64_t sizes[5];
    for (std::uint64_t &s : sizes)
        s = r.scalar<std::uint64_t>();
    if (!r.ok())
        return false;

    // Validate the declared array sizes against the actual bytes
    // left in the file BEFORE allocating: a corrupt size would
    // otherwise try to allocate the moon ahead of the checksum, and
    // truncation / trailing garbage would only surface mid-read.
    long remaining = remainingBytes(f);
    if (remaining >= 0) {
        std::uint64_t want = sizeof(std::uint64_t); // the checksum
        for (std::uint64_t s : sizes)
            want += s;
        if (static_cast<std::uint64_t>(remaining) != want)
            return false;
    }

    std::vector<std::uint8_t> *arrays[5] = {
        &out.heads, &out.instrBytes, &out.addrBytes, &out.pcBytes,
        &out.victimBytes};
    for (std::size_t i = 0; i < 5; ++i) {
        arrays[i]->resize(static_cast<std::size_t>(sizes[i]));
        if (sizes[i] > 0)
            r.bytes(arrays[i]->data(), arrays[i]->size());
    }

    std::uint64_t expected = r.checksum();
    std::uint64_t stored = 0;
    return r.ok() &&
           std::fread(&stored, sizeof(stored), 1, f) == 1 &&
           stored == expected &&
           out.markerEvents <= out.numEvents() &&
           out.markerVictims <= out.numVictims();
}

/** Payload of the superseded array-of-structs "LDS1" layout,
 *  transcoded into the packed in-memory form on the way in. */
bool
readStreamV1(std::FILE *f, L2Stream &out)
{
    StreamReader r(f);
    std::uint32_t version = r.scalar<std::uint32_t>();
    if (!r.ok() || version != kStreamVersionV1)
        return false;
    if (!r.str(out.benchmark))
        return false;
    readStreamScalars(r, out);

    std::uint64_t num_events = r.scalar<std::uint64_t>();
    std::uint64_t num_victims = r.scalar<std::uint64_t>();
    // Cap the reserve: a corrupt count would otherwise try to
    // allocate the moon before the checksum gets a say.
    std::vector<StreamEvent> events;
    events.reserve(static_cast<std::size_t>(
        std::min<std::uint64_t>(num_events, 1u << 20)));
    for (std::uint64_t i = 0; r.ok() && i < num_events; ++i) {
        StreamEvent e;
        e.addr = r.scalar<std::uint64_t>();
        e.pc = r.scalar<std::uint64_t>();
        e.instrDelta = r.scalar<std::uint32_t>();
        e.op = static_cast<StreamOp>(r.scalar<std::uint8_t>());
        e.flags = r.scalar<std::uint8_t>();
        if (r.ok())
            events.push_back(e);
    }
    std::vector<StreamVictim> victims;
    victims.reserve(static_cast<std::size_t>(
        std::min<std::uint64_t>(num_victims, 1u << 20)));
    for (std::uint64_t i = 0; r.ok() && i < num_victims; ++i) {
        StreamVictim v;
        v.line = r.scalar<std::uint64_t>();
        v.used = r.scalar<std::uint8_t>();
        v.dirty = r.scalar<std::uint8_t>();
        if (r.ok())
            victims.push_back(v);
    }

    std::uint64_t expected = r.checksum();
    std::uint64_t stored = 0;
    if (!(r.ok() &&
          std::fread(&stored, sizeof(stored), 1, f) == 1 &&
          stored == expected &&
          out.markerEvents <= events.size() &&
          out.markerVictims <= victims.size()))
        return false;
    encodeStream(out, events, victims);
    return true;
}

} // namespace

bool
writeL2Stream(const std::string &path, const L2Stream &stream)
{
    // Temp-and-rename so a concurrent reader (another harness
    // process sharing LDIS_TRACE_CACHE) never sees a partial file.
    std::string tmp = path + ".tmp";
    std::FILE *f = std::fopen(tmp.c_str(), "wb");
    if (!f) {
        warn("cannot write stream cache '%s'", tmp.c_str());
        return false;
    }

    bool ok = std::fwrite(kStreamMagicV2, 1, 4, f) == 4;
    StreamWriter w(f);
    w.scalar<std::uint32_t>(kStreamFormatVersion);
    w.str(stream.benchmark);
    writeStreamScalars(w, stream);
    w.scalar<std::uint64_t>(stream.victimCount);
    const std::vector<std::uint8_t> *arrays[5] = {
        &stream.heads, &stream.instrBytes, &stream.addrBytes,
        &stream.pcBytes, &stream.victimBytes};
    for (const auto *a : arrays)
        w.scalar<std::uint64_t>(a->size());
    for (const auto *a : arrays)
        if (!a->empty())
            w.bytes(a->data(), a->size());
    std::uint64_t sum = w.checksum();
    ok = ok && w.ok() &&
         std::fwrite(&sum, sizeof(sum), 1, f) == 1 &&
         std::fflush(f) == 0;
    std::fclose(f);
    ok = ok && std::rename(tmp.c_str(), path.c_str()) == 0;
    if (!ok) {
        std::remove(tmp.c_str());
        warn("failed to write stream cache '%s'", path.c_str());
    }
    return ok;
}

bool
writeL2StreamV1(const std::string &path, const L2Stream &stream)
{
    std::vector<StreamEvent> events = decodeEvents(stream);
    std::vector<StreamVictim> victims = decodeVictims(stream);

    std::string tmp = path + ".tmp";
    std::FILE *f = std::fopen(tmp.c_str(), "wb");
    if (!f) {
        warn("cannot write stream cache '%s'", tmp.c_str());
        return false;
    }

    bool ok = std::fwrite(kStreamMagicV1, 1, 4, f) == 4;
    StreamWriter w(f);
    w.scalar<std::uint32_t>(kStreamVersionV1);
    w.str(stream.benchmark);
    writeStreamScalars(w, stream);
    w.scalar<std::uint64_t>(events.size());
    w.scalar<std::uint64_t>(victims.size());
    for (const StreamEvent &e : events) {
        w.scalar<std::uint64_t>(e.addr);
        w.scalar<std::uint64_t>(e.pc);
        w.scalar<std::uint32_t>(e.instrDelta);
        w.scalar<std::uint8_t>(static_cast<std::uint8_t>(e.op));
        w.scalar<std::uint8_t>(e.flags);
    }
    for (const StreamVictim &v : victims) {
        w.scalar<std::uint64_t>(v.line);
        w.scalar<std::uint8_t>(v.used);
        w.scalar<std::uint8_t>(v.dirty);
    }
    std::uint64_t sum = w.checksum();
    ok = ok && w.ok() &&
         std::fwrite(&sum, sizeof(sum), 1, f) == 1 &&
         std::fflush(f) == 0;
    std::fclose(f);
    ok = ok && std::rename(tmp.c_str(), path.c_str()) == 0;
    if (!ok) {
        std::remove(tmp.c_str());
        warn("failed to write stream cache '%s'", path.c_str());
    }
    return ok;
}

bool
readL2Stream(const std::string &path, L2Stream &out)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return false; // cache miss: not worth a warning

    char magic[4];
    bool ok = std::fread(magic, 1, 4, f) == 4;
    if (ok && std::memcmp(magic, kStreamMagicV2, 4) == 0)
        ok = readStreamV2(f, path, out);
    else if (ok && std::memcmp(magic, kStreamMagicV1, 4) == 0)
        ok = readStreamV1(f, out);
    else
        ok = false;
    std::fclose(f);
    if (!ok)
        warn("stream cache '%s' is corrupt or truncated; "
             "regenerating", path.c_str());
    return ok;
}

} // namespace ldis
