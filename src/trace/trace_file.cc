#include "trace_file.hh"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "common/logging.hh"

namespace ldis
{

namespace
{

constexpr char kMagic[4] = {'L', 'D', 'T', '1'};

/** RAII FILE handle. */
struct File
{
    std::FILE *f = nullptr;

    File(const std::string &path, const char *mode)
        : f(std::fopen(path.c_str(), mode))
    {
        if (!f)
            ldis_fatal("cannot open trace file '%s'", path.c_str());
    }

    ~File()
    {
        if (f)
            std::fclose(f);
    }

    File(const File &) = delete;
    File &operator=(const File &) = delete;
};

template <typename T>
void
writeScalar(std::FILE *f, T v)
{
    if (std::fwrite(&v, sizeof(T), 1, f) != 1)
        ldis_fatal("trace write failed");
}

template <typename T>
T
readScalar(std::FILE *f)
{
    T v{};
    if (std::fread(&v, sizeof(T), 1, f) != 1)
        ldis_fatal("trace file truncated");
    return v;
}

void
writeRecord(std::FILE *f, const Access &a)
{
    writeScalar<std::uint64_t>(f, a.addr);
    writeScalar<std::uint64_t>(f, a.pc);
    writeScalar<std::uint32_t>(f, a.nonMemOps);
    writeScalar<std::uint32_t>(f, a.branches);
    writeScalar<std::uint8_t>(f, a.write ? 1 : 0);
    writeScalar<std::uint8_t>(f, a.depDist);
}

Access
readRecord(std::FILE *f)
{
    Access a;
    a.addr = readScalar<std::uint64_t>(f);
    a.pc = readScalar<std::uint64_t>(f);
    a.nonMemOps = readScalar<std::uint32_t>(f);
    a.branches = readScalar<std::uint32_t>(f);
    a.write = readScalar<std::uint8_t>(f) != 0;
    a.depDist = readScalar<std::uint8_t>(f);
    return a;
}

/** Read+validate the header; returns the record count. */
std::uint64_t
readHeader(std::FILE *f, std::string &name, CodeModel &code,
           ValueProfile &values, const std::string &path)
{
    char magic[4];
    if (std::fread(magic, 1, 4, f) != 4 ||
        std::memcmp(magic, kMagic, 4) != 0)
        ldis_fatal("'%s' is not a DistillSim trace", path.c_str());
    std::uint32_t name_len = readScalar<std::uint32_t>(f);
    if (name_len > 4096)
        ldis_fatal("trace '%s': implausible name length",
                   path.c_str());
    name.resize(name_len);
    if (name_len > 0 &&
        std::fread(name.data(), 1, name_len, f) != name_len)
        ldis_fatal("trace file truncated");
    code.codeBytes = readScalar<std::uint64_t>(f);
    code.avgRunInstrs = readScalar<std::uint32_t>(f);
    values.pZero = readScalar<double>(f);
    values.pOne = readScalar<double>(f);
    values.pNarrow = readScalar<double>(f);
    return readScalar<std::uint64_t>(f);
}

} // namespace

void
recordTrace(Workload &workload, const std::string &path,
            std::uint64_t num_accesses)
{
    ldis_assert(num_accesses > 0);
    File file(path, "wb");
    std::FILE *f = file.f;

    if (std::fwrite(kMagic, 1, 4, f) != 4)
        ldis_fatal("trace write failed");
    const std::string &name = workload.name();
    writeScalar<std::uint32_t>(
        f, static_cast<std::uint32_t>(name.size()));
    if (!name.empty() &&
        std::fwrite(name.data(), 1, name.size(), f) != name.size())
        ldis_fatal("trace write failed");
    writeScalar<std::uint64_t>(f, workload.codeModel().codeBytes);
    writeScalar<std::uint32_t>(f, workload.codeModel().avgRunInstrs);
    writeScalar<double>(f, workload.valueProfile().pZero);
    writeScalar<double>(f, workload.valueProfile().pOne);
    writeScalar<double>(f, workload.valueProfile().pNarrow);
    writeScalar<std::uint64_t>(f, num_accesses);

    for (std::uint64_t i = 0; i < num_accesses; ++i)
        writeRecord(f, workload.next());
}

TraceInfo
traceInfo(const std::string &path)
{
    File file(path, "rb");
    TraceInfo info;
    std::uint64_t count = readHeader(file.f, info.name, info.code,
                                     info.values, path);
    info.records = count;
    for (std::uint64_t i = 0; i < count; ++i)
        info.instructions += readRecord(file.f).instructions();
    return info;
}

FileWorkload::FileWorkload(const std::string &path)
{
    File file(path, "rb");
    std::uint64_t count =
        readHeader(file.f, traceName, code, vals, path);
    if (count == 0)
        ldis_fatal("trace '%s' is empty", path.c_str());
    records.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i)
        records.push_back(readRecord(file.f));
}

Access
FileWorkload::next()
{
    Access a = records[pos];
    if (++pos >= records.size()) {
        pos = 0;
        ++wrapCount;
        if (!warnedWrap) {
            warn("trace '%s' wrapped after %zu records; the run is "
                 "longer than the recording",
                 traceName.c_str(), records.size());
            warnedWrap = true;
        }
    }
    return a;
}

std::size_t
FileWorkload::fill(Access *out, std::size_t max)
{
    std::size_t n = 0;
    while (n < max) {
        std::size_t take =
            std::min(max - n, records.size() - pos);
        std::copy_n(records.begin() + pos, take, out + n);
        pos += take;
        n += take;
        if (pos >= records.size()) {
            pos = 0;
            ++wrapCount;
            if (!warnedWrap) {
                warn("trace '%s' wrapped after %zu records; the run "
                     "is longer than the recording",
                     traceName.c_str(), records.size());
                warnedWrap = true;
            }
        }
    }
    return n;
}

void
FileWorkload::reset()
{
    pos = 0;
    wrapCount = 0;
}

} // namespace ldis
