#include "experiment.hh"

#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdlib>

#include "common/logging.hh"
#include "common/stats.hh"

namespace ldis
{

InstCount
runLength(InstCount fallback)
{
    if (const char *env = std::getenv("LDIS_INSTRUCTIONS")) {
        char *end = nullptr;
        errno = 0;
        unsigned long long v = std::strtoull(env, &end, 10);
        // strtoull saturates to ULLONG_MAX on overflow; reject that
        // via errno instead of silently running "forever".
        if (errno == 0 && end && *end == '\0' && v > 0)
            return static_cast<InstCount>(v);
        warn("ignoring malformed LDIS_INSTRUCTIONS='%s'", env);
    }
    return fallback;
}

namespace
{

/** Seconds elapsed since @p start on the monotonic clock. */
double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

/** Collect every RunResult field from a finished measured run. */
RunResult
packResult(const Workload &workload, const SecondLevelCache &l2,
           const Hierarchy &hier, double elapsed)
{
    RunResult r;
    r.streamSource = "direct";
    r.wallSeconds = elapsed;
    r.instPerSec = elapsed > 0.0
        ? static_cast<double>(hier.stats().instructions) / elapsed
        : 0.0;
    r.benchmark = workload.name();
    r.config = l2.describe();
    r.instructions = hier.stats().instructions;
    r.mpki = hier.mpki();
    r.l2 = l2.stats();
    r.l1d = hier.l1dStats();
    r.l1i = hier.l1iStats();
    return r;
}

} // namespace

RunResult
runTrace(Workload &workload, SecondLevelCache &l2,
         InstCount instructions)
{
    stats::registry().counter("experiment.trace_runs").add();
    Hierarchy hier(workload, l2);
    auto start = std::chrono::steady_clock::now();
    hier.run(instructions);
    return packResult(workload, l2, hier, secondsSince(start));
}

RunResult
runTraceWarm(Workload &workload, SecondLevelCache &l2,
             InstCount warmup_instructions, InstCount instructions)
{
    Hierarchy hier(workload, l2);
    hier.run(warmup_instructions);
    hier.resetStats();
    auto start = std::chrono::steady_clock::now();
    hier.run(instructions);
    return packResult(workload, l2, hier, secondsSince(start));
}

RunResult
runTrace(const std::string &benchmark, ConfigKind kind,
         InstCount instructions, std::uint64_t seed)
{
    auto workload = makeBenchmark(benchmark, seed);
    L2Instance l2 = makeConfig(kind, workload->valueProfile());
    RunResult r = runTrace(*workload, *l2.cache, instructions);
    r.config = configName(kind);
    return r;
}

IpcResult
runIpc(const std::string &benchmark, ConfigKind kind,
       InstCount instructions, std::uint64_t seed)
{
    stats::registry().counter("experiment.ipc_runs").add();
    auto workload = makeBenchmark(benchmark, seed);
    L2Instance l2 = makeConfig(kind, workload->valueProfile());

    CpuParams cpu_params;
    OooCore core(cpu_params, *workload, *l2.cache);
    auto start = std::chrono::steady_clock::now();
    core.run(instructions);
    double elapsed = secondsSince(start);

    IpcResult r;
    r.wallSeconds = elapsed;
    r.instPerSec = elapsed > 0.0
        ? static_cast<double>(core.stats().instructions) / elapsed
        : 0.0;
    r.benchmark = benchmark;
    r.config = configName(kind);
    r.ipc = core.ipc();
    r.mpki = core.mpki();
    r.cpu = core.stats();
    r.branch = core.branchStats();
    return r;
}

void
writeJson(JsonWriter &j, const RunResult &r, const std::string &key)
{
    j.beginObject(key);
    j.field("benchmark", r.benchmark);
    j.field("config", r.config);
    j.field("instructions", r.instructions);
    j.field("mpki", r.mpki);
    j.field("wall_seconds", r.wallSeconds);
    j.field("inst_per_sec", r.instPerSec);
    j.beginObject("l2");
    j.field("accesses", r.l2.accesses);
    j.field("loc_hits", r.l2.locHits);
    j.field("woc_hits", r.l2.wocHits);
    j.field("hole_misses", r.l2.holeMisses);
    j.field("line_misses", r.l2.lineMisses);
    j.field("compulsory_misses", r.l2.compulsoryMisses);
    j.field("writebacks", r.l2.writebacks);
    j.endObject();
    j.beginObject("l1d");
    j.field("accesses", r.l1d.accesses);
    j.field("hits", r.l1d.hits);
    j.field("sector_misses", r.l1d.sectorMisses);
    j.field("line_misses", r.l1d.lineMisses);
    j.endObject();
    j.beginObject("l1i");
    j.field("accesses", r.l1i.accesses);
    j.field("misses", r.l1i.misses);
    j.endObject();
    // Mix runs only — solo results stay byte-identical.
    if (!r.streams.empty()) {
        j.beginArray("streams");
        for (const StreamStat &s : r.streams) {
            j.beginObject();
            j.field("benchmark", s.benchmark);
            j.field("instructions", s.instructions);
            j.field("mpki", s.mpki);
            j.field("solo_mpki", s.soloMpki);
            j.beginObject("l2");
            j.field("accesses", s.l2.accesses);
            j.field("loc_hits", s.l2.locHits);
            j.field("woc_hits", s.l2.wocHits);
            j.field("hole_misses", s.l2.holeMisses);
            j.field("line_misses", s.l2.lineMisses);
            j.field("compulsory_misses", s.l2.compulsoryMisses);
            j.field("writebacks", s.l2.writebacks);
            j.endObject();
            j.endObject();
        }
        j.endArray();
        j.field("weighted_speedup", r.weightedSpeedup);
        j.field("fairness", r.fairness);
    }
    j.endObject();
}

double
percentReduction(double base, double value)
{
    if (base == 0.0)
        return 0.0;
    return 100.0 * (base - value) / base;
}

double
mean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double sum = 0.0;
    for (double v : values)
        sum += v;
    return sum / static_cast<double>(values.size());
}

double
geomeanSpeedup(const std::vector<double> &speedups)
{
    if (speedups.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double s : speedups)
        log_sum += std::log(1.0 + s);
    return std::exp(log_sum / static_cast<double>(speedups.size()))
         - 1.0;
}

} // namespace ldis
