#include "experiment.hh"

#include <cmath>
#include <cstdlib>

#include "common/logging.hh"

namespace ldis
{

InstCount
runLength(InstCount fallback)
{
    if (const char *env = std::getenv("LDIS_INSTRUCTIONS")) {
        char *end = nullptr;
        unsigned long long v = std::strtoull(env, &end, 10);
        if (end && *end == '\0' && v > 0)
            return static_cast<InstCount>(v);
        warn("ignoring malformed LDIS_INSTRUCTIONS='%s'", env);
    }
    return fallback;
}

RunResult
runTrace(Workload &workload, SecondLevelCache &l2,
         InstCount instructions)
{
    Hierarchy hier(workload, l2);
    hier.run(instructions);

    RunResult r;
    r.benchmark = workload.name();
    r.config = l2.describe();
    r.instructions = hier.stats().instructions;
    r.mpki = hier.mpki();
    r.l2 = l2.stats();
    r.l1d = hier.l1dStats();
    r.l1i = hier.l1iStats();
    return r;
}

RunResult
runTraceWarm(Workload &workload, SecondLevelCache &l2,
             InstCount warmup_instructions, InstCount instructions)
{
    Hierarchy hier(workload, l2);
    hier.run(warmup_instructions);
    hier.resetStats();
    hier.run(instructions);

    RunResult r;
    r.benchmark = workload.name();
    r.config = l2.describe();
    r.instructions = hier.stats().instructions;
    r.mpki = hier.mpki();
    r.l2 = l2.stats();
    r.l1d = hier.l1dStats();
    r.l1i = hier.l1iStats();
    return r;
}

RunResult
runTrace(const std::string &benchmark, ConfigKind kind,
         InstCount instructions, std::uint64_t seed)
{
    auto workload = makeBenchmark(benchmark, seed);
    L2Instance l2 = makeConfig(kind, workload->valueProfile());
    RunResult r = runTrace(*workload, *l2.cache, instructions);
    r.config = configName(kind);
    return r;
}

IpcResult
runIpc(const std::string &benchmark, ConfigKind kind,
       InstCount instructions, std::uint64_t seed)
{
    auto workload = makeBenchmark(benchmark, seed);
    L2Instance l2 = makeConfig(kind, workload->valueProfile());

    CpuParams cpu_params;
    OooCore core(cpu_params, *workload, *l2.cache);
    core.run(instructions);

    IpcResult r;
    r.benchmark = benchmark;
    r.config = configName(kind);
    r.ipc = core.ipc();
    r.mpki = core.mpki();
    r.cpu = core.stats();
    r.branch = core.branchStats();
    return r;
}

double
percentReduction(double base, double value)
{
    if (base == 0.0)
        return 0.0;
    return 100.0 * (base - value) / base;
}

double
mean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double sum = 0.0;
    for (double v : values)
        sum += v;
    return sum / static_cast<double>(values.size());
}

double
geomeanSpeedup(const std::vector<double> &speedups)
{
    if (speedups.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double s : speedups)
        log_sum += std::log(1.0 + s);
    return std::exp(log_sum / static_cast<double>(speedups.size()))
         - 1.0;
}

} // namespace ldis
