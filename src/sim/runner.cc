#include "runner.hh"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <deque>
#include <exception>
#include <thread>

#include "common/logging.hh"
#include "common/thread_annotations.hh"
#include "common/table.hh"
#include "sim/mix.hh"
#include "sim/replay.hh"

namespace ldis
{

unsigned
runnerJobs()
{
    if (const char *env = std::getenv("LDIS_JOBS")) {
        char *end = nullptr;
        errno = 0;
        unsigned long long v = std::strtoull(env, &end, 10);
        if (errno == 0 && end && *end == '\0' && v > 0 && v <= 4096)
            return static_cast<unsigned>(v);
        warn("ignoring malformed LDIS_JOBS='%s'", env);
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

unsigned
gangThreadBudget(unsigned workers)
{
    unsigned lanes = gangLanes();
    return std::max(workers, lanes ? lanes : workers);
}

namespace detail
{

void
runThunks(const std::vector<std::function<void()>> &thunks,
          const std::vector<std::size_t> &deps, unsigned workers,
          WorkerLeaseHub *hub)
{
    std::vector<std::vector<std::size_t>> multi;
    multi.reserve(deps.size());
    for (std::size_t d : deps) {
        multi.emplace_back();
        if (d != kNoDep)
            multi.back().push_back(d);
    }
    runThunks(thunks, multi, workers, hub);
}

void
runThunks(const std::vector<std::function<void()>> &thunks,
          const std::vector<std::vector<std::size_t>> &deps,
          unsigned workers, WorkerLeaseHub *hub)
{
    std::size_t n = thunks.size();
    ldis_assert(deps.empty() || deps.size() == n);
    for (std::size_t i = 0; i < deps.size(); ++i)
        for (std::size_t d : deps[i])
            ldis_assert(d < i);

    if (workers > n)
        workers = static_cast<unsigned>(n);
    if (workers <= 1) {
        // Submission order satisfies every dependency (deps point
        // strictly backwards), so the serial path needs no queue —
        // and stays bit-compatible with the pre-dependency runner.
        // The one busy worker is this thread; a gang walk may still
        // lease whatever the budget has beyond it (LDIS_JOBS=1
        // LDIS_LANES=4 runs the walk four-wide).
        if (hub)
            hub->setBusyWorkers(1);
        for (const auto &t : thunks)
            t();
        if (hub)
            hub->setBusyWorkers(0);
        return;
    }

    /**
     * The scheduler's shared state, every field guarded by the one
     * scheduler capability. `dependents` is deliberately outside:
     * it is filled before the pool spawns and read-only afterwards.
     */
    struct Scheduler
    {
        Mutex mutex;
        CondVar cv;
        std::deque<std::size_t> ready LDIS_GUARDED_BY(mutex);
        std::size_t completed LDIS_GUARDED_BY(mutex) = 0;
        std::size_t running LDIS_GUARDED_BY(mutex) = 0;
        bool failed LDIS_GUARDED_BY(mutex) = false;
        std::exception_ptr first_error LDIS_GUARDED_BY(mutex);
    } sched;

    // dependents is filled before the pool spawns and read-only
    // afterwards; pending is the per-thunk count of unmet
    // prerequisites, mutated only under the scheduler capability.
    std::vector<std::vector<std::size_t>> dependents(n);
    std::vector<std::size_t> pending(n, 0);
    {
        // No worker exists yet, but the ready queue is guarded
        // state: take the capability so the analysis (and TSan)
        // see one consistent story.
        ScopedLock lock(sched.mutex);
        for (std::size_t i = 0; i < n; ++i) {
            if (deps.empty() || deps[i].empty()) {
                sched.ready.push_back(i);
                continue;
            }
            pending[i] = deps[i].size();
            for (std::size_t d : deps[i])
                dependents[d].push_back(i);
        }
    }

    // Busy-worker reporting into the lease hub happens under the
    // scheduler lock (the hub never calls back into the runner, so
    // the nested hub lock cannot invert; scheduler mutex -> hub
    // capability is the documented order, DESIGN.md §13). As jobs
    // finish, the reported count drops and in-flight gang walks can
    // grow into the freed capacity at their next chunk boundary.
    auto report_busy = [&]() LDIS_REQUIRES(sched.mutex) {
        if (hub)
            hub->setBusyWorkers(
                static_cast<unsigned>(sched.running));
    };

    auto work = [&] {
        ScopedLock lock(sched.mutex);
        for (;;) {
            sched.cv.wait(sched.mutex, [&] {
                sched.mutex.assertHeld();
                return sched.failed || sched.completed == n ||
                       !sched.ready.empty();
            });
            if (sched.failed || sched.completed == n)
                return;
            std::size_t i = sched.ready.front();
            sched.ready.pop_front();
            ++sched.running;
            report_busy();
            lock.unlock();
            try {
                thunks[i]();
            } catch (...) {
                lock.lock();
                --sched.running;
                report_busy();
                if (!sched.first_error)
                    sched.first_error = std::current_exception();
                sched.failed = true;
                sched.cv.notify_all();
                return;
            }
            lock.lock();
            --sched.running;
            report_busy();
            ++sched.completed;
            for (std::size_t j : dependents[i])
                if (--pending[j] == 0)
                    sched.ready.push_back(j);
            sched.cv.notify_all();
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned w = 0; w < workers; ++w)
        pool.emplace_back(work);
    for (std::thread &t : pool)
        t.join();
    std::exception_ptr first_error;
    {
        ScopedLock lock(sched.mutex);
        first_error = sched.first_error;
    }
    if (first_error)
        std::rethrow_exception(first_error);
}

} // namespace detail

std::string
runSummary(const std::vector<JobTiming> &timings, unsigned workers,
           double wall_seconds)
{
    double cumulative = 0.0;
    InstCount total_inst = 0;
    const JobTiming *slowest = nullptr;
    for (const JobTiming &t : timings) {
        cumulative += t.wallSeconds;
        total_inst += t.instructions;
        if (!slowest || t.wallSeconds > slowest->wallSeconds)
            slowest = &t;
    }

    // Sub-microsecond walls happen (empty or fully disk-cached
    // matrices); dividing by them turns the derived rows into
    // noise (or inf), so report them as 0 instead.
    constexpr double kMinWall = 1e-6;

    Table t({"run summary", "value"});
    t.addRow({"jobs", std::to_string(timings.size())});
    t.addRow({"workers", std::to_string(workers)});
    t.addRow({"simulated Minst",
              Table::num(static_cast<double>(total_inst) / 1e6, 1)});
    t.addRow({"wall time", Table::num(wall_seconds, 2) + " s"});
    t.addRow({"cumulative job time",
              Table::num(cumulative, 2) + " s"});
    t.addRow({"parallel speedup",
              Table::num(wall_seconds > kMinWall
                             ? cumulative / wall_seconds
                             : 0.0,
                         2) + "x"});
    t.addRow({"aggregate Minst/s",
              Table::num(wall_seconds > kMinWall
                             ? static_cast<double>(total_inst) / 1e6
                                   / wall_seconds
                             : 0.0,
                         2)});
    if (slowest) {
        t.addRow({"slowest job",
                  slowest->label + " ("
                      + Table::num(slowest->wallSeconds, 2) + " s, "
                      + Table::num(slowest->instPerSec / 1e6, 2)
                      + " Minst/s)"});
    }
    return t.render();
}

std::size_t
RunMatrix::add(const std::string &benchmark, ConfigKind kind,
               InstCount instructions, std::uint64_t seed)
{
    std::string label =
        benchmark + "/" + configName(kind);
    return add(std::move(label), [=] {
        return runTrace(benchmark, kind, instructions, seed);
    });
}

/**
 * One benchmark's shared front-end stream: filled by the setup job,
 * read by every replay job depending on it, and released by the last
 * of them (streams can be hundreds of MB; holding all benchmarks'
 * streams until the matrix finishes would defeat the point).
 */
struct RunMatrix::StreamHolder
{
    std::shared_ptr<const L2Stream> stream;
    std::size_t setupHandle = 0;
    std::size_t total = 0; //!< replay jobs registered (at add time)
    std::atomic<std::size_t> completed{0};

    /** Set by the setup job (before any dependent replay runs). */
    bool fromDiskCache = false;

    /**
     * Take a reference for one replay job, dropping the holder's own
     * reference after the last job. The release order is safe: a
     * job's take() happens before its completed increment, and the
     * last increment (acq_rel) happens before the reset.
     */
    std::shared_ptr<const L2Stream>
    take()
    {
        return stream;
    }

    void
    release()
    {
        if (completed.fetch_add(1, std::memory_order_acq_rel) + 1 ==
            total) {
            stream.reset();
            stats::registry()
                .counter("runner.streams_released")
                .add();
        }
    }

    /**
     * Scoped release for one replay job. Jobs hold it across the
     * whole closure so a throwing job still drops its reference —
     * without it, one failed job would pin the benchmark's
     * multi-hundred-MB stream until matrix teardown.
     */
    class Ref
    {
      public:
        explicit Ref(StreamHolder &holder) : h(holder) {}
        ~Ref() { h.release(); }
        Ref(const Ref &) = delete;
        Ref &operator=(const Ref &) = delete;

      private:
        StreamHolder &h;
    };
};

std::shared_ptr<RunMatrix::StreamHolder>
RunMatrix::streamFor(const std::string &benchmark,
                     std::uint64_t seed, InstCount instructions)
{
    std::string key = benchmark + '\0' + std::to_string(seed) +
                      '\0' + std::to_string(instructions);
    std::shared_ptr<StreamHolder> &holder = streams[key];
    if (!holder) {
        holder = std::make_shared<StreamHolder>();
        auto h = holder;
        holder->setupHandle = addSetup(
            benchmark + "/frontend", [h, benchmark, seed,
                                      instructions]() -> InstCount {
                StreamLoadInfo info;
                h->stream = loadOrRecordStream(benchmark, seed, 0,
                                               instructions, {},
                                               &info);
                h->fromDiskCache = info.fromDiskCache;
                return h->stream->meas.instructions;
            });
    }
    return holder;
}

std::size_t
RunMatrix::addReplay(const std::string &benchmark, ConfigKind kind,
                     InstCount instructions, std::uint64_t seed)
{
    if (!replayEnabled())
        return add(benchmark, kind, instructions, seed);
    auto holder = streamFor(benchmark, seed, instructions);
    ++holder->total;
    std::string label = benchmark + "/" + configName(kind);
    std::size_t idx = add(
        std::move(label),
        [holder, kind] {
            StreamHolder::Ref ref(*holder);
            ReplaySource source(holder->take());
            L2Instance l2 = makeConfig(kind, source.valueProfile());
            RunResult r = source.run(*l2.cache);
            r.config = configName(kind);
            r.streamSource =
                holder->fromDiskCache ? "disk-cache" : "record";
            return r;
        },
        holder->setupHandle);
    return idx;
}

std::size_t
RunMatrix::addReplay(const std::string &benchmark,
                     InstCount instructions, std::string label,
                     std::function<RunResult(ReplaySource &)> fn,
                     std::uint64_t seed)
{
    if (!replayEnabled()) {
        return add(std::move(label),
                   [benchmark, seed, instructions, fn] {
                       ReplaySource source(benchmark, seed,
                                           instructions);
                       return fn(source);
                   });
    }
    auto holder = streamFor(benchmark, seed, instructions);
    ++holder->total;
    return add(
        std::move(label),
        [holder, fn] {
            StreamHolder::Ref ref(*holder);
            ReplaySource source(holder->take());
            RunResult r = fn(source);
            r.streamSource =
                holder->fromDiskCache ? "disk-cache" : "record";
            return r;
        },
        holder->setupHandle);
}

GangJob
makeGangJob(const std::string &benchmark, ConfigKind kind)
{
    return {benchmark + "/" + configName(kind),
            [kind](const ValueProfile &values) {
                return makeConfig(kind, values);
            },
            [kind](SecondLevelCache &, RunResult &r) {
                r.config = configName(kind);
            }};
}

std::size_t
RunMatrix::addReplayGroup(const std::string &benchmark,
                          const std::vector<ConfigKind> &kinds,
                          InstCount instructions, std::uint64_t seed)
{
    ldis_assert(!kinds.empty());
    std::vector<GangJob> jobs;
    jobs.reserve(kinds.size());
    for (ConfigKind kind : kinds)
        jobs.push_back(makeGangJob(benchmark, kind));
    return addReplayGroup(benchmark, instructions, std::move(jobs),
                          seed);
}

std::size_t
RunMatrix::addReplayGroup(const std::string &benchmark,
                          InstCount instructions,
                          std::vector<GangJob> jobs,
                          std::uint64_t seed)
{
    ldis_assert(!jobs.empty());

    if (!replayEnabled() || !gangEnabled()) {
        // Per-lane fallback: the same result slots with the same
        // labels and bit-identical statistics — one stream walk per
        // lane instead of one per group. addReplay() handles the
        // further LDIS_REPLAY=0 fallback to direct simulation.
        std::size_t first = 0;
        for (std::size_t k = 0; k < jobs.size(); ++k) {
            auto build = jobs[k].build;
            auto finish = jobs[k].finish;
            std::size_t idx = addReplay(
                benchmark, instructions, jobs[k].label,
                [build, finish](ReplaySource &source) {
                    L2Instance l2 = build(source.valueProfile());
                    RunResult r = source.run(*l2.cache);
                    if (finish)
                        finish(*l2.cache, r);
                    return r;
                },
                seed);
            if (k == 0)
                first = idx;
        }
        return first;
    }

    auto holder = streamFor(benchmark, seed, instructions);
    ++holder->total; // the whole group takes ONE stream reference

    std::vector<std::string> slot_labels;
    slot_labels.reserve(jobs.size());
    for (const GangJob &job : jobs)
        slot_labels.push_back(job.label);

    std::string group_label = benchmark + "/gang[" +
                              std::to_string(jobs.size()) + "]";
    auto lanes =
        std::make_shared<std::vector<GangJob>>(std::move(jobs));
    return addGroup(
        group_label, std::move(slot_labels),
        [this, holder, lanes, benchmark, group_label] {
            StreamHolder::Ref ref(*holder);
            std::shared_ptr<const L2Stream> stream = holder->take();

            // Build every lane's cache up front (the L2Instance
            // keeps each value model alive alongside its cache),
            // then walk the stream once for all of them.
            std::vector<L2Instance> instances;
            instances.reserve(lanes->size());
            std::vector<SecondLevelCache *> caches;
            caches.reserve(lanes->size());
            for (const GangJob &job : *lanes) {
                instances.push_back(job.build(stream->values));
                caches.push_back(instances.back().cache.get());
            }

            // Lease lane workers from the run's hub: the walk goes
            // wide when workers are idle and stays serial when the
            // pool is saturated, never exceeding the thread budget.
            GangParallel par;
            par.hub = leaseHub();

            GangReplayInfo info;
            std::vector<RunResult> rs =
                replayMany(*stream, caches, &info, par);
            for (std::size_t k = 0; k < rs.size(); ++k) {
                rs[k].streamSource = holder->fromDiskCache
                    ? "disk-cache"
                    : "record";
                const GangJob &job = (*lanes)[k];
                if (job.finish)
                    job.finish(*caches[k], rs[k]);
            }
            telemetry::emitGang(group_label, benchmark, info);
            return rs;
        },
        holder->setupHandle);
}

std::size_t
RunMatrix::addMixGroup(const MixSpec &spec,
                       const std::vector<ConfigKind> &kinds,
                       InstCount member_instructions,
                       std::uint64_t seed, InstCount quantum)
{
    ldis_assert(!kinds.empty());
    ldis_assert(spec.members.size() >= 2 &&
                spec.members.size() <= kMaxMixStreams);
    if (quantum == 0)
        quantum = kDefaultMixQuantum;

    if (!replayEnabled()) {
        // Direct fallback: one SharedHierarchy job per kind, same
        // slot labels, bit-identical statistics.
        std::size_t first = 0;
        for (std::size_t k = 0; k < kinds.size(); ++k) {
            ConfigKind kind = kinds[k];
            std::size_t idx = add(
                spec.name + "/" + configName(kind),
                [spec, kind, member_instructions, seed, quantum] {
                    return runMixDirect(spec, kind,
                                        member_instructions, seed,
                                        quantum);
                });
            if (k == 0)
                first = idx;
        }
        return first;
    }

    // One holder per member (repeats allowed); the group takes ONE
    // stream reference per DISTINCT holder, and depends on each
    // distinct holder's recording job. Mixes share their members'
    // recorded streams with solo submissions of the same length.
    std::vector<std::shared_ptr<StreamHolder>> holders;
    std::vector<std::shared_ptr<StreamHolder>> distinct;
    std::vector<std::size_t> setup_deps;
    holders.reserve(spec.members.size());
    for (const std::string &bench : spec.members) {
        auto holder = streamFor(bench, seed, member_instructions);
        holders.push_back(holder);
        if (std::find(distinct.begin(), distinct.end(), holder) ==
            distinct.end()) {
            distinct.push_back(holder);
            ++holder->total;
            setup_deps.push_back(holder->setupHandle);
        }
    }

    std::vector<std::string> slot_labels;
    slot_labels.reserve(kinds.size());
    for (ConfigKind kind : kinds)
        slot_labels.push_back(spec.name + "/" + configName(kind));

    std::string group_label =
        spec.name + "/mix[" + std::to_string(kinds.size()) + "]";
    auto kind_list =
        std::make_shared<std::vector<ConfigKind>>(kinds);
    return addGroup(
        group_label, std::move(slot_labels),
        [this, holders, distinct, kind_list, spec, quantum,
         group_label] {
            // One scoped stream reference per distinct member, held
            // across the whole job (a throwing lane must still let
            // the streams go).
            std::vector<std::unique_ptr<StreamHolder::Ref>> refs;
            refs.reserve(distinct.size());
            for (const auto &holder : distinct)
                refs.push_back(
                    std::make_unique<StreamHolder::Ref>(*holder));

            std::vector<std::shared_ptr<const L2Stream>> streams;
            streams.reserve(holders.size());
            for (const auto &holder : holders)
                streams.push_back(holder->take());

            std::shared_ptr<const L2Stream> merged =
                composeMixStream(spec.name, streams, quantum);

            std::vector<MixMemberInfo> members;
            members.reserve(streams.size());
            for (const auto &s : streams)
                members.push_back(
                    {s->benchmark, s->meas.instructions});

            // Build every kind's cache behind its own attributing
            // wrapper, then walk the composed stream once for all
            // of them (or once per kind when the gang is off).
            std::vector<L2Instance> instances;
            std::vector<std::unique_ptr<StreamAttributingL2>> wraps;
            std::vector<SecondLevelCache *> caches;
            instances.reserve(kind_list->size());
            wraps.reserve(kind_list->size());
            caches.reserve(kind_list->size());
            for (ConfigKind kind : *kind_list) {
                instances.push_back(
                    makeConfig(kind, merged->values));
                wraps.push_back(
                    std::make_unique<StreamAttributingL2>(
                        *instances.back().cache));
                caches.push_back(wraps.back().get());
            }

            std::vector<RunResult> rs;
            if (gangEnabled()) {
                GangParallel par;
                par.hub = leaseHub();
                GangReplayInfo info;
                rs = replayMany(*merged, caches, &info, par);
                telemetry::emitGang(group_label, spec.name, info);
            } else {
                rs.reserve(caches.size());
                for (SecondLevelCache *cache : caches)
                    rs.push_back(replayStream(*merged, *cache));
            }

            bool all_disk = true;
            for (const auto &holder : distinct)
                if (!holder->fromDiskCache)
                    all_disk = false;
            for (std::size_t k = 0; k < rs.size(); ++k) {
                rs[k].config = configName((*kind_list)[k]);
                rs[k].streamSource =
                    all_disk ? "disk-cache" : "record";
                attachStreamStats(rs[k], *wraps[k], members);
            }
            return rs;
        },
        std::move(setup_deps));
}

std::size_t
IpcMatrix::add(const std::string &benchmark, ConfigKind kind,
               InstCount instructions, std::uint64_t seed)
{
    std::string label =
        benchmark + "/" + configName(kind) + "/ipc";
    return add(std::move(label), [=] {
        return runIpc(benchmark, kind, instructions, seed);
    });
}

} // namespace ldis
