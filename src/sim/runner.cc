#include "runner.hh"

#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>

#include "common/logging.hh"
#include "common/table.hh"

namespace ldis
{

unsigned
runnerJobs()
{
    if (const char *env = std::getenv("LDIS_JOBS")) {
        char *end = nullptr;
        errno = 0;
        unsigned long long v = std::strtoull(env, &end, 10);
        if (errno == 0 && end && *end == '\0' && v > 0 && v <= 4096)
            return static_cast<unsigned>(v);
        warn("ignoring malformed LDIS_JOBS='%s'", env);
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

namespace detail
{

void
runThunks(const std::vector<std::function<void()>> &thunks,
          unsigned workers)
{
    if (workers > thunks.size())
        workers = static_cast<unsigned>(thunks.size());
    if (workers <= 1) {
        for (const auto &t : thunks)
            t();
        return;
    }

    std::atomic<std::size_t> next{0};
    std::atomic<bool> failed{false};
    std::exception_ptr first_error;
    std::mutex error_mutex;

    auto work = [&] {
        for (;;) {
            std::size_t i = next.fetch_add(1);
            if (i >= thunks.size() || failed.load())
                return;
            try {
                thunks[i]();
            } catch (...) {
                std::lock_guard<std::mutex> lock(error_mutex);
                if (!first_error)
                    first_error = std::current_exception();
                failed.store(true);
                return;
            }
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned w = 0; w < workers; ++w)
        pool.emplace_back(work);
    for (std::thread &t : pool)
        t.join();
    if (first_error)
        std::rethrow_exception(first_error);
}

} // namespace detail

std::string
runSummary(const std::vector<JobTiming> &timings, unsigned workers,
           double wall_seconds)
{
    double cumulative = 0.0;
    InstCount total_inst = 0;
    const JobTiming *slowest = nullptr;
    for (const JobTiming &t : timings) {
        cumulative += t.wallSeconds;
        total_inst += t.instructions;
        if (!slowest || t.wallSeconds > slowest->wallSeconds)
            slowest = &t;
    }

    Table t({"run summary", "value"});
    t.addRow({"jobs", std::to_string(timings.size())});
    t.addRow({"workers", std::to_string(workers)});
    t.addRow({"simulated Minst",
              Table::num(static_cast<double>(total_inst) / 1e6, 1)});
    t.addRow({"wall time", Table::num(wall_seconds, 2) + " s"});
    t.addRow({"cumulative job time",
              Table::num(cumulative, 2) + " s"});
    t.addRow({"parallel speedup",
              Table::num(wall_seconds > 0.0
                             ? cumulative / wall_seconds
                             : 0.0,
                         2) + "x"});
    t.addRow({"aggregate Minst/s",
              Table::num(wall_seconds > 0.0
                             ? static_cast<double>(total_inst) / 1e6
                                   / wall_seconds
                             : 0.0,
                         2)});
    if (slowest) {
        t.addRow({"slowest job",
                  slowest->label + " ("
                      + Table::num(slowest->wallSeconds, 2) + " s, "
                      + Table::num(slowest->instPerSec / 1e6, 2)
                      + " Minst/s)"});
    }
    return t.render();
}

std::size_t
RunMatrix::add(const std::string &benchmark, ConfigKind kind,
               InstCount instructions, std::uint64_t seed)
{
    std::string label =
        benchmark + "/" + configName(kind);
    return add(std::move(label), [=] {
        return runTrace(benchmark, kind, instructions, seed);
    });
}

std::size_t
IpcMatrix::add(const std::string &benchmark, ConfigKind kind,
               InstCount instructions, std::uint64_t seed)
{
    std::string label =
        benchmark + "/" + configName(kind) + "/ipc";
    return add(std::move(label), [=] {
        return runIpc(benchmark, kind, instructions, seed);
    });
}

} // namespace ldis
