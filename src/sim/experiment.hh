/**
 * @file
 * Experiment harness shared by the bench binaries and examples: run
 * a benchmark proxy against an L2 configuration (trace-driven for
 * MPKI, execution-driven for IPC) and collect the headline numbers.
 */

#ifndef DISTILLSIM_SIM_EXPERIMENT_HH
#define DISTILLSIM_SIM_EXPERIMENT_HH

#include <string>
#include <vector>

#include "cache/hierarchy.hh"
#include "common/json.hh"
#include "cpu/ooo_core.hh"
#include "sim/configs.hh"
#include "trace/benchmarks.hh"

namespace ldis
{

/**
 * Per-stream slice of a multi-programmed (mix) run: the member's own
 * instruction count, MPKI and attributed L2 counters, plus its solo
 * MPKI when the harness ran the solo baseline (0 otherwise).
 */
struct StreamStat
{
    std::string benchmark;
    InstCount instructions = 0;
    double mpki = 0.0;
    double soloMpki = 0.0;
    L2Stats l2;
};

/** Outcome of one trace-driven run. */
struct RunResult
{
    std::string benchmark;
    std::string config;
    InstCount instructions = 0;
    double mpki = 0.0;
    L2Stats l2;
    L1DStats l1d;
    L1IStats l1i;

    /** Host wall-clock time of the simulation, in seconds. */
    double wallSeconds = 0.0;

    /** Simulated instructions per host second. */
    double instPerSec = 0.0;

    /**
     * Provenance of the front-end reference stream that drove the
     * run: "direct" (full hierarchy simulation), "record" (freshly
     * recorded replay stream) or "disk-cache" (LDIS_TRACE_CACHE
     * hit). Telemetry records carry it so a sweep's replay-cache
     * behaviour is auditable; excluded from stat comparisons.
     */
    std::string streamSource;

    /**
     * Multi-programmed runs only: one slice per mix member (empty
     * for solo runs, which keeps solo JSON byte-identical). The
     * headline fields above then aggregate over the whole mix.
     */
    std::vector<StreamStat> streams;

    /** Σ of per-stream CPI-proxy speedups vs solo (mix runs only). */
    double weightedSpeedup = 0.0;

    /** min/max of the per-stream speedups (1.0 = perfectly fair). */
    double fairness = 0.0;
};

/** Outcome of one execution-driven run. */
struct IpcResult
{
    std::string benchmark;
    std::string config;
    double ipc = 0.0;
    double mpki = 0.0;
    CpuStats cpu;
    BranchStats branch;

    /** Host wall-clock time of the simulation, in seconds. */
    double wallSeconds = 0.0;

    /** Simulated instructions per host second. */
    double instPerSec = 0.0;
};

/** Simulated instruction count of a result (timing helper). */
inline InstCount
simulatedInstructions(const RunResult &r)
{
    return r.instructions;
}

inline InstCount
simulatedInstructions(const IpcResult &r)
{
    return r.cpu.instructions;
}

/**
 * Number of instructions per run: the LDIS_INSTRUCTIONS environment
 * variable if set, otherwise @p fallback.
 */
InstCount runLength(InstCount fallback = 50'000'000);

/** Trace-driven run of @p benchmark against @p kind. */
RunResult runTrace(const std::string &benchmark, ConfigKind kind,
                   InstCount instructions, std::uint64_t seed = 1);

/** Trace-driven run against an already-built L2. */
RunResult runTrace(Workload &workload, SecondLevelCache &l2,
                   InstCount instructions);

/**
 * Trace-driven run with a warmup phase: the first
 * @p warmup_instructions fill the caches, then all statistics are
 * reset before the measured @p instructions. Cache contents and
 * first-touch (compulsory) state carry across the reset.
 */
RunResult runTraceWarm(Workload &workload, SecondLevelCache &l2,
                       InstCount warmup_instructions,
                       InstCount instructions);

/** Execution-driven run of @p benchmark against @p kind. */
IpcResult runIpc(const std::string &benchmark, ConfigKind kind,
                 InstCount instructions, std::uint64_t seed = 1);

/**
 * Serialize @p r — counters and timing — as a JSON object into @p j
 * (named @p key inside an enclosing object, anonymous otherwise).
 * Shared by `ldissim --json` and the matrix runner.
 */
void writeJson(JsonWriter &j, const RunResult &r,
               const std::string &key = "");

/** Percentage reduction of @p value relative to @p base. */
double percentReduction(double base, double value);

/** Arithmetic mean. */
double mean(const std::vector<double> &values);

/** Geometric mean of (1 + x) - 1 style speedups. */
double geomeanSpeedup(const std::vector<double> &speedups);

} // namespace ldis

#endif // DISTILLSIM_SIM_EXPERIMENT_HH
