/**
 * @file
 * Thread-pool experiment runner. Every paper figure replays many
 * fully-isolated (benchmark, L2 config) simulations; RunMatrix fans
 * them out across hardware threads and returns results in submission
 * order, so parallel sweeps are bit-identical to the serial loops
 * they replace. Worker count defaults to the hardware concurrency
 * and can be overridden with the LDIS_JOBS environment variable.
 *
 * Each job constructs its own workload and L2 (no simulator state is
 * shared), which is what makes the fan-out safe: the only shared
 * structures are the per-job result and timing slots, each written
 * by exactly one worker.
 */

#ifndef DISTILLSIM_SIM_RUNNER_HH
#define DISTILLSIM_SIM_RUNNER_HH

#include <chrono>
#include <cstddef>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/logging.hh"
#include "common/stats.hh"
#include "common/workshare.hh"
#include "sim/experiment.hh"
#include "sim/telemetry.hh"

namespace ldis
{

/**
 * Worker count for parallel sweeps: LDIS_JOBS if set and valid,
 * otherwise std::thread::hardware_concurrency() (minimum 1).
 */
unsigned runnerJobs();

/**
 * Thread budget of one matrix run: enough for the pool workers, or
 * for one gang walk's lane threads (gangLanes()), whichever is
 * larger. The lease hub keeps pool jobs and leased lane helpers
 * within this budget combined, so LDIS_JOBS x LDIS_LANES never
 * oversubscribes the host.
 */
unsigned gangThreadBudget(unsigned workers);

/** Observability record for one completed job. */
struct JobTiming
{
    std::string label;
    double wallSeconds = 0.0;
    double instPerSec = 0.0;
    InstCount instructions = 0;
};

/** "No dependency" sentinel for job submission. */
inline constexpr std::size_t kNoDep =
    static_cast<std::size_t>(-1);

namespace detail
{

/**
 * Execute @p thunks across @p workers threads. @p deps (empty, or
 * one entry per thunk) gives each thunk an optional prerequisite
 * thunk index (kNoDep for none, and always lower than the thunk's
 * own index): a thunk is only started once its prerequisite has
 * completed, while independent thunks keep every worker busy.
 * Serial when workers <= 1, running in submission order (which
 * satisfies every dependency by construction). Rethrows the first
 * job exception after all threads joined. @p hub, when non-null, is
 * kept informed of the number of busy workers so gang walks can
 * lease exactly the capacity the pool is not using.
 */
void runThunks(const std::vector<std::function<void()>> &thunks,
               const std::vector<std::size_t> &deps,
               unsigned workers, WorkerLeaseHub *hub = nullptr);

/**
 * Multi-prerequisite variant: @p deps gives each thunk a (possibly
 * empty) list of prerequisite indices, all strictly lower than the
 * thunk's own index. A thunk starts once every prerequisite has
 * completed (the mix jobs depend on one front-end recording per
 * member benchmark). The single-dep overload delegates here.
 */
void runThunks(const std::vector<std::function<void()>> &thunks,
               const std::vector<std::vector<std::size_t>> &deps,
               unsigned workers, WorkerLeaseHub *hub = nullptr);

} // namespace detail

/**
 * Render the observability summary for a completed matrix: job and
 * worker counts, aggregate simulation throughput, wall vs cumulative
 * time and the achieved parallel speedup, plus the slowest job.
 */
std::string runSummary(const std::vector<JobTiming> &timings,
                       unsigned workers, double wall_seconds);

/**
 * A matrix of simulation jobs producing @p Result (RunResult or
 * IpcResult: anything with wallSeconds/instPerSec fields and a
 * simulatedInstructions() overload). Submit jobs with add(), then
 * run() executes them on the pool and returns results in submission
 * order.
 *
 * Jobs are independent by default. A job may alternatively depend on
 * one *setup* job (addSetup): the pool then starts it only after the
 * setup completed, while unrelated jobs keep the workers busy. The
 * replay engine uses this to run one front-end pass per benchmark
 * and fan the per-config replays out behind it (RunMatrix::
 * addReplay); setup jobs produce no result slot, only a timing
 * entry.
 */
template <typename Result>
class RunMatrixT
{
  public:
    /** @param workers pool size; 0 = runnerJobs() */
    explicit RunMatrixT(unsigned workers = 0)
        : workerCount(workers ? workers : runnerJobs())
    {}

    /**
     * Submit a job; @p fn runs on a worker thread once the setup job
     * @p dep (a handle returned by addSetup; kNoDep for none) has
     * completed.
     * @return index of the job's slot in run()'s results
     */
    std::size_t
    add(std::string label, std::function<Result()> fn,
        std::size_t dep = kNoDep)
    {
        entries.push_back({std::move(label), std::move(fn), {}, dep,
                           numResults, {}, {}, 0});
        return numResults++;
    }

    /**
     * Submit a setup job: it produces no result slot, but other jobs
     * can depend on it. @p fn returns the number of instructions it
     * simulated (for the timing summary; 0 if none).
     * @return dependency handle for add()
     */
    std::size_t
    addSetup(std::string label, std::function<InstCount()> fn)
    {
        entries.push_back({std::move(label), {}, std::move(fn),
                           kNoDep, kNoSlot, {}, {}, 0});
        return entries.size() - 1;
    }

    /**
     * Submit a group job: one closure that produces one result per
     * entry of @p slot_labels, filling that many consecutive result
     * slots (the gang replay engine runs one stream walk for a whole
     * config group this way). The group gets a single timing entry
     * (label @p label, instructions summed over the results), while
     * each result keeps the closure's per-result wall figures and is
     * emitted to telemetry under its own slot label.
     * @return index of the group's FIRST result slot; the remaining
     *         results follow in slot-label order
     */
    std::size_t
    addGroup(std::string label, std::vector<std::string> slot_labels,
             std::function<std::vector<Result>()> fn,
             std::size_t dep = kNoDep)
    {
        ldis_assert(!slot_labels.empty());
        std::size_t first = numResults;
        std::size_t count = slot_labels.size();
        entries.push_back({std::move(label), {}, {}, dep, first,
                           std::move(fn), std::move(slot_labels),
                           count});
        numResults += count;
        return first;
    }

    /**
     * Group job with MULTIPLE setup prerequisites (each a handle
     * returned by addSetup): the group starts once every one of
     * @p setup_deps has completed. Used by the mix jobs, which
     * consume one recorded stream per member benchmark.
     */
    std::size_t
    addGroup(std::string label, std::vector<std::string> slot_labels,
             std::function<std::vector<Result>()> fn,
             std::vector<std::size_t> setup_deps)
    {
        std::size_t first = addGroup(std::move(label),
                                     std::move(slot_labels),
                                     std::move(fn), kNoDep);
        entries.back().multiDeps = std::move(setup_deps);
        return first;
    }

    /** Execute all jobs; results are in submission order. */
    const std::vector<Result> &
    run()
    {
        using clock = std::chrono::steady_clock;
        slots.assign(numResults, Result{});
        jobTimes.assign(entries.size(), JobTiming{});

        // The run's lease hub: gang walks borrow idle capacity from
        // it (see addReplayGroup), and runThunks reports busy
        // workers into it. Declared before the Progress/scope
        // objects below so everything that references it dies
        // first.
        WorkerLeaseHub hub(gangThreadBudget(workerCount));
        hubPtr = &hub;
        struct HubScope
        {
            RunMatrixT *m;
            ~HubScope() { m->hubPtr = nullptr; }
        } hub_scope{this};

        // Observability: live progress to stderr while the matrix
        // runs, one JSONL record per finished job, and a wall-time
        // histogram in the stat registry. All of it early-outs when
        // the respective sink is off, so a plain run stays
        // bit-identical and allocation-pattern-identical.
        telemetry::Progress progress(entries.size(), workerCount,
                                     &hub);
        stats::Histogram &wall_hist =
            stats::registry().histogram("runner.job_wall_ms");

        std::vector<std::function<void()>> thunks;
        std::vector<std::vector<std::size_t>> deps;
        thunks.reserve(entries.size());
        deps.reserve(entries.size());
        for (std::size_t i = 0; i < entries.size(); ++i) {
            std::vector<std::size_t> d = entries[i].multiDeps;
            if (entries[i].dep != kNoDep)
                d.push_back(entries[i].dep);
            deps.push_back(std::move(d));
            thunks.push_back([this, i, &progress, &wall_hist] {
                const Entry &e = entries[i];
                progress.started(i, e.label);
                auto t0 = clock::now();
                if (e.slot == kNoSlot) {
                    InstCount n = e.setup();
                    double s = std::chrono::duration<double>(
                                   clock::now() - t0)
                                   .count();
                    double ips = s > 0.0
                        ? static_cast<double>(n) / s
                        : 0.0;
                    jobTimes[i] = {e.label, s, ips, n};
                    wall_hist.sample(
                        static_cast<std::uint64_t>(s * 1e3));
                    telemetry::emitSetup(e.label, s, ips, n);
                    progress.finished(i, e.label, s);
                    return;
                }
                if (e.groupSize > 0) {
                    std::vector<Result> rs = e.group();
                    double s = std::chrono::duration<double>(
                                   clock::now() - t0)
                                   .count();
                    ldis_assert(rs.size() == e.groupSize);
                    InstCount n = 0;
                    for (const Result &r : rs)
                        n += simulatedInstructions(r);
                    double ips = s > 0.0
                        ? static_cast<double>(n) / s
                        : 0.0;
                    // One timing entry for the shared walk; the
                    // per-result wall figures (the walk time the
                    // closure recorded) are left alone — they all
                    // describe the same single pass.
                    jobTimes[i] = {e.label, s, ips, n};
                    wall_hist.sample(
                        static_cast<std::uint64_t>(s * 1e3));
                    for (std::size_t k = 0; k < rs.size(); ++k)
                        telemetry::emitJob(e.slotLabels[k], rs[k]);
                    progress.finished(i, e.label, s);
                    for (std::size_t k = 0; k < rs.size(); ++k)
                        slots[e.slot + k] = std::move(rs[k]);
                    return;
                }
                Result r = e.fn();
                double s = std::chrono::duration<double>(
                               clock::now() - t0)
                               .count();
                // Whole-job time (workload + cache construction
                // included), overriding the inner-loop figure the
                // experiment helpers recorded.
                r.wallSeconds = s;
                r.instPerSec = s > 0.0
                    ? static_cast<double>(simulatedInstructions(r))
                        / s
                    : 0.0;
                jobTimes[i] = {e.label, r.wallSeconds,
                               r.instPerSec,
                               simulatedInstructions(r)};
                wall_hist.sample(static_cast<std::uint64_t>(s * 1e3));
                telemetry::emitJob(e.label, r);
                progress.finished(i, e.label, s);
                slots[e.slot] = std::move(r);
            });
        }

        auto t0 = clock::now();
        detail::runThunks(thunks, deps, workerCount, &hub);
        matrixWall =
            std::chrono::duration<double>(clock::now() - t0).count();
        telemetry::emitMatrixSummary(numResults, workerCount,
                                     matrixWall,
                                     cumulativeSeconds());
        return slots;
    }

    const std::vector<Result> &results() const { return slots; }

    /**
     * Per-job timings in submission order, setup jobs included (a
     * matrix without setups has exactly one entry per result).
     */
    const std::vector<JobTiming> &timings() const { return jobTimes; }

    /** Number of result-producing jobs (setups excluded). */
    std::size_t size() const { return numResults; }

    unsigned workers() const { return workerCount; }

    /**
     * The lease hub of the run() in progress (null outside run()).
     * Jobs that can use extra threads — the gang replay walk —
     * lease them from here instead of spawning their own.
     */
    WorkerLeaseHub *leaseHub() const { return hubPtr; }

    /** Wall-clock seconds of the whole run() call. */
    double wallSeconds() const { return matrixWall; }

    /** Sum of per-job wall seconds (the serial-equivalent cost). */
    double
    cumulativeSeconds() const
    {
        double sum = 0.0;
        for (const JobTiming &t : jobTimes)
            sum += t.wallSeconds;
        return sum;
    }

    /** Rendered run-summary table (valid after run()). */
    std::string
    summary() const
    {
        return runSummary(jobTimes, workerCount, matrixWall);
    }

  private:
    /** "Produces no result slot" marker for setup entries. */
    static constexpr std::size_t kNoSlot =
        static_cast<std::size_t>(-1);

    struct Entry
    {
        std::string label;
        std::function<Result()> fn;       //!< result jobs only
        std::function<InstCount()> setup; //!< setup jobs only
        std::size_t dep = kNoDep;         //!< entry-sequence index
        std::size_t slot = kNoSlot;       //!< (first) result index
        /** Group jobs only: one closure, groupSize result slots. */
        std::function<std::vector<Result>()> group;
        std::vector<std::string> slotLabels;
        std::size_t groupSize = 0;
        /** Additional setup prerequisites (multi-dep groups). */
        std::vector<std::size_t> multiDeps;
    };

    unsigned workerCount;
    WorkerLeaseHub *hubPtr = nullptr;
    std::vector<Entry> entries;
    std::size_t numResults = 0;
    std::vector<Result> slots;
    std::vector<JobTiming> jobTimes;
    double matrixWall = 0.0;
};

class ReplaySource;

/**
 * One lane of a custom gang-replay group (RunMatrix::
 * addReplayGroup): @p build constructs the lane's L2 (an L2Instance,
 * so a value model can outlive its cache) and the optional @p finish
 * post-processes the lane's result with its cache still alive —
 * config naming, derived-statistic extraction (e.g. average stored
 * words), prefetcher unwrapping.
 */
struct GangJob
{
    std::string label; //!< result/telemetry label, e.g. "mcf/LDIS"
    std::function<L2Instance(const ValueProfile &)> build;
    std::function<void(SecondLevelCache &, RunResult &)> finish;
};

/**
 * The GangJob lane equivalent of addReplay(benchmark, kind, ...):
 * builds makeConfig(kind) and names the result configName(kind).
 * For groups that mix named configurations with custom lanes.
 */
GangJob makeGangJob(const std::string &benchmark, ConfigKind kind);

/** Trace-driven matrix with a typed submission shorthand. */
class RunMatrix : public RunMatrixT<RunResult>
{
  public:
    using RunMatrixT<RunResult>::RunMatrixT;
    using RunMatrixT<RunResult>::add;

    /** Submit runTrace(benchmark, kind, instructions, seed). */
    std::size_t add(const std::string &benchmark, ConfigKind kind,
                    InstCount instructions, std::uint64_t seed = 1);

    /**
     * Replay-mode equivalent of add(benchmark, kind, ...): the first
     * submission for a (benchmark, seed, instructions) triple
     * schedules one shared front-end setup job; the per-config
     * replay jobs run behind it and produce statistics bit-identical
     * to direct simulation. Falls back to the direct add() when
     * LDIS_REPLAY=0. The shared stream is released after its last
     * replay job.
     */
    std::size_t addReplay(const std::string &benchmark,
                          ConfigKind kind, InstCount instructions,
                          std::uint64_t seed = 1);

    /**
     * Custom-closure variant for jobs that build their own L2 (the
     * ablation sweeps): @p fn receives a ReplaySource for the
     * benchmark's shared stream (or a direct-mode source when
     * LDIS_REPLAY=0) and runs it against whatever cache it likes.
     */
    std::size_t addReplay(const std::string &benchmark,
                          InstCount instructions, std::string label,
                          std::function<RunResult(ReplaySource &)> fn,
                          std::uint64_t seed = 1);

    /**
     * Gang submission: one job that replays the benchmark's shared
     * stream ONCE for every kind in @p kinds (replayMany), producing
     * one result slot per kind in @p kinds order — bit-identical to
     * (and slot-compatible with) the equivalent sequence of
     * addReplay(benchmark, kind, ...) calls. Falls back to exactly
     * that sequence when LDIS_GANG=0 (or replay is off entirely).
     * @return index of the FIRST kind's result slot
     */
    std::size_t addReplayGroup(const std::string &benchmark,
                               const std::vector<ConfigKind> &kinds,
                               InstCount instructions,
                               std::uint64_t seed = 1);

    /**
     * Custom gang submission for sweeps whose lanes build their own
     * caches: one shared walk over the benchmark's stream feeding
     * every lane of @p jobs, one result slot per lane in order.
     * Falls back to one custom addReplay job per lane when
     * LDIS_GANG=0.
     * @return index of the FIRST lane's result slot
     */
    std::size_t addReplayGroup(const std::string &benchmark,
                               InstCount instructions,
                               std::vector<GangJob> jobs,
                               std::uint64_t seed = 1);

    /**
     * Multi-programmed gang submission: schedule one front-end
     * recording per DISTINCT member benchmark of @p spec (shared
     * with any solo submissions of the same length), then one group
     * job that composes the members' streams into the mix's
     * interleaved stream (src/sim/mix.hh) and replays it once for
     * every kind in @p kinds — one result slot per kind, labelled
     * "<mix>/<config>", each carrying per-stream attribution in
     * RunResult::streams. Every member runs @p member_instructions
     * instructions. Falls back to direct SharedHierarchy jobs with
     * identical labels and bit-identical statistics when
     * LDIS_REPLAY=0, and to per-config replay of the composed
     * stream when LDIS_GANG=0.
     * @param quantum interleave quantum (0 = kDefaultMixQuantum)
     * @return index of the FIRST kind's result slot
     */
    std::size_t addMixGroup(const MixSpec &spec,
                            const std::vector<ConfigKind> &kinds,
                            InstCount member_instructions,
                            std::uint64_t seed = 1,
                            InstCount quantum = 0);

  private:
    struct StreamHolder;

    /** Holder (and setup job) for one front-end stream, memoized. */
    std::shared_ptr<StreamHolder>
    streamFor(const std::string &benchmark, std::uint64_t seed,
              InstCount instructions);

    /** Key: benchmark \\0 seed \\0 instructions. */
    std::map<std::string, std::shared_ptr<StreamHolder>> streams;
};

/** Execution-driven matrix with a typed submission shorthand. */
class IpcMatrix : public RunMatrixT<IpcResult>
{
  public:
    using RunMatrixT<IpcResult>::RunMatrixT;
    using RunMatrixT<IpcResult>::add;

    /** Submit runIpc(benchmark, kind, instructions, seed). */
    std::size_t add(const std::string &benchmark, ConfigKind kind,
                    InstCount instructions, std::uint64_t seed = 1);
};

} // namespace ldis

#endif // DISTILLSIM_SIM_RUNNER_HH
