/**
 * @file
 * Thread-pool experiment runner. Every paper figure replays many
 * fully-isolated (benchmark, L2 config) simulations; RunMatrix fans
 * them out across hardware threads and returns results in submission
 * order, so parallel sweeps are bit-identical to the serial loops
 * they replace. Worker count defaults to the hardware concurrency
 * and can be overridden with the LDIS_JOBS environment variable.
 *
 * Each job constructs its own workload and L2 (no simulator state is
 * shared), which is what makes the fan-out safe: the only shared
 * structures are the per-job result and timing slots, each written
 * by exactly one worker.
 */

#ifndef DISTILLSIM_SIM_RUNNER_HH
#define DISTILLSIM_SIM_RUNNER_HH

#include <chrono>
#include <cstddef>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "sim/experiment.hh"

namespace ldis
{

/**
 * Worker count for parallel sweeps: LDIS_JOBS if set and valid,
 * otherwise std::thread::hardware_concurrency() (minimum 1).
 */
unsigned runnerJobs();

/** Observability record for one completed job. */
struct JobTiming
{
    std::string label;
    double wallSeconds = 0.0;
    double instPerSec = 0.0;
    InstCount instructions = 0;
};

namespace detail
{

/**
 * Execute @p thunks across @p workers threads, each worker pulling
 * the next un-started index. Serial when workers <= 1. Rethrows the
 * first job exception after all threads joined.
 */
void runThunks(const std::vector<std::function<void()>> &thunks,
               unsigned workers);

} // namespace detail

/**
 * Render the observability summary for a completed matrix: job and
 * worker counts, aggregate simulation throughput, wall vs cumulative
 * time and the achieved parallel speedup, plus the slowest job.
 */
std::string runSummary(const std::vector<JobTiming> &timings,
                       unsigned workers, double wall_seconds);

/**
 * A matrix of independent simulation jobs producing @p Result
 * (RunResult or IpcResult: anything with wallSeconds/instPerSec
 * fields and a simulatedInstructions() overload). Submit jobs with
 * add(), then run() executes them on the pool and returns results
 * in submission order.
 */
template <typename Result>
class RunMatrixT
{
  public:
    /** @param workers pool size; 0 = runnerJobs() */
    explicit RunMatrixT(unsigned workers = 0)
        : workerCount(workers ? workers : runnerJobs())
    {}

    /** Submit a job; @p fn runs on a worker thread. @return index */
    std::size_t
    add(std::string label, std::function<Result()> fn)
    {
        jobs.push_back({std::move(label), std::move(fn)});
        return jobs.size() - 1;
    }

    /** Execute all jobs; results are in submission order. */
    const std::vector<Result> &
    run()
    {
        using clock = std::chrono::steady_clock;
        slots.assign(jobs.size(), Result{});
        jobTimes.assign(jobs.size(), JobTiming{});

        std::vector<std::function<void()>> thunks;
        thunks.reserve(jobs.size());
        for (std::size_t i = 0; i < jobs.size(); ++i) {
            thunks.push_back([this, i] {
                auto t0 = clock::now();
                Result r = jobs[i].fn();
                double s = std::chrono::duration<double>(
                               clock::now() - t0)
                               .count();
                // Whole-job time (workload + cache construction
                // included), overriding the inner-loop figure the
                // experiment helpers recorded.
                r.wallSeconds = s;
                r.instPerSec = s > 0.0
                    ? static_cast<double>(simulatedInstructions(r))
                        / s
                    : 0.0;
                jobTimes[i] = {jobs[i].label, r.wallSeconds,
                               r.instPerSec,
                               simulatedInstructions(r)};
                slots[i] = std::move(r);
            });
        }

        auto t0 = clock::now();
        detail::runThunks(thunks, workerCount);
        matrixWall =
            std::chrono::duration<double>(clock::now() - t0).count();
        return slots;
    }

    const std::vector<Result> &results() const { return slots; }
    const std::vector<JobTiming> &timings() const { return jobTimes; }
    std::size_t size() const { return jobs.size(); }
    unsigned workers() const { return workerCount; }

    /** Wall-clock seconds of the whole run() call. */
    double wallSeconds() const { return matrixWall; }

    /** Sum of per-job wall seconds (the serial-equivalent cost). */
    double
    cumulativeSeconds() const
    {
        double sum = 0.0;
        for (const JobTiming &t : jobTimes)
            sum += t.wallSeconds;
        return sum;
    }

    /** Rendered run-summary table (valid after run()). */
    std::string
    summary() const
    {
        return runSummary(jobTimes, workerCount, matrixWall);
    }

  private:
    struct Job
    {
        std::string label;
        std::function<Result()> fn;
    };

    unsigned workerCount;
    std::vector<Job> jobs;
    std::vector<Result> slots;
    std::vector<JobTiming> jobTimes;
    double matrixWall = 0.0;
};

/** Trace-driven matrix with a typed submission shorthand. */
class RunMatrix : public RunMatrixT<RunResult>
{
  public:
    using RunMatrixT<RunResult>::RunMatrixT;
    using RunMatrixT<RunResult>::add;

    /** Submit runTrace(benchmark, kind, instructions, seed). */
    std::size_t add(const std::string &benchmark, ConfigKind kind,
                    InstCount instructions, std::uint64_t seed = 1);
};

/** Execution-driven matrix with a typed submission shorthand. */
class IpcMatrix : public RunMatrixT<IpcResult>
{
  public:
    using RunMatrixT<IpcResult>::RunMatrixT;
    using RunMatrixT<IpcResult>::add;

    /** Submit runIpc(benchmark, kind, instructions, seed). */
    std::size_t add(const std::string &benchmark, ConfigKind kind,
                    InstCount instructions, std::uint64_t seed = 1);
};

} // namespace ldis

#endif // DISTILLSIM_SIM_RUNNER_HH
