/**
 * @file
 * Run-telemetry layer: a JSONL run-log sink plus live matrix
 * progress. When a sink is configured (the LDIS_METRICS environment
 * variable, or `ldissim --metrics`), every completed experiment job
 * appends one schema-versioned JSON record to the log — benchmark,
 * config, MPKI, the full L2/L1 counter block, wall time, simulation
 * speed, the replay stream's provenance, and host metadata — and
 * every finished matrix appends a summary record carrying the
 * StatRegistry snapshot (replay-cache hits/misses, per-stage timers,
 * job wall-time histogram). scripts/compare_runs.py diffs two such
 * logs per (label, benchmark, config) cell, which is what turns a
 * perf PR's "before/after" claim into a checked artifact.
 *
 * Record schema (schema = 2; v2 adds the gang records' lane
 * parallelism block — lanes, decode_wall_ms, replay_wall_ms,
 * lane_wall_ms — everything else is unchanged from v1):
 *   {"schema":2, "kind":"run",
 *    "experiment":"fig06_mpki", "label":"mcf/LDIS-MT-RC",
 *    "unix_time":…, "host":{"name":…, "hw_threads":…},
 *    "stream_source":"record|disk-cache|direct|none",
 *    "result":{…writeJson(RunResult)…}}
 *   kind "ipc":    result carries ipc/mpki/instructions/cycles
 *   kind "setup":  a front-end recording job (label, timing only)
 *   kind "gang":   one shared gang-replay walk (configs per walk,
 *                  events, packed bytes, decode and dispatch
 *                  throughput, lane workers, decode vs replay wall
 *                  and the per-lane wall breakdown)
 *   kind "matrix": jobs/workers/wall/cumulative + "stats" snapshot
 *
 * With no sink configured every entry point is a cheap early-out
 * (one latched check), so `LDIS_METRICS` off keeps benches
 * bit-identical and within noise of their previous throughput.
 *
 * Live progress ([done/total], ETA, slowest in-flight job) prints to
 * stderr while a matrix runs: on by default when stderr is a TTY,
 * forced with LDIS_PROGRESS=1, silenced with LDIS_PROGRESS=0.
 */

#ifndef DISTILLSIM_SIM_TELEMETRY_HH
#define DISTILLSIM_SIM_TELEMETRY_HH

#include <chrono>
#include <cstddef>
#include <map>
#include <string>

#include "common/thread_annotations.hh"
#include "sim/experiment.hh"

namespace ldis
{

struct GangReplayInfo;
class WorkerLeaseHub;

namespace telemetry
{

/** Telemetry record schema version (bump on breaking changes). */
inline constexpr std::uint64_t kSchemaVersion = 2;

/**
 * True iff a JSONL sink is configured. The first call latches
 * LDIS_METRICS from the environment; setSink() overrides it.
 */
bool enabled();

/** The sink path ("" when disabled). */
std::string sinkPath();

/** Override the sink ("" disables). Closes any open log first. */
void setSink(const std::string &path);

/**
 * Name of the running experiment (harness), stamped into every
 * record — each bench main sets this once.
 */
void setExperiment(const std::string &name);
std::string experiment();

/** Append one record for a finished trace-driven job. */
void emitJob(const std::string &label, const RunResult &r);

/** Append one record for a finished execution-driven job. */
void emitJob(const std::string &label, const IpcResult &r);

/** Append one record for a finished setup (front-end) job. */
void emitSetup(const std::string &label, double wall_seconds,
               double inst_per_sec, InstCount instructions);

/**
 * Append one record for a completed gang replay walk (kind "gang"):
 * how many configs shared the walk, the decoded event count and
 * packed payload size, the derived decode / dispatch throughputs
 * (events per second through the shared decoder, and events x
 * configs per second into the L2s), plus the walk's parallelism
 * block — lane workers, decode vs summed replay wall, and the
 * per-lane wall breakdown.
 */
void emitGang(const std::string &label,
              const std::string &benchmark,
              const GangReplayInfo &info);

/**
 * Append the end-of-matrix summary record, including the
 * StatRegistry snapshot.
 */
void emitMatrixSummary(std::size_t jobs, unsigned workers,
                       double wall_seconds,
                       double cumulative_seconds);

/** True iff live progress lines should be printed to stderr. */
bool progressEnabled();

/**
 * ETA for a matrix in progress: the remaining serial-equivalent
 * work (mean finished-job cost times the jobs left, counting
 * in-flight jobs as half done) spread over the workers that can
 * still be applied to it. Deliberately a function of per-job costs
 * and the pool worker count only: a gang walk that leases extra
 * lane helpers speeds its own job's wall time up — which the mean
 * already reflects — without inflating the apparent worker count,
 * so leasing cannot skew the estimate. Pure (and tested) helper.
 */
double etaSeconds(double mean_job_seconds, std::size_t remaining,
                  std::size_t in_flight, unsigned workers);

/**
 * Live progress for one matrix run: completion counter, ETA from
 * etaSeconds() over the finished-job mean, and the longest-running
 * in-flight job (annotated with the lease hub's currently granted
 * lane helpers, when any). All methods are thread-safe and no-ops
 * when progress is disabled.
 */
class Progress
{
  public:
    explicit Progress(std::size_t total_jobs, unsigned workers = 1,
                      const WorkerLeaseHub *lease_hub = nullptr);

    /** A worker picked up job @p label. */
    void started(std::size_t index, const std::string &label)
        LDIS_EXCLUDES(mutex);

    /** Job @p label finished after @p wall_seconds. */
    void finished(std::size_t index, const std::string &label,
                  double wall_seconds) LDIS_EXCLUDES(mutex);

  private:
    // active/total/workerCount/hub/begin are written once in the
    // constructor and read-only afterwards; only the live progress
    // state below needs the capability.
    bool active;
    std::size_t total;
    unsigned workerCount;
    const WorkerLeaseHub *hub;
    std::chrono::steady_clock::time_point begin;
    Mutex mutex;
    std::size_t done LDIS_GUARDED_BY(mutex) = 0;
    //! summed finished-job wall time
    double doneSeconds LDIS_GUARDED_BY(mutex) = 0.0;
    /** index -> (label, start time) of jobs currently running. */
    std::map<std::size_t,
             std::pair<std::string,
                       std::chrono::steady_clock::time_point>>
        inFlight LDIS_GUARDED_BY(mutex);
};

} // namespace telemetry
} // namespace ldis

#endif // DISTILLSIM_SIM_TELEMETRY_HH
