/**
 * @file
 * Canonical cache configurations used across the experiments: the
 * Table-1 baseline, the LDIS variants of Figure 6, the capacity
 * points of Figure 8, the compression configurations of Figure 11,
 * and the SFP comparators of Figure 13.
 */

#ifndef DISTILLSIM_SIM_CONFIGS_HH
#define DISTILLSIM_SIM_CONFIGS_HH

#include <memory>
#include <string>
#include <vector>

#include "cache/l2_interface.hh"
#include "trace/value_model.hh"

namespace ldis
{

/** Named experiment configurations. */
enum class ConfigKind
{
    Baseline1MB,  //!< traditional 1MB 8-way LRU (Table 1)
    Trad1_5MB,    //!< traditional 1.5MB 12-way (Figure 8)
    Trad2MB,      //!< traditional 2MB 16-way (Figure 8)
    Trad4MB,      //!< traditional 4MB 32-way (Table 5)
    Trad1MB32B,   //!< 1MB with 32B lines (Section 2 discussion)
    LdisBase,     //!< distill 6+2, no MT, no RC
    LdisMT,       //!< distill 6+2 with median-threshold
    LdisMTRC,     //!< distill 6+2 with MT and reverter (default)
    Ldis4xTags,   //!< distill 5+3 with MT and reverter (Figure 11)
    Cmpr4xTags,   //!< compressed traditional, 4x tags (Figure 11)
    Fac4xTags,    //!< FAC 5+3 with MT and reverter (Figure 11)
    Sfp16k,       //!< SFP, 16k-entry predictor (Figure 13)
    Sfp64k,       //!< SFP, 64k-entry predictor (Figure 13)
};

/** Display name of a configuration ("LDIS-MT-RC", ...). */
const char *configName(ConfigKind kind);

/** Every ConfigKind, in declaration order (sweep support). */
const std::vector<ConfigKind> &allConfigKinds();

/**
 * A named multi-programmed workload mix: 2-4 member benchmarks
 * sharing one L2 (src/trace/mix.hh). Members may repeat (the
 * two-copies contention case); the member order is the mix's stream
 * order, so it is part of the mix's identity.
 */
struct MixSpec
{
    std::string name;                 //!< e.g. "art+mcf"
    std::vector<std::string> members; //!< benchmark names, in order
};

/** The canonical 2-way and 4-way mixes the harnesses sweep. */
const std::vector<MixSpec> &mixTable();

/** Mix named @p name in mixTable(), or null. */
const MixSpec *findMix(const std::string &name);

/**
 * A constructed L2 plus the value model it may reference (the
 * compression configurations synthesize line contents on demand).
 */
struct L2Instance
{
    std::unique_ptr<ValueModel> values; //!< null unless needed
    std::unique_ptr<SecondLevelCache> cache;
};

/**
 * Build configuration @p kind. @p profile parameterizes the value
 * model for the compression configurations (pass the workload's
 * profile); it is ignored by the others.
 */
L2Instance makeConfig(ConfigKind kind,
                      const ValueProfile &profile = {});

} // namespace ldis

#endif // DISTILLSIM_SIM_CONFIGS_HH
