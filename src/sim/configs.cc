#include "configs.hh"

#include "cache/traditional_l2.hh"
#include "common/logging.hh"
#include "compression/compressed_l2.hh"
#include "compression/fac_cache.hh"
#include "distill/distill_cache.hh"
#include "sfp/sfp_cache.hh"

namespace ldis
{

namespace
{

constexpr std::uint64_t kMB = 1024 * 1024;

L2Instance
makeTraditional(std::uint64_t bytes, unsigned ways,
                unsigned line_bytes = kLineBytes)
{
    CacheGeometry g;
    g.bytes = bytes;
    g.ways = ways;
    g.lineBytes = line_bytes;
    L2Instance inst;
    inst.cache = std::make_unique<TraditionalL2>(g);
    return inst;
}

L2Instance
makeDistill(unsigned woc_ways, bool mt, bool rc)
{
    DistillParams p;
    p.bytes = kMB;
    p.totalWays = 8;
    p.wocWays = woc_ways;
    p.medianThreshold = mt;
    p.useReverter = rc;
    L2Instance inst;
    inst.cache = std::make_unique<DistillCache>(p);
    return inst;
}

} // namespace

const char *
configName(ConfigKind kind)
{
    switch (kind) {
      case ConfigKind::Baseline1MB:
        return "TRAD-1MB";
      case ConfigKind::Trad1_5MB:
        return "TRAD-1.5MB";
      case ConfigKind::Trad2MB:
        return "TRAD-2MB";
      case ConfigKind::Trad4MB:
        return "TRAD-4MB";
      case ConfigKind::Trad1MB32B:
        return "TRAD-1MB-32B";
      case ConfigKind::LdisBase:
        return "LDIS-Base";
      case ConfigKind::LdisMT:
        return "LDIS-MT";
      case ConfigKind::LdisMTRC:
        return "LDIS-MT-RC";
      case ConfigKind::Ldis4xTags:
        return "LDIS-4xTags";
      case ConfigKind::Cmpr4xTags:
        return "CMPR-4xTags";
      case ConfigKind::Fac4xTags:
        return "FAC-4xTags";
      case ConfigKind::Sfp16k:
        return "SFP-16k";
      case ConfigKind::Sfp64k:
        return "SFP-64k";
    }
    return "?";
}

const std::vector<ConfigKind> &
allConfigKinds()
{
    static const std::vector<ConfigKind> kinds = {
        ConfigKind::Baseline1MB, ConfigKind::Trad1_5MB,
        ConfigKind::Trad2MB,     ConfigKind::Trad4MB,
        ConfigKind::Trad1MB32B,  ConfigKind::LdisBase,
        ConfigKind::LdisMT,      ConfigKind::LdisMTRC,
        ConfigKind::Ldis4xTags,  ConfigKind::Cmpr4xTags,
        ConfigKind::Fac4xTags,   ConfigKind::Sfp16k,
        ConfigKind::Sfp64k,
    };
    return kinds;
}

const std::vector<MixSpec> &
mixTable()
{
    // Canonical contention mixes over the paper's headline
    // benchmarks: high-MPKI pairings (art, mcf, health), the
    // medium-pressure pair (twolf, vpr), a two-copies case
    // (twolf+twolf, the self-contention sanity anchor of test_mix),
    // and three 4-way mixes spanning the pressure range.
    static const std::vector<MixSpec> mixes = {
        {"art+mcf", {"art", "mcf"}},
        {"twolf+vpr", {"twolf", "vpr"}},
        {"mcf+health", {"mcf", "health"}},
        {"twolf+twolf", {"twolf", "twolf"}},
        {"vpr+parser", {"vpr", "parser"}},
        {"art+mcf+twolf+vpr", {"art", "mcf", "twolf", "vpr"}},
        {"mcf+health+parser+ammp",
         {"mcf", "health", "parser", "ammp"}},
        {"art+twolf+health+vpr",
         {"art", "twolf", "health", "vpr"}},
    };
    return mixes;
}

const MixSpec *
findMix(const std::string &name)
{
    for (const MixSpec &m : mixTable())
        if (m.name == name)
            return &m;
    return nullptr;
}

L2Instance
makeConfig(ConfigKind kind, const ValueProfile &profile)
{
    switch (kind) {
      case ConfigKind::Baseline1MB:
        return makeTraditional(kMB, 8);
      case ConfigKind::Trad1_5MB:
        // 1.5MB keeps 2048 sets by widening to 12 ways.
        return makeTraditional(kMB + kMB / 2, 12);
      case ConfigKind::Trad2MB:
        return makeTraditional(2 * kMB, 16);
      case ConfigKind::Trad4MB:
        return makeTraditional(4 * kMB, 32);
      case ConfigKind::Trad1MB32B:
        return makeTraditional(kMB, 8, 32);
      case ConfigKind::LdisBase:
        return makeDistill(2, false, false);
      case ConfigKind::LdisMT:
        return makeDistill(2, true, false);
      case ConfigKind::LdisMTRC:
        return makeDistill(2, true, true);
      case ConfigKind::Ldis4xTags:
        return makeDistill(3, true, true);
      case ConfigKind::Cmpr4xTags: {
        L2Instance inst;
        inst.values = std::make_unique<ValueModel>(profile);
        CompressedL2Params p;
        p.bytes = kMB;
        p.ways = 8;
        p.tagFactor = 4;
        inst.cache =
            std::make_unique<CompressedL2>(p, *inst.values);
        return inst;
      }
      case ConfigKind::Fac4xTags: {
        L2Instance inst;
        inst.values = std::make_unique<ValueModel>(profile);
        DistillParams p;
        p.bytes = kMB;
        p.totalWays = 8;
        p.wocWays = 3;
        p.medianThreshold = true;
        p.useReverter = true;
        inst.cache = std::make_unique<FacCache>(p, *inst.values);
        return inst;
      }
      case ConfigKind::Sfp16k:
      case ConfigKind::Sfp64k: {
        SfpParams p;
        p.predictorEntries =
            kind == ConfigKind::Sfp16k ? 16 * 1024 : 64 * 1024;
        L2Instance inst;
        inst.cache = std::make_unique<SfpCache>(p);
        return inst;
      }
    }
    ldis_panic("unknown config kind");
}

} // namespace ldis
