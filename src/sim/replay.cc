#include "replay.hh"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <memory>
#include <optional>
#include <unordered_map>
#include <utility>

#include "cache/traditional_l2.hh"
#include "common/audit.hh"
#include "common/logging.hh"
#include "common/spsc.hh"
#include "common/stats.hh"
#include "common/workshare.hh"
#include "distill/distill_cache.hh"
#include "trace/benchmarks.hh"
#include "trace/trace_file.hh"

namespace ldis
{

namespace
{

/**
 * The recording backend: a "second-level cache" that answers every
 * access with a full line, like an infinite L2. Under full fills the
 * sectored L1D never sector-misses, so the front end's tag, LRU,
 * footprint and dirty evolution — everything the recorded stream
 * depends on — matches what it would be under any real L2.
 */
class RecordingL2 final : public SecondLevelCache
{
  public:
    L2Result
    access(Addr, bool, Addr, bool) override
    {
        ++st.accesses;
        ++st.lineMisses;
        return {L2Outcome::LineMiss, Footprint::full(), 0, false};
    }

    void l1dEviction(LineAddr, Footprint, Footprint) override {}
    const L2Stats &stats() const override { return st; }
    void resetStats() override { st = L2Stats{}; }
    std::string describe() const override { return "RECORD"; }

  private:
    L2Stats st;
};

/** FrontEndSink that encodes events into an L2Stream. */
class StreamRecorder final : public FrontEndSink
{
  public:
    explicit StreamRecorder(L2Stream &s) : out(s), enc(s) {}

    void
    advance(std::uint64_t instructions) override
    {
        pending += instructions;
    }

    void
    ifetchMiss(Addr pc) override
    {
        push(StreamOp::IFetch, pc, pc, 0);
    }

    void
    dataLineMiss(Addr addr, bool write, Addr pc,
                 const CacheLineState &victim) override
    {
        std::uint8_t flags = write ? kStreamWrite : 0;
        if (victim.valid) {
            flags |= kStreamHasVictim;
            enc.victim(victim.line, victim.footprint.raw(),
                       victim.dirtyWords.raw());
        }
        push(StreamOp::LineMiss, addr, pc, flags);
        ++out.totalLineMisses;
    }

    void
    dataFirstTouch(Addr addr, bool write, Addr pc) override
    {
        push(StreamOp::FirstTouch, addr, pc,
             write ? kStreamWrite : 0);
    }

  private:
    void
    push(StreamOp op, Addr addr, Addr pc, std::uint8_t flags)
    {
        constexpr std::uint64_t kMax =
            std::numeric_limits<std::uint32_t>::max();
        std::uint32_t delta =
            static_cast<std::uint32_t>(std::min(pending, kMax));
        pending = 0;
        enc.event(op, addr, pc, delta, flags);
    }

    L2Stream &out;
    StreamEncoder enc;
    std::uint64_t pending = 0;
};

/**
 * Open-addressing map from line address to that line's valid-word
 * mask in the (virtual) replayed L1D. Only lines installed by a
 * LineMiss event are ever looked up, so entries of evicted lines can
 * simply go stale — the next residency's LineMiss overwrites them.
 */
class LineWordsMap
{
  public:
    LineWordsMap() : keys(kInitialSlots, 0), vals(kInitialSlots, 0) {}

    /** Value slot for @p line, inserted zero-initialized if new. */
    std::uint8_t &
    operator[](LineAddr line)
    {
        // Keys are stored +1 so slot value 0 can mean "empty"
        // (line 0 is a valid line address).
        std::uint64_t key = line + 1;
        std::size_t i = probe(keys, key);
        if (keys[i] != key) {
            keys[i] = key;
            vals[i] = 0;
            ++used;
            if (2 * used > keys.size()) {
                grow();
                i = probe(keys, key);
            }
        }
        return vals[i];
    }

  private:
    static constexpr std::size_t kInitialSlots = std::size_t{1} << 14;

    static std::size_t
    probe(const std::vector<std::uint64_t> &table, std::uint64_t key)
    {
        std::size_t mask = table.size() - 1;
        std::uint64_t h = key * 0x9E3779B97F4A7C15ull;
        std::size_t i = static_cast<std::size_t>(h >> 32) & mask;
        while (table[i] != 0 && table[i] != key)
            i = (i + 1) & mask;
        return i;
    }

    void
    grow()
    {
        std::vector<std::uint64_t> bigger_keys(keys.size() * 4, 0);
        std::vector<std::uint8_t> bigger_vals(keys.size() * 4, 0);
        for (std::size_t i = 0; i < keys.size(); ++i) {
            if (keys[i] == 0)
                continue;
            std::size_t j = probe(bigger_keys, keys[i]);
            bigger_keys[j] = keys[i];
            bigger_vals[j] = vals[i];
        }
        keys.swap(bigger_keys);
        vals.swap(bigger_vals);
    }

    std::vector<std::uint64_t> keys;
    std::vector<std::uint8_t> vals;
    std::size_t used = 0;
};

/**
 * Open-addressing map from line address to a dense slot id,
 * assigned in first-seen order. The gang walk resolves each data
 * event's line to a slot once during chunk decode; every lane then
 * keeps its valid-word masks in a plain array indexed by slot, so
 * the per-lane cost of a mask lookup is one load instead of a hash
 * probe. Same table scheme as LineWordsMap (keys stored +1, grow at
 * 50% load).
 */
class LineSlotMap
{
  public:
    LineSlotMap() : keys(kInitialSlots, 0), ids(kInitialSlots, 0) {}

    /** Number of distinct lines seen so far. */
    std::size_t size() const { return used; }

    /** Dense id of @p line, assigned on first sight. */
    std::uint32_t
    operator[](LineAddr line)
    {
        std::uint64_t key = line + 1;
        std::size_t i = probe(keys, key);
        if (keys[i] != key) {
            keys[i] = key;
            ids[i] = static_cast<std::uint32_t>(used);
            ++used;
            if (2 * used > keys.size()) {
                grow();
                i = probe(keys, key);
            }
        }
        return ids[i];
    }

  private:
    static constexpr std::size_t kInitialSlots = std::size_t{1} << 14;

    static std::size_t
    probe(const std::vector<std::uint64_t> &table, std::uint64_t key)
    {
        std::size_t mask = table.size() - 1;
        std::uint64_t h = key * 0x9E3779B97F4A7C15ull;
        std::size_t i = static_cast<std::size_t>(h >> 32) & mask;
        while (table[i] != 0 && table[i] != key)
            i = (i + 1) & mask;
        return i;
    }

    void
    grow()
    {
        std::vector<std::uint64_t> bigger_keys(keys.size() * 4, 0);
        std::vector<std::uint32_t> bigger_ids(keys.size() * 4, 0);
        for (std::size_t i = 0; i < keys.size(); ++i) {
            if (keys[i] == 0)
                continue;
            std::size_t j = probe(bigger_keys, keys[i]);
            bigger_keys[j] = keys[i];
            bigger_ids[j] = ids[i];
        }
        keys.swap(bigger_keys);
        ids.swap(bigger_ids);
    }

    std::vector<std::uint64_t> keys;
    std::vector<std::uint32_t> ids;
    std::size_t used = 0;
};

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

/** FNV-1a step helper for the geometry key. */
std::uint64_t
fnvMix(std::uint64_t h, std::uint64_t v)
{
    h ^= v;
    return h * 0x100000001B3ull;
}

std::uint64_t
geometryKey(std::uint64_t h, const CacheGeometry &g)
{
    h = fnvMix(h, g.bytes);
    h = fnvMix(h, g.ways);
    h = fnvMix(h, g.lineBytes);
    h = fnvMix(h, static_cast<std::uint64_t>(g.repl));
    h = fnvMix(h, g.seed);
    return h;
}

/**
 * Fill a RunResult from a finished replay walk: the L2's own stats,
 * the config-independent window totals, and the re-derived sectored
 * L1D statistics (every access is a hit unless it line-missed or
 * sector-missed).
 */
RunResult
assembleResult(const L2Stream &stream, SecondLevelCache &l2,
               std::uint64_t sector_misses, double elapsed)
{
    RunResult r;
    r.benchmark = stream.benchmark;
    r.config = l2.describe();
    r.instructions = stream.meas.instructions;
    r.l2 = l2.stats();
    r.mpki = stream.meas.instructions == 0
        ? 0.0
        : static_cast<double>(r.l2.misses())
            / (static_cast<double>(stream.meas.instructions)
               / 1000.0);
    r.l1d.accesses = stream.meas.l1dAccesses;
    r.l1d.lineMisses = stream.meas.l1dLineMisses;
    r.l1d.sectorMisses = sector_misses;
    r.l1d.hits = stream.meas.l1dAccesses
        - stream.meas.l1dLineMisses - sector_misses;
    r.l1i.accesses = stream.meas.l1iAccesses;
    r.l1i.misses = stream.meas.l1iMisses;
    r.wallSeconds = elapsed;
    r.instPerSec = elapsed > 0.0
        ? static_cast<double>(stream.meas.instructions) / elapsed
        : 0.0;
    return r;
}

} // namespace

bool
replayEnabled()
{
    if (const char *env = std::getenv("LDIS_REPLAY"))
        return !(env[0] == '0' && env[1] == '\0');
    return true;
}

bool
gangEnabled()
{
    if (const char *env = std::getenv("LDIS_GANG"))
        return !(env[0] == '0' && env[1] == '\0');
    return true;
}

namespace
{

/** setGangLanes() override (ldissim --lanes); 0 = none. */
std::atomic<unsigned> gangLanesOverride{0};

} // namespace

unsigned
gangLanes()
{
    unsigned forced =
        gangLanesOverride.load(std::memory_order_relaxed);
    if (forced)
        return forced;
    if (const char *env = std::getenv("LDIS_LANES")) {
        char *end = nullptr;
        errno = 0;
        unsigned long long v = std::strtoull(env, &end, 10);
        if (errno == 0 && end && *end == '\0' && v > 0 && v <= 4096)
            return static_cast<unsigned>(v);
        warn("ignoring malformed LDIS_LANES='%s'", env);
    }
    return 0;
}

void
setGangLanes(unsigned lanes)
{
    gangLanesOverride.store(lanes, std::memory_order_relaxed);
}

std::uint64_t
frontEndParamsKey(const HierarchyParams &params)
{
    std::uint64_t h = 0xCBF29CE484222325ull;
    h = geometryKey(h, params.l1i);
    h = geometryKey(h, params.l1d);
    h = fnvMix(h, params.modelInstructionSide ? 1 : 0);
    return h;
}

L2Stream
recordStream(Workload &workload, std::uint64_t seed,
             InstCount warmup, InstCount instructions,
             const HierarchyParams &params)
{
    L2Stream s;
    s.benchmark = workload.name();
    s.seed = seed;
    s.warmupInstructions = warmup;
    s.instructions = instructions;
    s.frontEndKey = frontEndParamsKey(params);
    s.code = workload.codeModel();
    s.values = workload.valueProfile();

    // Reserve for a dense stream (mcf peaks near one event per three
    // instructions) so recording never re-copies a multi-hundred-MB
    // vector; untouched reserve pages cost nothing on Linux. Delta
    // locality keeps the varint streams near 2 B/event in practice.
    InstCount total = warmup + instructions;
    auto est = static_cast<std::size_t>(total / 3) + 1024;
    s.heads.reserve(est);
    s.instrBytes.reserve(est);
    s.addrBytes.reserve(2 * est);
    s.pcBytes.reserve(2 * est);
    s.victimBytes.reserve(3 * (static_cast<std::size_t>(total / 5) +
                               1024));

    RecordingL2 backend;
    Hierarchy hier(workload, backend, params);
    StreamRecorder recorder(s);
    hier.attachSink(&recorder);

    if (warmup > 0) {
        hier.run(warmup);
        hier.resetStats();
    }
    s.markerEvents = static_cast<std::size_t>(s.numEvents());
    s.markerVictims = static_cast<std::size_t>(s.numVictims());

    hier.run(instructions);
    hier.attachSink(nullptr);

    // Under full-line fills the L1D cannot sector-miss; if this ever
    // fires, the recording backend no longer models "any L2's"
    // front end and the stream would be unsound.
    ldis_assert(hier.l1dStats().sectorMisses == 0);

    s.meas.instructions = hier.stats().instructions;
    s.meas.dataAccesses = hier.stats().dataAccesses;
    s.meas.l1dAccesses = hier.l1dStats().accesses;
    s.meas.l1dLineMisses = hier.l1dStats().lineMisses;
    s.meas.l1iAccesses = hier.l1iStats().accesses;
    s.meas.l1iMisses = hier.l1iStats().misses;
    LDIS_AUDIT_CHECK("L2Stream", auditStream(s));
    return s;
}

std::string
auditStream(const L2Stream &stream)
{
    if (stream.markerEvents > stream.numEvents())
        return "warmup event marker beyond the event stream";
    if (stream.markerVictims > stream.numVictims())
        return "warmup victim marker beyond the victim stream";

    // Words first-touched during each line's current L1D residency:
    // seeded with the demand word at the LineMiss that opens the
    // residency, grown by FirstTouch events, compared against the
    // footprint the line's eviction victim record reports.
    std::unordered_map<LineAddr, std::uint8_t> touched;
    StreamDecoder dec(stream);
    std::uint64_t line_misses = 0;
    std::uint64_t count = stream.numEvents();

    for (std::uint64_t i = 0; i < count; ++i) {
        StreamEvent e = dec.next();
        auto at_event = [&](const char *what) {
            return std::string(what) + " at event " +
                   std::to_string(i);
        };
        if (!dec.ok())
            return at_event("packed stream decode overran a byte "
                            "stream");
        switch (e.op) {
        case StreamOp::IFetch:
            if (e.flags & kStreamHasVictim)
                return at_event("victim flag on an ifetch");
            break;
        case StreamOp::LineMiss: {
            ++line_misses;
            if (e.flags & kStreamHasVictim) {
                if (dec.victimsDecoded() >= stream.numVictims())
                    return at_event("victim flag without a victim "
                                    "record");
                StreamVictim v = dec.nextVictim();
                if (!dec.ok())
                    return at_event("packed victim decode overran "
                                    "its byte stream");
                if (v.dirty & ~v.used)
                    return at_event("victim dirty words outside its "
                                    "used words");
                auto it = touched.find(v.line);
                if (it != touched.end()) {
                    if (it->second & ~v.used)
                        return at_event("victim footprint missing "
                                        "first-touched words");
                    touched.erase(it);
                }
            }
            touched[lineAddrOf(e.addr)] = static_cast<std::uint8_t>(
                1u << wordIdxOf(e.addr));
            break;
        }
        case StreamOp::FirstTouch: {
            if (e.flags & kStreamHasVictim)
                return at_event("victim flag on a first touch");
            auto it = touched.find(lineAddrOf(e.addr));
            if (it != touched.end())
                it->second |= static_cast<std::uint8_t>(
                    1u << wordIdxOf(e.addr));
            break;
        }
        default:
            return at_event("unknown stream op");
        }
        if (i + 1 == stream.markerEvents &&
            dec.victimsDecoded() != stream.markerVictims)
            return "victim marker disagrees with the flagged events "
                   "in the warmup window";
    }
    if (dec.victimsDecoded() != stream.numVictims())
        return "victim records not consumed one-to-one by the "
               "flagged events";
    if (!dec.fullyConsumed())
        return "packed byte streams not consumed exactly by the "
               "decoded records";
    if (line_misses != stream.totalLineMisses)
        return "line-miss total disagrees with the events";
    return "";
}

RunResult
replayStream(const L2Stream &stream, SecondLevelCache &l2)
{
    LDIS_AUDIT_CHECK("L2Stream", auditStream(stream));
    LineWordsMap words;
    std::uint64_t sector_misses = 0;
    StreamDecoder dec(stream);

    // Data events cluster on the line just missed, so memoize the
    // last line's mask slot to skip the hash probe. The pointer is
    // refreshed by every map access, so a grow() inside operator[]
    // can never leave it dangling.
    LineAddr memo_line = ~LineAddr{0};
    std::uint8_t *memo_mask = nullptr;
    auto mask_of = [&](LineAddr line) -> std::uint8_t & {
        if (line != memo_line) {
            memo_mask = &words[line];
            memo_line = line;
        }
        return *memo_mask;
    };

    auto replay_span = [&](std::uint64_t count) {
        for (std::uint64_t i = 0; i < count; ++i) {
            StreamEvent e = dec.next();
            switch (e.op) {
            case StreamOp::IFetch:
                l2.access(e.addr, false, e.pc, true);
                break;
            case StreamOp::LineMiss: {
                L2Result r = l2.access(e.addr,
                                       e.flags & kStreamWrite,
                                       e.pc, false);
                ldis_assert(
                    r.validWords.test(wordIdxOf(e.addr)));
                mask_of(lineAddrOf(e.addr)) = r.validWords.raw();
                if (e.flags & kStreamHasVictim) {
                    StreamVictim v = dec.nextVictim();
                    l2.l1dEviction(v.line, Footprint(v.used),
                                   Footprint(v.dirty));
                }
                break;
            }
            case StreamOp::FirstTouch: {
                std::uint8_t &mask = mask_of(lineAddrOf(e.addr));
                WordIdx word = wordIdxOf(e.addr);
                if (!((mask >> word) & 1u)) {
                    // The word was filled partially and this touch
                    // would have gone back to the L2: a sector miss.
                    ++sector_misses;
                    L2Result r = l2.access(e.addr,
                                           e.flags & kStreamWrite,
                                           e.pc, false);
                    ldis_assert(r.validWords.test(word));
                    mask |= r.validWords.raw();
                }
                break;
            }
            }
        }
    };

    auto start = std::chrono::steady_clock::now();

    // Warmup window: fills caches, then statistics restart exactly
    // as in runTraceWarm (contents and first-touch state persist).
    replay_span(stream.markerEvents);
    ldis_assert(dec.victimsDecoded() == stream.markerVictims);
    if (stream.warmupInstructions > 0) {
        l2.resetStats();
        sector_misses = 0;
    }

    replay_span(stream.numEvents() - stream.markerEvents);
    ldis_assert(dec.victimsDecoded() == stream.numVictims());
    ldis_assert(dec.ok());

    double elapsed = secondsSince(start);
    return assembleResult(stream, l2, sector_misses, elapsed);
}

namespace
{

/**
 * One decoded event chunk of the gang walk, in struct-of-arrays
 * form: four parallel streams (addr, pc, slot, op|flags packed in
 * one byte as in the stream head) plus the chunk's victim records,
 * so each lane pass streams 21B per event with unit stride and no
 * varint decode. In the pipelined walk two of these double-buffer
 * between the decode producer and the lane workers.
 */
struct GangChunk
{
    std::vector<Addr> addr;
    std::vector<Addr> pc;
    std::vector<std::uint32_t> slot;
    std::vector<std::uint8_t> head;
    std::vector<StreamVictim> victims;
    std::size_t slotCount = 0; //!< LineSlotMap size after decode
    bool resetStatsAfter = false; //!< warmup window ends here
    unsigned shards = 0;          //!< lane partition when published
    std::atomic<unsigned> pending{0}; //!< shard walks outstanding
};

/**
 * Contiguous static partition of @p lanes lanes into @p shards
 * parts: shard @p s owns [first, second). Static assignment is what
 * keeps per-lane stat streams byte-identical for any worker count —
 * each lane is walked by exactly one thread per chunk, in chunk
 * order.
 */
std::pair<std::size_t, std::size_t>
shardLanes(std::size_t lanes, unsigned shards, unsigned s)
{
    std::size_t base = lanes / shards;
    std::size_t rem = lanes % shards;
    std::size_t lo = s * base + std::min<std::size_t>(s, rem);
    return {lo, lo + base + (s < rem ? 1 : 0)};
}

} // namespace

std::vector<RunResult>
replayMany(const L2Stream &stream,
           const std::vector<SecondLevelCache *> &l2s,
           GangReplayInfo *info, const GangParallel &par)
{
    if (l2s.empty())
        return {};
    LDIS_AUDIT_CHECK("L2Stream", auditStream(stream));

    // One lane per config: its valid-word masks (dense, indexed by
    // the shared line-slot map below) and sector-miss count. Each
    // lane observes exactly the call sequence its solo replayStream
    // would have issued (in stream order), so every result is
    // bit-identical to the per-config walk. Lane state is touched
    // by one thread at a time (chunk handoffs order the accesses),
    // which is what makes lane sharding safe.
    struct Lane
    {
        SecondLevelCache *l2 = nullptr;
        std::vector<std::uint8_t> masks;
        std::uint64_t sectorMisses = 0;
        double wallSeconds = 0.0;
    };
    std::vector<Lane> lanes(l2s.size());
    for (std::size_t i = 0; i < l2s.size(); ++i)
        lanes[i].l2 = l2s[i];

    // The walk proceeds in large chunks: decode a block of events
    // once — resolving each data event's line to a dense slot id in
    // the shared LineSlotMap — then let every lane replay the whole
    // block before the next block is decoded. A lane's pass costs
    // less than a solo walk: no varint decode, and its valid-word
    // mask is one indexed load (lane.masks[slot]) instead of a hash
    // probe. Chunks are deliberately huge (millions of events): a
    // simulated cache model's metadata is about the size of a host
    // L2, so fine-grained interleaving evicts every lane's model
    // state between turns, while at this granularity the refill
    // cost of a lane switch amortizes to noise. Mask values persist
    // across chunks exactly like LineWordsMap entries persist in
    // the solo walk (stale entries are overwritten by the line's
    // next LineMiss), so per-lane behaviour is unchanged.
    constexpr std::size_t kDefaultChunkEvents = std::size_t{1} << 21;
    const std::size_t chunkEvents =
        par.chunkEvents ? par.chunkEvents : kDefaultChunkEvents;
    const std::size_t chunkCap = static_cast<std::size_t>(
        std::min<std::uint64_t>(chunkEvents, stream.numEvents()));

    LineSlotMap slots;
    StreamDecoder dec(stream);
    double decodeWall = 0.0;

    // Decode @p n events into @p c (producer side only: the decoder
    // and the slot map are strictly sequential). Consecutive data
    // events cluster on the line just missed, so memoize the last
    // line -> slot resolution.
    auto decode_chunk = [&](GangChunk &c, std::size_t n) {
        auto t0 = std::chrono::steady_clock::now();
        c.addr.clear();
        c.pc.clear();
        c.slot.clear();
        c.head.clear();
        c.victims.clear();
        c.addr.reserve(chunkCap);
        c.pc.reserve(chunkCap);
        c.slot.reserve(chunkCap);
        c.head.reserve(chunkCap);
        LineAddr memo_line = ~LineAddr{0};
        std::uint32_t memo_slot = 0;
        for (std::size_t i = 0; i < n; ++i) {
            StreamEvent e = dec.next();
            std::uint32_t slot = 0;
            if (e.op != StreamOp::IFetch) {
                LineAddr line = lineAddrOf(e.addr);
                if (line != memo_line) {
                    memo_slot = slots[line];
                    memo_line = line;
                }
                slot = memo_slot;
            }
            c.addr.push_back(e.addr);
            c.pc.push_back(e.pc);
            c.slot.push_back(slot);
            c.head.push_back(static_cast<std::uint8_t>(
                static_cast<unsigned>(e.op) |
                (static_cast<unsigned>(e.flags) << 2)));
            if (e.op == StreamOp::LineMiss &&
                (e.flags & kStreamHasVictim))
                c.victims.push_back(dec.nextVictim());
        }
        c.slotCount = slots.size();
        c.resetStatsAfter = false;
        decodeWall += secondsSince(t0);
    };

    // The chunk walk is generic over the concrete L2 type:
    // instantiated below for the two models every default bench
    // gangs (devirtualizing ~4 calls per event per lane) and once
    // for the interface as the general case.
    auto walk_chunk = [](Lane &lane, auto &l2, const GangChunk &c) {
        std::uint8_t *masks = lane.masks.data();
        std::size_t vi = 0;
        const std::size_t total = c.head.size();
        for (std::size_t i = 0; i < total; ++i) {
            const Addr addr = c.addr[i];
            const std::uint8_t head = c.head[i];
            const auto op = static_cast<StreamOp>(head & 0x3u);
            const std::uint8_t flags = head >> 2;
            switch (op) {
            case StreamOp::IFetch:
                l2.access(addr, false, c.pc[i], true);
                break;
            case StreamOp::LineMiss: {
                L2Result r = l2.access(addr, flags & kStreamWrite,
                                       c.pc[i], false);
                ldis_assert(r.validWords.test(wordIdxOf(addr)));
                masks[c.slot[i]] = r.validWords.raw();
                if (flags & kStreamHasVictim) {
                    // Decoded once; the eviction call goes to every
                    // lane, after its own fill, as in the solo walk.
                    const StreamVictim &v = c.victims[vi++];
                    l2.l1dEviction(v.line, Footprint(v.used),
                                   Footprint(v.dirty));
                }
                break;
            }
            case StreamOp::FirstTouch: {
                // Lanes diverge here: whether the touch
                // sector-misses depends on each config's own fill
                // masks.
                std::uint8_t mask = masks[c.slot[i]];
                WordIdx word = wordIdxOf(addr);
                if (!((mask >> word) & 1u)) {
                    ++lane.sectorMisses;
                    L2Result r =
                        l2.access(addr, flags & kStreamWrite,
                                  c.pc[i], false);
                    ldis_assert(r.validWords.test(word));
                    masks[c.slot[i]] = mask | r.validWords.raw();
                }
                break;
            }
            }
        }
        ldis_assert(vi == c.victims.size());
    };

    auto walk_lane = [&](Lane &lane, const GangChunk &c) {
        auto t0 = std::chrono::steady_clock::now();
        // New slots start as zero masks, exactly as a fresh
        // LineWordsMap entry would.
        if (lane.masks.size() < c.slotCount)
            lane.masks.resize(c.slotCount, 0);
        if (auto *dc = dynamic_cast<DistillCache *>(lane.l2))
            walk_chunk(lane, *dc, c);
        else if (auto *tr = dynamic_cast<TraditionalL2 *>(lane.l2))
            walk_chunk(lane, *tr, c);
        else
            walk_chunk(lane, *lane.l2, c);
        lane.wallSeconds += secondsSince(t0);
    };

    auto reset_lane = [](Lane &lane) {
        lane.l2->resetStats();
        lane.sectorMisses = 0;
    };

    // Thread budget of this walk: an explicit lanes count asks for
    // (lanes - 1) helpers on top of the producer, "auto" (0) takes
    // whatever the hub's budget has idle. Never more helpers than
    // lanes — a shard must own at least one.
    const unsigned lanesCfg = par.lanes ? par.lanes : gangLanes();
    unsigned want = 0;
    if (par.hub) {
        std::size_t cap = l2s.size();
        want = lanesCfg == 0
            ? static_cast<unsigned>(cap)
            : static_cast<unsigned>(
                  std::min<std::size_t>(lanesCfg - 1, cap));
    }

    // Pipeline plumbing. Two chunk buffers double-buffer between
    // the decode producer (this thread) and the lane workers: the
    // producer decodes chunk k+1 while the workers walk chunk k.
    // Each worker has its own depth-2 ready ring (every worker must
    // see every chunk, so this is a fan-out of SPSC rings, not one
    // MPMC queue); the free ring returns a buffer to the producer
    // once the last shard finished it (the atomic pending count).
    constexpr unsigned kBuffers = 2;
    GangChunk bufs[kBuffers];
    SpscRing<GangChunk *> freeRing(kBuffers);
    std::vector<std::unique_ptr<SpscRing<GangChunk *>>> ready;
    ready.reserve(want);
    for (unsigned s = 0; s < want; ++s)
        ready.push_back(
            std::make_unique<SpscRing<GangChunk *>>(kBuffers));
    for (GangChunk &b : bufs)
        freeRing.push(&b);

    // The lease joins (and its destructor waits for) every helper
    // before the rings and buffers above are torn down.
    std::optional<WorkerLeaseHub::Lease> lease;
    if (par.hub && want > 0)
        lease.emplace(*par.hub);

    unsigned g = 0; //!< shard workers granted so far

    auto shard_main = [&](unsigned s) {
        GangChunk *c = nullptr;
        while (ready[s]->pop(c)) {
            auto [lo, hi] = shardLanes(lanes.size(), c->shards, s);
            try {
                for (std::size_t i = lo; i < hi; ++i)
                    walk_lane(lanes[i], *c);
                if (c->resetStatsAfter)
                    for (std::size_t i = lo; i < hi; ++i)
                        reset_lane(lanes[i]);
            } catch (...) {
                // Refuse further chunks (the producer's next push
                // fails, so it stops decoding and closes every
                // ring), recycle what we already hold so no thread
                // blocks on a buffer, and surface the error through
                // the lease.
                ready[s]->close();
                GangChunk *dead = c;
                do {
                    if (dead->pending.fetch_sub(
                            1, std::memory_order_acq_rel) == 1)
                        freeRing.push(dead);
                } while (ready[s]->pop(dead));
                throw;
            }
            if (c->pending.fetch_sub(1, std::memory_order_acq_rel)
                == 1)
                freeRing.push(c);
        }
    };

    // Opportunistic growth at a chunk boundary: the hub grants
    // threads as record jobs finish, so a walk that started solo
    // picks up lane workers mid-stream. Resharding changes the
    // lane -> worker map, so it must not overlap in-flight chunks:
    // holding every buffer is the barrier (all published chunks
    // walked, all workers idle in pop).
    auto grow = [&] {
        if (!lease || g >= want || par.hub->idleThreads() == 0)
            return;
        GangChunk *held[kBuffers] = {};
        for (GangChunk *&h : held)
            freeRing.pop(h);
        while (g < want &&
               lease->launch([&, s = g] { shard_main(s); }))
            ++g;
        for (GangChunk *h : held)
            freeRing.push(h);
    };

    bool ok = true;
    auto produce_span = [&](std::uint64_t count, bool reset_after) {
        while (count > 0 && ok) {
            grow();
            GangChunk *c = nullptr;
            if (g == 0) {
                // Serial walk: reuse one buffer without ring
                // round-trips (both buffers stay parked in the free
                // ring; no worker exists to contend for them).
                c = &bufs[0];
            } else {
                freeRing.pop(c);
            }
            const std::size_t n = static_cast<std::size_t>(
                std::min<std::uint64_t>(chunkEvents, count));
            count -= n;
            decode_chunk(*c, n);
            c->resetStatsAfter = reset_after && count == 0;
            if (g == 0) {
                for (Lane &lane : lanes)
                    walk_lane(lane, *c);
                if (c->resetStatsAfter)
                    for (Lane &lane : lanes)
                        reset_lane(lane);
                continue;
            }
            c->shards = g;
            c->pending.store(g, std::memory_order_relaxed);
            for (unsigned s = 0; s < g; ++s) {
                if (!ready[s]->push(c)) {
                    // A lane worker failed and closed its ring;
                    // stop decoding. Chunks it never received keep
                    // a nonzero pending count and are simply
                    // abandoned — nobody waits for the free ring
                    // past this point.
                    ok = false;
                    break;
                }
            }
        }
    };

    stats::registry().counter("replay.gang_walks").add();
    stats::registry()
        .counter("replay.gang_configs")
        .add(l2s.size());

    auto start = std::chrono::steady_clock::now();
    {
        stats::Timer::Scope scope(
            stats::registry().timer("replay.gang_walk"));

        // Warmup window: fills caches, then statistics restart
        // exactly as in runTraceWarm (contents and first-touch
        // state persist). The reset rides on the window's last
        // chunk so each shard resets its own lanes in walk order.
        produce_span(stream.markerEvents,
                     stream.warmupInstructions > 0);
        if (ok) {
            ldis_assert(dec.victimsDecoded() ==
                        stream.markerVictims);
            if (stream.warmupInstructions > 0 &&
                stream.markerEvents == 0) {
                // No warmup events were recorded, so no chunk could
                // carry the reset; the lanes are untouched and all
                // workers idle — reset in line.
                for (Lane &lane : lanes)
                    reset_lane(lane);
            }
            produce_span(stream.numEvents() - stream.markerEvents,
                         false);
        }

        for (auto &r : ready)
            r->close();
        if (lease)
            lease->wait(); // rethrows a failed lane's exception
        ldis_assert(ok);
        ldis_assert(dec.victimsDecoded() == stream.numVictims());
        ldis_assert(dec.ok());
    }
    double elapsed = secondsSince(start);

    stats::registry().counter("replay.gang_lane_workers").add(g);

    if (info) {
        info->configs = l2s.size();
        info->events = stream.numEvents();
        info->streamBytes = stream.packedBytes();
        info->wallSeconds = elapsed;
        info->laneWorkers = g ? g : 1;
        info->decodeWallSeconds = decodeWall;
        info->laneWallSeconds.clear();
        info->laneWallSeconds.reserve(lanes.size());
        info->replayWallSeconds = 0.0;
        for (const Lane &lane : lanes) {
            info->laneWallSeconds.push_back(lane.wallSeconds);
            info->replayWallSeconds += lane.wallSeconds;
        }
    }

    std::vector<RunResult> results;
    results.reserve(lanes.size());
    for (Lane &lane : lanes)
        results.push_back(assembleResult(stream, *lane.l2,
                                         lane.sectorMisses,
                                         elapsed));
    return results;
}

std::string
streamCachePath(const std::string &benchmark, std::uint64_t seed,
                InstCount warmup, InstCount instructions,
                const HierarchyParams &params)
{
    const char *dir = std::getenv("LDIS_TRACE_CACHE");
    if (!dir || !*dir)
        return "";
    std::string safe;
    for (char c : benchmark)
        safe += std::isalnum(static_cast<unsigned char>(c)) ? c
                                                            : '_';
    std::uint64_t key = 0xCBF29CE484222325ull;
    key = fnvMix(key, seed);
    key = fnvMix(key, warmup);
    key = fnvMix(key, instructions);
    key = fnvMix(key, frontEndParamsKey(params));
    // The format version is part of the key AND visible in the name:
    // a cache directory shared with an older binary neither serves
    // nor clobbers another version's files.
    key = fnvMix(key, kStreamFormatVersion);
    char buf[64];
    std::snprintf(buf, sizeof(buf), "-%016llx.v%u.l2s",
                  static_cast<unsigned long long>(key),
                  kStreamFormatVersion);
    return std::string(dir) + "/" + safe + buf;
}

std::shared_ptr<const L2Stream>
loadOrRecordStream(const std::string &benchmark, std::uint64_t seed,
                   InstCount warmup, InstCount instructions,
                   const HierarchyParams &params,
                   StreamLoadInfo *info)
{
    std::string path = streamCachePath(benchmark, seed, warmup,
                                       instructions, params);
    if (info)
        info->cacheConfigured = !path.empty();
    if (!path.empty()) {
        auto cached = std::make_shared<L2Stream>();
        bool hit;
        {
            stats::Timer::Scope scope(
                stats::registry().timer("replay.stream_disk_load"));
            hit = readL2Stream(path, *cached) &&
                  cached->benchmark == benchmark &&
                  cached->seed == seed &&
                  cached->warmupInstructions == warmup &&
                  cached->instructions == instructions &&
                  cached->frontEndKey == frontEndParamsKey(params);
        }
        if (hit) {
            stats::registry()
                .counter("replay.stream_disk_hits")
                .add();
            if (info)
                info->fromDiskCache = true;
            return cached;
        }
        stats::registry().counter("replay.stream_disk_misses").add();
    }

    auto workload = makeBenchmark(benchmark, seed);
    stats::registry().counter("replay.streams_recorded").add();
    std::shared_ptr<L2Stream> fresh;
    {
        stats::Timer::Scope scope(
            stats::registry().timer("replay.stream_record"));
        fresh = std::make_shared<L2Stream>(recordStream(
            *workload, seed, warmup, instructions, params));
    }
    if (!path.empty())
        writeL2Stream(path, *fresh);
    return fresh;
}

RunResult
runReplay(const std::string &benchmark, ConfigKind kind,
          InstCount instructions, std::uint64_t seed)
{
    StreamLoadInfo info;
    auto stream =
        loadOrRecordStream(benchmark, seed, 0, instructions, {},
                           &info);
    L2Instance l2 = makeConfig(kind, stream->values);
    RunResult r = replayStream(*stream, *l2.cache);
    r.config = configName(kind);
    r.streamSource = info.fromDiskCache ? "disk-cache" : "record";
    return r;
}

RunResult
ReplaySource::run(SecondLevelCache &l2) const
{
    if (stream)
        return replayStream(*stream, l2);
    auto workload = makeBenchmark(bench, streamSeed);
    return runTrace(*workload, l2, instCount);
}

ValueProfile
ReplaySource::valueProfile() const
{
    if (stream)
        return stream->values;
    return makeBenchmark(bench, streamSeed)->valueProfile();
}

} // namespace ldis
