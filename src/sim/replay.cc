#include "replay.hh"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <unordered_map>

#include "common/audit.hh"
#include "common/logging.hh"
#include "common/stats.hh"
#include "trace/benchmarks.hh"
#include "trace/trace_file.hh"

namespace ldis
{

namespace
{

/**
 * The recording backend: a "second-level cache" that answers every
 * access with a full line, like an infinite L2. Under full fills the
 * sectored L1D never sector-misses, so the front end's tag, LRU,
 * footprint and dirty evolution — everything the recorded stream
 * depends on — matches what it would be under any real L2.
 */
class RecordingL2 final : public SecondLevelCache
{
  public:
    L2Result
    access(Addr, bool, Addr, bool) override
    {
        ++st.accesses;
        ++st.lineMisses;
        return {L2Outcome::LineMiss, Footprint::full(), 0, false};
    }

    void l1dEviction(LineAddr, Footprint, Footprint) override {}
    const L2Stats &stats() const override { return st; }
    void resetStats() override { st = L2Stats{}; }
    std::string describe() const override { return "RECORD"; }

  private:
    L2Stats st;
};

/** FrontEndSink that appends events to an L2Stream. */
class StreamRecorder final : public FrontEndSink
{
  public:
    explicit StreamRecorder(L2Stream &s) : out(s) {}

    void
    advance(std::uint64_t instructions) override
    {
        pending += instructions;
    }

    void
    ifetchMiss(Addr pc) override
    {
        push(StreamOp::IFetch, pc, pc, 0);
    }

    void
    dataLineMiss(Addr addr, bool write, Addr pc,
                 const CacheLineState &victim) override
    {
        std::uint8_t flags = write ? kStreamWrite : 0;
        if (victim.valid) {
            flags |= kStreamHasVictim;
            out.victims.push_back({victim.line,
                                   victim.footprint.raw(),
                                   victim.dirtyWords.raw()});
        }
        push(StreamOp::LineMiss, addr, pc, flags);
        ++out.totalLineMisses;
    }

    void
    dataFirstTouch(Addr addr, bool write, Addr pc) override
    {
        push(StreamOp::FirstTouch, addr, pc,
             write ? kStreamWrite : 0);
    }

  private:
    void
    push(StreamOp op, Addr addr, Addr pc, std::uint8_t flags)
    {
        constexpr std::uint64_t kMax =
            std::numeric_limits<std::uint32_t>::max();
        std::uint32_t delta =
            static_cast<std::uint32_t>(std::min(pending, kMax));
        pending = 0;
        out.events.push_back({addr, pc, delta, op, flags});
    }

    L2Stream &out;
    std::uint64_t pending = 0;
};

/**
 * Open-addressing map from line address to that line's valid-word
 * mask in the (virtual) replayed L1D. Only lines installed by a
 * LineMiss event are ever looked up, so entries of evicted lines can
 * simply go stale — the next residency's LineMiss overwrites them.
 */
class LineWordsMap
{
  public:
    LineWordsMap() : keys(kInitialSlots, 0), vals(kInitialSlots, 0) {}

    /** Value slot for @p line, inserted zero-initialized if new. */
    std::uint8_t &
    operator[](LineAddr line)
    {
        // Keys are stored +1 so slot value 0 can mean "empty"
        // (line 0 is a valid line address).
        std::uint64_t key = line + 1;
        std::size_t i = probe(keys, key);
        if (keys[i] != key) {
            keys[i] = key;
            vals[i] = 0;
            ++used;
            if (2 * used > keys.size()) {
                grow();
                i = probe(keys, key);
            }
        }
        return vals[i];
    }

  private:
    static constexpr std::size_t kInitialSlots = std::size_t{1} << 14;

    static std::size_t
    probe(const std::vector<std::uint64_t> &table, std::uint64_t key)
    {
        std::size_t mask = table.size() - 1;
        std::uint64_t h = key * 0x9E3779B97F4A7C15ull;
        std::size_t i = static_cast<std::size_t>(h >> 32) & mask;
        while (table[i] != 0 && table[i] != key)
            i = (i + 1) & mask;
        return i;
    }

    void
    grow()
    {
        std::vector<std::uint64_t> bigger_keys(keys.size() * 4, 0);
        std::vector<std::uint8_t> bigger_vals(keys.size() * 4, 0);
        for (std::size_t i = 0; i < keys.size(); ++i) {
            if (keys[i] == 0)
                continue;
            std::size_t j = probe(bigger_keys, keys[i]);
            bigger_keys[j] = keys[i];
            bigger_vals[j] = vals[i];
        }
        keys.swap(bigger_keys);
        vals.swap(bigger_vals);
    }

    std::vector<std::uint64_t> keys;
    std::vector<std::uint8_t> vals;
    std::size_t used = 0;
};

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

/** FNV-1a step helper for the geometry key. */
std::uint64_t
fnvMix(std::uint64_t h, std::uint64_t v)
{
    h ^= v;
    return h * 0x100000001B3ull;
}

std::uint64_t
geometryKey(std::uint64_t h, const CacheGeometry &g)
{
    h = fnvMix(h, g.bytes);
    h = fnvMix(h, g.ways);
    h = fnvMix(h, g.lineBytes);
    h = fnvMix(h, static_cast<std::uint64_t>(g.repl));
    h = fnvMix(h, g.seed);
    return h;
}

} // namespace

bool
replayEnabled()
{
    if (const char *env = std::getenv("LDIS_REPLAY"))
        return !(env[0] == '0' && env[1] == '\0');
    return true;
}

std::uint64_t
frontEndParamsKey(const HierarchyParams &params)
{
    std::uint64_t h = 0xCBF29CE484222325ull;
    h = geometryKey(h, params.l1i);
    h = geometryKey(h, params.l1d);
    h = fnvMix(h, params.modelInstructionSide ? 1 : 0);
    return h;
}

L2Stream
recordStream(Workload &workload, std::uint64_t seed,
             InstCount warmup, InstCount instructions,
             const HierarchyParams &params)
{
    L2Stream s;
    s.benchmark = workload.name();
    s.seed = seed;
    s.warmupInstructions = warmup;
    s.instructions = instructions;
    s.frontEndKey = frontEndParamsKey(params);
    s.code = workload.codeModel();
    s.values = workload.valueProfile();

    // Reserve for a dense stream (mcf peaks near one event per three
    // instructions) so recording never re-copies a multi-hundred-MB
    // vector; untouched reserve pages cost nothing on Linux.
    InstCount total = warmup + instructions;
    s.events.reserve(static_cast<std::size_t>(total / 3) + 1024);
    s.victims.reserve(static_cast<std::size_t>(total / 5) + 1024);

    RecordingL2 backend;
    Hierarchy hier(workload, backend, params);
    StreamRecorder recorder(s);
    hier.attachSink(&recorder);

    if (warmup > 0) {
        hier.run(warmup);
        hier.resetStats();
    }
    s.markerEvents = s.events.size();
    s.markerVictims = s.victims.size();

    hier.run(instructions);
    hier.attachSink(nullptr);

    // Under full-line fills the L1D cannot sector-miss; if this ever
    // fires, the recording backend no longer models "any L2's"
    // front end and the stream would be unsound.
    ldis_assert(hier.l1dStats().sectorMisses == 0);

    s.meas.instructions = hier.stats().instructions;
    s.meas.dataAccesses = hier.stats().dataAccesses;
    s.meas.l1dAccesses = hier.l1dStats().accesses;
    s.meas.l1dLineMisses = hier.l1dStats().lineMisses;
    s.meas.l1iAccesses = hier.l1iStats().accesses;
    s.meas.l1iMisses = hier.l1iStats().misses;
    LDIS_AUDIT_CHECK("L2Stream", auditStream(s));
    return s;
}

std::string
auditStream(const L2Stream &stream)
{
    if (stream.markerEvents > stream.events.size())
        return "warmup event marker beyond the event array";
    if (stream.markerVictims > stream.victims.size())
        return "warmup victim marker beyond the victim array";

    // Words first-touched during each line's current L1D residency:
    // seeded with the demand word at the LineMiss that opens the
    // residency, grown by FirstTouch events, compared against the
    // footprint the line's eviction victim record reports.
    std::unordered_map<LineAddr, std::uint8_t> touched;
    std::size_t victim_cursor = 0;
    std::uint64_t line_misses = 0;

    for (std::size_t i = 0; i < stream.events.size(); ++i) {
        const StreamEvent &e = stream.events[i];
        auto at_event = [&](const char *what) {
            return std::string(what) + " at event " +
                   std::to_string(i);
        };
        switch (e.op) {
        case StreamOp::IFetch:
            if (e.flags & kStreamHasVictim)
                return at_event("victim flag on an ifetch");
            break;
        case StreamOp::LineMiss: {
            ++line_misses;
            if (e.flags & kStreamHasVictim) {
                if (victim_cursor >= stream.victims.size())
                    return at_event("victim flag without a victim "
                                    "record");
                const StreamVictim &v =
                    stream.victims[victim_cursor++];
                if (v.dirty & ~v.used)
                    return at_event("victim dirty words outside its "
                                    "used words");
                auto it = touched.find(v.line);
                if (it != touched.end()) {
                    if (it->second & ~v.used)
                        return at_event("victim footprint missing "
                                        "first-touched words");
                    touched.erase(it);
                }
            }
            touched[lineAddrOf(e.addr)] = static_cast<std::uint8_t>(
                1u << wordIdxOf(e.addr));
            break;
        }
        case StreamOp::FirstTouch: {
            if (e.flags & kStreamHasVictim)
                return at_event("victim flag on a first touch");
            auto it = touched.find(lineAddrOf(e.addr));
            if (it != touched.end())
                it->second |= static_cast<std::uint8_t>(
                    1u << wordIdxOf(e.addr));
            break;
        }
        default:
            return at_event("unknown stream op");
        }
        if (i + 1 == stream.markerEvents &&
            victim_cursor != stream.markerVictims)
            return "victim marker disagrees with the flagged events "
                   "in the warmup window";
    }
    if (victim_cursor != stream.victims.size())
        return "victim records not consumed one-to-one by the "
               "flagged events";
    if (line_misses != stream.totalLineMisses)
        return "line-miss total disagrees with the events";
    return "";
}

RunResult
replayStream(const L2Stream &stream, SecondLevelCache &l2)
{
    LDIS_AUDIT_CHECK("L2Stream", auditStream(stream));
    LineWordsMap words;
    std::size_t victim_cursor = 0;
    std::uint64_t sector_misses = 0;

    // Data events cluster on the line just missed, so memoize the
    // last line's mask slot to skip the hash probe. The pointer is
    // refreshed by every map access, so a grow() inside operator[]
    // can never leave it dangling.
    LineAddr memo_line = ~LineAddr{0};
    std::uint8_t *memo_mask = nullptr;
    auto mask_of = [&](LineAddr line) -> std::uint8_t & {
        if (line != memo_line) {
            memo_mask = &words[line];
            memo_line = line;
        }
        return *memo_mask;
    };

    auto replay_span = [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
            const StreamEvent &e = stream.events[i];
            switch (e.op) {
            case StreamOp::IFetch:
                l2.access(e.addr, false, e.pc, true);
                break;
            case StreamOp::LineMiss: {
                L2Result r = l2.access(e.addr,
                                       e.flags & kStreamWrite,
                                       e.pc, false);
                ldis_assert(
                    r.validWords.test(wordIdxOf(e.addr)));
                mask_of(lineAddrOf(e.addr)) = r.validWords.raw();
                if (e.flags & kStreamHasVictim) {
                    ldis_assert(victim_cursor <
                                stream.victims.size());
                    const StreamVictim &v =
                        stream.victims[victim_cursor++];
                    l2.l1dEviction(v.line, Footprint(v.used),
                                   Footprint(v.dirty));
                }
                break;
            }
            case StreamOp::FirstTouch: {
                std::uint8_t &mask = mask_of(lineAddrOf(e.addr));
                WordIdx word = wordIdxOf(e.addr);
                if (!((mask >> word) & 1u)) {
                    // The word was filled partially and this touch
                    // would have gone back to the L2: a sector miss.
                    ++sector_misses;
                    L2Result r = l2.access(e.addr,
                                           e.flags & kStreamWrite,
                                           e.pc, false);
                    ldis_assert(r.validWords.test(word));
                    mask |= r.validWords.raw();
                }
                break;
            }
            }
        }
    };

    auto start = std::chrono::steady_clock::now();

    // Warmup window: fills caches, then statistics restart exactly
    // as in runTraceWarm (contents and first-touch state persist).
    replay_span(0, stream.markerEvents);
    ldis_assert(victim_cursor == stream.markerVictims);
    if (stream.warmupInstructions > 0) {
        l2.resetStats();
        sector_misses = 0;
    }

    replay_span(stream.markerEvents, stream.events.size());
    ldis_assert(victim_cursor == stream.victims.size());

    double elapsed = secondsSince(start);

    RunResult r;
    r.benchmark = stream.benchmark;
    r.config = l2.describe();
    r.instructions = stream.meas.instructions;
    r.l2 = l2.stats();
    r.mpki = stream.meas.instructions == 0
        ? 0.0
        : static_cast<double>(r.l2.misses())
            / (static_cast<double>(stream.meas.instructions)
               / 1000.0);
    r.l1d.accesses = stream.meas.l1dAccesses;
    r.l1d.lineMisses = stream.meas.l1dLineMisses;
    r.l1d.sectorMisses = sector_misses;
    r.l1d.hits = stream.meas.l1dAccesses
        - stream.meas.l1dLineMisses - sector_misses;
    r.l1i.accesses = stream.meas.l1iAccesses;
    r.l1i.misses = stream.meas.l1iMisses;
    r.wallSeconds = elapsed;
    r.instPerSec = elapsed > 0.0
        ? static_cast<double>(stream.meas.instructions) / elapsed
        : 0.0;
    return r;
}

std::string
streamCachePath(const std::string &benchmark, std::uint64_t seed,
                InstCount warmup, InstCount instructions,
                const HierarchyParams &params)
{
    const char *dir = std::getenv("LDIS_TRACE_CACHE");
    if (!dir || !*dir)
        return "";
    std::string safe;
    for (char c : benchmark)
        safe += std::isalnum(static_cast<unsigned char>(c)) ? c
                                                            : '_';
    std::uint64_t key = 0xCBF29CE484222325ull;
    key = fnvMix(key, seed);
    key = fnvMix(key, warmup);
    key = fnvMix(key, instructions);
    key = fnvMix(key, frontEndParamsKey(params));
    char buf[64];
    std::snprintf(buf, sizeof(buf), "-%016llx.l2s",
                  static_cast<unsigned long long>(key));
    return std::string(dir) + "/" + safe + buf;
}

std::shared_ptr<const L2Stream>
loadOrRecordStream(const std::string &benchmark, std::uint64_t seed,
                   InstCount warmup, InstCount instructions,
                   const HierarchyParams &params,
                   StreamLoadInfo *info)
{
    std::string path = streamCachePath(benchmark, seed, warmup,
                                       instructions, params);
    if (info)
        info->cacheConfigured = !path.empty();
    if (!path.empty()) {
        auto cached = std::make_shared<L2Stream>();
        bool hit;
        {
            stats::Timer::Scope scope(
                stats::registry().timer("replay.stream_disk_load"));
            hit = readL2Stream(path, *cached) &&
                  cached->benchmark == benchmark &&
                  cached->seed == seed &&
                  cached->warmupInstructions == warmup &&
                  cached->instructions == instructions &&
                  cached->frontEndKey == frontEndParamsKey(params);
        }
        if (hit) {
            stats::registry()
                .counter("replay.stream_disk_hits")
                .add();
            if (info)
                info->fromDiskCache = true;
            return cached;
        }
        stats::registry().counter("replay.stream_disk_misses").add();
    }

    auto workload = makeBenchmark(benchmark, seed);
    stats::registry().counter("replay.streams_recorded").add();
    std::shared_ptr<L2Stream> fresh;
    {
        stats::Timer::Scope scope(
            stats::registry().timer("replay.stream_record"));
        fresh = std::make_shared<L2Stream>(recordStream(
            *workload, seed, warmup, instructions, params));
    }
    if (!path.empty())
        writeL2Stream(path, *fresh);
    return fresh;
}

RunResult
runReplay(const std::string &benchmark, ConfigKind kind,
          InstCount instructions, std::uint64_t seed)
{
    StreamLoadInfo info;
    auto stream =
        loadOrRecordStream(benchmark, seed, 0, instructions, {},
                           &info);
    L2Instance l2 = makeConfig(kind, stream->values);
    RunResult r = replayStream(*stream, *l2.cache);
    r.config = configName(kind);
    r.streamSource = info.fromDiskCache ? "disk-cache" : "record";
    return r;
}

RunResult
ReplaySource::run(SecondLevelCache &l2) const
{
    if (stream)
        return replayStream(*stream, l2);
    auto workload = makeBenchmark(bench, streamSeed);
    return runTrace(*workload, l2, instCount);
}

ValueProfile
ReplaySource::valueProfile() const
{
    if (stream)
        return stream->values;
    return makeBenchmark(bench, streamSeed)->valueProfile();
}

} // namespace ldis
