/**
 * @file
 * Generate-once L2 replay (the front-end deduplication engine).
 *
 * Every paper figure sweeps one benchmark across many L2
 * configurations, but workload generation and L1I/L1D filtering are
 * (almost) independent of the L2: the L1 tag arrays, LRU stacks,
 * footprints and dirty masks evolve purely from the line-address
 * sequence. The one feedback path from the L2 into the front end is
 * the set of valid words a partial WOC fill delivers to the sectored
 * L1D — it decides whether a later touch is an L1 hit or a sector
 * miss (and hence another L2 access).
 *
 * recordStream() therefore runs the front end ONCE per benchmark
 * against a full-line-fill recording backend and captures
 *  - every L1I miss and L1D line miss (config-independent),
 *  - each line miss's eviction victim with its final footprint and
 *    dirty words (config-independent), and
 *  - every first touch of a word within an L1D residency — the only
 *    accesses whose hit/sector-miss outcome depends on the L2.
 *
 * The recorded stream is stored in a compact structure-of-arrays
 * form: one head byte per event (op + flags), and separate varint
 * byte streams for the instruction deltas and the zigzag-delta
 * encoded addresses / PCs (victim line addresses likewise). Spatial
 * locality makes most deltas one or two bytes, so the resident
 * stream is ~4-5x smaller than the naive array-of-structs record —
 * and a replay walk moves that much less memory. StreamEncoder /
 * StreamDecoder are the only readers and writers of the packed
 * form.
 *
 * replayStream() drives ANY SecondLevelCache from the recorded
 * stream, tracking per-line valid words to re-derive the sector
 * misses a partial-filling L2 would have produced. replayMany() is
 * the gang engine: it decodes the stream ONCE and feeds any number
 * of L2 configurations in lockstep, keeping per-config valid-word
 * maps, so a 9-config sweep walks the multi-hundred-MB event stream
 * a single time instead of nine. Either way the resulting RunResult
 * is bit-identical to a direct Hierarchy run of the same
 * benchmark/config pair: each config observes exactly the access
 * sequence its solo replay would have issued.
 *
 * With LDIS_TRACE_CACHE=<dir> set, recorded streams are additionally
 * persisted to a versioned, checksummed binary cache (see
 * src/trace/trace_file; format "LDS2", with read-compat for the v1
 * files). LDIS_REPLAY=0 forces the harnesses back into direct mode,
 * and LDIS_GANG=0 falls back from the gang walk to one replay per
 * config.
 */

#ifndef DISTILLSIM_SIM_REPLAY_HH
#define DISTILLSIM_SIM_REPLAY_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cache/hierarchy.hh"
#include "sim/configs.hh"
#include "sim/experiment.hh"

namespace ldis
{

/**
 * On-disk / in-memory stream format version. Version 2 is the
 * packed SoA layout ("LDS2" files); version 1 was the
 * array-of-structs record ("LDS1", still readable). The version is
 * part of the stream-cache file key (streamCachePath), so a cache
 * directory shared across binary versions never serves a stale
 * older-format file to a newer writer's key.
 */
inline constexpr std::uint32_t kStreamFormatVersion = 2;

/** Kind of one recorded front-end event. */
enum class StreamOp : std::uint8_t
{
    IFetch = 0,     //!< L1I miss; the L2 sees (pc, instr = true)
    LineMiss = 1,   //!< L1D line miss (+ optional eviction victim)
    FirstTouch = 2, //!< first word touch within an L1D residency
};

/** StreamEvent::flags bits. */
inline constexpr std::uint8_t kStreamWrite = 1u << 0;
inline constexpr std::uint8_t kStreamHasVictim = 1u << 1;

/**
 * One decoded L2-visible request record. For IFetch, addr == pc is
 * the fetch address. instrDelta is the number of instructions
 * retired since the previous event (saturated at 2^32-1; window
 * totals are carried exactly in StreamWindow). This is the logical
 * record StreamDecoder yields; the stream itself stores the packed
 * form.
 */
struct StreamEvent
{
    Addr addr = 0;
    Addr pc = 0;
    std::uint32_t instrDelta = 0;
    StreamOp op = StreamOp::IFetch;
    std::uint8_t flags = 0;
};

/** Eviction payload of a LineMiss event with kStreamHasVictim. */
struct StreamVictim
{
    LineAddr line = 0;
    std::uint8_t used = 0;  //!< Footprint::raw() at eviction
    std::uint8_t dirty = 0; //!< dirty-word mask at eviction
};

/** Config-independent totals of the measured window. */
struct StreamWindow
{
    InstCount instructions = 0;
    std::uint64_t dataAccesses = 0;
    std::uint64_t l1dAccesses = 0;
    std::uint64_t l1dLineMisses = 0;
    std::uint64_t l1iAccesses = 0;
    std::uint64_t l1iMisses = 0;
};

/**
 * A recorded L2-visible reference stream for one benchmark run.
 *
 * Events live in packed structure-of-arrays form: heads carries one
 * byte per event (op in bits 0-1, flags in bits 2-3), and the
 * remaining byte streams carry LEB128 varints — the instruction
 * delta, and zigzag-encoded deltas of the event address, the PC and
 * the victim line address (each field deltas against its own
 * previous value, IFetch addresses ride on the PC stream). Decode
 * is strictly sequential; use StreamDecoder (or the decodeEvents /
 * decodeVictims helpers) rather than touching the arrays.
 */
struct L2Stream
{
    std::string benchmark;
    std::uint64_t seed = 1;
    InstCount warmupInstructions = 0; //!< requested warmup length
    InstCount instructions = 0;       //!< requested measured length

    /** Front-end geometry key (frontEndParamsKey of the recorder). */
    std::uint64_t frontEndKey = 0;

    /** Side-band models, so configs can be built without the
     *  workload (the compression L2s need the value profile). */
    CodeModel code;
    ValueProfile values;

    /** Totals of the measured (post-warmup) window. */
    StreamWindow meas;

    /** LineMiss events across both windows. */
    std::uint64_t totalLineMisses = 0;

    /** Warmup/measure boundary: replay resets stats here. */
    std::size_t markerEvents = 0;
    std::size_t markerVictims = 0;

    /** Victim records (count; the payload is in victimBytes). */
    std::uint64_t victimCount = 0;

    /** Packed SoA event streams — see the struct comment. */
    std::vector<std::uint8_t> heads;
    std::vector<std::uint8_t> instrBytes;
    std::vector<std::uint8_t> addrBytes;
    std::vector<std::uint8_t> pcBytes;
    std::vector<std::uint8_t> victimBytes;

    /** Number of recorded events. */
    std::uint64_t numEvents() const { return heads.size(); }

    /** Number of recorded victim records. */
    std::uint64_t numVictims() const { return victimCount; }

    /** Total packed payload size, in bytes. */
    std::uint64_t
    packedBytes() const
    {
        return heads.size() + instrBytes.size() + addrBytes.size() +
               pcBytes.size() + victimBytes.size();
    }
};

/**
 * Append-side codec of the packed stream form. One encoder instance
 * must write the whole stream in order (it carries the running
 * delta bases); event() and victim() calls may interleave freely —
 * the byte streams are independent.
 */
class StreamEncoder
{
  public:
    explicit StreamEncoder(L2Stream &s) : out(s) {}

    void
    event(StreamOp op, Addr addr, Addr pc, std::uint32_t instr_delta,
          std::uint8_t flags)
    {
        out.heads.push_back(static_cast<std::uint8_t>(
            static_cast<std::uint8_t>(op) |
            static_cast<std::uint8_t>(flags << 2)));
        varint(out.instrBytes, instr_delta);
        if (op == StreamOp::IFetch) {
            // addr == pc for fetches: one delta on the PC stream.
            zigzag(out.pcBytes, pc - prevPc);
            prevPc = pc;
        } else {
            zigzag(out.addrBytes, addr - prevAddr);
            prevAddr = addr;
            zigzag(out.pcBytes, pc - prevPc);
            prevPc = pc;
        }
    }

    void
    victim(LineAddr line, std::uint8_t used, std::uint8_t dirty)
    {
        zigzag(out.victimBytes, line - prevVictimLine);
        prevVictimLine = line;
        out.victimBytes.push_back(used);
        out.victimBytes.push_back(dirty);
        ++out.victimCount;
    }

  private:
    static void
    varint(std::vector<std::uint8_t> &v, std::uint64_t x)
    {
        while (x >= 0x80) {
            v.push_back(static_cast<std::uint8_t>(x) | 0x80);
            x >>= 7;
        }
        v.push_back(static_cast<std::uint8_t>(x));
    }

    /** Two's-complement delta, zigzag-folded so small magnitudes of
     *  either sign stay short. */
    static void
    zigzag(std::vector<std::uint8_t> &v, std::uint64_t delta)
    {
        auto d = static_cast<std::int64_t>(delta);
        varint(v, (static_cast<std::uint64_t>(d) << 1) ^
                      static_cast<std::uint64_t>(d >> 63));
    }

    L2Stream &out;
    Addr prevAddr = 0;
    Addr prevPc = 0;
    LineAddr prevVictimLine = 0;
};

/**
 * Sequential decoder over the packed streams. Malformed input never
 * reads out of bounds: an overrunning cursor latches ok() == false
 * and further reads yield zeros (auditStream reports it; replay of
 * an audited/checksummed stream never trips it).
 */
class StreamDecoder
{
  public:
    explicit StreamDecoder(const L2Stream &s) : in(s) {}

    /** Events not yet decoded. */
    std::uint64_t
    remaining() const
    {
        return in.heads.size() - eventCursor;
    }

    /** Decode the next event (precondition: remaining() > 0). */
    StreamEvent
    next()
    {
        StreamEvent e;
        std::uint8_t head = in.heads[eventCursor++];
        if (head & 0xF0)
            failed = true;
        e.op = static_cast<StreamOp>(head & 0x3);
        e.flags = static_cast<std::uint8_t>((head >> 2) & 0x3);
        e.instrDelta = static_cast<std::uint32_t>(
            varint(in.instrBytes, instrCursor));
        if (e.op == StreamOp::IFetch) {
            prevPc += zigzag(in.pcBytes, pcCursor);
            e.pc = prevPc;
            e.addr = prevPc;
        } else {
            prevAddr += zigzag(in.addrBytes, addrCursor);
            e.addr = prevAddr;
            prevPc += zigzag(in.pcBytes, pcCursor);
            e.pc = prevPc;
        }
        return e;
    }

    /** Victim records not yet decoded. */
    std::uint64_t victimsDecoded() const { return victimCursor; }

    /** Decode the next victim record. */
    StreamVictim
    nextVictim()
    {
        StreamVictim v;
        prevVictimLine += zigzag(in.victimBytes, victimByteCursor);
        v.line = prevVictimLine;
        v.used = byte(in.victimBytes, victimByteCursor);
        v.dirty = byte(in.victimBytes, victimByteCursor);
        ++victimCursor;
        return v;
    }

    /** No cursor ever overran its byte stream. */
    bool ok() const { return !failed; }

    /**
     * True once every byte stream has been consumed exactly: all
     * events and victims decoded with no trailing bytes left over.
     */
    bool
    fullyConsumed() const
    {
        return !failed && eventCursor == in.heads.size() &&
               instrCursor == in.instrBytes.size() &&
               addrCursor == in.addrBytes.size() &&
               pcCursor == in.pcBytes.size() &&
               victimByteCursor == in.victimBytes.size() &&
               victimCursor == in.victimCount;
    }

  private:
    std::uint8_t
    byte(const std::vector<std::uint8_t> &v, std::size_t &cursor)
    {
        if (cursor >= v.size()) {
            failed = true;
            return 0;
        }
        return v[cursor++];
    }

    std::uint64_t
    varint(const std::vector<std::uint8_t> &v, std::size_t &cursor)
    {
        std::uint64_t x = 0;
        unsigned shift = 0;
        for (;;) {
            std::uint8_t b = byte(v, cursor);
            x |= static_cast<std::uint64_t>(b & 0x7F) << shift;
            if (!(b & 0x80))
                return x;
            shift += 7;
            if (shift >= 64) {
                failed = true;
                return x;
            }
        }
    }

    std::uint64_t
    zigzag(const std::vector<std::uint8_t> &v, std::size_t &cursor)
    {
        std::uint64_t z = varint(v, cursor);
        return (z >> 1) ^ (~(z & 1) + 1);
    }

    const L2Stream &in;
    std::size_t eventCursor = 0;
    std::size_t instrCursor = 0;
    std::size_t addrCursor = 0;
    std::size_t pcCursor = 0;
    std::size_t victimByteCursor = 0;
    std::uint64_t victimCursor = 0;
    Addr prevAddr = 0;
    Addr prevPc = 0;
    LineAddr prevVictimLine = 0;
    bool failed = false;
};

/** Decode every event of @p stream (tests, tools, format shims). */
inline std::vector<StreamEvent>
decodeEvents(const L2Stream &stream)
{
    StreamDecoder dec(stream);
    std::vector<StreamEvent> out;
    out.reserve(stream.heads.size());
    while (dec.remaining() > 0)
        out.push_back(dec.next());
    return out;
}

/** Decode every victim record of @p stream. */
inline std::vector<StreamVictim>
decodeVictims(const L2Stream &stream)
{
    StreamDecoder dec(stream);
    std::vector<StreamVictim> out;
    out.reserve(static_cast<std::size_t>(stream.victimCount));
    for (std::uint64_t i = 0; i < stream.victimCount; ++i)
        out.push_back(dec.nextVictim());
    return out;
}

/**
 * Rebuild @p stream's packed arrays from decoded records (leaves
 * the metadata fields untouched). Test/tool support for mutating a
 * stream at the logical-record level. Inline (with the codecs
 * above) so the trace library's format shims can use it without a
 * link-time dependency on the simulator library.
 */
inline void
encodeStream(L2Stream &stream,
             const std::vector<StreamEvent> &events,
             const std::vector<StreamVictim> &victims)
{
    stream.heads.clear();
    stream.instrBytes.clear();
    stream.addrBytes.clear();
    stream.pcBytes.clear();
    stream.victimBytes.clear();
    stream.victimCount = 0;
    StreamEncoder enc(stream);
    for (const StreamEvent &e : events)
        enc.event(e.op, e.addr, e.pc, e.instrDelta, e.flags);
    for (const StreamVictim &v : victims)
        enc.victim(v.line, v.used, v.dirty);
}

/**
 * Audit a recorded stream: the packed byte streams decode cleanly
 * and are consumed exactly, the warmup markers bracket the event and
 * victim records consistently, victim records pair one-to-one (and
 * in order) with flagged LineMiss events, every victim's dirty words
 * are used words, and the words first-touched during each L1D
 * residency are a subset of the footprint its eviction reports.
 * @return "" when well-formed, else the first violation
 */
std::string auditStream(const L2Stream &stream);

/**
 * True unless LDIS_REPLAY=0: the RunMatrix replay submissions fall
 * back to direct per-cell simulation when disabled.
 */
bool replayEnabled();

/**
 * True unless LDIS_GANG=0: replay sweeps walk each benchmark's
 * stream once for all configs (replayMany); when disabled, every
 * config replays the stream independently.
 */
bool gangEnabled();

/**
 * Thread budget of one gang walk: LDIS_LANES if set and valid
 * (1..4096), unless overridden by setGangLanes() (ldissim --lanes;
 * CLI wins over the environment). The walk uses one decode producer
 * plus up to N-1 lane workers, subject to the lease hub's budget.
 * @return 0 for "auto" (use whatever pool workers are idle),
 *         1 for the serial walk, N for at most N threads per walk
 */
unsigned gangLanes();

/** Override LDIS_LANES (0 restores the environment/auto value). */
void setGangLanes(unsigned lanes);

/** Hash of the front-end geometry that shaped a stream. */
std::uint64_t frontEndParamsKey(const HierarchyParams &params);

/**
 * Front-end pass: simulate @p workload's L1I/L1D against a
 * full-line-fill backend for @p warmup then @p instructions
 * instructions, recording the L2-visible stream. @p seed is stored
 * for cache keying only — the caller constructs the workload.
 */
L2Stream recordStream(Workload &workload, std::uint64_t seed,
                      InstCount warmup, InstCount instructions,
                      const HierarchyParams &params = {});

/**
 * Replay pass: drive @p l2 from @p stream. Statistics (including
 * the re-derived L1D sector misses and hits) are bit-identical to
 * the direct runTrace/runTraceWarm of the same pair.
 */
RunResult replayStream(const L2Stream &stream, SecondLevelCache &l2);

/** Observability record of one replayMany() walk. */
struct GangReplayInfo
{
    std::size_t configs = 0;       //!< L2s fed by the walk
    std::uint64_t events = 0;      //!< events decoded (once)
    std::uint64_t streamBytes = 0; //!< packed payload walked
    double wallSeconds = 0.0;      //!< whole-walk wall time
    /** Threads that walked lanes (1 = the serial in-line walk). */
    unsigned laneWorkers = 1;
    double decodeWallSeconds = 0.0; //!< producer time in chunk decode
    /** Summed per-lane model time (overlaps decode when pipelined). */
    double replayWallSeconds = 0.0;
    /** Per-lane model wall seconds, in @p l2s order. */
    std::vector<double> laneWallSeconds;
};

class WorkerLeaseHub;

/**
 * Parallelism plumbing for one gang walk. Without a hub the walk is
 * the serial decode-then-every-lane loop; with one it may lease
 * helper threads from the hub's budget to pipeline chunk decode
 * against lane replay and to shard lanes across workers. Results are
 * bit-identical either way (lane state is thread-private; every lane
 * sees the same call sequence in the same order).
 */
struct GangParallel
{
    WorkerLeaseHub *hub = nullptr; //!< lease source; null = serial
    /** Thread budget of this walk; 0 = gangLanes(). */
    unsigned lanes = 0;
    /** Events per decoded chunk; 0 = the default 2M (tests only). */
    std::size_t chunkEvents = 0;
};

/**
 * Gang replay: decode @p stream exactly once and drive every cache
 * in @p l2s from the shared walk, keeping per-config valid-word
 * state. Each result is bit-identical to replayStream(stream, *l2)
 * of the same cache — every config sees exactly the access sequence
 * its solo replay would have issued, in stream order. The results'
 * wallSeconds all report the shared walk. @p info, when non-null,
 * receives the walk's observability record (telemetry gang records
 * carry it). @p par, when carrying a lease hub, lets the walk run
 * lane-parallel with decode pipelined ahead of replay.
 */
std::vector<RunResult>
replayMany(const L2Stream &stream,
           const std::vector<SecondLevelCache *> &l2s,
           GangReplayInfo *info = nullptr,
           const GangParallel &par = {});

/** Provenance report of one loadOrRecordStream() call. */
struct StreamLoadInfo
{
    bool cacheConfigured = false; //!< LDIS_TRACE_CACHE was set
    bool fromDiskCache = false;   //!< stream came from the cache
};

/**
 * Obtain the stream for (benchmark, seed, warmup, instructions):
 * loaded from the LDIS_TRACE_CACHE directory when set and a valid
 * cached file exists, freshly recorded (and written back to the
 * cache, best-effort) otherwise. @p info, when non-null, reports
 * where the stream came from (telemetry records carry it), and the
 * stat registry counts disk hits/misses and recording time either
 * way.
 */
std::shared_ptr<const L2Stream>
loadOrRecordStream(const std::string &benchmark, std::uint64_t seed,
                   InstCount warmup, InstCount instructions,
                   const HierarchyParams &params = {},
                   StreamLoadInfo *info = nullptr);

/**
 * Cache-file path for a stream key ("" when LDIS_TRACE_CACHE unset).
 * The key hashes the run parameters AND kStreamFormatVersion, and
 * the name carries a ".v<N>" marker — a cache directory shared with
 * an older binary never serves (or clobbers) another format
 * version's files.
 */
std::string streamCachePath(const std::string &benchmark,
                            std::uint64_t seed, InstCount warmup,
                            InstCount instructions,
                            const HierarchyParams &params = {});

/**
 * Replay-mode equivalent of runTrace(benchmark, kind, ...): record
 * (or load) the stream, then replay it into a fresh @p kind L2.
 */
RunResult runReplay(const std::string &benchmark, ConfigKind kind,
                    InstCount instructions, std::uint64_t seed = 1);

/**
 * The benchmark source handed to custom replay jobs (see
 * RunMatrix::addReplay): run(l2) replays the shared recorded stream
 * in replay mode, or rebuilds the workload and simulates directly
 * when replay is disabled. Either way the statistics are identical.
 */
class ReplaySource
{
  public:
    /** Replay-mode source over a shared recorded stream. */
    explicit ReplaySource(std::shared_ptr<const L2Stream> s)
        : stream(std::move(s)), bench(stream->benchmark),
          streamSeed(stream->seed),
          instCount(stream->instructions)
    {}

    /** Direct-mode source (replay disabled). */
    ReplaySource(std::string benchmark, std::uint64_t seed,
                 InstCount instructions)
        : bench(std::move(benchmark)), streamSeed(seed),
          instCount(instructions)
    {}

    /** Simulate the benchmark against @p l2 (replay or direct). */
    RunResult run(SecondLevelCache &l2) const;

    const std::string &benchmark() const { return bench; }
    InstCount instructions() const { return instCount; }
    bool replaying() const { return stream != nullptr; }

    /** The workload's value profile (compression configs need it). */
    ValueProfile valueProfile() const;

    /**
     * The shared stream driving this source (null in direct mode).
     * Exposed so lifetime tests can observe when the last reference
     * is dropped.
     */
    const std::shared_ptr<const L2Stream> &sharedStream() const
    {
        return stream;
    }

  private:
    std::shared_ptr<const L2Stream> stream; //!< null in direct mode
    std::string bench;
    std::uint64_t streamSeed = 1;
    InstCount instCount = 0;
};

} // namespace ldis

#endif // DISTILLSIM_SIM_REPLAY_HH
