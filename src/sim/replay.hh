/**
 * @file
 * Generate-once L2 replay (the front-end deduplication engine).
 *
 * Every paper figure sweeps one benchmark across many L2
 * configurations, but workload generation and L1I/L1D filtering are
 * (almost) independent of the L2: the L1 tag arrays, LRU stacks,
 * footprints and dirty masks evolve purely from the line-address
 * sequence. The one feedback path from the L2 into the front end is
 * the set of valid words a partial WOC fill delivers to the sectored
 * L1D — it decides whether a later touch is an L1 hit or a sector
 * miss (and hence another L2 access).
 *
 * recordStream() therefore runs the front end ONCE per benchmark
 * against a full-line-fill recording backend and captures
 *  - every L1I miss and L1D line miss (config-independent),
 *  - each line miss's eviction victim with its final footprint and
 *    dirty words (config-independent), and
 *  - every first touch of a word within an L1D residency — the only
 *    accesses whose hit/sector-miss outcome depends on the L2.
 *
 * replayStream() then drives ANY SecondLevelCache from the recorded
 * stream, tracking per-line valid words to re-derive the sector
 * misses a partial-filling L2 would have produced. The resulting
 * RunResult is bit-identical to a direct Hierarchy run of the same
 * benchmark/config pair, at a fraction of the cost: the workload
 * generator, code walker and L1 simulations run once per benchmark
 * instead of once per (benchmark, config) cell.
 *
 * With LDIS_TRACE_CACHE=<dir> set, recorded streams are additionally
 * persisted to a versioned, checksummed binary cache (see
 * src/trace/trace_file), so repeated harness invocations skip
 * generation entirely. LDIS_REPLAY=0 forces the harnesses back into
 * direct mode (each cell re-simulates its own front end), which is
 * what the execution-driven IPC experiments always use.
 */

#ifndef DISTILLSIM_SIM_REPLAY_HH
#define DISTILLSIM_SIM_REPLAY_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cache/hierarchy.hh"
#include "sim/configs.hh"
#include "sim/experiment.hh"

namespace ldis
{

/** Kind of one recorded front-end event. */
enum class StreamOp : std::uint8_t
{
    IFetch = 0,     //!< L1I miss; the L2 sees (pc, instr = true)
    LineMiss = 1,   //!< L1D line miss (+ optional eviction victim)
    FirstTouch = 2, //!< first word touch within an L1D residency
};

/** StreamEvent::flags bits. */
inline constexpr std::uint8_t kStreamWrite = 1u << 0;
inline constexpr std::uint8_t kStreamHasVictim = 1u << 1;

/**
 * One compact L2-visible request record. For IFetch, addr == pc is
 * the fetch address. instrDelta is the number of instructions
 * retired since the previous event (saturated at 2^32-1; window
 * totals are carried exactly in StreamWindow).
 */
struct StreamEvent
{
    Addr addr = 0;
    Addr pc = 0;
    std::uint32_t instrDelta = 0;
    StreamOp op = StreamOp::IFetch;
    std::uint8_t flags = 0;
};

/** Eviction payload of a LineMiss event with kStreamHasVictim. */
struct StreamVictim
{
    LineAddr line = 0;
    std::uint8_t used = 0;  //!< Footprint::raw() at eviction
    std::uint8_t dirty = 0; //!< dirty-word mask at eviction
};

/** Config-independent totals of the measured window. */
struct StreamWindow
{
    InstCount instructions = 0;
    std::uint64_t dataAccesses = 0;
    std::uint64_t l1dAccesses = 0;
    std::uint64_t l1dLineMisses = 0;
    std::uint64_t l1iAccesses = 0;
    std::uint64_t l1iMisses = 0;
};

/** A recorded L2-visible reference stream for one benchmark run. */
struct L2Stream
{
    std::string benchmark;
    std::uint64_t seed = 1;
    InstCount warmupInstructions = 0; //!< requested warmup length
    InstCount instructions = 0;       //!< requested measured length

    /** Front-end geometry key (frontEndParamsKey of the recorder). */
    std::uint64_t frontEndKey = 0;

    /** Side-band models, so configs can be built without the
     *  workload (the compression L2s need the value profile). */
    CodeModel code;
    ValueProfile values;

    /** Totals of the measured (post-warmup) window. */
    StreamWindow meas;

    /** LineMiss events across both windows (replay map sizing). */
    std::uint64_t totalLineMisses = 0;

    /** Warmup/measure boundary: replay resets stats here. */
    std::size_t markerEvents = 0;
    std::size_t markerVictims = 0;

    std::vector<StreamEvent> events;
    std::vector<StreamVictim> victims;
};

/**
 * Audit a recorded stream: the warmup markers bracket the event and
 * victim arrays consistently, victim records pair one-to-one (and in
 * order) with flagged LineMiss events, every victim's dirty words
 * are used words, and the words first-touched during each L1D
 * residency are a subset of the footprint its eviction reports.
 * @return "" when well-formed, else the first violation
 */
std::string auditStream(const L2Stream &stream);

/**
 * True unless LDIS_REPLAY=0: the RunMatrix replay submissions fall
 * back to direct per-cell simulation when disabled.
 */
bool replayEnabled();

/** Hash of the front-end geometry that shaped a stream. */
std::uint64_t frontEndParamsKey(const HierarchyParams &params);

/**
 * Front-end pass: simulate @p workload's L1I/L1D against a
 * full-line-fill backend for @p warmup then @p instructions
 * instructions, recording the L2-visible stream. @p seed is stored
 * for cache keying only — the caller constructs the workload.
 */
L2Stream recordStream(Workload &workload, std::uint64_t seed,
                      InstCount warmup, InstCount instructions,
                      const HierarchyParams &params = {});

/**
 * Replay pass: drive @p l2 from @p stream. Statistics (including
 * the re-derived L1D sector misses and hits) are bit-identical to
 * the direct runTrace/runTraceWarm of the same pair.
 */
RunResult replayStream(const L2Stream &stream, SecondLevelCache &l2);

/** Provenance report of one loadOrRecordStream() call. */
struct StreamLoadInfo
{
    bool cacheConfigured = false; //!< LDIS_TRACE_CACHE was set
    bool fromDiskCache = false;   //!< stream came from the cache
};

/**
 * Obtain the stream for (benchmark, seed, warmup, instructions):
 * loaded from the LDIS_TRACE_CACHE directory when set and a valid
 * cached file exists, freshly recorded (and written back to the
 * cache, best-effort) otherwise. @p info, when non-null, reports
 * where the stream came from (telemetry records carry it), and the
 * stat registry counts disk hits/misses and recording time either
 * way.
 */
std::shared_ptr<const L2Stream>
loadOrRecordStream(const std::string &benchmark, std::uint64_t seed,
                   InstCount warmup, InstCount instructions,
                   const HierarchyParams &params = {},
                   StreamLoadInfo *info = nullptr);

/** Cache-file path for a stream key ("" when LDIS_TRACE_CACHE unset). */
std::string streamCachePath(const std::string &benchmark,
                            std::uint64_t seed, InstCount warmup,
                            InstCount instructions,
                            const HierarchyParams &params = {});

/**
 * Replay-mode equivalent of runTrace(benchmark, kind, ...): record
 * (or load) the stream, then replay it into a fresh @p kind L2.
 */
RunResult runReplay(const std::string &benchmark, ConfigKind kind,
                    InstCount instructions, std::uint64_t seed = 1);

/**
 * The benchmark source handed to custom replay jobs (see
 * RunMatrix::addReplay): run(l2) replays the shared recorded stream
 * in replay mode, or rebuilds the workload and simulates directly
 * when replay is disabled. Either way the statistics are identical.
 */
class ReplaySource
{
  public:
    /** Replay-mode source over a shared recorded stream. */
    explicit ReplaySource(std::shared_ptr<const L2Stream> s)
        : stream(std::move(s)), bench(stream->benchmark),
          streamSeed(stream->seed),
          instCount(stream->instructions)
    {}

    /** Direct-mode source (replay disabled). */
    ReplaySource(std::string benchmark, std::uint64_t seed,
                 InstCount instructions)
        : bench(std::move(benchmark)), streamSeed(seed),
          instCount(instructions)
    {}

    /** Simulate the benchmark against @p l2 (replay or direct). */
    RunResult run(SecondLevelCache &l2) const;

    const std::string &benchmark() const { return bench; }
    InstCount instructions() const { return instCount; }
    bool replaying() const { return stream != nullptr; }

    /** The workload's value profile (compression configs need it). */
    ValueProfile valueProfile() const;

    /**
     * The shared stream driving this source (null in direct mode).
     * Exposed so lifetime tests can observe when the last reference
     * is dropped.
     */
    const std::shared_ptr<const L2Stream> &sharedStream() const
    {
        return stream;
    }

  private:
    std::shared_ptr<const L2Stream> stream; //!< null in direct mode
    std::string bench;
    std::uint64_t streamSeed = 1;
    InstCount instCount = 0;
};

} // namespace ldis

#endif // DISTILLSIM_SIM_REPLAY_HH
