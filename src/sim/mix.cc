#include "mix.hh"

#include <algorithm>
#include <chrono>

#include "common/logging.hh"

namespace ldis
{

namespace
{

/**
 * CPI-proxy miss penalty, pinned to the IPC model's static memory
 * latency so the two models tell one story.
 */
constexpr double kMixMissPenaltyCycles = 400.0;

/** One member's decode cursor with a one-event lookahead. */
struct MemberCursor
{
    explicit MemberCursor(const L2Stream &s) : dec(s) {}

    StreamDecoder dec;
    StreamEvent ev;
    std::uint64_t pos = 0;   //!< cumulative instrDelta through ev
    std::uint64_t round = 0; //!< ceil(pos / quantum)
    bool hasEvent = false;

    void
    advance(InstCount quantum)
    {
        if (dec.remaining() == 0) {
            hasEvent = false;
            return;
        }
        ev = dec.next();
        pos += ev.instrDelta;
        round = (pos + quantum - 1) / quantum;
        hasEvent = true;
    }
};

} // namespace

std::shared_ptr<const L2Stream>
composeMixStream(
    const std::string &name,
    const std::vector<std::shared_ptr<const L2Stream>> &members,
    InstCount quantum)
{
    ldis_assert(members.size() >= 2 &&
                members.size() <= kMaxMixStreams);
    ldis_assert(quantum >= 1);

    auto out = std::make_shared<L2Stream>();
    out->benchmark = name;
    out->seed = members.front()->seed;
    out->warmupInstructions = 0;
    out->frontEndKey = members.front()->frontEndKey;
    out->code = members.front()->code;

    std::vector<ValueProfile> profiles;
    std::vector<InstCount> weights;
    for (const auto &m : members) {
        // The merge only reconstructs warmup-free runs (the
        // round-of-position rule assumes position counts from the
        // stream's start), over streams of one front-end geometry.
        ldis_assert(m != nullptr);
        ldis_assert(m->markerEvents == 0 && m->markerVictims == 0);
        ldis_assert(m->warmupInstructions == 0);
        ldis_assert(m->frontEndKey == out->frontEndKey);
        out->instructions += m->instructions;
        out->totalLineMisses += m->totalLineMisses;
        out->meas.instructions += m->meas.instructions;
        out->meas.dataAccesses += m->meas.dataAccesses;
        out->meas.l1dAccesses += m->meas.l1dAccesses;
        out->meas.l1dLineMisses += m->meas.l1dLineMisses;
        out->meas.l1iAccesses += m->meas.l1iAccesses;
        out->meas.l1iMisses += m->meas.l1iMisses;
        // Blend weights are the REQUESTED lengths, matching
        // MixWorkload::valueProfile's target weighting, so both
        // composition paths parameterize compression configs with
        // the bit-identical profile.
        profiles.push_back(m->values);
        weights.push_back(m->instructions);
    }
    out->values = blendValueProfiles(profiles, weights);

    std::vector<MemberCursor> cursors;
    cursors.reserve(members.size());
    for (const auto &m : members) {
        cursors.emplace_back(*m);
        cursors.back().advance(quantum);
    }

    StreamEncoder enc(*out);
    for (;;) {
        // Smallest (round, member index) next: rounds advance
        // globally, members rotate in index order within a round,
        // and one member's events keep their stream order — exactly
        // the direct interleave's consumption order.
        std::size_t best = members.size();
        for (std::size_t s = 0; s < cursors.size(); ++s) {
            if (!cursors[s].hasEvent)
                continue;
            if (best == members.size() ||
                cursors[s].round < cursors[best].round)
                best = s;
        }
        if (best == members.size())
            break;

        MemberCursor &c = cursors[best];
        const StreamEvent &e = c.ev;
        // Solo streams must live entirely below the first tag.
        ldis_assert(e.addr >> kMixStreamShift == 0);
        ldis_assert(e.pc >> kMixStreamShift == 0);
        Addr base = mixStreamBase(best);
        enc.event(e.op, e.addr + base, e.pc + base, e.instrDelta,
                  e.flags);
        if (e.op == StreamOp::LineMiss &&
            (e.flags & kStreamHasVictim) != 0) {
            StreamVictim v = c.dec.nextVictim();
            enc.victim(v.line + base / kLineBytes, v.used, v.dirty);
        }
        c.advance(quantum);
    }

    for (const MemberCursor &c : cursors)
        ldis_assert(c.dec.fullyConsumed());
    return out;
}

void
attachStreamStats(RunResult &r, const StreamAttributingL2 &l2,
                  const std::vector<MixMemberInfo> &members)
{
    r.streams.clear();
    r.streams.reserve(members.size());
    for (std::size_t s = 0; s < members.size(); ++s) {
        StreamStat st;
        st.benchmark = members[s].benchmark;
        st.instructions = members[s].instructions;
        st.l2 = l2.streamStats(s);
        st.mpki = st.instructions == 0
            ? 0.0
            : static_cast<double>(st.l2.misses())
                / (static_cast<double>(st.instructions) / 1000.0);
        r.streams.push_back(std::move(st));
    }
}

double
cpiProxy(double mpki)
{
    return 1.0 + kMixMissPenaltyCycles * mpki / 1000.0;
}

void
finalizeMixMetrics(RunResult &mix,
                   const std::vector<double> &solo_mpki)
{
    ldis_assert(solo_mpki.size() == mix.streams.size());
    double sum = 0.0;
    double lo = 0.0;
    double hi = 0.0;
    for (std::size_t s = 0; s < mix.streams.size(); ++s) {
        StreamStat &st = mix.streams[s];
        st.soloMpki = solo_mpki[s];
        double speedup =
            cpiProxy(st.mpki) > 0.0
                ? cpiProxy(st.soloMpki) / cpiProxy(st.mpki)
                : 0.0;
        sum += speedup;
        if (s == 0) {
            lo = hi = speedup;
        } else {
            lo = std::min(lo, speedup);
            hi = std::max(hi, speedup);
        }
    }
    mix.weightedSpeedup = sum;
    mix.fairness = hi > 0.0 ? lo / hi : 0.0;
}

RunResult
runMixDirect(const MixSpec &spec, ConfigKind kind,
             InstCount member_instructions, std::uint64_t seed,
             InstCount quantum)
{
    std::vector<MixWorkload::MemberSpec> specs;
    specs.reserve(spec.members.size());
    for (const std::string &bench : spec.members)
        specs.push_back({bench, seed, member_instructions});
    MixWorkload mix(specs, quantum);

    L2Instance inst = makeConfig(kind, mix.valueProfile());
    StreamAttributingL2 shared(*inst.cache);
    SharedHierarchy hier(mix, shared);

    auto start = std::chrono::steady_clock::now();
    hier.run();
    double elapsed = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start)
                         .count();

    RunResult r;
    r.streamSource = "direct";
    r.benchmark = spec.name;
    r.config = configName(kind);
    r.instructions = hier.stats().instructions;
    r.l2 = shared.stats();
    r.mpki = r.instructions == 0
        ? 0.0
        : static_cast<double>(r.l2.misses())
            / (static_cast<double>(r.instructions) / 1000.0);
    r.l1d = hier.aggregateL1d();
    r.l1i = hier.aggregateL1i();
    r.wallSeconds = elapsed;
    r.instPerSec = elapsed > 0.0
        ? static_cast<double>(r.instructions) / elapsed
        : 0.0;

    std::vector<MixMemberInfo> members;
    members.reserve(mix.streams());
    for (std::size_t s = 0; s < mix.streams(); ++s)
        members.push_back(
            {mix.memberName(s), mix.memberInstructions(s)});
    attachStreamStats(r, shared, members);
    return r;
}

} // namespace ldis
