/**
 * @file
 * Replay-side mix composition and mix metrics.
 *
 * composeMixStream() merges the members' recorded solo streams into
 * the one event stream the direct SharedHierarchy run would have
 * produced. This works because of the two src/trace/mix.hh
 * invariants: a member's private-L1 evolution under the uniform
 * mixStreamBase() translation is isomorphic to its solo run (the tag
 * rides above every set-index bit), so the member's L2-visible
 * events ARE its solo events, re-tagged; and the round an event
 * falls into is a pure function of its stream position —
 * ceil(position / quantum) — so the interleave can be reconstructed
 * by a k-way merge on (round, member index, within-member order)
 * without re-simulating any front end. Replaying the merged stream
 * is therefore bit-identical to the direct mix run, config by
 * config.
 *
 * The rest of this header is per-stream stat plumbing: attaching a
 * StreamAttributingL2's per-member counters to a RunResult, and the
 * CPI-proxy mix metrics (weighted speedup, fairness) of the
 * multi-programming literature.
 */

#ifndef DISTILLSIM_SIM_MIX_HH
#define DISTILLSIM_SIM_MIX_HH

#include <memory>
#include <string>
#include <vector>

#include "cache/shared_hierarchy.hh"
#include "sim/configs.hh"
#include "sim/replay.hh"

namespace ldis
{

/**
 * Merge the members' recorded solo streams (warmup-free, identical
 * front-end geometry) into the mix's composed stream: events
 * re-tagged into their member's address space and interleaved in
 * round-robin-by-quantum order, victims riding along in pairing
 * order, window totals summed, and the value profile blended with
 * the same weights the direct path uses (the members' requested
 * instruction counts) so compression configs come out identical.
 * The same member stream may appear more than once (two-copies
 * mixes).
 */
std::shared_ptr<const L2Stream> composeMixStream(
    const std::string &name,
    const std::vector<std::shared_ptr<const L2Stream>> &members,
    InstCount quantum = kDefaultMixQuantum);

/** Name + instruction count of one mix member (stat attribution). */
struct MixMemberInfo
{
    std::string benchmark;
    InstCount instructions = 0;
};

/**
 * Fill @p r.streams from the wrapper's per-member counters: one
 * StreamStat per member with its attributed L2 slice and per-stream
 * MPKI (soloMpki stays 0 until finalizeMixMetrics).
 */
void attachStreamStats(RunResult &r, const StreamAttributingL2 &l2,
                       const std::vector<MixMemberInfo> &members);

/**
 * CPI proxy of an L2 MPKI figure: 1 + penalty * MPKI / 1000, with
 * the penalty pinned to the IPC model's static memory latency. Only
 * relative values matter (the speedup ratios below).
 */
double cpiProxy(double mpki);

/**
 * Fill the mix-level metrics of @p mix from the members' solo MPKI
 * figures (same order as mix.streams): per-stream soloMpki, the
 * weighted speedup Σ cpiProxy(solo)/cpiProxy(shared), and the
 * fairness ratio min/max of those per-stream speedups.
 */
void finalizeMixMetrics(RunResult &mix,
                        const std::vector<double> &solo_mpki);

/**
 * Direct-mode mix run (the LDIS_REPLAY=0 path): build the mix's
 * workloads, run the SharedHierarchy against a fresh @p kind L2
 * behind a StreamAttributingL2, and pack the aggregate + per-stream
 * result. Every member runs @p member_instructions instructions.
 * Statistics are bit-identical to replaying the composed stream.
 */
RunResult runMixDirect(const MixSpec &spec, ConfigKind kind,
                       InstCount member_instructions,
                       std::uint64_t seed = 1,
                       InstCount quantum = kDefaultMixQuantum);

} // namespace ldis

#endif // DISTILLSIM_SIM_MIX_HH
