#include "telemetry.hh"

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <thread>

#include "common/json.hh"
#include "common/logging.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "common/workshare.hh"
#include "sim/replay.hh"

namespace ldis
{
namespace telemetry
{

namespace
{

/** The process-wide sink: path + lazily opened append handle. */
struct Sink
{
    Mutex mutex;
    std::string path LDIS_GUARDED_BY(mutex);
    std::string experimentName LDIS_GUARDED_BY(mutex);
    std::FILE *file LDIS_GUARDED_BY(mutex) = nullptr;
    bool latched LDIS_GUARDED_BY(mutex) = false;
    bool warnedOpenFailure LDIS_GUARDED_BY(mutex) = false;

    ~Sink()
    {
        ScopedLock lock(mutex);
        if (file)
            std::fclose(file);
    }

    /** Latch LDIS_METRICS once (callers hold the mutex). */
    void
    latch() LDIS_REQUIRES(mutex)
    {
        if (latched)
            return;
        latched = true;
        if (const char *env = std::getenv("LDIS_METRICS"))
            path = env;
    }

    /** Append one serialized record (callers hold the mutex). */
    void
    append(const std::string &line) LDIS_REQUIRES(mutex)
    {
        if (!file) {
            file = std::fopen(path.c_str(), "a");
            if (!file) {
                if (!warnedOpenFailure) {
                    warn("cannot open metrics sink '%s'; telemetry "
                         "disabled",
                         path.c_str());
                    warnedOpenFailure = true;
                }
                path.clear();
                return;
            }
        }
        std::fputs(line.c_str(), file);
        std::fputc('\n', file);
        std::fflush(file);
    }
};

Sink &
sink()
{
    static Sink instance;
    return instance;
}

/** Cached host name for the per-record metadata block. */
const std::string &
hostName()
{
    static const std::string name = [] {
        char buf[256] = {0};
        if (::gethostname(buf, sizeof(buf) - 1) != 0)
            return std::string("unknown");
        return std::string(buf);
    }();
    return name;
}

/** Seconds since the Unix epoch (record timestamping). */
std::uint64_t
unixTime()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::seconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count());
}

/** Open a record: schema/kind/experiment/label/time/host preamble. */
void
beginRecord(JsonWriter &j, const char *kind, const std::string &label)
{
    j.beginObject();
    j.field("schema", kSchemaVersion);
    j.field("kind", kind);
    j.field("experiment", experiment());
    if (!label.empty())
        j.field("label", label);
    j.field("unix_time", unixTime());
    j.beginObject("host");
    j.field("name", hostName());
    j.field("hw_threads",
            static_cast<std::uint64_t>(
                std::thread::hardware_concurrency()));
    j.endObject();
}

/** Serialize under the sink lock and append. */
void
emitLine(const JsonWriter &j)
{
    Sink &s = sink();
    ScopedLock lock(s.mutex);
    s.latch();
    if (s.path.empty())
        return;
    s.append(j.str());
}

} // namespace

bool
enabled()
{
    Sink &s = sink();
    ScopedLock lock(s.mutex);
    s.latch();
    return !s.path.empty();
}

std::string
sinkPath()
{
    Sink &s = sink();
    ScopedLock lock(s.mutex);
    s.latch();
    return s.path;
}

void
setSink(const std::string &path)
{
    Sink &s = sink();
    ScopedLock lock(s.mutex);
    s.latch();
    if (s.file) {
        std::fclose(s.file);
        s.file = nullptr;
    }
    s.path = path;
    s.warnedOpenFailure = false;
    // Metrics imply stats, mirroring the LDIS_METRICS env latch.
    if (!path.empty())
        stats::setEnabled(true);
}

void
setExperiment(const std::string &name)
{
    Sink &s = sink();
    ScopedLock lock(s.mutex);
    s.experimentName = name;
}

std::string
experiment()
{
    Sink &s = sink();
    ScopedLock lock(s.mutex);
    return s.experimentName;
}

void
emitJob(const std::string &label, const RunResult &r)
{
    if (!enabled())
        return;
    JsonWriter j;
    beginRecord(j, "run", label);
    j.field("stream_source",
            r.streamSource.empty() ? "none" : r.streamSource);
    writeJson(j, r, "result");
    j.endObject();
    emitLine(j);
}

void
emitJob(const std::string &label, const IpcResult &r)
{
    if (!enabled())
        return;
    JsonWriter j;
    beginRecord(j, "ipc", label);
    j.beginObject("result");
    j.field("benchmark", r.benchmark);
    j.field("config", r.config);
    j.field("instructions", r.cpu.instructions);
    j.field("cycles", r.cpu.cycles);
    j.field("ipc", r.ipc);
    j.field("mpki", r.mpki);
    j.field("wall_seconds", r.wallSeconds);
    j.field("inst_per_sec", r.instPerSec);
    j.endObject();
    j.endObject();
    emitLine(j);
}

void
emitSetup(const std::string &label, double wall_seconds,
          double inst_per_sec, InstCount instructions)
{
    if (!enabled())
        return;
    JsonWriter j;
    beginRecord(j, "setup", label);
    j.field("instructions", instructions);
    j.field("wall_seconds", wall_seconds);
    j.field("inst_per_sec", inst_per_sec);
    j.endObject();
    emitLine(j);
}

void
emitGang(const std::string &label, const std::string &benchmark,
         const GangReplayInfo &info)
{
    if (!enabled())
        return;
    JsonWriter j;
    beginRecord(j, "gang", label);
    j.field("benchmark", benchmark);
    j.field("configs", static_cast<std::uint64_t>(info.configs));
    j.field("events", info.events);
    j.field("stream_bytes", info.streamBytes);
    j.field("bytes_per_event",
            info.events > 0
                ? static_cast<double>(info.streamBytes) /
                      static_cast<double>(info.events)
                : 0.0);
    j.field("wall_seconds", info.wallSeconds);
    j.field("decode_events_per_sec",
            info.wallSeconds > 0.0
                ? static_cast<double>(info.events) /
                      info.wallSeconds
                : 0.0);
    j.field("dispatch_events_per_sec",
            info.wallSeconds > 0.0
                ? static_cast<double>(info.events) *
                      static_cast<double>(info.configs) /
                      info.wallSeconds
                : 0.0);
    // Schema v2: the walk's lane-parallelism block. decode and
    // replay wall overlap when the walk pipelined, so they do not
    // sum to wall_seconds.
    j.field("lanes",
            static_cast<std::uint64_t>(info.laneWorkers));
    j.field("decode_wall_ms", info.decodeWallSeconds * 1e3);
    j.field("replay_wall_ms", info.replayWallSeconds * 1e3);
    j.beginArray("lane_wall_ms");
    for (double s : info.laneWallSeconds)
        j.value(s * 1e3);
    j.endArray();
    j.endObject();
    emitLine(j);
}

void
emitMatrixSummary(std::size_t jobs, unsigned workers,
                  double wall_seconds, double cumulative_seconds)
{
    if (!enabled())
        return;
    JsonWriter j;
    beginRecord(j, "matrix", "");
    j.field("jobs", static_cast<std::uint64_t>(jobs));
    j.field("workers", static_cast<std::uint64_t>(workers));
    j.field("wall_seconds", wall_seconds);
    j.field("cumulative_seconds", cumulative_seconds);
    stats::registry().writeJson(j, "stats");
    j.endObject();
    emitLine(j);
}

bool
progressEnabled()
{
    static const bool on = [] {
        if (const char *env = std::getenv("LDIS_PROGRESS")) {
            return !(env[0] == '\0' ||
                     (env[0] == '0' && env[1] == '\0'));
        }
        return ::isatty(STDERR_FILENO) == 1;
    }();
    return on;
}

double
etaSeconds(double mean_job_seconds, std::size_t remaining,
           std::size_t in_flight, unsigned workers)
{
    if (mean_job_seconds <= 0.0 || remaining + in_flight == 0)
        return 0.0;
    // Remaining serial-equivalent work: every unstarted job at full
    // cost, every in-flight job at half (we do not know how far
    // along it is). Spread over the workers that can still be kept
    // busy — a tail of 2 jobs on 8 workers drains at 2-wide, not
    // 8-wide.
    double work = mean_job_seconds *
                  (static_cast<double>(remaining) +
                   static_cast<double>(in_flight) * 0.5);
    std::size_t usable = remaining + in_flight;
    if (workers < usable)
        usable = workers ? workers : 1;
    return work / static_cast<double>(usable);
}

Progress::Progress(std::size_t total_jobs, unsigned workers,
                   const WorkerLeaseHub *lease_hub)
    : active(progressEnabled() && total_jobs > 0), total(total_jobs),
      workerCount(workers ? workers : 1), hub(lease_hub),
      begin(std::chrono::steady_clock::now())
{}

void
Progress::started(std::size_t index, const std::string &label)
{
    if (!active)
        return;
    ScopedLock lock(mutex);
    inFlight.emplace(index,
                     std::make_pair(
                         label, std::chrono::steady_clock::now()));
}

void
Progress::finished(std::size_t index, const std::string &label,
                   double wall_seconds)
{
    if (!active)
        return;
    auto now = std::chrono::steady_clock::now();
    ScopedLock lock(mutex);
    inFlight.erase(index);
    ++done;
    doneSeconds += wall_seconds;

    // Mean finished-job cost over the remaining work, divided by
    // the pool worker count (NOT the wall-elapsed rate: that would
    // credit a leasing gang walk's extra lane helpers to every
    // remaining job and swing the estimate as leases come and go).
    double mean = doneSeconds / static_cast<double>(done);
    double eta = etaSeconds(mean, total - done - inFlight.size(),
                            inFlight.size(), workerCount);

    std::string slowest;
    double slowest_age = 0.0;
    for (const auto &[idx, entry] : inFlight) {
        double age =
            std::chrono::duration<double>(now - entry.second)
                .count();
        if (age >= slowest_age) {
            slowest_age = age;
            slowest = entry.first;
        }
    }

    std::string line = "[" + std::to_string(done) + "/" +
                       std::to_string(total) + "] " + label + " (" +
                       Table::num(wall_seconds, 2) + " s) eta " +
                       Table::num(eta, 1) + " s";
    if (!slowest.empty()) {
        line += " | in flight: " + slowest + " (" +
                Table::num(slowest_age, 1) + " s)";
    }
    // A slow-looking in-flight gang walk may be slow precisely
    // because it leased the idle workers; make that visible rather
    // than leaving the line to suggest a stuck pool.
    unsigned leased = hub ? hub->activeHelpers() : 0;
    if (leased > 0)
        line += " | leased lane workers: " + std::to_string(leased);
    std::fprintf(stderr, "%s\n", line.c_str());
}

} // namespace telemetry
} // namespace ldis
