#include "fac_cache.hh"

#include <algorithm>
#include <cstdio>

#include "common/intmath.hh"
#include "common/logging.hh"
#include "compression/encoder.hh"

namespace ldis
{

FacCache::FacCache(const DistillParams &params,
                   const ValueModel &vals, EncoderKind encoder)
    : prm(params), values(vals), encoderKind(encoder),
      rng(params.seed), mtFilter(params.medianEpoch)
{
    if (prm.totalWays == 0 || prm.totalWays > kMaxWays)
        ldis_fatal("FAC cache: totalWays (%u) must be in [1, %u]",
                   prm.totalWays, kMaxWays);
    if (prm.wocWays == 0 || prm.wocWays >= prm.totalWays)
        ldis_fatal("FAC cache: wocWays (%u) must be in "
                   "[1, totalWays)", prm.wocWays);
    std::uint64_t lines = prm.bytes / kLineBytes;
    if (lines % prm.totalWays != 0)
        ldis_fatal("FAC cache: capacity does not divide into %u ways",
                   prm.totalWays);
    std::uint64_t num_sets = lines / prm.totalWays;
    if (!isPowerOf2(num_sets))
        ldis_fatal("FAC cache: set count must be a power of two");
    setsCount = static_cast<unsigned>(num_sets);

    unsigned woc_entries = prm.wocWays * kWordsPerLine;
    sets.reserve(setsCount);
    for (unsigned i = 0; i < setsCount; ++i)
        sets.emplace_back(woc_entries);
    // Worst case per WOC install is one eviction per entry slot;
    // reserving once keeps the eviction paths allocation-free.
    scratchEvicted.reserve(woc_entries);

    if (prm.useReverter) {
        CacheGeometry atd_geom;
        atd_geom.bytes = prm.bytes;
        atd_geom.ways = prm.totalWays;
        atd_geom.lineBytes = kLineBytes;
        reverterUnit =
            std::make_unique<Reverter>(atd_geom, prm.reverter);
    }
}

std::string
FacCache::describe() const
{
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  "FAC %lluKB %u-way (LOC %u + compressed WOC %u)%s%s",
                  static_cast<unsigned long long>(prm.bytes / 1024),
                  prm.totalWays, locWays(), prm.wocWays,
                  prm.medianThreshold ? " +MT" : "",
                  prm.useReverter ? " +RC" : "");
    return buf;
}

std::uint64_t
FacCache::setIndexOf(LineAddr line) const
{
    return line & (setsCount - 1);
}

unsigned
FacCache::activeWays(const FSet &s) const
{
    return s.distillMode ? locWays() : prm.totalWays;
}

int
FacCache::findFrame(const FSet &s, LineAddr line) const
{
    for (unsigned i = 0; i < prm.totalWays; ++i)
        if (s.frames[i].valid && s.frames[i].line == line)
            return static_cast<int>(i);
    return -1;
}

void
FacCache::touchFrame(FSet &s, unsigned frame_idx)
{
    unsigned pos = 0;
    while (s.order[pos] != frame_idx) {
        ++pos;
        ldis_assert(pos < prm.totalWays);
    }
    for (; pos > 0; --pos)
        s.order[pos] = s.order[pos - 1];
    s.order[0] = static_cast<std::uint8_t>(frame_idx);
}

unsigned
FacCache::slotsFor(LineAddr line, Footprint used) const
{
    // Compressed size of the used words, in 8B slots, rounded up to
    // the power-of-two group size. Never worse than the plain WOC's
    // nextPow2(#used).
    unsigned bytes = compressedBytes(encoderKind, values, line,
                                     used);
    unsigned slots = static_cast<unsigned>(
        divCeil(std::max(bytes, 1u), kWordBytes));
    unsigned group = static_cast<unsigned>(nextPow2(slots));
    unsigned plain = static_cast<unsigned>(nextPow2(used.count()));
    return std::min(group, plain);
}

void
FacCache::accountWocEvictions(const std::vector<WocEvicted> &evs)
{
    for (const WocEvicted &ev : evs) {
        ++extra.wocEvictions;
        if (!ev.dirty.empty())
            ++statsData.writebacks;
    }
}

void
FacCache::handleLocEviction(FSet &s, const CacheLineState &victim)
{
    ldis_assert(victim.valid);
    ++statsData.evictions;

    bool distillable = s.distillMode && !victim.instr;
    if (!distillable || victim.footprint.empty()) {
        if (!victim.dirtyWords.empty() || victim.dirty)
            ++statsData.writebacks;
        return;
    }

    Footprint used = victim.footprint;
    unsigned count = used.count();
    mtFilter.recordEviction(count);
    if (prm.medianThreshold && !mtFilter.shouldInstall(count)) {
        ++extra.mtFiltered;
        if (!victim.dirtyWords.empty())
            ++statsData.writebacks;
        return;
    }

    unsigned slots = slotsFor(victim.line, used);
    scratchEvicted.clear();
    s.woc.install(victim.line, used, victim.dirtyWords, slots, rng,
                  scratchEvicted);
    accountWocEvictions(scratchEvicted);
    ++extra.wocInstalls;
    extra.slotsStored += slots;
    extra.wordsStored += count;
    LDIS_AUDIT_CHECK("FacCache", auditEvictionScratch(s));
}

CacheLineState &
FacCache::installLine(FSet &s, LineAddr line, bool instr)
{
    unsigned active = activeWays(s);

    int victim_frame = -1;
    for (unsigned i = 0; i < active; ++i) {
        if (!s.frames[i].valid) {
            victim_frame = static_cast<int>(i);
            break;
        }
    }
    if (victim_frame < 0) {
        for (unsigned i = prm.totalWays; i-- > 0;) {
            if (s.order[i] < active) {
                victim_frame = s.order[i];
                break;
            }
        }
        ldis_assert(victim_frame >= 0);
        handleLocEviction(s, s.frames[victim_frame]);
    }

    unsigned vf = static_cast<unsigned>(victim_frame);
    CacheLineState fresh;
    fresh.line = line;
    fresh.valid = true;
    fresh.instr = instr;
    s.frames[vf] = fresh;
    touchFrame(s, vf);
    return s.frames[vf];
}

void
FacCache::transition(FSet &s, bool distill)
{
    if (s.distillMode == distill)
        return;
    ++extra.modeSwitches;
    if (!distill) {
        scratchEvicted.clear();
        s.woc.flush(scratchEvicted);
        accountWocEvictions(scratchEvicted);
        s.distillMode = false;
    } else {
        s.distillMode = true;
        for (unsigned i = locWays(); i < prm.totalWays; ++i) {
            if (s.frames[i].valid) {
                handleLocEviction(s, s.frames[i]);
                s.frames[i] = CacheLineState{};
            }
        }
    }
}

void
FacCache::syncMode(FSet &s, std::uint64_t set_index)
{
    if (!prm.useReverter)
        return;
    bool desired = reverterUnit->isLeader(set_index)
                 ? true
                 : reverterUnit->ldisEnabled();
    transition(s, desired);
}

L2Result
FacCache::access(Addr addr, bool write, Addr /*pc*/, bool instr)
{
    ++statsData.accesses;
    LineAddr line = lineAddrOf(addr);
    WordIdx word = wordIdxOf(addr);
    std::uint64_t set_index = setIndexOf(line);
    FSet &s = sets[set_index];
    syncMode(s, set_index);

    L2Result res;

    // One frame scan and (on a frame miss) one WOC head walk decide
    // all four outcomes; a resident WOC line always has a non-empty
    // footprint, so `present` doubles as the presence test.
    int fi = findFrame(s, line);
    Footprint present;
    if (fi < 0 && s.distillMode)
        present = s.woc.wordsOf(line);

    if (fi >= 0) {
        CacheLineState *frame = &s.frames[fi];
        frame->footprint.set(word);
        if (write)
            frame->dirtyWords.set(word);
        touchFrame(s, static_cast<unsigned>(fi));
        ++statsData.locHits;
        res = {L2Outcome::LocHit, Footprint::full(), prm.hitLatency};
    } else if (!present.empty()) {
        if (present.test(word)) {
            if (write)
                s.woc.markDirty(line, Footprint(
                    static_cast<std::uint8_t>(1u << word)));
            ++statsData.wocHits;
            // Decompression adds on top of the rearrangement delay.
            res = {L2Outcome::WocHit, present,
                   prm.hitLatency + prm.wocRearrange};
        } else {
            WocEvicted ev = s.woc.invalidateLine(line);
            ++statsData.holeMisses;
            CacheLineState &fresh = installLine(s, line, instr);
            fresh.footprint.set(word);
            fresh.dirtyWords = ev.dirty;
            fresh.footprint |= ev.dirty;
            if (write)
                fresh.dirtyWords.set(word);
            res = {L2Outcome::HoleMiss, Footprint::full(),
                   prm.hitLatency + prm.memLatency};
            // The install may have distilled a victim; audit only
            // now that the fresh line carries its demand word.
            LDIS_AUDIT_CHECK("FacCache", auditSet(set_index));
        }
    } else {
        if (compulsory.firstTouch(line))
            ++statsData.compulsoryMisses;
        ++statsData.lineMisses;
        CacheLineState &fresh = installLine(s, line, instr);
        fresh.footprint.set(word);
        if (write)
            fresh.dirtyWords.set(word);
        res = {L2Outcome::LineMiss, Footprint::full(),
               prm.hitLatency + prm.memLatency};
        // The install may have distilled a victim; audit only now
        // that the fresh line carries its demand word.
        LDIS_AUDIT_CHECK("FacCache", auditSet(set_index));
    }

    if (prm.useReverter && reverterUnit->isLeader(set_index))
        reverterUnit->recordLeaderAccess(line, isMiss(res.outcome));

    LDIS_AUDIT_POINT(auditClock, "FacCache", *this);
    return res;
}

void
FacCache::l1dEviction(LineAddr line, Footprint used,
                      Footprint dirty_words)
{
    FSet &s = sets[setIndexOf(line)];
    if (int fi = findFrame(s, line); fi >= 0) {
        s.frames[fi].footprint |= used;
        s.frames[fi].dirtyWords |= dirty_words;
        return;
    }
    Footprint present =
        s.distillMode ? s.woc.wordsOf(line) : Footprint{};
    if (!present.empty()) {
        Footprint in_woc = dirty_words & present;
        s.woc.markDirty(line, in_woc);
        if (!(dirty_words == in_woc))
            ++statsData.writebacks;
        return;
    }
    if (!dirty_words.empty())
        ++statsData.writebacks;
}

const CompressedWocSet &
FacCache::wocOf(std::uint64_t set_index) const
{
    ldis_assert(set_index < setsCount);
    return sets[set_index].woc;
}

std::string
FacCache::auditSet(std::uint64_t set_index) const
{
    ldis_assert(set_index < setsCount);
    const FSet &s = sets[set_index];
    auto in_set = [&](const char *what) {
        return std::string(what) + " in set " +
               std::to_string(set_index);
    };

    unsigned seen_frames = 0;
    for (unsigned i = 0; i < prm.totalWays; ++i) {
        unsigned f = s.order[i];
        if (f >= prm.totalWays || (seen_frames & (1u << f)))
            return in_set("recency order is not a permutation");
        seen_frames |= 1u << f;
    }

    for (unsigned f = 0; f < prm.totalWays; ++f) {
        const CacheLineState &frame = s.frames[f];
        if (!frame.valid)
            continue;
        if (setIndexOf(frame.line) != set_index)
            return in_set("frame line maps to a different set");
        if (!((frame.dirtyWords & frame.footprint) ==
              frame.dirtyWords))
            return in_set("dirty words outside the footprint");
        if (frame.footprint.empty() && !frame.prefetched)
            return in_set("demand line with an empty footprint");
        for (unsigned g = f + 1; g < prm.totalWays; ++g)
            if (s.frames[g].valid &&
                s.frames[g].line == frame.line)
                return in_set("line occupies two frames");
        if (s.woc.linePresent(frame.line))
            return in_set("line in both a frame and the WOC");
        if (s.distillMode && f >= locWays())
            return in_set("extension frame valid in distill mode");
    }

    if (!s.distillMode && s.woc.validEntryCount() != 0)
        return in_set("traditional-mode set with WOC content");
    if (prm.useReverter && reverterUnit->isLeader(set_index) &&
        !s.distillMode)
        return in_set("leader set left distill mode");

    std::string woc_violation = s.woc.auditInvariants();
    if (!woc_violation.empty())
        return in_set("WOC") + ": " + woc_violation;
    return "";
}

std::string
FacCache::auditInvariants() const
{
    for (unsigned i = 0; i < setsCount; ++i) {
        std::string violation = auditSet(i);
        if (!violation.empty())
            return violation;
    }
    std::string mt_violation = mtFilter.auditInvariants();
    if (!mt_violation.empty())
        return "MT filter: " + mt_violation;
    if (reverterUnit) {
        std::string rc_violation = reverterUnit->auditInvariants();
        if (!rc_violation.empty())
            return "reverter: " + rc_violation;
    }
    return "";
}

std::string
FacCache::auditEvictionScratch(const FSet &s) const
{
    for (const WocEvicted &ev : scratchEvicted) {
        if (s.woc.linePresent(ev.line))
            return "evicted line " + std::to_string(ev.line) +
                   " still resident in the WOC";
        if (findFrame(s, ev.line) >= 0)
            return "evicted line " + std::to_string(ev.line) +
                   " still resident in a frame";
    }
    return "";
}

} // namespace ldis
