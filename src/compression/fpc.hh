/**
 * @file
 * Frequent Pattern Compression (Alameldeen & Wood, the paper's
 * reference [2]): a richer significance-based encoding than the
 * Table-4 scheme, with a 3-bit prefix per 32-bit dword. The paper's
 * footnote 9 reports that using FPC instead of the simple encoding
 * changed neither the compression ratio nor the MPKI reduction
 * materially; bench/abl_compression reproduces that comparison.
 *
 * Patterns (per 32-bit dword; prefix 3 bits + payload):
 *   000 zero dword                      (3 bits)
 *   001 4-bit sign-extended             (3 + 4)
 *   010 8-bit sign-extended             (3 + 8)
 *   011 16-bit sign-extended            (3 + 16)
 *   100 16-bit padded with zeros (upper half zero, lower half
 *       arbitrary)                      (3 + 16)
 *   101 two sign-extended halfwords     (3 + 16)
 *   110 repeated bytes                  (3 + 8)
 *   111 uncompressed                    (3 + 32)
 */

#ifndef DISTILLSIM_COMPRESSION_FPC_HH
#define DISTILLSIM_COMPRESSION_FPC_HH

#include <cstdint>

#include "common/footprint.hh"
#include "common/types.hh"
#include "trace/value_model.hh"

namespace ldis
{

/** FPC-encoded size of one 32-bit dword, in bits. */
unsigned fpcEncodedBits(std::uint32_t v);

/**
 * FPC-compressed size, in bytes (rounded up), of the selected words
 * of @p line.
 */
unsigned fpcCompressedBytes(const ValueModel &model, LineAddr line,
                            Footprint words);

/** Convenience: FPC-compressed size of the full line. */
inline unsigned
fpcCompressedLineBytes(const ValueModel &model, LineAddr line)
{
    return fpcCompressedBytes(model, line, Footprint::full());
}

} // namespace ldis

#endif // DISTILLSIM_COMPRESSION_FPC_HH
