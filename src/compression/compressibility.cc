#include "compressibility.hh"

namespace ldis
{

void
CompressibilitySampler::sample(const SetAssocCache &tags)
{
    tags.forEachLine([this](const CacheLineState &l) {
        if (l.instr)
            return;
        whole.record(classifySize(
            compressedLineBytes(values, l.line)));
        // Footprint-aware: only the used words contribute bits; a
        // line with few used words is small even if its values are
        // incompressible.
        Footprint fp = l.footprint;
        if (fp.empty())
            fp = Footprint::full();
        used.record(classifySize(
            compressedBytes(values, l.line, fp)));
    });
}

} // namespace ldis
