/**
 * @file
 * Sampling-based compressibility study (Section 8.1, Figure 10):
 * periodically snapshot the valid lines of the baseline cache and
 * classify each line's compressed size twice — once compressing the
 * whole line, once compressing only the words marked used in the
 * line's footprint.
 */

#ifndef DISTILLSIM_COMPRESSION_COMPRESSIBILITY_HH
#define DISTILLSIM_COMPRESSION_COMPRESSIBILITY_HH

#include <array>
#include <cstdint>

#include "cache/set_assoc.hh"
#include "compression/encoder.hh"
#include "trace/value_model.hh"

namespace ldis
{

/** Accumulated class distribution for one compression flavour. */
struct CompressDistribution
{
    std::array<std::uint64_t, 4> counts{};
    std::uint64_t total = 0;

    void
    record(CompressClass c)
    {
        ++counts[static_cast<std::size_t>(c)];
        ++total;
    }

    double
    fraction(CompressClass c) const
    {
        return total == 0
            ? 0.0
            : static_cast<double>(
                  counts[static_cast<std::size_t>(c)])
                  / static_cast<double>(total);
    }
};

/** The Figure-10 sampler. */
class CompressibilitySampler
{
  public:
    explicit CompressibilitySampler(const ValueModel &model)
        : values(model)
    {}

    /**
     * Classify every valid data line of @p tags, accumulating into
     * the whole-line and used-words-only distributions.
     */
    void sample(const SetAssocCache &tags);

    /** Distribution when all words are compressed (Fig 10a). */
    const CompressDistribution &wholeLine() const { return whole; }

    /** Distribution when only used words are compressed (Fig 10b). */
    const CompressDistribution &usedWords() const { return used; }

  private:
    const ValueModel &values;
    CompressDistribution whole;
    CompressDistribution used;
};

} // namespace ldis

#endif // DISTILLSIM_COMPRESSION_COMPRESSIBILITY_HH
