/**
 * @file
 * The paper's significance-based compression encoding (Table 4),
 * operating at 32-bit granularity:
 *
 *   code 00 -> value 0                (2 bits)
 *   code 01 -> value 1                (2 bits)
 *   code 10 -> bits[31:16] zero       (2 + 16 bits)
 *   code 11 -> incompressible         (2 + 32 bits)
 *
 * Plus helpers to compress whole lines or only the used words (the
 * footprint-aware variant of Section 8.2) and classify the result
 * into the paper's one-eighth / one-fourth / one-half / full buckets.
 */

#ifndef DISTILLSIM_COMPRESSION_ENCODER_HH
#define DISTILLSIM_COMPRESSION_ENCODER_HH

#include <cstdint>

#include "common/footprint.hh"
#include "common/types.hh"
#include "trace/value_model.hh"

namespace ldis
{

/** Selectable compression encoding for the cache models. */
enum class EncoderKind
{
    Table4, //!< the paper's Table-4 scheme (default)
    Fpc,    //!< frequent pattern compression (footnote 9)
};

/** Encoded size of one 32-bit dword under the Table-4 scheme. */
constexpr unsigned
encodedBits(std::uint32_t v)
{
    if (v == 0 || v == 1)
        return 2;
    if ((v >> 16) == 0)
        return 2 + 16;
    return 2 + 32;
}

/**
 * Compressed size, in bytes (rounded up), of the words of @p line
 * selected by @p words, with values drawn from @p model.
 */
unsigned compressedBytes(const ValueModel &model, LineAddr line,
                         Footprint words);

/** Dispatch on the configured encoder. */
unsigned compressedBytes(EncoderKind kind, const ValueModel &model,
                         LineAddr line, Footprint words);

/** Convenience: compressed size of the full line. */
inline unsigned
compressedLineBytes(const ValueModel &model, LineAddr line)
{
    return compressedBytes(model, line, Footprint::full());
}

/** Figure-10 size classes. */
enum class CompressClass
{
    OneEighth, //!< fits in 1/8 of the line (8B)
    OneFourth, //!< fits in 1/4 of the line (16B)
    OneHalf,   //!< fits in 1/2 of the line (32B)
    Full,      //!< incompressible beyond 1/2
};

/** Classify a compressed size against the 64B line. */
CompressClass classifySize(unsigned bytes);

/** Display name of a class ("one-eighth", ...). */
const char *compressClassName(CompressClass c);

} // namespace ldis

#endif // DISTILLSIM_COMPRESSION_ENCODER_HH
