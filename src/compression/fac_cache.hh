/**
 * @file
 * Footprint-Aware Compression cache (Section 8.2): a distill cache
 * whose WOC stores the *compressed* used words of each distilled
 * line. Compressing only the used words lets a line occupy fewer
 * 8B slots than it has used words, combining the capacity benefit of
 * spatial filtering with that of value compression.
 */

#ifndef DISTILLSIM_COMPRESSION_FAC_CACHE_HH
#define DISTILLSIM_COMPRESSION_FAC_CACHE_HH

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "cache/l2_interface.hh"
#include "cache/set_assoc.hh"
#include "common/audit.hh"
#include "compression/cwoc.hh"
#include "compression/encoder.hh"
#include "distill/distill_cache.hh"
#include "trace/value_model.hh"

namespace ldis
{

/** FAC-specific statistics. */
struct FacStats
{
    std::uint64_t wocInstalls = 0;
    std::uint64_t wocEvictions = 0;
    std::uint64_t mtFiltered = 0;
    std::uint64_t slotsStored = 0; //!< total WOC slots occupied
    std::uint64_t wordsStored = 0; //!< used words represented
    std::uint64_t modeSwitches = 0;
};

/**
 * The FAC cache. Reuses DistillParams: the default Figure-11
 * configuration (FAC-4xTags) sets wocWays = 3.
 */
class FacCache : public SecondLevelCache
{
  public:
    /**
     * @param params distill-cache shape (FAC-4xTags: wocWays = 3)
     * @param values data-value source for compression
     * @param encoder compression scheme (footnote 9: FPC behaves
     *        like the simple Table-4 encoding)
     */
    FacCache(const DistillParams &params, const ValueModel &values,
             EncoderKind encoder = EncoderKind::Table4);

    L2Result access(Addr addr, bool write, Addr pc,
                    bool instr) override;
    void l1dEviction(LineAddr line, Footprint used,
                     Footprint dirty_words) override;
    const L2Stats &stats() const override { return statsData; }
    void
    resetStats() override
    {
        statsData = L2Stats{};
        extra = FacStats{};
    }
    std::string describe() const override;

    const FacStats &facStats() const { return extra; }
    unsigned numSets() const { return setsCount; }
    unsigned locWays() const { return prm.totalWays - prm.wocWays; }
    const CompressedWocSet &wocOf(std::uint64_t set_index) const;

    /** Slot count a given (line, used-words) pair would occupy. */
    unsigned slotsFor(LineAddr line, Footprint used) const;

    /**
     * Audit one set: recency permutation, no duplicate lines, dirty
     * words within the footprint, LOC/WOC exclusivity, operating
     * mode consistent with occupancy, compressed WOC well-formed.
     * @return "" when well-formed, else the first violation
     */
    std::string auditSet(std::uint64_t set_index) const;

    /**
     * auditSet() over every set plus the MT filter and reverter
     * audits (see common/audit.hh).
     */
    std::string auditInvariants() const;

    /** auditInvariants() as a predicate (legacy tests). */
    bool
    checkIntegrity() const
    {
        return auditInvariants().empty();
    }

  public:
    /** Same inline-frame bound as DistillCache. */
    static constexpr unsigned kMaxWays = DistillCache::kMaxWays;

  private:
    /** Test-only state-corruption backdoor (tests/test_audit.cc). */
    friend struct AuditBackdoor;

    struct FSet
    {
        std::array<CacheLineState, kMaxWays> frames{};
        std::array<std::uint8_t, kMaxWays> order{};
        CompressedWocSet woc;
        bool distillMode = true;

        explicit FSet(unsigned woc_entries) : woc(woc_entries)
        {
            for (unsigned i = 0; i < kMaxWays; ++i)
                order[i] = static_cast<std::uint8_t>(i);
        }
    };

    std::uint64_t setIndexOf(LineAddr line) const;
    unsigned activeWays(const FSet &s) const;

    /** Frame index of @p line within its set, or -1 on miss. */
    int findFrame(const FSet &s, LineAddr line) const;
    void touchFrame(FSet &s, unsigned frame_idx);
    CacheLineState &installLine(FSet &s, LineAddr line, bool instr);
    void handleLocEviction(FSet &s, const CacheLineState &victim);
    void accountWocEvictions(const std::vector<WocEvicted> &evs);
    void syncMode(FSet &s, std::uint64_t set_index);
    void transition(FSet &s, bool distill);

    /**
     * Audit that nothing drained into the eviction scratch buffer is
     * still live in @p s (see DistillCache::auditEvictionScratch).
     */
    std::string auditEvictionScratch(const FSet &s) const;

    DistillParams prm;
    const ValueModel &values;
    EncoderKind encoderKind;
    unsigned setsCount;
    std::vector<FSet> sets;
    Random rng;
    MedianFilter mtFilter;
    std::unique_ptr<Reverter> reverterUnit;
    CompulsoryTracker compulsory;
    L2Stats statsData;
    FacStats extra;
    std::vector<WocEvicted> scratchEvicted;
    audit::Clock auditClock;
};

} // namespace ldis

#endif // DISTILLSIM_COMPRESSION_FAC_CACHE_HH
