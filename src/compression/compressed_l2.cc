#include "compressed_l2.hh"

#include <algorithm>
#include <cstdio>

#include "common/intmath.hh"
#include "common/logging.hh"
#include "compression/encoder.hh"

namespace ldis
{

CompressedL2::CompressedL2(const CompressedL2Params &params,
                           const ValueModel &vals)
    : prm(params), values(vals)
{
    std::uint64_t lines = prm.bytes / kLineBytes;
    if (lines % prm.ways != 0)
        ldis_fatal("compressed L2: capacity does not divide into "
                   "%u ways", prm.ways);
    std::uint64_t num_sets = lines / prm.ways;
    if (!isPowerOf2(num_sets))
        ldis_fatal("compressed L2: set count must be a power of two");
    if (prm.tagFactor < 1 || prm.tagFactor * prm.ways > 255)
        ldis_fatal("compressed L2: bad tag factor %u", prm.tagFactor);

    setsCount = static_cast<unsigned>(num_sets);
    segmentsPerSet = prm.ways * kWordsPerLine;
    sets.resize(setsCount);
    unsigned tags_per_set = prm.ways * prm.tagFactor;
    for (auto &s : sets) {
        s.tags.resize(tags_per_set);
        s.order.resize(tags_per_set);
        for (unsigned i = 0; i < tags_per_set; ++i)
            s.order[i] = static_cast<std::uint8_t>(i);
    }
}

std::string
CompressedL2::describe() const
{
    char buf[96];
    std::snprintf(buf, sizeof(buf),
                  "compressed %lluKB %u-way (%ux tags)",
                  static_cast<unsigned long long>(prm.bytes / 1024),
                  prm.ways, prm.tagFactor);
    return buf;
}

std::uint64_t
CompressedL2::setIndexOf(LineAddr line) const
{
    return line & (setsCount - 1);
}

int
CompressedL2::tagOf(const CSet &s, LineAddr line) const
{
    for (unsigned i = 0; i < s.tags.size(); ++i)
        if (s.tags[i].valid && s.tags[i].line == line)
            return static_cast<int>(i);
    return -1;
}

void
CompressedL2::touchTag(CSet &s, unsigned idx)
{
    auto it = std::find(s.order.begin(), s.order.end(),
                        static_cast<std::uint8_t>(idx));
    ldis_assert(it != s.order.end());
    s.order.erase(it);
    s.order.insert(s.order.begin(), static_cast<std::uint8_t>(idx));
}

void
CompressedL2::evictTag(CSet &s, unsigned idx)
{
    CTag &t = s.tags[idx];
    ldis_assert(t.valid);
    ldis_assert(s.usedSegments >= t.segments);
    s.usedSegments -= t.segments;
    ++statsData.evictions;
    if (t.dirty)
        ++statsData.writebacks;
    t = CTag{};
    LDIS_AUDIT_CHECK("CompressedL2",
                     auditSet(static_cast<std::uint64_t>(
                         &s - sets.data())));
}

unsigned
CompressedL2::segmentsFor(LineAddr line) const
{
    unsigned bytes = compressedBytes(prm.encoder, values, line,
                                     Footprint::full());
    unsigned segs = static_cast<unsigned>(
        divCeil(bytes, kWordBytes));
    return std::min(segs == 0 ? 1u : segs,
                    static_cast<unsigned>(kWordsPerLine));
}

L2Result
CompressedL2::access(Addr addr, bool write, Addr /*pc*/, bool /*i*/)
{
    ++statsData.accesses;
    LineAddr line = lineAddrOf(addr);
    CSet &s = sets[setIndexOf(line)];

    int idx = tagOf(s, line);
    if (idx >= 0) {
        if (write)
            s.tags[idx].dirty = true;
        touchTag(s, static_cast<unsigned>(idx));
        ++statsData.locHits;
        return {L2Outcome::LocHit, Footprint::full(),
                prm.latency.hit};
    }

    if (compulsory.firstTouch(line))
        ++statsData.compulsoryMisses;
    ++statsData.lineMisses;

    unsigned need = segmentsFor(line);

    // Perfect-LRU fit: evict from the LRU end until the segments fit
    // and a free tag exists.
    auto free_tag = [&]() -> int {
        for (unsigned i = 0; i < s.tags.size(); ++i)
            if (!s.tags[i].valid)
                return static_cast<int>(i);
        return -1;
    };
    while (s.usedSegments + need > segmentsPerSet ||
           free_tag() < 0) {
        // Find the LRU valid tag.
        int victim = -1;
        for (auto it = s.order.rbegin(); it != s.order.rend(); ++it) {
            if (s.tags[*it].valid) {
                victim = *it;
                break;
            }
        }
        ldis_assert(victim >= 0);
        evictTag(s, static_cast<unsigned>(victim));
    }

    int slot = free_tag();
    ldis_assert(slot >= 0);
    CTag &t = s.tags[slot];
    t.valid = true;
    t.dirty = write;
    t.line = line;
    t.segments = static_cast<std::uint8_t>(need);
    s.usedSegments += need;
    touchTag(s, static_cast<unsigned>(slot));

    extra.segmentsStored += need;
    ++extra.linesInstalled;

    LDIS_AUDIT_POINT(auditClock, "CompressedL2", *this);
    return {L2Outcome::LineMiss, Footprint::full(),
            prm.latency.hit + prm.latency.memory};
}

void
CompressedL2::l1dEviction(LineAddr line, Footprint /*used*/,
                          Footprint dirty_words)
{
    CSet &s = sets[setIndexOf(line)];
    int idx = tagOf(s, line);
    if (idx >= 0) {
        if (!dirty_words.empty())
            s.tags[idx].dirty = true;
        return;
    }
    if (!dirty_words.empty())
        ++statsData.writebacks;
}

double
CompressedL2::avgSegmentsPerLine() const
{
    if (extra.linesInstalled == 0)
        return 0.0;
    return static_cast<double>(extra.segmentsStored)
         / static_cast<double>(extra.linesInstalled);
}

std::string
CompressedL2::auditSet(std::uint64_t set_index) const
{
    ldis_assert(set_index < setsCount);
    const CSet &s = sets[set_index];
    auto in_set = [&](const char *what) {
        return std::string(what) + " in set " +
               std::to_string(set_index);
    };

    bool seen_tags[256] = {};
    if (s.order.size() != s.tags.size())
        return in_set("recency order size mismatch");
    for (std::uint8_t idx : s.order) {
        if (idx >= s.tags.size() || seen_tags[idx])
            return in_set("recency order is not a permutation");
        seen_tags[idx] = true;
    }

    unsigned sum = 0;
    for (unsigned i = 0; i < s.tags.size(); ++i) {
        const CTag &t = s.tags[i];
        if (!t.valid)
            continue;
        if (setIndexOf(t.line) != set_index)
            return in_set("tag line maps to a different set");
        if (t.segments < 1 || t.segments > kWordsPerLine)
            return in_set("segment count outside [1, 8]");
        for (unsigned k = i + 1; k < s.tags.size(); ++k)
            if (s.tags[k].valid && s.tags[k].line == t.line)
                return in_set("line occupies two tags");
        sum += t.segments;
    }
    if (sum != s.usedSegments)
        return in_set("segment accounting disagrees with the tags");
    if (sum > segmentsPerSet)
        return in_set("segments overrun the data store");
    return "";
}

std::string
CompressedL2::auditInvariants() const
{
    for (unsigned i = 0; i < setsCount; ++i) {
        std::string violation = auditSet(i);
        if (!violation.empty())
            return violation;
    }
    return "";
}

} // namespace ldis
