#include "cwoc.hh"

#include "common/intmath.hh"
#include "common/logging.hh"

namespace ldis
{

CompressedWocSet::CompressedWocSet(unsigned num_entries)
    : entries(num_entries)
{
    ldis_assert(num_entries > 0);
    ldis_assert(num_entries % kWordsPerLine == 0);
}

int
CompressedWocSet::headOf(LineAddr line) const
{
    for (unsigned i = 0; i < entries.size(); ++i)
        if (entries[i].valid && entries[i].head &&
            entries[i].line == line)
            return static_cast<int>(i);
    return -1;
}

Footprint
CompressedWocSet::wordsOf(LineAddr line) const
{
    int h = headOf(line);
    return h < 0 ? Footprint{} : entries[h].words;
}

Footprint
CompressedWocSet::dirtyWordsOf(LineAddr line) const
{
    int h = headOf(line);
    return h < 0 ? Footprint{} : entries[h].dirty;
}

void
CompressedWocSet::evictGroup(unsigned head,
                             std::vector<WocEvicted> &out)
{
    CWocEntry &h = entries[head];
    ldis_assert(h.valid && h.head);
    WocEvicted ev;
    ev.line = h.line;
    ev.words = h.words;
    ev.dirty = h.dirty;
    unsigned slots = h.slots;
    for (unsigned i = head; i < head + slots; ++i) {
        ldis_assert(entries[i].valid && entries[i].line == ev.line);
        entries[i] = CWocEntry{};
    }
    out.push_back(ev);
}

void
CompressedWocSet::install(LineAddr line, Footprint used,
                          Footprint dirty, unsigned slots,
                          Random &rng,
                          std::vector<WocEvicted> &evicted_out)
{
    ldis_assert(!used.empty());
    ldis_assert(!linePresent(line));
    ldis_assert((dirty & used) == dirty);
    ldis_assert(slots >= 1 && slots <= kWordsPerLine);
    ldis_assert(isPowerOf2(slots));
    ldis_assert(slots <= entries.size());

    std::vector<unsigned> free_starts;
    std::vector<unsigned> eligible;
    for (unsigned s = 0; s + slots <= entries.size(); s += slots) {
        const CWocEntry &first = entries[s];
        if (!first.valid || first.head) {
            bool all_free = true;
            for (unsigned i = s; i < s + slots; ++i)
                if (entries[i].valid)
                    all_free = false;
            if (all_free)
                free_starts.push_back(s);
            else
                eligible.push_back(s);
        }
    }

    unsigned start;
    if (!free_starts.empty()) {
        start = free_starts[rng.below(free_starts.size())];
    } else {
        ldis_assert(!eligible.empty());
        start = eligible[rng.below(eligible.size())];
    }

    for (unsigned i = start; i < start + slots; ++i) {
        if (!entries[i].valid)
            continue;
        unsigned h = i;
        while (!entries[h].head) {
            ldis_assert(h > 0);
            --h;
        }
        evictGroup(h, evicted_out);
    }

    CWocEntry &head = entries[start];
    head.valid = true;
    head.head = true;
    head.line = line;
    head.words = used;
    head.dirty = dirty;
    head.slots = static_cast<std::uint8_t>(slots);
    for (unsigned i = start + 1; i < start + slots; ++i) {
        CWocEntry &e = entries[i];
        e.valid = true;
        e.head = false;
        e.line = line;
        e.words = Footprint{};
        e.dirty = Footprint{};
        e.slots = 0;
    }
}

WocEvicted
CompressedWocSet::invalidateLine(LineAddr line)
{
    WocEvicted ev;
    ev.line = line;
    int h = headOf(line);
    if (h < 0)
        return ev;
    std::vector<WocEvicted> tmp;
    evictGroup(static_cast<unsigned>(h), tmp);
    ldis_assert(tmp.size() == 1);
    return tmp.front();
}

void
CompressedWocSet::markDirty(LineAddr line, Footprint words)
{
    int h = headOf(line);
    if (h < 0)
        return;
    entries[h].dirty |= (words & entries[h].words);
}

void
CompressedWocSet::flush(std::vector<WocEvicted> &evicted_out)
{
    for (unsigned i = 0; i < entries.size(); ++i)
        if (entries[i].valid && entries[i].head)
            evictGroup(i, evicted_out);
    ldis_assert(validEntryCount() == 0);
}

unsigned
CompressedWocSet::validEntryCount() const
{
    unsigned n = 0;
    for (const CWocEntry &e : entries)
        if (e.valid)
            ++n;
    return n;
}

unsigned
CompressedWocSet::lineCount() const
{
    unsigned n = 0;
    for (const CWocEntry &e : entries)
        if (e.valid && e.head)
            ++n;
    return n;
}

bool
CompressedWocSet::checkIntegrity() const
{
    std::vector<LineAddr> seen;
    unsigned i = 0;
    while (i < entries.size()) {
        if (!entries[i].valid) {
            ++i;
            continue;
        }
        const CWocEntry &h = entries[i];
        if (!h.head || h.slots == 0 || !isPowerOf2(h.slots))
            return false;
        if (i % h.slots != 0)
            return false;
        if (h.words.empty())
            return false;
        if (!((h.dirty & h.words) == h.dirty))
            return false;
        for (unsigned k = i + 1; k < i + h.slots; ++k) {
            if (k >= entries.size())
                return false;
            if (!entries[k].valid || entries[k].head ||
                entries[k].line != h.line)
                return false;
        }
        for (LineAddr l : seen)
            if (l == h.line)
                return false;
        seen.push_back(h.line);
        i += h.slots;
    }
    return true;
}

} // namespace ldis
