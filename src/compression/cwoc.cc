#include "cwoc.hh"

#include "common/intmath.hh"
#include "common/logging.hh"

namespace ldis
{

CompressedWocSet::CompressedWocSet(unsigned num_entries)
    : entryCount(num_entries)
{
    ldis_assert(num_entries > 0);
    ldis_assert(num_entries % kWordsPerLine == 0);
    ldis_assert(num_entries <= kMaxEntries);
}

WocEvicted
CompressedWocSet::takeGroup(unsigned head)
{
    ldis_assert(((validMask >> head) & 1u) &&
                ((headMask >> head) & 1u));
    WocEvicted ev;
    ev.line = lineAt[head];
    ev.words = wordsAt[head];
    ev.dirty = dirtyAt[head];
    unsigned slots = slotsAt[head];
    std::uint64_t span = lowMask64(slots) << head;
    ldis_assert((validMask & span) == span);
    validMask &= ~span;
    headMask &= ~span;
    return ev;
}

void
CompressedWocSet::install(LineAddr line, Footprint used,
                          Footprint dirty, unsigned slots,
                          Random &rng,
                          std::vector<WocEvicted> &evicted_out)
{
    ldis_assert(!used.empty());
    ldis_assert(!linePresent(line));
    ldis_assert((dirty & used) == dirty);
    ldis_assert(slots >= 1 && slots <= kWordsPerLine);
    ldis_assert(isPowerOf2(slots));
    ldis_assert(slots <= entryCount);

    std::uint8_t free_starts[kMaxEntries];
    std::uint8_t eligible[kMaxEntries];
    unsigned n_free = 0;
    unsigned n_elig = 0;
    std::uint64_t window = lowMask64(slots);
    for (unsigned s = 0; s + slots <= entryCount; s += slots) {
        bool first_valid = (validMask >> s) & 1u;
        bool first_head = (headMask >> s) & 1u;
        if (!first_valid || first_head) {
            if (((validMask >> s) & window) == 0)
                free_starts[n_free++] =
                    static_cast<std::uint8_t>(s);
            else
                eligible[n_elig++] = static_cast<std::uint8_t>(s);
        }
    }

    unsigned start;
    if (n_free > 0) {
        start = free_starts[rng.below(n_free)];
    } else {
        ldis_assert(n_elig > 0);
        start = eligible[rng.below(n_elig)];
    }

    for (unsigned i = start; i < start + slots; ++i) {
        if (!((validMask >> i) & 1u))
            continue;
        unsigned h = i;
        while (!((headMask >> h) & 1u)) {
            ldis_assert(h > 0);
            --h;
        }
        // Steady-state clean: evicted_out is the cache's reusable
        // eviction scratch, reserved once at construction (its
        // capacity never shrinks), so this push_back does not
        // allocate after warmup. ldis-lint: allow(hot-path-alloc)
        evicted_out.push_back(takeGroup(h));
    }

    std::uint64_t span = lowMask64(slots) << start;
    validMask |= span;
    headMask |= 1ull << start;
    for (unsigned i = start; i < start + slots; ++i)
        lineAt[i] = line;
    wordsAt[start] = used;
    dirtyAt[start] = dirty;
    slotsAt[start] = static_cast<std::uint8_t>(slots);
}

WocEvicted
CompressedWocSet::invalidateLine(LineAddr line)
{
    WocEvicted ev;
    ev.line = line;
    int h = headOf(line);
    if (h < 0)
        return ev;
    return takeGroup(static_cast<unsigned>(h));
}

void
CompressedWocSet::markDirty(LineAddr line, Footprint words)
{
    int h = headOf(line);
    if (h < 0)
        return;
    dirtyAt[h] |= (words & wordsAt[h]);
}

void
CompressedWocSet::flush(std::vector<WocEvicted> &evicted_out)
{
    while (headMask != 0) {
        unsigned h =
            static_cast<unsigned>(std::countr_zero(headMask));
        evicted_out.push_back(takeGroup(h));
    }
    ldis_assert(validEntryCount() == 0);
}

std::string
CompressedWocSet::auditInvariants() const
{
    auto at = [](const char *what, unsigned i) {
        return std::string(what) + " at entry " + std::to_string(i);
    };

    std::uint64_t in_range = lowMask64(entryCount);
    if (validMask & ~in_range)
        return "valid bits beyond the entry count";
    if (headMask & ~validMask)
        return "head bit on an invalid entry";

    LineAddr seen[kMaxEntries];
    unsigned n_seen = 0;
    unsigned i = 0;
    while (i < entryCount) {
        if (!((validMask >> i) & 1u)) {
            ++i;
            continue;
        }
        // Walking extent-by-extent from ascending heads means any
        // overlap shows up as a non-head valid entry at an extent
        // boundary, so this single pass also proves disjointness.
        if (!((headMask >> i) & 1u))
            return at("extent without a head bit", i);
        unsigned slots = slotsAt[i];
        if (slots == 0 || !isPowerOf2(slots))
            return at("extent size is not a power of two", i);
        if (i % slots != 0)
            return at("misaligned extent", i);
        if (i + slots > entryCount)
            return at("extent overruns the data array", i);
        if (wordsAt[i].empty())
            return at("extent represents no words", i);
        if (!((dirtyAt[i] & wordsAt[i]) == dirtyAt[i]))
            return at("dirty words outside the represented words",
                      i);
        for (unsigned k = i + 1; k < i + slots; ++k) {
            if (!((validMask >> k) & 1u))
                return at("hole inside an extent", k);
            if ((headMask >> k) & 1u)
                return at("overlapping extents (head inside an "
                          "extent)", k);
            if (lineAt[k] != lineAt[i])
                return at("extent spans two lines", k);
        }
        for (unsigned s = 0; s < n_seen; ++s)
            if (seen[s] == lineAt[i])
                return "line " + std::to_string(lineAt[i]) +
                       " occupies two extents";
        seen[n_seen++] = lineAt[i];
        i += slots;
    }
    return "";
}

} // namespace ldis
