/**
 * @file
 * Compressed traditional cache (the CMPR-4xTags configuration of
 * Figure 11): a set-associative cache whose data store is segmented
 * at 8B granularity. Each line is stored compressed (Table-4
 * encoding of its values) in ceil(size/8B) segments; a set holds up
 * to tagFactor * ways tag entries but only ways * 8 segments of
 * data. Replacement is perfect LRU over the tag entries: LRU lines
 * are evicted until the incoming line's segments fit (Section 8.2
 * notes CMPR gets perfect LRU while FAC uses the practical
 * size-based random scheme).
 */

#ifndef DISTILLSIM_COMPRESSION_COMPRESSED_L2_HH
#define DISTILLSIM_COMPRESSION_COMPRESSED_L2_HH

#include <cstdint>
#include <string>
#include <vector>

#include "cache/l2_interface.hh"
#include "cache/traditional_l2.hh"
#include "common/audit.hh"
#include "compression/encoder.hh"
#include "trace/value_model.hh"

namespace ldis
{

/** Configuration of the compressed cache. */
struct CompressedL2Params
{
    std::uint64_t bytes = 1 << 20; //!< data capacity {1MB}
    unsigned ways = 8;             //!< data ways per set {8}
    unsigned tagFactor = 4;        //!< tag entries per data line {4}
    EncoderKind encoder = EncoderKind::Table4;
    L2Latency latency{};
};

/** CMPR statistics beyond the common L2Stats. */
struct CompressedL2Stats
{
    std::uint64_t segmentsStored = 0; //!< segments of installed lines
    std::uint64_t linesInstalled = 0;
};

/** The compressed L2. */
class CompressedL2 : public SecondLevelCache
{
  public:
    CompressedL2(const CompressedL2Params &params,
                 const ValueModel &values);

    L2Result access(Addr addr, bool write, Addr pc,
                    bool instr) override;
    void l1dEviction(LineAddr line, Footprint used,
                     Footprint dirty_words) override;
    const L2Stats &stats() const override { return statsData; }
    void
    resetStats() override
    {
        statsData = L2Stats{};
        extra = CompressedL2Stats{};
    }
    std::string describe() const override;

    const CompressedL2Stats &compressedStats() const { return extra; }

    /** Average segments per installed line (compression ratio). */
    double avgSegmentsPerLine() const;

    /**
     * Audit one set: recency order is a permutation of the tags,
     * valid tags map here and are unique, per-line segment counts
     * are in [1, 8], and the set's segment accounting matches the
     * tags and never exceeds the data store.
     * @return "" when well-formed, else the first violation
     */
    std::string auditSet(std::uint64_t set_index) const;

    /** auditSet() over every set (see common/audit.hh). */
    std::string auditInvariants() const;

    /** auditInvariants() as a predicate (legacy tests). */
    bool
    checkIntegrity() const
    {
        return auditInvariants().empty();
    }

  private:
    /** Test-only state-corruption backdoor (tests/test_audit.cc). */
    friend struct AuditBackdoor;

    struct CTag
    {
        bool valid = false;
        bool dirty = false;
        LineAddr line = 0;
        std::uint8_t segments = 0;
    };

    struct CSet
    {
        std::vector<CTag> tags;
        /** Tag indices ordered MRU (front) to LRU (back). */
        std::vector<std::uint8_t> order;
        unsigned usedSegments = 0;
    };

    std::uint64_t setIndexOf(LineAddr line) const;
    int tagOf(const CSet &s, LineAddr line) const;
    void touchTag(CSet &s, unsigned idx);
    void evictTag(CSet &s, unsigned idx);

    /** Segments needed to store @p line compressed. */
    unsigned segmentsFor(LineAddr line) const;

    CompressedL2Params prm;
    const ValueModel &values;
    unsigned setsCount;
    unsigned segmentsPerSet;
    std::vector<CSet> sets;
    CompulsoryTracker compulsory;
    L2Stats statsData;
    CompressedL2Stats extra;
    audit::Clock auditClock;
};

} // namespace ldis

#endif // DISTILLSIM_COMPRESSION_COMPRESSED_L2_HH
