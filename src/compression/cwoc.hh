/**
 * @file
 * Compressed Word-Organized Cache set for Footprint-Aware Compression
 * (Section 8.2). Like the plain WOC, lines occupy power-of-two
 * aligned slot groups chosen by size-based random replacement — but
 * the group may hold *more* words than slots, because the used words
 * are stored compressed. The head entry carries the represented-word
 * and dirty masks and the group's slot count (the paper: "the
 * tag-entries in WOC are modified to support both compressed and
 * uncompressed lines").
 *
 * Representation mirrors WocSet: valid/head flags live in two 64-bit
 * occupancy masks and the per-entry payload is stored in inline
 * arrays, so lookups walk the head bits and nothing on the install /
 * invalidate path touches the heap.
 */

#ifndef DISTILLSIM_COMPRESSION_CWOC_HH
#define DISTILLSIM_COMPRESSION_CWOC_HH

#include <array>
#include <bit>
#include <cstdint>
#include <string>
#include <vector>

#include "common/footprint.hh"
#include "common/random.hh"
#include "common/types.hh"
#include "distill/woc.hh"

namespace ldis
{

/** One compressed-WOC tag entry. */
struct CWocEntry
{
    bool valid = false;
    bool head = false;
    LineAddr line = 0;

    // Head-only fields.
    Footprint words;       //!< words represented by the group
    Footprint dirty;       //!< dirty subset
    std::uint8_t slots = 0; //!< 8B slots occupied (power of two)
};

/** The compressed WOC portion of one FAC set. */
class CompressedWocSet
{
  public:
    /** Same single-mask bound as WocSet. */
    static constexpr unsigned kMaxEntries = WocSet::kMaxEntries;

    explicit CompressedWocSet(unsigned num_entries);

    /** Words of @p line represented here (empty if absent). */
    Footprint
    wordsOf(LineAddr line) const
    {
        int h = headOf(line);
        return h < 0 ? Footprint{} : wordsAt[h];
    }

    /** Dirty words of @p line. */
    Footprint
    dirtyWordsOf(LineAddr line) const
    {
        int h = headOf(line);
        return h < 0 ? Footprint{} : dirtyAt[h];
    }

    bool
    linePresent(LineAddr line) const
    {
        return headOf(line) >= 0;
    }

    /**
     * Install @p line's used words into @p slots aligned entries
     * (slots = power of two <= 8, already accounting for the
     * compressed size). Evicts overlapping groups wholly.
     */
    void install(LineAddr line, Footprint used, Footprint dirty,
                 unsigned slots, Random &rng,
                 std::vector<WocEvicted> &evicted_out);

    /** Remove @p line; returns its words/dirty masks. */
    WocEvicted invalidateLine(LineAddr line);

    /** Mark words of a resident line dirty. */
    void markDirty(LineAddr line, Footprint words);

    /** Evict everything. */
    void flush(std::vector<WocEvicted> &evicted_out);

    unsigned numEntries() const { return entryCount; }

    unsigned
    validEntryCount() const
    {
        return static_cast<unsigned>(std::popcount(validMask));
    }

    unsigned
    lineCount() const
    {
        return static_cast<unsigned>(std::popcount(headMask));
    }

    /** Read-only entry view (tests, integrity checks). */
    CWocEntry
    entry(unsigned i) const
    {
        CWocEntry e;
        e.valid = (validMask >> i) & 1u;
        e.head = (headMask >> i) & 1u;
        if (e.valid)
            e.line = lineAt[i];
        if (e.head) {
            e.words = wordsAt[i];
            e.dirty = dirtyAt[i];
            e.slots = slotsAt[i];
        }
        return e;
    }

    /**
     * Audit structural invariants: every compressed extent starts at
     * a head, stays within the entry array, is power-of-two sized
     * and aligned, extents do not overlap, dirty masks are subsets
     * of the represented words, and no line appears twice.
     * @return "" when well-formed, else the first violation
     */
    std::string auditInvariants() const;

    /** auditInvariants() as a predicate (legacy tests). */
    bool
    checkIntegrity() const
    {
        return auditInvariants().empty();
    }

  private:
    /** Test-only state-corruption backdoor (tests/test_audit.cc). */
    friend struct AuditBackdoor;

    /** Entry index of @p line's head, or -1 if absent. */
    int
    headOf(LineAddr line) const
    {
        for (std::uint64_t m = headMask; m != 0; m &= m - 1) {
            unsigned h = static_cast<unsigned>(std::countr_zero(m));
            if (lineAt[h] == line)
                return static_cast<int>(h);
        }
        return -1;
    }

    /** Build the WocEvicted for the group at @p head and clear it. */
    WocEvicted takeGroup(unsigned head);

    unsigned entryCount;

    /** Bit i set = entry i valid / group head. */
    std::uint64_t validMask = 0;
    std::uint64_t headMask = 0;

    /** Owning line of each valid entry. */
    std::array<LineAddr, kMaxEntries> lineAt{};

    // Head-only payload, indexed by the head entry.
    std::array<Footprint, kMaxEntries> wordsAt{};
    std::array<Footprint, kMaxEntries> dirtyAt{};
    std::array<std::uint8_t, kMaxEntries> slotsAt{};
};

} // namespace ldis

#endif // DISTILLSIM_COMPRESSION_CWOC_HH
