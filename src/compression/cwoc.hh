/**
 * @file
 * Compressed Word-Organized Cache set for Footprint-Aware Compression
 * (Section 8.2). Like the plain WOC, lines occupy power-of-two
 * aligned slot groups chosen by size-based random replacement — but
 * the group may hold *more* words than slots, because the used words
 * are stored compressed. The head entry carries the represented-word
 * and dirty masks and the group's slot count (the paper: "the
 * tag-entries in WOC are modified to support both compressed and
 * uncompressed lines").
 */

#ifndef DISTILLSIM_COMPRESSION_CWOC_HH
#define DISTILLSIM_COMPRESSION_CWOC_HH

#include <cstdint>
#include <vector>

#include "common/footprint.hh"
#include "common/random.hh"
#include "common/types.hh"
#include "distill/woc.hh"

namespace ldis
{

/** One compressed-WOC tag entry. */
struct CWocEntry
{
    bool valid = false;
    bool head = false;
    LineAddr line = 0;

    // Head-only fields.
    Footprint words;       //!< words represented by the group
    Footprint dirty;       //!< dirty subset
    std::uint8_t slots = 0; //!< 8B slots occupied (power of two)
};

/** The compressed WOC portion of one FAC set. */
class CompressedWocSet
{
  public:
    explicit CompressedWocSet(unsigned num_entries);

    /** Words of @p line represented here (empty if absent). */
    Footprint wordsOf(LineAddr line) const;

    /** Dirty words of @p line. */
    Footprint dirtyWordsOf(LineAddr line) const;

    bool
    linePresent(LineAddr line) const
    {
        return !wordsOf(line).empty();
    }

    /**
     * Install @p line's used words into @p slots aligned entries
     * (slots = power of two <= 8, already accounting for the
     * compressed size). Evicts overlapping groups wholly.
     */
    void install(LineAddr line, Footprint used, Footprint dirty,
                 unsigned slots, Random &rng,
                 std::vector<WocEvicted> &evicted_out);

    /** Remove @p line; returns its words/dirty masks. */
    WocEvicted invalidateLine(LineAddr line);

    /** Mark words of a resident line dirty. */
    void markDirty(LineAddr line, Footprint words);

    /** Evict everything. */
    void flush(std::vector<WocEvicted> &evicted_out);

    unsigned numEntries() const
    {
        return static_cast<unsigned>(entries.size());
    }

    unsigned validEntryCount() const;
    unsigned lineCount() const;
    const CWocEntry &entry(unsigned i) const { return entries[i]; }

    /** Structural invariants (group shape, alignment, uniqueness). */
    bool checkIntegrity() const;

  private:
    int headOf(LineAddr line) const;
    void evictGroup(unsigned head,
                    std::vector<WocEvicted> &evicted_out);

    std::vector<CWocEntry> entries;
};

} // namespace ldis

#endif // DISTILLSIM_COMPRESSION_CWOC_HH
