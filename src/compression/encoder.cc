#include "encoder.hh"

#include "common/intmath.hh"
#include "compression/fpc.hh"

namespace ldis
{

unsigned
compressedBytes(const ValueModel &model, LineAddr line,
                Footprint words)
{
    unsigned bits = 0;
    for (WordIdx w = 0; w < kWordsPerLine; ++w) {
        if (!words.test(w))
            continue;
        // Each 8B word is two 32-bit dwords.
        bits += encodedBits(model.dword(line, 2 * w));
        bits += encodedBits(model.dword(line, 2 * w + 1));
    }
    return static_cast<unsigned>(divCeil(bits, 8));
}

unsigned
compressedBytes(EncoderKind kind, const ValueModel &model,
                LineAddr line, Footprint words)
{
    return kind == EncoderKind::Fpc
        ? fpcCompressedBytes(model, line, words)
        : compressedBytes(model, line, words);
}

CompressClass
classifySize(unsigned bytes)
{
    if (bytes <= kLineBytes / 8)
        return CompressClass::OneEighth;
    if (bytes <= kLineBytes / 4)
        return CompressClass::OneFourth;
    if (bytes <= kLineBytes / 2)
        return CompressClass::OneHalf;
    return CompressClass::Full;
}

const char *
compressClassName(CompressClass c)
{
    switch (c) {
      case CompressClass::OneEighth:
        return "one-eighth";
      case CompressClass::OneFourth:
        return "one-fourth";
      case CompressClass::OneHalf:
        return "one-half";
      case CompressClass::Full:
        return "full";
    }
    return "?";
}

} // namespace ldis
