#include "fpc.hh"

#include "common/intmath.hh"

namespace ldis
{

namespace
{

/** True iff @p v sign-extends from its low @p bits bits. */
bool
signExtends(std::uint32_t v, unsigned bits)
{
    std::int32_t s = static_cast<std::int32_t>(v);
    std::int32_t shifted = s >> (bits - 1);
    return shifted == 0 || shifted == -1;
}

} // namespace

unsigned
fpcEncodedBits(std::uint32_t v)
{
    constexpr unsigned prefix = 3;
    if (v == 0)
        return prefix;
    if (signExtends(v, 4))
        return prefix + 4;
    if (signExtends(v, 8))
        return prefix + 8;
    if (signExtends(v, 16))
        return prefix + 16;
    if ((v >> 16) == 0)
        return prefix + 16; // halfword padded with zeros
    // Two sign-extended halfwords (each fits in a signed byte when
    // interpreted as a 16-bit value).
    auto half_fits_byte = [](std::uint32_t h) {
        std::int16_t s = static_cast<std::int16_t>(h);
        std::int16_t shifted = static_cast<std::int16_t>(s >> 7);
        return shifted == 0 || shifted == -1;
    };
    if (half_fits_byte(v >> 16) && half_fits_byte(v & 0xffff))
        return prefix + 16;
    // Repeated bytes.
    std::uint32_t b = v & 0xff;
    if (v == (b | (b << 8) | (b << 16) | (b << 24)))
        return prefix + 8;
    return prefix + 32;
}

unsigned
fpcCompressedBytes(const ValueModel &model, LineAddr line,
                   Footprint words)
{
    unsigned bits = 0;
    for (WordIdx w = 0; w < kWordsPerLine; ++w) {
        if (!words.test(w))
            continue;
        bits += fpcEncodedBits(model.dword(line, 2 * w));
        bits += fpcEncodedBits(model.dword(line, 2 * w + 1));
    }
    return static_cast<unsigned>(divCeil(bits, 8));
}

} // namespace ldis
