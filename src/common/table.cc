#include "table.hh"

#include <cstdio>
#include <sstream>

#include "logging.hh"

namespace ldis
{

Table::Table(std::vector<std::string> headers)
    : headerRow(std::move(headers))
{
    ldis_assert(!headerRow.empty());
}

void
Table::addRow(std::vector<std::string> cells)
{
    ldis_assert(cells.size() == headerRow.size());
    rows.push_back(std::move(cells));
}

std::string
Table::num(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
Table::percent(double fraction, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", precision,
                  fraction * 100.0);
    return buf;
}

std::string
Table::render() const
{
    std::vector<std::size_t> widths(headerRow.size());
    for (std::size_t c = 0; c < headerRow.size(); ++c)
        widths[c] = headerRow[c].size();
    for (const auto &row : rows)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto emit_row = [&](std::ostringstream &out,
                        const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            if (c > 0)
                out << "  ";
            // First column left-aligned, rest right-aligned.
            if (c == 0) {
                out << row[c]
                    << std::string(widths[c] - row[c].size(), ' ');
            } else {
                out << std::string(widths[c] - row[c].size(), ' ')
                    << row[c];
            }
        }
        out << "\n";
    };

    std::ostringstream out;
    emit_row(out, headerRow);
    std::size_t total = 0;
    for (std::size_t c = 0; c < widths.size(); ++c)
        total += widths[c] + (c > 0 ? 2 : 0);
    out << std::string(total, '-') << "\n";
    for (const auto &row : rows)
        emit_row(out, row);
    return out.str();
}

} // namespace ldis
