#include "workshare.hh"

#include "logging.hh"

namespace ldis
{

WorkerLeaseHub::WorkerLeaseHub(unsigned thread_budget)
    : budget(thread_budget ? thread_budget : 1)
{}

WorkerLeaseHub::~WorkerLeaseHub()
{
    {
        std::lock_guard<std::mutex> lock(m);
        ldis_assert(active == 0);
        stopping = true;
        cv.notify_all();
    }
    for (std::thread &t : threads)
        t.join();
}

void
WorkerLeaseHub::setBusyWorkers(unsigned n)
{
    std::lock_guard<std::mutex> lock(m);
    busy = n;
}

unsigned
WorkerLeaseHub::threadBudget() const
{
    return budget;
}

unsigned
WorkerLeaseHub::busyWorkers() const
{
    std::lock_guard<std::mutex> lock(m);
    return busy;
}

unsigned
WorkerLeaseHub::activeHelpers() const
{
    std::lock_guard<std::mutex> lock(m);
    return active;
}

unsigned
WorkerLeaseHub::idleThreads() const
{
    std::lock_guard<std::mutex> lock(m);
    unsigned used = busy + active;
    return used < budget ? budget - used : 0;
}

void
WorkerLeaseHub::helperMain()
{
    for (;;) {
        Task task;
        {
            std::unique_lock<std::mutex> lock(m);
            ++parked;
            cv.wait(lock,
                    [&] { return stopping || !queue.empty(); });
            --parked;
            if (queue.empty())
                return; // stopping and drained
            task = std::move(queue.front());
            queue.pop_front();
        }
        try {
            task.fn();
        } catch (...) {
            std::lock_guard<std::mutex> lock(task.state->m);
            if (!task.state->firstError)
                task.state->firstError = std::current_exception();
        }
        // Return the thread to the budget BEFORE signalling the
        // lease: once Lease::wait() returns, none of its helpers
        // still count against activeHelpers().
        {
            std::lock_guard<std::mutex> lock(m);
            --active;
        }
        {
            std::lock_guard<std::mutex> lock(task.state->m);
            --task.state->running;
            task.state->cv.notify_all();
        }
    }
}

bool
WorkerLeaseHub::Lease::launch(std::function<void()> fn)
{
    if (!state)
        state = std::make_shared<State>();
    std::lock_guard<std::mutex> lock(hub.m);
    if (hub.stopping || hub.busy + hub.active >= hub.budget)
        return false;
    ++hub.active;
    {
        std::lock_guard<std::mutex> slock(state->m);
        ++state->running;
    }
    hub.queue.push_back({std::move(fn), state});
    // Helpers are reused across leases and walks; spawn only when
    // every existing helper is occupied.
    if (hub.parked < hub.queue.size())
        hub.threads.emplace_back(&WorkerLeaseHub::helperMain, &hub);
    hub.cv.notify_one();
    ++launched;
    return true;
}

void
WorkerLeaseHub::Lease::wait()
{
    if (!state)
        return;
    std::unique_lock<std::mutex> lock(state->m);
    state->cv.wait(lock, [&] { return state->running == 0; });
    if (state->firstError && !reported) {
        reported = true;
        std::exception_ptr err = state->firstError;
        lock.unlock();
        std::rethrow_exception(err);
    }
}

WorkerLeaseHub::Lease::~Lease()
{
    if (!state)
        return;
    std::unique_lock<std::mutex> lock(state->m);
    state->cv.wait(lock, [&] { return state->running == 0; });
}

} // namespace ldis
