#include "workshare.hh"

#include "logging.hh"

namespace ldis
{

WorkerLeaseHub::WorkerLeaseHub(unsigned thread_budget)
    : budget(thread_budget ? thread_budget : 1)
{}

WorkerLeaseHub::~WorkerLeaseHub()
{
    // Joining with the hub lock held would deadlock (a parked
    // helper needs it to wake from the queue wait), so move the
    // thread handles out under the lock and join unlocked.
    std::vector<std::thread> to_join;
    {
        ScopedLock lock(m);
        ldis_assert(active == 0);
        stopping = true;
        to_join.swap(threads);
        cv.notify_all();
    }
    for (std::thread &t : to_join)
        t.join();
}

void
WorkerLeaseHub::setBusyWorkers(unsigned n)
{
    ScopedLock lock(m);
    busy = n;
}

unsigned
WorkerLeaseHub::threadBudget() const
{
    return budget;
}

unsigned
WorkerLeaseHub::busyWorkers() const
{
    ScopedLock lock(m);
    return busy;
}

unsigned
WorkerLeaseHub::activeHelpers() const
{
    ScopedLock lock(m);
    return active;
}

unsigned
WorkerLeaseHub::idleThreads() const
{
    ScopedLock lock(m);
    unsigned used = busy + active;
    return used < budget ? budget - used : 0;
}

void
WorkerLeaseHub::helperMain()
{
    for (;;) {
        Task task;
        {
            ScopedLock lock(m);
            ++parked;
            cv.wait(m, [&] {
                m.assertHeld();
                return stopping || !queue.empty();
            });
            --parked;
            if (queue.empty())
                return; // stopping and drained
            task = std::move(queue.front());
            queue.pop_front();
        }
        try {
            task.fn();
        } catch (...) {
            ScopedLock lock(task.state->m);
            if (!task.state->firstError)
                task.state->firstError = std::current_exception();
        }
        // Return the thread to the budget BEFORE signalling the
        // lease: once Lease::wait() returns, none of its helpers
        // still count against activeHelpers().
        {
            ScopedLock lock(m);
            --active;
        }
        {
            ScopedLock lock(task.state->m);
            --task.state->running;
            task.state->cv.notify_all();
        }
    }
}

bool
WorkerLeaseHub::Lease::launch(std::function<void()> fn)
{
    if (!state)
        state = std::make_shared<State>();
    ScopedLock lock(hub.m);
    if (hub.stopping || hub.busy + hub.active >= hub.budget)
        return false;
    ++hub.active;
    {
        // Nested acquisition: hub.m -> State::m (the documented
        // lock order; helperMain never holds both).
        ScopedLock slock(state->m);
        ++state->running;
    }
    hub.queue.push_back({std::move(fn), state});
    // Helpers are reused across leases and walks; spawn only when
    // every existing helper is occupied.
    if (hub.parked < hub.queue.size())
        hub.threads.emplace_back(&WorkerLeaseHub::helperMain, &hub);
    hub.cv.notify_one();
    ++launched;
    return true;
}

void
WorkerLeaseHub::Lease::wait()
{
    if (!state)
        return;
    ScopedLock lock(state->m);
    state->cv.wait(state->m, [&] {
        state->m.assertHeld();
        return state->running == 0;
    });
    if (state->firstError && !reported) {
        reported = true;
        std::exception_ptr err = state->firstError;
        lock.unlock();
        std::rethrow_exception(err);
    }
}

WorkerLeaseHub::Lease::~Lease()
{
    if (!state)
        return;
    ScopedLock lock(state->m);
    state->cv.wait(state->m, [&] {
        state->m.assertHeld();
        return state->running == 0;
    });
}

} // namespace ldis
