/**
 * @file
 * Minimal command-line argument parsing for the simulator tools:
 * --key value and --key=value options plus --flag booleans, with
 * typed accessors and an automatic usage listing. No external
 * dependencies, no global state.
 */

#ifndef DISTILLSIM_COMMON_ARGS_HH
#define DISTILLSIM_COMMON_ARGS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace ldis
{

/** Parsed command line. */
class ArgParser
{
  public:
    /**
     * Declare an option before parsing.
     * @param name option name without the leading dashes
     * @param help one-line description for usage()
     * @param default_value shown in usage; "" for flags
     */
    void addOption(const std::string &name, const std::string &help,
                   const std::string &default_value = "");

    /** Declare a boolean flag. */
    void addFlag(const std::string &name, const std::string &help);

    /**
     * Parse argv. Unknown options or missing values set an error
     * (check ok()/error()).
     * @return true on success
     */
    bool parse(int argc, const char *const *argv);

    bool ok() const { return errorText.empty(); }
    const std::string &error() const { return errorText; }

    /** True iff the option/flag appeared on the command line. */
    bool has(const std::string &name) const;

    /** String value (or the declared default). */
    std::string get(const std::string &name) const;

    /** Integer value; sets an error on malformed input. */
    std::uint64_t getUint(const std::string &name);

    /**
     * Integer value constrained to [lo, hi]. Inherits getUint()'s
     * rejection of negative, malformed and overflowing input, and
     * additionally sets an error when the value falls outside the
     * range (returning lo so callers always hold a legal value).
     */
    std::uint64_t getUintInRange(const std::string &name,
                                 std::uint64_t lo, std::uint64_t hi);

    /** Floating-point value; sets an error on malformed input. */
    double getDouble(const std::string &name);

    /** Positional (non-option) arguments, in order. */
    const std::vector<std::string> &positional() const
    {
        return positionalArgs;
    }

    /** Render the declared options as a usage block. */
    std::string usage(const std::string &program) const;

  private:
    struct Option
    {
        std::string help;
        std::string defaultValue;
        bool isFlag = false;
    };

    std::map<std::string, Option> declared;
    std::vector<std::string> declOrder;
    std::map<std::string, std::string> values;
    std::vector<std::string> positionalArgs;
    std::string errorText;
};

} // namespace ldis

#endif // DISTILLSIM_COMMON_ARGS_HH
