#include "audit.hh"

#include <atomic>
#include <cstdlib>
#include <mutex>

#include "common/logging.hh"

namespace ldis
{
namespace audit
{

namespace
{

// Concurrency story (static wall, DESIGN.md §13): the switchboard
// is lock-free by design — two relaxed atomics read on every audit
// point plus a std::once_flag for the env latch. There is no
// guarded state here, so no capability; the once_flag is the only
// <mutex> machinery and is exempt from the ldis-lint raw-mutex rule
// (it is not a lock the analysis could track).
std::atomic<bool> auditEnabled{false};
std::atomic<std::uint64_t> auditInterval{4096};
std::once_flag envOnce;

/** Latch LDIS_AUDIT / LDIS_AUDIT_INTERVAL once, before first use. */
void
initFromEnv()
{
    if (const char *env = std::getenv("LDIS_AUDIT")) {
        bool off = env[0] == '\0' || (env[0] == '0' && env[1] == '\0');
        auditEnabled.store(!off, std::memory_order_relaxed);
    }
    if (const char *env = std::getenv("LDIS_AUDIT_INTERVAL")) {
        char *end = nullptr;
        unsigned long long v = std::strtoull(env, &end, 10);
        if (end == env || *end != '\0' || v == 0)
            ldis_fatal("LDIS_AUDIT_INTERVAL='%s' is not a positive "
                       "integer", env);
        auditInterval.store(v, std::memory_order_relaxed);
    }
}

} // namespace

bool
enabled()
{
    std::call_once(envOnce, initFromEnv);
    return auditEnabled.load(std::memory_order_relaxed);
}

void
setEnabled(bool on)
{
    std::call_once(envOnce, initFromEnv);
    auditEnabled.store(on, std::memory_order_relaxed);
}

std::uint64_t
interval()
{
    std::call_once(envOnce, initFromEnv);
    return auditInterval.load(std::memory_order_relaxed);
}

void
setInterval(std::uint64_t points)
{
    std::call_once(envOnce, initFromEnv);
    if (points == 0)
        ldis_fatal("audit interval must be positive");
    auditInterval.store(points, std::memory_order_relaxed);
}

void
fail(const char *model, const std::string &violation)
{
    ldis_panic("audit[%s]: %s", model, violation.c_str());
}

} // namespace audit
} // namespace ldis
