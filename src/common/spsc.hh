/**
 * @file
 * Bounded blocking single-producer/single-consumer ring with close
 * semantics, sized for coarse-grained pipeline handoff (the gang
 * replay walk passes 2M-event chunk buffers through depth-2 rings,
 * so a handoff happens every few milliseconds and a mutex + condvar
 * costs nothing while staying trivially TSan-clean).
 *
 * Concurrency shape, made explicit for the thread-safety analysis:
 * every member that both sides touch (the queue and the closed
 * flag) is GUARDED_BY(m); `cap` is immutable after construction and
 * therefore owner-free — there are no owner-only members and no
 * bare atomics, so the ring's whole contract is the one capability.
 *
 * close() is the shutdown edge for both directions: a producer's
 * push() starts failing immediately, while a consumer's pop() keeps
 * draining queued items and only fails once the ring is empty. Either
 * side may close: the producer to signal end-of-stream, the consumer
 * to refuse further input after a failure.
 */

#ifndef DISTILLSIM_COMMON_SPSC_HH
#define DISTILLSIM_COMMON_SPSC_HH

#include <cstddef>
#include <deque>
#include <utility>

#include "common/thread_annotations.hh"

namespace ldis
{

template <typename T>
class SpscRing
{
  public:
    explicit SpscRing(std::size_t capacity)
        : cap(capacity ? capacity : 1)
    {}

    SpscRing(const SpscRing &) = delete;
    SpscRing &operator=(const SpscRing &) = delete;

    /**
     * Block until there is room, then enqueue @p v.
     * @return false iff the ring was closed (item not enqueued)
     */
    bool
    push(T v) LDIS_EXCLUDES(m)
    {
        ScopedLock lock(m);
        cv.wait(m, [&] {
            m.assertHeld();
            return closedFlag || q.size() < cap;
        });
        if (closedFlag)
            return false;
        q.push_back(std::move(v));
        cv.notify_all();
        return true;
    }

    /**
     * Block until an item is available, then dequeue into @p out.
     * @return false iff the ring is closed AND drained
     */
    bool
    pop(T &out) LDIS_EXCLUDES(m)
    {
        ScopedLock lock(m);
        cv.wait(m, [&] {
            m.assertHeld();
            return closedFlag || !q.empty();
        });
        if (q.empty())
            return false;
        out = std::move(q.front());
        q.pop_front();
        cv.notify_all();
        return true;
    }

    /** Fail future pushes; pops drain what is queued, then fail. */
    void
    close() LDIS_EXCLUDES(m)
    {
        ScopedLock lock(m);
        closedFlag = true;
        cv.notify_all();
    }

    bool
    closed() const LDIS_EXCLUDES(m)
    {
        ScopedLock lock(m);
        return closedFlag;
    }

    std::size_t
    size() const LDIS_EXCLUDES(m)
    {
        ScopedLock lock(m);
        return q.size();
    }

    std::size_t capacity() const { return cap; }

  private:
    mutable Mutex m;
    CondVar cv;
    std::deque<T> q LDIS_GUARDED_BY(m);
    const std::size_t cap;
    bool closedFlag LDIS_GUARDED_BY(m) = false;
};

} // namespace ldis

#endif // DISTILLSIM_COMMON_SPSC_HH
