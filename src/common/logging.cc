#include "logging.hh"

namespace ldis
{

namespace detail
{

void
logAndDie(const char *kind, bool abort_process, const char *file,
          int line, const char *fmt, std::va_list args)
{
    std::fprintf(stderr, "%s: ", kind);
    std::vfprintf(stderr, fmt, args);
    std::fprintf(stderr, "\n  at %s:%d\n", file, line);
    std::fflush(stderr);
    if (abort_process)
        std::abort();
    std::exit(1);
}

void
logMessage(const char *kind, const char *fmt, std::va_list args)
{
    std::fprintf(stderr, "%s: ", kind);
    std::vfprintf(stderr, fmt, args);
    std::fprintf(stderr, "\n");
}

} // namespace detail

void
panicImpl(const char *file, int line, const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    detail::logAndDie("panic", true, file, line, fmt, args);
}

void
fatalImpl(const char *file, int line, const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    detail::logAndDie("fatal", false, file, line, fmt, args);
}

void
warn(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    detail::logMessage("warn", fmt, args);
    va_end(args);
}

void
inform(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    detail::logMessage("info", fmt, args);
    va_end(args);
}

} // namespace ldis
