#include "stats.hh"

#include <cstdlib>
#include <mutex>

#include "common/json.hh"

namespace ldis
{
namespace stats
{

namespace
{

std::atomic<bool> statsEnabled{false};
std::once_flag envOnce;

/** Latch LDIS_STATS / LDIS_METRICS once, before first use. */
void
initFromEnv()
{
    if (const char *env = std::getenv("LDIS_STATS")) {
        bool off = env[0] == '\0' || (env[0] == '0' && env[1] == '\0');
        statsEnabled.store(!off, std::memory_order_relaxed);
        return;
    }
    // A metrics sink implies stats: the JSONL summary records carry
    // the registry snapshot, so asking for one turns collection on.
    if (const char *env = std::getenv("LDIS_METRICS")) {
        if (env[0] != '\0')
            statsEnabled.store(true, std::memory_order_relaxed);
    }
}

} // namespace

bool
enabled()
{
    std::call_once(envOnce, initFromEnv);
    return statsEnabled.load(std::memory_order_relaxed);
}

void
setEnabled(bool on)
{
    std::call_once(envOnce, initFromEnv);
    statsEnabled.store(on, std::memory_order_relaxed);
}

void
Histogram::sample(std::uint64_t v)
{
    if (!enabled())
        return;
    unsigned b = 0;
    if (v > 0)
        b = 64 - static_cast<unsigned>(__builtin_clzll(v));
    buckets[b].fetch_add(1, std::memory_order_relaxed);
    total.fetch_add(1, std::memory_order_relaxed);
    sumValues.fetch_add(v, std::memory_order_relaxed);
    // Lock-free running min/max: retry while our sample improves on
    // the published value.
    std::uint64_t seen = minValue.load(std::memory_order_relaxed);
    while (v < seen &&
           !minValue.compare_exchange_weak(seen, v,
                                           std::memory_order_relaxed))
        ;
    seen = maxValue.load(std::memory_order_relaxed);
    while (v > seen &&
           !maxValue.compare_exchange_weak(seen, v,
                                           std::memory_order_relaxed))
        ;
}

std::uint64_t
Histogram::min() const
{
    std::uint64_t v = minValue.load(std::memory_order_relaxed);
    return v == UINT64_MAX ? 0 : v;
}

void
Histogram::reset()
{
    for (auto &b : buckets)
        b.store(0, std::memory_order_relaxed);
    total.store(0, std::memory_order_relaxed);
    sumValues.store(0, std::memory_order_relaxed);
    minValue.store(UINT64_MAX, std::memory_order_relaxed);
    maxValue.store(0, std::memory_order_relaxed);
}

Counter &
StatRegistry::counter(const std::string &name)
{
    ScopedLock lock(mutex);
    return counters[name];
}

Timer &
StatRegistry::timer(const std::string &name)
{
    ScopedLock lock(mutex);
    return timers[name];
}

Histogram &
StatRegistry::histogram(const std::string &name)
{
    ScopedLock lock(mutex);
    return histograms[name];
}

void
StatRegistry::writeJson(JsonWriter &j, const std::string &key) const
{
    ScopedLock lock(mutex);
    j.beginObject(key);
    for (const auto &[name, c] : counters)
        j.field(name, c.value());
    for (const auto &[name, t] : timers) {
        j.beginObject(name);
        j.field("seconds", t.seconds());
        j.field("count", t.count());
        j.endObject();
    }
    for (const auto &[name, h] : histograms) {
        j.beginObject(name);
        j.field("count", h.count());
        j.field("sum", h.sum());
        j.field("min", h.min());
        j.field("max", h.max());
        j.beginObject("buckets");
        for (unsigned b = 0; b < Histogram::kBuckets; ++b) {
            if (h.bucket(b) > 0)
                j.field(std::to_string(b), h.bucket(b));
        }
        j.endObject();
        j.endObject();
    }
    j.endObject();
}

void
StatRegistry::resetAll()
{
    ScopedLock lock(mutex);
    for (auto &[name, c] : counters)
        c.reset();
    for (auto &[name, t] : timers)
        t.reset();
    for (auto &[name, h] : histograms)
        h.reset();
}

StatRegistry &
registry()
{
    static StatRegistry instance;
    return instance;
}

} // namespace stats
} // namespace ldis
