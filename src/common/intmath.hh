/**
 * @file
 * Small integer-math helpers used by cache indexing and the WOC
 * placement logic (power-of-two rounding, logarithms).
 */

#ifndef DISTILLSIM_COMMON_INTMATH_HH
#define DISTILLSIM_COMMON_INTMATH_HH

#include <bit>
#include <cstdint>

#include "logging.hh"

namespace ldis
{

/** True iff @p v is a power of two (zero is not). */
constexpr bool
isPowerOf2(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** floor(log2(v)); panics on v == 0. */
inline unsigned
floorLog2(std::uint64_t v)
{
    ldis_assert(v != 0);
    return 63u - static_cast<unsigned>(std::countl_zero(v));
}

/** ceil(log2(v)); panics on v == 0. */
inline unsigned
ceilLog2(std::uint64_t v)
{
    ldis_assert(v != 0);
    return isPowerOf2(v) ? floorLog2(v) : floorLog2(v) + 1;
}

/** Smallest power of two >= v; panics on v == 0. */
inline std::uint64_t
nextPow2(std::uint64_t v)
{
    return std::uint64_t{1} << ceilLog2(v);
}

/** Integer division rounding up. */
constexpr std::uint64_t
divCeil(std::uint64_t a, std::uint64_t b)
{
    return (a + b - 1) / b;
}

/**
 * Mask with the low @p n bits set. Well-defined for the full
 * [0, 64] range — `(1ull << 64) - 1` is undefined behaviour, and the
 * WOC occupancy math legitimately produces n == 64 (a full 8-way,
 * 64-entry set).
 */
constexpr std::uint64_t
lowMask64(unsigned n)
{
    return n >= 64 ? ~std::uint64_t{0}
                   : (std::uint64_t{1} << n) - 1;
}

/**
 * Byte-SWAR helpers for the 8-entry MRU recency stacks: an 8-way
 * set's MRU-to-LRU way ordering is 8 bytes, so the find-and-shift
 * update on every cache hit runs branchlessly on one 64-bit word
 * instead of a data-dependent loop with unpredictable exits.
 * The stack is packed little-endian: byte 0 = MRU, byte 7 = LRU.
 */

/**
 * Position (0-7) of the byte equal to @p val in @p v. @p val must
 * occur in @p v (the recency stacks are permutations, so it occurs
 * exactly once); the classic zero-byte scan is exact for the lowest
 * match, which is then the only one.
 */
inline unsigned
byteFind(std::uint64_t v, std::uint8_t val)
{
    std::uint64_t x = v ^ (0x0101010101010101ull * val);
    std::uint64_t z = (x - 0x0101010101010101ull) & ~x &
                      0x8080808080808080ull;
    return static_cast<unsigned>(std::countr_zero(z)) >> 3;
}

/**
 * Promote the byte at @p pos to position 0 (MRU), shifting bytes
 * [0, pos) up one position; @p val is the byte being promoted.
 */
inline std::uint64_t
mruPromote(std::uint64_t v, unsigned pos, std::uint8_t val)
{
    std::uint64_t low =
        v & ((std::uint64_t{1} << (8 * pos)) - 1);
    // Bytes above pos, kept in place (two sub-64 shifts each way so
    // pos == 7 never shifts by 64).
    std::uint64_t high =
        ((((v >> (8 * pos)) >> 8) << (8 * pos)) << 8);
    return high | (low << 8) | val;
}

/**
 * Demote the byte at @p pos to position 7 (LRU), shifting bytes
 * (pos, 7] down one position; @p val is the byte being demoted.
 * Only meaningful for full 8-entry stacks.
 */
inline std::uint64_t
mruDemote8(std::uint64_t v, unsigned pos, std::uint8_t val)
{
    std::uint64_t low =
        v & ((std::uint64_t{1} << (8 * pos)) - 1);
    std::uint64_t high = ((v >> (8 * pos)) >> 8) << (8 * pos);
    return low | high | (std::uint64_t{val} << 56);
}

} // namespace ldis

#endif // DISTILLSIM_COMMON_INTMATH_HH
