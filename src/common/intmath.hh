/**
 * @file
 * Small integer-math helpers used by cache indexing and the WOC
 * placement logic (power-of-two rounding, logarithms).
 */

#ifndef DISTILLSIM_COMMON_INTMATH_HH
#define DISTILLSIM_COMMON_INTMATH_HH

#include <bit>
#include <cstdint>

#include "logging.hh"

namespace ldis
{

/** True iff @p v is a power of two (zero is not). */
constexpr bool
isPowerOf2(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** floor(log2(v)); panics on v == 0. */
inline unsigned
floorLog2(std::uint64_t v)
{
    ldis_assert(v != 0);
    return 63u - static_cast<unsigned>(std::countl_zero(v));
}

/** ceil(log2(v)); panics on v == 0. */
inline unsigned
ceilLog2(std::uint64_t v)
{
    ldis_assert(v != 0);
    return isPowerOf2(v) ? floorLog2(v) : floorLog2(v) + 1;
}

/** Smallest power of two >= v; panics on v == 0. */
inline std::uint64_t
nextPow2(std::uint64_t v)
{
    return std::uint64_t{1} << ceilLog2(v);
}

/** Integer division rounding up. */
constexpr std::uint64_t
divCeil(std::uint64_t a, std::uint64_t b)
{
    return (a + b - 1) / b;
}

/**
 * Mask with the low @p n bits set. Well-defined for the full
 * [0, 64] range — `(1ull << 64) - 1` is undefined behaviour, and the
 * WOC occupancy math legitimately produces n == 64 (a full 8-way,
 * 64-entry set).
 */
constexpr std::uint64_t
lowMask64(unsigned n)
{
    return n >= 64 ? ~std::uint64_t{0}
                   : (std::uint64_t{1} << n) - 1;
}

} // namespace ldis

#endif // DISTILLSIM_COMMON_INTMATH_HH
