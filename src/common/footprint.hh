/**
 * @file
 * The footprint bit-vector: one bit per 8B word of a 64B cache line
 * (Section 3 of the paper). Bit i is set once word i has been
 * accessed. Footprints are tracked in the L1D and in the LOC tag
 * store, and drive the distillation decision at LOC eviction.
 */

#ifndef DISTILLSIM_COMMON_FOOTPRINT_HH
#define DISTILLSIM_COMMON_FOOTPRINT_HH

#include <bit>
#include <cstdint>

#include "logging.hh"
#include "types.hh"

namespace ldis
{

/**
 * Fixed-width bit vector with one bit per word in a cache line.
 *
 * Also used for the per-word valid bits of the sectored L1D and the
 * WOC (Section 4.2): the representation is identical, only the
 * interpretation differs.
 */
class Footprint
{
  public:
    /** Construct an all-zeros footprint (no word used). */
    constexpr Footprint() : bits(0) {}

    /** Construct from a raw 8-bit mask. */
    explicit constexpr Footprint(std::uint8_t raw) : bits(raw) {}

    /** A footprint with every word marked used. */
    static constexpr Footprint
    full()
    {
        return Footprint((1u << kWordsPerLine) - 1);
    }

    /** Mark word @p w as used. */
    void
    set(WordIdx w)
    {
        ldis_assert(w < kWordsPerLine);
        bits |= static_cast<std::uint8_t>(1u << w);
    }

    /** True iff word @p w has been used. */
    bool
    test(WordIdx w) const
    {
        ldis_assert(w < kWordsPerLine);
        return (bits >> w) & 1u;
    }

    /** Clear all bits. */
    void reset() { bits = 0; }

    /** Number of used words. */
    unsigned count() const { return std::popcount(bits); }

    /** True iff no word is used. */
    bool empty() const { return bits == 0; }

    /** True iff every word is used. */
    bool isFull() const { return bits == full().bits; }

    /** Raw 8-bit mask. */
    std::uint8_t raw() const { return bits; }

    /** OR-merge (used when an L1D footprint drains into the LOC). */
    Footprint
    operator|(Footprint o) const
    {
        return Footprint(static_cast<std::uint8_t>(bits | o.bits));
    }

    Footprint &
    operator|=(Footprint o)
    {
        bits |= o.bits;
        return *this;
    }

    /** AND-intersection. */
    Footprint
    operator&(Footprint o) const
    {
        return Footprint(static_cast<std::uint8_t>(bits & o.bits));
    }

    bool operator==(const Footprint &) const = default;

  private:
    std::uint8_t bits;
};

} // namespace ldis

#endif // DISTILLSIM_COMMON_FOOTPRINT_HH
