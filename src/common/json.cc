#include "json.hh"

#include <cstdio>

#include "logging.hh"

namespace ldis
{

void
JsonWriter::comma()
{
    if (!needComma.empty()) {
        if (needComma.back())
            out += ',';
        needComma.back() = true;
    }
}

void
JsonWriter::keyPrefix(const std::string &key)
{
    comma();
    if (!key.empty()) {
        out += '"';
        out += escape(key);
        out += "\":";
    }
}

std::string
JsonWriter::escape(const std::string &s)
{
    std::string r;
    r.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':
            r += "\\\"";
            break;
          case '\\':
            r += "\\\\";
            break;
          case '\n':
            r += "\\n";
            break;
          case '\t':
            r += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                r += buf;
            } else {
                r += c;
            }
        }
    }
    return r;
}

void
JsonWriter::beginObject(const std::string &key)
{
    keyPrefix(key);
    out += '{';
    needComma.push_back(false);
}

void
JsonWriter::endObject()
{
    ldis_assert(!needComma.empty());
    needComma.pop_back();
    out += '}';
}

void
JsonWriter::beginArray(const std::string &key)
{
    keyPrefix(key);
    out += '[';
    needComma.push_back(false);
}

void
JsonWriter::endArray()
{
    ldis_assert(!needComma.empty());
    needComma.pop_back();
    out += ']';
}

void
JsonWriter::field(const std::string &key, const std::string &v)
{
    keyPrefix(key);
    out += '"';
    out += escape(v);
    out += '"';
}

void
JsonWriter::field(const std::string &key, const char *v)
{
    field(key, std::string(v));
}

void
JsonWriter::field(const std::string &key, std::uint64_t v)
{
    keyPrefix(key);
    out += std::to_string(v);
}

void
JsonWriter::field(const std::string &key, std::int64_t v)
{
    keyPrefix(key);
    out += std::to_string(v);
}

void
JsonWriter::field(const std::string &key, double v)
{
    keyPrefix(key);
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    out += buf;
}

void
JsonWriter::field(const std::string &key, bool v)
{
    keyPrefix(key);
    out += v ? "true" : "false";
}

void
JsonWriter::value(const std::string &v)
{
    comma();
    out += '"';
    out += escape(v);
    out += '"';
}

void
JsonWriter::value(std::uint64_t v)
{
    comma();
    out += std::to_string(v);
}

void
JsonWriter::value(double v)
{
    comma();
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    out += buf;
}

} // namespace ldis
