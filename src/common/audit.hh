/**
 * @file
 * Invariant-audit engine. Every stateful model exposes an
 * `auditInvariants()` hook that returns a description of the first
 * violated invariant ("" when the state is well-formed); this header
 * supplies the runtime switchboard and the zero-cost-when-off macros
 * that wire those hooks into the simulation hot paths.
 *
 * Two knobs, both independent of the build flag:
 *  - compile-time: the CMake option LDIS_AUDIT defines
 *    LDIS_AUDIT_BUILD and compiles the macro call sites in. Without
 *    it the macros expand to nothing, so Release/bench builds carry
 *    no audit overhead at all (not even a branch).
 *  - run-time: audits only execute when enabled via `ldissim
 *    --audit`, the LDIS_AUDIT=1 environment variable (read once, so
 *    harnesses like fig06_mpki can run audited), or
 *    audit::setEnabled(). Full-state audits fire every interval()
 *    audit points (LDIS_AUDIT_INTERVAL / --audit-interval, default
 *    4096); per-set audits additionally fire on every eviction.
 *
 * Audits are strictly read-only: an audited run produces bit-exact
 * statistics to an unaudited one (enforced by tests/test_audit.cc).
 */

#ifndef DISTILLSIM_COMMON_AUDIT_HH
#define DISTILLSIM_COMMON_AUDIT_HH

#include <cstdint>
#include <string>

namespace ldis
{
namespace audit
{

/** True iff the build carries the audit call sites (LDIS_AUDIT=ON). */
constexpr bool
compiledIn()
{
#if defined(LDIS_AUDIT_BUILD) && LDIS_AUDIT_BUILD
    return true;
#else
    return false;
#endif
}

/**
 * Runtime switch. The first call latches the LDIS_AUDIT environment
 * variable; setEnabled() overrides it. Thread-safe (the RunMatrix
 * workers consult it concurrently).
 */
bool enabled();
void setEnabled(bool on);

/** Full-audit period, in audit points (accesses). Never zero. */
std::uint64_t interval();
void setInterval(std::uint64_t points);

/**
 * Panic with the model name and violation text. @p violation must be
 * non-empty; call sites gate on it (see require()).
 */
[[noreturn]] void fail(const char *model,
                       const std::string &violation);

/** Panic iff @p violation is non-empty. */
inline void
require(const char *model, const std::string &violation)
{
    if (!violation.empty())
        fail(model, violation);
}

/**
 * Per-object countdown deciding when a full-state audit is due.
 * Cheap enough to embed unconditionally; only the macro call sites
 * are compiled out in non-audit builds.
 */
class Clock
{
  public:
    /** True every interval()-th call while audits are enabled. */
    bool
    due()
    {
        if (!enabled()) {
            ticks = 0;
            return false;
        }
        if (++ticks < interval())
            return false;
        ticks = 0;
        return true;
    }

  private:
    std::uint64_t ticks = 0;
};

} // namespace audit
} // namespace ldis

#if defined(LDIS_AUDIT_BUILD) && LDIS_AUDIT_BUILD

/**
 * Full-state audit point (hot paths: one call per access). Runs
 * @p obj.auditInvariants() every interval() calls while enabled.
 */
#define LDIS_AUDIT_POINT(clock, model, obj)                           \
    do {                                                              \
        if ((clock).due())                                            \
            ::ldis::audit::require((model), (obj).auditInvariants()); \
    } while (0)

/**
 * Event-driven audit (eviction paths): evaluates @p expr — typically
 * a per-set audit — on every call while audits are enabled.
 */
#define LDIS_AUDIT_CHECK(model, expr)                                 \
    do {                                                              \
        if (::ldis::audit::enabled())                                 \
            ::ldis::audit::require((model), (expr));                  \
    } while (0)

#else

#define LDIS_AUDIT_POINT(clock, model, obj) ((void)0)
#define LDIS_AUDIT_CHECK(model, expr) ((void)0)

#endif // LDIS_AUDIT_BUILD

#endif // DISTILLSIM_COMMON_AUDIT_HH
