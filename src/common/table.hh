/**
 * @file
 * Plain-text table formatter used by the benchmark harnesses to print
 * the rows/series of each paper table and figure.
 */

#ifndef DISTILLSIM_COMMON_TABLE_HH
#define DISTILLSIM_COMMON_TABLE_HH

#include <string>
#include <vector>

namespace ldis
{

/**
 * Column-aligned ASCII table. Columns are sized to their widest cell;
 * the first column is left-aligned, the rest right-aligned (matching
 * the label-then-numbers layout of the paper's tables).
 */
class Table
{
  public:
    /** Create a table with the given column headers. */
    explicit Table(std::vector<std::string> headers);

    /** Append a row; must have exactly as many cells as headers. */
    void addRow(std::vector<std::string> cells);

    /** Convenience: format a double with @p precision decimals. */
    static std::string num(double v, int precision = 2);

    /** Convenience: format a percentage ("12.3%"). */
    static std::string percent(double fraction, int precision = 1);

    /** Render the table (with a separator under the header row). */
    std::string render() const;

  private:
    std::vector<std::string> headerRow;
    std::vector<std::vector<std::string>> rows;
};

} // namespace ldis

#endif // DISTILLSIM_COMMON_TABLE_HH
