/**
 * @file
 * Fixed-bucket histogram used by the instrumentation experiments
 * (Figure 1: words used per evicted line; Figure 2: maximum recency
 * position before footprint change).
 */

#ifndef DISTILLSIM_COMMON_HISTOGRAM_HH
#define DISTILLSIM_COMMON_HISTOGRAM_HH

#include <cstdint>
#include <vector>

#include "logging.hh"

namespace ldis
{

/** Histogram over integer buckets [0, num_buckets). */
class Histogram
{
  public:
    explicit Histogram(std::size_t num_buckets)
        : buckets(num_buckets, 0), samples(0)
    {
        ldis_assert(num_buckets > 0);
    }

    /** Record one sample in bucket @p b. */
    void
    record(std::size_t b)
    {
        ldis_assert(b < buckets.size());
        ++buckets[b];
        ++samples;
    }

    /** Count in bucket @p b. */
    std::uint64_t
    countAt(std::size_t b) const
    {
        ldis_assert(b < buckets.size());
        return buckets[b];
    }

    /** Fraction of samples in bucket @p b (0 if no samples). */
    double
    fractionAt(std::size_t b) const
    {
        return samples == 0
            ? 0.0
            : static_cast<double>(countAt(b))
                  / static_cast<double>(samples);
    }

    /** Total number of recorded samples. */
    std::uint64_t totalSamples() const { return samples; }

    /** Number of buckets. */
    std::size_t size() const { return buckets.size(); }

    /** Mean of the bucket indices, weighted by counts. */
    double
    mean() const
    {
        if (samples == 0)
            return 0.0;
        double sum = 0.0;
        for (std::size_t b = 0; b < buckets.size(); ++b)
            sum += static_cast<double>(b)
                 * static_cast<double>(buckets[b]);
        return sum / static_cast<double>(samples);
    }

    /** Reset all buckets. */
    void
    clear()
    {
        std::fill(buckets.begin(), buckets.end(), 0);
        samples = 0;
    }

  private:
    std::vector<std::uint64_t> buckets;
    std::uint64_t samples;
};

} // namespace ldis

#endif // DISTILLSIM_COMMON_HISTOGRAM_HH
