#include "args.hh"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <sstream>

namespace ldis
{

namespace
{

/**
 * True iff @p v starts (after the whitespace strtoull itself skips)
 * with a minus sign. strtoull accepts "-5" and silently wraps it to
 * 2^64-5, so unsigned parsing has to reject the sign up front.
 */
bool
leadingMinus(const std::string &v)
{
    std::size_t i = 0;
    while (i < v.size() &&
           std::isspace(static_cast<unsigned char>(v[i])))
        ++i;
    return i < v.size() && v[i] == '-';
}

} // namespace

void
ArgParser::addOption(const std::string &name, const std::string &help,
                     const std::string &default_value)
{
    declared[name] = Option{help, default_value, false};
    declOrder.push_back(name);
}

void
ArgParser::addFlag(const std::string &name, const std::string &help)
{
    declared[name] = Option{help, "", true};
    declOrder.push_back(name);
}

bool
ArgParser::parse(int argc, const char *const *argv)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0) {
            positionalArgs.push_back(arg);
            continue;
        }
        std::string body = arg.substr(2);
        std::string name = body;
        std::string value;
        bool has_inline_value = false;
        std::size_t eq = body.find('=');
        if (eq != std::string::npos) {
            name = body.substr(0, eq);
            value = body.substr(eq + 1);
            has_inline_value = true;
        }
        auto it = declared.find(name);
        if (it == declared.end()) {
            errorText = "unknown option --" + name;
            return false;
        }
        if (it->second.isFlag) {
            if (has_inline_value) {
                errorText = "flag --" + name + " takes no value";
                return false;
            }
            values[name] = "1";
            continue;
        }
        if (!has_inline_value) {
            if (i + 1 >= argc) {
                errorText = "option --" + name + " needs a value";
                return false;
            }
            value = argv[++i];
        }
        values[name] = value;
    }
    return true;
}

bool
ArgParser::has(const std::string &name) const
{
    return values.count(name) > 0;
}

std::string
ArgParser::get(const std::string &name) const
{
    auto it = values.find(name);
    if (it != values.end())
        return it->second;
    auto decl = declared.find(name);
    return decl == declared.end() ? "" : decl->second.defaultValue;
}

std::uint64_t
ArgParser::getUint(const std::string &name)
{
    std::string v = get(name);
    if (leadingMinus(v)) {
        errorText = "option --" + name
                  + " expects a non-negative integer, got '" + v
                  + "'";
        return 0;
    }
    char *end = nullptr;
    errno = 0;
    std::uint64_t out = std::strtoull(v.c_str(), &end, 10);
    if (v.empty() || !end || *end != '\0') {
        errorText = "option --" + name + " expects an integer, got '"
                  + v + "'";
        return 0;
    }
    // strtoull clamps to ULLONG_MAX on overflow instead of failing.
    if (errno == ERANGE) {
        errorText = "option --" + name + " value '" + v
                  + "' is out of range";
        return 0;
    }
    return out;
}

std::uint64_t
ArgParser::getUintInRange(const std::string &name, std::uint64_t lo,
                          std::uint64_t hi)
{
    std::uint64_t out = getUint(name);
    if (!ok())
        return lo;
    if (out < lo || out > hi) {
        errorText = "option --" + name + " expects a value in ["
                  + std::to_string(lo) + ", " + std::to_string(hi)
                  + "], got '" + get(name) + "'";
        return lo;
    }
    return out;
}

double
ArgParser::getDouble(const std::string &name)
{
    std::string v = get(name);
    char *end = nullptr;
    errno = 0;
    double out = std::strtod(v.c_str(), &end);
    if (v.empty() || !end || *end != '\0') {
        errorText = "option --" + name + " expects a number, got '"
                  + v + "'";
        return 0.0;
    }
    // Overflow clamps to ±HUGE_VAL (and underflow to ~0) with
    // ERANGE; both silently distort a sweep parameter, so reject.
    if (errno == ERANGE) {
        errorText = "option --" + name + " value '" + v
                  + "' is out of range";
        return 0.0;
    }
    return out;
}

std::string
ArgParser::usage(const std::string &program) const
{
    std::ostringstream out;
    out << "usage: " << program << " [options]\n";
    for (const std::string &name : declOrder) {
        const Option &opt = declared.at(name);
        out << "  --" << name;
        if (!opt.isFlag) {
            out << " <value>";
            if (!opt.defaultValue.empty())
                out << " (default " << opt.defaultValue << ")";
        }
        out << "\n      " << opt.help << "\n";
    }
    return out.str();
}

} // namespace ldis
