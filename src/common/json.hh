/**
 * @file
 * Minimal JSON emission for machine-readable simulator output
 * (ldissim --json). Write-only, no parsing, no dependencies:
 * supports objects, arrays, strings (escaped), integers, doubles
 * and booleans.
 */

#ifndef DISTILLSIM_COMMON_JSON_HH
#define DISTILLSIM_COMMON_JSON_HH

#include <cstdint>
#include <string>
#include <vector>

namespace ldis
{

/** Streaming JSON writer building into an internal string. */
class JsonWriter
{
  public:
    /** Begin an object ({}); @p key names it inside a parent. */
    void beginObject(const std::string &key = "");

    void endObject();

    /** Begin an array ([]); @p key names it inside a parent. */
    void beginArray(const std::string &key = "");

    void endArray();

    void field(const std::string &key, const std::string &value);
    void field(const std::string &key, const char *value);
    void field(const std::string &key, std::uint64_t value);
    void field(const std::string &key, std::int64_t value);
    void field(const std::string &key, double value);
    void field(const std::string &key, bool value);

    /** Array element values. */
    void value(const std::string &v);
    void value(std::uint64_t v);
    void value(double v);

    /** The serialized document (valid once all scopes closed). */
    const std::string &str() const { return out; }

  private:
    void comma();
    void keyPrefix(const std::string &key);
    static std::string escape(const std::string &s);

    std::string out;
    std::vector<bool> needComma; //!< per open scope
};

} // namespace ldis

#endif // DISTILLSIM_COMMON_JSON_HH
