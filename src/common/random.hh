/**
 * @file
 * Deterministic pseudo-random number generation. Every stochastic
 * decision in the simulator (WOC victim selection, synthetic workload
 * generation) draws from a seeded Xorshift64* stream so that runs are
 * exactly reproducible.
 */

#ifndef DISTILLSIM_COMMON_RANDOM_HH
#define DISTILLSIM_COMMON_RANDOM_HH

#include <cstdint>

#include "logging.hh"

namespace ldis
{

/** Xorshift64* generator: fast, tiny state, adequate quality. */
class Random
{
  public:
    explicit Random(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
        : state(seed ? seed : 1)
    {}

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        std::uint64_t x = state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        state = x;
        return x * 0x2545f4914f6cdd1dull;
    }

    /** Uniform integer in [0, bound); panics on bound == 0. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        ldis_assert(bound != 0);
        return next() % bound;
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t
    between(std::uint64_t lo, std::uint64_t hi)
    {
        ldis_assert(lo <= hi);
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli draw with probability @p p of returning true. */
    bool chance(double p) { return uniform() < p; }

  private:
    std::uint64_t state;
};

} // namespace ldis

#endif // DISTILLSIM_COMMON_RANDOM_HH
