/**
 * @file
 * Fundamental scalar types and geometry constants used across the
 * simulator. The paper models a 64B line partitioned into eight 8B
 * words (the maximum Alpha access size); those constants live here so
 * that every module agrees on the line geometry.
 */

#ifndef DISTILLSIM_COMMON_TYPES_HH
#define DISTILLSIM_COMMON_TYPES_HH

#include <cstdint>

namespace ldis
{

/** Byte address in the simulated 40-bit physical address space. */
using Addr = std::uint64_t;

/** Simulated clock cycle count. */
using Cycle = std::uint64_t;

/** Retired (or traced) instruction count. */
using InstCount = std::uint64_t;

/** Width of the simulated physical address space, in bits. */
inline constexpr unsigned kPhysAddrBits = 40;

/** Cache line size used throughout the paper's evaluation. */
inline constexpr unsigned kLineBytes = 64;

/** Word size: maximum memory access size of an Alpha instruction. */
inline constexpr unsigned kWordBytes = 8;

/** Number of words in a cache line (64B / 8B = 8). */
inline constexpr unsigned kWordsPerLine = kLineBytes / kWordBytes;

/** An address with the line-offset bits stripped (addr / 64). */
using LineAddr = std::uint64_t;

/** Index of a word within its line, in [0, kWordsPerLine). */
using WordIdx = unsigned;

/** Convert a byte address to its line address. */
constexpr LineAddr
lineAddrOf(Addr addr)
{
    return addr / kLineBytes;
}

/** Convert a line address back to the byte address of its first byte. */
constexpr Addr
lineBaseOf(LineAddr line)
{
    return line * kLineBytes;
}

/** Word index of a byte address within its line. */
constexpr WordIdx
wordIdxOf(Addr addr)
{
    return static_cast<WordIdx>((addr / kWordBytes) % kWordsPerLine);
}

} // namespace ldis

#endif // DISTILLSIM_COMMON_TYPES_HH
