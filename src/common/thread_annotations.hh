/**
 * @file
 * Compile-time concurrency wall, part one: Clang thread-safety
 * annotation macros plus the annotated lock vocabulary the whole
 * tree uses in place of raw `std::mutex`.
 *
 * The macros expand to Clang's `capability` attribute family when
 * the analysis is available (`-Wthread-safety -Wthread-safety-beta`,
 * promoted to errors by the clang-thread-safety CI job) and to
 * nothing everywhere else, so GCC builds are byte-identical to the
 * pre-annotation tree. The vocabulary:
 *
 *  - ldis::Mutex       annotated std::mutex (a CAPABILITY)
 *  - ldis::ScopedLock  RAII guard (SCOPED_CAPABILITY) with manual
 *                      unlock()/lock() for wait-then-rethrow shapes
 *  - ldis::CondVar     condition variable that waits directly on a
 *                      Mutex (std::condition_variable_any under the
 *                      hood; see the class comment for why)
 *
 * Wait predicates run as separate functions (lambdas), which the
 * analysis cannot see through; they re-assert the capability with
 * `Mutex::assertHeld()` — a runtime no-op that tells the analysis
 * "the condition variable re-acquired the lock before calling me".
 *
 * Raw `std::mutex`/`std::condition_variable`/`std::lock_guard`/
 * `std::unique_lock` are banned from src/ and tools/ outside this
 * header by the ldis-lint `raw-mutex` rule (tools/ldis_lint.py), so
 * every lock in the tree is visible to the analysis by construction.
 */

#ifndef DISTILLSIM_COMMON_THREAD_ANNOTATIONS_HH
#define DISTILLSIM_COMMON_THREAD_ANNOTATIONS_HH

#include <condition_variable>
#include <mutex>

#if defined(__clang__) && (!defined(SWIG))
#define LDIS_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define LDIS_THREAD_ANNOTATION(x) // no-op off Clang
#endif

/** Marks a class as a lockable capability (e.g. a mutex type). */
#define LDIS_CAPABILITY(x) LDIS_THREAD_ANNOTATION(capability(x))

/** Marks an RAII class that acquires in its ctor, releases in dtor. */
#define LDIS_SCOPED_CAPABILITY LDIS_THREAD_ANNOTATION(scoped_lockable)

/** Data member readable/writable only while holding @p x. */
#define LDIS_GUARDED_BY(x) LDIS_THREAD_ANNOTATION(guarded_by(x))

/** Pointer member whose pointee is guarded by @p x. */
#define LDIS_PT_GUARDED_BY(x) LDIS_THREAD_ANNOTATION(pt_guarded_by(x))

/** Function that acquires the capability (and does not release it). */
#define LDIS_ACQUIRE(...) \
    LDIS_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/** Function that releases the capability. */
#define LDIS_RELEASE(...) \
    LDIS_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/** Function that may acquire; returns @p b on success. */
#define LDIS_TRY_ACQUIRE(...) \
    LDIS_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/** Caller must hold the capability across the call. */
#define LDIS_REQUIRES(...) \
    LDIS_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/** Caller must NOT hold the capability (deadlock prevention). */
#define LDIS_EXCLUDES(...) \
    LDIS_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/** Lock-ordering declaration: this capability before @p x. */
#define LDIS_ACQUIRED_BEFORE(...) \
    LDIS_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))

/** Lock-ordering declaration: this capability after @p x. */
#define LDIS_ACQUIRED_AFTER(...) \
    LDIS_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/** Runtime no-op asserting the capability is held here. */
#define LDIS_ASSERT_CAPABILITY(x) \
    LDIS_THREAD_ANNOTATION(assert_capability(x))

/** Function returning a reference to the named capability. */
#define LDIS_RETURN_CAPABILITY(x) \
    LDIS_THREAD_ANNOTATION(lock_returned(x))

/** Escape hatch: skip analysis for one function (justify at site). */
#define LDIS_NO_THREAD_SAFETY_ANALYSIS \
    LDIS_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace ldis
{

/**
 * Annotated mutual-exclusion capability. Exactly a std::mutex at
 * runtime; the annotations are what let Clang prove every
 * GUARDED_BY access in the tree is protected.
 */
class LDIS_CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;
    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void lock() LDIS_ACQUIRE() { m.lock(); }
    void unlock() LDIS_RELEASE() { m.unlock(); }
    bool try_lock() LDIS_TRY_ACQUIRE(true) { return m.try_lock(); }

    /**
     * Tell the analysis the lock is held without taking it. Used at
     * the top of condition-variable wait predicates: the predicate
     * is a separate function the analysis cannot see into, but the
     * condvar contract guarantees it runs with the lock held.
     */
    void assertHeld() const LDIS_ASSERT_CAPABILITY(this) {}

  private:
    friend class CondVar;
    std::mutex m;
};

/**
 * RAII lock for an ldis::Mutex. Beyond plain lock_guard semantics
 * it supports the wait-then-rethrow shape (unlock() before throwing
 * so the exception does not propagate with the lock held) and
 * re-locking; the destructor releases only if currently held.
 */
class LDIS_SCOPED_CAPABILITY ScopedLock
{
  public:
    explicit ScopedLock(Mutex &mutex) LDIS_ACQUIRE(mutex)
        : mu(mutex), held(true)
    {
        mu.lock();
    }

    ~ScopedLock() LDIS_RELEASE()
    {
        if (held)
            mu.unlock();
    }

    ScopedLock(const ScopedLock &) = delete;
    ScopedLock &operator=(const ScopedLock &) = delete;

    /** Release early (e.g. before rethrowing an exception). */
    void
    unlock() LDIS_RELEASE()
    {
        held = false;
        mu.unlock();
    }

    /** Re-acquire after an early unlock(). */
    void
    lock() LDIS_ACQUIRE()
    {
        mu.lock();
        held = true;
    }

    bool ownsLock() const { return held; }

  private:
    Mutex &mu;
    bool held;
};

/**
 * Condition variable that waits directly on an ldis::Mutex, so call
 * sites never unwrap an un-annotated native handle (which would
 * punch a hole in the analysis). Implemented over
 * std::condition_variable_any: marginally heavier than the plain
 * std::condition_variable (one internal mutex), which is irrelevant
 * at this tree's wait granularity — chunk handoffs and job
 * scheduling, milliseconds apart — and buys a fully annotated wait.
 */
class CondVar
{
  public:
    CondVar() = default;
    CondVar(const CondVar &) = delete;
    CondVar &operator=(const CondVar &) = delete;

    /**
     * Wait until @p pred holds. The caller must hold @p mutex (a
     * ScopedLock on it counts); pass the Mutex itself, not the
     * guard, so the analysis can match the held capability. @p pred
     * runs with @p mutex held; start it with `mutex.assertHeld()`
     * if it reads guarded state.
     */
    template <typename Pred>
    void
    wait(Mutex &mutex, Pred pred) LDIS_REQUIRES(mutex)
    {
        cv.wait(mutex, pred);
    }

    void notify_one() { cv.notify_one(); }
    void notify_all() { cv.notify_all(); }

  private:
    std::condition_variable_any cv;
};

} // namespace ldis

#endif // DISTILLSIM_COMMON_THREAD_ANNOTATIONS_HH
