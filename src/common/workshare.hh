/**
 * @file
 * Cooperative work-sharing between the experiment runner's job pool
 * and the gang-replay walk: a WorkerLeaseHub owns the process's
 * thread budget and lends helper threads to jobs that can use them
 * (the lane-parallel gang walk), reclaiming capacity as ordinary
 * jobs occupy workers. A walker never spawns threads of its own, so
 * LDIS_JOBS x LDIS_LANES can never oversubscribe the host: at any
 * instant, busy pool workers + granted helpers <= the budget.
 *
 * Grants are best-effort and instantaneous: Lease::launch() either
 * starts @p fn on a (lazily spawned, reused) helper thread right
 * away or returns false; there is no queueing of denied requests.
 * The walk polls again at its next chunk boundary, which is how
 * "the runner grants threads as record jobs finish" falls out
 * without any callback machinery.
 *
 * Lock hierarchy (see DESIGN.md §13): the hub capability `m` and a
 * lease's `State::m` nest only as hub.m -> State::m (inside
 * Lease::launch); helperMain takes them strictly one at a time.
 */

#ifndef DISTILLSIM_COMMON_WORKSHARE_HH
#define DISTILLSIM_COMMON_WORKSHARE_HH

#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/thread_annotations.hh"

namespace ldis
{

class WorkerLeaseHub
{
  public:
    /**
     * @param thread_budget total threads the process may keep busy
     *        (pool workers and leased helpers combined; minimum 1)
     */
    explicit WorkerLeaseHub(unsigned thread_budget);

    /** Joins every helper thread. No lease may still be active. */
    ~WorkerLeaseHub();

    WorkerLeaseHub(const WorkerLeaseHub &) = delete;
    WorkerLeaseHub &operator=(const WorkerLeaseHub &) = delete;

    /**
     * Report how many pool workers are currently running jobs. The
     * runner calls this as jobs start and finish; grants only cover
     * the difference to the budget.
     */
    void setBusyWorkers(unsigned busy) LDIS_EXCLUDES(m);

    unsigned threadBudget() const;
    unsigned busyWorkers() const LDIS_EXCLUDES(m);

    /** Helper threads currently running leased work. */
    unsigned activeHelpers() const LDIS_EXCLUDES(m);

    /** Threads the budget could still grant right now. */
    unsigned idleThreads() const LDIS_EXCLUDES(m);

    /**
     * One job's handle on leased helpers. launch() starts work on a
     * helper if the budget allows; wait() blocks until every helper
     * launched through this lease finished and rethrows the first
     * exception any of them threw. The destructor waits too (without
     * throwing), so a lease can never outlive its stack frame with
     * helpers still running — "no leaked leases" by construction.
     */
    class Lease
    {
      public:
        explicit Lease(WorkerLeaseHub &h) : hub(h) {}
        ~Lease();

        Lease(const Lease &) = delete;
        Lease &operator=(const Lease &) = delete;

        /**
         * Try to start @p fn on a helper thread.
         * @return true iff a thread was granted and the work started
         */
        bool launch(std::function<void()> fn);

        /** Helpers granted to this lease so far. */
        unsigned size() const { return launched; }

        /**
         * Block until every launched helper finished; rethrow the
         * first exception one of them threw (once).
         */
        void wait();

      private:
        friend class WorkerLeaseHub;

        /** Completion state shared with the helpers (outlives us). */
        struct State
        {
            Mutex m;
            CondVar cv;
            unsigned running LDIS_GUARDED_BY(m) = 0;
            std::exception_ptr firstError LDIS_GUARDED_BY(m);
        };

        WorkerLeaseHub &hub;
        std::shared_ptr<State> state;
        unsigned launched = 0;
        bool reported = false;
    };

  private:
    struct Task
    {
        std::function<void()> fn;
        std::shared_ptr<Lease::State> state;
    };

    void helperMain() LDIS_EXCLUDES(m);

    mutable Mutex m;
    CondVar cv;
    std::deque<Task> queue LDIS_GUARDED_BY(m);
    std::vector<std::thread> threads LDIS_GUARDED_BY(m);
    const unsigned budget; //!< immutable after construction
    unsigned busy LDIS_GUARDED_BY(m) = 0;
    //! helpers running (or queued) leased work
    unsigned active LDIS_GUARDED_BY(m) = 0;
    //! helper threads idle in the queue wait
    unsigned parked LDIS_GUARDED_BY(m) = 0;
    bool stopping LDIS_GUARDED_BY(m) = false;
};

} // namespace ldis

#endif // DISTILLSIM_COMMON_WORKSHARE_HH
