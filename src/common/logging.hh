/**
 * @file
 * Minimal gem5-flavoured logging: panic() for simulator bugs (aborts),
 * fatal() for user/configuration errors (exits), warn()/inform() for
 * status. All take printf-style format strings.
 */

#ifndef DISTILLSIM_COMMON_LOGGING_HH
#define DISTILLSIM_COMMON_LOGGING_HH

#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace ldis
{

namespace detail
{

[[noreturn]] void logAndDie(const char *kind, bool abort_process,
                            const char *file, int line,
                            const char *fmt, std::va_list args);

void logMessage(const char *kind, const char *fmt, std::va_list args);

} // namespace detail

/**
 * Report an internal simulator bug and abort. Use when an invariant
 * that no configuration or workload should be able to violate has
 * been violated.
 */
[[noreturn]] void panicImpl(const char *file, int line,
                            const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));

/**
 * Report an unrecoverable user error (bad configuration, invalid
 * arguments) and exit with status 1.
 */
[[noreturn]] void fatalImpl(const char *file, int line,
                            const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));

/** Warn about suspicious but survivable conditions. */
void warn(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print an informational status message. */
void inform(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

#define ldis_panic(...) \
    ::ldis::panicImpl(__FILE__, __LINE__, __VA_ARGS__)
#define ldis_fatal(...) \
    ::ldis::fatalImpl(__FILE__, __LINE__, __VA_ARGS__)

/** Assert a simulator invariant; panics with the condition text. */
#define ldis_assert(cond)                                             \
    do {                                                              \
        if (!(cond)) {                                                \
            ::ldis::panicImpl(__FILE__, __LINE__,                     \
                              "assertion failed: %s", #cond);         \
        }                                                             \
    } while (0)

} // namespace ldis

#endif // DISTILLSIM_COMMON_LOGGING_HH
