/**
 * @file
 * Lightweight run-statistics registry: named counters, timers and
 * log2-bucket histograms that any subsystem can bump without wiring
 * a dependency on the experiment harness. The registry feeds the
 * telemetry JSONL sink (src/sim/telemetry) and the matrix runner's
 * summary records.
 *
 * Same latch pattern as the LDIS_AUDIT engine: collection only
 * happens while enabled() is true, which the first call latches from
 * the environment (LDIS_STATS=1, or implicitly when LDIS_METRICS
 * names a sink) and setEnabled() overrides. When disabled, every
 * recording call is a single relaxed atomic load and a predicted
 * branch — cheap enough that call sites need no compile-time gate,
 * and the registry stays out of the per-access simulation hot path
 * by construction (stats are bumped at job/stream granularity).
 *
 * All entry points are thread-safe: the RunMatrix workers bump
 * counters concurrently, and lookup returns references that stay
 * valid for the registry's lifetime (node-based storage).
 */

#ifndef DISTILLSIM_COMMON_STATS_HH
#define DISTILLSIM_COMMON_STATS_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <string>

#include "common/thread_annotations.hh"

namespace ldis
{

class JsonWriter;

namespace stats
{

/**
 * Runtime switch. The first call latches LDIS_STATS / LDIS_METRICS
 * from the environment; setEnabled() overrides it.
 */
bool enabled();
void setEnabled(bool on);

/** Monotonically increasing event count. */
class Counter
{
  public:
    void
    add(std::uint64_t delta = 1)
    {
        if (enabled())
            count.fetch_add(delta, std::memory_order_relaxed);
    }

    std::uint64_t
    value() const
    {
        return count.load(std::memory_order_relaxed);
    }

    void reset() { count.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<std::uint64_t> count{0};
};

/** Accumulated wall time across scoped sections. */
class Timer
{
  public:
    /** RAII section: samples the clock only while stats are on. */
    class Scope
    {
      public:
        explicit Scope(Timer &t)
            : timer(t), active(enabled()),
              start(active ? std::chrono::steady_clock::now()
                           : std::chrono::steady_clock::time_point{})
        {}

        ~Scope()
        {
            if (active)
                timer.add(std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - start)
                              .count());
        }

        Scope(const Scope &) = delete;
        Scope &operator=(const Scope &) = delete;

      private:
        Timer &timer;
        bool active;
        std::chrono::steady_clock::time_point start;
    };

    void
    add(double secs)
    {
        if (!enabled())
            return;
        nanos.fetch_add(static_cast<std::uint64_t>(secs * 1e9),
                        std::memory_order_relaxed);
        sections.fetch_add(1, std::memory_order_relaxed);
    }

    double
    seconds() const
    {
        return static_cast<double>(
                   nanos.load(std::memory_order_relaxed)) /
               1e9;
    }

    std::uint64_t
    count() const
    {
        return sections.load(std::memory_order_relaxed);
    }

    void
    reset()
    {
        nanos.store(0, std::memory_order_relaxed);
        sections.store(0, std::memory_order_relaxed);
    }

  private:
    std::atomic<std::uint64_t> nanos{0};
    std::atomic<std::uint64_t> sections{0};
};

/**
 * Power-of-two bucket histogram: sample v lands in bucket
 * floor(log2(v)) + 1 (bucket 0 holds v == 0), so bucket b covers
 * [2^(b-1), 2^b). Tracks count/sum/min/max exactly.
 */
class Histogram
{
  public:
    static constexpr unsigned kBuckets = 65;

    void sample(std::uint64_t v);

    std::uint64_t
    count() const
    {
        return total.load(std::memory_order_relaxed);
    }

    std::uint64_t
    sum() const
    {
        return sumValues.load(std::memory_order_relaxed);
    }

    /** Minimum sampled value (0 when empty). */
    std::uint64_t min() const;

    std::uint64_t
    max() const
    {
        return maxValue.load(std::memory_order_relaxed);
    }

    std::uint64_t
    bucket(unsigned b) const
    {
        return buckets[b].load(std::memory_order_relaxed);
    }

    void reset();

  private:
    std::atomic<std::uint64_t> buckets[kBuckets]{};
    std::atomic<std::uint64_t> total{0};
    std::atomic<std::uint64_t> sumValues{0};
    std::atomic<std::uint64_t> minValue{UINT64_MAX};
    std::atomic<std::uint64_t> maxValue{0};
};

/**
 * Name -> stat table. counter()/timer()/histogram() create on first
 * use and return references that remain valid until the registry is
 * destroyed; lookups take a mutex, so call sites that care should
 * hoist the reference out of loops.
 */
class StatRegistry
{
  public:
    Counter &counter(const std::string &name) LDIS_EXCLUDES(mutex);
    Timer &timer(const std::string &name) LDIS_EXCLUDES(mutex);
    Histogram &histogram(const std::string &name)
        LDIS_EXCLUDES(mutex);

    /**
     * Serialize every stat as one JSON object (@p key names it
     * inside an enclosing object): counters as integers, timers as
     * {seconds, count}, histograms as {count, sum, min, max,
     * buckets{...}} with empty buckets omitted. Names are emitted in
     * sorted order so records diff cleanly.
     */
    void writeJson(JsonWriter &j, const std::string &key = "") const
        LDIS_EXCLUDES(mutex);

    /** Zero every stat (tests and repeated in-process runs). */
    void resetAll() LDIS_EXCLUDES(mutex);

  private:
    /**
     * Guards the map *structure* only: the returned Counter/Timer/
     * Histogram references are internally atomic and are bumped
     * lock-free after lookup (node-based maps never move them).
     */
    mutable Mutex mutex;
    std::map<std::string, Counter> counters LDIS_GUARDED_BY(mutex);
    std::map<std::string, Timer> timers LDIS_GUARDED_BY(mutex);
    std::map<std::string, Histogram> histograms
        LDIS_GUARDED_BY(mutex);
};

/** The process-wide registry the simulator subsystems report into. */
StatRegistry &registry();

} // namespace stats
} // namespace ldis

#endif // DISTILLSIM_COMMON_STATS_HH
