/**
 * @file
 * Median-threshold (MT) filtering, Section 5.4. Eight counters track
 * how many LOC evictions had 1..8 words used; an eviction-sum counter
 * tracks the total. Every 4k LOC evictions the median used-word count
 * is recomputed, and lines whose used-word count exceeds the median
 * are not installed in the WOC.
 */

#ifndef DISTILLSIM_DISTILL_MEDIAN_FILTER_HH
#define DISTILLSIM_DISTILL_MEDIAN_FILTER_HH

#include <array>
#include <cstdint>
#include <string>

#include "common/types.hh"

namespace ldis
{

/** Running median-of-used-words estimator with epoch recomputation. */
class MedianFilter
{
  public:
    /**
     * @param epoch_evictions recompute period (4096 in the paper)
     * @param initial_threshold threshold before the first epoch
     *        completes (8 = install everything, i.e. LDIS-Base
     *        behaviour until enough evictions are observed)
     */
    explicit MedianFilter(std::uint64_t epoch_evictions = 4096,
                          unsigned initial_threshold = kWordsPerLine);

    /**
     * Record one LOC eviction with @p words_used words (1..8) and
     * recompute the median at epoch boundaries.
     */
    void recordEviction(unsigned words_used);

    /**
     * Filtering decision: install iff the used-word count does not
     * exceed the current median threshold.
     */
    bool
    shouldInstall(unsigned words_used) const
    {
        return words_used <= threshold;
    }

    /** Current distillation threshold K. */
    unsigned currentThreshold() const { return threshold; }

    /** Evictions observed in the current epoch. */
    std::uint64_t epochEvictions() const { return evictionSum; }

    /**
     * Audit counter bookkeeping: the histogram mass equals the
     * eviction-sum, counter 0 is never used, the epoch has not
     * overrun its recompute boundary, and the threshold is a legal
     * word count.
     * @return "" when well-formed, else the first violation
     */
    std::string auditInvariants() const;

  private:
    /** Test-only state-corruption backdoor (tests/test_audit.cc). */
    friend struct AuditBackdoor;

    void recomputeMedian();

    std::uint64_t epochLen;
    unsigned threshold;

    /** counters[k] = evictions with k words used; index 0 unused. */
    std::array<std::uint64_t, kWordsPerLine + 1> counters{};
    std::uint64_t evictionSum = 0;
};

} // namespace ldis

#endif // DISTILLSIM_DISTILL_MEDIAN_FILTER_HH
