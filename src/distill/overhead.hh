/**
 * @file
 * Analytic storage-overhead model of the distill cache (Table 3).
 * Reproduces the paper's arithmetic: WOC tag entries (valid + dirty +
 * head + tag + word-id), LOC and L1D footprint bits, the MT filter
 * counters, and the reverter's ATD. The paper scales the word size
 * with the line size (always 8 words per line), which is why the
 * relative overhead shrinks for 128B and 256B lines (12.2% -> 7% ->
 * 4%).
 */

#ifndef DISTILLSIM_DISTILL_OVERHEAD_HH
#define DISTILLSIM_DISTILL_OVERHEAD_HH

#include <cstdint>

namespace ldis
{

/** Inputs of the overhead model (paper defaults in braces). */
struct OverheadParams
{
    std::uint64_t cacheBytes = 1 << 20; //!< {1MB}
    unsigned totalWays = 8;             //!< {8}
    unsigned wocWays = 2;               //!< {2}
    unsigned lineBytes = 64;            //!< {64B}
    unsigned wordsPerLine = 8;          //!< {8; word = line/8}
    unsigned physAddrBits = 40;         //!< {40-bit physical space}
    std::uint64_t l1dBytes = 16 * 1024; //!< {16kB}
    unsigned mtCounters = 9;            //!< {8 buckets + sum}
    unsigned mtCounterBytes = 2;        //!< {2B each}
    unsigned leaderSets = 32;           //!< {32}
    unsigned atdEntryBytes = 4;         //!< {4B per ATD entry}
    unsigned baselineTagEntryBytes = 4; //!< {64kB tags / 16k lines}
};

/** Per-component storage breakdown, all in bytes unless noted. */
struct OverheadBreakdown
{
    unsigned wocEntryBits = 0;    //!< bits per WOC tag entry
    std::uint64_t wocEntries = 0; //!< total WOC tag entries
    std::uint64_t wocTagBytes = 0;

    std::uint64_t locEntries = 0; //!< tag entries carrying footprints
    std::uint64_t locFootprintBytes = 0;

    std::uint64_t l1dLines = 0;
    std::uint64_t l1dFootprintBytes = 0;

    std::uint64_t mtBytes = 0;
    std::uint64_t atdBytes = 0;

    std::uint64_t totalBytes = 0;

    std::uint64_t baselineAreaBytes = 0; //!< data + baseline tags
    double percentIncrease = 0.0;        //!< total / baseline area
};

/** Evaluate the Table-3 model for @p params. */
OverheadBreakdown computeOverhead(const OverheadParams &params);

} // namespace ldis

#endif // DISTILLSIM_DISTILL_OVERHEAD_HH
