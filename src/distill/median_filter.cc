#include "median_filter.hh"

#include "common/logging.hh"

namespace ldis
{

MedianFilter::MedianFilter(std::uint64_t epoch_evictions,
                           unsigned initial_threshold)
    : epochLen(epoch_evictions), threshold(initial_threshold)
{
    ldis_assert(epochLen > 0);
    ldis_assert(initial_threshold >= 1 &&
                initial_threshold <= kWordsPerLine);
}

void
MedianFilter::recordEviction(unsigned words_used)
{
    ldis_assert(words_used >= 1 && words_used <= kWordsPerLine);
    ++counters[words_used];
    ++evictionSum;
    if (evictionSum >= epochLen)
        recomputeMedian();
}

void
MedianFilter::recomputeMedian()
{
    // "The median is calculated by adding the counts starting from
    // the first counter ... until one-half of the value of the
    // eviction-sum is reached." (Section 5.4) Round the half up: with
    // floor division an odd, small eviction-sum (e.g. a 1-eviction
    // epoch) yields half == 0 and the loop would return median 1
    // regardless of the counters, biasing the threshold low.
    std::uint64_t half = (evictionSum + 1) / 2;
    std::uint64_t running = 0;
    unsigned median = kWordsPerLine;
    for (unsigned k = 1; k <= kWordsPerLine; ++k) {
        running += counters[k];
        if (running >= half) {
            median = k;
            break;
        }
    }
    threshold = median;

    // Start a fresh epoch so the threshold adapts to phase changes.
    counters.fill(0);
    evictionSum = 0;
}

std::string
MedianFilter::auditInvariants() const
{
    if (threshold < 1 || threshold > kWordsPerLine)
        return "threshold " + std::to_string(threshold) +
               " outside [1, " + std::to_string(kWordsPerLine) + "]";
    if (counters[0] != 0)
        return "eviction recorded with zero words used";
    std::uint64_t mass = 0;
    for (unsigned k = 1; k <= kWordsPerLine; ++k)
        mass += counters[k];
    if (mass != evictionSum)
        return "histogram mass " + std::to_string(mass) +
               " != eviction-sum " + std::to_string(evictionSum);
    // recordEviction() recomputes (and zeroes) at the boundary, so a
    // mid-epoch sum at or past the epoch length means a lost reset.
    if (evictionSum >= epochLen)
        return "epoch overran its recompute boundary";
    return "";
}

} // namespace ldis
