#include "distill_cache.hh"

#include <bit>
#include <cstdio>
#include <cstring>
#include <limits>

#include "common/intmath.hh"
#include "common/logging.hh"

namespace ldis
{

DistillCache::DistillCache(const DistillParams &params)
    : prm(params), rng(params.seed),
      mtFilter(params.fixedThreshold != 0
                   ? std::numeric_limits<std::uint64_t>::max()
                   : params.medianEpoch,
               params.fixedThreshold != 0 ? params.fixedThreshold
                                          : kWordsPerLine)
{
    if (prm.totalWays == 0 || prm.totalWays > kMaxWays)
        ldis_fatal("distill cache: totalWays (%u) must be in [1, %u]",
                   prm.totalWays, kMaxWays);
    if (prm.wocWays == 0 || prm.wocWays >= prm.totalWays)
        ldis_fatal("distill cache: wocWays (%u) must be in "
                   "[1, totalWays)", prm.wocWays);
    std::uint64_t lines = prm.bytes / kLineBytes;
    if (lines % prm.totalWays != 0)
        ldis_fatal("distill cache: capacity does not divide into "
                   "%u ways", prm.totalWays);
    std::uint64_t num_sets = lines / prm.totalWays;
    if (!isPowerOf2(num_sets))
        ldis_fatal("distill cache: set count must be a power of two");
    setsCount = static_cast<unsigned>(num_sets);

    unsigned woc_entries = prm.wocWays * kWordsPerLine;
    sets.reserve(setsCount);
    for (unsigned i = 0; i < setsCount; ++i)
        sets.emplace_back(woc_entries, prm.wocVictim);
    // Worst case per WOC install is one eviction per entry slot;
    // reserving once keeps the eviction paths allocation-free.
    scratchEvicted.reserve(woc_entries);

    if (prm.useReverter) {
        CacheGeometry atd_geom;
        atd_geom.bytes = prm.bytes;
        atd_geom.ways = prm.totalWays;
        atd_geom.lineBytes = kLineBytes;
        reverterUnit =
            std::make_unique<Reverter>(atd_geom, prm.reverter);
        for (unsigned i = 0; i < setsCount; ++i)
            sets[i].leader = reverterUnit->isLeader(i);
    }
}

std::string
DistillCache::describe() const
{
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  "distill %lluKB %u-way (LOC %u + WOC %u)%s%s",
                  static_cast<unsigned long long>(prm.bytes / 1024),
                  prm.totalWays, locWays(), prm.wocWays,
                  prm.medianThreshold ? " +MT" : "",
                  prm.useReverter ? " +RC" : "");
    return buf;
}

std::uint64_t
DistillCache::setIndexOf(LineAddr line) const
{
    return line & (setsCount - 1);
}

DistillCache::DSet &
DistillCache::setOf(LineAddr line)
{
    return sets[setIndexOf(line)];
}

unsigned
DistillCache::activeWays(const DSet &s) const
{
    return s.distillMode ? locWays() : prm.totalWays;
}

int
DistillCache::findFrame(const DSet &s, LineAddr line) const
{
    // Scan all kMaxWays entries with a fixed trip count so the
    // compiler unrolls the compares into a branchless match mask.
    // Frames beyond totalWays hold kNoFrameTag, which no real line
    // can equal (installLine asserts), so they never match.
    unsigned m = 0;
    for (unsigned i = 0; i < kMaxWays; ++i)
        m |= static_cast<unsigned>(s.frameTags[i] == line) << i;
    return m ? static_cast<int>(std::countr_zero(m)) : -1;
}

void
DistillCache::touchFrame(DSet &s, unsigned frame_idx)
{
    // The recency stack is a fixed 8-byte array, so promote with one
    // branchless SWAR update. Entries beyond totalWays (when a config
    // uses fewer ways) hold frame indices >= totalWays, stay behind
    // the active ones, and are never matched, so this is exactly the
    // find-and-shift loop it replaces.
    static_assert(kMaxWays == 8, "SWAR promote assumes 8-byte order");
    std::uint64_t v;
    std::memcpy(&v, s.order.data(), 8);
    unsigned pos = byteFind(v, static_cast<std::uint8_t>(frame_idx));
    ldis_assert(pos < prm.totalWays);
    v = mruPromote(v, pos, static_cast<std::uint8_t>(frame_idx));
    std::memcpy(s.order.data(), &v, 8);
}

void
DistillCache::accountWocEvictions(const std::vector<WocEvicted> &evs)
{
    for (const WocEvicted &ev : evs) {
        ++extra.wocEvictions;
        if (!ev.dirty.empty())
            ++statsData.writebacks;
    }
}

void
DistillCache::handleLocEviction(DSet &s, const CacheLineState &victim)
{
    ldis_assert(victim.valid);
    ++statsData.evictions;

    // Instruction lines are never distilled (Section 4); neither is
    // anything when the set operates traditionally.
    bool distillable = s.distillMode && !victim.instr;
    if (!distillable) {
        if (!victim.dirtyWords.empty() || victim.dirty)
            ++statsData.writebacks;
        return;
    }

    Footprint used = victim.footprint;
    // The demand word is set at install, so the footprint is never
    // empty for a line that entered through access(); be defensive
    // about lines merged in other ways.
    if (used.empty()) {
        if (!victim.dirtyWords.empty())
            ++statsData.writebacks;
        return;
    }

    unsigned count = used.count();
    mtFilter.recordEviction(count);
    if (prm.medianThreshold && !mtFilter.shouldInstall(count)) {
        ++extra.mtFiltered;
        if (!victim.dirtyWords.empty())
            ++statsData.writebacks;
        return;
    }

    scratchEvicted.clear();
    s.woc.install(victim.line, used, victim.dirtyWords, rng,
                  scratchEvicted);
    accountWocEvictions(scratchEvicted);
    ++extra.wocInstalls;
    extra.wordsRetained += count;
    extra.wordsDiscarded += kWordsPerLine - count;
    LDIS_AUDIT_CHECK("DistillCache", auditEvictionScratch(s));
}

CacheLineState &
DistillCache::installLine(DSet &s, LineAddr line, bool instr)
{
    ldis_assert(line != kNoFrameTag);
    unsigned active = activeWays(s);

    // Prefer an invalid active frame.
    int victim_frame = -1;
    for (unsigned i = 0; i < active; ++i) {
        if (s.frameTags[i] == kNoFrameTag) {
            victim_frame = static_cast<int>(i);
            break;
        }
    }
    if (victim_frame < 0) {
        // LRU among active frames: scan the order list from the LRU
        // end for the first active frame.
        for (unsigned i = prm.totalWays; i-- > 0;) {
            if (s.order[i] < active) {
                victim_frame = s.order[i];
                break;
            }
        }
        ldis_assert(victim_frame >= 0);
        handleLocEviction(s, s.frames[victim_frame]);
    }

    unsigned vf = static_cast<unsigned>(victim_frame);
    CacheLineState fresh;
    fresh.line = line;
    fresh.valid = true;
    fresh.instr = instr;
    s.frames[vf] = fresh;
    s.frameTags[vf] = line;
    touchFrame(s, vf);
    return s.frames[vf];
}

void
DistillCache::transition(DSet &s, bool distill)
{
    if (s.distillMode == distill)
        return;
    ++extra.modeSwitches;
    if (!distill) {
        // Distill -> traditional: drop the WOC content (writing back
        // dirty words); the extra line frames start invalid.
        scratchEvicted.clear();
        s.woc.flush(scratchEvicted);
        accountWocEvictions(scratchEvicted);
        s.distillMode = false;
    } else {
        // Traditional -> distill: lines in the extension frames are
        // squeezed out through the normal distillation path.
        s.distillMode = true;
        for (unsigned i = locWays(); i < prm.totalWays; ++i) {
            if (s.frames[i].valid) {
                handleLocEviction(s, s.frames[i]);
                s.frames[i] = CacheLineState{};
                s.frameTags[i] = kNoFrameTag;
            }
        }
    }
}

void
DistillCache::syncMode(DSet &s, std::uint64_t /*set_index*/)
{
    if (!prm.useReverter)
        return;
    // Leaders always distill; a follower only needs to re-derive its
    // mode when the reverter's decision has actually flipped since
    // this set last looked (the epoch check), not on every access.
    if (s.leader) {
        if (!s.distillMode)
            transition(s, true);
        return;
    }
    std::uint32_t epoch = reverterUnit->decisionEpoch();
    if (s.modeEpoch != epoch) {
        s.modeEpoch = epoch;
        transition(s, reverterUnit->ldisEnabled());
    }
}

L2Result
DistillCache::access(Addr addr, bool write, Addr /*pc*/, bool instr)
{
    ++statsData.accesses;
    LineAddr line = lineAddrOf(addr);
    WordIdx word = wordIdxOf(addr);
    std::uint64_t set_index = setIndexOf(line);
    DSet &s = sets[set_index];
    syncMode(s, set_index);

    L2Result res;

    // One frame scan and (on a frame miss) one WOC head walk decide
    // all four outcomes; a resident WOC line always has a non-empty
    // footprint, so `present` doubles as the presence test.
    int fi = findFrame(s, line);
    Footprint present;
    if (fi < 0 && s.distillMode)
        present = s.woc.wordsOf(line);

    if (fi >= 0) {
        // LOC hit (or traditional-mode hit).
        CacheLineState *frame = &s.frames[fi];
        frame->footprint.set(word);
        if (write)
            frame->dirtyWords.set(word);
        touchFrame(s, static_cast<unsigned>(fi));
        ++statsData.locHits;
        res = {L2Outcome::LocHit, Footprint::full(), prm.hitLatency};
        if (frame->prefetched) {
            frame->prefetched = false;
            res.promotedPrefetch = true;
        }
    } else if (!present.empty()) {
        if (present.test(word)) {
            // WOC hit: deliver the resident words (plus their valid
            // bits) after the rearrangement delay.
            if (write)
                s.woc.markDirty(line, Footprint(
                    static_cast<std::uint8_t>(1u << word)));
            ++statsData.wocHits;
            res = {L2Outcome::WocHit, present,
                   prm.hitLatency + prm.wocRearrange};
        } else {
            // Hole miss: invalidate the WOC words (preserving dirty
            // data), fetch the full line from memory into the LOC.
            WocEvicted ev = s.woc.invalidateLine(line);
            ++statsData.holeMisses;
            CacheLineState &fresh = installLine(s, line, instr);
            fresh.footprint.set(word);
            // Dirty words from the WOC copy merge into the fresh
            // line; they stay marked used so a later distillation
            // cannot silently drop them.
            fresh.dirtyWords = ev.dirty;
            fresh.footprint |= ev.dirty;
            if (write)
                fresh.dirtyWords.set(word);
            res = {L2Outcome::HoleMiss, Footprint::full(),
                   prm.hitLatency + prm.memLatency};
            // The install may have distilled a victim; audit only
            // now that the fresh line carries its demand word.
            LDIS_AUDIT_CHECK("DistillCache", auditSet(set_index));
        }
    } else {
        // Line miss.
        if (compulsory.firstTouch(line))
            ++statsData.compulsoryMisses;
        ++statsData.lineMisses;
        CacheLineState &fresh = installLine(s, line, instr);
        fresh.footprint.set(word);
        if (write)
            fresh.dirtyWords.set(word);
        res = {L2Outcome::LineMiss, Footprint::full(),
               prm.hitLatency + prm.memLatency};
        // The install may have distilled a victim; audit only now
        // that the fresh line carries its demand word.
        LDIS_AUDIT_CHECK("DistillCache", auditSet(set_index));
    }

    if (prm.useReverter && s.leader)
        reverterUnit->recordLeaderAccess(line, isMiss(res.outcome));

    LDIS_AUDIT_POINT(auditClock, "DistillCache", *this);
    return res;
}

bool
DistillCache::prefetch(LineAddr line)
{
    std::uint64_t set_index = setIndexOf(line);
    DSet &s = sets[set_index];
    syncMode(s, set_index);
    if (findFrame(s, line) >= 0)
        return false;
    if (s.distillMode && s.woc.linePresent(line))
        return false;
    // Install into the LOC with an empty footprint: if nothing
    // touches the line before eviction there is nothing to distill
    // and the line is silently discarded. The reverter's ATD does
    // not observe prefetches (they are not demand traffic).
    installLine(s, line, false).prefetched = true;
    return true;
}

void
DistillCache::l1dEviction(LineAddr line, Footprint used,
                          Footprint dirty_words)
{
    DSet &s = setOf(line);
    if (int fi = findFrame(s, line); fi >= 0) {
        s.frames[fi].footprint |= used;
        s.frames[fi].dirtyWords |= dirty_words;
        return;
    }
    Footprint present =
        s.distillMode ? s.woc.wordsOf(line) : Footprint{};
    if (!present.empty()) {
        Footprint in_woc = dirty_words & present;
        s.woc.markDirty(line, in_woc);
        // Dirty words whose WOC slots were filtered away go straight
        // to memory.
        if (!(dirty_words == in_woc))
            ++statsData.writebacks;
        return;
    }
    // Non-inclusive: the line left the L2 entirely.
    if (!dirty_words.empty())
        ++statsData.writebacks;
}

const WocSet &
DistillCache::wocOf(std::uint64_t set_index) const
{
    ldis_assert(set_index < setsCount);
    return sets[set_index].woc;
}

bool
DistillCache::setInDistillMode(std::uint64_t set_index) const
{
    ldis_assert(set_index < setsCount);
    return sets[set_index].distillMode;
}

std::string
DistillCache::auditSet(std::uint64_t set_index) const
{
    ldis_assert(set_index < setsCount);
    const DSet &s = sets[set_index];
    auto in_set = [&](const char *what) {
        return std::string(what) + " in set " +
               std::to_string(set_index);
    };

    // The recency order must be a permutation of the frame indices.
    unsigned seen_frames = 0;
    for (unsigned i = 0; i < prm.totalWays; ++i) {
        unsigned f = s.order[i];
        if (f >= prm.totalWays || (seen_frames & (1u << f)))
            return in_set("recency order is not a permutation");
        seen_frames |= 1u << f;
    }

    for (unsigned f = 0; f < prm.totalWays; ++f) {
        const CacheLineState &frame = s.frames[f];
        if (!frame.valid)
            continue;
        if (setIndexOf(frame.line) != set_index)
            return in_set("frame line maps to a different set");
        if (!((frame.dirtyWords & frame.footprint) ==
              frame.dirtyWords))
            return in_set("dirty words outside the footprint");
        // Demand installs always touch one word; only prefetched
        // lines may sit with an empty footprint.
        if (frame.footprint.empty() && !frame.prefetched)
            return in_set("demand line with an empty footprint");
        for (unsigned g = f + 1; g < prm.totalWays; ++g)
            if (s.frames[g].valid &&
                s.frames[g].line == frame.line)
                return in_set("line occupies two frames");
        // LOC/WOC exclusivity.
        if (s.woc.linePresent(frame.line))
            return in_set("line in both a frame and the WOC");
        // Distill-mode sets must not use the extension frames.
        if (s.distillMode && f >= locWays())
            return in_set("extension frame valid in distill mode");
    }

    // The tag scan array must mirror the frame records exactly (a
    // desync would make findFrame() disagree with the frames).
    for (unsigned f = 0; f < prm.totalWays; ++f) {
        const CacheLineState &frame = s.frames[f];
        LineAddr expect = frame.valid ? frame.line : kNoFrameTag;
        if (s.frameTags[f] != expect)
            return in_set("frame tag array out of sync");
    }

    // Traditional-mode sets must have empty WOCs.
    if (!s.distillMode && s.woc.validEntryCount() != 0)
        return in_set("traditional-mode set with WOC content");
    if (prm.useReverter && reverterUnit->isLeader(set_index) &&
        !s.distillMode)
        return in_set("leader set left distill mode");

    std::string woc_violation = s.woc.auditInvariants();
    if (!woc_violation.empty())
        return in_set("WOC") + ": " + woc_violation;
    return "";
}

std::string
DistillCache::auditInvariants() const
{
    for (unsigned i = 0; i < setsCount; ++i) {
        std::string violation = auditSet(i);
        if (!violation.empty())
            return violation;
    }
    std::string mt_violation = mtFilter.auditInvariants();
    if (!mt_violation.empty())
        return "MT filter: " + mt_violation;
    if (reverterUnit) {
        std::string rc_violation = reverterUnit->auditInvariants();
        if (!rc_violation.empty())
            return "reverter: " + rc_violation;
    }
    return "";
}

std::string
DistillCache::auditEvictionScratch(const DSet &s) const
{
    for (const WocEvicted &ev : scratchEvicted) {
        if (s.woc.linePresent(ev.line))
            return "evicted line " + std::to_string(ev.line) +
                   " still resident in the WOC";
        if (findFrame(s, ev.line) >= 0)
            return "evicted line " + std::to_string(ev.line) +
                   " still resident in a frame";
    }
    return "";
}

} // namespace ldis
