/**
 * @file
 * Word-Organized Cache set (Section 5.1). One WocSet models the WOC
 * tag entries of a single cache set: wocWays * 8 entries, each with
 * valid/dirty/head bits, the owning line address, and a 3-bit
 * word-id.
 *
 * Placement rules from the paper:
 *  - a line occupies nextPow2(#used words) consecutive entries,
 *    aligned to that size (so the words of a line always come from a
 *    single data way);
 *  - only entries that are invalid or carry the head bit are eligible
 *    starting positions for replacement;
 *  - evicting any word of a line evicts the whole line;
 *  - the victim start position is chosen randomly among eligible
 *    candidates (footnote 4: random ~ LRU for variable-size groups).
 */

#ifndef DISTILLSIM_DISTILL_WOC_HH
#define DISTILLSIM_DISTILL_WOC_HH

#include <cstdint>
#include <vector>

#include "common/footprint.hh"
#include "common/random.hh"
#include "common/types.hh"

namespace ldis
{

/** One WOC tag entry (29 bits of real hardware, Table 3). */
struct WocEntry
{
    bool valid = false;
    bool dirty = false;
    bool head = false;
    LineAddr line = 0;
    WordIdx wordId = 0;
};

/** A line evicted (or invalidated) from the WOC. */
struct WocEvicted
{
    LineAddr line = 0;
    Footprint words;   //!< words that were resident
    Footprint dirty;   //!< subset that was dirty
};

/**
 * WOC victim-selection policy. The paper uses random selection
 * (footnote 4: "Random selection is simpler than LRU and has similar
 * performance"); RoundRobin is provided for the ablation study that
 * verifies that insensitivity.
 */
enum class WocVictim
{
    Random,
    RoundRobin,
};

/** The WOC portion of one distill-cache set. */
class WocSet
{
  public:
    /**
     * @param num_entries wocWays * kWordsPerLine tag entries
     * @param policy victim selection among eligible start positions
     */
    explicit WocSet(unsigned num_entries,
                    WocVictim policy = WocVictim::Random);

    /** Words of @p line resident in this set (empty if none). */
    Footprint wordsOf(LineAddr line) const;

    /** Dirty words of @p line resident in this set. */
    Footprint dirtyWordsOf(LineAddr line) const;

    /** True iff any word of @p line is resident. */
    bool
    linePresent(LineAddr line) const
    {
        return !wordsOf(line).empty();
    }

    /**
     * Install the used words of @p line (evicted from the LOC).
     * Occupies nextPow2(used.count()) aligned entries; evicts every
     * line overlapping the chosen position.
     *
     * @param line line address (must not already be resident)
     * @param used footprint of words to install (non-empty)
     * @param dirty dirty subset of @p used
     * @param rng randomness for victim choice
     * @param evicted_out lines wholly evicted to make room
     */
    void install(LineAddr line, Footprint used, Footprint dirty,
                 Random &rng, std::vector<WocEvicted> &evicted_out);

    /**
     * Remove @p line (hole-miss path / mode switch).
     * @return its resident/dirty words (empty if absent)
     */
    WocEvicted invalidateLine(LineAddr line);

    /** Mark @p words of a resident @p line dirty (L1D writeback). */
    void markDirty(LineAddr line, Footprint words);

    /** Evict everything (reverter mode switch). */
    void flush(std::vector<WocEvicted> &evicted_out);

    unsigned numEntries() const
    {
        return static_cast<unsigned>(entries.size());
    }

    unsigned validEntryCount() const;

    /** Number of distinct resident lines. */
    unsigned lineCount() const;

    /** Read-only entry view (tests, integrity checks). */
    const WocEntry &entry(unsigned i) const { return entries[i]; }

    /**
     * Verify structural invariants: heads start groups, group words
     * are contiguous ascending word-ids of one line, groups are
     * power-of-two aligned, no line appears twice.
     * @return true if all invariants hold
     */
    bool checkIntegrity() const;

  private:
    /** Extent [head, end) of the group whose head is at @p head. */
    unsigned groupEnd(unsigned head) const;

    /** Evict the whole group with head entry @p head. */
    void evictGroup(unsigned head,
                    std::vector<WocEvicted> &evicted_out);

    std::vector<WocEntry> entries;
    WocVictim victimPolicy;
    std::uint64_t rrCursor = 0;
};

} // namespace ldis

#endif // DISTILLSIM_DISTILL_WOC_HH
