/**
 * @file
 * Word-Organized Cache set (Section 5.1). One WocSet models the WOC
 * tag entries of a single cache set: wocWays * 8 entries, each with
 * valid/dirty/head bits, the owning line address, and a 3-bit
 * word-id.
 *
 * Placement rules from the paper:
 *  - a line occupies nextPow2(#used words) consecutive entries,
 *    aligned to that size (so the words of a line always come from a
 *    single data way);
 *  - only entries that are invalid or carry the head bit are eligible
 *    starting positions for replacement;
 *  - evicting any word of a line evicts the whole line;
 *  - the victim start position is chosen randomly among eligible
 *    candidates (footnote 4: random ~ LRU for variable-size groups).
 *
 * Representation: the per-entry valid/head/dirty flags live in three
 * 64-bit occupancy masks (bit i = entry i) and the line address /
 * word-id arrays are stored inline, so a whole set is one contiguous
 * block with no heap indirection and lookups are bitmask walks over
 * the group heads rather than full-entry scans.
 */

#ifndef DISTILLSIM_DISTILL_WOC_HH
#define DISTILLSIM_DISTILL_WOC_HH

#include <array>
#include <bit>
#include <cstdint>
#include <string>
#include <vector>

#include "common/footprint.hh"
#include "common/logging.hh"
#include "common/random.hh"
#include "common/types.hh"

namespace ldis
{

/** One WOC tag entry (29 bits of real hardware, Table 3). */
struct WocEntry
{
    bool valid = false;
    bool dirty = false;
    bool head = false;
    LineAddr line = 0;
    WordIdx wordId = 0;
};

/** A line evicted (or invalidated) from the WOC. */
struct WocEvicted
{
    LineAddr line = 0;
    Footprint words;   //!< words that were resident
    Footprint dirty;   //!< subset that was dirty
};

/**
 * WOC victim-selection policy. The paper uses random selection
 * (footnote 4: "Random selection is simpler than LRU and has similar
 * performance"); RoundRobin is provided for the ablation study that
 * verifies that insensitivity.
 */
enum class WocVictim
{
    Random,
    RoundRobin,
};

/** The WOC portion of one distill-cache set. */
class WocSet
{
  public:
    /**
     * Upper bound on entries per set: the occupancy masks are single
     * 64-bit words. wocWays < totalWays <= 8 in every configuration,
     * so 8 ways * 8 words is never exceeded.
     */
    static constexpr unsigned kMaxEntries = 64;

    /**
     * @param num_entries wocWays * kWordsPerLine tag entries
     * @param policy victim selection among eligible start positions
     */
    explicit WocSet(unsigned num_entries,
                    WocVictim policy = WocVictim::Random);

    /**
     * Words of @p line resident in this set (empty if none).
     * Inline so the presence-filter early-out in headOf() folds
     * into the caller's miss path (the overwhelmingly common case
     * is "not resident", answered without a call).
     */
    Footprint
    wordsOf(LineAddr line) const
    {
        Footprint fp;
        int h = headOf(line);
        if (h < 0)
            return fp;
        unsigned end = groupEnd(static_cast<unsigned>(h));
        for (unsigned i = static_cast<unsigned>(h); i < end; ++i)
            fp.set(wordAt[i]);
        return fp;
    }

    /** Dirty words of @p line resident in this set. */
    Footprint
    dirtyWordsOf(LineAddr line) const
    {
        Footprint fp;
        int h = headOf(line);
        if (h < 0)
            return fp;
        unsigned end = groupEnd(static_cast<unsigned>(h));
        for (unsigned i = static_cast<unsigned>(h); i < end; ++i)
            if ((dirtyMask >> i) & 1u)
                fp.set(wordAt[i]);
        return fp;
    }

    /** True iff any word of @p line is resident. */
    bool
    linePresent(LineAddr line) const
    {
        return headOf(line) >= 0;
    }

    /**
     * Install the used words of @p line (evicted from the LOC).
     * Occupies nextPow2(used.count()) aligned entries; evicts every
     * line overlapping the chosen position.
     *
     * @param line line address (must not already be resident)
     * @param used footprint of words to install (non-empty)
     * @param dirty dirty subset of @p used
     * @param rng randomness for victim choice
     * @param evicted_out lines wholly evicted to make room
     */
    void install(LineAddr line, Footprint used, Footprint dirty,
                 Random &rng, std::vector<WocEvicted> &evicted_out);

    /**
     * Remove @p line (hole-miss path / mode switch).
     * @return its resident/dirty words (empty if absent)
     */
    WocEvicted invalidateLine(LineAddr line);

    /** Mark @p words of a resident @p line dirty (L1D writeback). */
    void markDirty(LineAddr line, Footprint words);

    /** Evict everything (reverter mode switch). */
    void flush(std::vector<WocEvicted> &evicted_out);

    unsigned numEntries() const { return entryCount; }

    unsigned
    validEntryCount() const
    {
        return static_cast<unsigned>(std::popcount(validMask));
    }

    /** Number of distinct resident lines. */
    unsigned
    lineCount() const
    {
        return static_cast<unsigned>(std::popcount(headMask));
    }

    /** Read-only entry view (tests, integrity checks). */
    WocEntry
    entry(unsigned i) const
    {
        WocEntry e;
        e.valid = (validMask >> i) & 1u;
        e.dirty = (dirtyMask >> i) & 1u;
        e.head = (headMask >> i) & 1u;
        e.line = e.valid ? lineAt[i] : 0;
        e.wordId = e.valid ? wordAt[i] : 0;
        return e;
    }

    /**
     * Audit structural invariants: heads start groups, group words
     * are contiguous ascending word-ids of one line, groups are
     * power-of-two aligned, no line appears twice, and the flag
     * masks are mutually consistent (dirty/head bits only on valid
     * entries, nothing beyond the entry count).
     * @return "" when well-formed, else the first violation
     */
    std::string auditInvariants() const;

    /** auditInvariants() as a predicate (legacy tests). */
    bool
    checkIntegrity() const
    {
        return auditInvariants().empty();
    }

  private:
    /** Test-only state-corruption backdoor (tests/test_audit.cc). */
    friend struct AuditBackdoor;

    /**
     * Presence-filter bucket of @p line. Residency probes vastly
     * outnumber resident lines (every L2 miss asks the WOC first),
     * so sigCount keeps a per-bucket count of resident lines and
     * headOf answers "absent" without walking the heads whenever the
     * line's bucket is empty. No false negatives: every install /
     * evict path adjusts the count of exactly the lines it moves.
     */
    static unsigned
    sigOf(LineAddr line)
    {
        return static_cast<unsigned>(
            (line * 0x9E3779B97F4A7C15ull) >> 58);
    }

    /** Entry index of @p line's head, or -1 if absent. */
    int
    headOf(LineAddr line) const
    {
        if (sigCount[sigOf(line)] == 0)
            return -1;
        for (std::uint64_t m = headMask; m != 0; m &= m - 1) {
            unsigned h = static_cast<unsigned>(std::countr_zero(m));
            if (lineAt[h] == line)
                return static_cast<int>(h);
        }
        return -1;
    }

    /** Extent [head, end) of the group whose head is at @p head. */
    unsigned
    groupEnd(unsigned head) const
    {
        ldis_assert(((validMask >> head) & 1u) &&
                    ((headMask >> head) & 1u));
        // Group members are the run of valid non-head entries
        // directly after the head (any later group starts with its
        // own head bit).
        std::uint64_t members = validMask & ~headMask;
        unsigned run = head + 1 >= kMaxEntries
            ? 0
            : static_cast<unsigned>(std::countr_one(members >>
                                                    (head + 1)));
        unsigned end = head + 1 + run;
        return end < entryCount ? end : entryCount;
    }

    /** Evict the whole group with head entry @p head. */
    void evictGroup(unsigned head,
                    std::vector<WocEvicted> &evicted_out);

    /**
     * Round-robin pick among ascending candidate starts: the first
     * candidate at or after the cursor's slot position (wrapping).
     * Advances the cursor past the chosen group.
     */
    unsigned pickRoundRobin(const std::uint8_t *starts, unsigned n,
                            unsigned group);

    unsigned entryCount;
    WocVictim victimPolicy;

    /** Bit i set = entry i valid / group head / dirty word. */
    std::uint64_t validMask = 0;
    std::uint64_t headMask = 0;
    std::uint64_t dirtyMask = 0;

    /** Owning line of each valid entry. */
    std::array<LineAddr, kMaxEntries> lineAt{};

    /** Word-id stored in each valid entry. */
    std::array<std::uint8_t, kMaxEntries> wordAt{};

    /** Resident lines per presence-filter bucket (see sigOf). */
    std::array<std::uint8_t, kMaxEntries> sigCount{};

    /** Slot-position cursor for WocVictim::RoundRobin. */
    unsigned rrCursor = 0;
};

} // namespace ldis

#endif // DISTILLSIM_DISTILL_WOC_HH
