#include "overhead.hh"

#include "common/intmath.hh"
#include "common/logging.hh"

namespace ldis
{

OverheadBreakdown
computeOverhead(const OverheadParams &p)
{
    ldis_assert(p.wocWays >= 1 && p.wocWays < p.totalWays);
    ldis_assert(isPowerOf2(p.lineBytes));
    ldis_assert(isPowerOf2(p.wordsPerLine));

    OverheadBreakdown b;

    std::uint64_t lines = p.cacheBytes / p.lineBytes;
    std::uint64_t num_sets = lines / p.totalWays;
    ldis_assert(isPowerOf2(num_sets));

    unsigned offset_bits = floorLog2(p.lineBytes);
    unsigned set_bits = floorLog2(num_sets);
    unsigned tag_bits = p.physAddrBits - offset_bits - set_bits;
    unsigned word_id_bits = floorLog2(p.wordsPerLine);

    // WOC tag entry: valid + dirty + head + tag + word-id.
    b.wocEntryBits = 3 + tag_bits + word_id_bits;
    b.wocEntries = num_sets * p.wocWays * p.wordsPerLine;
    b.wocTagBytes = b.wocEntries * b.wocEntryBits / 8;

    // Footprint bits: one per word, on every tag entry of the cache
    // (the paper counts all 1MB/64B = 16k entries).
    b.locEntries = lines;
    b.locFootprintBytes = b.locEntries * p.wordsPerLine / 8;

    b.l1dLines = p.l1dBytes / p.lineBytes;
    b.l1dFootprintBytes = b.l1dLines * p.wordsPerLine / 8;

    b.mtBytes = static_cast<std::uint64_t>(p.mtCounters)
              * p.mtCounterBytes;

    b.atdBytes = static_cast<std::uint64_t>(p.leaderSets)
               * p.totalWays * p.atdEntryBytes;

    b.totalBytes = b.wocTagBytes + b.locFootprintBytes
                 + b.l1dFootprintBytes + b.mtBytes + b.atdBytes;

    b.baselineAreaBytes =
        p.cacheBytes + lines * p.baselineTagEntryBytes;
    b.percentIncrease = 100.0 * static_cast<double>(b.totalBytes)
                      / static_cast<double>(b.baselineAreaBytes);
    return b;
}

} // namespace ldis
