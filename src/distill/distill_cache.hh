/**
 * @file
 * The Distill Cache (Sections 4 and 5): a set-associative L2 whose
 * sets are split into a Line-Organized Cache (LOC, 6 of 8 ways in the
 * default configuration) and a Word-Organized Cache (WOC, the
 * remaining ways, tagged at word granularity).
 *
 * Lines from memory are installed in the LOC, which tracks a
 * footprint per line (demand words plus footprints drained from the
 * L1D). On LOC eviction the used words are *distilled* into the WOC
 * and the unused words are discarded. Accesses can end four ways:
 * LOC-hit, WOC-hit, hole-miss (line present in WOC, word absent) and
 * line-miss.
 *
 * Optional mechanisms: median-threshold filtering (Section 5.4) and
 * the reverter circuit (Section 5.5). With the reverter, follower
 * sets fall back to a traditional 8-way organization whenever the
 * distilled configuration is losing to the sampled traditional one.
 */

#ifndef DISTILLSIM_DISTILL_DISTILL_CACHE_HH
#define DISTILLSIM_DISTILL_DISTILL_CACHE_HH

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "cache/l2_interface.hh"
#include "common/audit.hh"
#include "cache/set_assoc.hh"
#include "cache/traditional_l2.hh"
#include "common/random.hh"
#include "distill/median_filter.hh"
#include "distill/reverter.hh"
#include "distill/woc.hh"

namespace ldis
{

/** Distill-cache configuration (paper defaults in braces). */
struct DistillParams
{
    /** Total capacity {1MB}. */
    std::uint64_t bytes = 1 << 20;

    /** Total ways per set {8}. */
    unsigned totalWays = 8;

    /** Ways devoted to the WOC {2}; the rest form the LOC. */
    unsigned wocWays = 2;

    /** Enable median-threshold filtering (LDIS-MT). */
    bool medianThreshold = false;

    /** Recompute period of the MT filter {4096 LOC evictions}. */
    std::uint64_t medianEpoch = 4096;

    /**
     * If nonzero, use this fixed distillation threshold K instead of
     * the adaptive median (requires medianThreshold = true). Used by
     * the threshold ablation study, not by any paper configuration.
     */
    unsigned fixedThreshold = 0;

    /** Enable the reverter circuit (LDIS-MT-RC). */
    bool useReverter = false;

    ReverterParams reverter{};

    /** RNG seed for WOC victim selection. */
    std::uint64_t seed = 21;

    /** WOC victim policy {random, per footnote 4}. */
    WocVictim wocVictim = WocVictim::Random;

    /**
     * Latencies: the distill cache pays one extra tag cycle over the
     * baseline's 15 (Section 7.5.2) and two extra cycles on WOC hits
     * to rearrange words (Section 7.4).
     */
    Cycle hitLatency = 16;
    Cycle wocRearrange = 2;
    Cycle memLatency = 400;
};

/** Distill-specific statistics beyond the common L2Stats. */
struct DistillStats
{
    std::uint64_t wocInstalls = 0;    //!< lines distilled into WOC
    std::uint64_t wocEvictions = 0;   //!< lines evicted from WOC
    std::uint64_t mtFiltered = 0;     //!< evictions skipped by MT
    std::uint64_t wordsDiscarded = 0; //!< unused words filtered out
    std::uint64_t wordsRetained = 0;  //!< used words kept in WOC
    std::uint64_t modeSwitches = 0;   //!< reverter set transitions
};

/**
 * The distill cache. `final` so callers holding a concrete
 * `DistillCache` (the gang-replay fast path) devirtualize the
 * per-event access calls.
 */
class DistillCache final : public SecondLevelCache
{
  public:
    explicit DistillCache(const DistillParams &params);

    L2Result access(Addr addr, bool write, Addr pc,
                    bool instr) override;
    void l1dEviction(LineAddr line, Footprint used,
                     Footprint dirty_words) override;
    const L2Stats &stats() const override { return statsData; }
    void
    resetStats() override
    {
        statsData = L2Stats{};
        extra = DistillStats{};
    }
    std::string describe() const override;
    bool prefetch(LineAddr line) override;

    const DistillStats &distillStats() const { return extra; }

    unsigned numSets() const { return setsCount; }
    unsigned locWays() const { return prm.totalWays - prm.wocWays; }

    /** Reverter (nullptr unless configured). */
    const Reverter *reverter() const { return reverterUnit.get(); }

    /** MT filter (always present; consulted only if enabled). */
    const MedianFilter &medianFilter() const { return mtFilter; }

    /** WOC of one set (tests / integrity checks). */
    const WocSet &wocOf(std::uint64_t set_index) const;

    /** True iff @p set_index currently operates in distill mode. */
    bool setInDistillMode(std::uint64_t set_index) const;

    /**
     * Audit one set: recency order is a permutation of the frames,
     * no duplicate lines, dirty words are a subset of the footprint,
     * LOC and WOC never both hold a line, the operating mode matches
     * the frames/WOC occupancy, and the WOC itself is well-formed.
     * @return "" when well-formed, else the first violation
     */
    std::string auditSet(std::uint64_t set_index) const;

    /**
     * auditSet() over every set plus the MT filter and reverter
     * audits (see common/audit.hh).
     */
    std::string auditInvariants() const;

    /** auditInvariants() as a predicate (legacy tests). */
    bool
    checkIntegrity() const
    {
        return auditInvariants().empty();
    }

  public:
    /**
     * Upper bound on totalWays: line frames and the recency order
     * are fixed inline arrays so a whole set (frames + order + WOC
     * masks) is one contiguous block. Every paper configuration uses
     * 8 total ways.
     */
    static constexpr unsigned kMaxWays = 8;

  private:
    /** Test-only state-corruption backdoor (tests/test_audit.cc). */
    friend struct AuditBackdoor;

    /** `frameTags` slot of an invalid frame (cf. SetAssocCache). */
    static constexpr LineAddr kNoFrameTag = ~LineAddr{0};

    struct DSet
    {
        /** Line frames: [0, locWays) = LOC, rest = traditional
         *  extension used only when LDIS is disabled. */
        std::array<CacheLineState, kMaxWays> frames{};

        /**
         * Tag scan array: frameTags[i] mirrors frames[i].line when
         * valid and holds kNoFrameTag otherwise, so findFrame()
         * scans one 64B block instead of the full frame records.
         * Synced at the frame mutation points (installLine,
         * transition) and audited against `frames`.
         */
        std::array<LineAddr, kMaxWays> frameTags{};

        /** Frame indices ordered MRU (front) to LRU (back). */
        std::array<std::uint8_t, kMaxWays> order{};

        WocSet woc;

        /** Operating mode; leaders are always true. */
        bool distillMode = true;

        /** Reverter leader set (precomputed; false without one). */
        bool leader = false;

        /** Last reverter decision epoch this set synced to. */
        std::uint32_t modeEpoch = 0;

        DSet(unsigned woc_entries, WocVictim policy)
            : woc(woc_entries, policy)
        {
            for (unsigned i = 0; i < kMaxWays; ++i) {
                order[i] = static_cast<std::uint8_t>(i);
                frameTags[i] = kNoFrameTag;
            }
        }
    };

    std::uint64_t setIndexOf(LineAddr line) const;
    DSet &setOf(LineAddr line);

    /** Number of line frames usable in the set's current mode. */
    unsigned activeWays(const DSet &s) const;

    /** Frame index of @p line within its set, or -1 on miss. */
    int findFrame(const DSet &s, LineAddr line) const;

    /** Promote @p frame_idx to MRU. */
    void touchFrame(DSet &s, unsigned frame_idx);

    /**
     * Install @p line into a line frame, evicting (and possibly
     * distilling) a victim. Returns the fresh frame.
     */
    CacheLineState &installLine(DSet &s, LineAddr line, bool instr);

    /** Handle a line evicted from the LOC (distill or write back). */
    void handleLocEviction(DSet &s, const CacheLineState &victim);

    /** Account a WOC eviction list (writebacks, stats). */
    void accountWocEvictions(const std::vector<WocEvicted> &evs);

    /**
     * Audit that nothing drained into the eviction scratch buffer is
     * still live in @p s (the scratch must never alias a resident
     * frame or WOC group).
     * @return "" when clean, else the first violation
     */
    std::string auditEvictionScratch(const DSet &s) const;

    /** Lazily align the set's mode with the reverter decision. */
    void syncMode(DSet &s, std::uint64_t set_index);

    /** Switch @p s to @p distill mode, migrating contents. */
    void transition(DSet &s, bool distill);

    DistillParams prm;
    unsigned setsCount;
    std::vector<DSet> sets;
    Random rng;
    MedianFilter mtFilter;
    std::unique_ptr<Reverter> reverterUnit;
    CompulsoryTracker compulsory;
    L2Stats statsData;
    DistillStats extra;
    std::vector<WocEvicted> scratchEvicted;
    audit::Clock auditClock;
};

} // namespace ldis

#endif // DISTILLSIM_DISTILL_DISTILL_CACHE_HH
