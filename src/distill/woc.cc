#include "woc.hh"

#include "common/intmath.hh"
#include "common/logging.hh"

namespace ldis
{

WocSet::WocSet(unsigned num_entries, WocVictim policy)
    : entries(num_entries), victimPolicy(policy)
{
    ldis_assert(num_entries > 0);
    ldis_assert(num_entries % kWordsPerLine == 0);
}

Footprint
WocSet::wordsOf(LineAddr line) const
{
    Footprint fp;
    for (const WocEntry &e : entries)
        if (e.valid && e.line == line)
            fp.set(e.wordId);
    return fp;
}

Footprint
WocSet::dirtyWordsOf(LineAddr line) const
{
    Footprint fp;
    for (const WocEntry &e : entries)
        if (e.valid && e.dirty && e.line == line)
            fp.set(e.wordId);
    return fp;
}

unsigned
WocSet::groupEnd(unsigned head) const
{
    ldis_assert(entries[head].valid && entries[head].head);
    unsigned end = head + 1;
    while (end < entries.size() && entries[end].valid &&
           !entries[end].head && entries[end].line ==
               entries[head].line) {
        ++end;
    }
    return end;
}

void
WocSet::evictGroup(unsigned head, std::vector<WocEvicted> &out)
{
    unsigned end = groupEnd(head);
    WocEvicted ev;
    ev.line = entries[head].line;
    for (unsigned i = head; i < end; ++i) {
        ev.words.set(entries[i].wordId);
        if (entries[i].dirty)
            ev.dirty.set(entries[i].wordId);
        entries[i] = WocEntry{};
    }
    out.push_back(ev);
}

void
WocSet::install(LineAddr line, Footprint used, Footprint dirty,
                Random &rng, std::vector<WocEvicted> &evicted_out)
{
    ldis_assert(!used.empty());
    ldis_assert(!linePresent(line));
    ldis_assert((dirty & used) == dirty);

    unsigned count = used.count();
    unsigned group = static_cast<unsigned>(nextPow2(count));
    ldis_assert(group <= kWordsPerLine);
    ldis_assert(group <= entries.size());

    // Gather eligible start positions: aligned, and either invalid or
    // the head of an existing group. Prefer fully free positions so
    // nothing is evicted needlessly.
    std::vector<unsigned> free_starts;
    std::vector<unsigned> eligible;
    for (unsigned s = 0; s + group <= entries.size(); s += group) {
        const WocEntry &first = entries[s];
        if (!first.valid || first.head) {
            bool all_free = true;
            for (unsigned i = s; i < s + group; ++i)
                if (entries[i].valid)
                    all_free = false;
            if (all_free)
                free_starts.push_back(s);
            else
                eligible.push_back(s);
        }
    }

    unsigned start;
    if (!free_starts.empty()) {
        start = victimPolicy == WocVictim::Random
            ? free_starts[rng.below(free_starts.size())]
            : free_starts[rrCursor++ % free_starts.size()];
    } else {
        // The first entry of each data way is always invalid or a
        // head, so there is always at least one candidate.
        ldis_assert(!eligible.empty());
        start = victimPolicy == WocVictim::Random
            ? eligible[rng.below(eligible.size())]
            : eligible[rrCursor++ % eligible.size()];
    }

    // Evict every line overlapping [start, start+group). Any valid
    // entry in the range belongs to a group whose head is also in
    // range (alignment argument; see design notes), but scan
    // backward for the head to stay robust.
    for (unsigned i = start; i < start + group; ++i) {
        if (!entries[i].valid)
            continue;
        unsigned h = i;
        while (!entries[h].head) {
            ldis_assert(h > 0);
            --h;
        }
        evictGroup(h, evicted_out);
    }

    // Place the used words, ascending word index, head bit on the
    // first.
    unsigned slot = start;
    bool first = true;
    for (WordIdx w = 0; w < kWordsPerLine; ++w) {
        if (!used.test(w))
            continue;
        WocEntry &e = entries[slot++];
        e.valid = true;
        e.head = first;
        e.line = line;
        e.wordId = w;
        e.dirty = dirty.test(w);
        first = false;
    }
    ldis_assert(slot - start == count);
}

WocEvicted
WocSet::invalidateLine(LineAddr line)
{
    WocEvicted ev;
    ev.line = line;
    for (WocEntry &e : entries) {
        if (e.valid && e.line == line) {
            ev.words.set(e.wordId);
            if (e.dirty)
                ev.dirty.set(e.wordId);
            e = WocEntry{};
        }
    }
    return ev;
}

void
WocSet::markDirty(LineAddr line, Footprint words)
{
    for (WocEntry &e : entries)
        if (e.valid && e.line == line && words.test(e.wordId))
            e.dirty = true;
}

void
WocSet::flush(std::vector<WocEvicted> &evicted_out)
{
    for (unsigned i = 0; i < entries.size(); ++i)
        if (entries[i].valid && entries[i].head)
            evictGroup(i, evicted_out);
    // evictGroup clears whole groups, so nothing valid remains.
    ldis_assert(validEntryCount() == 0);
}

unsigned
WocSet::validEntryCount() const
{
    unsigned n = 0;
    for (const WocEntry &e : entries)
        if (e.valid)
            ++n;
    return n;
}

unsigned
WocSet::lineCount() const
{
    unsigned n = 0;
    for (const WocEntry &e : entries)
        if (e.valid && e.head)
            ++n;
    return n;
}

bool
WocSet::checkIntegrity() const
{
    std::vector<LineAddr> seen;
    unsigned i = 0;
    while (i < entries.size()) {
        if (!entries[i].valid) {
            ++i;
            continue;
        }
        // Every valid run must begin with a head entry.
        if (!entries[i].head)
            return false;
        unsigned end = groupEnd(i);
        unsigned size = end - i;
        unsigned slots = static_cast<unsigned>(nextPow2(size));
        // Group must start on its power-of-two alignment boundary.
        if (i % slots != 0)
            return false;
        // Word-ids strictly ascending within the group.
        for (unsigned k = i + 1; k < end; ++k) {
            if (entries[k].line != entries[i].line)
                return false;
            if (entries[k].wordId <= entries[k - 1].wordId)
                return false;
        }
        // No duplicate lines in the set.
        for (LineAddr l : seen)
            if (l == entries[i].line)
                return false;
        seen.push_back(entries[i].line);
        i = end;
    }
    return true;
}

} // namespace ldis
