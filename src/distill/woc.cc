#include "woc.hh"

#include "common/intmath.hh"
#include "common/logging.hh"

namespace ldis
{

WocSet::WocSet(unsigned num_entries, WocVictim policy)
    : entryCount(num_entries), victimPolicy(policy)
{
    ldis_assert(num_entries > 0);
    ldis_assert(num_entries % kWordsPerLine == 0);
    ldis_assert(num_entries <= kMaxEntries);
}

void
WocSet::evictGroup(unsigned head, std::vector<WocEvicted> &out)
{
    unsigned end = groupEnd(head);
    WocEvicted ev;
    ev.line = lineAt[head];
    for (unsigned i = head; i < end; ++i) {
        ev.words.set(wordAt[i]);
        if ((dirtyMask >> i) & 1u)
            ev.dirty.set(wordAt[i]);
    }
    std::uint64_t span = lowMask64(end - head) << head;
    validMask &= ~span;
    headMask &= ~span;
    dirtyMask &= ~span;
    ldis_assert(sigCount[sigOf(ev.line)] > 0);
    --sigCount[sigOf(ev.line)];
    out.push_back(ev);
}

unsigned
WocSet::pickRoundRobin(const std::uint8_t *starts, unsigned n,
                       unsigned group)
{
    ldis_assert(n > 0);
    // Advance over aligned slot positions: take the first candidate
    // at or after the cursor (aligned down to the group size),
    // wrapping to the lowest candidate. This cycles fairly over slot
    // positions regardless of how the candidate list shrinks or
    // grows between installs.
    unsigned base = (rrCursor % entryCount) / group * group;
    unsigned chosen = starts[0];
    for (unsigned i = 0; i < n; ++i) {
        if (starts[i] >= base) {
            chosen = starts[i];
            break;
        }
    }
    rrCursor = chosen + group;
    return chosen;
}

void
WocSet::install(LineAddr line, Footprint used, Footprint dirty,
                Random &rng, std::vector<WocEvicted> &evicted_out)
{
    ldis_assert(!used.empty());
    ldis_assert(!linePresent(line));
    ldis_assert((dirty & used) == dirty);

    unsigned count = used.count();
    unsigned group = static_cast<unsigned>(nextPow2(count));
    ldis_assert(group <= kWordsPerLine);
    ldis_assert(group <= entryCount);

    // Gather eligible start positions: aligned, and either invalid or
    // the head of an existing group. Prefer fully free positions so
    // nothing is evicted needlessly. The candidate lists live on the
    // stack — a set has at most kMaxEntries slots.
    std::uint8_t free_starts[kMaxEntries];
    std::uint8_t eligible[kMaxEntries];
    unsigned n_free = 0;
    unsigned n_elig = 0;
    std::uint64_t window = lowMask64(group);
    for (unsigned s = 0; s + group <= entryCount; s += group) {
        bool first_valid = (validMask >> s) & 1u;
        bool first_head = (headMask >> s) & 1u;
        if (!first_valid || first_head) {
            if (((validMask >> s) & window) == 0)
                free_starts[n_free++] =
                    static_cast<std::uint8_t>(s);
            else
                eligible[n_elig++] = static_cast<std::uint8_t>(s);
        }
    }

    unsigned start;
    if (n_free > 0) {
        start = victimPolicy == WocVictim::Random
            ? free_starts[rng.below(n_free)]
            : pickRoundRobin(free_starts, n_free, group);
    } else {
        // The first entry of each data way is always invalid or a
        // head, so there is always at least one candidate.
        ldis_assert(n_elig > 0);
        start = victimPolicy == WocVictim::Random
            ? eligible[rng.below(n_elig)]
            : pickRoundRobin(eligible, n_elig, group);
    }

    // Evict every line overlapping [start, start+group). Any valid
    // entry in the range belongs to a group whose head is also in
    // range (alignment argument; see design notes), but scan
    // backward for the head to stay robust.
    for (unsigned i = start; i < start + group; ++i) {
        if (!((validMask >> i) & 1u))
            continue;
        unsigned h = i;
        while (!((headMask >> h) & 1u)) {
            ldis_assert(h > 0);
            --h;
        }
        evictGroup(h, evicted_out);
    }

    // Place the used words, ascending word index, head bit on the
    // first.
    unsigned slot = start;
    std::uint8_t raw = used.raw();
    while (raw != 0) {
        WordIdx w = static_cast<WordIdx>(
            std::countr_zero(static_cast<unsigned>(raw)));
        raw = static_cast<std::uint8_t>(raw & (raw - 1));
        validMask |= 1ull << slot;
        if (slot == start)
            headMask |= 1ull << slot;
        if (dirty.test(w))
            dirtyMask |= 1ull << slot;
        lineAt[slot] = line;
        wordAt[slot] = static_cast<std::uint8_t>(w);
        ++slot;
    }
    ldis_assert(slot - start == count);
    ++sigCount[sigOf(line)];
}

WocEvicted
WocSet::invalidateLine(LineAddr line)
{
    WocEvicted ev;
    ev.line = line;
    int h = headOf(line);
    if (h < 0)
        return ev;
    unsigned head = static_cast<unsigned>(h);
    unsigned end = groupEnd(head);
    for (unsigned i = head; i < end; ++i) {
        ev.words.set(wordAt[i]);
        if ((dirtyMask >> i) & 1u)
            ev.dirty.set(wordAt[i]);
    }
    std::uint64_t span = lowMask64(end - head) << head;
    validMask &= ~span;
    headMask &= ~span;
    dirtyMask &= ~span;
    ldis_assert(sigCount[sigOf(line)] > 0);
    --sigCount[sigOf(line)];
    return ev;
}

void
WocSet::markDirty(LineAddr line, Footprint words)
{
    int h = headOf(line);
    if (h < 0)
        return;
    unsigned end = groupEnd(static_cast<unsigned>(h));
    for (unsigned i = static_cast<unsigned>(h); i < end; ++i)
        if (words.test(wordAt[i]))
            dirtyMask |= 1ull << i;
}

void
WocSet::flush(std::vector<WocEvicted> &evicted_out)
{
    // Evict groups in ascending head order; evictGroup clears whole
    // groups, so the mask drains to zero.
    while (headMask != 0) {
        unsigned h =
            static_cast<unsigned>(std::countr_zero(headMask));
        evictGroup(h, evicted_out);
    }
    ldis_assert(validEntryCount() == 0);
}

std::string
WocSet::auditInvariants() const
{
    auto at = [](const char *what, unsigned i) {
        return std::string(what) + " at entry " + std::to_string(i);
    };

    // Flag masks must be consistent: heads and dirty bits only on
    // valid entries, nothing set beyond the entry count.
    std::uint64_t in_range = lowMask64(entryCount);
    if (validMask & ~in_range)
        return "valid bits beyond the entry count";
    if (headMask & ~validMask)
        return "head bit on an invalid entry";
    if (dirtyMask & ~validMask)
        return "dirty bit on an invalid entry";

    LineAddr seen[kMaxEntries];
    unsigned n_seen = 0;
    unsigned i = 0;
    while (i < entryCount) {
        if (!((validMask >> i) & 1u)) {
            ++i;
            continue;
        }
        // Every valid run must begin with a head entry.
        if (!((headMask >> i) & 1u))
            return at("valid run without a head bit", i);
        unsigned end = groupEnd(i);
        unsigned size = end - i;
        unsigned slots = static_cast<unsigned>(nextPow2(size));
        // Group must start on its power-of-two alignment boundary.
        if (i % slots != 0)
            return at("misaligned group", i);
        // Word-ids strictly ascending within the group.
        for (unsigned k = i + 1; k < end; ++k) {
            if (lineAt[k] != lineAt[i])
                return at("group spans two lines", k);
            if (wordAt[k] <= wordAt[k - 1])
                return at("non-ascending word-ids", k);
        }
        // No duplicate lines in the set.
        for (unsigned s = 0; s < n_seen; ++s)
            if (seen[s] == lineAt[i])
                return "line " + std::to_string(lineAt[i]) +
                       " occupies two groups";
        seen[n_seen++] = lineAt[i];
        i = end;
    }

    // The presence filter must count exactly the resident lines per
    // bucket — a stale count would make headOf report false misses.
    std::uint8_t expected[kMaxEntries] = {};
    for (unsigned s = 0; s < n_seen; ++s)
        ++expected[sigOf(seen[s])];
    for (unsigned b = 0; b < kMaxEntries; ++b)
        if (sigCount[b] != expected[b])
            return "presence-filter count out of sync in bucket " +
                   std::to_string(b);
    return "";
}

} // namespace ldis
