/**
 * @file
 * Reverter circuit, Section 5.5: dynamic set sampling with an
 * Auxiliary Tag Directory (ATD) and a saturating policy selector
 * (PSEL) with hysteresis. A handful of leader sets always run LDIS;
 * the ATD models what a traditional cache would have done on those
 * same sets. PSEL moves toward whichever configuration misses less,
 * and the follower sets enable/disable LDIS accordingly.
 */

#ifndef DISTILLSIM_DISTILL_REVERTER_HH
#define DISTILLSIM_DISTILL_REVERTER_HH

#include <cstdint>
#include <string>

#include "cache/set_assoc.hh"
#include "common/types.hh"

namespace ldis
{

/** Reverter configuration (paper defaults in braces). */
struct ReverterParams
{
    /** Number of leader sets {32 of 2048}. */
    unsigned leaderSets = 32;

    /** PSEL saturation maximum {8-bit counter}. */
    unsigned pselMax = 255;

    /** Disable LDIS below this PSEL value {64}. */
    unsigned lowThreshold = 64;

    /** Enable LDIS above this PSEL value {192}. */
    unsigned highThreshold = 192;
};

/**
 * The reverter: owns the ATD (a traditional tag directory covering
 * the leader sets) and the PSEL counter.
 */
class Reverter
{
  public:
    /**
     * @param geom geometry of the modelled traditional cache (the
     *        ATD reuses it; only leader sets are ever touched)
     * @param params sampling/hysteresis parameters
     */
    Reverter(const CacheGeometry &geom, const ReverterParams &params);

    /** True iff @p set_index is a leader set. */
    bool isLeader(std::uint64_t set_index) const;

    /**
     * Process one access to a leader set: replays it against the
     * ATD (a miss there increments PSEL) and records the distill
     * cache's own outcome (a distill miss decrements PSEL).
     *
     * @param line accessed line address (must map to a leader set)
     * @param distill_missed whether the distill cache missed
     */
    void recordLeaderAccess(LineAddr line, bool distill_missed);

    /** Current decision: should follower sets run LDIS? */
    bool ldisEnabled() const { return enabled; }

    /**
     * Decision epoch: bumped every time ldisEnabled() flips. A
     * follower set whose cached epoch matches needs no mode check at
     * all — the hot path compares one integer instead of re-deriving
     * the leader/decision state on every access.
     */
    std::uint32_t decisionEpoch() const { return epochValue; }

    /** Current PSEL value (tests / introspection). */
    unsigned psel() const { return pselValue; }

    /** Storage overhead of the ATD in bytes (Table 3: 1kB). */
    std::uint64_t atdStorageBytes() const;

    /**
     * Audit sampling state: PSEL saturates within [0, pselMax], the
     * decision respects the hysteresis thresholds, the leader stride
     * tiles the set count (so sampled sets are disjoint), only
     * leader sets hold ATD lines, and the ATD itself is well-formed.
     * @return "" when well-formed, else the first violation
     */
    std::string auditInvariants() const;

  private:
    /** Test-only state-corruption backdoor (tests/test_audit.cc). */
    friend struct AuditBackdoor;

    void updateDecision();

    ReverterParams params;
    SetAssocCache atd;
    std::uint64_t leaderStride;
    unsigned pselValue;
    bool enabled;
    std::uint32_t epochValue = 1;
};

} // namespace ldis

#endif // DISTILLSIM_DISTILL_REVERTER_HH
