#include "reverter.hh"

#include "common/logging.hh"

namespace ldis
{

Reverter::Reverter(const CacheGeometry &geom,
                   const ReverterParams &p)
    : params(p), atd(geom),
      pselValue((p.pselMax + 1) / 2), enabled(true)
{
    if (params.leaderSets == 0 ||
        params.leaderSets > atd.numSets()) {
        ldis_fatal("reverter: %u leader sets for a %u-set cache",
                   params.leaderSets, atd.numSets());
    }
    if (atd.numSets() % params.leaderSets != 0)
        ldis_fatal("reverter: leader sets must divide set count");
    if (params.lowThreshold >= params.highThreshold ||
        params.highThreshold > params.pselMax) {
        ldis_fatal("reverter: bad hysteresis thresholds %u/%u",
                   params.lowThreshold, params.highThreshold);
    }
    leaderStride = atd.numSets() / params.leaderSets;
}

bool
Reverter::isLeader(std::uint64_t set_index) const
{
    return set_index % leaderStride == 0;
}

void
Reverter::recordLeaderAccess(LineAddr line, bool distill_missed)
{
    ldis_assert(isLeader(atd.setIndexOf(line)));

    // Replay against the traditional tag directory.
    bool atd_miss;
    if (atd.find(line)) {
        atd.touch(line);
        atd_miss = false;
    } else {
        atd.install(line);
        atd_miss = true;
    }

    if (atd_miss && pselValue < params.pselMax)
        ++pselValue;
    if (distill_missed && pselValue > 0)
        --pselValue;
    updateDecision();
}

void
Reverter::updateDecision()
{
    // Hysteresis (Figure 5B): switch only beyond the outer
    // thresholds; retain the previous decision in between.
    bool was = enabled;
    if (pselValue < params.lowThreshold)
        enabled = false;
    else if (pselValue > params.highThreshold)
        enabled = true;
    if (enabled != was)
        ++epochValue;
}

std::string
Reverter::auditInvariants() const
{
    if (pselValue > params.pselMax)
        return "PSEL " + std::to_string(pselValue) +
               " beyond saturation max " +
               std::to_string(params.pselMax);
    // Hysteresis: outside the dead band the decision is forced.
    if (pselValue < params.lowThreshold && enabled)
        return "LDIS enabled with PSEL below the low threshold";
    if (pselValue > params.highThreshold && !enabled)
        return "LDIS disabled with PSEL above the high threshold";
    if (leaderStride == 0 ||
        leaderStride * params.leaderSets != atd.numSets())
        return "leader stride does not tile the set count";
    // Strided sampling must never leak lines into follower sets.
    std::string follower_line;
    atd.forEachLine([&](const CacheLineState &l) {
        if (!isLeader(atd.setIndexOf(l.line)) &&
            follower_line.empty())
            follower_line = "ATD line in non-leader set " +
                std::to_string(atd.setIndexOf(l.line));
    });
    if (!follower_line.empty())
        return follower_line;
    std::string atd_violation = atd.auditInvariants();
    if (!atd_violation.empty())
        return "ATD: " + atd_violation;
    return "";
}

std::uint64_t
Reverter::atdStorageBytes() const
{
    // 4B per ATD entry (Table 3), ways entries per leader set.
    return static_cast<std::uint64_t>(params.leaderSets)
         * atd.numWays() * 4;
}

} // namespace ldis
