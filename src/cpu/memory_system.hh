/**
 * @file
 * Off-chip timing model (Table 1): 32 DRAM banks at 400-cycle access
 * latency with bank conflicts, at most 32 outstanding requests, and
 * a 16B-wide split-transaction bus running at a 4:1 frequency ratio
 * (so a 64B line transfer occupies the bus for 4 bus cycles = 16 CPU
 * cycles).
 */

#ifndef DISTILLSIM_CPU_MEMORY_SYSTEM_HH
#define DISTILLSIM_CPU_MEMORY_SYSTEM_HH

#include <cstdint>
#include <queue>
#include <vector>

#include "common/types.hh"

namespace ldis
{

/** Memory-system configuration (Table 1 defaults). */
struct MemorySystemParams
{
    unsigned banks = 32;
    Cycle bankLatency = 400;
    unsigned maxOutstanding = 32;

    /** CPU cycles to move one line over the 16B bus at 4:1. */
    Cycle busTransfer = (kLineBytes / 16) * 4;
};

/** Memory-system statistics. */
struct MemorySystemStats
{
    std::uint64_t requests = 0;
    std::uint64_t bankConflicts = 0;
    std::uint64_t mshrStalls = 0;
    Cycle totalLatency = 0;

    double
    avgLatency() const
    {
        return requests == 0
            ? 0.0
            : static_cast<double>(totalLatency)
                  / static_cast<double>(requests);
    }
};

/** Event-free analytic timing of the DRAM + bus path. */
class MemorySystem
{
  public:
    explicit MemorySystem(const MemorySystemParams &params = {});

    /**
     * Schedule a line fetch issued at @p issue_cycle.
     * @return the cycle the line's data is available at the L2
     */
    Cycle lineFetch(LineAddr line, Cycle issue_cycle);

    const MemorySystemStats &stats() const { return statsData; }

  private:
    MemorySystemParams prm;
    std::vector<Cycle> bankFree;
    Cycle busFree = 0;

    /** Completion cycles of in-flight requests (MSHR occupancy). */
    std::priority_queue<Cycle, std::vector<Cycle>,
                        std::greater<Cycle>> inFlight;

    MemorySystemStats statsData;
};

} // namespace ldis

#endif // DISTILLSIM_CPU_MEMORY_SYSTEM_HH
