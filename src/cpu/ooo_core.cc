#include "ooo_core.hh"

#include "common/logging.hh"

namespace ldis
{

namespace
{

std::uint64_t
mix(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/** Synthetic branch PCs live in their own address range. */
constexpr Addr kBranchPcBase = 0x4000000;

/** Loads remembered for address-dependence tracking. */
constexpr unsigned kLoadRingSize = 16;

} // namespace

OooCore::OooCore(const CpuParams &params, Workload &wl,
                 SecondLevelCache &l2_cache,
                 const HierarchyParams &hier)
    : prm(params), workload(wl), l2(l2_cache),
      l1d(hier.l1d, l2_cache, params.l1HitLatency),
      l1i(hier.l1i, l2_cache, 1),
      walker(wl.codeModel(), 0x9876543),
      memory(params.memory), rng(0xb0a710ad),
      retireRing(params.window, 0), loadRing(kLoadRingSize, 0),
      branchCount(params.branchPcPool, 0), recentLines(32, 0)
{
    ldis_assert(prm.width >= 1);
    ldis_assert(prm.window >= 1);
}

Cycle
OooCore::dispatchNext()
{
    if (fetchCycle < fetchStallUntil) {
        fetchCycle = fetchStallUntil;
        fetchedThisCycle = 0;
    }
    if (fetchedThisCycle >= prm.width) {
        ++fetchCycle;
        fetchedThisCycle = 0;
    }
    ++fetchedThisCycle;

    // Window constraint: this instruction reuses the slot of the
    // instruction `window` earlier, which must have retired.
    Cycle window_free = retireRing[seq % prm.window];
    ++seq;
    return std::max(fetchCycle, window_free);
}

void
OooCore::retire(Cycle completion)
{
    lastRetire = std::max(lastRetire, completion);
    retireRing[(seq - 1) % prm.window] = lastRetire;
    ++statsData.instructions;
}

bool
OooCore::branchMispredicts()
{
    // Pick a branch PC from a bounded pool and synthesize a
    // predictable-but-imperfect outcome: a mix of strongly biased,
    // moderately biased and periodic branches, so the hybrid
    // predictor has realistic work to do.
    std::uint64_t h = rng.next();
    unsigned slot = static_cast<unsigned>(h % prm.branchPcPool);
    Addr pc = kBranchPcBase + slot * 4;
    std::uint64_t pc_hash = mix(pc);

    bool outcome;
    switch (pc_hash % 8) {
      case 0:
      case 1:
      case 2:
        // Strongly biased (loop back-edges and error checks).
        outcome = rng.chance(0.98);
        break;
      case 3:
      case 4:
        outcome = !rng.chance(0.96);
        break;
      case 5:
      case 6: {
        // Short periodic pattern: the PAs side learns it.
        std::uint32_t period = 2 + static_cast<std::uint32_t>(
            pc_hash / 7 % 6);
        outcome = (branchCount[slot] % period) != 0;
        break;
      }
      default:
        // Data-dependent branch: hard for any predictor.
        outcome = rng.chance(0.70);
        break;
    }
    ++branchCount[slot];
    return bpred.predictAndUpdate(pc, outcome);
}

void
OooCore::runOp(bool is_branch)
{
    Cycle dispatch = dispatchNext();
    Cycle complete = dispatch + prm.opLatency;
    if (is_branch && branchMispredicts()) {
        // Flush: fetch resumes after the branch resolves plus the
        // minimum redirect penalty.
        fetchStallUntil = std::max(fetchStallUntil,
                                   complete + prm.mispredictPenalty);
        // Footnote 8: loads issued down the wrong path before the
        // flush touch words of recently used lines. They are
        // squashed (no timing effect) but their footprint pollution
        // is real: the LOC will see words the correct path never
        // needed.
        for (unsigned i = 0; i < prm.wrongPathAccesses; ++i) {
            LineAddr line = recentLines[rng.below(
                recentLines.size())];
            if (line == 0)
                continue;
            WordIdx w = static_cast<WordIdx>(rng.below(
                kWordsPerLine));
            l1d.access(lineBaseOf(line) + w * kWordBytes, false, 0);
            ++statsData.wrongPathLoads;
        }
    }
    retire(complete);
}

void
OooCore::runAccess(const Access &a)
{
    Cycle dispatch = dispatchNext();

    // Address-generation dependence: a chasing load cannot issue
    // before the load it depends on returns its data.
    Cycle addr_ready = dispatch;
    if (a.depDist > 0 && a.depDist <= kLoadRingSize &&
        loadSeq >= a.depDist) {
        Cycle dep = loadRing[(loadSeq - a.depDist) % kLoadRingSize];
        addr_ready = std::max(addr_ready, dep);
    }

    if (a.write) {
        // Stores drain through the store buffer off the critical
        // path; the functional access keeps cache state correct.
        ++statsData.stores;
        l1d.access(a.addr, true, a.pc);
        retire(dispatch + prm.opLatency);
        return;
    }

    ++statsData.loads;
    recentLines[recentPos++ % recentLines.size()] =
        lineAddrOf(a.addr);
    Cycle issue = addr_ready;
    L1DResult res = l1d.access(a.addr, false, a.pc);

    Cycle complete;
    if (res.l1Hit) {
        complete = issue + prm.l1HitLatency;
    } else if (!isMiss(res.l2.outcome)) {
        complete = issue + prm.l1HitLatency + res.l2.latency;
    } else {
        // L2 miss: replace the functional model's static memory
        // latency with the dynamic DRAM + bus timing.
        Cycle lookup = res.l2.latency >= prm.staticMemLatency
                     ? res.l2.latency - prm.staticMemLatency
                     : res.l2.latency;
        Cycle mem_issue = issue + prm.l1HitLatency + lookup;
        complete = memory.lineFetch(lineAddrOf(a.addr), mem_issue);
    }

    loadRing[loadSeq % kLoadRingSize] = complete;
    ++loadSeq;
    retire(complete);
}

void
OooCore::run(InstCount instructions)
{
    InstCount target = statsData.instructions + instructions;
    while (statsData.instructions < target) {
        Access a = workload.next();

        // Instruction fetch for this record's ops; an I-miss stalls
        // the front end.
        walker.advance(a.instructions(), [this](Addr line_pc) {
            Cycle lat = l1i.fetchLine(line_pc);
            if (lat > 1) {
                fetchStallUntil = std::max(fetchStallUntil,
                                           fetchCycle + lat);
            }
        });

        std::uint32_t branches = std::min(a.branches, a.nonMemOps);
        for (std::uint32_t i = 0; i < a.nonMemOps; ++i)
            runOp(i < branches);
        runAccess(a);
    }
    statsData.cycles = std::max(lastRetire, fetchCycle);
}

double
OooCore::mpki() const
{
    if (statsData.instructions == 0)
        return 0.0;
    return static_cast<double>(l2.stats().misses())
         / (static_cast<double>(statsData.instructions) / 1000.0);
}

} // namespace ldis
