/**
 * @file
 * Branch predictor of the baseline processor (Table 1): a hybrid of
 * a 64k-entry gshare and a 64k-entry per-address (PAs) predictor,
 * arbitrated by a 64k-entry chooser of 2-bit counters.
 */

#ifndef DISTILLSIM_CPU_BRANCH_PREDICTOR_HH
#define DISTILLSIM_CPU_BRANCH_PREDICTOR_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace ldis
{

/** Saturating 2-bit counter helpers. */
class Counter2
{
  public:
    bool taken() const { return value >= 2; }

    void
    update(bool outcome)
    {
        if (outcome && value < 3)
            ++value;
        else if (!outcome && value > 0)
            --value;
    }

  private:
    std::uint8_t value = 2; //!< weakly taken
};

/** Predictor statistics. */
struct BranchStats
{
    std::uint64_t branches = 0;
    std::uint64_t mispredictions = 0;

    double
    missRate() const
    {
        return branches == 0
            ? 0.0
            : static_cast<double>(mispredictions)
                  / static_cast<double>(branches);
    }
};

/** gshare/PAs hybrid with a chooser. */
class HybridBranchPredictor
{
  public:
    /** @param entries table size for each component {64k}. */
    explicit HybridBranchPredictor(std::size_t entries = 64 * 1024);

    /**
     * Predict and update for one branch.
     * @return true iff the prediction was wrong
     */
    bool predictAndUpdate(Addr pc, bool outcome);

    const BranchStats &stats() const { return statsData; }

  private:
    std::size_t mask;
    std::uint64_t globalHistory = 0;

    std::vector<Counter2> gshareTable;
    std::vector<Counter2> pasTable;
    std::vector<std::uint16_t> localHistory;
    std::vector<Counter2> chooser; //!< taken() = use gshare

    BranchStats statsData;
};

} // namespace ldis

#endif // DISTILLSIM_CPU_BRANCH_PREDICTOR_HH
