#include "branch_predictor.hh"

#include "common/intmath.hh"
#include "common/logging.hh"

namespace ldis
{

HybridBranchPredictor::HybridBranchPredictor(std::size_t entries)
    : mask(entries - 1), gshareTable(entries), pasTable(entries),
      localHistory(entries, 0), chooser(entries)
{
    if (!isPowerOf2(entries))
        ldis_fatal("branch predictor tables must be powers of two");
}

bool
HybridBranchPredictor::predictAndUpdate(Addr pc, bool outcome)
{
    ++statsData.branches;
    std::size_t pc_idx = (pc >> 2) & mask;

    std::size_t g_idx = ((pc >> 2) ^ globalHistory) & mask;
    bool g_pred = gshareTable[g_idx].taken();

    std::size_t l_idx =
        ((pc >> 2) ^ (static_cast<std::uint64_t>(localHistory[pc_idx])
                      << 2)) & mask;
    bool l_pred = pasTable[l_idx].taken();

    bool use_gshare = chooser[pc_idx].taken();
    bool prediction = use_gshare ? g_pred : l_pred;
    bool mispredicted = prediction != outcome;
    if (mispredicted)
        ++statsData.mispredictions;

    // Update components and the chooser (toward the component that
    // was right, if they disagreed).
    if (g_pred != l_pred)
        chooser[pc_idx].update(g_pred == outcome);
    gshareTable[g_idx].update(outcome);
    pasTable[l_idx].update(outcome);

    globalHistory = ((globalHistory << 1) | (outcome ? 1 : 0)) & mask;
    localHistory[pc_idx] = static_cast<std::uint16_t>(
        ((localHistory[pc_idx] << 1) | (outcome ? 1 : 0)) & 0x3ff);

    return mispredicted;
}

} // namespace ldis
