/**
 * @file
 * Simplified out-of-order timing model for the IPC experiments
 * (Section 7.4). Models the Table-1 machine: 8-wide fetch, a
 * 128-entry instruction window, the gshare/PAs hybrid branch
 * predictor with a 15-cycle minimum misprediction penalty, the
 * two-level cache hierarchy, and the banked DRAM + split-transaction
 * bus with at most 32 outstanding misses.
 *
 * The model is interval-style rather than cycle-accurate: each
 * instruction's dispatch is bounded by fetch bandwidth, window
 * occupancy (an instruction cannot dispatch before the instruction
 * `window` slots earlier retires), and branch-flush stalls; loads
 * complete after their memory latency, and loads whose address
 * depends on an earlier load (pointer chasing, Access::depDist)
 * cannot issue before that load's data returns. This captures the
 * MLP/latency-tolerance mechanism through which L2 miss reductions
 * become IPC gains, which is what Figure 9 measures.
 */

#ifndef DISTILLSIM_CPU_OOO_CORE_HH
#define DISTILLSIM_CPU_OOO_CORE_HH

#include <vector>

#include "cache/hierarchy.hh"
#include "cpu/branch_predictor.hh"
#include "cpu/memory_system.hh"

namespace ldis
{

/** Core configuration (Table 1 defaults). */
struct CpuParams
{
    unsigned width = 8;            //!< fetch/dispatch width
    unsigned window = 128;         //!< reservation-station entries
    Cycle mispredictPenalty = 15;  //!< minimum flush penalty
    Cycle l1HitLatency = 3;
    Cycle opLatency = 1;           //!< simple ALU latency

    /**
     * The static memory latency the functional L2 models bake into
     * their miss results; the core strips it and substitutes the
     * dynamic DRAM + bus timing.
     */
    Cycle staticMemLatency = 400;

    MemorySystemParams memory{};

    /** Distinct synthetic branch PCs (predictor working set). */
    unsigned branchPcPool = 512;

    /**
     * Model wrong-path memory accesses after branch mispredictions
     * (footnote 8): squashed loads touch words of recently accessed
     * lines, polluting L1D/LOC footprints so distillation retains
     * words the correct path never uses. 0 disables the model.
     */
    unsigned wrongPathAccesses = 0;
};

/** Core statistics. */
struct CpuStats
{
    InstCount instructions = 0;
    Cycle cycles = 0;
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t wrongPathLoads = 0;

    double
    ipc() const
    {
        return cycles == 0
            ? 0.0
            : static_cast<double>(instructions)
                  / static_cast<double>(cycles);
    }
};

/** The execution-driven core. */
class OooCore
{
  public:
    /**
     * @param params machine configuration
     * @param workload access/instruction stream (not owned)
     * @param l2 second-level cache (not owned)
     * @param hier L1 geometry
     */
    OooCore(const CpuParams &params, Workload &workload,
            SecondLevelCache &l2, const HierarchyParams &hier = {});

    /** Simulate until @p instructions more instructions retire. */
    void run(InstCount instructions);

    double ipc() const { return statsData.ipc(); }
    const CpuStats &stats() const { return statsData; }
    const BranchStats &branchStats() const { return bpred.stats(); }
    const MemorySystemStats &memoryStats() const
    {
        return memory.stats();
    }
    const L1DStats &l1dStats() const { return l1d.stats(); }

    /** Misses per kilo-instruction of the backing L2. */
    double mpki() const;

  private:
    /** Dispatch cycle of the next instruction (fetch + window). */
    Cycle dispatchNext();

    /** Record an instruction's retirement. */
    void retire(Cycle completion);

    /** Execute one synthetic non-memory op (maybe a branch). */
    void runOp(bool is_branch);

    /** Execute the data access of the record. */
    void runAccess(const Access &a);

    /** Synthesize a branch PC and outcome, query the predictor. */
    bool branchMispredicts();

    CpuParams prm;
    Workload &workload;
    SecondLevelCache &l2;
    SectoredL1D l1d;
    L1ICache l1i;
    CodeWalker walker;
    HybridBranchPredictor bpred;
    MemorySystem memory;
    Random rng;

    // Timing state.
    Cycle fetchCycle = 0;        //!< current fetch group's cycle
    unsigned fetchedThisCycle = 0;
    Cycle fetchStallUntil = 0;   //!< I-miss / flush stall
    Cycle lastRetire = 0;
    std::uint64_t seq = 0;       //!< instructions dispatched

    /** Retire cycles of the last `window` instructions. */
    std::vector<Cycle> retireRing;

    /** Completion cycles of recent loads (dependence tracking). */
    std::vector<Cycle> loadRing;
    std::uint64_t loadSeq = 0;

    /** Per-branch-PC occurrence counters (outcome synthesis). */
    std::vector<std::uint32_t> branchCount;

    /** Recently accessed lines (wrong-path address synthesis). */
    std::vector<LineAddr> recentLines;
    std::size_t recentPos = 0;

    CpuStats statsData;
};

} // namespace ldis

#endif // DISTILLSIM_CPU_OOO_CORE_HH
