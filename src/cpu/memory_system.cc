#include "memory_system.hh"

#include "common/logging.hh"

namespace ldis
{

MemorySystem::MemorySystem(const MemorySystemParams &params)
    : prm(params), bankFree(params.banks, 0)
{
    ldis_assert(prm.banks > 0);
    ldis_assert(prm.maxOutstanding > 0);
}

Cycle
MemorySystem::lineFetch(LineAddr line, Cycle issue_cycle)
{
    ++statsData.requests;

    // Retire completed requests from the in-flight window.
    while (!inFlight.empty() && inFlight.top() <= issue_cycle)
        inFlight.pop();

    // MSHR/outstanding-request limit: wait for the oldest request to
    // finish before a new one can issue.
    Cycle start = issue_cycle;
    while (inFlight.size() >= prm.maxOutstanding) {
        Cycle drain = inFlight.top();
        inFlight.pop();
        if (drain > start) {
            start = drain;
            ++statsData.mshrStalls;
        }
    }

    unsigned bank = static_cast<unsigned>(line % prm.banks);
    if (bankFree[bank] > start)
        ++statsData.bankConflicts;
    Cycle bank_start = std::max(start, bankFree[bank]);
    Cycle bank_done = bank_start + prm.bankLatency;
    bankFree[bank] = bank_done;

    Cycle bus_start = std::max(bank_done, busFree);
    Cycle done = bus_start + prm.busTransfer;
    busFree = done;

    inFlight.push(done);
    statsData.totalLatency += done - issue_cycle;
    return done;
}

} // namespace ldis
