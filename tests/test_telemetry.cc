/** @file Tests for the telemetry JSONL run-log sink. */

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sim/replay.hh"
#include "sim/runner.hh"
#include "sim/telemetry.hh"

namespace ldis
{
namespace
{

std::string
tempPath(const char *tag)
{
    return std::string(::testing::TempDir()) + "ldis_metrics_" + tag
         + ".jsonl";
}

/** The sink file's lines (empty when the file does not exist). */
std::vector<std::string>
readLines(const std::string &path)
{
    std::vector<std::string> lines;
    std::ifstream in(path);
    std::string line;
    while (std::getline(in, line))
        lines.push_back(line);
    return lines;
}

/** Configure the sink for one test, restoring the off state after. */
class SinkGuard
{
  public:
    explicit SinkGuard(const std::string &path)
    {
        telemetry::setSink(path);
    }

    ~SinkGuard()
    {
        telemetry::setSink("");
        stats::setEnabled(false);
    }
};

TEST(Telemetry, DisabledSinkEmitsNothing)
{
    std::string path = tempPath("disabled");
    std::remove(path.c_str());
    telemetry::setSink("");
    EXPECT_FALSE(telemetry::enabled());
    RunResult r;
    r.benchmark = "mcf";
    telemetry::emitJob("mcf/none", r);
    telemetry::emitMatrixSummary(1, 1, 0.1, 0.1);
    EXPECT_TRUE(readLines(path).empty());
}

TEST(Telemetry, EmitJobWritesOneSchemaVersionedRecord)
{
    std::string path = tempPath("record");
    std::remove(path.c_str());
    SinkGuard guard(path);
    ASSERT_TRUE(telemetry::enabled());
    EXPECT_EQ(telemetry::sinkPath(), path);
    telemetry::setExperiment("test_telemetry");

    RunResult r;
    r.benchmark = "mcf";
    r.config = "Trad 1MB";
    r.instructions = 1000;
    r.mpki = 12.5;
    telemetry::emitJob("mcf/base", r);

    std::vector<std::string> lines = readLines(path);
    ASSERT_EQ(lines.size(), 1u);
    const std::string &rec = lines[0];
    EXPECT_NE(rec.find("\"schema\":2"), std::string::npos) << rec;
    EXPECT_NE(rec.find("\"kind\":\"run\""), std::string::npos);
    EXPECT_NE(rec.find("\"experiment\":\"test_telemetry\""),
              std::string::npos);
    EXPECT_NE(rec.find("\"label\":\"mcf/base\""), std::string::npos);
    EXPECT_NE(rec.find("\"host\""), std::string::npos);
    EXPECT_NE(rec.find("\"unix_time\""), std::string::npos);
    // No replay provenance set -> "none".
    EXPECT_NE(rec.find("\"stream_source\":\"none\""),
              std::string::npos);
    EXPECT_NE(rec.find("\"benchmark\":\"mcf\""), std::string::npos);
    std::remove(path.c_str());
}

TEST(Telemetry, StreamSourceProvenanceIsForwarded)
{
    std::string path = tempPath("provenance");
    std::remove(path.c_str());
    SinkGuard guard(path);
    RunResult r;
    r.benchmark = "art";
    r.streamSource = "disk-cache";
    telemetry::emitJob("art/ldis", r);
    std::vector<std::string> lines = readLines(path);
    ASSERT_EQ(lines.size(), 1u);
    EXPECT_NE(lines[0].find("\"stream_source\":\"disk-cache\""),
              std::string::npos);
    std::remove(path.c_str());
}

TEST(Telemetry, MatrixRunEmitsOneRecordPerJobPlusSummary)
{
    std::string path = tempPath("matrix");
    std::remove(path.c_str());
    SinkGuard guard(path);
    telemetry::setExperiment("test_telemetry");

    RunMatrix matrix(2);
    matrix.add("art", ConfigKind::Baseline1MB, 50000);
    matrix.add("art", ConfigKind::LdisMTRC, 50000);
    matrix.run();

    std::vector<std::string> lines = readLines(path);
    ASSERT_EQ(lines.size(), 3u);
    std::size_t runs = 0, matrices = 0;
    for (const std::string &rec : lines) {
        EXPECT_NE(rec.find("\"schema\":2"), std::string::npos);
        if (rec.find("\"kind\":\"run\"") != std::string::npos)
            ++runs;
        if (rec.find("\"kind\":\"matrix\"") != std::string::npos)
            ++matrices;
    }
    EXPECT_EQ(runs, 2u);
    EXPECT_EQ(matrices, 1u);
    // The summary carries the stats snapshot.
    EXPECT_NE(lines.back().find("\"stats\""), std::string::npos);
    EXPECT_NE(lines.back().find("\"jobs\":2"), std::string::npos);
    std::remove(path.c_str());
}

TEST(Telemetry, ReplayMatrixRecordsSetupAndProvenance)
{
    std::string path = tempPath("replay");
    std::remove(path.c_str());
    SinkGuard guard(path);
    telemetry::setExperiment("test_telemetry");

    RunMatrix matrix(2);
    matrix.addReplay("art", ConfigKind::Baseline1MB, 50000);
    matrix.addReplay("art", ConfigKind::LdisMTRC, 50000);
    matrix.run();

    std::vector<std::string> lines = readLines(path);
    // 1 frontend setup + 2 replay jobs + 1 summary.
    ASSERT_EQ(lines.size(), 4u);
    std::size_t setups = 0, records = 0;
    for (const std::string &rec : lines) {
        if (rec.find("\"kind\":\"setup\"") != std::string::npos)
            ++setups;
        if (rec.find("\"stream_source\":\"record\"") !=
            std::string::npos)
            ++records;
    }
    EXPECT_EQ(setups, 1u);
    EXPECT_EQ(records, 2u);
    std::remove(path.c_str());
}

TEST(Telemetry, GangRecordsCarryLaneParallelismBlock)
{
    std::string path = tempPath("gang");
    std::remove(path.c_str());
    SinkGuard guard(path);
    telemetry::setExperiment("test_telemetry");

    GangReplayInfo info;
    info.configs = 3;
    info.events = 1000;
    info.streamBytes = 9000;
    info.wallSeconds = 2.0;
    info.laneWorkers = 2;
    info.decodeWallSeconds = 0.5;
    info.replayWallSeconds = 3.0;
    info.laneWallSeconds = {1.0, 2.0};
    telemetry::emitGang("fig06", "mcf", info);

    std::vector<std::string> lines = readLines(path);
    ASSERT_EQ(lines.size(), 1u);
    const std::string &rec = lines[0];
    EXPECT_NE(rec.find("\"schema\":2"), std::string::npos) << rec;
    EXPECT_NE(rec.find("\"kind\":\"gang\""), std::string::npos);
    EXPECT_NE(rec.find("\"configs\":3"), std::string::npos);
    EXPECT_NE(rec.find("\"lanes\":2"), std::string::npos) << rec;
    EXPECT_NE(rec.find("\"decode_wall_ms\":500"), std::string::npos)
        << rec;
    EXPECT_NE(rec.find("\"replay_wall_ms\":3000"), std::string::npos)
        << rec;
    EXPECT_NE(rec.find("\"lane_wall_ms\":[1000,2000]"),
              std::string::npos)
        << rec;
    std::remove(path.c_str());
}

TEST(Telemetry, EtaSpreadsRemainingWorkOverPoolWorkers)
{
    using telemetry::etaSeconds;
    // No finished-job mean or no work left -> no estimate.
    EXPECT_EQ(etaSeconds(0.0, 5, 1, 4), 0.0);
    EXPECT_EQ(etaSeconds(2.0, 0, 0, 4), 0.0);
    // Serial pool: remaining at full cost, in-flight at half.
    EXPECT_DOUBLE_EQ(etaSeconds(2.0, 3, 0, 1), 6.0);
    EXPECT_DOUBLE_EQ(etaSeconds(2.0, 3, 1, 1), 7.0);
    // Wide pool: work spreads across workers...
    EXPECT_DOUBLE_EQ(etaSeconds(2.0, 8, 0, 4), 4.0);
    // ...but a short tail drains only as wide as the jobs left.
    EXPECT_DOUBLE_EQ(etaSeconds(2.0, 2, 0, 8), 2.0);
    // A degenerate zero-worker pool never divides by zero.
    EXPECT_DOUBLE_EQ(etaSeconds(2.0, 1, 0, 0), 2.0);
}

TEST(Telemetry, IpcJobsEmitIpcRecords)
{
    std::string path = tempPath("ipc");
    std::remove(path.c_str());
    SinkGuard guard(path);
    telemetry::setExperiment("test_telemetry");

    IpcMatrix matrix(1);
    matrix.add("twolf", ConfigKind::Baseline1MB, 50000);
    matrix.run();

    std::vector<std::string> lines = readLines(path);
    ASSERT_EQ(lines.size(), 2u);
    EXPECT_NE(lines[0].find("\"kind\":\"ipc\""), std::string::npos);
    EXPECT_NE(lines[0].find("\"ipc\""), std::string::npos);
    EXPECT_NE(lines[0].find("\"cycles\""), std::string::npos);
    std::remove(path.c_str());
}

} // namespace
} // namespace ldis
