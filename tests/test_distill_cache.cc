/**
 * @file
 * Unit, integration and property tests for the Distill Cache —
 * the paper's core contribution (Sections 4 and 5).
 */

#include <gtest/gtest.h>

#include "cache/hierarchy.hh"
#include "distill/distill_cache.hh"
#include "trace/benchmarks.hh"

namespace ldis
{
namespace
{

/** 2 sets x 8 ways (LOC 6 + WOC 2): tiny but full-featured. */
DistillParams
tinyParams()
{
    DistillParams p;
    p.bytes = 2ull * 8 * kLineBytes;
    p.totalWays = 8;
    p.wocWays = 2;
    return p;
}

Addr
wordAddr(LineAddr line, WordIdx w)
{
    return lineBaseOf(line) + w * kWordBytes;
}

/** Lines mapping to set 0 of a 2-set cache. */
LineAddr
set0(unsigned i)
{
    return static_cast<LineAddr>(i) * 2;
}

/**
 * Fill set 0's LOC with `count` fresh lines, starting at id
 * `first`, touching only word 0.
 */
void
fillLoc(DistillCache &dc, unsigned first, unsigned count)
{
    for (unsigned i = 0; i < count; ++i)
        dc.access(wordAddr(set0(first + i), 0), false, 0, false);
}

TEST(DistillCache, MissThenLocHit)
{
    DistillCache dc(tinyParams());
    L2Result r1 = dc.access(wordAddr(set0(1), 0), false, 0, false);
    EXPECT_EQ(r1.outcome, L2Outcome::LineMiss);
    EXPECT_TRUE(r1.validWords.isFull());
    L2Result r2 = dc.access(wordAddr(set0(1), 0), false, 0, false);
    EXPECT_EQ(r2.outcome, L2Outcome::LocHit);
    EXPECT_EQ(dc.stats().locHits, 1u);
}

TEST(DistillCache, LatenciesIncludeExtraTagCycle)
{
    DistillCache dc(tinyParams());
    L2Result miss = dc.access(wordAddr(set0(1), 0), false, 0, false);
    EXPECT_EQ(miss.latency, 16u + 400u);
    L2Result hit = dc.access(wordAddr(set0(1), 0), false, 0, false);
    EXPECT_EQ(hit.latency, 16u);
}

TEST(DistillCache, EvictionDistillsUsedWordsIntoWoc)
{
    DistillCache dc(tinyParams());
    // Line A: touch words 2 and 6.
    dc.access(wordAddr(set0(0), 2), false, 0, false);
    dc.access(wordAddr(set0(0), 6), false, 0, false);
    // Six more lines evict A from the 6-way LOC.
    fillLoc(dc, 1, 6);
    EXPECT_EQ(dc.distillStats().wocInstalls, 1u);

    // A's used words now hit in the WOC, with the resident mask.
    L2Result r = dc.access(wordAddr(set0(0), 2), false, 0, false);
    EXPECT_EQ(r.outcome, L2Outcome::WocHit);
    EXPECT_TRUE(r.validWords.test(2));
    EXPECT_TRUE(r.validWords.test(6));
    EXPECT_EQ(r.validWords.count(), 2u);
    EXPECT_EQ(r.latency, 16u + 2u); // rearrangement delay
}

TEST(DistillCache, UnusedWordCausesHoleMiss)
{
    DistillCache dc(tinyParams());
    dc.access(wordAddr(set0(0), 2), false, 0, false);
    fillLoc(dc, 1, 6);
    // Word 5 was never used: hole miss, line returns to the LOC.
    L2Result r = dc.access(wordAddr(set0(0), 5), false, 0, false);
    EXPECT_EQ(r.outcome, L2Outcome::HoleMiss);
    EXPECT_TRUE(r.validWords.isFull()); // refetched from memory
    EXPECT_EQ(dc.stats().holeMisses, 1u);
    // The WOC copy is gone; the line is a LOC hit now.
    EXPECT_FALSE(dc.wocOf(0).linePresent(set0(0)));
    L2Result r2 = dc.access(wordAddr(set0(0), 5), false, 0, false);
    EXPECT_EQ(r2.outcome, L2Outcome::LocHit);
    EXPECT_TRUE(dc.checkIntegrity());
}

TEST(DistillCache, HoleMissIsNotCompulsory)
{
    DistillCache dc(tinyParams());
    dc.access(wordAddr(set0(0), 2), false, 0, false);
    std::uint64_t compulsory = dc.stats().compulsoryMisses;
    fillLoc(dc, 1, 6);
    dc.access(wordAddr(set0(0), 5), false, 0, false); // hole miss
    EXPECT_EQ(dc.stats().compulsoryMisses, compulsory + 6);
}

TEST(DistillCache, LineAbsentEverywhereIsLineMiss)
{
    DistillCache dc(tinyParams());
    dc.access(wordAddr(set0(0), 0), false, 0, false);
    // Evict from LOC (goes to WOC), then evict from WOC by flooding
    // with one-word lines (WOC holds 16 entries).
    fillLoc(dc, 1, 6);
    for (unsigned i = 7; i < 7 + 17; ++i)
        dc.access(wordAddr(set0(i), 0), false, 0, false);
    // Line 0 has been pushed out of both structures (it may survive
    // probabilistically, so only check the stats are consistent).
    const L2Stats &s = dc.stats();
    EXPECT_EQ(s.accesses,
              s.locHits + s.wocHits + s.holeMisses + s.lineMisses);
    EXPECT_TRUE(dc.checkIntegrity());
}

TEST(DistillCache, InstructionLinesAreNeverDistilled)
{
    DistillCache dc(tinyParams());
    dc.access(wordAddr(set0(0), 0), false, 0, true); // instr line
    fillLoc(dc, 1, 6);
    EXPECT_EQ(dc.distillStats().wocInstalls, 0u);
    EXPECT_FALSE(dc.wocOf(0).linePresent(set0(0)));
}

TEST(DistillCache, L1DFootprintMergeWidensDistilledWords)
{
    DistillCache dc(tinyParams());
    dc.access(wordAddr(set0(0), 0), false, 0, false);
    // The L1D drains a footprint with three more words.
    Footprint used;
    used.set(0);
    used.set(1);
    used.set(2);
    used.set(3);
    dc.l1dEviction(set0(0), used, Footprint{});
    fillLoc(dc, 1, 6);
    EXPECT_EQ(dc.wocOf(0).wordsOf(set0(0)).count(), 4u);
}

TEST(DistillCache, DirtyWordsSurviveDistillation)
{
    DistillCache dc(tinyParams());
    dc.access(wordAddr(set0(0), 3), true, 0, false); // store
    fillLoc(dc, 1, 6);
    EXPECT_EQ(dc.wocOf(0).dirtyWordsOf(set0(0)).count(), 1u);
    // Evicting the dirty WOC line writes it back.
    std::uint64_t wb_before = dc.stats().writebacks;
    for (unsigned i = 7; i < 7 + 20; ++i)
        dc.access(wordAddr(set0(i), 0), false, 0, false);
    EXPECT_GT(dc.stats().writebacks, wb_before);
}

TEST(DistillCache, HoleMissPreservesDirtyData)
{
    DistillCache dc(tinyParams());
    dc.access(wordAddr(set0(0), 3), true, 0, false);
    fillLoc(dc, 1, 6);
    ASSERT_EQ(dc.wocOf(0).dirtyWordsOf(set0(0)).count(), 1u);
    // Hole miss on word 5: dirty word 3 must be merged into the
    // refetched line, not lost.
    dc.access(wordAddr(set0(0), 5), false, 0, false);
    // Evict the line again: word 3 must still be dirty in the WOC.
    fillLoc(dc, 30, 6);
    Footprint dirty = dc.wocOf(0).dirtyWordsOf(set0(0));
    EXPECT_TRUE(dirty.test(3));
}

TEST(DistillCache, MedianThresholdFiltersWideLines)
{
    DistillParams p = tinyParams();
    p.medianThreshold = true;
    p.fixedThreshold = 2; // install only lines with <= 2 used words
    DistillCache dc(p);
    // Line A uses 4 words: must be filtered.
    for (WordIdx w = 0; w < 4; ++w)
        dc.access(wordAddr(set0(0), w), false, 0, false);
    fillLoc(dc, 1, 6);
    EXPECT_EQ(dc.distillStats().mtFiltered, 1u);
    EXPECT_FALSE(dc.wocOf(0).linePresent(set0(0)));
    // A narrow line passes the filter.
    dc.access(wordAddr(set0(20), 0), false, 0, false);
    fillLoc(dc, 21, 6);
    EXPECT_TRUE(dc.wocOf(0).linePresent(set0(20)));
}

TEST(DistillCache, FilteredDirtyLineIsWrittenBack)
{
    DistillParams p = tinyParams();
    p.medianThreshold = true;
    p.fixedThreshold = 1;
    DistillCache dc(p);
    dc.access(wordAddr(set0(0), 0), true, 0, false);
    dc.access(wordAddr(set0(0), 1), false, 0, false);
    std::uint64_t wb = dc.stats().writebacks;
    fillLoc(dc, 1, 6);
    EXPECT_EQ(dc.stats().writebacks, wb + 1);
}

TEST(DistillCache, WordsRetainedAndDiscardedAccounting)
{
    DistillCache dc(tinyParams());
    dc.access(wordAddr(set0(0), 0), false, 0, false);
    dc.access(wordAddr(set0(0), 4), false, 0, false);
    fillLoc(dc, 1, 6);
    EXPECT_EQ(dc.distillStats().wordsRetained, 2u);
    EXPECT_EQ(dc.distillStats().wordsDiscarded, 6u);
}

TEST(DistillCache, StatsBalance)
{
    DistillCache dc(tinyParams());
    auto workload = makeBenchmark("twolf");
    for (int i = 0; i < 20000; ++i) {
        Access a = workload->next();
        dc.access(a.addr, a.write, a.pc, false);
    }
    const L2Stats &s = dc.stats();
    EXPECT_EQ(s.accesses,
              s.locHits + s.wocHits + s.holeMisses + s.lineMisses);
    EXPECT_LE(s.compulsoryMisses, s.misses());
}

TEST(DistillCache, WocNeverHoldsLocResidentLine)
{
    DistillCache dc(tinyParams());
    auto workload = makeBenchmark("art");
    for (int i = 0; i < 20000; ++i) {
        Access a = workload->next();
        dc.access(a.addr, a.write, a.pc, false);
    }
    EXPECT_TRUE(dc.checkIntegrity());
}

TEST(DistillCache, DescribeMentionsConfiguration)
{
    DistillParams p = tinyParams();
    p.medianThreshold = true;
    p.useReverter = true;
    // The reverter needs >= leaderSets sets; use a bigger cache.
    p.bytes = 2048ull * 8 * kLineBytes;
    DistillCache dc(p);
    std::string d = dc.describe();
    EXPECT_NE(d.find("MT"), std::string::npos);
    EXPECT_NE(d.find("RC"), std::string::npos);
    EXPECT_NE(d.find("LOC 6"), std::string::npos);
}

TEST(DistillCacheDeath, BadWaySplitIsFatal)
{
    DistillParams p = tinyParams();
    p.wocWays = 0;
    EXPECT_EXIT(DistillCache dc(p), testing::ExitedWithCode(1),
                "wocWays");
    p.wocWays = 8;
    EXPECT_EXIT(DistillCache dc(p), testing::ExitedWithCode(1),
                "wocWays");
}

// ---------------------------------------------------------------
// Reverter integration: mode switching of follower sets.
// ---------------------------------------------------------------

DistillParams
reverterParams()
{
    DistillParams p;
    // 64 sets so the reverter can sample 32 leaders.
    p.bytes = 64ull * 8 * kLineBytes;
    p.medianThreshold = true;
    p.useReverter = true;
    p.reverter.leaderSets = 32;
    return p;
}

TEST(DistillCacheReverter, AdversarialTrafficDisablesFollowers)
{
    DistillCache dc(reverterParams());
    // Leader sets are even (stride 2 for 64 sets / 32 leaders);
    // followers odd. Adversarial pattern on leader set 0: a working
    // set of 8 lines that fits 8 ways but not 6+WOC-with-holes.
    // Touch one word on install, then a *different* word on reuse:
    // the distilled copy always hole-misses while the ATD hits.
    for (int round = 0; round < 400; ++round) {
        WordIdx w = static_cast<WordIdx>(round % 2 == 0 ? 0 : 5);
        for (unsigned i = 0; i < 8; ++i) {
            LineAddr line = i * 64; // all in leader set 0
            dc.access(wordAddr(line, w), false, 0, false);
        }
    }
    ASSERT_NE(dc.reverter(), nullptr);
    EXPECT_FALSE(dc.reverter()->ldisEnabled());

    // A follower set touched now operates traditionally: 8 resident
    // lines, empty WOC.
    for (unsigned i = 0; i < 8; ++i)
        dc.access(wordAddr(1 + i * 64, 0), false, 0, false);
    EXPECT_FALSE(dc.setInDistillMode(1));
    EXPECT_EQ(dc.wocOf(1).validEntryCount(), 0u);
    // All 8 lines hit (8-way traditional behaviour).
    std::uint64_t hits_before = dc.stats().locHits;
    for (unsigned i = 0; i < 8; ++i)
        dc.access(wordAddr(1 + i * 64, 0), false, 0, false);
    EXPECT_EQ(dc.stats().locHits, hits_before + 8);
    EXPECT_TRUE(dc.checkIntegrity());
}

TEST(DistillCacheReverter, LeadersAlwaysDistill)
{
    DistillCache dc(reverterParams());
    // Even with LDIS globally disabled, leader sets keep
    // distilling (they must keep sampling).
    for (int round = 0; round < 400; ++round) {
        WordIdx w = static_cast<WordIdx>(round % 2 == 0 ? 0 : 5);
        for (unsigned i = 0; i < 8; ++i)
            dc.access(wordAddr(i * 64, w), false, 0, false);
    }
    ASSERT_FALSE(dc.reverter()->ldisEnabled());
    EXPECT_TRUE(dc.setInDistillMode(0));
}

TEST(DistillCacheReverter, ReenableFlushesBackToDistillMode)
{
    DistillCache dc(reverterParams());
    // Disable first (as above).
    for (int round = 0; round < 400; ++round) {
        WordIdx w = static_cast<WordIdx>(round % 2 == 0 ? 0 : 5);
        for (unsigned i = 0; i < 8; ++i)
            dc.access(wordAddr(i * 64, w), false, 0, false);
    }
    // Touch a follower so it transitions to traditional mode.
    dc.access(wordAddr(1, 0), false, 0, false);
    ASSERT_FALSE(dc.setInDistillMode(1));

    // Now feed the leaders LDIS-friendly traffic: a large set of
    // one-word lines that only the WOC can retain, so the ATD
    // misses and the distill side hits.
    for (int round = 0; round < 600; ++round) {
        for (unsigned i = 0; i < 20; ++i)
            dc.access(wordAddr(i * 64, 0), false, 0, false);
    }
    ASSERT_TRUE(dc.reverter()->ldisEnabled());
    dc.access(wordAddr(1, 0), false, 0, false);
    EXPECT_TRUE(dc.setInDistillMode(1));
    EXPECT_GT(dc.distillStats().modeSwitches, 0u);
    EXPECT_TRUE(dc.checkIntegrity());
}

// ---------------------------------------------------------------
// Property test: full-hierarchy traffic keeps invariants intact.
// ---------------------------------------------------------------

class DistillPropertyTest
    : public ::testing::TestWithParam<const char *>
{
};

TEST_P(DistillPropertyTest, HierarchyTrafficPreservesIntegrity)
{
    DistillParams p;
    p.bytes = 1 << 20;
    p.medianThreshold = true;
    p.useReverter = true;
    DistillCache dc(p);
    auto workload = makeBenchmark(GetParam());
    Hierarchy hier(*workload, dc);
    hier.run(300000);
    EXPECT_TRUE(dc.checkIntegrity());
    const L2Stats &s = dc.stats();
    EXPECT_EQ(s.accesses,
              s.locHits + s.wocHits + s.holeMisses + s.lineMisses);
    EXPECT_LE(s.compulsoryMisses, s.misses());
}

INSTANTIATE_TEST_SUITE_P(Proxies, DistillPropertyTest,
                         ::testing::Values("art", "mcf", "swim",
                                           "parser", "health",
                                           "wupwise", "sixtrack"));

} // namespace
} // namespace ldis
