/**
 * @file
 * Unit tests for the execution-driven components: branch predictor,
 * memory system timing, and the out-of-order core model.
 */

#include <gtest/gtest.h>

#include "cpu/branch_predictor.hh"
#include "cpu/memory_system.hh"
#include "cpu/ooo_core.hh"
#include "sim/configs.hh"
#include "trace/benchmarks.hh"
#include "trace/composite.hh"

namespace ldis
{
namespace
{

TEST(BranchPredictor, LearnsAlwaysTaken)
{
    HybridBranchPredictor bp(1024);
    for (int i = 0; i < 1000; ++i)
        bp.predictAndUpdate(0x400, true);
    // After warmup, a monotone branch is nearly perfect.
    EXPECT_LT(bp.stats().missRate(), 0.02);
}

TEST(BranchPredictor, LearnsAlternatingPattern)
{
    HybridBranchPredictor bp(1024);
    for (int i = 0; i < 4000; ++i)
        bp.predictAndUpdate(0x400, i % 2 == 0);
    // The PAs side captures short periodic patterns.
    EXPECT_LT(bp.stats().missRate(), 0.10);
}

TEST(BranchPredictor, RandomBranchesNearHalf)
{
    HybridBranchPredictor bp(1024);
    Random rng(5);
    int miss = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        if (bp.predictAndUpdate(0x400, rng.chance(0.5)))
            ++miss;
    EXPECT_NEAR(static_cast<double>(miss) / n, 0.5, 0.06);
}

TEST(BranchPredictor, IndependentPcs)
{
    HybridBranchPredictor bp(64 * 1024);
    for (int i = 0; i < 2000; ++i) {
        bp.predictAndUpdate(0x1000, true);
        bp.predictAndUpdate(0x2000, false);
    }
    EXPECT_LT(bp.stats().missRate(), 0.02);
}

// ---------------------------------------------------------------

TEST(MemorySystem, UncontendedLatency)
{
    MemorySystem mem;
    // 400 (bank) + 16 (bus) cycles.
    EXPECT_EQ(mem.lineFetch(0, 1000), 1000u + 400 + 16);
}

TEST(MemorySystem, BankConflictSerializes)
{
    MemorySystem mem;
    Cycle a = mem.lineFetch(0, 0);  // bank 0
    Cycle b = mem.lineFetch(32, 1); // bank 0 again
    EXPECT_EQ(a, 416u);
    // Second access waits for the bank: starts at 400, +400 +bus.
    EXPECT_GE(b, 800u);
    EXPECT_EQ(mem.stats().bankConflicts, 1u);
}

TEST(MemorySystem, DistinctBanksOverlap)
{
    MemorySystem mem;
    Cycle a = mem.lineFetch(0, 0); // bank 0
    Cycle b = mem.lineFetch(1, 0); // bank 1
    // Only the bus serializes: second finishes one transfer later.
    EXPECT_EQ(a, 416u);
    EXPECT_EQ(b, 432u);
    EXPECT_EQ(mem.stats().bankConflicts, 0u);
}

TEST(MemorySystem, OutstandingLimitStalls)
{
    MemorySystemParams p;
    p.maxOutstanding = 2;
    MemorySystem mem(p);
    mem.lineFetch(0, 0);
    mem.lineFetch(1, 0);
    // Third request at cycle 0 must wait for one to retire.
    Cycle c = mem.lineFetch(2, 0);
    EXPECT_GT(c, 416u);
    EXPECT_GE(mem.stats().mshrStalls, 1u);
}

TEST(MemorySystem, BusSerializesLineTransfers)
{
    MemorySystem mem;
    // 33 distinct banks -> no bank conflicts, but one 16-cycle bus
    // slot each.
    Cycle last = 0;
    for (unsigned i = 0; i < 8; ++i)
        last = mem.lineFetch(i, 0);
    EXPECT_EQ(last, 400u + 8 * 16);
}

// ---------------------------------------------------------------

CompositeWorkload
streamWorkload(std::uint32_t mean_ops)
{
    RegionParams r;
    r.bytes = 8 << 20;
    r.pattern = Pattern::Sequential;
    r.wordSel = WordSel::Full;
    r.meanOps = mean_ops;
    r.branchFrac = 0.1;
    return CompositeWorkload("stream", {r}, CodeModel{},
                             ValueProfile{}, 3);
}

CompositeWorkload
chaseWorkload(std::uint32_t mean_ops)
{
    RegionParams r;
    r.bytes = 8 << 20;
    r.pattern = Pattern::PointerChase;
    r.wordSel = WordSel::Single;
    r.wordsPerVisit = 1;
    r.depDist = 1;
    r.meanOps = mean_ops;
    r.branchFrac = 0.1;
    return CompositeWorkload("chase", {r}, CodeModel{},
                             ValueProfile{}, 3);
}

TEST(OooCore, IpcBoundedByWidth)
{
    auto wl = streamWorkload(6);
    L2Instance l2 = makeConfig(ConfigKind::Baseline1MB);
    CpuParams p;
    OooCore core(p, wl, *l2.cache);
    core.run(200000);
    EXPECT_GT(core.ipc(), 0.05);
    EXPECT_LE(core.ipc(), 8.0);
}

TEST(OooCore, PointerChasingIsSlowerThanStreaming)
{
    // Same miss traffic density, but chase misses serialize
    // (depDist = 1) while streaming misses overlap: the MLP
    // mechanism the IPC experiments rely on.
    auto stream = streamWorkload(2);
    auto chase = chaseWorkload(2);
    L2Instance l2a = makeConfig(ConfigKind::Baseline1MB);
    L2Instance l2b = makeConfig(ConfigKind::Baseline1MB);
    CpuParams p;
    OooCore a(p, stream, *l2a.cache);
    OooCore b(p, chase, *l2b.cache);
    a.run(200000);
    b.run(200000);
    EXPECT_GT(a.ipc(), b.ipc() * 1.5);
}

TEST(OooCore, FewerMissesRaiseIpc)
{
    // The same chase workload against a 4MB L2 (fits) vs 1MB
    // (thrashes): the bigger cache must be faster.
    auto wl_small = chaseWorkload(4);
    auto wl_big = chaseWorkload(4);
    L2Instance small = makeConfig(ConfigKind::Baseline1MB);
    L2Instance big = makeConfig(ConfigKind::Trad4MB);
    CpuParams p;
    OooCore a(p, wl_small, *small.cache);
    OooCore b(p, wl_big, *big.cache);
    a.run(300000);
    b.run(300000);
    EXPECT_GT(b.ipc(), a.ipc());
    EXPECT_LT(b.mpki(), a.mpki());
}

TEST(OooCore, BranchesCostCycles)
{
    // Identical memory behaviour, different branch density: the
    // branchier run can not be faster.
    auto low = streamWorkload(8);
    auto high = streamWorkload(8);
    // Crank branch fraction by rebuilding the workload.
    RegionParams r;
    r.bytes = 8 << 20;
    r.pattern = Pattern::Sequential;
    r.wordSel = WordSel::Full;
    r.meanOps = 8;
    r.branchFrac = 0.9;
    CompositeWorkload branchy("branchy", {r}, CodeModel{},
                              ValueProfile{}, 3);
    L2Instance l2a = makeConfig(ConfigKind::Baseline1MB);
    L2Instance l2b = makeConfig(ConfigKind::Baseline1MB);
    CpuParams p;
    OooCore a(p, low, *l2a.cache);
    OooCore b(p, branchy, *l2b.cache);
    a.run(200000);
    b.run(200000);
    EXPECT_GE(a.ipc(), b.ipc());
    EXPECT_GT(b.branchStats().branches, a.branchStats().branches);
}

TEST(OooCore, WrongPathPollutionShrinksLdisBenefit)
{
    // Footnote 8: wrong-path loads inflate footprints, so the
    // distill cache retains useless words and gains less.
    auto reduction = [](unsigned wrong_path) {
        CpuParams p;
        p.wrongPathAccesses = wrong_path;
        auto wl_base = makeBenchmark("art");
        L2Instance base = makeConfig(ConfigKind::Baseline1MB);
        OooCore a(p, *wl_base, *base.cache);
        a.run(2000000);
        auto wl_ldis = makeBenchmark("art");
        L2Instance ldis = makeConfig(ConfigKind::LdisMTRC);
        OooCore b(p, *wl_ldis, *ldis.cache);
        b.run(2000000);
        return (a.mpki() - b.mpki()) / a.mpki();
    };
    double clean = reduction(0);
    double polluted = reduction(4);
    EXPECT_GT(clean, polluted + 0.05);
}

TEST(OooCore, WrongPathLoadsAreCounted)
{
    CpuParams p;
    p.wrongPathAccesses = 2;
    auto wl = makeBenchmark("twolf");
    L2Instance l2 = makeConfig(ConfigKind::Baseline1MB);
    OooCore core(p, *wl, *l2.cache);
    core.run(200000);
    EXPECT_GT(core.stats().wrongPathLoads, 0u);
    // Disabled by default.
    CpuParams q;
    auto wl2 = makeBenchmark("twolf");
    L2Instance l2b = makeConfig(ConfigKind::Baseline1MB);
    OooCore core2(q, *wl2, *l2b.cache);
    core2.run(200000);
    EXPECT_EQ(core2.stats().wrongPathLoads, 0u);
}

TEST(OooCore, StatsAreConsistent)
{
    auto wl = makeBenchmark("twolf");
    L2Instance l2 = makeConfig(ConfigKind::Baseline1MB);
    CpuParams p;
    OooCore core(p, *wl, *l2.cache);
    core.run(100000);
    const CpuStats &s = core.stats();
    EXPECT_GE(s.instructions, 100000u);
    EXPECT_GT(s.cycles, 0u);
    EXPECT_GT(s.loads + s.stores, 0u);
}

} // namespace
} // namespace ldis
