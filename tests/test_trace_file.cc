/** @file Tests for trace recording and replay. */

#include <cstdint>
#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "cache/hierarchy.hh"
#include "sim/experiment.hh"
#include "trace/benchmarks.hh"
#include "trace/trace_file.hh"

namespace ldis
{
namespace
{

/** Temp path unique to the test. */
std::string
tempPath(const char *tag)
{
    return std::string(::testing::TempDir()) + "ldis_trace_" + tag
         + ".ldt";
}

TEST(TraceFile, RoundTripPreservesRecords)
{
    std::string path = tempPath("roundtrip");
    auto original = makeBenchmark("twolf", 7);
    recordTrace(*original, path, 5000);

    auto reference = makeBenchmark("twolf", 7);
    FileWorkload replay(path);
    EXPECT_EQ(replay.name(), "twolf");
    EXPECT_EQ(replay.size(), 5000u);
    for (int i = 0; i < 5000; ++i) {
        Access a = reference->next();
        Access b = replay.next();
        ASSERT_EQ(a.addr, b.addr) << i;
        ASSERT_EQ(a.pc, b.pc) << i;
        ASSERT_EQ(a.write, b.write) << i;
        ASSERT_EQ(a.nonMemOps, b.nonMemOps) << i;
        ASSERT_EQ(a.branches, b.branches) << i;
        ASSERT_EQ(a.depDist, b.depDist) << i;
    }
    std::remove(path.c_str());
}

TEST(TraceFile, HeaderCarriesModels)
{
    std::string path = tempPath("header");
    auto wl = makeBenchmark("gcc");
    recordTrace(*wl, path, 100);
    TraceInfo info = traceInfo(path);
    EXPECT_EQ(info.name, "gcc");
    EXPECT_EQ(info.records, 100u);
    EXPECT_EQ(info.code.codeBytes, wl->codeModel().codeBytes);
    EXPECT_DOUBLE_EQ(info.values.pZero, wl->valueProfile().pZero);
    EXPECT_GT(info.instructions, 100u);
    std::remove(path.c_str());
}

TEST(TraceFile, WrapAroundAndReset)
{
    std::string path = tempPath("wrap");
    auto wl = makeBenchmark("art");
    recordTrace(*wl, path, 50);
    FileWorkload replay(path);
    Access first = replay.next();
    for (int i = 1; i < 50; ++i)
        replay.next();
    EXPECT_EQ(replay.wraps(), 1u);
    // After a full pass, the stream restarts.
    EXPECT_EQ(replay.next().addr, first.addr);
    replay.reset();
    EXPECT_EQ(replay.wraps(), 0u);
    EXPECT_EQ(replay.next().addr, first.addr);
    std::remove(path.c_str());
}

TEST(TraceFile, ReplayMatchesLiveSimulation)
{
    // Replaying a recorded stream must give bit-identical cache
    // behaviour to the live workload it was recorded from.
    std::string path = tempPath("match");
    {
        auto wl = makeBenchmark("ammp", 3);
        recordTrace(*wl, path, 400000);
    }
    auto live = makeBenchmark("ammp", 3);
    L2Instance l2a = makeConfig(ConfigKind::LdisMTRC);
    RunResult live_r = runTrace(*live, *l2a.cache, 1000000);

    FileWorkload replay(path);
    L2Instance l2b = makeConfig(ConfigKind::LdisMTRC);
    RunResult replay_r = runTrace(replay, *l2b.cache, 1000000);

    EXPECT_EQ(live_r.l2.misses(), replay_r.l2.misses());
    EXPECT_EQ(live_r.l2.wocHits, replay_r.l2.wocHits);
    EXPECT_EQ(live_r.instructions, replay_r.instructions);
    std::remove(path.c_str());
}

TEST(TraceFileDeath, NotATraceIsFatal)
{
    std::string path = tempPath("garbage");
    std::FILE *f = std::fopen(path.c_str(), "wb");
    std::fputs("this is not a trace", f);
    std::fclose(f);
    EXPECT_EXIT(FileWorkload wl(path), testing::ExitedWithCode(1),
                "not a DistillSim trace");
    std::remove(path.c_str());
}

TEST(TraceFileDeath, TruncatedTraceIsFatal)
{
    std::string path = tempPath("trunc");
    {
        auto wl = makeBenchmark("art");
        recordTrace(*wl, path, 100);
    }
    // Chop the file mid-record.
    std::FILE *f = std::fopen(path.c_str(), "rb+");
    std::fseek(f, 0, SEEK_END);
    long size = std::ftell(f);
    std::fclose(f);
    ASSERT_EQ(truncate(path.c_str(), size - 7), 0);
    EXPECT_EXIT(FileWorkload wl(path), testing::ExitedWithCode(1),
                "truncated");
    std::remove(path.c_str());
}

TEST(TraceFileDeath, MissingFileIsFatal)
{
    EXPECT_EXIT(FileWorkload wl("/no/such/file.ldt"),
                testing::ExitedWithCode(1), "cannot open");
}

TEST(TraceFileDeath, OversizedRecordCountIsFatalUpFront)
{
    // A header that promises more records than the file holds must
    // be rejected before any record is read (a corrupt count would
    // otherwise drive a giant reserve + slow mid-read abort). The
    // error names the offending file.
    std::string path = tempPath("overcount");
    {
        auto wl = makeBenchmark("art");
        recordTrace(*wl, path, 100);
    }
    // The record-count field is the last 8 header bytes before the
    // payload; for 100 26-byte records the payload is 2600 bytes.
    std::FILE *f = std::fopen(path.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fseek(f, -2608, SEEK_END), 0);
    std::uint64_t bogus = 1u << 30;
    ASSERT_EQ(std::fwrite(&bogus, sizeof(bogus), 1, f), 1u);
    std::fclose(f);
    EXPECT_EXIT(FileWorkload wl(path), testing::ExitedWithCode(1),
                "overcount.*truncated");
    EXPECT_EXIT(traceInfo(path), testing::ExitedWithCode(1),
                "truncated");
    std::remove(path.c_str());
}

TEST(TraceFileDeath, TrailingGarbageIsFatal)
{
    std::string path = tempPath("trailing");
    {
        auto wl = makeBenchmark("art");
        recordTrace(*wl, path, 100);
    }
    std::FILE *f = std::fopen(path.c_str(), "ab");
    ASSERT_NE(f, nullptr);
    std::fputs("junk", f);
    std::fclose(f);
    EXPECT_EXIT(FileWorkload wl(path), testing::ExitedWithCode(1),
                "trailing\\.ldt.*trailing bytes");
    std::remove(path.c_str());
}

} // namespace
} // namespace ldis
