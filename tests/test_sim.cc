/**
 * @file
 * Tests for the experiment harness (configs, runTrace/runIpc,
 * aggregation helpers) plus cross-model integration checks.
 */

#include <cstdlib>

#include <gtest/gtest.h>

#include "distill/overhead.hh"
#include "sim/experiment.hh"

namespace ldis
{
namespace
{

TEST(Configs, AllKindsConstructAndDescribe)
{
    const ConfigKind kinds[] = {
        ConfigKind::Baseline1MB, ConfigKind::Trad1_5MB,
        ConfigKind::Trad2MB,     ConfigKind::Trad4MB,
        ConfigKind::Trad1MB32B,  ConfigKind::LdisBase,
        ConfigKind::LdisMT,      ConfigKind::LdisMTRC,
        ConfigKind::Ldis4xTags,  ConfigKind::Cmpr4xTags,
        ConfigKind::Fac4xTags,   ConfigKind::Sfp16k,
        ConfigKind::Sfp64k,
    };
    for (ConfigKind kind : kinds) {
        L2Instance inst = makeConfig(kind, ValueProfile{});
        ASSERT_NE(inst.cache, nullptr) << configName(kind);
        EXPECT_FALSE(inst.cache->describe().empty());
        EXPECT_STRNE(configName(kind), "?");
        // Constructed caches are usable immediately.
        L2Result r = inst.cache->access(0x100000, false, 0, false);
        EXPECT_EQ(r.outcome, L2Outcome::LineMiss);
    }
}

TEST(Configs, CapacityPointsHave2048Sets)
{
    // All Figure-8 capacity points keep the set count constant so
    // only capacity (associativity) varies.
    for (ConfigKind kind :
         {ConfigKind::Trad1_5MB, ConfigKind::Trad2MB,
          ConfigKind::Trad4MB}) {
        L2Instance inst = makeConfig(kind);
        EXPECT_NE(inst.cache->describe().find("traditional"),
                  std::string::npos);
    }
}

TEST(Experiment, RunLengthEnvOverride)
{
    ::setenv("LDIS_INSTRUCTIONS", "12345", 1);
    EXPECT_EQ(runLength(999), 12345u);
    ::setenv("LDIS_INSTRUCTIONS", "garbage", 1);
    EXPECT_EQ(runLength(999), 999u);
    // Out-of-range values saturate strtoull (ERANGE); they must be
    // rejected rather than silently accepted as ULLONG_MAX.
    ::setenv("LDIS_INSTRUCTIONS", "99999999999999999999999", 1);
    EXPECT_EQ(runLength(999), 999u);
    ::setenv("LDIS_INSTRUCTIONS", "0", 1);
    EXPECT_EQ(runLength(999), 999u);
    ::unsetenv("LDIS_INSTRUCTIONS");
    EXPECT_EQ(runLength(999), 999u);
}

TEST(Experiment, RunTraceFillsResult)
{
    RunResult r =
        runTrace("twolf", ConfigKind::Baseline1MB, 100000);
    EXPECT_EQ(r.benchmark, "twolf");
    EXPECT_STREQ(r.config.c_str(), "TRAD-1MB");
    EXPECT_GE(r.instructions, 100000u);
    EXPECT_GT(r.l2.accesses, 0u);
    EXPECT_GE(r.mpki, 0.0);
}

TEST(Experiment, RunTraceIsDeterministic)
{
    RunResult a = runTrace("art", ConfigKind::LdisMTRC, 100000);
    RunResult b = runTrace("art", ConfigKind::LdisMTRC, 100000);
    EXPECT_EQ(a.l2.misses(), b.l2.misses());
    EXPECT_EQ(a.l2.wocHits, b.l2.wocHits);
}

TEST(Experiment, RunTraceRecordsTiming)
{
    RunResult r =
        runTrace("twolf", ConfigKind::Baseline1MB, 100000);
    EXPECT_GT(r.wallSeconds, 0.0);
    EXPECT_GT(r.instPerSec, 0.0);
}

TEST(Experiment, WriteJsonIncludesCountersAndTiming)
{
    RunResult r =
        runTrace("twolf", ConfigKind::Baseline1MB, 60000);
    JsonWriter j;
    writeJson(j, r);
    const std::string &s = j.str();
    EXPECT_NE(s.find("\"benchmark\":\"twolf\""), std::string::npos);
    EXPECT_NE(s.find("\"wall_seconds\":"), std::string::npos);
    EXPECT_NE(s.find("\"inst_per_sec\":"), std::string::npos);
    EXPECT_NE(s.find("\"l2\":{"), std::string::npos);
    EXPECT_NE(s.find("\"l1i\":{"), std::string::npos);
}

TEST(Experiment, RunIpcFillsResult)
{
    IpcResult r = runIpc("twolf", ConfigKind::Baseline1MB, 100000);
    EXPECT_GT(r.ipc, 0.0);
    EXPECT_LE(r.ipc, 8.0);
    EXPECT_GT(r.cpu.cycles, 0u);
}

TEST(Experiment, Aggregations)
{
    EXPECT_DOUBLE_EQ(percentReduction(10.0, 7.0), 30.0);
    EXPECT_DOUBLE_EQ(percentReduction(0.0, 7.0), 0.0);
    EXPECT_DOUBLE_EQ(percentReduction(10.0, 12.0), -20.0);
    EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
    EXPECT_NEAR(geomeanSpeedup({0.1, 0.1}), 0.1, 1e-9);
    EXPECT_NEAR(geomeanSpeedup({0.0}), 0.0, 1e-12);
}

// ---------------------------------------------------------------
// Cross-model integration checks (the paper's qualitative claims,
// scaled down to quick runs).
// ---------------------------------------------------------------

TEST(Integration, BiggerCachesMissLess)
{
    const InstCount n = 400000;
    RunResult base = runTrace("twolf", ConfigKind::Baseline1MB, n);
    RunResult mid = runTrace("twolf", ConfigKind::Trad1_5MB, n);
    RunResult big = runTrace("twolf", ConfigKind::Trad2MB, n);
    EXPECT_LE(mid.l2.misses(), base.l2.misses());
    EXPECT_LE(big.l2.misses(), mid.l2.misses());
}

TEST(Integration, LdisHelpsThrashingSparseWorkload)
{
    const InstCount n = 400000;
    RunResult base = runTrace("art", ConfigKind::Baseline1MB, n);
    RunResult ldis = runTrace("art", ConfigKind::LdisMTRC, n);
    EXPECT_LT(ldis.l2.misses(), base.l2.misses());
    EXPECT_GT(ldis.l2.wocHits, 0u);
}

TEST(Integration, LdisNeutralOnFullLineStreaming)
{
    // wupwise uses whole lines: distillation can neither help nor
    // hurt much (paper Figure 6: ~0).
    const InstCount n = 400000;
    RunResult base = runTrace("wupwise", ConfigKind::Baseline1MB, n);
    RunResult ldis = runTrace("wupwise", ConfigKind::LdisMTRC, n);
    double delta = percentReduction(
        static_cast<double>(base.l2.misses()),
        static_cast<double>(ldis.l2.misses()));
    EXPECT_NEAR(delta, 0.0, 5.0);
}

TEST(Integration, CompulsoryMissesAreConfigInvariant)
{
    // Compulsory misses depend only on the access stream, not on
    // the cache organization (same seed -> same stream).
    const InstCount n = 300000;
    RunResult a = runTrace("vortex", ConfigKind::Baseline1MB, n);
    RunResult b = runTrace("vortex", ConfigKind::Trad4MB, n);
    EXPECT_EQ(a.l2.compulsoryMisses, b.l2.compulsoryMisses);
}

TEST(Integration, FacBeatsPlainLdisOnCompressibleSparseData)
{
    // mcf: sparse footprints *and* compressible values. FAC packs
    // compressed used-words, so it must retain at least as many
    // lines as LDIS (Figure 11's positive interaction).
    const InstCount n = 600000;
    RunResult ldis = runTrace("mcf", ConfigKind::Ldis4xTags, n);
    RunResult fac = runTrace("mcf", ConfigKind::Fac4xTags, n);
    EXPECT_LT(fac.l2.misses(), ldis.l2.misses());
}

TEST(Integration, OverheadMatchesPaperTable3)
{
    OverheadBreakdown b = computeOverhead(OverheadParams{});
    EXPECT_EQ(b.wocEntryBits, 29u);
    EXPECT_EQ(b.wocEntries, 32u * 1024);
    EXPECT_EQ(b.wocTagBytes, 116u * 1024);
    EXPECT_EQ(b.locFootprintBytes, 16u * 1024);
    EXPECT_EQ(b.l1dFootprintBytes, 256u);
    EXPECT_EQ(b.mtBytes, 18u);
    EXPECT_EQ(b.atdBytes, 1024u);
    EXPECT_NEAR(b.percentIncrease, 12.2, 0.2);
}

TEST(Integration, OverheadShrinksWithLineSize)
{
    OverheadParams p64;
    OverheadParams p128;
    p128.lineBytes = 128;
    OverheadParams p256;
    p256.lineBytes = 256;
    double o64 = computeOverhead(p64).percentIncrease;
    double o128 = computeOverhead(p128).percentIncrease;
    double o256 = computeOverhead(p256).percentIncrease;
    EXPECT_GT(o64, o128);
    EXPECT_GT(o128, o256);
    EXPECT_NEAR(o128, 7.0, 1.5); // paper: ~7%
    EXPECT_NEAR(o256, 4.0, 1.5); // paper: ~4%
}

} // namespace
} // namespace ldis
