/** @file Unit tests for the generic set-associative tag array. */

#include <gtest/gtest.h>

#include "cache/set_assoc.hh"

namespace ldis
{
namespace
{

CacheGeometry
smallGeom(unsigned ways = 4)
{
    CacheGeometry g;
    // 4 sets x `ways` ways x 64B lines.
    g.bytes = 4ull * ways * kLineBytes;
    g.ways = ways;
    return g;
}

/** Lines mapping to set 0 of a 4-set cache: multiples of 4. */
LineAddr
set0Line(unsigned i)
{
    return static_cast<LineAddr>(i) * 4;
}

TEST(SetAssoc, GeometryDerived)
{
    SetAssocCache c(smallGeom());
    EXPECT_EQ(c.numSets(), 4u);
    EXPECT_EQ(c.numWays(), 4u);
    EXPECT_EQ(c.setIndexOf(0), 0u);
    EXPECT_EQ(c.setIndexOf(5), 1u);
    EXPECT_EQ(c.setIndexOf(7), 3u);
}

TEST(SetAssoc, InstallAndFind)
{
    SetAssocCache c(smallGeom());
    EXPECT_EQ(c.find(8), nullptr);
    CacheLineState evicted = c.install(8);
    EXPECT_FALSE(evicted.valid);
    CacheLineState *l = c.find(8);
    ASSERT_NE(l, nullptr);
    EXPECT_EQ(l->line, 8u);
    EXPECT_TRUE(l->valid);
}

TEST(SetAssoc, LruEvictsLeastRecent)
{
    SetAssocCache c(smallGeom());
    for (unsigned i = 0; i < 4; ++i)
        c.install(set0Line(i));
    // Touch line 0 so line 1 becomes LRU.
    c.touch(set0Line(0));
    CacheLineState evicted = c.install(set0Line(4));
    EXPECT_TRUE(evicted.valid);
    EXPECT_EQ(evicted.line, set0Line(1));
    EXPECT_EQ(c.find(set0Line(1)), nullptr);
    EXPECT_NE(c.find(set0Line(0)), nullptr);
}

TEST(SetAssoc, PositionTracksRecency)
{
    SetAssocCache c(smallGeom());
    c.install(set0Line(0));
    c.install(set0Line(1));
    c.install(set0Line(2));
    // Most recent install is MRU.
    EXPECT_EQ(c.position(set0Line(2)), 0u);
    EXPECT_EQ(c.position(set0Line(1)), 1u);
    EXPECT_EQ(c.position(set0Line(0)), 2u);
    c.touch(set0Line(0));
    EXPECT_EQ(c.position(set0Line(0)), 0u);
    EXPECT_EQ(c.position(set0Line(2)), 1u);
}

TEST(SetAssoc, PeekVictimMatchesInstall)
{
    SetAssocCache c(smallGeom());
    EXPECT_EQ(c.peekVictim(set0Line(9)), nullptr); // free way
    for (unsigned i = 0; i < 4; ++i)
        c.install(set0Line(i));
    const CacheLineState *victim = c.peekVictim(set0Line(9));
    ASSERT_NE(victim, nullptr);
    LineAddr predicted = victim->line;
    CacheLineState evicted = c.install(set0Line(9));
    EXPECT_EQ(evicted.line, predicted);
}

TEST(SetAssoc, RandomPeekVictimMatchesInstall)
{
    // Regression: peekVictim used to return the LRU way under
    // ReplPolicy::Random while install() drew a fresh random victim,
    // so observers (e.g. MT filtering on the victim's footprint)
    // decided on a line that was not actually evicted.
    CacheGeometry g = smallGeom();
    g.repl = ReplPolicy::Random;
    SetAssocCache c(g);
    for (unsigned i = 0; i < 4; ++i)
        c.install(set0Line(i));
    for (unsigned i = 4; i < 64; ++i) {
        const CacheLineState *victim = c.peekVictim(set0Line(i));
        ASSERT_NE(victim, nullptr);
        LineAddr predicted = victim->line;
        // A second peek before the install sees the same draw.
        EXPECT_EQ(c.peekVictim(set0Line(i))->line, predicted);
        CacheLineState evicted = c.install(set0Line(i));
        EXPECT_TRUE(evicted.valid);
        EXPECT_EQ(evicted.line, predicted) << "install " << i;
    }
}

TEST(SetAssoc, RandomInstallWithoutPeekStillEvicts)
{
    // install() must keep working when nobody peeked (no stale
    // memoized draw involved).
    CacheGeometry g = smallGeom();
    g.repl = ReplPolicy::Random;
    SetAssocCache c(g);
    for (unsigned i = 0; i < 4; ++i)
        c.install(set0Line(i));
    CacheLineState evicted = c.install(set0Line(5));
    EXPECT_TRUE(evicted.valid);
    EXPECT_EQ(c.validCount(), 4u);
}

TEST(SetAssoc, RandomPendingVictimClearedByInvalidate)
{
    // After an invalidate the set has a free way, so a pre-drawn
    // victim is stale: install() must fill the free way and evict
    // nothing.
    CacheGeometry g = smallGeom();
    g.repl = ReplPolicy::Random;
    SetAssocCache c(g);
    for (unsigned i = 0; i < 4; ++i)
        c.install(set0Line(i));
    ASSERT_NE(c.peekVictim(set0Line(9)), nullptr);
    c.invalidate(set0Line(1));
    EXPECT_EQ(c.peekVictim(set0Line(9)), nullptr);
    CacheLineState evicted = c.install(set0Line(9));
    EXPECT_FALSE(evicted.valid);
}

TEST(SetAssoc, InvalidateRemovesAndReportsPrior)
{
    SetAssocCache c(smallGeom());
    c.install(10);
    c.find(10)->dirty = true;
    CacheLineState prior = c.invalidate(10);
    EXPECT_TRUE(prior.valid);
    EXPECT_TRUE(prior.dirty);
    EXPECT_EQ(c.find(10), nullptr);
    // Invalidating a missing line is a no-op.
    CacheLineState none = c.invalidate(10);
    EXPECT_FALSE(none.valid);
}

TEST(SetAssoc, InvalidatedWayIsReusedFirst)
{
    SetAssocCache c(smallGeom());
    for (unsigned i = 0; i < 4; ++i)
        c.install(set0Line(i));
    c.invalidate(set0Line(2));
    CacheLineState evicted = c.install(set0Line(7));
    EXPECT_FALSE(evicted.valid); // reused the invalid way
    for (unsigned i : {0u, 1u, 3u})
        EXPECT_NE(c.find(set0Line(i)), nullptr);
}

TEST(SetAssoc, ValidCount)
{
    SetAssocCache c(smallGeom());
    EXPECT_EQ(c.validCount(), 0u);
    c.install(1);
    c.install(2);
    EXPECT_EQ(c.validCount(), 2u);
    c.invalidate(1);
    EXPECT_EQ(c.validCount(), 1u);
}

TEST(SetAssoc, ForEachLineVisitsAllValid)
{
    SetAssocCache c(smallGeom());
    c.install(0);
    c.install(1);
    c.install(2);
    unsigned count = 0;
    c.forEachLine([&](const CacheLineState &) { ++count; });
    EXPECT_EQ(count, 3u);
}

TEST(SetAssoc, SetsAreIndependent)
{
    SetAssocCache c(smallGeom());
    // Fill set 0 completely; set 1 lines must be unaffected.
    for (unsigned i = 0; i < 8; ++i)
        c.install(set0Line(i));
    c.install(1); // set 1
    EXPECT_NE(c.find(1), nullptr);
    EXPECT_EQ(c.validCount(), 5u);
}

TEST(SetAssoc, RandomPolicyStillFindsLines)
{
    CacheGeometry g = smallGeom();
    g.repl = ReplPolicy::Random;
    SetAssocCache c(g);
    for (unsigned i = 0; i < 16; ++i)
        c.install(set0Line(i));
    EXPECT_EQ(c.validCount(), 4u);
}

TEST(SetAssoc, FreshInstallHasCleanMetadata)
{
    SetAssocCache c(smallGeom());
    c.install(3);
    CacheLineState *l = c.find(3);
    l->footprint.set(5);
    l->dirty = true;
    c.invalidate(3);
    c.install(3);
    l = c.find(3);
    EXPECT_TRUE(l->footprint.empty());
    EXPECT_FALSE(l->dirty);
}

TEST(SetAssocDeath, BadGeometriesAreFatal)
{
    CacheGeometry g;
    g.bytes = 1000; // not divisible
    g.ways = 8;
    EXPECT_EXIT(SetAssocCache c(g), testing::ExitedWithCode(1), "");

    CacheGeometry g2;
    g2.bytes = 3 * 8 * 64; // 3 sets: not a power of two
    g2.ways = 8;
    EXPECT_EXIT(SetAssocCache c(g2), testing::ExitedWithCode(1),
                "power of two");
}

TEST(SetAssocDeath, DoubleInstallPanics)
{
    SetAssocCache c(smallGeom());
    c.install(5);
    EXPECT_DEATH(c.install(5), "assert");
}

TEST(SetAssocDeath, PositionOfMissingLinePanics)
{
    SetAssocCache c(smallGeom());
    EXPECT_DEATH(c.position(5), "assert");
}

} // namespace
} // namespace ldis
