/** @file Unit tests for the baseline L2 and its instrumentation. */

#include <gtest/gtest.h>

#include "cache/traditional_l2.hh"

namespace ldis
{
namespace
{

CacheGeometry
tinyGeom()
{
    CacheGeometry g;
    g.bytes = 4ull * 8 * kLineBytes; // 4 sets, 8 ways
    g.ways = 8;
    return g;
}

Addr
wordAddr(LineAddr line, WordIdx w)
{
    return lineBaseOf(line) + w * kWordBytes;
}

TEST(TraditionalL2, MissThenHit)
{
    TraditionalL2 l2(tinyGeom());
    L2Result r1 = l2.access(wordAddr(8, 0), false, 0, false);
    EXPECT_EQ(r1.outcome, L2Outcome::LineMiss);
    L2Result r2 = l2.access(wordAddr(8, 0), false, 0, false);
    EXPECT_EQ(r2.outcome, L2Outcome::LocHit);
    EXPECT_EQ(l2.stats().accesses, 2u);
    EXPECT_EQ(l2.stats().hits(), 1u);
    EXPECT_EQ(l2.stats().misses(), 1u);
}

TEST(TraditionalL2, HitDeliversFullLine)
{
    TraditionalL2 l2(tinyGeom());
    l2.access(wordAddr(1, 0), false, 0, false);
    L2Result r = l2.access(wordAddr(1, 5), false, 0, false);
    EXPECT_EQ(r.outcome, L2Outcome::LocHit);
    EXPECT_TRUE(r.validWords.isFull());
}

TEST(TraditionalL2, LatenciesFollowTable1)
{
    L2Latency lat;
    TraditionalL2 l2(tinyGeom(), lat);
    L2Result miss = l2.access(wordAddr(1, 0), false, 0, false);
    EXPECT_EQ(miss.latency, lat.hit + lat.memory);
    L2Result hit = l2.access(wordAddr(1, 0), false, 0, false);
    EXPECT_EQ(hit.latency, lat.hit);
}

TEST(TraditionalL2, CompulsoryMissAccounting)
{
    TraditionalL2 l2(tinyGeom());
    l2.access(wordAddr(0, 0), false, 0, false);  // compulsory
    l2.access(wordAddr(4, 0), false, 0, false);  // compulsory
    // Evict line 0 by filling set 0 (lines = multiples of 4).
    for (unsigned i = 2; i <= 8; ++i)
        l2.access(wordAddr(i * 4, 0), false, 0, false);
    // Re-miss on line 0: not compulsory.
    l2.access(wordAddr(0, 0), false, 0, false);
    EXPECT_EQ(l2.stats().lineMisses, 10u);
    EXPECT_EQ(l2.stats().compulsoryMisses, 9u);
}

TEST(TraditionalL2, FootprintTracksDemandWords)
{
    TraditionalL2 l2(tinyGeom());
    l2.access(wordAddr(1, 2), false, 0, false);
    l2.access(wordAddr(1, 5), false, 0, false);
    const CacheLineState *line = l2.tags().find(1);
    ASSERT_NE(line, nullptr);
    EXPECT_TRUE(line->footprint.test(2));
    EXPECT_TRUE(line->footprint.test(5));
    EXPECT_EQ(line->footprint.count(), 2u);
}

TEST(TraditionalL2, L1EvictionMergesFootprint)
{
    TraditionalL2 l2(tinyGeom());
    l2.access(wordAddr(1, 0), false, 0, false);
    Footprint used;
    used.set(0);
    used.set(3);
    used.set(7);
    l2.l1dEviction(1, used, Footprint{});
    const CacheLineState *line = l2.tags().find(1);
    EXPECT_EQ(line->footprint.count(), 3u);
}

TEST(TraditionalL2, DirtyEvictionWritesBack)
{
    TraditionalL2 l2(tinyGeom());
    l2.access(wordAddr(0, 0), true, 0, false); // store
    for (unsigned i = 1; i <= 8; ++i)
        l2.access(wordAddr(i * 4, 0), false, 0, false);
    EXPECT_EQ(l2.stats().writebacks, 1u);
}

TEST(TraditionalL2, L1EvictionOfAbsentDirtyLineWritesBack)
{
    TraditionalL2 l2(tinyGeom());
    Footprint dirty;
    dirty.set(0);
    l2.l1dEviction(123, Footprint::full(), dirty);
    EXPECT_EQ(l2.stats().writebacks, 1u);
    // Clean absent line: no writeback.
    l2.l1dEviction(124, Footprint::full(), Footprint{});
    EXPECT_EQ(l2.stats().writebacks, 1u);
}

TEST(TraditionalL2, WordsUsedHistogramAtEviction)
{
    TraditionalL2 l2(tinyGeom());
    // Line 0: two words used. Then force its eviction.
    l2.access(wordAddr(0, 0), false, 0, false);
    l2.access(wordAddr(0, 1), false, 0, false);
    for (unsigned i = 1; i <= 8; ++i)
        l2.access(wordAddr(i * 4, 0), false, 0, false);
    EXPECT_EQ(l2.wordsUsedAtEviction().totalSamples(), 1u);
    EXPECT_EQ(l2.wordsUsedAtEviction().countAt(2), 1u);
    EXPECT_DOUBLE_EQ(l2.avgWordsUsed(), 2.0);
}

TEST(TraditionalL2, InstructionLinesExcludedFromHistogram)
{
    TraditionalL2 l2(tinyGeom());
    l2.access(wordAddr(0, 0), false, 0, true); // instruction line
    for (unsigned i = 1; i <= 8; ++i)
        l2.access(wordAddr(i * 4, 0), false, 0, true);
    EXPECT_EQ(l2.wordsUsedAtEviction().totalSamples(), 0u);
}

TEST(TraditionalL2, RecencyBeforeChangeMetric)
{
    // Reproduce the paper's Section-3 example: line A's footprint
    // changes at position 0, the line later sinks to position 5,
    // then a new word is touched -> max position before
    // footprint-change is 5.
    CacheGeometry g;
    g.bytes = 1ull * 8 * kLineBytes; // 1 set, 8 ways
    g.ways = 8;
    TraditionalL2 l2(g);

    l2.access(wordAddr(0, 0), false, 0, false); // A: install, pos 0
    // Five other lines push A to position 5.
    for (LineAddr l = 1; l <= 5; ++l)
        l2.access(wordAddr(l, 0), false, 0, false);
    // New word of A: footprint change with maxRecency = 5.
    l2.access(wordAddr(0, 1), false, 0, false);
    // Re-touch lines 1..5 and add 6, 7 so A becomes LRU, then
    // install line 9 to evict exactly A.
    for (LineAddr l = 1; l <= 7; ++l)
        l2.access(wordAddr(l, 0), false, 0, false);
    l2.access(wordAddr(9, 0), false, 0, false);
    ASSERT_EQ(l2.recencyBeforeChange().totalSamples(), 1u);
    EXPECT_EQ(l2.recencyBeforeChange().countAt(5), 1u);
}

TEST(TraditionalL2, WriteMarksLineDirty)
{
    TraditionalL2 l2(tinyGeom());
    l2.access(wordAddr(3, 0), false, 0, false);
    l2.access(wordAddr(3, 1), true, 0, false);
    EXPECT_TRUE(l2.tags().find(3)->dirty);
}

} // namespace
} // namespace ldis
