/** @file Unit tests for region streams (workload building blocks). */

#include <map>
#include <set>

#include <gtest/gtest.h>

#include "trace/region.hh"

namespace ldis
{
namespace
{

RegionParams
base(Pattern pat, WordSel sel, unsigned k, std::uint64_t bytes)
{
    RegionParams p;
    p.bytes = bytes;
    p.pattern = pat;
    p.wordSel = sel;
    p.wordsPerVisit = k;
    p.meanOps = 3;
    return p;
}

std::vector<Access>
visit(RegionStream &rs)
{
    std::vector<Access> out;
    rs.produceVisit(out);
    return out;
}

TEST(RegionStream, SequentialFullVisitsLinesInOrder)
{
    RegionParams p =
        base(Pattern::Sequential, WordSel::Full, 8, 4 * kLineBytes);
    RegionStream rs(p, /*base_line=*/100, 0x1000, 1);
    for (unsigned line = 0; line < 4; ++line) {
        auto burst = visit(rs);
        ASSERT_EQ(burst.size(), kWordsPerLine);
        for (unsigned w = 0; w < kWordsPerLine; ++w) {
            EXPECT_EQ(lineAddrOf(burst[w].addr), 100 + line);
            EXPECT_EQ(wordIdxOf(burst[w].addr), w);
        }
    }
    // Wrap restarts at the base line and bumps the epoch.
    EXPECT_EQ(rs.epoch(), 1u);
    auto burst = visit(rs);
    EXPECT_EQ(lineAddrOf(burst[0].addr), 100u);
}

TEST(RegionStream, PartialSeqTouchesPrefix)
{
    RegionParams p = base(Pattern::Sequential, WordSel::PartialSeq,
                          3, 2 * kLineBytes);
    RegionStream rs(p, 0, 0x1000, 1);
    auto burst = visit(rs);
    ASSERT_EQ(burst.size(), 3u);
    for (unsigned w = 0; w < 3; ++w)
        EXPECT_EQ(wordIdxOf(burst[w].addr), w);
}

TEST(RegionStream, SingleWordIsStablePerLine)
{
    RegionParams p = base(Pattern::Sequential, WordSel::Single, 1,
                          8 * kLineBytes);
    RegionStream a(p, 0, 0x1000, 1);
    RegionStream b(p, 0, 0x1000, 99); // different seed
    for (int i = 0; i < 8; ++i) {
        auto ba = visit(a);
        auto bb = visit(b);
        ASSERT_EQ(ba.size(), 1u);
        // Word choice is a pure function of the line, not the RNG.
        EXPECT_EQ(wordIdxOf(ba[0].addr), wordIdxOf(bb[0].addr));
    }
}

TEST(RegionStream, SparseKWordsAreDistinct)
{
    RegionParams p = base(Pattern::Sequential, WordSel::SparseK, 5,
                          16 * kLineBytes);
    RegionStream rs(p, 0, 0x1000, 1);
    for (int i = 0; i < 16; ++i) {
        auto burst = visit(rs);
        ASSERT_EQ(burst.size(), 5u);
        std::set<WordIdx> words;
        for (const Access &a : burst)
            words.insert(wordIdxOf(a.addr));
        EXPECT_EQ(words.size(), 5u);
    }
}

TEST(RegionStream, RandomLineStaysInRegion)
{
    RegionParams p = base(Pattern::RandomLine, WordSel::Single, 1,
                          64 * kLineBytes);
    RegionStream rs(p, 1000, 0x1000, 1);
    for (int i = 0; i < 1000; ++i) {
        auto burst = visit(rs);
        LineAddr line = lineAddrOf(burst[0].addr);
        EXPECT_GE(line, 1000u);
        EXPECT_LT(line, 1064u);
    }
}

TEST(RegionStream, RandomLineCoversRegion)
{
    RegionParams p = base(Pattern::RandomLine, WordSel::Single, 1,
                          16 * kLineBytes);
    RegionStream rs(p, 0, 0x1000, 1);
    std::set<LineAddr> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(lineAddrOf(visit(rs)[0].addr));
    EXPECT_EQ(seen.size(), 16u);
}

TEST(RegionStream, StridedCoversAllLinesAcrossSweeps)
{
    RegionParams p = base(Pattern::Strided, WordSel::Single, 1,
                          32 * kLineBytes);
    p.strideLines = 4;
    RegionStream rs(p, 0, 0x1000, 1);
    std::set<LineAddr> seen;
    for (int i = 0; i < 32; ++i)
        seen.insert(lineAddrOf(visit(rs)[0].addr));
    EXPECT_EQ(seen.size(), 32u);
}

TEST(RegionStream, PointerChaseIsDeterministicAndDependent)
{
    RegionParams p = base(Pattern::PointerChase, WordSel::SparseK, 2,
                          256 * kLineBytes);
    p.depDist = 1;
    RegionStream a(p, 0, 0x1000, 5);
    RegionStream b(p, 0, 0x1000, 5);
    for (int i = 0; i < 50; ++i) {
        auto ba = visit(a);
        auto bb = visit(b);
        ASSERT_EQ(ba.size(), bb.size());
        EXPECT_EQ(ba[0].addr, bb[0].addr);
        // First access of a chase burst carries the dependence.
        EXPECT_EQ(ba[0].depDist, 1);
        for (std::size_t j = 1; j < ba.size(); ++j)
            EXPECT_EQ(ba[j].depDist, 0);
    }
}

TEST(RegionStream, DelayedSpatialPairsLeadAndTrail)
{
    RegionParams p = base(Pattern::DelayedSpatial, WordSel::Full, 8,
                          64 * kLineBytes);
    p.delayLines = 16;
    RegionStream rs(p, 0, 0x1000, 1);

    // First visit: one-word lead touch of line 0.
    auto lead = visit(rs);
    ASSERT_EQ(lead.size(), 1u);
    EXPECT_EQ(lineAddrOf(lead[0].addr), 0u);
    EXPECT_EQ(wordIdxOf(lead[0].addr), 0u);

    // Second visit: full-line trail touch, delayLines behind
    // (wrapping).
    auto trail = visit(rs);
    ASSERT_EQ(trail.size(), kWordsPerLine);
    EXPECT_EQ(lineAddrOf(trail[0].addr), 64u - 16u);
}

TEST(RegionStream, DelayedSpatialTrailEventuallyRevisitsLead)
{
    RegionParams p = base(Pattern::DelayedSpatial, WordSel::Full, 8,
                          32 * kLineBytes);
    p.delayLines = 4;
    RegionStream rs(p, 0, 0x1000, 1);
    std::map<LineAddr, int> lead_seen;
    bool matched = false;
    for (int i = 0; i < 200; ++i) {
        auto burst = visit(rs);
        LineAddr line = lineAddrOf(burst[0].addr);
        if (burst.size() == 1) {
            lead_seen[line] = i;
        } else if (lead_seen.count(line)) {
            matched = true; // the trail reached a lead-touched line
        }
    }
    EXPECT_TRUE(matched);
}

TEST(RegionStream, PoolRotateStableWithinEpochWindow)
{
    RegionParams p = base(Pattern::Sequential, WordSel::PoolRotate,
                          1, 4 * kLineBytes);
    p.poolSize = 4;
    p.rotateEvery = 100; // effectively frozen for this test
    RegionStream rs(p, 0, 0x1000, 1);
    std::map<LineAddr, WordIdx> first;
    for (int sweep = 0; sweep < 3; ++sweep) {
        for (int l = 0; l < 4; ++l) {
            auto burst = visit(rs);
            ASSERT_EQ(burst.size(), 1u);
            LineAddr line = lineAddrOf(burst[0].addr);
            WordIdx w = wordIdxOf(burst[0].addr);
            if (first.count(line))
                EXPECT_EQ(first[line], w) << "sweep " << sweep;
            else
                first[line] = w;
        }
    }
}

TEST(RegionStream, PoolRotateChangesAcrossRotationBoundary)
{
    RegionParams p = base(Pattern::Sequential, WordSel::PoolRotate,
                          1, 2 * kLineBytes);
    p.poolSize = 4;
    p.rotateEvery = 1; // rotate every sweep
    RegionStream rs(p, 0, 0x1000, 1);
    // Collect each line's word across 4 sweeps: with a pool of 4 and
    // per-sweep rotation we must see more than one distinct word.
    std::map<LineAddr, std::set<WordIdx>> words;
    for (int sweep = 0; sweep < 4; ++sweep) {
        for (int l = 0; l < 2; ++l) {
            auto burst = visit(rs);
            words[lineAddrOf(burst[0].addr)]
                .insert(wordIdxOf(burst[0].addr));
        }
    }
    for (const auto &[line, set] : words)
        EXPECT_GT(set.size(), 1u) << "line " << line;
}

TEST(RegionStream, FootprintClassesShareWordSets)
{
    // With pcClasses set, lines in the same class touch identical
    // word sets and carry class-identifying PCs -- the property the
    // SFP baseline's predictor learns from.
    RegionParams p = base(Pattern::Sequential, WordSel::SparseK, 3,
                          256 * kLineBytes);
    p.pcClasses = 4;
    RegionStream rs(p, 0, 0x1000, 1);
    std::map<Addr, std::set<std::uint64_t>> words_by_pc;
    for (int i = 0; i < 256; ++i) {
        auto burst = visit(rs);
        ASSERT_EQ(burst.size(), 3u);
        std::uint64_t word_mask = 0;
        for (const Access &a : burst)
            word_mask |= 1ull << wordIdxOf(a.addr);
        // Key by the first access's PC: all lines of a class share
        // it, and must share the word set.
        words_by_pc[burst[0].pc].insert(word_mask);
    }
    // At most 4 distinct classes, each with exactly one word set.
    EXPECT_LE(words_by_pc.size(), 4u);
    for (const auto &[pc, masks] : words_by_pc)
        EXPECT_EQ(masks.size(), 1u) << pc;
}

TEST(RegionStream, PerLineFootprintsAreDiverse)
{
    // Without classes, a region of many lines shows many distinct
    // word sets (unlearnable by a PC-indexed predictor).
    RegionParams p = base(Pattern::Sequential, WordSel::SparseK, 3,
                          256 * kLineBytes);
    RegionStream rs(p, 0, 0x1000, 1);
    std::set<std::uint64_t> masks;
    for (int i = 0; i < 256; ++i) {
        auto burst = visit(rs);
        std::uint64_t word_mask = 0;
        for (const Access &a : burst)
            word_mask |= 1ull << wordIdxOf(a.addr);
        masks.insert(word_mask);
    }
    EXPECT_GT(masks.size(), 20u);
}

TEST(RegionStream, ResetReproducesStream)
{
    RegionParams p = base(Pattern::RandomLine, WordSel::SparseK, 3,
                          128 * kLineBytes);
    RegionStream rs(p, 0, 0x1000, 9);
    std::vector<Access> first;
    for (int i = 0; i < 20; ++i) {
        auto b = visit(rs);
        first.insert(first.end(), b.begin(), b.end());
    }
    rs.reset();
    std::vector<Access> second;
    for (int i = 0; i < 20; ++i) {
        auto b = visit(rs);
        second.insert(second.end(), b.begin(), b.end());
    }
    ASSERT_EQ(first.size(), second.size());
    for (std::size_t i = 0; i < first.size(); ++i) {
        EXPECT_EQ(first[i].addr, second[i].addr);
        EXPECT_EQ(first[i].write, second[i].write);
        EXPECT_EQ(first[i].nonMemOps, second[i].nonMemOps);
    }
}

TEST(RegionStream, OpsAndBranchesWithinBounds)
{
    RegionParams p = base(Pattern::Sequential, WordSel::Full, 8,
                          16 * kLineBytes);
    p.meanOps = 10;
    RegionStream rs(p, 0, 0x1000, 3);
    std::uint64_t total_ops = 0, n = 0;
    for (int i = 0; i < 500; ++i) {
        for (const Access &a : visit(rs)) {
            EXPECT_LE(a.nonMemOps, 20u);
            EXPECT_LE(a.branches, a.nonMemOps);
            total_ops += a.nonMemOps;
            ++n;
        }
    }
    EXPECT_NEAR(static_cast<double>(total_ops) / n, 10.0, 1.0);
}

TEST(RegionStreamDeath, DelayedSpatialDelayMustFitRegion)
{
    RegionParams p = base(Pattern::DelayedSpatial, WordSel::Full, 8,
                          8 * kLineBytes);
    p.delayLines = 8;
    EXPECT_EXIT(RegionStream(p, 0, 0x1000, 1),
                testing::ExitedWithCode(1), "delayLines");
}

} // namespace
} // namespace ldis
