// ldis-lint fixture: a model written to the project invariants —
// annotated locks only, deterministic clocks, a const audit hook
// next to its LDIS_AUDIT_POINT, and an allocation-free hot path.
// Every rule must stay silent on this file.

#include <chrono>
#include <cstdint>
#include <string>

#include "common/thread_annotations.hh"

namespace fixture
{

class Clockish
{
  public:
    bool due() { return ++ticks % 4096 == 0; }

  private:
    std::uint64_t ticks = 0;
};

#define LDIS_AUDIT_POINT(clock, model, obj) ((void)0)

class CleanModel
{
  public:
    void
    cleanWalk(const std::uint8_t *events, std::size_t n)
    {
        for (std::size_t i = 0; i < n; ++i)
            occupancy += events[i] & 1u;
        LDIS_AUDIT_POINT(auditClock, "CleanModel", *this);
    }

    std::string
    auditInvariants() const
    {
        return occupancy <= kCapacity ? std::string()
                                      : "occupancy over capacity";
    }

    bool checkInvariants() const { return auditInvariants().empty(); }

    double
    secondsSince(std::chrono::steady_clock::time_point start) const
    {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start)
            .count();
    }

  private:
    static constexpr std::uint64_t kCapacity = 1024;

    mutable ldis::Mutex m;
    std::uint64_t occupancy LDIS_GUARDED_BY(m) = 0;
    Clockish auditClock;
};

} // namespace fixture
