// ldis-lint fixture: nondeterminism sources outside the allowlist
// (src/common/random.hh owns seeding; src/sim/telemetry.cc stamps
// records). Any of these inside the simulator would break the
// bit-identical replay guarantees every CI compare gate rests on.
// expect-finding: nondeterminism
// expect-finding: nondeterminism
// expect-finding: nondeterminism
// expect-finding: nondeterminism

#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

namespace fixture
{

unsigned
badSeed()
{
    std::random_device rd;                       // finding 1
    unsigned s = rd() ^ static_cast<unsigned>(
        std::rand());                            // finding 2
    s ^= static_cast<unsigned>(time(nullptr));   // finding 3
    auto wall =
        std::chrono::system_clock::now();        // finding 4
    (void)wall;
    return s;
}

double
goodClock()
{
    // steady_clock is deterministic-safe for durations: clean.
    auto t = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(
               t.time_since_epoch()).count();
}

// wall_time(x) and unixTime(x) must not match the time() pattern.
int wall_time(int x) { return x; }
int unixTime(int x) { return wall_time(x); }

} // namespace fixture
