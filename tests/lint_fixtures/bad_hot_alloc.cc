// ldis-lint fixture: direct heap allocation inside functions the
// rule config names as steady-state hot paths (the real-tree
// equivalents are the gang-replay chunk walk and the cache access
// paths). Each allocating construct below must be flagged.
// expect-finding: hot-path-alloc
// expect-finding: hot-path-alloc
// expect-finding: hot-path-alloc
// expect-finding: hot-path-alloc

#include <cstdlib>
#include <vector>

namespace fixture
{

struct Walker
{
    std::vector<int> scratch;

    void
    hotWalk(int n)
    {
        int *p = new int[n];            // finding 1: operator new
        void *q = std::malloc(16);      // finding 2: C allocation
        scratch.push_back(n);           // finding 3: container call
        delete[] p;
        std::free(q);
    }

    void
    coldSetup(int n)
    {
        // Same constructs outside a configured hot function: clean.
        scratch.reserve(static_cast<std::size_t>(n));
    }
};

// Named-lambda form (the real tree's walk_chunk is one of these).
auto hotLambda = [](std::vector<int> &v, int x) {
    v.emplace_back(x); // finding 4: container call
};

} // namespace fixture
