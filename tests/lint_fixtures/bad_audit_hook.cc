// ldis-lint fixture: an LDIS_AUDIT_POINT site in a translation unit
// that declares no auditInvariants() hook (and has no paired header
// that does). Dead armor: the point can only be auditing some other
// model's state, or nothing.
// expect-finding: audit-hook

namespace fixture
{

struct Clockish
{
    bool due() { return false; }
};

#define LDIS_AUDIT_POINT(clock, model, obj) ((void)0)

struct HookLessModel
{
    Clockish auditClock;

    void
    access()
    {
        LDIS_AUDIT_POINT(auditClock, "HookLessModel", *this);
    }
};

} // namespace fixture
