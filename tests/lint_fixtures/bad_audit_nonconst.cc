// ldis-lint fixture: auditInvariants() hooks that violate the
// read-only audit contract — a non-const declaration, and a const
// body that launders mutation through const_cast. Audited runs must
// be bit-identical to unaudited ones; const-qualification is how
// the compiler proves it.
// expect-finding: audit-const
// expect-finding: audit-const

#include <string>

namespace fixture
{

struct BadModelA
{
    int occupancy = 0;

    // finding 1: not const-qualified.
    std::string
    auditInvariants()
    {
        occupancy = 0; // an audit that "fixes" state silently
        return "";
    }
};

struct BadModelB
{
    int occupancy = 0;

    std::string
    auditInvariants() const
    {
        // finding 2: const_cast defeats the contract.
        const_cast<BadModelB *>(this)->occupancy = 0;
        return "";
    }
};

struct GoodModel
{
    int occupancy = 0;

    // Clean: const declaration (header-style, no body here).
    std::string auditInvariants() const;

    bool
    checkInvariants() const
    {
        // Clean: unqualified self-call is a call site, not a decl.
        return auditInvariants().empty();
    }
};

} // namespace fixture
