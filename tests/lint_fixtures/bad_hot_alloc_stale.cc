// ldis-lint fixture: the rule config names a hot function that does
// not exist in this file. A stale scripts/ldis_lint_rules.json
// entry must be a finding, not a silent pass — otherwise a renamed
// hot path drops out of enforcement unnoticed.
// expect-finding: hot-path-alloc

namespace fixture
{

void
renamedWalk()
{
    // The config still says "noSuchFn".
}

} // namespace fixture
