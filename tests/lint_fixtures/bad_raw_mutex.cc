// ldis-lint fixture: raw standard-library lock types outside
// src/common/thread_annotations.hh. Every one of these must be the
// annotated ldis::Mutex / ldis::ScopedLock / ldis::CondVar instead,
// or the Clang thread-safety wall cannot see the lock.
// expect-finding: raw-mutex
// expect-finding: raw-mutex
// expect-finding: raw-mutex
// expect-finding: raw-mutex

#include <condition_variable>
#include <mutex>

namespace fixture
{

struct BadRegistry
{
    std::mutex m;                 // finding 1
    std::condition_variable cv;   // finding 2

    void
    poke()
    {
        std::lock_guard<std::mutex> lock(m); // findings 3 + 4
    }
};

// A raw mutex hidden in a comment must NOT fire: std::mutex here.
// And one in a string must not either:
const char *kDecoy = "std::mutex std::condition_variable";

} // namespace fixture
