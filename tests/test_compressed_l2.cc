/** @file Unit tests for the CMPR compressed cache (Section 8). */

#include <gtest/gtest.h>

#include "compression/compressed_l2.hh"
#include "trace/benchmarks.hh"

namespace ldis
{
namespace
{

CompressedL2Params
tinyParams()
{
    CompressedL2Params p;
    p.bytes = 2ull * 8 * kLineBytes; // 2 sets x 8 data ways
    p.ways = 8;
    p.tagFactor = 4;
    return p;
}

Addr
wordAddr(LineAddr line, WordIdx w)
{
    return lineBaseOf(line) + w * kWordBytes;
}

LineAddr
set0(unsigned i)
{
    return static_cast<LineAddr>(i) * 2;
}

TEST(CompressedL2, MissThenHit)
{
    ValueModel values({0.5, 0.1, 0.2}, 1);
    CompressedL2 l2(tinyParams(), values);
    EXPECT_EQ(l2.access(wordAddr(2, 0), false, 0, false).outcome,
              L2Outcome::LineMiss);
    EXPECT_EQ(l2.access(wordAddr(2, 0), false, 0, false).outcome,
              L2Outcome::LocHit);
}

TEST(CompressedL2, CompressedLinesExceedWayCount)
{
    // All-zero data: each line takes 1 segment of 8, so a set can
    // hold far more than 8 lines (up to the 32 tags).
    ValueModel zeros({1.0, 0.0, 0.0}, 1);
    CompressedL2 l2(tinyParams(), zeros);
    for (unsigned i = 0; i < 32; ++i)
        l2.access(wordAddr(set0(i), 0), false, 0, false);
    std::uint64_t hits_before = l2.stats().locHits;
    for (unsigned i = 0; i < 32; ++i)
        l2.access(wordAddr(set0(i), 0), false, 0, false);
    EXPECT_EQ(l2.stats().locHits, hits_before + 32);
    EXPECT_TRUE(l2.checkIntegrity());
}

TEST(CompressedL2, IncompressibleLinesLimitedToWays)
{
    ValueModel wide({0.0, 0.0, 0.0}, 1);
    CompressedL2 l2(tinyParams(), wide);
    for (unsigned i = 0; i < 9; ++i)
        l2.access(wordAddr(set0(i), 0), false, 0, false);
    // Only 8 fit: line 0 must have been evicted (LRU).
    EXPECT_EQ(l2.access(wordAddr(set0(0), 0), false, 0, false)
                  .outcome,
              L2Outcome::LineMiss);
    EXPECT_TRUE(l2.checkIntegrity());
}

TEST(CompressedL2, TagLimitBoundsLineCount)
{
    ValueModel zeros({1.0, 0.0, 0.0}, 1);
    CompressedL2 l2(tinyParams(), zeros);
    // 33 one-segment lines: the 33rd must evict (only 32 tags).
    for (unsigned i = 0; i < 33; ++i)
        l2.access(wordAddr(set0(i), 0), false, 0, false);
    EXPECT_GT(l2.stats().evictions, 0u);
    EXPECT_TRUE(l2.checkIntegrity());
}

TEST(CompressedL2, AvgSegmentsReflectsCompressibility)
{
    ValueModel zeros({1.0, 0.0, 0.0}, 1);
    CompressedL2 a(tinyParams(), zeros);
    a.access(wordAddr(0, 0), false, 0, false);
    EXPECT_DOUBLE_EQ(a.avgSegmentsPerLine(), 1.0);

    ValueModel wide({0.0, 0.0, 0.0}, 1);
    CompressedL2 b(tinyParams(), wide);
    b.access(wordAddr(0, 0), false, 0, false);
    EXPECT_DOUBLE_EQ(b.avgSegmentsPerLine(), 8.0);
}

TEST(CompressedL2, DirtyEvictionWritesBack)
{
    ValueModel wide({0.0, 0.0, 0.0}, 1);
    CompressedL2 l2(tinyParams(), wide);
    l2.access(wordAddr(set0(0), 0), true, 0, false);
    for (unsigned i = 1; i <= 8; ++i)
        l2.access(wordAddr(set0(i), 0), false, 0, false);
    EXPECT_EQ(l2.stats().writebacks, 1u);
}

TEST(CompressedL2, L1EvictionDirtyHandling)
{
    ValueModel zeros({1.0, 0.0, 0.0}, 1);
    CompressedL2 l2(tinyParams(), zeros);
    l2.access(wordAddr(2, 0), false, 0, false);
    Footprint dirty;
    dirty.set(0);
    l2.l1dEviction(2, Footprint::full(), dirty); // resident: marks
    EXPECT_EQ(l2.stats().writebacks, 0u);
    l2.l1dEviction(999, Footprint::full(), dirty); // absent: WB
    EXPECT_EQ(l2.stats().writebacks, 1u);
}

TEST(CompressedL2, MixedSizesRespectSegmentBudget)
{
    // Random benchmark-profile data: run traffic and check the
    // per-set segment accounting invariant throughout.
    ValueModel values({0.3, 0.05, 0.3}, 11);
    CompressedL2 l2(tinyParams(), values);
    auto workload = makeBenchmark("twolf");
    for (int i = 0; i < 30000; ++i) {
        Access a = workload->next();
        l2.access(a.addr, a.write, a.pc, false);
        if (i % 1000 == 0)
            ASSERT_TRUE(l2.checkIntegrity()) << i;
    }
    EXPECT_TRUE(l2.checkIntegrity());
    const L2Stats &s = l2.stats();
    EXPECT_EQ(s.accesses, s.hits() + s.misses());
}

} // namespace
} // namespace ldis
