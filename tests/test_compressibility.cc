/** @file Tests for the Figure-10 compressibility sampler. */

#include <gtest/gtest.h>

#include "cache/hierarchy.hh"
#include "cache/traditional_l2.hh"
#include "compression/compressibility.hh"
#include "trace/benchmarks.hh"

namespace ldis
{
namespace
{

CacheGeometry
geom()
{
    CacheGeometry g;
    g.bytes = 1 << 20;
    g.ways = 8;
    return g;
}

TEST(Compressibility, DistributionsSumToOne)
{
    auto workload = makeBenchmark("mcf");
    ValueModel values(workload->valueProfile());
    TraditionalL2 l2(geom());
    Hierarchy hier(*workload, l2);
    hier.run(400000);
    CompressibilitySampler sampler(values);
    sampler.sample(l2.tags());

    const CompressDistribution &w = sampler.wholeLine();
    ASSERT_GT(w.total, 0u);
    double sum = 0.0;
    for (auto c : {CompressClass::OneEighth,
                   CompressClass::OneFourth, CompressClass::OneHalf,
                   CompressClass::Full})
        sum += w.fraction(c);
    EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(Compressibility, UsedWordsNeverWorseThanWholeLine)
{
    // Filtering unused words can only shrink a line, so the
    // cumulative fraction at or below any class must not decrease.
    for (const char *name : {"mcf", "art", "wupwise"}) {
        auto workload = makeBenchmark(name);
        ValueModel values(workload->valueProfile());
        TraditionalL2 l2(geom());
        Hierarchy hier(*workload, l2);
        hier.run(400000);
        CompressibilitySampler sampler(values);
        sampler.sample(l2.tags());

        const CompressDistribution &w = sampler.wholeLine();
        const CompressDistribution &u = sampler.usedWords();
        double w_cum = 0.0, u_cum = 0.0;
        for (auto c : {CompressClass::OneEighth,
                       CompressClass::OneFourth,
                       CompressClass::OneHalf}) {
            w_cum += w.fraction(c);
            u_cum += u.fraction(c);
            EXPECT_GE(u_cum, w_cum - 1e-9) << name;
        }
    }
}

TEST(Compressibility, SparseBenchmarksCompressWellWhenFiltered)
{
    // Figure 10(b): mcf's used words land overwhelmingly in the 1/8
    // and 1/4 classes.
    auto workload = makeBenchmark("mcf");
    ValueModel values(workload->valueProfile());
    TraditionalL2 l2(geom());
    Hierarchy hier(*workload, l2);
    hier.run(600000);
    CompressibilitySampler sampler(values);
    sampler.sample(l2.tags());
    const CompressDistribution &u = sampler.usedWords();
    EXPECT_GT(u.fraction(CompressClass::OneEighth) +
                  u.fraction(CompressClass::OneFourth),
              0.5);
}

TEST(Compressibility, RepeatedSamplesAccumulate)
{
    auto workload = makeBenchmark("twolf");
    ValueModel values(workload->valueProfile());
    TraditionalL2 l2(geom());
    Hierarchy hier(*workload, l2);
    hier.run(200000);
    CompressibilitySampler sampler(values);
    sampler.sample(l2.tags());
    std::uint64_t after_one = sampler.wholeLine().total;
    sampler.sample(l2.tags());
    EXPECT_EQ(sampler.wholeLine().total, 2 * after_one);
}

TEST(Compressibility, InstructionLinesExcluded)
{
    ValueModel values({0.5, 0.1, 0.2}, 1);
    TraditionalL2 l2(geom());
    l2.access(0x1000, false, 0, true);  // instruction line
    l2.access(0x2000, false, 0, false); // data line
    CompressibilitySampler sampler(values);
    sampler.sample(l2.tags());
    EXPECT_EQ(sampler.wholeLine().total, 1u);
}

} // namespace
} // namespace ldis
