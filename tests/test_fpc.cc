/** @file Unit tests for the FPC encoder (footnote 9). */

#include <gtest/gtest.h>

#include "compression/encoder.hh"
#include "compression/fpc.hh"

namespace ldis
{
namespace
{

TEST(Fpc, PatternSizes)
{
    EXPECT_EQ(fpcEncodedBits(0u), 3u);                 // zero
    EXPECT_EQ(fpcEncodedBits(1u), 3u + 4);             // 4-bit SE
    EXPECT_EQ(fpcEncodedBits(7u), 3u + 4);
    EXPECT_EQ(fpcEncodedBits(0xfffffff9u), 3u + 4);    // -7
    EXPECT_EQ(fpcEncodedBits(100u), 3u + 8);           // 8-bit SE
    EXPECT_EQ(fpcEncodedBits(0xffffff80u), 3u + 8);    // -128
    EXPECT_EQ(fpcEncodedBits(0xffffff00u), 3u + 16);   // -256: SE-16
    EXPECT_EQ(fpcEncodedBits(30000u), 3u + 16);        // 16-bit SE
    EXPECT_EQ(fpcEncodedBits(0xffff8000u), 3u + 16);
}

TEST(Fpc, HalfwordPadded)
{
    // Upper half zero, lower half arbitrary (not SE-compressible).
    EXPECT_EQ(fpcEncodedBits(0x0000ff00u), 3u + 16);
}

TEST(Fpc, TwoSignExtendedHalfwords)
{
    // Each halfword fits in a signed byte: 0x00050003.
    EXPECT_EQ(fpcEncodedBits(0x00050003u), 3u + 16);
    // 0xff80 is -128 as a halfword; pair with 0x007f.
    EXPECT_EQ(fpcEncodedBits(0xff80007fu), 3u + 16);
}

TEST(Fpc, RepeatedBytes)
{
    EXPECT_EQ(fpcEncodedBits(0xabababab), 3u + 8);
    EXPECT_EQ(fpcEncodedBits(0x42424242u), 3u + 8);
}

TEST(Fpc, Uncompressible)
{
    EXPECT_EQ(fpcEncodedBits(0x12345678u), 3u + 32);
    EXPECT_EQ(fpcEncodedBits(0xdeadbeefu), 3u + 32);
}

TEST(Fpc, NeverWorseThanUncompressed)
{
    // Sweep a spread of values: FPC output <= 35 bits always.
    for (std::uint64_t i = 0; i < 100000; i += 37)
        EXPECT_LE(fpcEncodedBits(static_cast<std::uint32_t>(
                      i * 2654435761u)),
                  35u);
}

TEST(Fpc, LineCompressionTracksTable4)
{
    // Footnote 9: on this value model the FPC and Table-4 encoders
    // produce similar sizes. Check they are within 2x of each other
    // on average and strictly ordered on extremes.
    ValueModel zeros({1.0, 0.0, 0.0}, 1);
    // FPC encodes a zero dword in 3 bits vs Table-4's 2 bits.
    EXPECT_EQ(fpcCompressedLineBytes(zeros, 0), 6u);

    ValueModel mixed({0.3, 0.1, 0.3}, 5);
    double t4 = 0.0, fpc = 0.0;
    for (LineAddr l = 0; l < 512; ++l) {
        t4 += compressedLineBytes(mixed, l);
        fpc += fpcCompressedLineBytes(mixed, l);
    }
    EXPECT_NEAR(fpc / t4, 1.0, 0.35);
}

TEST(Fpc, UsedWordsOnlyMonotone)
{
    ValueModel m({0.2, 0.1, 0.3}, 7);
    for (LineAddr line = 0; line < 16; ++line) {
        unsigned prev = 0;
        Footprint fp;
        for (WordIdx w = 0; w < kWordsPerLine; ++w) {
            fp.set(w);
            unsigned bytes = fpcCompressedBytes(m, line, fp);
            EXPECT_GE(bytes, prev);
            prev = bytes;
        }
    }
}

TEST(Fpc, DispatchThroughEncoderKind)
{
    ValueModel zeros({1.0, 0.0, 0.0}, 1);
    EXPECT_EQ(compressedBytes(EncoderKind::Fpc, zeros, 0,
                              Footprint::full()),
              fpcCompressedLineBytes(zeros, 0));
    EXPECT_EQ(compressedBytes(EncoderKind::Table4, zeros, 0,
                              Footprint::full()),
              compressedLineBytes(zeros, 0));
}

} // namespace
} // namespace ldis
