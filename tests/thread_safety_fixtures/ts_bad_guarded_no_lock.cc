// Thread-safety negative fixture: writing a GUARDED_BY member
// without holding its mutex. Must FAIL to compile under
// clang -Werror=thread-safety (see scripts/check_thread_safety_fixtures.sh).

#include "common/thread_annotations.hh"

struct Model
{
    ldis::Mutex m;
    int value LDIS_GUARDED_BY(m) = 0;

    void
    racyWrite()
    {
        value = 1; // error: writing variable 'value' requires holding mutex 'm'
    }
};

int
main()
{
    Model model;
    model.racyWrite();
    return 0;
}
