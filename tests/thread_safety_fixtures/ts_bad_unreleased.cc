// Thread-safety negative fixture: a path that returns with the
// mutex still held (manual lock with no unlock on one branch).
// Must FAIL to compile under clang -Werror=thread-safety.

#include "common/thread_annotations.hh"

struct Model
{
    ldis::Mutex m;
    int value LDIS_GUARDED_BY(m) = 0;

    int
    leakyRead(bool early)
    {
        m.lock();
        if (early)
            return value; // error: mutex 'm' is still held at the end of function
        int v = value;
        m.unlock();
        return v;
    }
};

int
main()
{
    Model model;
    return model.leakyRead(true);
}
