// Thread-safety negative fixture: calling a REQUIRES(m) function
// without holding m. Must FAIL to compile under
// clang -Werror=thread-safety.

#include "common/thread_annotations.hh"

struct Model
{
    ldis::Mutex m;
    int value LDIS_GUARDED_BY(m) = 0;

    int
    readLocked() LDIS_REQUIRES(m)
    {
        return value;
    }
};

int
main()
{
    Model model;
    return model.readLocked(); // error: requires holding mutex 'model.m'
}
