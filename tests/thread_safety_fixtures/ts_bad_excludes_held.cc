// Thread-safety negative fixture: calling an EXCLUDES(m) function
// while already holding m — the self-deadlock shape the EXCLUDES
// annotations on every public hub/registry method exist to prevent.
// Must FAIL to compile under clang -Werror=thread-safety.

#include "common/thread_annotations.hh"

struct Model
{
    ldis::Mutex m;
    int value LDIS_GUARDED_BY(m) = 0;

    int
    read() LDIS_EXCLUDES(m)
    {
        ldis::ScopedLock lock(m);
        return value;
    }

    int
    deadlock()
    {
        ldis::ScopedLock lock(m);
        return read(); // error: cannot call function 'read' while mutex 'm' is held
    }
};

int
main()
{
    Model model;
    return model.deadlock();
}
