// Thread-safety positive control: a correctly annotated model using
// every vocabulary element the tree relies on — GUARDED_BY members,
// ScopedLock sections, EXCLUDES/REQUIRES methods, a condition-
// variable wait with an assertHeld() predicate, and the manual
// unlock/relock shape. Must compile CLEANLY under
// clang -Werror=thread-safety; if this file ever warns, the fixture
// harness itself is miswired (or the analysis changed semantics).

#include "common/thread_annotations.hh"

struct Model
{
    ldis::Mutex m;
    ldis::CondVar cv;
    int value LDIS_GUARDED_BY(m) = 0;
    bool ready LDIS_GUARDED_BY(m) = false;

    void
    publish(int v) LDIS_EXCLUDES(m)
    {
        ldis::ScopedLock lock(m);
        value = v;
        ready = true;
        cv.notify_one();
    }

    int
    consume() LDIS_EXCLUDES(m)
    {
        ldis::ScopedLock lock(m);
        cv.wait(m, [this]() {
            m.assertHeld();
            return ready;
        });
        return drainLocked();
    }

    int
    drainLocked() LDIS_REQUIRES(m)
    {
        ready = false;
        return value;
    }

    int
    roundTrip() LDIS_EXCLUDES(m)
    {
        ldis::ScopedLock lock(m);
        int v = value;
        lock.unlock();
        // ... lock-free work ...
        lock.lock();
        v += value;
        return v;
    }
};

int
main()
{
    Model model;
    model.publish(1);
    return model.consume() + model.roundTrip();
}
