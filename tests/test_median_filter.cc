/** @file Unit tests for median-threshold filtering (Section 5.4). */

#include <algorithm>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.hh"
#include "distill/median_filter.hh"

namespace ldis
{
namespace
{

TEST(MedianFilter, InitialThresholdInstallsEverything)
{
    MedianFilter f(4096);
    EXPECT_EQ(f.currentThreshold(), kWordsPerLine);
    for (unsigned k = 1; k <= kWordsPerLine; ++k)
        EXPECT_TRUE(f.shouldInstall(k));
}

TEST(MedianFilter, MedianOfUniformStream)
{
    MedianFilter f(800);
    // 100 evictions of each count 1..8: the paper's running-sum
    // definition picks the smallest k whose cumulative count reaches
    // half the eviction sum -> 4.
    for (unsigned k = 1; k <= 8; ++k)
        for (int i = 0; i < 100; ++i)
            f.recordEviction(k);
    EXPECT_EQ(f.currentThreshold(), 4u);
    EXPECT_TRUE(f.shouldInstall(4));
    EXPECT_FALSE(f.shouldInstall(5));
}

TEST(MedianFilter, SkewedLowStream)
{
    MedianFilter f(100);
    for (int i = 0; i < 60; ++i)
        f.recordEviction(1);
    for (int i = 0; i < 40; ++i)
        f.recordEviction(8);
    EXPECT_EQ(f.currentThreshold(), 1u);
    EXPECT_TRUE(f.shouldInstall(1));
    EXPECT_FALSE(f.shouldInstall(2));
}

TEST(MedianFilter, SkewedHighStream)
{
    MedianFilter f(100);
    for (int i = 0; i < 100; ++i)
        f.recordEviction(8);
    EXPECT_EQ(f.currentThreshold(), 8u);
}

TEST(MedianFilter, OddEvictionSumUsesCeilingHalf)
{
    // Regression: with floor division a 1-eviction epoch computed
    // half == 0, so the running sum "reached" it at k == 1 and the
    // filter returned median 1 no matter what was evicted.
    MedianFilter f(1);
    f.recordEviction(6);
    EXPECT_EQ(f.currentThreshold(), 6u);

    // Odd epoch: the median of {2, 5, 8} is the 2nd-smallest
    // (ceil(3/2) = 2 running evictions), i.e. 5.
    MedianFilter g(3);
    g.recordEviction(8);
    g.recordEviction(2);
    g.recordEviction(5);
    EXPECT_EQ(g.currentThreshold(), 5u);

    // Larger odd skew: 3 narrow + 2 wide -> median is narrow.
    MedianFilter h(5);
    for (int i = 0; i < 3; ++i)
        h.recordEviction(2);
    for (int i = 0; i < 2; ++i)
        h.recordEviction(8);
    EXPECT_EQ(h.currentThreshold(), 2u);
}

TEST(MedianFilter, RecomputesEveryEpoch)
{
    MedianFilter f(10);
    for (int i = 0; i < 10; ++i)
        f.recordEviction(2);
    EXPECT_EQ(f.currentThreshold(), 2u);
    // Phase change: the next epoch sees wide lines.
    for (int i = 0; i < 10; ++i)
        f.recordEviction(7);
    EXPECT_EQ(f.currentThreshold(), 7u);
    EXPECT_EQ(f.epochEvictions(), 0u);
}

TEST(MedianFilter, MatchesReferenceMedian)
{
    // Property: against a random stream, the filter's threshold at
    // each epoch boundary equals the smallest k with cumulative
    // count >= half (cross-checked with a sorted reference).
    Random rng(99);
    for (int trial = 0; trial < 20; ++trial) {
        const std::uint64_t epoch = 512;
        MedianFilter f(epoch);
        std::vector<unsigned> sample;
        for (std::uint64_t i = 0; i < epoch; ++i) {
            unsigned k =
                1 + static_cast<unsigned>(rng.below(8));
            sample.push_back(k);
            f.recordEviction(k);
        }
        std::sort(sample.begin(), sample.end());
        // Reference: smallest k whose cumulative count reaches
        // epoch/2 == element at index epoch/2 - 1.
        unsigned ref = sample[epoch / 2 - 1];
        EXPECT_EQ(f.currentThreshold(), ref) << "trial " << trial;
    }
}

TEST(MedianFilter, FrozenThresholdNeverRecomputes)
{
    // The ablation study freezes the threshold by combining a huge
    // epoch with an initial threshold.
    MedianFilter f(std::numeric_limits<std::uint64_t>::max(), 2);
    for (int i = 0; i < 100000; ++i)
        f.recordEviction(8);
    EXPECT_EQ(f.currentThreshold(), 2u);
    EXPECT_TRUE(f.shouldInstall(2));
    EXPECT_FALSE(f.shouldInstall(3));
}

TEST(MedianFilterDeath, BadEvictionCountPanics)
{
    MedianFilter f(10);
    EXPECT_DEATH(f.recordEviction(0), "assert");
    EXPECT_DEATH(f.recordEviction(9), "assert");
}

} // namespace
} // namespace ldis
