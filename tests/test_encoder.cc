/** @file Unit tests for the Table-4 compression encoding. */

#include <gtest/gtest.h>

#include "compression/encoder.hh"

namespace ldis
{
namespace
{

TEST(Encoder, Table4Codes)
{
    EXPECT_EQ(encodedBits(0u), 2u);            // code 00
    EXPECT_EQ(encodedBits(1u), 2u);            // code 01
    EXPECT_EQ(encodedBits(2u), 18u);           // code 10
    EXPECT_EQ(encodedBits(0xffffu), 18u);      // code 10
    EXPECT_EQ(encodedBits(0x10000u), 34u);     // code 11
    EXPECT_EQ(encodedBits(0xffffffffu), 34u);  // code 11
}

TEST(Encoder, AllZeroLineCompressesToEighth)
{
    ValueModel zeros({1.0, 0.0, 0.0}, 1);
    // 16 dwords x 2 bits = 32 bits = 4 bytes.
    EXPECT_EQ(compressedLineBytes(zeros, 0), 4u);
    EXPECT_EQ(classifySize(4), CompressClass::OneEighth);
}

TEST(Encoder, IncompressibleLineIsFull)
{
    ValueModel wide({0.0, 0.0, 0.0}, 1);
    // 16 dwords x 34 bits = 544 bits = 68 bytes (> 64).
    EXPECT_EQ(compressedLineBytes(wide, 0), 68u);
    EXPECT_EQ(classifySize(68), CompressClass::Full);
}

TEST(Encoder, AllNarrowLineJustMissesHalf)
{
    ValueModel narrow({0.0, 0.0, 1.0}, 1);
    // 16 dwords x 18 bits = 288 bits = 36 bytes: the 2-bit codes
    // push a pure-narrow line past the 32B one-half boundary, so it
    // classifies as full -- the encoding needs zeros/ones in the mix
    // to reach the one-half class.
    EXPECT_EQ(compressedLineBytes(narrow, 0), 36u);
    EXPECT_EQ(classifySize(36), CompressClass::Full);
}

TEST(Encoder, MixedZeroNarrowLineIsHalf)
{
    // Half zeros, half narrow: 8 x 2 + 8 x 18 = 160 bits = 20 bytes
    // for 8 dwords... computed per word below via a synthetic line:
    // 4 words whose dwords are zero (4 x 2 x 2 bits) plus 4 words of
    // narrow dwords (4 x 2 x 18 bits) = 160 bits = 20 bytes if only
    // those 8 words are counted. Full-line: 16 dwords alternating
    // would be 2 + 18 per pair = 160 bits = 20 bytes -> one-fourth.
    // Use profile mixing to land in (16, 32]: 25% zero, 75% narrow:
    // expected 16 x (0.25 x 2 + 0.75 x 18) = 224 bits = 28 bytes.
    // The model is stochastic per dword, so just assert the class
    // of the aggregate across many lines is dominated by one-half
    // or better.
    ValueModel m({0.25, 0.0, 0.75}, 42);
    unsigned at_most_half = 0;
    const unsigned lines = 256;
    for (LineAddr l = 0; l < lines; ++l) {
        if (compressedLineBytes(m, l) <= 32)
            ++at_most_half;
    }
    EXPECT_GT(at_most_half, lines * 3 / 4);
}

TEST(Encoder, UsedWordsOnlyShrinksFootprint)
{
    ValueModel wide({0.0, 0.0, 0.0}, 1);
    Footprint two;
    two.set(0);
    two.set(5);
    // 2 words = 4 dwords x 34 bits = 136 bits = 17 bytes.
    unsigned bytes = compressedBytes(wide, 0, two);
    EXPECT_EQ(bytes, 17u);
    // Even incompressible values land in one-half once filtered.
    EXPECT_EQ(classifySize(bytes), CompressClass::OneHalf);
    // A single used word of zeros: 2 dwords x 2 bits = 1 byte.
    ValueModel zeros({1.0, 0.0, 0.0}, 1);
    Footprint one;
    one.set(3);
    EXPECT_EQ(compressedBytes(zeros, 0, one), 1u);
}

TEST(Encoder, EmptyFootprintIsZeroBytes)
{
    ValueModel m({0.3, 0.1, 0.2}, 1);
    EXPECT_EQ(compressedBytes(m, 0, Footprint{}), 0u);
}

TEST(Encoder, ClassBoundaries)
{
    EXPECT_EQ(classifySize(0), CompressClass::OneEighth);
    EXPECT_EQ(classifySize(8), CompressClass::OneEighth);
    EXPECT_EQ(classifySize(9), CompressClass::OneFourth);
    EXPECT_EQ(classifySize(16), CompressClass::OneFourth);
    EXPECT_EQ(classifySize(17), CompressClass::OneHalf);
    EXPECT_EQ(classifySize(32), CompressClass::OneHalf);
    EXPECT_EQ(classifySize(33), CompressClass::Full);
    EXPECT_EQ(classifySize(64), CompressClass::Full);
}

TEST(Encoder, ClassNames)
{
    EXPECT_STREQ(compressClassName(CompressClass::OneEighth),
                 "one-eighth");
    EXPECT_STREQ(compressClassName(CompressClass::Full), "full");
}

TEST(Encoder, MonotoneInFootprint)
{
    // Adding words never shrinks the compressed size.
    ValueModel m({0.3, 0.1, 0.2}, 9);
    for (LineAddr line = 0; line < 32; ++line) {
        unsigned prev = 0;
        Footprint fp;
        for (WordIdx w = 0; w < kWordsPerLine; ++w) {
            fp.set(w);
            unsigned bytes = compressedBytes(m, line, fp);
            EXPECT_GE(bytes, prev);
            prev = bytes;
        }
    }
}

} // namespace
} // namespace ldis
