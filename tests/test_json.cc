/** @file Unit tests for the JSON writer. */

#include <gtest/gtest.h>

#include "common/json.hh"

namespace ldis
{
namespace
{

TEST(Json, EmptyObject)
{
    JsonWriter j;
    j.beginObject();
    j.endObject();
    EXPECT_EQ(j.str(), "{}");
}

TEST(Json, ScalarFields)
{
    JsonWriter j;
    j.beginObject();
    j.field("name", "mcf");
    j.field("count", std::uint64_t{42});
    j.field("mpki", 1.5);
    j.field("ok", true);
    j.endObject();
    EXPECT_EQ(j.str(),
              "{\"name\":\"mcf\",\"count\":42,\"mpki\":1.5,"
              "\"ok\":true}");
}

TEST(Json, NestedObjects)
{
    JsonWriter j;
    j.beginObject();
    j.beginObject("l2");
    j.field("hits", std::uint64_t{7});
    j.endObject();
    j.beginObject("l1");
    j.field("hits", std::uint64_t{9});
    j.endObject();
    j.endObject();
    EXPECT_EQ(j.str(),
              "{\"l2\":{\"hits\":7},\"l1\":{\"hits\":9}}");
}

TEST(Json, Arrays)
{
    JsonWriter j;
    j.beginObject();
    j.beginArray("values");
    j.value(std::uint64_t{1});
    j.value(std::uint64_t{2});
    j.value(std::string("x"));
    j.endArray();
    j.endObject();
    EXPECT_EQ(j.str(), "{\"values\":[1,2,\"x\"]}");
}

TEST(Json, StringEscaping)
{
    JsonWriter j;
    j.beginObject();
    j.field("s", "a\"b\\c\nd");
    j.endObject();
    EXPECT_EQ(j.str(), "{\"s\":\"a\\\"b\\\\c\\nd\"}");
}

TEST(Json, DoubleFormatting)
{
    JsonWriter j;
    j.beginObject();
    j.field("v", 0.125);
    j.endObject();
    EXPECT_EQ(j.str(), "{\"v\":0.125}");
}

} // namespace
} // namespace ldis
