/** @file Unit tests for the SFP baseline (Section 9 / Figure 13). */

#include <gtest/gtest.h>

#include "cache/hierarchy.hh"
#include "sfp/sfp_cache.hh"
#include "trace/benchmarks.hh"

namespace ldis
{
namespace
{

TEST(SfpPredictor, DefaultsToFullLine)
{
    SfpPredictor pred(1024);
    Footprint fp = pred.predict(0x400, 3);
    EXPECT_TRUE(fp.isFull());
    EXPECT_EQ(pred.stats().lookups, 1u);
    EXPECT_EQ(pred.stats().predictions, 0u);
}

TEST(SfpPredictor, LearnsTrainedFootprint)
{
    SfpPredictor pred(1024);
    Footprint observed;
    observed.set(1);
    observed.set(4);
    pred.train(0x400, 1, observed);
    Footprint fp = pred.predict(0x400, 1);
    EXPECT_TRUE(fp.test(1));
    EXPECT_TRUE(fp.test(4));
    EXPECT_EQ(fp.count(), 2u);
    EXPECT_EQ(pred.stats().predictions, 1u);
}

TEST(SfpPredictor, PredictionAlwaysIncludesDemandWord)
{
    SfpPredictor pred(1024);
    Footprint observed;
    observed.set(7);
    pred.train(0x400, 2, observed);
    // Same key, different demanded word: word 2 must be included.
    Footprint fp = pred.predict(0x400, 2);
    EXPECT_TRUE(fp.test(2));
    EXPECT_TRUE(fp.test(7));
}

TEST(SfpPredictor, DistinctKeysAreIndependent)
{
    SfpPredictor pred(1u << 16);
    Footprint a;
    a.set(0);
    pred.train(0x1000, 0, a);
    Footprint fp = pred.predict(0x2000, 0);
    EXPECT_TRUE(fp.isFull()) << "untrained key must default";
}

TEST(SfpPredictor, StorageMatchesPaperSizes)
{
    EXPECT_EQ(SfpPredictor(16 * 1024).storageBytes(), 64u * 1024);
    EXPECT_EQ(SfpPredictor(64 * 1024).storageBytes(), 256u * 1024);
}

// ---------------------------------------------------------------

SfpParams
tinyParams()
{
    SfpParams p;
    p.bytes = 2ull * 8 * kLineBytes; // 2 sets x 8 data ways
    p.ways = 8;
    p.tagEntriesPerSet = 22;
    p.predictorEntries = 1024;
    p.useReverter = false; // too few sets for sampling
    return p;
}

Addr
wordAddr(LineAddr line, WordIdx w)
{
    return lineBaseOf(line) + w * kWordBytes;
}

TEST(SfpCache, ColdMissFetchesFullLine)
{
    SfpCache sfp(tinyParams());
    L2Result r = sfp.access(wordAddr(2, 0), false, 0x500, false);
    EXPECT_EQ(r.outcome, L2Outcome::LineMiss);
    EXPECT_TRUE(r.validWords.isFull());
    EXPECT_EQ(sfp.sfpStats().fullInstalls, 1u);
}

/**
 * Evict line 2 deterministically: 24 fresh full lines exhaust the
 * 22 tag entries, so the LRU tag (line 2's) must be trained out.
 */
void
floodSet0(SfpCache &sfp, unsigned first = 100, unsigned count = 24)
{
    for (unsigned i = 0; i < count; ++i)
        sfp.access(wordAddr(2 * (first + i), 0), false,
                   0x9000 + i * 64, false);
}

TEST(SfpCache, TrainedPredictionInstallsPartially)
{
    SfpCache sfp(tinyParams());
    // First residency: use only word 0 of line 2.
    sfp.access(wordAddr(2, 0), false, 0x500, false);
    floodSet0(sfp);
    // Second miss from the same PC/offset: partial install.
    L2Result r = sfp.access(wordAddr(2, 0), false, 0x500, false);
    EXPECT_EQ(r.outcome, L2Outcome::LineMiss);
    EXPECT_EQ(r.validWords.count(), 1u);
    EXPECT_GE(sfp.sfpStats().partialInstalls, 1u);
    EXPECT_TRUE(sfp.checkIntegrity());
}

TEST(SfpCache, UnderPredictionCausesHoleMiss)
{
    SfpCache sfp(tinyParams());
    sfp.access(wordAddr(2, 0), false, 0x500, false);
    floodSet0(sfp);
    L2Result partial = sfp.access(wordAddr(2, 0), false, 0x500,
                                  false);
    ASSERT_EQ(partial.validWords.count(), 1u);
    // Word 5 was not predicted: hole miss.
    L2Result r = sfp.access(wordAddr(2, 5), false, 0x500, false);
    EXPECT_EQ(r.outcome, L2Outcome::HoleMiss);
    EXPECT_TRUE(sfp.checkIntegrity());
    // The hole-miss refetch predicts again with word 5's demand bit
    // forced in, so the word is now resident.
    EXPECT_TRUE(sfp.access(wordAddr(2, 5), false, 0x500, false)
                    .outcome == L2Outcome::LocHit);
}

TEST(SfpCache, PartialLinesShareDataWay)
{
    SfpCache sfp(tinyParams());
    // Train two lines (distinct PCs) to single, disjoint words.
    sfp.access(wordAddr(2, 0), false, 0xa00, false);
    sfp.access(wordAddr(4, 5), false, 0xb00, false);
    floodSet0(sfp, 100, 24);
    // The flood leaves every data way holding one full line. The
    // first partial reinstall must clear exactly one way; the
    // second uses a *disjoint* word, so it shares that same way and
    // evicts nothing -- the placement flexibility a plain sectored
    // cache lacks.
    std::uint64_t ev0 = sfp.stats().evictions;
    sfp.access(wordAddr(2, 0), false, 0xa00, false);
    std::uint64_t ev1 = sfp.stats().evictions;
    EXPECT_EQ(ev1, ev0 + 1);
    sfp.access(wordAddr(4, 5), false, 0xb00, false);
    EXPECT_EQ(sfp.stats().evictions, ev1);
    // Both partial lines coexist.
    EXPECT_EQ(sfp.access(wordAddr(2, 0), false, 0xa00, false)
                  .outcome,
              L2Outcome::LocHit);
    EXPECT_EQ(sfp.access(wordAddr(4, 5), false, 0xb00, false)
                  .outcome,
              L2Outcome::LocHit);
    EXPECT_TRUE(sfp.checkIntegrity());
}

TEST(SfpCache, StatsBalance)
{
    SfpParams p;
    p.bytes = 1 << 20;
    p.useReverter = true;
    SfpCache sfp(p);
    auto workload = makeBenchmark("vpr");
    Hierarchy hier(*workload, sfp);
    hier.run(300000);
    const L2Stats &s = sfp.stats();
    EXPECT_EQ(s.accesses,
              s.locHits + s.wocHits + s.holeMisses + s.lineMisses);
    EXPECT_TRUE(sfp.checkIntegrity());
}

class SfpPropertyTest : public ::testing::TestWithParam<const char *>
{
};

TEST_P(SfpPropertyTest, IntegrityUnderTraffic)
{
    SfpParams p;
    p.bytes = 1 << 20;
    p.useReverter = true;
    SfpCache sfp(p);
    auto workload = makeBenchmark(GetParam());
    Hierarchy hier(*workload, sfp);
    hier.run(250000);
    EXPECT_TRUE(sfp.checkIntegrity());
}

INSTANTIATE_TEST_SUITE_P(Proxies, SfpPropertyTest,
                         ::testing::Values("art", "mcf", "parser",
                                           "wupwise"));

} // namespace
} // namespace ldis
