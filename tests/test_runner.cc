/**
 * @file
 * Tier-1 tests for the parallel RunMatrix experiment runner: the
 * fan-out must be an implementation detail, producing results
 * identical to the serial loop it replaces for any worker count.
 */

#include <atomic>
#include <cstdlib>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/stats.hh"
#include "sim/replay.hh"
#include "sim/runner.hh"

namespace ldis
{
namespace
{

const char *kBenchmarks[] = {"art", "mcf", "twolf"};
const ConfigKind kConfigs[] = {ConfigKind::Baseline1MB,
                               ConfigKind::LdisMTRC,
                               ConfigKind::Trad2MB};
constexpr InstCount kInstructions = 200000;

/** All simulation counters equal (timing fields excluded). */
void
expectSameRun(const RunResult &a, const RunResult &b)
{
    EXPECT_EQ(a.benchmark, b.benchmark);
    EXPECT_EQ(a.config, b.config);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.mpki, b.mpki);
    EXPECT_EQ(a.l2.accesses, b.l2.accesses);
    EXPECT_EQ(a.l2.locHits, b.l2.locHits);
    EXPECT_EQ(a.l2.wocHits, b.l2.wocHits);
    EXPECT_EQ(a.l2.holeMisses, b.l2.holeMisses);
    EXPECT_EQ(a.l2.lineMisses, b.l2.lineMisses);
    EXPECT_EQ(a.l2.compulsoryMisses, b.l2.compulsoryMisses);
    EXPECT_EQ(a.l2.writebacks, b.l2.writebacks);
    EXPECT_EQ(a.l2.evictions, b.l2.evictions);
    EXPECT_EQ(a.l1d.accesses, b.l1d.accesses);
    EXPECT_EQ(a.l1d.hits, b.l1d.hits);
    EXPECT_EQ(a.l1d.sectorMisses, b.l1d.sectorMisses);
    EXPECT_EQ(a.l1d.lineMisses, b.l1d.lineMisses);
    EXPECT_EQ(a.l1i.accesses, b.l1i.accesses);
    EXPECT_EQ(a.l1i.misses, b.l1i.misses);
}

std::vector<RunResult>
serialReference()
{
    std::vector<RunResult> serial;
    for (const char *name : kBenchmarks)
        for (ConfigKind kind : kConfigs)
            serial.push_back(runTrace(name, kind, kInstructions));
    return serial;
}

/** Run the 3x3 matrix under a forced LDIS_JOBS value. */
std::vector<RunResult>
matrixUnderJobs(const char *jobs)
{
    ::setenv("LDIS_JOBS", jobs, 1);
    RunMatrix matrix;
    for (const char *name : kBenchmarks)
        for (ConfigKind kind : kConfigs)
            matrix.add(name, kind, kInstructions);
    std::vector<RunResult> results = matrix.run();
    EXPECT_EQ(matrix.workers(),
              static_cast<unsigned>(std::atoi(jobs)));
    ::unsetenv("LDIS_JOBS");
    return results;
}

TEST(Runner, SerialWorkerMatchesSerialLoop)
{
    std::vector<RunResult> serial = serialReference();
    std::vector<RunResult> matrix = matrixUnderJobs("1");
    ASSERT_EQ(matrix.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i)
        expectSameRun(matrix[i], serial[i]);
}

TEST(Runner, EightWorkersMatchSerialLoop)
{
    std::vector<RunResult> serial = serialReference();
    std::vector<RunResult> matrix = matrixUnderJobs("8");
    ASSERT_EQ(matrix.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i)
        expectSameRun(matrix[i], serial[i]);
}

TEST(Runner, JobsEnvOverride)
{
    ::setenv("LDIS_JOBS", "3", 1);
    EXPECT_EQ(runnerJobs(), 3u);
    ::setenv("LDIS_JOBS", "garbage", 1);
    EXPECT_GE(runnerJobs(), 1u); // falls back to hardware
    ::setenv("LDIS_JOBS", "0", 1);
    EXPECT_GE(runnerJobs(), 1u);
    ::unsetenv("LDIS_JOBS");
    EXPECT_GE(runnerJobs(), 1u);
}

TEST(Runner, TimingIsPopulated)
{
    RunMatrix matrix(2);
    matrix.add("art", ConfigKind::Baseline1MB, kInstructions);
    matrix.add("mcf", ConfigKind::Baseline1MB, kInstructions);
    const std::vector<RunResult> &results = matrix.run();
    ASSERT_EQ(results.size(), 2u);
    for (const RunResult &r : results) {
        EXPECT_GT(r.wallSeconds, 0.0);
        EXPECT_GT(r.instPerSec, 0.0);
    }
    ASSERT_EQ(matrix.timings().size(), 2u);
    EXPECT_EQ(matrix.timings()[0].label, "art/TRAD-1MB");
    // Cumulative job time covers the wall clock up to pool startup
    // and scheduling latency, which on a loaded single-core host can
    // exceed the jobs' overlap — allow generous slack.
    EXPECT_GE(matrix.cumulativeSeconds() + 0.25,
              matrix.wallSeconds());
    EXPECT_GT(matrix.wallSeconds(), 0.0);
    std::string summary = matrix.summary();
    EXPECT_NE(summary.find("jobs"), std::string::npos);
    EXPECT_NE(summary.find("parallel speedup"), std::string::npos);
}

TEST(Runner, GenericJobsKeepSubmissionOrder)
{
    // Custom closures (the ablation benches) land in their slots
    // regardless of completion order.
    RunMatrix matrix(4);
    for (int i = 0; i < 8; ++i) {
        std::string name = (i % 2 == 0) ? "art" : "swim";
        matrix.add(name + "#" + std::to_string(i), [name] {
            auto workload = makeBenchmark(name);
            L2Instance l2 = makeConfig(ConfigKind::Baseline1MB);
            return runTrace(*workload, *l2.cache, 50000);
        });
    }
    const std::vector<RunResult> &results = matrix.run();
    ASSERT_EQ(results.size(), 8u);
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(results[i].benchmark,
                  (i % 2 == 0) ? "art" : "swim")
            << "slot " << i;
}

TEST(Runner, IpcMatrixMatchesSerial)
{
    IpcResult serial =
        runIpc("twolf", ConfigKind::Baseline1MB, 50000);
    IpcMatrix matrix(2);
    matrix.add("twolf", ConfigKind::Baseline1MB, 50000);
    matrix.add("twolf", ConfigKind::LdisMTRC, 50000);
    const std::vector<IpcResult> &results = matrix.run();
    ASSERT_EQ(results.size(), 2u);
    EXPECT_EQ(results[0].ipc, serial.ipc);
    EXPECT_EQ(results[0].mpki, serial.mpki);
    EXPECT_EQ(results[0].cpu.cycles, serial.cpu.cycles);
    EXPECT_GT(results[1].wallSeconds, 0.0);
}

TEST(Runner, EmptyMatrixRuns)
{
    RunMatrix matrix;
    EXPECT_TRUE(matrix.run().empty());
    EXPECT_EQ(matrix.size(), 0u);
}

TEST(Runner, SetupJobsRunBeforeDependents)
{
    // A dependent job must observe its setup's side effect, under
    // heavy contention from independent jobs.
    RunMatrix matrix(8);
    auto shared = std::make_shared<std::vector<int>>();
    std::size_t setup =
        matrix.addSetup("setup", [shared]() -> InstCount {
            shared->assign(1000, 42);
            return 0;
        });
    for (int i = 0; i < 16; ++i) {
        matrix.add(
            "dep#" + std::to_string(i),
            [shared] {
                RunResult r;
                r.instructions =
                    static_cast<InstCount>(shared->at(999));
                return r;
            },
            setup);
        matrix.add("free#" + std::to_string(i), [] {
            return runTrace("art", ConfigKind::Baseline1MB, 10000);
        });
    }
    const std::vector<RunResult> &results = matrix.run();
    ASSERT_EQ(results.size(), 32u);
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(results[2 * i].instructions, 42u);
    // One timing entry per job, setup included, submission order.
    ASSERT_EQ(matrix.timings().size(), 33u);
    EXPECT_EQ(matrix.timings()[0].label, "setup");
    EXPECT_EQ(matrix.size(), 32u);
}

/** Replay submissions under a forced LDIS_JOBS value. */
std::vector<RunResult>
replayMatrixUnderJobs(const char *jobs)
{
    ::setenv("LDIS_JOBS", jobs, 1);
    RunMatrix matrix;
    for (const char *name : kBenchmarks)
        for (ConfigKind kind : kConfigs)
            matrix.addReplay(name, kind, kInstructions);
    std::vector<RunResult> results = matrix.run();
    ::unsetenv("LDIS_JOBS");
    return results;
}

TEST(Runner, ReplayMatrixMatchesSerialLoop)
{
    std::vector<RunResult> serial = serialReference();
    for (const char *jobs : {"1", "8"}) {
        SCOPED_TRACE(std::string("LDIS_JOBS=") + jobs);
        std::vector<RunResult> matrix = replayMatrixUnderJobs(jobs);
        ASSERT_EQ(matrix.size(), serial.size());
        for (std::size_t i = 0; i < serial.size(); ++i)
            expectSameRun(matrix[i], serial[i]);
    }
}

TEST(Runner, ReplayMatrixSharesOneFrontEndPerBenchmark)
{
    RunMatrix matrix(2);
    for (const char *name : kBenchmarks)
        for (ConfigKind kind : kConfigs)
            matrix.addReplay(name, kind, kInstructions);
    matrix.run();
    // 3 front-end setups + 9 replay jobs.
    ASSERT_EQ(matrix.timings().size(), 12u);
    std::size_t frontends = 0;
    for (const JobTiming &t : matrix.timings())
        if (t.label.find("/frontend") != std::string::npos)
            ++frontends;
    EXPECT_EQ(frontends, 3u);
}

TEST(Runner, ReplayDisabledFallsBackToDirect)
{
    ::setenv("LDIS_REPLAY", "0", 1);
    RunMatrix matrix(2);
    matrix.addReplay("art", ConfigKind::Baseline1MB, kInstructions);
    matrix.addReplay("art", ConfigKind::LdisMTRC, kInstructions);
    const std::vector<RunResult> &results = matrix.run();
    ::unsetenv("LDIS_REPLAY");
    ASSERT_EQ(results.size(), 2u);
    // No setup jobs were scheduled.
    EXPECT_EQ(matrix.timings().size(), 2u);
    expectSameRun(results[0], runTrace("art", ConfigKind::Baseline1MB,
                                       kInstructions));
    expectSameRun(results[1], runTrace("art", ConfigKind::LdisMTRC,
                                       kInstructions));
}

TEST(Runner, FirstErrorPropagatesFromWorkers)
{
    for (const char *jobs : {"1", "4"}) {
        SCOPED_TRACE(std::string("LDIS_JOBS=") + jobs);
        ::setenv("LDIS_JOBS", jobs, 1);
        RunMatrix matrix;
        matrix.add("ok", [] {
            return runTrace("art", ConfigKind::Baseline1MB, 10000);
        });
        matrix.add("boom", []() -> RunResult {
            throw std::runtime_error("job exploded");
        });
        EXPECT_THROW(
            {
                try {
                    matrix.run();
                } catch (const std::runtime_error &e) {
                    EXPECT_STREQ(e.what(), "job exploded");
                    throw;
                }
            },
            std::runtime_error);
        ::unsetenv("LDIS_JOBS");
    }
}

TEST(Runner, DependentsOfFailedSetupNeverRun)
{
    for (const char *jobs : {"1", "4"}) {
        SCOPED_TRACE(std::string("LDIS_JOBS=") + jobs);
        ::setenv("LDIS_JOBS", jobs, 1);
        RunMatrix matrix;
        std::size_t setup =
            matrix.addSetup("bad-setup", []() -> InstCount {
                throw std::runtime_error("setup failed");
            });
        auto ran = std::make_shared<std::atomic<bool>>(false);
        matrix.add(
            "dependent",
            [ran] {
                ran->store(true);
                return RunResult{};
            },
            setup);
        EXPECT_THROW(matrix.run(), std::runtime_error);
        EXPECT_FALSE(ran->load());
        ::unsetenv("LDIS_JOBS");
    }
}

TEST(Runner, ThrowingReplayJobReleasesItsStream)
{
    // The recorded front-end stream is memoized in a holder that the
    // last replay job resets. If a job throws, the RAII guard must
    // still drop the reference — otherwise the multi-MB stream stays
    // pinned for the harness's lifetime.
    for (const char *jobs : {"1", "4"}) {
        SCOPED_TRACE(std::string("LDIS_JOBS=") + jobs);
        ::setenv("LDIS_JOBS", jobs, 1);
        RunMatrix matrix;
        auto observed =
            std::make_shared<std::weak_ptr<const L2Stream>>();
        matrix.addReplay(
            "art", kInstructions, "art/throws",
            [observed](ReplaySource &src) -> RunResult {
                *observed = src.sharedStream();
                throw std::runtime_error("replay job failed");
            });
        EXPECT_THROW(matrix.run(), std::runtime_error);
        // The job observed a live stream, and nothing pins it after
        // the matrix finished.
        EXPECT_TRUE(observed->expired());
        ::unsetenv("LDIS_JOBS");
    }
}

TEST(Runner, StreamReleasedAfterSuccessfulReplayRun)
{
    RunMatrix matrix(2);
    auto observed =
        std::make_shared<std::weak_ptr<const L2Stream>>();
    matrix.addReplay("art", kInstructions, "art/trad",
                     [observed](ReplaySource &src) {
                         *observed = src.sharedStream();
                         L2Instance l2 = makeConfig(
                             ConfigKind::Trad2MB,
                             src.valueProfile());
                         return src.run(*l2.cache);
                     });
    matrix.run();
    EXPECT_TRUE(observed->expired());
}

/** Gang-group submissions under a forced LDIS_JOBS value. */
std::vector<RunResult>
groupMatrixUnderJobs(const char *jobs)
{
    ::setenv("LDIS_JOBS", jobs, 1);
    RunMatrix matrix;
    for (const char *name : kBenchmarks)
        matrix.addReplayGroup(
            name, {kConfigs[0], kConfigs[1], kConfigs[2]},
            kInstructions);
    std::vector<RunResult> results = matrix.run();
    ::unsetenv("LDIS_JOBS");
    return results;
}

TEST(Runner, ReplayGroupMatchesSerialLoop)
{
    // One gang walk per benchmark fills the same slots, in the same
    // order, with the same numbers as the serial per-cell loop.
    std::vector<RunResult> serial = serialReference();
    for (const char *jobs : {"1", "8"}) {
        SCOPED_TRACE(std::string("LDIS_JOBS=") + jobs);
        std::vector<RunResult> matrix = groupMatrixUnderJobs(jobs);
        ASSERT_EQ(matrix.size(), serial.size());
        for (std::size_t i = 0; i < serial.size(); ++i)
            expectSameRun(matrix[i], serial[i]);
    }
}

TEST(Runner, ReplayGroupRunsOneWalkPerBenchmark)
{
    RunMatrix matrix(2);
    for (const char *name : kBenchmarks)
        matrix.addReplayGroup(
            name, {kConfigs[0], kConfigs[1], kConfigs[2]},
            kInstructions);
    const std::vector<RunResult> &results = matrix.run();
    ASSERT_EQ(results.size(), 9u);
    // One frontend setup plus ONE gang job per benchmark — not one
    // job per cell.
    ASSERT_EQ(matrix.timings().size(), 6u);
    std::size_t gangs = 0;
    for (const JobTiming &t : matrix.timings())
        if (t.label.find("/gang[3]") != std::string::npos)
            ++gangs;
    EXPECT_EQ(gangs, 3u);
    for (const RunResult &r : results)
        EXPECT_EQ(r.streamSource, "record");
}

TEST(Runner, ReplayGroupFallsBackWhenGangDisabled)
{
    ::setenv("LDIS_GANG", "0", 1);
    RunMatrix matrix(2);
    matrix.addReplayGroup(
        "art", {kConfigs[0], kConfigs[1], kConfigs[2]},
        kInstructions);
    const std::vector<RunResult> &results = matrix.run();
    ::unsetenv("LDIS_GANG");
    ASSERT_EQ(results.size(), 3u);
    // Per-lane replay jobs behind one frontend setup.
    EXPECT_EQ(matrix.timings().size(), 4u);
    for (std::size_t i = 0; i < 3; ++i)
        expectSameRun(results[i],
                      runTrace("art", kConfigs[i], kInstructions));
}

TEST(Runner, ReplayGroupFallsBackToDirectWhenReplayDisabled)
{
    ::setenv("LDIS_REPLAY", "0", 1);
    RunMatrix matrix(2);
    matrix.addReplayGroup("art", {kConfigs[0], kConfigs[1]},
                          kInstructions);
    const std::vector<RunResult> &results = matrix.run();
    ::unsetenv("LDIS_REPLAY");
    ASSERT_EQ(results.size(), 2u);
    // No setup job, no gang job: two direct-simulation jobs.
    EXPECT_EQ(matrix.timings().size(), 2u);
    for (std::size_t i = 0; i < 2; ++i)
        expectSameRun(results[i],
                      runTrace("art", kConfigs[i], kInstructions));
}

TEST(Runner, GangGroupReleasesItsStream)
{
    stats::setEnabled(true); // counters are env-gated by default
    std::uint64_t before = stats::registry()
                               .counter("runner.streams_released")
                               .value();
    RunMatrix matrix(2);
    matrix.addReplayGroup("art",
                          {ConfigKind::Baseline1MB,
                           ConfigKind::LdisMTRC},
                          kInstructions);
    matrix.run();
    // The group holds one reference for the whole walk and is the
    // only taker, so the stream drops right after the gang job.
    EXPECT_EQ(stats::registry()
                  .counter("runner.streams_released")
                  .value(),
              before + 1);
    stats::setEnabled(false);
}

TEST(Runner, GroupSlotsKeepSubmissionOrder)
{
    // A generic group's results land in consecutive slots between
    // neighboring single jobs, whatever the completion order.
    RunMatrix matrix(4);
    matrix.add("single#0", [] {
        RunResult r;
        r.benchmark = "s0";
        return r;
    });
    matrix.addGroup("grp", {"g/a", "g/b", "g/c"}, [] {
        std::vector<RunResult> rs(3);
        rs[0].benchmark = "a";
        rs[1].benchmark = "b";
        rs[2].benchmark = "c";
        return rs;
    });
    matrix.add("single#1", [] {
        RunResult r;
        r.benchmark = "s1";
        return r;
    });
    const std::vector<RunResult> &results = matrix.run();
    ASSERT_EQ(results.size(), 5u);
    EXPECT_EQ(results[0].benchmark, "s0");
    EXPECT_EQ(results[1].benchmark, "a");
    EXPECT_EQ(results[2].benchmark, "b");
    EXPECT_EQ(results[3].benchmark, "c");
    EXPECT_EQ(results[4].benchmark, "s1");
    // One timing entry per job, groups included.
    ASSERT_EQ(matrix.timings().size(), 3u);
    EXPECT_EQ(matrix.timings()[1].label, "grp");
}

TEST(Runner, GroupRunsAfterItsSetupDependency)
{
    RunMatrix matrix(8);
    auto shared = std::make_shared<std::vector<int>>();
    std::size_t setup =
        matrix.addSetup("setup", [shared]() -> InstCount {
            shared->assign(100, 7);
            return 0;
        });
    matrix.addGroup(
        "grp", {"g/a", "g/b"},
        [shared] {
            std::vector<RunResult> rs(2);
            rs[0].instructions =
                static_cast<InstCount>(shared->at(99));
            rs[1].instructions =
                static_cast<InstCount>(shared->at(0));
            return rs;
        },
        setup);
    const std::vector<RunResult> &results = matrix.run();
    ASSERT_EQ(results.size(), 2u);
    EXPECT_EQ(results[0].instructions, 7u);
    EXPECT_EQ(results[1].instructions, 7u);
}

TEST(Runner, ReplayGroupMatchesSerialUnderJobsLanesGrid)
{
    // Lane-parallel walks inside a parallel matrix: every jobs x
    // lanes combination must reproduce the serial loop bit-for-bit.
    std::vector<RunResult> serial = serialReference();
    for (const char *jobs : {"1", "4"}) {
        for (const char *lanes : {"1", "2", "4"}) {
            SCOPED_TRACE(std::string("LDIS_JOBS=") + jobs +
                         " LDIS_LANES=" + lanes);
            ::setenv("LDIS_LANES", lanes, 1);
            std::vector<RunResult> matrix =
                groupMatrixUnderJobs(jobs);
            ::unsetenv("LDIS_LANES");
            ASSERT_EQ(matrix.size(), serial.size());
            for (std::size_t i = 0; i < serial.size(); ++i)
                expectSameRun(matrix[i], serial[i]);
        }
    }
}

TEST(Runner, GangThreadBudgetCoversWorkersAndLanes)
{
    // Auto lanes: the walk borrows only idle pool workers, so the
    // pool size is the whole budget.
    setGangLanes(0);
    ::unsetenv("LDIS_LANES");
    EXPECT_EQ(gangThreadBudget(4), 4u);
    // An explicit lane count may exceed the pool (LDIS_JOBS=1
    // LDIS_LANES=4 must still parallelize the walk)...
    ::setenv("LDIS_LANES", "4", 1);
    EXPECT_EQ(gangThreadBudget(1), 4u);
    // ...but never shrinks the budget below the pool.
    EXPECT_EQ(gangThreadBudget(8), 8u);
    ::unsetenv("LDIS_LANES");
}

TEST(Runner, LeaseHubScopedToMatrixRun)
{
    // The hub only exists while run() executes: leases cannot leak
    // past the matrix, and back-to-back runs get fresh hubs.
    RunMatrix matrix(2);
    EXPECT_EQ(matrix.leaseHub(), nullptr);
    ::setenv("LDIS_LANES", "4", 1);
    matrix.addReplayGroup("art", {kConfigs[0], kConfigs[1]},
                          kInstructions);
    matrix.run();
    ::unsetenv("LDIS_LANES");
    EXPECT_EQ(matrix.leaseHub(), nullptr);
}

TEST(Runner, CustomReplayClosureMatchesDirect)
{
    auto job = [](ReplaySource &src) {
        L2Instance l2 =
            makeConfig(ConfigKind::Trad2MB, src.valueProfile());
        return src.run(*l2.cache);
    };
    RunMatrix replay_matrix(2);
    replay_matrix.addReplay("mcf", kInstructions, "mcf/custom", job);
    RunResult replayed = replay_matrix.run()[0];

    ::setenv("LDIS_REPLAY", "0", 1);
    RunMatrix direct_matrix(2);
    direct_matrix.addReplay("mcf", kInstructions, "mcf/custom", job);
    RunResult direct = direct_matrix.run()[0];
    ::unsetenv("LDIS_REPLAY");
    expectSameRun(direct, replayed);
}

} // namespace
} // namespace ldis
