/**
 * @file
 * Tests for the LDIS_AUDIT invariant engine (common/audit.hh).
 *
 * Every stateful model's auditInvariants() hook is probed two ways:
 *  - a clean, legally-driven instance must audit to "" (no false
 *    positives), and
 *  - targeted state corruptions through the AuditBackdoor must each
 *    produce a non-empty violation (no false negatives).
 *
 * A final test checks the audit layer is read-only: a run with
 * audits enabled is bit-identical to the same run with them off.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "cache/set_assoc.hh"
#include "common/audit.hh"
#include "compression/compressed_l2.hh"
#include "compression/fac_cache.hh"
#include "distill/distill_cache.hh"
#include "distill/median_filter.hh"
#include "distill/reverter.hh"
#include "distill/woc.hh"
#include "sfp/sfp_cache.hh"
#include "sim/replay.hh"

namespace ldis
{

/**
 * The test-only corruption backdoor every audited model befriends.
 * Each method damages exactly one invariant so the matching audit
 * message can be asserted.
 */
struct AuditBackdoor
{
    // --- SetAssocCache -------------------------------------------
    static void
    duplicateRecency(SetAssocCache &c)
    {
        c.order[0] = c.order[1];
    }

    static void
    duplicateTag(SetAssocCache &c)
    {
        c.lines[1] = c.lines[0];
    }

    static void
    strayPendingVictim(SetAssocCache &c)
    {
        c.pendingVictim[0] = static_cast<std::int16_t>(c.waysCount);
    }

    static void
    dirtyOutsideValidWords(SetAssocCache &c)
    {
        c.lines[0].validWords = Footprint(0x01);
        c.lines[0].dirtyWords = Footprint(0x80);
    }

    // --- WocSet / CompressedWocSet -------------------------------
    static void
    dropHeadBit(WocSet &w)
    {
        w.headMask = 0;
    }

    static void
    dirtyInvalidEntry(WocSet &w)
    {
        w.dirtyMask = ~w.validMask;
    }

    static void
    orphanOccupancyBit(WocSet &w)
    {
        // A lone valid entry with no head bit at an aligned slot.
        w.validMask |= std::uint64_t{1} << (w.entryCount - 1);
    }

    static void
    overlapExtent(CompressedWocSet &w, unsigned entry)
    {
        w.headMask |= std::uint64_t{1} << entry;
        w.wordsAt[entry] = Footprint(0x01);
        w.slotsAt[entry] = 1;
    }

    static void
    overrunExtent(CompressedWocSet &w)
    {
        // Stretch the first head's extent past the data array.
        for (unsigned i = 0; i < w.entryCount; ++i) {
            if ((w.headMask >> i) & 1u) {
                w.slotsAt[i] = 64;
                return;
            }
        }
        FAIL() << "no head to corrupt";
    }

    // --- MedianFilter --------------------------------------------
    static void
    unbalanceHistogram(MedianFilter &m)
    {
        ++m.counters[3];
    }

    static void
    zeroWordEviction(MedianFilter &m)
    {
        ++m.counters[0];
    }

    static void
    illegalThreshold(MedianFilter &m)
    {
        m.threshold = kWordsPerLine + 1;
    }

    // --- Reverter ------------------------------------------------
    static void
    overflowPsel(Reverter &r)
    {
        r.pselValue = r.params.pselMax + 7;
    }

    static void
    desyncDecision(Reverter &r)
    {
        r.pselValue = 0;
        r.enabled = true;
    }

    static void
    leakIntoFollowerSet(Reverter &r)
    {
        // Line 1 maps to set 1, a follower for any stride > 1.
        r.atd.install(1);
    }

    // --- DistillCache --------------------------------------------
    static void
    duplicateFrameOrder(DistillCache &dc)
    {
        dc.sets[0].order[0] = dc.sets[0].order[1];
    }

    static void
    duplicateFrameLine(DistillCache &dc)
    {
        dc.sets[0].frames[1] = dc.sets[0].frames[0];
    }

    static void
    dirtyOutsideFootprint(DistillCache &dc)
    {
        CacheLineState &f = dc.sets[0].frames[0];
        f.footprint = Footprint(0x01);
        f.dirtyWords = Footprint(0x80);
    }

    static void
    aliasFrameIntoWoc(DistillCache &dc)
    {
        Random rng(7);
        std::vector<WocEvicted> evicted;
        dc.sets[0].woc.install(dc.sets[0].frames[0].line,
                               Footprint(0x01), Footprint{}, rng,
                               evicted);
    }

    // --- FacCache ------------------------------------------------
    static void
    duplicateFrameOrder(FacCache &fc)
    {
        fc.sets[0].order[0] = fc.sets[0].order[1];
    }

    // --- SfpCache ------------------------------------------------
    static void
    corruptOccupancy(SfpCache &sc)
    {
        // Claim word slots in the last data way, which no tag backs.
        sc.sets[0].occupied[sc.prm.ways - 1] = Footprint(0x01);
    }

    static void
    duplicateTagOrder(SfpCache &sc)
    {
        sc.sets[0].order[0] = sc.sets[0].order[1];
    }

    // --- CompressedL2 --------------------------------------------
    static void
    corruptSegmentSum(CompressedL2 &cl)
    {
        cl.sets[0].usedSegments += 3;
    }
};

namespace
{

Addr
wordAddr(LineAddr line, WordIdx w)
{
    return lineBaseOf(line) + w * kWordBytes;
}

/** 2 sets x 8 ways (LOC 6 + WOC 2). */
DistillParams
tinyDistillParams()
{
    DistillParams p;
    p.bytes = 2ull * 8 * kLineBytes;
    p.totalWays = 8;
    p.wocWays = 2;
    return p;
}

/** Drive some demand traffic so the audited state is non-trivial. */
template <typename L2>
void
warm(L2 &l2, unsigned lines)
{
    for (unsigned i = 0; i < lines; ++i)
        l2.access(wordAddr(i, i % kWordsPerLine), i % 3 == 0, 0,
                  false);
}

TEST(Audit, CleanModelsPass)
{
    DistillCache dc(tinyDistillParams());
    warm(dc, 64);
    EXPECT_EQ(dc.auditInvariants(), "");

    ValueModel values(ValueProfile{}, 5);
    FacCache fc(tinyDistillParams(), values);
    warm(fc, 64);
    EXPECT_EQ(fc.auditInvariants(), "");

    SfpParams sp;
    sp.bytes = 64ull * 8 * kLineBytes;
    sp.reverter.leaderSets = 8;
    SfpCache sc(sp);
    warm(sc, 512);
    EXPECT_EQ(sc.auditInvariants(), "");

    CompressedL2Params cp;
    cp.bytes = 64ull * 8 * kLineBytes;
    CompressedL2 cl(cp, values);
    warm(cl, 512);
    EXPECT_EQ(cl.auditInvariants(), "");
}

TEST(Audit, SetAssocRecencyCorruptionFires)
{
    SetAssocCache c(CacheGeometry{});
    c.install(0);
    c.install(1 << 11); // same set, different tag
    EXPECT_EQ(c.auditInvariants(), "");
    AuditBackdoor::duplicateRecency(c);
    EXPECT_NE(c.auditInvariants(), "");
}

TEST(Audit, SetAssocDuplicateTagFires)
{
    SetAssocCache c(CacheGeometry{});
    c.install(0);
    c.install(1 << 11);
    AuditBackdoor::duplicateTag(c);
    EXPECT_NE(c.auditInvariants(), "");
}

TEST(Audit, SetAssocStrayPendingVictimFires)
{
    SetAssocCache c(CacheGeometry{});
    AuditBackdoor::strayPendingVictim(c);
    EXPECT_NE(c.auditInvariants(), "");
}

TEST(Audit, SetAssocDirtyWordCorruptionFires)
{
    SetAssocCache c(CacheGeometry{});
    c.install(0);
    AuditBackdoor::dirtyOutsideValidWords(c);
    EXPECT_NE(c.auditInvariants(), "");
}

TEST(Audit, WocOccupancyCorruptionsFire)
{
    Random rng(3);
    std::vector<WocEvicted> evicted;

    WocSet a(16, WocVictim::Random);
    a.install(1, Footprint(0x0F), Footprint(0x01), rng, evicted);
    EXPECT_EQ(a.auditInvariants(), "");
    AuditBackdoor::dropHeadBit(a);
    EXPECT_NE(a.auditInvariants(), "");

    WocSet b(16, WocVictim::Random);
    b.install(1, Footprint(0x0F), Footprint{}, rng, evicted);
    AuditBackdoor::dirtyInvalidEntry(b);
    EXPECT_NE(b.auditInvariants(), "");

    WocSet c(16, WocVictim::Random);
    AuditBackdoor::orphanOccupancyBit(c);
    EXPECT_NE(c.auditInvariants(), "");
}

TEST(Audit, CompressedWocExtentCorruptionsFire)
{
    Random rng(3);
    std::vector<WocEvicted> evicted;

    CompressedWocSet a(16);
    a.install(1, Footprint(0x0F), Footprint{}, 4, rng, evicted);
    EXPECT_EQ(a.auditInvariants(), "");
    // The 4-slot extent sits at an aligned start; planting a second
    // head two entries in makes the extents overlap.
    for (unsigned i = 0; i < 16; ++i) {
        if (a.entry(i).head) {
            AuditBackdoor::overlapExtent(a, i + 2);
            break;
        }
    }
    EXPECT_NE(a.auditInvariants(), "");

    CompressedWocSet b(16);
    b.install(1, Footprint(0x0F), Footprint{}, 4, rng, evicted);
    AuditBackdoor::overrunExtent(b);
    EXPECT_NE(b.auditInvariants(), "");
}

TEST(Audit, MedianFilterCorruptionsFire)
{
    MedianFilter clean(64);
    clean.recordEviction(3);
    clean.recordEviction(5);
    EXPECT_EQ(clean.auditInvariants(), "");

    MedianFilter a(64);
    a.recordEviction(3);
    AuditBackdoor::unbalanceHistogram(a);
    EXPECT_NE(a.auditInvariants(), "");

    MedianFilter b(64);
    AuditBackdoor::zeroWordEviction(b);
    EXPECT_NE(b.auditInvariants(), "");

    MedianFilter c(64);
    AuditBackdoor::illegalThreshold(c);
    EXPECT_NE(c.auditInvariants(), "");
}

TEST(Audit, ReverterCorruptionsFire)
{
    CacheGeometry geom;
    geom.bytes = 64ull * 8 * kLineBytes; // 64 sets
    ReverterParams params;
    params.leaderSets = 8; // stride 8: set 1 is a follower

    Reverter clean(geom, params);
    clean.recordLeaderAccess(0, false);
    EXPECT_EQ(clean.auditInvariants(), "");

    Reverter a(geom, params);
    AuditBackdoor::overflowPsel(a);
    EXPECT_NE(a.auditInvariants(), "");

    Reverter b(geom, params);
    AuditBackdoor::desyncDecision(b);
    EXPECT_NE(b.auditInvariants(), "");

    Reverter c(geom, params);
    AuditBackdoor::leakIntoFollowerSet(c);
    EXPECT_NE(c.auditInvariants(), "");
}

TEST(Audit, DistillCacheCorruptionsFire)
{
    auto fresh = [] {
        auto dc = std::make_unique<DistillCache>(tinyDistillParams());
        warm(*dc, 8);
        EXPECT_EQ(dc->auditInvariants(), "");
        return dc;
    };

    auto a = fresh();
    AuditBackdoor::duplicateFrameOrder(*a);
    EXPECT_NE(a->auditInvariants(), "");

    auto b = fresh();
    AuditBackdoor::duplicateFrameLine(*b);
    EXPECT_NE(b->auditInvariants(), "");

    auto c = fresh();
    AuditBackdoor::dirtyOutsideFootprint(*c);
    EXPECT_NE(c->auditInvariants(), "");

    auto d = fresh();
    AuditBackdoor::aliasFrameIntoWoc(*d);
    EXPECT_NE(d->auditInvariants(), "");
}

TEST(Audit, FacSfpCompressedCorruptionsFire)
{
    ValueModel values(ValueProfile{}, 5);

    FacCache fc(tinyDistillParams(), values);
    warm(fc, 8);
    AuditBackdoor::duplicateFrameOrder(fc);
    EXPECT_NE(fc.auditInvariants(), "");

    SfpParams sp;
    sp.bytes = 64ull * 8 * kLineBytes;
    sp.reverter.leaderSets = 8;
    {
        SfpCache sc(sp);
        warm(sc, 64);
        AuditBackdoor::corruptOccupancy(sc);
        EXPECT_NE(sc.auditInvariants(), "");
    }
    {
        SfpCache sc(sp);
        warm(sc, 64);
        AuditBackdoor::duplicateTagOrder(sc);
        EXPECT_NE(sc.auditInvariants(), "");
    }

    CompressedL2Params cp;
    cp.bytes = 64ull * 8 * kLineBytes;
    CompressedL2 cl(cp, values);
    warm(cl, 64);
    AuditBackdoor::corruptSegmentSum(cl);
    EXPECT_NE(cl.auditInvariants(), "");
}

TEST(Audit, StreamCorruptionsFire)
{
    auto stream = loadOrRecordStream("mcf", 1, 0, 50'000);
    ASSERT_EQ(auditStream(*stream), "");

    // The packed byte streams are immutable in place; corrupt a copy
    // by decoding to records, mutating, and re-encoding.
    const std::vector<StreamEvent> events = decodeEvents(*stream);
    const std::vector<StreamVictim> victims = decodeVictims(*stream);
    ASSERT_FALSE(victims.empty());
    auto reencoded = [&](const std::vector<StreamVictim> &vs) {
        L2Stream s = *stream;
        encodeStream(s, events, vs);
        return s;
    };

    // Victim dirty words outside its used words.
    {
        std::vector<StreamVictim> vs = victims;
        vs[0].used = 0x01;
        vs[0].dirty = 0x80;
        EXPECT_NE(auditStream(reencoded(vs)), "");
    }
    // Victim footprint missing first-touched words: zero a victim's
    // used mask entirely (the demand word of its residency is gone).
    {
        std::vector<StreamVictim> vs = victims;
        vs.back().used = 0;
        vs.back().dirty = 0;
        EXPECT_NE(auditStream(reencoded(vs)), "");
    }
    // Victim records no longer one-to-one with the flagged events.
    {
        std::vector<StreamVictim> vs = victims;
        vs.pop_back();
        L2Stream s = reencoded(vs);
        s.markerVictims =
            std::min<std::size_t>(s.markerVictims, vs.size());
        EXPECT_NE(auditStream(s), "");
    }
    // Line-miss total out of sync.
    {
        L2Stream s = *stream;
        ++s.totalLineMisses;
        EXPECT_NE(auditStream(s), "");
    }
    // Warmup markers out of range.
    {
        L2Stream s = *stream;
        s.markerEvents = s.numEvents() + 1;
        EXPECT_NE(auditStream(s), "");
    }
    // A trailing garbage byte in a packed byte stream means the
    // decode no longer consumes every stream exactly.
    {
        L2Stream s = *stream;
        s.addrBytes.push_back(0x00);
        EXPECT_NE(auditStream(s), "");
    }
}

/**
 * Audits are strictly read-only: the same replayed run produces
 * bit-identical statistics with audits on and off. In LDIS_AUDIT
 * builds the enabled run actually executes every audit hook; in
 * plain builds the hooks are compiled out and the runs are trivially
 * identical — the test is valid (just weaker) either way.
 */
TEST(Audit, EnabledRunIsBitIdentical)
{
    auto run = [] {
        return runReplay("mcf", ConfigKind::LdisMTRC, 200'000, 1);
    };

    audit::setEnabled(false);
    RunResult off = run();

    audit::setEnabled(true);
    audit::setInterval(64); // audit frequently to earn the coverage
    RunResult on = run();
    audit::setEnabled(false);

    EXPECT_EQ(off.l2.accesses, on.l2.accesses);
    EXPECT_EQ(off.l2.locHits, on.l2.locHits);
    EXPECT_EQ(off.l2.wocHits, on.l2.wocHits);
    EXPECT_EQ(off.l2.holeMisses, on.l2.holeMisses);
    EXPECT_EQ(off.l2.lineMisses, on.l2.lineMisses);
    EXPECT_EQ(off.l2.compulsoryMisses, on.l2.compulsoryMisses);
    EXPECT_EQ(off.l2.writebacks, on.l2.writebacks);
    EXPECT_EQ(off.l2.evictions, on.l2.evictions);
    EXPECT_EQ(off.l1d.sectorMisses, on.l1d.sectorMisses);
    EXPECT_EQ(off.l1d.accesses, on.l1d.accesses);
    EXPECT_EQ(off.l1i.misses, on.l1i.misses);
    EXPECT_DOUBLE_EQ(off.mpki, on.mpki);
}

} // namespace
} // namespace ldis
