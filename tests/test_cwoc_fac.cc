/**
 * @file
 * Unit and property tests for the compressed WOC and the
 * Footprint-Aware Compression cache (Section 8.2).
 */

#include <gtest/gtest.h>

#include "cache/hierarchy.hh"
#include "common/intmath.hh"
#include "compression/fac_cache.hh"
#include "trace/benchmarks.hh"

namespace ldis
{
namespace
{

Footprint
mask(std::initializer_list<WordIdx> words)
{
    Footprint fp;
    for (WordIdx w : words)
        fp.set(w);
    return fp;
}

TEST(CompressedWoc, InstallMoreWordsThanSlots)
{
    CompressedWocSet woc(16);
    Random rng(3);
    std::vector<WocEvicted> evicted;
    // Four words compressed into two slots.
    woc.install(7, mask({0, 2, 4, 6}), Footprint{}, 2, rng, evicted);
    EXPECT_TRUE(evicted.empty());
    EXPECT_EQ(woc.wordsOf(7), mask({0, 2, 4, 6}));
    EXPECT_EQ(woc.validEntryCount(), 2u);
    EXPECT_TRUE(woc.checkIntegrity());
}

TEST(CompressedWoc, CapacityScalesWithCompression)
{
    CompressedWocSet woc(16);
    Random rng(3);
    std::vector<WocEvicted> evicted;
    // Sixteen 4-word lines at 1 slot each all fit.
    for (LineAddr l = 0; l < 16; ++l) {
        woc.install(l, mask({0, 1, 2, 3}), Footprint{}, 1, rng,
                    evicted);
        EXPECT_TRUE(evicted.empty()) << l;
    }
    EXPECT_EQ(woc.lineCount(), 16u);
}

TEST(CompressedWoc, EvictionIsWholeLine)
{
    CompressedWocSet woc(16);
    Random rng(3);
    std::vector<WocEvicted> evicted;
    // Two 8-slot groups fill the set.
    woc.install(1, Footprint::full(), mask({3}), 8, rng, evicted);
    woc.install(2, Footprint::full(), Footprint{}, 8, rng, evicted);
    ASSERT_TRUE(evicted.empty());
    // A 1-slot install must evict one whole group.
    woc.install(3, mask({5}), Footprint{}, 1, rng, evicted);
    ASSERT_EQ(evicted.size(), 1u);
    EXPECT_TRUE(evicted[0].words.isFull());
    EXPECT_TRUE(woc.checkIntegrity());
}

TEST(CompressedWoc, DirtyTracking)
{
    CompressedWocSet woc(16);
    Random rng(3);
    std::vector<WocEvicted> evicted;
    woc.install(9, mask({1, 5}), mask({1}), 2, rng, evicted);
    woc.markDirty(9, mask({5, 7})); // 7 not resident
    EXPECT_EQ(woc.dirtyWordsOf(9), mask({1, 5}));
    WocEvicted ev = woc.invalidateLine(9);
    EXPECT_EQ(ev.dirty, mask({1, 5}));
    EXPECT_FALSE(woc.linePresent(9));
}

TEST(CompressedWoc, FlushClearsAll)
{
    CompressedWocSet woc(16);
    Random rng(3);
    std::vector<WocEvicted> evicted;
    woc.install(1, mask({0, 1}), Footprint{}, 1, rng, evicted);
    woc.install(2, mask({0, 1, 2, 3}), Footprint{}, 2, rng, evicted);
    evicted.clear();
    woc.flush(evicted);
    EXPECT_EQ(evicted.size(), 2u);
    EXPECT_EQ(woc.validEntryCount(), 0u);
}

class CWocPropertyTest : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(CWocPropertyTest, RandomOpsPreserveInvariants)
{
    const unsigned seed = GetParam();
    Random rng(seed);
    Random op_rng(seed * 31 + 5);
    CompressedWocSet woc(16);
    std::vector<WocEvicted> evicted;
    for (int step = 0; step < 2000; ++step) {
        LineAddr line = 500 + op_rng.below(100);
        if (op_rng.below(10) < 7) {
            if (woc.linePresent(line))
                continue;
            Footprint used;
            unsigned count =
                1 + static_cast<unsigned>(op_rng.below(8));
            while (used.count() < count)
                used.set(static_cast<WordIdx>(op_rng.below(8)));
            // Compressed slot count: any pow2 <= nextPow2(count).
            unsigned max_slots = static_cast<unsigned>(
                nextPow2(count));
            unsigned slots = 1;
            while (slots * 2 <= max_slots && op_rng.chance(0.5))
                slots *= 2;
            evicted.clear();
            woc.install(line, used, Footprint{}, slots, rng,
                        evicted);
            ASSERT_EQ(woc.wordsOf(line), used);
            for (const WocEvicted &ev : evicted)
                ASSERT_FALSE(woc.linePresent(ev.line));
        } else {
            woc.invalidateLine(line);
            ASSERT_FALSE(woc.linePresent(line));
        }
        ASSERT_TRUE(woc.checkIntegrity()) << "step " << step;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CWocPropertyTest,
                         ::testing::Range(1u, 9u));

// ---------------------------------------------------------------
// FAC cache.
// ---------------------------------------------------------------

DistillParams
facParams()
{
    DistillParams p;
    p.bytes = 2ull * 8 * kLineBytes;
    p.totalWays = 8;
    p.wocWays = 3; // FAC-4xTags shape
    return p;
}

Addr
wordAddr(LineAddr line, WordIdx w)
{
    return lineBaseOf(line) + w * kWordBytes;
}

TEST(FacCache, SlotsNeverExceedPlainWoc)
{
    ValueModel values({0.4, 0.1, 0.3}, 3);
    FacCache fac(facParams(), values);
    for (LineAddr line = 0; line < 64; ++line) {
        for (std::uint8_t raw = 1;; ++raw) {
            Footprint used(raw);
            unsigned slots = fac.slotsFor(line, used);
            EXPECT_LE(slots, nextPow2(used.count()));
            EXPECT_TRUE(isPowerOf2(slots));
            EXPECT_GE(slots, 1u);
            if (raw == 255)
                break;
        }
    }
}

TEST(FacCache, ZeroDataPacksEightWordsInOneSlot)
{
    ValueModel zeros({1.0, 0.0, 0.0}, 1);
    FacCache fac(facParams(), zeros);
    // 8 words of zeros: 16 dwords x 2 bits = 4 bytes -> 1 slot.
    EXPECT_EQ(fac.slotsFor(5, Footprint::full()), 1u);
}

TEST(FacCache, IncompressibleFallsBackToWordCount)
{
    ValueModel wide({0.0, 0.0, 0.0}, 1);
    FacCache fac(facParams(), wide);
    Footprint two;
    two.set(0);
    two.set(1);
    // 2 words incompressible: 17 bytes -> 3 slots -> pow2 4, but
    // plain WOC would use 2 -> min is 2.
    EXPECT_EQ(fac.slotsFor(5, two), 2u);
}

TEST(FacCache, DistillsCompressedOnEviction)
{
    ValueModel zeros({1.0, 0.0, 0.0}, 1);
    FacCache fac(facParams(), zeros);
    // Touch all 8 words of line 0 (set 0; lines even).
    for (WordIdx w = 0; w < 8; ++w)
        fac.access(wordAddr(0, w), false, 0, false);
    // Evict from the 5-way LOC.
    for (unsigned i = 1; i <= 5; ++i)
        fac.access(wordAddr(i * 2, 0), false, 0, false);
    EXPECT_EQ(fac.facStats().wocInstalls, 1u);
    EXPECT_EQ(fac.facStats().slotsStored, 1u);
    EXPECT_EQ(fac.facStats().wordsStored, 8u);
    // Full line hits in the compressed WOC.
    L2Result r = fac.access(wordAddr(0, 7), false, 0, false);
    EXPECT_EQ(r.outcome, L2Outcome::WocHit);
    EXPECT_TRUE(r.validWords.isFull());
    EXPECT_TRUE(fac.checkIntegrity());
}

TEST(FacCache, HoleMissOnMissingWord)
{
    ValueModel zeros({1.0, 0.0, 0.0}, 1);
    FacCache fac(facParams(), zeros);
    fac.access(wordAddr(0, 2), false, 0, false);
    for (unsigned i = 1; i <= 5; ++i)
        fac.access(wordAddr(i * 2, 0), false, 0, false);
    L2Result r = fac.access(wordAddr(0, 6), false, 0, false);
    EXPECT_EQ(r.outcome, L2Outcome::HoleMiss);
    EXPECT_TRUE(fac.checkIntegrity());
}

class FacPropertyTest : public ::testing::TestWithParam<const char *>
{
};

TEST_P(FacPropertyTest, HierarchyTrafficPreservesIntegrity)
{
    DistillParams p;
    p.bytes = 1 << 20;
    p.wocWays = 3;
    p.medianThreshold = true;
    p.useReverter = true;
    auto workload = makeBenchmark(GetParam());
    ValueModel values(workload->valueProfile(), 3);
    FacCache fac(p, values);
    Hierarchy hier(*workload, fac);
    hier.run(300000);
    EXPECT_TRUE(fac.checkIntegrity());
    const L2Stats &s = fac.stats();
    EXPECT_EQ(s.accesses,
              s.locHits + s.wocHits + s.holeMisses + s.lineMisses);
}

INSTANTIATE_TEST_SUITE_P(Proxies, FacPropertyTest,
                         ::testing::Values("mcf", "twolf", "swim",
                                           "gcc"));

} // namespace
} // namespace ldis
