/**
 * @file
 * Integration matrix: every benchmark proxy against every cache
 * configuration, asserting the bookkeeping invariants that must hold
 * regardless of workload or organization. This is the broad-coverage
 * safety net behind the per-module tests.
 */

#include <gtest/gtest.h>

#include "sim/experiment.hh"

namespace ldis
{
namespace
{

struct MatrixCase
{
    const char *benchmark;
    ConfigKind kind;
};

std::string
caseName(const ::testing::TestParamInfo<MatrixCase> &info)
{
    std::string name = info.param.benchmark;
    name += "_";
    name += configName(info.param.kind);
    for (char &c : name)
        if (!std::isalnum(static_cast<unsigned char>(c)))
            c = '_';
    return name;
}

class MatrixTest : public ::testing::TestWithParam<MatrixCase>
{
};

TEST_P(MatrixTest, StatsInvariantsHold)
{
    const MatrixCase &mc = GetParam();
    RunResult r = runTrace(mc.benchmark, mc.kind, 60000);

    // Access accounting balances.
    EXPECT_EQ(r.l2.accesses,
              r.l2.locHits + r.l2.wocHits + r.l2.holeMisses +
                  r.l2.lineMisses)
        << r.config;
    // Compulsory misses are a subset of line misses.
    EXPECT_LE(r.l2.compulsoryMisses, r.l2.lineMisses);
    // The L2 only sees L1 misses.
    EXPECT_LE(r.l2.accesses,
              r.l1d.misses() + r.l1i.misses + r.l1d.accesses);
    EXPECT_GE(r.mpki, 0.0);
    EXPECT_GE(r.instructions, 60000u);
}

std::vector<MatrixCase>
allCases()
{
    const ConfigKind kinds[] = {
        ConfigKind::Baseline1MB, ConfigKind::Trad2MB,
        ConfigKind::Trad1MB32B,  ConfigKind::LdisBase,
        ConfigKind::LdisMTRC,    ConfigKind::Ldis4xTags,
        ConfigKind::Cmpr4xTags,  ConfigKind::Fac4xTags,
        ConfigKind::Sfp16k,
    };
    // Parameter names must outlive test registration; anchoring the
    // strings in a static container keeps them reachable (and clean
    // under LeakSanitizer) instead of strdup-and-forget.
    static const std::vector<std::string> benchmarks =
        studiedBenchmarks();
    std::vector<MatrixCase> cases;
    for (const std::string &b : benchmarks)
        for (ConfigKind k : kinds)
            cases.push_back({b.c_str(), k});
    return cases;
}

INSTANTIATE_TEST_SUITE_P(AllPairs, MatrixTest,
                         ::testing::ValuesIn(allCases()), caseName);

class InsensitiveMatrixTest
    : public ::testing::TestWithParam<const char *>
{
};

TEST_P(InsensitiveMatrixTest, LdisMatchesBaselineClosely)
{
    // Appendix A: on cache-insensitive workloads LDIS-MT-RC must
    // track the baseline (the reverter guarantees it cannot lose
    // much, and there is nothing to win).
    RunResult base =
        runTrace(GetParam(), ConfigKind::Baseline1MB, 400000);
    RunResult ldis =
        runTrace(GetParam(), ConfigKind::LdisMTRC, 400000);
    if (base.l2.misses() < 100)
        return; // too few misses to compare meaningfully
    double delta = percentReduction(
        static_cast<double>(base.l2.misses()),
        static_cast<double>(ldis.l2.misses()));
    EXPECT_GT(delta, -12.0) << "LDIS lost too much";
}

INSTANTIATE_TEST_SUITE_P(Insensitive, InsensitiveMatrixTest,
                         ::testing::Values("equake", "lucas",
                                           "mgrid", "applu", "gap",
                                           "fma3d"));

} // namespace
} // namespace ldis
