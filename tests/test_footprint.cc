/** @file Unit tests for the footprint bit-vector. */

#include <gtest/gtest.h>

#include "common/footprint.hh"

namespace ldis
{
namespace
{

TEST(Footprint, StartsEmpty)
{
    Footprint fp;
    EXPECT_TRUE(fp.empty());
    EXPECT_EQ(fp.count(), 0u);
    EXPECT_FALSE(fp.isFull());
    for (WordIdx w = 0; w < kWordsPerLine; ++w)
        EXPECT_FALSE(fp.test(w));
}

TEST(Footprint, SetAndTest)
{
    Footprint fp;
    fp.set(3);
    EXPECT_TRUE(fp.test(3));
    EXPECT_FALSE(fp.test(2));
    EXPECT_EQ(fp.count(), 1u);
    fp.set(3); // idempotent
    EXPECT_EQ(fp.count(), 1u);
    fp.set(0);
    fp.set(7);
    EXPECT_EQ(fp.count(), 3u);
}

TEST(Footprint, FullHasAllWords)
{
    Footprint fp = Footprint::full();
    EXPECT_TRUE(fp.isFull());
    EXPECT_EQ(fp.count(), kWordsPerLine);
    for (WordIdx w = 0; w < kWordsPerLine; ++w)
        EXPECT_TRUE(fp.test(w));
}

TEST(Footprint, OrMergeModelsL1DDrain)
{
    // Section 4.1: the L1D footprint is OR-ed into the LOC entry.
    Footprint loc;
    loc.set(1);
    Footprint l1d;
    l1d.set(1);
    l1d.set(6);
    loc |= l1d;
    EXPECT_TRUE(loc.test(1));
    EXPECT_TRUE(loc.test(6));
    EXPECT_EQ(loc.count(), 2u);
}

TEST(Footprint, AndIntersection)
{
    Footprint a;
    a.set(0);
    a.set(4);
    Footprint b;
    b.set(4);
    b.set(5);
    Footprint c = a & b;
    EXPECT_EQ(c.count(), 1u);
    EXPECT_TRUE(c.test(4));
}

TEST(Footprint, Equality)
{
    Footprint a;
    Footprint b;
    EXPECT_EQ(a, b);
    a.set(2);
    EXPECT_FALSE(a == b);
    b.set(2);
    EXPECT_EQ(a, b);
}

TEST(Footprint, RawRoundTrip)
{
    Footprint fp(std::uint8_t{0b10100101});
    EXPECT_EQ(fp.raw(), 0b10100101);
    EXPECT_EQ(fp.count(), 4u);
    EXPECT_TRUE(fp.test(0));
    EXPECT_FALSE(fp.test(1));
    EXPECT_TRUE(fp.test(2));
    EXPECT_TRUE(fp.test(5));
    EXPECT_TRUE(fp.test(7));
}

TEST(Footprint, Reset)
{
    Footprint fp = Footprint::full();
    fp.reset();
    EXPECT_TRUE(fp.empty());
}

TEST(FootprintDeath, OutOfRangeWordPanics)
{
    Footprint fp;
    EXPECT_DEATH(fp.set(kWordsPerLine), "assert");
    EXPECT_DEATH(fp.test(kWordsPerLine), "assert");
}

TEST(AddressHelpers, LineAndWordExtraction)
{
    Addr addr = 3 * kLineBytes + 2 * kWordBytes + 5;
    EXPECT_EQ(lineAddrOf(addr), 3u);
    EXPECT_EQ(wordIdxOf(addr), 2u);
    EXPECT_EQ(lineBaseOf(3), 3u * kLineBytes);
}

TEST(AddressHelpers, WordIndexCoversLine)
{
    for (unsigned b = 0; b < kLineBytes; ++b)
        EXPECT_EQ(wordIdxOf(b), b / kWordBytes);
}

} // namespace
} // namespace ldis
