/** @file Unit tests for the reverter circuit (Section 5.5). */

#include <gtest/gtest.h>

#include "distill/reverter.hh"

namespace ldis
{
namespace
{

CacheGeometry
baselineGeom()
{
    CacheGeometry g;
    g.bytes = 1 << 20;
    g.ways = 8;
    return g;
}

ReverterParams
paperParams()
{
    return ReverterParams{}; // 32 leaders, 64/192, 8-bit PSEL
}

/** A line mapping to leader set 0 (stride 64 for 2048 sets / 32). */
LineAddr
leaderLine(unsigned i)
{
    return static_cast<LineAddr>(i) * 2048;
}

TEST(Reverter, LeaderSelectionIsStrided)
{
    Reverter rev(baselineGeom(), paperParams());
    unsigned leaders = 0;
    for (unsigned set = 0; set < 2048; ++set)
        if (rev.isLeader(set))
            ++leaders;
    EXPECT_EQ(leaders, 32u);
    EXPECT_TRUE(rev.isLeader(0));
    EXPECT_TRUE(rev.isLeader(64));
    EXPECT_FALSE(rev.isLeader(1));
}

TEST(Reverter, StartsEnabledAtMidpoint)
{
    Reverter rev(baselineGeom(), paperParams());
    EXPECT_TRUE(rev.ldisEnabled());
    EXPECT_EQ(rev.psel(), 128u);
}

TEST(Reverter, DistillMissesDrivePselDown)
{
    Reverter rev(baselineGeom(), paperParams());
    // ATD hits (same line re-accessed) while distill misses: PSEL
    // falls, eventually disabling LDIS below 64.
    rev.recordLeaderAccess(leaderLine(0), true); // ATD cold miss
    for (int i = 0; i < 200; ++i)
        rev.recordLeaderAccess(leaderLine(0), true);
    EXPECT_LT(rev.psel(), 64u);
    EXPECT_FALSE(rev.ldisEnabled());
}

TEST(Reverter, AtdMissesDrivePselUp)
{
    Reverter rev(baselineGeom(), paperParams());
    // Distinct lines: ATD misses every time; distill claims hits.
    for (unsigned i = 0; i < 200; ++i)
        rev.recordLeaderAccess(leaderLine(i), false);
    EXPECT_GT(rev.psel(), 192u);
    EXPECT_TRUE(rev.ldisEnabled());
}

TEST(Reverter, HysteresisRetainsDecisionInBand)
{
    Reverter rev(baselineGeom(), paperParams());
    // Drive PSEL below 64 -> disabled.
    rev.recordLeaderAccess(leaderLine(0), true);
    for (int i = 0; i < 200; ++i)
        rev.recordLeaderAccess(leaderLine(0), true);
    ASSERT_FALSE(rev.ldisEnabled());
    // Recover into the middle band (64..192): decision must stick.
    for (unsigned i = 0; i < 100; ++i)
        rev.recordLeaderAccess(leaderLine(i + 1), false);
    ASSERT_GE(rev.psel(), 64u);
    ASSERT_LE(rev.psel(), 192u);
    EXPECT_FALSE(rev.ldisEnabled()) << "decision changed in band";
    // Push above 192 -> re-enabled.
    for (unsigned i = 0; i < 200; ++i)
        rev.recordLeaderAccess(leaderLine(i + 200), false);
    EXPECT_TRUE(rev.ldisEnabled());
}

TEST(Reverter, PselSaturates)
{
    Reverter rev(baselineGeom(), paperParams());
    for (unsigned i = 0; i < 1000; ++i)
        rev.recordLeaderAccess(leaderLine(i), false);
    EXPECT_EQ(rev.psel(), 255u);
    rev.recordLeaderAccess(leaderLine(0), true); // ATD hit now
    for (int i = 0; i < 2000; ++i)
        rev.recordLeaderAccess(leaderLine(0), true);
    EXPECT_EQ(rev.psel(), 0u);
}

TEST(Reverter, AtdTracksTraditionalBehaviour)
{
    Reverter rev(baselineGeom(), paperParams());
    // 8 distinct lines fit an 8-way set: re-access hits the ATD, so
    // with distill also hitting PSEL stays put.
    for (unsigned i = 0; i < 8; ++i)
        rev.recordLeaderAccess(leaderLine(i), false);
    unsigned psel_after_cold = rev.psel();
    for (unsigned i = 0; i < 8; ++i)
        rev.recordLeaderAccess(leaderLine(i), false);
    EXPECT_EQ(rev.psel(), psel_after_cold);
}

TEST(Reverter, StorageMatchesTable3)
{
    Reverter rev(baselineGeom(), paperParams());
    // 32 sets * 8 ways * 4B = 1kB.
    EXPECT_EQ(rev.atdStorageBytes(), 1024u);
}

TEST(ReverterDeath, BadConfigurationsAreFatal)
{
    ReverterParams p = paperParams();
    p.leaderSets = 0;
    EXPECT_EXIT(Reverter(baselineGeom(), p),
                testing::ExitedWithCode(1), "leader");
    ReverterParams q = paperParams();
    q.lowThreshold = 200;
    q.highThreshold = 100;
    EXPECT_EXIT(Reverter(baselineGeom(), q),
                testing::ExitedWithCode(1), "hysteresis");
}

TEST(ReverterDeath, NonLeaderAccessPanics)
{
    Reverter rev(baselineGeom(), paperParams());
    EXPECT_DEATH(rev.recordLeaderAccess(1, false), "assert");
}

} // namespace
} // namespace ldis
