/** @file Unit tests for common/intmath.hh. */

#include <gtest/gtest.h>

#include "common/intmath.hh"

namespace ldis
{
namespace
{

TEST(IntMath, IsPowerOf2)
{
    EXPECT_FALSE(isPowerOf2(0));
    EXPECT_TRUE(isPowerOf2(1));
    EXPECT_TRUE(isPowerOf2(2));
    EXPECT_FALSE(isPowerOf2(3));
    EXPECT_TRUE(isPowerOf2(4));
    EXPECT_FALSE(isPowerOf2(6));
    EXPECT_TRUE(isPowerOf2(1ull << 40));
    EXPECT_FALSE(isPowerOf2((1ull << 40) + 1));
}

TEST(IntMath, FloorLog2)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(2), 1u);
    EXPECT_EQ(floorLog2(3), 1u);
    EXPECT_EQ(floorLog2(4), 2u);
    EXPECT_EQ(floorLog2(1023), 9u);
    EXPECT_EQ(floorLog2(1024), 10u);
    EXPECT_EQ(floorLog2(1ull << 63), 63u);
}

TEST(IntMath, CeilLog2)
{
    EXPECT_EQ(ceilLog2(1), 0u);
    EXPECT_EQ(ceilLog2(2), 1u);
    EXPECT_EQ(ceilLog2(3), 2u);
    EXPECT_EQ(ceilLog2(4), 2u);
    EXPECT_EQ(ceilLog2(5), 3u);
    EXPECT_EQ(ceilLog2(1024), 10u);
    EXPECT_EQ(ceilLog2(1025), 11u);
}

TEST(IntMath, NextPow2)
{
    EXPECT_EQ(nextPow2(1), 1u);
    EXPECT_EQ(nextPow2(2), 2u);
    EXPECT_EQ(nextPow2(3), 4u);
    EXPECT_EQ(nextPow2(4), 4u);
    EXPECT_EQ(nextPow2(5), 8u);
    EXPECT_EQ(nextPow2(7), 8u);
    EXPECT_EQ(nextPow2(8), 8u);
    EXPECT_EQ(nextPow2(9), 16u);
}

TEST(IntMath, NextPow2CoversWocGroupSizes)
{
    // The WOC rounds used-word counts (1..8) to group sizes.
    unsigned expected[9] = {0, 1, 2, 4, 4, 8, 8, 8, 8};
    for (unsigned words = 1; words <= 8; ++words)
        EXPECT_EQ(nextPow2(words), expected[words]) << words;
}

TEST(IntMath, DivCeil)
{
    EXPECT_EQ(divCeil(0, 8), 0u);
    EXPECT_EQ(divCeil(1, 8), 1u);
    EXPECT_EQ(divCeil(8, 8), 1u);
    EXPECT_EQ(divCeil(9, 8), 2u);
    EXPECT_EQ(divCeil(64, 64), 1u);
    EXPECT_EQ(divCeil(65, 64), 2u);
}

TEST(IntMathDeath, Log2OfZeroPanics)
{
    EXPECT_DEATH(floorLog2(0), "assert");
    EXPECT_DEATH(ceilLog2(0), "assert");
}

} // namespace
} // namespace ldis
