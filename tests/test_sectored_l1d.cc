/**
 * @file
 * Unit tests for the sectored L1D (Section 4.2): per-word valid
 * bits, sector misses, footprint accumulation and draining, and
 * dirty-word propagation. Uses a scripted fake L2 so every
 * interaction is observable.
 */

#include <vector>

#include <gtest/gtest.h>

#include "cache/sectored_l1d.hh"

namespace ldis
{
namespace
{

/** Fake L2 that records calls and returns a scripted valid mask. */
class FakeL2 : public SecondLevelCache
{
  public:
    struct EvictionRecord
    {
        LineAddr line;
        Footprint used;
        Footprint dirty;
    };

    L2Result
    access(Addr addr, bool write, Addr pc, bool instr) override
    {
        ++statsData.accesses;
        ++statsData.lineMisses;
        accesses.push_back({addr, write, pc, instr});
        L2Result r;
        r.outcome = L2Outcome::LineMiss;
        r.validWords = nextValid;
        r.latency = 100;
        return r;
    }

    void
    l1dEviction(LineAddr line, Footprint used,
                Footprint dirty) override
    {
        evictions.push_back({line, used, dirty});
    }

    const L2Stats &stats() const override { return statsData; }
    void resetStats() override { statsData = L2Stats{}; }
    std::string describe() const override { return "fake"; }

    struct AccessRecord
    {
        Addr addr;
        bool write;
        Addr pc;
        bool instr;
    };

    std::vector<AccessRecord> accesses;
    std::vector<EvictionRecord> evictions;
    Footprint nextValid = Footprint::full();
    L2Stats statsData;
};

CacheGeometry
l1Geom()
{
    CacheGeometry g;
    g.bytes = 2ull * 2 * kLineBytes; // 2 sets, 2 ways
    g.ways = 2;
    return g;
}

Addr
wordAddr(LineAddr line, WordIdx w)
{
    return lineBaseOf(line) + w * kWordBytes;
}

TEST(SectoredL1D, MissFillsFromL2ThenHits)
{
    FakeL2 l2;
    SectoredL1D l1(l1Geom(), l2, 3);
    L1DResult r1 = l1.access(wordAddr(0, 0), false);
    EXPECT_FALSE(r1.l1Hit);
    EXPECT_EQ(r1.latency, 3u + 100u);
    L1DResult r2 = l1.access(wordAddr(0, 0), false);
    EXPECT_TRUE(r2.l1Hit);
    EXPECT_EQ(r2.latency, 3u);
    EXPECT_EQ(l2.accesses.size(), 1u);
    EXPECT_EQ(l1.stats().hits, 1u);
    EXPECT_EQ(l1.stats().lineMisses, 1u);
}

TEST(SectoredL1D, FullFillValidatesAllWords)
{
    FakeL2 l2;
    SectoredL1D l1(l1Geom(), l2);
    l1.access(wordAddr(0, 0), false);
    // All other words hit without further L2 traffic.
    for (WordIdx w = 1; w < kWordsPerLine; ++w)
        EXPECT_TRUE(l1.access(wordAddr(0, w), false).l1Hit);
    EXPECT_EQ(l2.accesses.size(), 1u);
}

TEST(SectoredL1D, PartialFillCausesSectorMiss)
{
    FakeL2 l2;
    SectoredL1D l1(l1Geom(), l2);
    // The L2 (a WOC hit in real life) supplies only words 0 and 3.
    Footprint partial;
    partial.set(0);
    partial.set(3);
    l2.nextValid = partial;
    l1.access(wordAddr(0, 0), false);

    EXPECT_TRUE(l1.access(wordAddr(0, 3), false).l1Hit);

    // Word 5 is invalid: sector miss goes back to the L2.
    l2.nextValid = Footprint::full();
    L1DResult r = l1.access(wordAddr(0, 5), false);
    EXPECT_FALSE(r.l1Hit);
    EXPECT_EQ(l1.stats().sectorMisses, 1u);
    EXPECT_EQ(l2.accesses.size(), 2u);
    // After the refill the whole line is valid.
    EXPECT_TRUE(l1.access(wordAddr(0, 6), false).l1Hit);
}

TEST(SectoredL1D, SectorMissMergesValidWords)
{
    FakeL2 l2;
    SectoredL1D l1(l1Geom(), l2);
    Footprint first;
    first.set(0);
    l2.nextValid = first;
    l1.access(wordAddr(0, 0), false);
    // Sector miss for word 2; the L2 now supplies words 2 and 4.
    Footprint second;
    second.set(2);
    second.set(4);
    l2.nextValid = second;
    l1.access(wordAddr(0, 2), false);
    // Union is valid: 0, 2, 4.
    EXPECT_TRUE(l1.access(wordAddr(0, 4), false).l1Hit);
    EXPECT_TRUE(l1.access(wordAddr(0, 0), false).l1Hit);
    EXPECT_EQ(l1.stats().sectorMisses, 1u);
}

TEST(SectoredL1D, EvictionDrainsFootprintToL2)
{
    FakeL2 l2;
    SectoredL1D l1(l1Geom(), l2);
    // Touch words 0 and 6 of line 0 (set 0).
    l1.access(wordAddr(0, 0), false);
    l1.access(wordAddr(0, 6), false);
    // Fill set 0 (lines are multiples of 2) until line 0 is evicted.
    l1.access(wordAddr(2, 0), false);
    l1.access(wordAddr(4, 0), false);
    ASSERT_EQ(l2.evictions.size(), 1u);
    EXPECT_EQ(l2.evictions[0].line, 0u);
    EXPECT_TRUE(l2.evictions[0].used.test(0));
    EXPECT_TRUE(l2.evictions[0].used.test(6));
    EXPECT_EQ(l2.evictions[0].used.count(), 2u);
    EXPECT_TRUE(l2.evictions[0].dirty.empty());
}

TEST(SectoredL1D, DirtyWordsReported)
{
    FakeL2 l2;
    SectoredL1D l1(l1Geom(), l2);
    l1.access(wordAddr(0, 1), true); // store to word 1
    l1.access(wordAddr(0, 2), false);
    l1.access(wordAddr(2, 0), false);
    l1.access(wordAddr(4, 0), false);
    ASSERT_EQ(l2.evictions.size(), 1u);
    Footprint dirty = l2.evictions[0].dirty;
    EXPECT_TRUE(dirty.test(1));
    EXPECT_EQ(dirty.count(), 1u);
}

TEST(SectoredL1D, WriteToInvalidWordIsSectorMissFirst)
{
    FakeL2 l2;
    SectoredL1D l1(l1Geom(), l2);
    Footprint partial;
    partial.set(0);
    l2.nextValid = partial;
    l1.access(wordAddr(0, 0), false);
    // Store to invalid word 7: must fetch through the L2 before the
    // write (write-allocate per word), so dirty stays within valid.
    l2.nextValid = Footprint::full();
    L1DResult r = l1.access(wordAddr(0, 7), true);
    EXPECT_FALSE(r.l1Hit);
    EXPECT_TRUE(l2.accesses.back().write);
    // Evict and check dirty mask.
    l1.access(wordAddr(2, 0), false);
    l1.access(wordAddr(4, 0), false);
    ASSERT_EQ(l2.evictions.size(), 1u);
    EXPECT_TRUE(l2.evictions[0].dirty.test(7));
}

TEST(SectoredL1D, PcForwardedToL2)
{
    FakeL2 l2;
    SectoredL1D l1(l1Geom(), l2);
    l1.access(wordAddr(0, 0), false, 0xdead);
    ASSERT_EQ(l2.accesses.size(), 1u);
    EXPECT_EQ(l2.accesses[0].pc, 0xdeadu);
}

} // namespace
} // namespace ldis
