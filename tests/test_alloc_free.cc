/**
 * @file
 * Steady-state allocation audit: after warmup, the DistillCache
 * simulation path must not touch the heap at all. A counting global
 * operator new/delete pair measures a 1M-instruction measured run
 * driven through the full Hierarchy; the access stream is
 * pre-generated so the only code under audit is the cache machinery
 * itself.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include "cache/hierarchy.hh"
#include "sim/configs.hh"
#include "trace/benchmarks.hh"

namespace
{

std::atomic<std::uint64_t> g_allocs{0};

} // namespace

void *
operator new(std::size_t size)
{
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t size)
{
    return operator new(size);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

namespace ldis
{
namespace
{

/** Replays a pre-generated access vector, allocation-free. */
class ReplayWorkload : public Workload
{
  public:
    ReplayWorkload(std::vector<Access> accesses, CodeModel code,
                   ValueProfile values)
        : accesses(std::move(accesses)), code(code), values(values)
    {
    }

    Access
    next() override
    {
        Access a = accesses[pos];
        if (++pos >= accesses.size())
            pos = 0;
        return a;
    }

    std::size_t
    fill(Access *out, std::size_t max) override
    {
        for (std::size_t n = 0; n < max; ++n)
            out[n] = next();
        return max;
    }

    void reset() override { pos = 0; }
    const CodeModel &codeModel() const override { return code; }
    const ValueProfile &valueProfile() const override
    {
        return values;
    }
    const std::string &name() const override { return traceName; }

  private:
    std::vector<Access> accesses;
    std::size_t pos = 0;
    CodeModel code;
    ValueProfile values;
    std::string traceName = "replay";
};

/** Instructions covered by @p accesses starting at index 0. */
ldis::InstCount
pregenerate(Workload &src, std::vector<Access> &out,
            InstCount target)
{
    InstCount covered = 0;
    while (covered < target) {
        out.push_back(src.next());
        covered += out.back().instructions();
    }
    return covered;
}

TEST(AllocFree, DistillCacheSteadyStateDoesNotAllocate)
{
    constexpr InstCount kWarmup = 1'000'000;
    constexpr InstCount kMeasure = 1'000'000;

    auto src = makeBenchmark("mcf", 42);
    std::vector<Access> stream;
    pregenerate(*src, stream, kWarmup + kMeasure + 10'000);

    ReplayWorkload workload(std::move(stream), src->codeModel(),
                            src->valueProfile());
    L2Instance l2 = makeConfig(ConfigKind::LdisMTRC,
                               workload.valueProfile());
    Hierarchy hier(workload, *l2.cache);

    // Warmup fills the caches, grows the reusable scratch buffers to
    // their high-water mark, and primes the batch buffer.
    hier.run(kWarmup);

    std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
    hier.run(kMeasure);
    std::uint64_t after = g_allocs.load(std::memory_order_relaxed);

    EXPECT_EQ(after - before, 0u)
        << "steady-state DistillCache path allocated "
        << (after - before) << " times over " << kMeasure
        << " instructions";

    // Sanity: the run actually simulated work.
    EXPECT_GE(hier.stats().instructions, kWarmup + kMeasure);
    EXPECT_GT(l2.cache->stats().accesses, 0u);
}

TEST(AllocFree, TraditionalBaselineSteadyStateDoesNotAllocate)
{
    constexpr InstCount kWarmup = 500'000;
    constexpr InstCount kMeasure = 500'000;

    auto src = makeBenchmark("art", 7);
    std::vector<Access> stream;
    pregenerate(*src, stream, kWarmup + kMeasure + 10'000);

    ReplayWorkload workload(std::move(stream), src->codeModel(),
                            src->valueProfile());
    L2Instance l2 = makeConfig(ConfigKind::Baseline1MB,
                               workload.valueProfile());
    Hierarchy hier(workload, *l2.cache);

    hier.run(kWarmup);

    std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
    hier.run(kMeasure);
    std::uint64_t after = g_allocs.load(std::memory_order_relaxed);

    EXPECT_EQ(after - before, 0u);
}

} // namespace
} // namespace ldis
