/** @file Tests for the hierarchy driver and the PC code walker. */

#include <set>

#include <gtest/gtest.h>

#include "cache/hierarchy.hh"
#include "cache/traditional_l2.hh"
#include "trace/benchmarks.hh"
#include "trace/composite.hh"

namespace ldis
{
namespace
{

TEST(CodeWalker, SequentialWalkFetchesEveryLine)
{
    CodeModel model{4 * kLineBytes, 1000000}; // effectively no jumps
    CodeWalker walker(model, 1);
    std::set<Addr> fetched;
    // 4 lines x 16 instructions = 64 instructions covers the region.
    walker.advance(64, [&](Addr pc) { fetched.insert(pc); });
    EXPECT_EQ(fetched.size(), 4u);
    for (Addr pc : fetched)
        EXPECT_EQ(pc % kLineBytes, 0u);
}

TEST(CodeWalker, FetchCountScalesWithInstructions)
{
    CodeModel model{64 * kLineBytes, 1000000};
    CodeWalker walker(model, 1);
    unsigned fetches = 0;
    walker.advance(16 * 10, [&](Addr) { ++fetches; });
    // One line fetch per 16 sequential instructions.
    EXPECT_EQ(fetches, 10u);
}

TEST(CodeWalker, JumpsStayInFootprint)
{
    CodeModel model{8 * kLineBytes, 4}; // jump every ~4 instructions
    CodeWalker walker(model, 7);
    Addr lo = walker.currentPc();
    walker.advance(10000, [&](Addr pc) {
        EXPECT_GE(pc, lo - (8 * kLineBytes));
        EXPECT_LT(pc, lo + 8 * kLineBytes);
    });
}

TEST(Hierarchy, CountsInstructionsFromAccessStream)
{
    auto wl = makeBenchmark("twolf");
    CacheGeometry g;
    g.bytes = 1 << 20;
    g.ways = 8;
    TraditionalL2 l2(g);
    Hierarchy hier(*wl, l2);
    hier.run(100000);
    EXPECT_GE(hier.stats().instructions, 100000u);
    // Overshoot is at most one access record.
    EXPECT_LT(hier.stats().instructions, 100000u + 10000u);
    EXPECT_GT(hier.stats().dataAccesses, 0u);
}

TEST(Hierarchy, MpkiMatchesManualComputation)
{
    auto wl = makeBenchmark("mcf");
    CacheGeometry g;
    g.bytes = 1 << 20;
    g.ways = 8;
    TraditionalL2 l2(g);
    Hierarchy hier(*wl, l2);
    hier.run(200000);
    double manual =
        static_cast<double>(l2.stats().misses())
        / (static_cast<double>(hier.stats().instructions) / 1000.0);
    EXPECT_DOUBLE_EQ(hier.mpki(), manual);
    EXPECT_GT(hier.mpki(), 10.0); // mcf is memory-bound
}

TEST(Hierarchy, L1DFiltersL2Traffic)
{
    auto wl = makeBenchmark("wupwise"); // full-line streaming
    CacheGeometry g;
    g.bytes = 1 << 20;
    g.ways = 8;
    TraditionalL2 l2(g);
    Hierarchy hier(*wl, l2);
    hier.run(500000);
    // Streaming touches 8 words per line; the L1D coalesces them so
    // the L2 sees roughly one access per line.
    EXPECT_LT(l2.stats().accesses,
              hier.l1dStats().accesses / 4);
}

TEST(Hierarchy, InstructionSideProducesL2InstrTraffic)
{
    // gcc's code footprint (192kB) exceeds the 16kB L1I, so the L2
    // must see instruction-line fills.
    auto wl = makeBenchmark("gcc");
    CacheGeometry g;
    g.bytes = 1 << 20;
    g.ways = 8;
    TraditionalL2 l2(g);
    Hierarchy hier(*wl, l2);
    hier.run(300000);
    EXPECT_GT(hier.l1iStats().misses, 0u);
    unsigned instr_lines = 0;
    l2.tags().forEachLine([&](const CacheLineState &l) {
        if (l.instr)
            ++instr_lines;
    });
    EXPECT_GT(instr_lines, 0u);
}

TEST(Hierarchy, InstructionSideCanBeDisabled)
{
    auto wl = makeBenchmark("gcc");
    CacheGeometry g;
    g.bytes = 1 << 20;
    g.ways = 8;
    TraditionalL2 l2(g);
    HierarchyParams params;
    params.modelInstructionSide = false;
    Hierarchy hier(*wl, l2, params);
    hier.run(100000);
    EXPECT_EQ(hier.l1iStats().accesses, 0u);
}

TEST(Hierarchy, DeterministicAcrossRuns)
{
    auto run_once = [] {
        auto wl = makeBenchmark("art");
        CacheGeometry g;
        g.bytes = 1 << 20;
        g.ways = 8;
        TraditionalL2 l2(g);
        Hierarchy hier(*wl, l2);
        hier.run(200000);
        return l2.stats().misses();
    };
    EXPECT_EQ(run_once(), run_once());
}

} // namespace
} // namespace ldis
