/** @file Unit tests for the deterministic RNG. */

#include <gtest/gtest.h>

#include "common/random.hh"

namespace ldis
{
namespace
{

TEST(Random, DeterministicForSameSeed)
{
    Random a(42);
    Random b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Random, DifferentSeedsDiverge)
{
    Random a(1);
    Random b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        if (a.next() == b.next())
            ++same;
    EXPECT_LT(same, 5);
}

TEST(Random, ZeroSeedIsUsable)
{
    Random r(0);
    EXPECT_NE(r.next(), 0u);
}

TEST(Random, BelowStaysInRange)
{
    Random r(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(r.below(13), 13u);
}

TEST(Random, BetweenInclusive)
{
    Random r(7);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 10000; ++i) {
        std::uint64_t v = r.between(3, 6);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 6u);
        saw_lo |= (v == 3);
        saw_hi |= (v == 6);
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Random, UniformInUnitInterval)
{
    Random r(11);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        double u = r.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Random, BelowIsRoughlyUniform)
{
    Random r(13);
    const unsigned buckets = 8;
    const int n = 80000;
    int counts[buckets] = {};
    for (int i = 0; i < n; ++i)
        ++counts[r.below(buckets)];
    for (unsigned b = 0; b < buckets; ++b)
        EXPECT_NEAR(counts[b], n / buckets, n / buckets * 0.1)
            << "bucket " << b;
}

TEST(Random, ChanceMatchesProbability)
{
    Random r(17);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        if (r.chance(0.3))
            ++hits;
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RandomDeath, BelowZeroBoundPanics)
{
    Random r(1);
    EXPECT_DEATH(r.below(0), "assert");
}

} // namespace
} // namespace ldis
