/** @file Unit tests for the command-line argument parser. */

#include <cstdint>

#include <gtest/gtest.h>

#include "common/args.hh"

namespace ldis
{
namespace
{

ArgParser
makeParser()
{
    ArgParser p;
    p.addOption("benchmark", "proxy name", "mcf");
    p.addOption("instructions", "run length", "1000");
    p.addOption("scale", "a float", "1.5");
    p.addFlag("ipc", "execution driven");
    return p;
}

bool
parseArgs(ArgParser &p, std::initializer_list<const char *> argv)
{
    std::vector<const char *> full{"prog"};
    full.insert(full.end(), argv.begin(), argv.end());
    return p.parse(static_cast<int>(full.size()), full.data());
}

TEST(ArgParser, DefaultsApplyWhenAbsent)
{
    ArgParser p = makeParser();
    ASSERT_TRUE(parseArgs(p, {}));
    EXPECT_EQ(p.get("benchmark"), "mcf");
    EXPECT_EQ(p.getUint("instructions"), 1000u);
    EXPECT_DOUBLE_EQ(p.getDouble("scale"), 1.5);
    EXPECT_FALSE(p.has("ipc"));
}

TEST(ArgParser, SpaceSeparatedValues)
{
    ArgParser p = makeParser();
    ASSERT_TRUE(parseArgs(p, {"--benchmark", "art",
                              "--instructions", "42"}));
    EXPECT_EQ(p.get("benchmark"), "art");
    EXPECT_EQ(p.getUint("instructions"), 42u);
    EXPECT_TRUE(p.has("benchmark"));
}

TEST(ArgParser, EqualsSeparatedValues)
{
    ArgParser p = makeParser();
    ASSERT_TRUE(parseArgs(p, {"--benchmark=swim", "--scale=2.25"}));
    EXPECT_EQ(p.get("benchmark"), "swim");
    EXPECT_DOUBLE_EQ(p.getDouble("scale"), 2.25);
}

TEST(ArgParser, Flags)
{
    ArgParser p = makeParser();
    ASSERT_TRUE(parseArgs(p, {"--ipc"}));
    EXPECT_TRUE(p.has("ipc"));
}

TEST(ArgParser, FlagWithValueIsAnError)
{
    ArgParser p = makeParser();
    EXPECT_FALSE(parseArgs(p, {"--ipc=yes"}));
    EXPECT_FALSE(p.ok());
}

TEST(ArgParser, UnknownOptionIsAnError)
{
    ArgParser p = makeParser();
    EXPECT_FALSE(parseArgs(p, {"--bogus", "1"}));
    EXPECT_NE(p.error().find("bogus"), std::string::npos);
}

TEST(ArgParser, MissingValueIsAnError)
{
    ArgParser p = makeParser();
    EXPECT_FALSE(parseArgs(p, {"--benchmark"}));
    EXPECT_FALSE(p.ok());
}

TEST(ArgParser, MalformedNumberSetsError)
{
    ArgParser p = makeParser();
    ASSERT_TRUE(parseArgs(p, {"--instructions", "12x"}));
    p.getUint("instructions");
    EXPECT_FALSE(p.ok());
}

TEST(ArgParser, NegativeUintIsAnError)
{
    // strtoull would happily wrap "-5" to 2^64-5.
    ArgParser p = makeParser();
    ASSERT_TRUE(parseArgs(p, {"--instructions", "-5"}));
    EXPECT_EQ(p.getUint("instructions"), 0u);
    EXPECT_FALSE(p.ok());
    EXPECT_NE(p.error().find("non-negative"), std::string::npos);
}

TEST(ArgParser, NegativeUintWithLeadingSpaceIsAnError)
{
    ArgParser p = makeParser();
    ASSERT_TRUE(parseArgs(p, {"--instructions", "  -1"}));
    p.getUint("instructions");
    EXPECT_FALSE(p.ok());
}

TEST(ArgParser, OverflowingUintIsAnError)
{
    // 2^64 exactly: strtoull clamps to ULLONG_MAX with ERANGE.
    ArgParser p = makeParser();
    ASSERT_TRUE(
        parseArgs(p, {"--instructions", "18446744073709551616"}));
    EXPECT_EQ(p.getUint("instructions"), 0u);
    EXPECT_FALSE(p.ok());
    EXPECT_NE(p.error().find("out of range"), std::string::npos);
}

TEST(ArgParser, MaxUintStillParses)
{
    ArgParser p = makeParser();
    ASSERT_TRUE(
        parseArgs(p, {"--instructions", "18446744073709551615"}));
    EXPECT_EQ(p.getUint("instructions"), UINT64_MAX);
    EXPECT_TRUE(p.ok());
}

TEST(ArgParser, UintInRangeAcceptsBoundaries)
{
    ArgParser p = makeParser();
    ASSERT_TRUE(parseArgs(p, {"--instructions", "1"}));
    EXPECT_EQ(p.getUintInRange("instructions", 1, 4096), 1u);
    EXPECT_TRUE(p.ok());

    ArgParser q = makeParser();
    ASSERT_TRUE(parseArgs(q, {"--instructions", "4096"}));
    EXPECT_EQ(q.getUintInRange("instructions", 1, 4096), 4096u);
    EXPECT_TRUE(q.ok());
}

TEST(ArgParser, UintBelowRangeIsAnError)
{
    ArgParser p = makeParser();
    ASSERT_TRUE(parseArgs(p, {"--instructions", "0"}));
    // Returns lo so callers always hold a legal value.
    EXPECT_EQ(p.getUintInRange("instructions", 1, 4096), 1u);
    EXPECT_FALSE(p.ok());
    EXPECT_NE(p.error().find("[1, 4096]"), std::string::npos);
}

TEST(ArgParser, UintAboveRangeIsAnError)
{
    ArgParser p = makeParser();
    ASSERT_TRUE(parseArgs(p, {"--instructions", "4097"}));
    EXPECT_EQ(p.getUintInRange("instructions", 1, 4096), 1u);
    EXPECT_FALSE(p.ok());
    EXPECT_NE(p.error().find("[1, 4096]"), std::string::npos);
}

TEST(ArgParser, UintInRangePreservesUnderlyingParseErrors)
{
    // Negative, malformed and overflowing input keep getUint()'s
    // message, not a misleading range complaint.
    ArgParser p = makeParser();
    ASSERT_TRUE(parseArgs(p, {"--instructions", "-3"}));
    EXPECT_EQ(p.getUintInRange("instructions", 1, 4096), 1u);
    EXPECT_FALSE(p.ok());
    EXPECT_NE(p.error().find("non-negative"), std::string::npos);

    ArgParser q = makeParser();
    ASSERT_TRUE(parseArgs(q, {"--instructions", "many"}));
    EXPECT_EQ(q.getUintInRange("instructions", 1, 4096), 1u);
    EXPECT_FALSE(q.ok());
    EXPECT_NE(q.error().find("expects an integer"),
              std::string::npos);

    ArgParser r = makeParser();
    ASSERT_TRUE(
        parseArgs(r, {"--instructions", "99999999999999999999"}));
    EXPECT_EQ(r.getUintInRange("instructions", 1, 4096), 1u);
    EXPECT_FALSE(r.ok());
    EXPECT_NE(r.error().find("out of range"), std::string::npos);
}

TEST(ArgParser, OverflowingDoubleIsAnError)
{
    ArgParser p = makeParser();
    ASSERT_TRUE(parseArgs(p, {"--scale", "1e999999"}));
    EXPECT_EQ(p.getDouble("scale"), 0.0);
    EXPECT_FALSE(p.ok());
    EXPECT_NE(p.error().find("out of range"), std::string::npos);
}

TEST(ArgParser, PositionalArgumentsCollected)
{
    ArgParser p = makeParser();
    ASSERT_TRUE(parseArgs(p, {"one", "--ipc", "two"}));
    ASSERT_EQ(p.positional().size(), 2u);
    EXPECT_EQ(p.positional()[0], "one");
    EXPECT_EQ(p.positional()[1], "two");
}

TEST(ArgParser, PairedOnOffFlagsBothVisible)
{
    // Drivers with --foo/--no-foo pairs (ldissim --gang/--no-gang)
    // detect the conflict themselves: the parser must report both
    // flags as present rather than letting one shadow the other.
    ArgParser p;
    p.addFlag("gang", "on");
    p.addFlag("no-gang", "off");
    ASSERT_TRUE(parseArgs(p, {"--gang", "--no-gang"}));
    EXPECT_TRUE(p.ok());
    EXPECT_TRUE(p.has("gang"));
    EXPECT_TRUE(p.has("no-gang"));

    ArgParser q;
    q.addFlag("gang", "on");
    q.addFlag("no-gang", "off");
    ASSERT_TRUE(parseArgs(q, {"--no-gang"}));
    EXPECT_FALSE(q.has("gang"));
    EXPECT_TRUE(q.has("no-gang"));
}

TEST(ArgParser, UsageListsOptions)
{
    ArgParser p = makeParser();
    std::string u = p.usage("ldissim");
    EXPECT_NE(u.find("--benchmark"), std::string::npos);
    EXPECT_NE(u.find("--ipc"), std::string::npos);
    EXPECT_NE(u.find("default mcf"), std::string::npos);
}

} // namespace
} // namespace ldis
