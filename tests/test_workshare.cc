/**
 * @file
 * Tests for the gang walk's concurrency primitives: the bounded
 * SpscRing used by the decode-prefetch pipeline, and the
 * WorkerLeaseHub thread-budget accountant that lets walker jobs
 * borrow idle RunMatrix pool workers without oversubscribing.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/spsc.hh"
#include "common/workshare.hh"

namespace ldis
{
namespace
{

using namespace std::chrono_literals;

TEST(SpscRing, FifoWithinCapacity)
{
    SpscRing<int> ring(4);
    EXPECT_EQ(ring.capacity(), 4u);
    for (int i = 0; i < 4; ++i)
        EXPECT_TRUE(ring.push(i));
    EXPECT_EQ(ring.size(), 4u);
    for (int i = 0; i < 4; ++i) {
        int v = -1;
        EXPECT_TRUE(ring.pop(v));
        EXPECT_EQ(v, i);
    }
    EXPECT_EQ(ring.size(), 0u);
}

TEST(SpscRing, ProducerFasterThanConsumer)
{
    // A tiny ring forces the producer to block on every push; the
    // consumer deliberately lags. Order and count must survive.
    SpscRing<int> ring(2);
    constexpr int kItems = 500;
    std::thread producer([&] {
        for (int i = 0; i < kItems; ++i)
            ASSERT_TRUE(ring.push(i));
        ring.close();
    });
    int v = -1, expect = 0;
    while (ring.pop(v)) {
        EXPECT_EQ(v, expect++);
        if (expect % 64 == 0)
            std::this_thread::sleep_for(1ms);
    }
    producer.join();
    EXPECT_EQ(expect, kItems);
}

TEST(SpscRing, ConsumerFasterThanProducer)
{
    // The consumer starts first and blocks on the empty ring; the
    // producer trickles items in.
    SpscRing<int> ring(8);
    constexpr int kItems = 100;
    std::thread consumer([&] {
        int v = -1, expect = 0;
        while (ring.pop(v))
            EXPECT_EQ(v, expect++);
        EXPECT_EQ(expect, kItems);
    });
    for (int i = 0; i < kItems; ++i) {
        ASSERT_TRUE(ring.push(i));
        if (i % 16 == 0)
            std::this_thread::sleep_for(1ms);
    }
    ring.close();
    consumer.join();
}

TEST(SpscRing, CloseDrainsThenSignalsEnd)
{
    SpscRing<int> ring(4);
    EXPECT_TRUE(ring.push(1));
    EXPECT_TRUE(ring.push(2));
    ring.close();
    EXPECT_TRUE(ring.closed());
    int v = -1;
    EXPECT_TRUE(ring.pop(v));
    EXPECT_EQ(v, 1);
    EXPECT_TRUE(ring.pop(v));
    EXPECT_EQ(v, 2);
    EXPECT_FALSE(ring.pop(v));
    // Pushing into a closed ring is refused, not silently dropped.
    EXPECT_FALSE(ring.push(3));
}

TEST(SpscRing, CloseWakesBlockedProducer)
{
    SpscRing<int> ring(1);
    ASSERT_TRUE(ring.push(0));
    std::atomic<bool> pushed{true};
    std::thread producer([&] { pushed = ring.push(1); });
    // Give the producer time to block on the full ring, then close.
    std::this_thread::sleep_for(5ms);
    ring.close();
    producer.join();
    EXPECT_FALSE(pushed);
}

TEST(SpscRing, CloseWakesBlockedConsumer)
{
    SpscRing<int> ring(1);
    std::atomic<bool> popped{true};
    std::thread consumer([&] {
        int v = -1;
        popped = ring.pop(v);
    });
    std::this_thread::sleep_for(5ms);
    ring.close();
    consumer.join();
    EXPECT_FALSE(popped);
}

/** A latch the test can hold helper tasks on. */
struct Gate
{
    std::mutex m;
    std::condition_variable cv;
    bool open = false;

    void
    release()
    {
        std::lock_guard<std::mutex> lock(m);
        open = true;
        cv.notify_all();
    }

    void
    wait()
    {
        std::unique_lock<std::mutex> lock(m);
        cv.wait(lock, [&] { return open; });
    }
};

TEST(WorkerLeaseHub, GrantsOnlyWithinBudget)
{
    WorkerLeaseHub hub(4);
    hub.setBusyWorkers(2);
    EXPECT_EQ(hub.threadBudget(), 4u);
    EXPECT_EQ(hub.idleThreads(), 2u);

    Gate gate;
    WorkerLeaseHub::Lease lease(hub);
    EXPECT_TRUE(lease.launch([&] { gate.wait(); }));
    EXPECT_TRUE(lease.launch([&] { gate.wait(); }));
    // busy(2) + active(2) == budget(4): the next ask is denied.
    EXPECT_FALSE(lease.launch([&] { gate.wait(); }));
    EXPECT_EQ(lease.size(), 2u);
    gate.release();
    lease.wait();
    EXPECT_EQ(hub.activeHelpers(), 0u);
}

TEST(WorkerLeaseHub, BusyWorkersReclaimAndReleaseBudget)
{
    WorkerLeaseHub hub(2);
    hub.setBusyWorkers(2);
    WorkerLeaseHub::Lease lease(hub);
    // No idle workers -> the lease API degrades to serial.
    EXPECT_FALSE(lease.launch([] {}));
    // A record job finishing frees one worker for lane duty.
    hub.setBusyWorkers(1);
    Gate gate;
    EXPECT_TRUE(lease.launch([&] { gate.wait(); }));
    EXPECT_FALSE(lease.launch([&] { gate.wait(); }));
    gate.release();
    lease.wait();
    EXPECT_EQ(hub.activeHelpers(), 0u);
}

TEST(WorkerLeaseHub, HelpersAreReusedAcrossLeases)
{
    WorkerLeaseHub hub(2);
    hub.setBusyWorkers(1);
    for (int round = 0; round < 8; ++round) {
        WorkerLeaseHub::Lease lease(hub);
        std::atomic<int> ran{0};
        ASSERT_TRUE(lease.launch([&] { ++ran; }));
        lease.wait();
        EXPECT_EQ(ran.load(), 1);
        EXPECT_EQ(hub.activeHelpers(), 0u);
    }
}

TEST(WorkerLeaseHub, WaitRethrowsFirstHelperError)
{
    WorkerLeaseHub hub(4);
    hub.setBusyWorkers(1);
    WorkerLeaseHub::Lease lease(hub);
    ASSERT_TRUE(lease.launch(
        [] { throw std::runtime_error("lane failed mid-chunk"); }));
    ASSERT_TRUE(lease.launch([] {}));
    EXPECT_THROW(lease.wait(), std::runtime_error);
    // The failed helper is returned to the hub, not leaked: the
    // budget is fully available again.
    EXPECT_EQ(hub.activeHelpers(), 0u);
    std::atomic<int> ran{0};
    WorkerLeaseHub::Lease retry(hub);
    EXPECT_TRUE(retry.launch([&] { ++ran; }));
    retry.wait();
    EXPECT_EQ(ran.load(), 1);
}

TEST(WorkerLeaseHub, LeaseDestructorWaitsWithoutThrowing)
{
    WorkerLeaseHub hub(2);
    hub.setBusyWorkers(1);
    std::atomic<bool> ran{false};
    {
        WorkerLeaseHub::Lease lease(hub);
        ASSERT_TRUE(lease.launch([&] {
            std::this_thread::sleep_for(5ms);
            ran = true;
            throw std::runtime_error("ignored by the destructor");
        }));
        // No wait(): the destructor must join and swallow.
    }
    EXPECT_TRUE(ran);
    EXPECT_EQ(hub.activeHelpers(), 0u);
}

TEST(WorkerLeaseHub, ConcurrentLeasesShareTheBudget)
{
    WorkerLeaseHub hub(3);
    hub.setBusyWorkers(1);
    Gate gate;
    WorkerLeaseHub::Lease a(hub);
    WorkerLeaseHub::Lease b(hub);
    EXPECT_TRUE(a.launch([&] { gate.wait(); }));
    EXPECT_TRUE(b.launch([&] { gate.wait(); }));
    // 1 busy + 2 active == budget: both leases are now refused.
    EXPECT_FALSE(a.launch([&] { gate.wait(); }));
    EXPECT_FALSE(b.launch([&] { gate.wait(); }));
    gate.release();
    a.wait();
    b.wait();
    EXPECT_EQ(hub.activeHelpers(), 0u);
}

} // namespace
} // namespace ldis
