/**
 * @file
 * Tests for the 32B-line L2 variant used by the Section-2 line-size
 * study: half-line delivery, L1D sector misses on the other half,
 * and footprint splitting on L1D evictions.
 */

#include <gtest/gtest.h>

#include "cache/sectored_l1d.hh"
#include "cache/traditional_l2.hh"

namespace ldis
{
namespace
{

CacheGeometry
geom32()
{
    CacheGeometry g;
    g.bytes = 4ull * 8 * 32; // 4 sets x 8 ways x 32B lines
    g.ways = 8;
    g.lineBytes = 32;
    return g;
}

TEST(LineSize32, DeliversOnlyTheContainingHalf)
{
    TraditionalL2 l2(geom32());
    // Word 1 of the 64B line = byte 8..15: lower half.
    L2Result lo = l2.access(8, false, 0, false);
    EXPECT_EQ(lo.validWords.count(), 4u);
    EXPECT_TRUE(lo.validWords.test(0));
    EXPECT_TRUE(lo.validWords.test(3));
    EXPECT_FALSE(lo.validWords.test(4));
    // Word 5 = byte 40..47: upper half.
    L2Result hi = l2.access(40, false, 0, false);
    EXPECT_FALSE(hi.validWords.test(0));
    EXPECT_TRUE(hi.validWords.test(5));
    EXPECT_EQ(hi.validWords.count(), 4u);
}

TEST(LineSize32, HalvesAreIndependentLines)
{
    TraditionalL2 l2(geom32());
    l2.access(0, false, 0, false);  // lower half: miss
    l2.access(32, false, 0, false); // upper half: separate miss
    EXPECT_EQ(l2.stats().lineMisses, 2u);
    l2.access(8, false, 0, false);  // lower half again: hit
    EXPECT_EQ(l2.stats().locHits, 1u);
}

TEST(LineSize32, L1DSectorMissesOnOtherHalf)
{
    TraditionalL2 l2(geom32());
    CacheGeometry l1g;
    l1g.bytes = 2ull * 2 * kLineBytes;
    l1g.ways = 2;
    SectoredL1D l1(l1g, l2);
    // Touch word 0: fills the lower half only.
    l1.access(0, false);
    EXPECT_TRUE(l1.access(8, false).l1Hit);  // word 1: valid
    // Word 4 (upper half) is invalid: sector miss -> second L2
    // access, which misses on the upper 32B line.
    L1DResult r = l1.access(32, false);
    EXPECT_FALSE(r.l1Hit);
    EXPECT_EQ(l1.stats().sectorMisses, 1u);
    EXPECT_EQ(l2.stats().lineMisses, 2u);
    // Streaming a full 64B line therefore costs two L2 misses: the
    // spatial-locality loss the paper's footnote 2 describes.
}

TEST(LineSize32, L1DEvictionSplitsFootprint)
{
    TraditionalL2 l2(geom32());
    // Make both halves resident.
    l2.access(0, false, 0, false);
    l2.access(32, false, 0, false);
    // A 64B L1D eviction with words {1, 6} used and {6} dirty.
    Footprint used;
    used.set(1);
    used.set(6);
    Footprint dirty;
    dirty.set(6);
    l2.l1dEviction(0, used, dirty);
    // Lower 32B line: word 1 -> local word 1, clean.
    const CacheLineState *lo = l2.tags().find(0);
    ASSERT_NE(lo, nullptr);
    EXPECT_TRUE(lo->footprint.test(1));
    EXPECT_FALSE(lo->dirty);
    // Upper 32B line: word 6 -> local word 2, dirty.
    const CacheLineState *hi = l2.tags().find(1);
    ASSERT_NE(hi, nullptr);
    EXPECT_TRUE(hi->footprint.test(2));
    EXPECT_TRUE(hi->dirty);
}

TEST(LineSize32, WordsUsedHistogramCapsAtFour)
{
    TraditionalL2 l2(geom32());
    for (unsigned w = 0; w < 4; ++w)
        l2.access(w * kWordBytes, false, 0, false);
    // Evict line 0 (set 0: lines are multiples of 4 at 32B).
    for (unsigned i = 1; i <= 8; ++i)
        l2.access(i * 4 * 32, false, 0, false);
    EXPECT_EQ(l2.wordsUsedAtEviction().countAt(4), 1u);
}

TEST(LineSize64, DeliveryIsAlwaysFullLine)
{
    CacheGeometry g;
    g.bytes = 4ull * 8 * kLineBytes;
    g.ways = 8;
    TraditionalL2 l2(g);
    EXPECT_TRUE(l2.access(8, false, 0, false).validWords.isFull());
    EXPECT_TRUE(l2.access(8, false, 0, false).validWords.isFull());
}

} // namespace
} // namespace ldis
