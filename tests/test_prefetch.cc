/** @file Tests for next-line prefetching and LDIS composition. */

#include <gtest/gtest.h>

#include "cache/hierarchy.hh"
#include "cache/prefetch.hh"
#include "cache/traditional_l2.hh"
#include "distill/distill_cache.hh"
#include "trace/benchmarks.hh"
#include "trace/composite.hh"

namespace ldis
{
namespace
{

Addr
wordAddr(LineAddr line, WordIdx w)
{
    return lineBaseOf(line) + w * kWordBytes;
}

CacheGeometry
tinyGeom()
{
    CacheGeometry g;
    g.bytes = 4ull * 8 * kLineBytes;
    g.ways = 8;
    return g;
}

TEST(Prefetch, TraditionalInstallsWithoutCountingDemand)
{
    TraditionalL2 l2(tinyGeom());
    EXPECT_TRUE(l2.prefetch(5));
    EXPECT_EQ(l2.stats().accesses, 0u);
    EXPECT_EQ(l2.stats().misses(), 0u);
    // The prefetched line now hits on demand.
    L2Result r = l2.access(wordAddr(5, 0), false, 0, false);
    EXPECT_EQ(r.outcome, L2Outcome::LocHit);
    // Prefetching a resident line is rejected.
    EXPECT_FALSE(l2.prefetch(5));
}

TEST(Prefetch, DistillInstallsIntoLoc)
{
    DistillParams p;
    p.bytes = 2ull * 8 * kLineBytes;
    DistillCache dc(p);
    EXPECT_TRUE(dc.prefetch(4));
    EXPECT_EQ(dc.stats().accesses, 0u);
    EXPECT_EQ(dc.access(wordAddr(4, 3), false, 0, false).outcome,
              L2Outcome::LocHit);
    EXPECT_FALSE(dc.prefetch(4));
    EXPECT_TRUE(dc.checkIntegrity());
}

TEST(Prefetch, UnusedPrefetchIsDiscardedNotDistilled)
{
    DistillParams p;
    p.bytes = 2ull * 8 * kLineBytes;
    DistillCache dc(p);
    dc.prefetch(0); // never touched
    // Evict it from the 6-way LOC.
    for (unsigned i = 1; i <= 6; ++i)
        dc.access(wordAddr(i * 2, 0), false, 0, false);
    EXPECT_EQ(dc.distillStats().wocInstalls, 0u);
    EXPECT_FALSE(dc.wocOf(0).linePresent(0));
    EXPECT_TRUE(dc.checkIntegrity());
}

TEST(Prefetch, UsedPrefetchDistillsItsRealFootprint)
{
    DistillParams p;
    p.bytes = 2ull * 8 * kLineBytes;
    DistillCache dc(p);
    dc.prefetch(0);
    dc.access(wordAddr(0, 6), false, 0, false); // touch one word
    for (unsigned i = 1; i <= 6; ++i)
        dc.access(wordAddr(i * 2, 0), false, 0, false);
    EXPECT_EQ(dc.distillStats().wocInstalls, 1u);
    EXPECT_TRUE(dc.wocOf(0).wordsOf(0).test(6));
    EXPECT_EQ(dc.wocOf(0).wordsOf(0).count(), 1u);
}

TEST(Prefetch, WrapperIssuesNextLinesOnDemandMiss)
{
    auto inner = std::make_unique<TraditionalL2>(tinyGeom());
    TraditionalL2 *raw = inner.get();
    PrefetchingL2 pf(std::move(inner), 2);
    pf.access(wordAddr(10, 0), false, 0, false); // miss
    EXPECT_EQ(pf.prefetchStats().issued, 2u);
    EXPECT_NE(raw->tags().find(11), nullptr);
    EXPECT_NE(raw->tags().find(12), nullptr);
    // A hit issues nothing.
    pf.access(wordAddr(10, 1), false, 0, false);
    EXPECT_EQ(pf.prefetchStats().issued, 2u);
}

TEST(Prefetch, InstructionMissesDoNotPrefetch)
{
    auto inner = std::make_unique<TraditionalL2>(tinyGeom());
    PrefetchingL2 pf(std::move(inner), 1);
    pf.access(wordAddr(20, 0), false, 0, true);
    EXPECT_EQ(pf.prefetchStats().issued, 0u);
}

TEST(Prefetch, HelpsStreamingWorkload)
{
    RegionParams r;
    r.bytes = 8 << 20;
    r.pattern = Pattern::Sequential;
    r.wordSel = WordSel::Full;
    r.meanOps = 4;
    auto make_wl = [&] {
        return CompositeWorkload("stream", {r}, CodeModel{},
                                 ValueProfile{}, 3);
    };

    CacheGeometry g;
    g.bytes = 1 << 20;
    g.ways = 8;
    auto wl1 = make_wl();
    TraditionalL2 plain(g);
    Hierarchy h1(wl1, plain);
    h1.run(300000);

    auto wl2 = make_wl();
    PrefetchingL2 pf(std::make_unique<TraditionalL2>(g), 1);
    Hierarchy h2(wl2, pf);
    h2.run(300000);

    // Next-line prefetching converts nearly all streaming misses
    // into hits.
    EXPECT_LT(pf.stats().misses(), plain.stats().misses() / 2);
}

TEST(Prefetch, ComposesWithDistillation)
{
    // A mixed workload: a stream (prefetch-friendly) plus a sparse
    // thrashing table (LDIS-friendly). LDIS+prefetch must beat both
    // single mechanisms.
    RegionParams stream;
    stream.bytes = 8 << 20;
    stream.pattern = Pattern::Sequential;
    stream.wordSel = WordSel::Full;
    stream.meanOps = 4;
    stream.weight = 0.5;
    RegionParams sparse;
    sparse.bytes = 2 << 20;
    sparse.pattern = Pattern::RandomLine;
    sparse.wordSel = WordSel::Single;
    sparse.wordsPerVisit = 1;
    sparse.meanOps = 4;
    sparse.weight = 0.5;
    auto make_wl = [&] {
        return CompositeWorkload("mixed", {stream, sparse},
                                 CodeModel{}, ValueProfile{}, 3);
    };

    auto run = [&](bool distill, bool prefetch) {
        auto wl = make_wl();
        std::unique_ptr<SecondLevelCache> l2;
        if (distill) {
            DistillParams p;
            p.medianThreshold = true;
            l2 = std::make_unique<DistillCache>(p);
        } else {
            CacheGeometry g;
            g.bytes = 1 << 20;
            g.ways = 8;
            l2 = std::make_unique<TraditionalL2>(g);
        }
        if (prefetch)
            l2 = std::make_unique<PrefetchingL2>(std::move(l2), 1);
        Hierarchy h(wl, *l2);
        h.run(1500000);
        return l2->stats().misses();
    };

    std::uint64_t base = run(false, false);
    std::uint64_t pf_only = run(false, true);
    std::uint64_t ldis_only = run(true, false);
    std::uint64_t both = run(true, true);
    EXPECT_LT(pf_only, base);
    EXPECT_LT(ldis_only, base);
    EXPECT_LT(both, pf_only);
    EXPECT_LT(both, ldis_only);
}

} // namespace
} // namespace ldis
