/**
 * @file
 * Property tests pitting the optimized hot-path structures against
 * simple scan-based reference models (the pre-optimization logic,
 * kept here verbatim in spirit). Both sides consume identical access
 * streams and identical RNG draw sequences, so victims, footprints
 * and recency positions must agree at every step.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "cache/set_assoc.hh"
#include "common/intmath.hh"
#include "distill/woc.hh"

namespace ldis
{
namespace
{

// ------------------------------------------------------------------
// Reference set-associative cache: per-set vectors, std::find-based
// LRU update — the original SetAssocCache implementation.
// ------------------------------------------------------------------

class RefCache
{
  public:
    explicit RefCache(const CacheGeometry &g)
        : geom(g), rng(g.seed)
    {
        setsCount =
            static_cast<unsigned>(g.bytes / g.lineBytes / g.ways);
        waysCount = g.ways;
        sets.resize(setsCount);
        for (auto &s : sets) {
            s.lines.resize(waysCount);
            s.order.resize(waysCount);
            for (unsigned w = 0; w < waysCount; ++w)
                s.order[w] = static_cast<std::uint8_t>(w);
        }
    }

    CacheLineState *
    find(LineAddr line)
    {
        Set &s = setOf(line);
        int w = wayOf(s, line);
        return w < 0 ? nullptr : &s.lines[w];
    }

    unsigned
    position(LineAddr line)
    {
        Set &s = setOf(line);
        int w = wayOf(s, line);
        EXPECT_GE(w, 0);
        for (unsigned pos = 0; pos < waysCount; ++pos)
            if (s.order[pos] == w)
                return pos;
        return waysCount;
    }

    void
    touch(LineAddr line)
    {
        Set &s = setOf(line);
        int w = wayOf(s, line);
        auto it = std::find(s.order.begin(), s.order.end(),
                            static_cast<std::uint8_t>(w));
        s.order.erase(it);
        s.order.insert(s.order.begin(),
                       static_cast<std::uint8_t>(w));
    }

    const CacheLineState *
    peekVictim(LineAddr line)
    {
        Set &s = setOf(line);
        for (unsigned w = 0; w < waysCount; ++w)
            if (!s.lines[w].valid)
                return nullptr;
        if (geom.repl == ReplPolicy::LRU)
            return &s.lines[s.order.back()];
        if (s.pendingVictim < 0)
            s.pendingVictim = static_cast<int>(rng.below(waysCount));
        return &s.lines[s.pendingVictim];
    }

    CacheLineState
    install(LineAddr line)
    {
        Set &s = setOf(line);
        int victim_way = -1;
        for (unsigned w = 0; w < waysCount; ++w) {
            if (!s.lines[w].valid) {
                victim_way = static_cast<int>(w);
                break;
            }
        }
        if (victim_way < 0) {
            if (geom.repl == ReplPolicy::LRU) {
                victim_way = s.order.back();
            } else if (s.pendingVictim >= 0) {
                victim_way = s.pendingVictim;
            } else {
                victim_way = static_cast<int>(rng.below(waysCount));
            }
        }
        s.pendingVictim = -1;

        CacheLineState evicted = s.lines[victim_way];
        CacheLineState fresh;
        fresh.line = line;
        fresh.valid = true;
        s.lines[victim_way] = fresh;

        auto it = std::find(s.order.begin(), s.order.end(),
                            static_cast<std::uint8_t>(victim_way));
        s.order.erase(it);
        s.order.insert(s.order.begin(),
                       static_cast<std::uint8_t>(victim_way));
        return evicted;
    }

    CacheLineState
    invalidate(LineAddr line)
    {
        Set &s = setOf(line);
        int w = wayOf(s, line);
        if (w < 0)
            return CacheLineState{};
        CacheLineState prior = s.lines[w];
        s.lines[w] = CacheLineState{};
        s.pendingVictim = -1;
        auto it = std::find(s.order.begin(), s.order.end(),
                            static_cast<std::uint8_t>(w));
        s.order.erase(it);
        s.order.push_back(static_cast<std::uint8_t>(w));
        return prior;
    }

    std::uint64_t
    validCount() const
    {
        std::uint64_t n = 0;
        for (const auto &s : sets)
            for (const auto &l : s.lines)
                if (l.valid)
                    ++n;
        return n;
    }

  private:
    struct Set
    {
        std::vector<CacheLineState> lines;
        std::vector<std::uint8_t> order;
        int pendingVictim = -1;
    };

    Set &setOf(LineAddr line) { return sets[line & (setsCount - 1)]; }

    int
    wayOf(const Set &s, LineAddr line) const
    {
        for (unsigned w = 0; w < waysCount; ++w)
            if (s.lines[w].valid && s.lines[w].line == line)
                return static_cast<int>(w);
        return -1;
    }

    CacheGeometry geom;
    unsigned setsCount;
    unsigned waysCount;
    std::vector<Set> sets;
    Random rng;
};

class SetAssocModelTest
    : public ::testing::TestWithParam<std::tuple<unsigned, int>>
{
};

TEST_P(SetAssocModelTest, MatchesReferenceModel)
{
    const unsigned seed = std::get<0>(GetParam());
    const bool random_repl = std::get<1>(GetParam()) != 0;

    CacheGeometry g;
    g.ways = 4;
    g.bytes = 8ull * g.ways * kLineBytes; // 8 sets
    g.repl = random_repl ? ReplPolicy::Random : ReplPolicy::LRU;
    g.seed = 1000 + seed;

    SetAssocCache opt(g);
    RefCache ref(g);
    Random op(seed * 2654435761u + 1);

    for (int step = 0; step < 5000; ++step) {
        LineAddr line = op.below(64);
        std::uint64_t what = op.below(10);
        if (what < 5) {
            // Access: touch on hit, peek + install on miss.
            CacheLineState *o = opt.find(line);
            CacheLineState *r = ref.find(line);
            ASSERT_EQ(o != nullptr, r != nullptr) << step;
            if (o) {
                ASSERT_EQ(opt.position(line), ref.position(line))
                    << step;
                opt.touch(line);
                ref.touch(line);
            } else {
                const CacheLineState *ov = opt.peekVictim(line);
                const CacheLineState *rv = ref.peekVictim(line);
                ASSERT_EQ(ov != nullptr, rv != nullptr) << step;
                // Copy now: install() reuses the victim's frame.
                LineAddr peeked = ov ? ov->line : 0;
                if (ov)
                    ASSERT_EQ(peeked, rv->line) << step;
                CacheLineState oe = opt.install(line);
                CacheLineState re = ref.install(line);
                ASSERT_EQ(oe.valid, re.valid) << step;
                if (oe.valid)
                    ASSERT_EQ(oe.line, re.line) << step;
                if (ov)
                    ASSERT_EQ(oe.line, peeked) << step;
            }
        } else if (what < 7) {
            // Install without peeking (if not resident).
            if (!opt.find(line)) {
                CacheLineState oe = opt.install(line);
                CacheLineState re = ref.install(line);
                ASSERT_EQ(oe.valid, re.valid) << step;
                if (oe.valid)
                    ASSERT_EQ(oe.line, re.line) << step;
            }
        } else if (what < 9) {
            // Metadata mutation on a resident line.
            CacheLineState *o = opt.find(line);
            CacheLineState *r = ref.find(line);
            ASSERT_EQ(o != nullptr, r != nullptr) << step;
            if (o) {
                WordIdx w = static_cast<WordIdx>(op.below(8));
                o->footprint.set(w);
                r->footprint.set(w);
                o->dirty = r->dirty = true;
            }
        } else {
            CacheLineState oe = opt.invalidate(line);
            CacheLineState re = ref.invalidate(line);
            ASSERT_EQ(oe.valid, re.valid) << step;
            if (oe.valid) {
                ASSERT_EQ(oe.line, re.line) << step;
                ASSERT_EQ(oe.dirty, re.dirty) << step;
                ASSERT_EQ(oe.footprint.raw(),
                          re.footprint.raw()) << step;
            }
        }
        ASSERT_EQ(opt.validCount(), ref.validCount()) << step;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Streams, SetAssocModelTest,
    ::testing::Combine(::testing::Range(1u, 7u),
                       ::testing::Values(0, 1)));

// ------------------------------------------------------------------
// Reference WOC set: vector of per-entry structs, full-entry scans,
// heap-allocated candidate lists — the original WocSet logic.
// ------------------------------------------------------------------

class RefWoc
{
  public:
    explicit RefWoc(unsigned num_entries) : entries(num_entries) {}

    int
    headOf(LineAddr line) const
    {
        for (unsigned i = 0; i < entries.size(); ++i)
            if (entries[i].valid && entries[i].head &&
                entries[i].line == line)
                return static_cast<int>(i);
        return -1;
    }

    bool linePresent(LineAddr line) const { return headOf(line) >= 0; }

    unsigned
    groupEnd(unsigned head) const
    {
        unsigned end = head + 1;
        while (end < entries.size() && entries[end].valid &&
               !entries[end].head)
            ++end;
        return end;
    }

    Footprint
    wordsOf(LineAddr line) const
    {
        Footprint fp;
        int h = headOf(line);
        if (h < 0)
            return fp;
        for (unsigned i = h; i < groupEnd(h); ++i)
            fp.set(entries[i].wordId);
        return fp;
    }

    Footprint
    dirtyWordsOf(LineAddr line) const
    {
        Footprint fp;
        int h = headOf(line);
        if (h < 0)
            return fp;
        for (unsigned i = h; i < groupEnd(h); ++i)
            if (entries[i].dirty)
                fp.set(entries[i].wordId);
        return fp;
    }

    void
    evictGroup(unsigned head, std::vector<WocEvicted> &out)
    {
        // Snapshot the run end before clearing: groupEnd() reads the
        // entries being invalidated.
        unsigned end = groupEnd(head);
        WocEvicted ev;
        ev.line = entries[head].line;
        for (unsigned i = head; i < end; ++i) {
            ev.words.set(entries[i].wordId);
            if (entries[i].dirty)
                ev.dirty.set(entries[i].wordId);
        }
        for (unsigned i = head; i < end; ++i)
            entries[i] = WocEntry{};
        out.push_back(ev);
    }

    void
    install(LineAddr line, Footprint used, Footprint dirty,
            Random &rng, std::vector<WocEvicted> &evicted_out)
    {
        unsigned count = used.count();
        unsigned group = static_cast<unsigned>(nextPow2(count));

        std::vector<unsigned> free_starts;
        std::vector<unsigned> eligible;
        for (unsigned s = 0; s + group <= entries.size();
             s += group) {
            const WocEntry &first = entries[s];
            if (!first.valid || first.head) {
                bool all_free = true;
                for (unsigned i = s; i < s + group; ++i)
                    if (entries[i].valid)
                        all_free = false;
                if (all_free)
                    free_starts.push_back(s);
                else
                    eligible.push_back(s);
            }
        }

        unsigned start;
        if (!free_starts.empty())
            start = free_starts[rng.below(free_starts.size())];
        else
            start = eligible[rng.below(eligible.size())];

        for (unsigned i = start; i < start + group; ++i) {
            if (!entries[i].valid)
                continue;
            unsigned h = i;
            while (!entries[h].head)
                --h;
            evictGroup(h, evicted_out);
        }

        unsigned slot = start;
        for (WordIdx w = 0; w < kWordsPerLine; ++w) {
            if (!used.test(w))
                continue;
            WocEntry &e = entries[slot];
            e.valid = true;
            e.head = (slot == start);
            e.dirty = dirty.test(w);
            e.line = line;
            e.wordId = w;
            ++slot;
        }
    }

    WocEvicted
    invalidateLine(LineAddr line)
    {
        WocEvicted ev;
        ev.line = line;
        int h = headOf(line);
        if (h < 0)
            return ev;
        std::vector<WocEvicted> tmp;
        evictGroup(static_cast<unsigned>(h), tmp);
        return tmp.front();
    }

    void
    markDirty(LineAddr line, Footprint words)
    {
        int h = headOf(line);
        if (h < 0)
            return;
        for (unsigned i = h; i < groupEnd(h); ++i)
            if (words.test(entries[i].wordId))
                entries[i].dirty = true;
    }

    unsigned
    validEntryCount() const
    {
        unsigned n = 0;
        for (const WocEntry &e : entries)
            if (e.valid)
                ++n;
        return n;
    }

  private:
    std::vector<WocEntry> entries;
};

class WocModelTest : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(WocModelTest, MatchesReferenceModel)
{
    const unsigned seed = GetParam();
    // Identical seeds on both sides: the candidate gathering order
    // and rng.below() draw sequence must line up exactly.
    Random opt_rng(seed * 31 + 5);
    Random ref_rng(seed * 31 + 5);
    Random op(seed * 7919 + 3);

    WocSet opt(16);
    RefWoc ref(16);
    std::vector<WocEvicted> opt_ev;
    std::vector<WocEvicted> ref_ev;

    for (int step = 0; step < 4000; ++step) {
        LineAddr line = 500 + op.below(100);
        std::uint64_t what = op.below(10);
        if (what < 6) {
            if (opt.linePresent(line))
                continue;
            Footprint used;
            unsigned count =
                1 + static_cast<unsigned>(op.below(8));
            while (used.count() < count)
                used.set(static_cast<WordIdx>(op.below(8)));
            Footprint dirty;
            for (WordIdx w = 0; w < kWordsPerLine; ++w)
                if (used.test(w) && op.chance(0.25))
                    dirty.set(w);
            opt_ev.clear();
            ref_ev.clear();
            opt.install(line, used, dirty, opt_rng, opt_ev);
            ref.install(line, used, dirty, ref_rng, ref_ev);

            ASSERT_EQ(opt_ev.size(), ref_ev.size()) << step;
            for (std::size_t i = 0; i < opt_ev.size(); ++i) {
                ASSERT_EQ(opt_ev[i].line, ref_ev[i].line) << step;
                ASSERT_EQ(opt_ev[i].words, ref_ev[i].words) << step;
                ASSERT_EQ(opt_ev[i].dirty, ref_ev[i].dirty) << step;
            }
        } else if (what < 8) {
            ASSERT_EQ(opt.linePresent(line), ref.linePresent(line))
                << step;
            WocEvicted oe = opt.invalidateLine(line);
            WocEvicted re = ref.invalidateLine(line);
            ASSERT_EQ(oe.words, re.words) << step;
            ASSERT_EQ(oe.dirty, re.dirty) << step;
        } else {
            Footprint words;
            words.set(static_cast<WordIdx>(op.below(8)));
            opt.markDirty(line, words);
            ref.markDirty(line, words);
        }

        // Full-state comparison every step.
        ASSERT_TRUE(opt.checkIntegrity()) << step;
        ASSERT_EQ(opt.validEntryCount(), ref.validEntryCount())
            << step;
        for (LineAddr l = 500; l < 600; ++l) {
            ASSERT_EQ(opt.wordsOf(l), ref.wordsOf(l))
                << "line " << l << " step " << step;
            ASSERT_EQ(opt.dirtyWordsOf(l), ref.dirtyWordsOf(l))
                << "line " << l << " step " << step;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WocModelTest,
                         ::testing::Range(1u, 9u));

} // namespace
} // namespace ldis
