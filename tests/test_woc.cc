/**
 * @file
 * Unit and property tests for the Word-Organized Cache set — the
 * core data structure of the distill cache (Section 5.1).
 */

#include <gtest/gtest.h>

#include "common/intmath.hh"
#include "distill/woc.hh"

namespace ldis
{
namespace
{

Footprint
mask(std::initializer_list<WordIdx> words)
{
    Footprint fp;
    for (WordIdx w : words)
        fp.set(w);
    return fp;
}

struct WocFixture : public ::testing::Test
{
    WocSet woc{16}; // 2 ways x 8 entries, the paper's default
    Random rng{7};
    std::vector<WocEvicted> evicted;
};

TEST_F(WocFixture, InstallAndLookup)
{
    woc.install(100, mask({0, 7}), Footprint{}, rng, evicted);
    EXPECT_TRUE(evicted.empty());
    EXPECT_TRUE(woc.linePresent(100));
    Footprint words = woc.wordsOf(100);
    EXPECT_TRUE(words.test(0));
    EXPECT_TRUE(words.test(7));
    EXPECT_EQ(words.count(), 2u);
    EXPECT_FALSE(woc.linePresent(101));
}

TEST_F(WocFixture, HeadBitOnFirstEntryOnly)
{
    woc.install(100, mask({1, 3, 6}), Footprint{}, rng, evicted);
    unsigned heads = 0, members = 0;
    for (unsigned i = 0; i < woc.numEntries(); ++i) {
        const WocEntry &e = woc.entry(i);
        if (!e.valid)
            continue;
        ++members;
        if (e.head)
            ++heads;
    }
    EXPECT_EQ(heads, 1u);
    EXPECT_EQ(members, 3u);
}

TEST_F(WocFixture, GroupIsAlignedToPow2)
{
    // 3 used words occupy a 4-aligned window.
    woc.install(100, mask({1, 3, 6}), Footprint{}, rng, evicted);
    int head = -1;
    for (unsigned i = 0; i < woc.numEntries(); ++i)
        if (woc.entry(i).valid && woc.entry(i).head)
            head = static_cast<int>(i);
    ASSERT_GE(head, 0);
    EXPECT_EQ(head % 4, 0);
    EXPECT_TRUE(woc.checkIntegrity());
}

TEST_F(WocFixture, WordIdsAscendWithinGroup)
{
    woc.install(42, mask({2, 5, 7}), Footprint{}, rng, evicted);
    WordIdx prev = 0;
    bool first = true;
    for (unsigned i = 0; i < woc.numEntries(); ++i) {
        const WocEntry &e = woc.entry(i);
        if (!e.valid)
            continue;
        if (!first)
            EXPECT_GT(e.wordId, prev);
        prev = e.wordId;
        first = false;
    }
}

TEST_F(WocFixture, CapacityOneWordLines)
{
    // 16 one-word lines fill every entry without eviction.
    for (LineAddr l = 0; l < 16; ++l) {
        woc.install(l, mask({0}), Footprint{}, rng, evicted);
        EXPECT_TRUE(evicted.empty()) << l;
    }
    EXPECT_EQ(woc.lineCount(), 16u);
    EXPECT_EQ(woc.validEntryCount(), 16u);
    // The 17th evicts exactly one line.
    woc.install(100, mask({0}), Footprint{}, rng, evicted);
    EXPECT_EQ(evicted.size(), 1u);
    EXPECT_EQ(woc.lineCount(), 16u);
}

TEST_F(WocFixture, EvictingAnyWordEvictsWholeLine)
{
    // An 8-word line occupies a whole way; installing a 2-word group
    // over any part of it must evict all eight words (Section 5.3).
    woc.install(
        1, Footprint::full(), Footprint{}, rng, evicted);
    // Fill the other way so the victim must be the 8-word line.
    woc.install(2, mask({0, 1, 2, 3}), Footprint{}, rng, evicted);
    woc.install(3, mask({0, 1, 2, 3}), Footprint{}, rng, evicted);
    ASSERT_TRUE(evicted.empty());

    woc.install(4, mask({0, 5}), Footprint{}, rng, evicted);
    ASSERT_EQ(evicted.size(), 1u);
    EXPECT_EQ(evicted[0].line, 1u);
    EXPECT_TRUE(evicted[0].words.isFull());
    EXPECT_FALSE(woc.linePresent(1));
    EXPECT_TRUE(woc.checkIntegrity());
}

TEST_F(WocFixture, InvalidateReturnsDirtyWords)
{
    woc.install(9, mask({2, 4}), mask({4}), rng, evicted);
    WocEvicted ev = woc.invalidateLine(9);
    EXPECT_EQ(ev.words, mask({2, 4}));
    EXPECT_EQ(ev.dirty, mask({4}));
    EXPECT_FALSE(woc.linePresent(9));
    // Invalidating again is harmless.
    WocEvicted none = woc.invalidateLine(9);
    EXPECT_TRUE(none.words.empty());
}

TEST_F(WocFixture, MarkDirtyOnlyAffectsResidentWords)
{
    woc.install(9, mask({2, 4}), Footprint{}, rng, evicted);
    woc.markDirty(9, mask({4, 6})); // word 6 is not resident
    EXPECT_EQ(woc.dirtyWordsOf(9), mask({4}));
}

TEST_F(WocFixture, FlushEvictsEverything)
{
    woc.install(1, mask({0}), Footprint{}, rng, evicted);
    woc.install(2, mask({1, 2}), mask({1}), rng, evicted);
    evicted.clear();
    woc.flush(evicted);
    EXPECT_EQ(evicted.size(), 2u);
    EXPECT_EQ(woc.validEntryCount(), 0u);
    EXPECT_EQ(woc.lineCount(), 0u);
}

TEST_F(WocFixture, PartialGroupLeavesTailFree)
{
    // A 3-word line reserves a 4-aligned window but only occupies 3
    // entries; the 4th stays invalid and can hold a 1-word line
    // (the paper's group-extent rule ends a group at an invalid
    // entry or the next head bit).
    woc.install(5, mask({0, 1, 2}), Footprint{}, rng, evicted);
    EXPECT_EQ(woc.validEntryCount(), 3u);
    // Fill the remaining aligned windows, then one-word lines go
    // into the leftover slots without evicting.
    woc.install(6, mask({0, 1, 2, 3}), Footprint{}, rng, evicted);
    woc.install(7, mask({0, 1, 2, 3}), Footprint{}, rng, evicted);
    woc.install(8, mask({0, 1, 2, 3}), Footprint{}, rng, evicted);
    ASSERT_TRUE(evicted.empty());
    EXPECT_EQ(woc.validEntryCount(), 15u);
    woc.install(9, mask({5}), Footprint{}, rng, evicted);
    EXPECT_TRUE(evicted.empty());
    EXPECT_EQ(woc.validEntryCount(), 16u);
    EXPECT_TRUE(woc.checkIntegrity());
}

TEST_F(WocFixture, DirtyMustBeSubsetOfUsed)
{
    EXPECT_DEATH(woc.install(1, mask({0}), mask({1}), rng, evicted),
                 "assert");
}

TEST_F(WocFixture, DoubleInstallPanics)
{
    woc.install(1, mask({0}), Footprint{}, rng, evicted);
    EXPECT_DEATH(woc.install(1, mask({1}), Footprint{}, rng,
                             evicted),
                 "assert");
}

TEST_F(WocFixture, EmptyFootprintPanics)
{
    EXPECT_DEATH(woc.install(1, Footprint{}, Footprint{}, rng,
                             evicted),
                 "assert");
}

TEST(WocVictimPolicy, RoundRobinIsDeterministic)
{
    auto run = [] {
        WocSet woc(16, WocVictim::RoundRobin);
        Random rng(99); // unused by round-robin choice
        std::vector<WocEvicted> evicted;
        std::vector<LineAddr> victims;
        for (LineAddr l = 0; l < 40; ++l) {
            evicted.clear();
            woc.install(l, mask({0}), Footprint{}, rng, evicted);
            for (const WocEvicted &ev : evicted)
                victims.push_back(ev.line);
        }
        return victims;
    };
    EXPECT_EQ(run(), run());
}

TEST(WocVictimPolicy, RoundRobinCyclesOverAlignedSlots)
{
    // Regression: the cursor used to index the *candidate list*
    // (whose size changes between installs), which biased the choice
    // and was not round-robin over slot positions. The cursor now
    // advances over aligned slot positions, so with one-entry groups
    // the victims come out in strict ascending slot order, wrapping.
    WocSet woc(16, WocVictim::RoundRobin);
    Random rng(99); // unused by round-robin choice
    std::vector<WocEvicted> evicted;
    for (LineAddr l = 0; l < 16; ++l) {
        woc.install(l, mask({0}), Footprint{}, rng, evicted);
        ASSERT_TRUE(evicted.empty()) << l;
    }
    for (unsigned i = 0; i < 32; ++i) {
        evicted.clear();
        woc.install(100 + i, mask({0}), Footprint{}, rng, evicted);
        ASSERT_EQ(evicted.size(), 1u) << i;
        LineAddr expect = i < 16 ? i : 100 + (i - 16);
        EXPECT_EQ(evicted[0].line, expect) << i;
    }
}

TEST(WocVictimPolicy, RoundRobinAdvancesByGroupSize)
{
    WocSet woc(16, WocVictim::RoundRobin);
    Random rng(5);
    std::vector<WocEvicted> evicted;
    // Eight two-entry groups fill the set in slot order.
    for (LineAddr l = 0; l < 8; ++l) {
        woc.install(l, mask({0, 1}), Footprint{}, rng, evicted);
        ASSERT_TRUE(evicted.empty()) << l;
    }
    // Further two-word installs evict slots 0, 2, 4, ... in order.
    for (unsigned i = 0; i < 8; ++i) {
        evicted.clear();
        woc.install(50 + i, mask({2, 3}), Footprint{}, rng, evicted);
        ASSERT_EQ(evicted.size(), 1u) << i;
        EXPECT_EQ(evicted[0].line, i) << i;
    }
}

TEST(WocVictimPolicy, RoundRobinPreservesInvariants)
{
    WocSet woc(16, WocVictim::RoundRobin);
    Random rng(3);
    std::vector<WocEvicted> evicted;
    Random op(17);
    for (int step = 0; step < 1000; ++step) {
        LineAddr line = 100 + op.below(60);
        if (woc.linePresent(line))
            continue;
        Footprint used;
        unsigned count = 1 + static_cast<unsigned>(op.below(8));
        while (used.count() < count)
            used.set(static_cast<WordIdx>(op.below(8)));
        evicted.clear();
        woc.install(line, used, Footprint{}, rng, evicted);
        ASSERT_TRUE(woc.checkIntegrity()) << step;
    }
}

/**
 * Property test: a long random stream of installs / invalidations /
 * dirty-markings keeps every structural invariant intact, never
 * duplicates a line, and accounts capacity exactly.
 */
class WocPropertyTest : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(WocPropertyTest, RandomOpsPreserveInvariants)
{
    const unsigned seed = GetParam();
    Random rng(seed);
    Random op_rng(seed * 7919 + 1);
    WocSet woc(16);
    std::vector<WocEvicted> evicted;
    std::vector<LineAddr> resident;

    for (int step = 0; step < 3000; ++step) {
        std::uint64_t op = op_rng.below(10);
        if (op < 6) {
            // Install a new line with a random footprint.
            LineAddr line = 1000 + op_rng.below(200);
            if (woc.linePresent(line))
                continue;
            Footprint used;
            unsigned count =
                1 + static_cast<unsigned>(op_rng.below(8));
            while (used.count() < count)
                used.set(static_cast<WordIdx>(op_rng.below(8)));
            Footprint dirty;
            for (WordIdx w = 0; w < 8; ++w)
                if (used.test(w) && op_rng.chance(0.3))
                    dirty.set(w);
            evicted.clear();
            woc.install(line, used, dirty, rng, evicted);

            ASSERT_TRUE(woc.linePresent(line));
            ASSERT_EQ(woc.wordsOf(line), used);
            ASSERT_EQ(woc.dirtyWordsOf(line), dirty);
            // Evicted lines are gone.
            for (const WocEvicted &ev : evicted) {
                ASSERT_FALSE(woc.linePresent(ev.line));
                ASSERT_FALSE(ev.words.empty());
            }
        } else if (op < 8) {
            // Invalidate a random possibly-present line.
            LineAddr line = 1000 + op_rng.below(200);
            bool was_present = woc.linePresent(line);
            Footprint words = woc.wordsOf(line);
            WocEvicted ev = woc.invalidateLine(line);
            ASSERT_EQ(ev.words, words);
            ASSERT_FALSE(woc.linePresent(line));
            (void)was_present;
        } else {
            // Mark random words dirty.
            LineAddr line = 1000 + op_rng.below(200);
            Footprint words;
            words.set(static_cast<WordIdx>(op_rng.below(8)));
            Footprint before = woc.dirtyWordsOf(line);
            woc.markDirty(line, words);
            Footprint after = woc.dirtyWordsOf(line);
            // Dirty grows only by resident words.
            ASSERT_EQ(after, before | (words & woc.wordsOf(line)));
        }
        ASSERT_TRUE(woc.checkIntegrity()) << "step " << step;
        ASSERT_LE(woc.validEntryCount(), 16u);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WocPropertyTest,
                         ::testing::Range(1u, 13u));

/** Sweep all 255 footprints: install occupies nextPow2 windows. */
class WocFootprintSweep : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(WocFootprintSweep, AnyFootprintInstallsCleanly)
{
    const std::uint8_t raw = static_cast<std::uint8_t>(GetParam());
    Footprint used(raw);
    if (used.empty())
        return;
    WocSet woc(16);
    Random rng(3);
    std::vector<WocEvicted> evicted;
    woc.install(77, used, Footprint{}, rng, evicted);
    EXPECT_TRUE(evicted.empty());
    EXPECT_EQ(woc.wordsOf(77), used);
    EXPECT_TRUE(woc.checkIntegrity());
    // Group head sits on its alignment boundary.
    for (unsigned i = 0; i < woc.numEntries(); ++i) {
        if (woc.entry(i).valid && woc.entry(i).head) {
            unsigned slots = static_cast<unsigned>(
                nextPow2(used.count()));
            EXPECT_EQ(i % slots, 0u);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(AllFootprints, WocFootprintSweep,
                         ::testing::Range(1u, 256u));

} // namespace
} // namespace ldis
