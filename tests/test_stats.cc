/** @file Unit tests for the stats registry (common/stats). */

#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/json.hh"
#include "common/stats.hh"

namespace ldis
{
namespace
{

/** Force stats collection on for a test, restoring on exit. */
class StatsOn
{
  public:
    StatsOn() { stats::setEnabled(true); }
    ~StatsOn() { stats::setEnabled(false); }
};

TEST(Stats, CounterAccumulates)
{
    StatsOn on;
    stats::Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.add();
    c.add(41);
    EXPECT_EQ(c.value(), 42u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Stats, DisabledCounterIgnoresAdds)
{
    stats::setEnabled(false);
    stats::Counter c;
    c.add(7);
    EXPECT_EQ(c.value(), 0u);
}

TEST(Stats, TimerScopeAccumulates)
{
    StatsOn on;
    stats::Timer t;
    {
        stats::Timer::Scope scope(t);
    }
    {
        stats::Timer::Scope scope(t);
    }
    EXPECT_EQ(t.count(), 2u);
    EXPECT_GE(t.seconds(), 0.0);
    t.reset();
    EXPECT_EQ(t.count(), 0u);
}

TEST(Stats, DisabledTimerScopeRecordsNothing)
{
    stats::setEnabled(false);
    stats::Timer t;
    {
        stats::Timer::Scope scope(t);
    }
    EXPECT_EQ(t.count(), 0u);
    EXPECT_EQ(t.seconds(), 0.0);
}

TEST(Stats, HistogramBucketsByLog2)
{
    StatsOn on;
    stats::Histogram h;
    h.sample(0); // bucket 0
    h.sample(1); // bucket 1: [1, 2)
    h.sample(2); // bucket 2: [2, 4)
    h.sample(3); // bucket 2
    h.sample(4); // bucket 3: [4, 8)
    h.sample(UINT64_MAX); // bucket 64
    EXPECT_EQ(h.count(), 6u);
    EXPECT_EQ(h.bucket(0), 1u);
    EXPECT_EQ(h.bucket(1), 1u);
    EXPECT_EQ(h.bucket(2), 2u);
    EXPECT_EQ(h.bucket(3), 1u);
    EXPECT_EQ(h.bucket(64), 1u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), UINT64_MAX);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 0u);
}

TEST(Stats, HistogramMinMaxUnderConcurrency)
{
    StatsOn on;
    stats::Histogram h;
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
        threads.emplace_back([&h, t] {
            for (std::uint64_t i = 1; i <= 1000; ++i)
                h.sample(i + static_cast<std::uint64_t>(t) * 1000);
        });
    }
    for (std::thread &t : threads)
        t.join();
    EXPECT_EQ(h.count(), 4000u);
    EXPECT_EQ(h.min(), 1u);
    EXPECT_EQ(h.max(), 4000u);
}

TEST(Stats, RegistryReferencesAreStable)
{
    StatsOn on;
    stats::StatRegistry reg;
    stats::Counter &a = reg.counter("first");
    // Creating many more entries must not invalidate `a`.
    for (int i = 0; i < 100; ++i)
        reg.counter("other-" + std::to_string(i));
    a.add(3);
    EXPECT_EQ(reg.counter("first").value(), 3u);
    EXPECT_EQ(&reg.counter("first"), &a);
}

TEST(Stats, RegistryConcurrentLookupAndBump)
{
    StatsOn on;
    stats::StatRegistry reg;
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
        threads.emplace_back([&reg] {
            for (int i = 0; i < 1000; ++i)
                reg.counter("shared").add();
        });
    }
    for (std::thread &t : threads)
        t.join();
    EXPECT_EQ(reg.counter("shared").value(), 4000u);
}

TEST(Stats, WriteJsonSnapshot)
{
    StatsOn on;
    stats::StatRegistry reg;
    reg.counter("events").add(5);
    reg.timer("phase").add(0.25);
    reg.histogram("sizes").sample(3);
    JsonWriter j;
    j.beginObject();
    reg.writeJson(j, "stats");
    j.endObject();
    std::string out = j.str();
    EXPECT_NE(out.find("\"events\":5"), std::string::npos) << out;
    EXPECT_NE(out.find("\"phase\""), std::string::npos);
    EXPECT_NE(out.find("\"count\":1"), std::string::npos);
    EXPECT_NE(out.find("\"sizes\""), std::string::npos);
    EXPECT_NE(out.find("\"sum\":3"), std::string::npos);
}

TEST(Stats, ResetAllZeroesEverything)
{
    StatsOn on;
    stats::StatRegistry reg;
    reg.counter("a").add(1);
    reg.timer("b").add(1.0);
    reg.histogram("c").sample(9);
    reg.resetAll();
    EXPECT_EQ(reg.counter("a").value(), 0u);
    EXPECT_EQ(reg.timer("b").count(), 0u);
    EXPECT_EQ(reg.histogram("c").count(), 0u);
}

} // namespace
} // namespace ldis
