/**
 * @file
 * Proxy-calibration tests: each benchmark proxy must stay in the
 * qualitative regime the paper reports for the real benchmark —
 * average words used per evicted line near the Table-6 value, the
 * MPKI ordering of Table 2's extremes, and the Figure-6 direction of
 * the LDIS response. These are the tests that keep future proxy
 * edits honest.
 */

#include <gtest/gtest.h>

#include "cache/hierarchy.hh"
#include "cache/traditional_l2.hh"
#include "sim/experiment.hh"

namespace ldis
{
namespace
{

/**
 * Run the baseline and return (mpki, avg words used). The average
 * blends evicted lines with the lines resident at the end, so
 * slow-eviction streaming proxies still report a value.
 */
std::pair<double, double>
baselineProfile(const std::string &name, InstCount n)
{
    auto workload = makeBenchmark(name);
    CacheGeometry g;
    g.bytes = 1 << 20;
    g.ways = 8;
    TraditionalL2 l2(g);
    Hierarchy hier(*workload, l2);
    hier.run(n);

    const Histogram &h = l2.wordsUsedAtEviction();
    double sum = h.mean() * static_cast<double>(h.totalSamples());
    std::uint64_t count = h.totalSamples();
    l2.tags().forEachLine([&](const CacheLineState &l) {
        if (l.instr || l.footprint.empty())
            return;
        sum += l.footprint.count();
        ++count;
    });
    double words =
        count == 0 ? 0.0 : sum / static_cast<double>(count);
    return {hier.mpki(), words};
}

class WordsUsedTest : public ::testing::TestWithParam<const char *>
{
};

TEST_P(WordsUsedTest, AvgWordsNearTable6)
{
    const std::string name = GetParam();
    auto [mpki, words] = baselineProfile(name, 3'000'000);
    double paper = benchmarkInfo(name).paperWords1MB;
    // The proxies are calibrated to the regime, not the digit:
    // accept a generous band, but catch regressions that flip a
    // sparse benchmark into a dense one or vice versa.
    EXPECT_GT(words, paper * 0.45) << name;
    EXPECT_LT(words, paper * 1.7 + 0.7) << name;
}

INSTANTIATE_TEST_SUITE_P(
    Proxies, WordsUsedTest,
    ::testing::Values("art", "mcf", "twolf", "ammp", "parser",
                      "sixtrack", "apsi", "gcc", "wupwise",
                      "health"));

TEST(ProxyCalibration, SparseAndDenseExtremes)
{
    auto [mcf_mpki, mcf_words] = baselineProfile("mcf", 2'000'000);
    auto [wup_mpki, wup_words] =
        baselineProfile("wupwise", 2'000'000);
    // mcf: sparse and memory-bound; wupwise: dense streaming.
    EXPECT_LT(mcf_words, 3.0);
    EXPECT_GT(wup_words, 6.5);
    EXPECT_GT(mcf_mpki, 30.0);
    EXPECT_LT(wup_mpki, 10.0);
}

TEST(ProxyCalibration, MpkiOrderingMatchesTable2)
{
    // The paper's extremes: mcf and health lead by a wide margin;
    // sixtrack and apsi are near the bottom.
    const InstCount n = 3'000'000;
    double mcf = baselineProfile("mcf", n).first;
    double health = baselineProfile("health", n).first;
    double sixtrack = baselineProfile("sixtrack", n).first;
    double apsi = baselineProfile("apsi", n).first;
    EXPECT_GT(mcf, 10 * sixtrack);
    EXPECT_GT(health, 10 * apsi);
    EXPECT_GT(mcf, 50.0);
    EXPECT_GT(health, 30.0);
}

class LdisWinnersTest : public ::testing::TestWithParam<const char *>
{
};

TEST_P(LdisWinnersTest, Figure6WinnersGainNoticeably)
{
    // Figure 6: "LDIS-Base reduces MPKI by more than 40% for art,
    // twolf, ammp, sixtrack, and health" -- at short test lengths
    // demand a conservative 10%.
    const std::string name = GetParam();
    // Long enough that capacity misses dominate the compulsory
    // transient (twolf's gain only emerges once its working set has
    // been swept a few times).
    RunResult base =
        runTrace(name, ConfigKind::Baseline1MB, 12'000'000);
    RunResult ldis = runTrace(name, ConfigKind::LdisMT, 12'000'000);
    EXPECT_GT(percentReduction(base.mpki, ldis.mpki), 10.0) << name;
}

INSTANTIATE_TEST_SUITE_P(Winners, LdisWinnersTest,
                         ::testing::Values("art", "twolf", "ammp",
                                           "health"));

TEST(ProxyCalibration, SwimHurtsWithoutReverter)
{
    // Figure 6's cautionary tale: plain LDIS must lose on swim and
    // the reverter must pull it back near break-even.
    const InstCount n = 30'000'000;
    RunResult base = runTrace("swim", ConfigKind::Baseline1MB, n);
    RunResult mt = runTrace("swim", ConfigKind::LdisMT, n);
    RunResult rc = runTrace("swim", ConfigKind::LdisMTRC, n);
    double mt_delta = percentReduction(base.mpki, mt.mpki);
    double rc_delta = percentReduction(base.mpki, rc.mpki);
    EXPECT_LT(mt_delta, -5.0);
    EXPECT_GT(rc_delta, -5.0);
    EXPECT_GT(rc_delta, mt_delta);
}

TEST(ProxyCalibration, CompulsoryHeavyProxiesStayCompulsory)
{
    // wupwise: 83% compulsory in Table 2.
    RunResult r =
        runTrace("wupwise", ConfigKind::Baseline1MB, 4'000'000);
    ASSERT_GT(r.l2.misses(), 0u);
    double comp = static_cast<double>(r.l2.compulsoryMisses)
                / static_cast<double>(r.l2.misses());
    EXPECT_GT(comp, 0.7);
}

TEST(ProxyCalibration, ThrashersAreNotCompulsoryBound)
{
    // health: 0.73% compulsory in Table 2 (pure thrashing reuse).
    RunResult r =
        runTrace("health", ConfigKind::Baseline1MB, 8'000'000);
    double comp = static_cast<double>(r.l2.compulsoryMisses)
                / static_cast<double>(r.l2.misses());
    EXPECT_LT(comp, 0.30);
}

TEST(ProxyCalibration, ConclusionsAreSeedRobust)
{
    // The headline direction must not depend on the workload seed:
    // art gains substantially from LDIS for any seed.
    for (std::uint64_t seed : {1ull, 17ull, 98765ull}) {
        RunResult base = runTrace("art", ConfigKind::Baseline1MB,
                                  3'000'000, seed);
        RunResult ldis =
            runTrace("art", ConfigKind::LdisMTRC, 3'000'000, seed);
        EXPECT_GT(percentReduction(base.mpki, ldis.mpki), 15.0)
            << "seed " << seed;
    }
}

TEST(ProxyCalibration, MpkiIsSeedStable)
{
    // Different seeds sample the same stochastic process: baseline
    // MPKI varies by at most a few percent.
    double first = 0.0;
    for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
        RunResult r = runTrace("mcf", ConfigKind::Baseline1MB,
                               2'000'000, seed);
        if (first == 0.0)
            first = r.mpki;
        else
            EXPECT_NEAR(r.mpki, first, first * 0.05) << seed;
    }
}

} // namespace
} // namespace ldis
