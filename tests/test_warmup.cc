/** @file Tests for warmup / statistics-reset support. */

#include <gtest/gtest.h>

#include "cache/hierarchy.hh"
#include "cache/traditional_l2.hh"
#include "distill/distill_cache.hh"
#include "sim/experiment.hh"
#include "trace/benchmarks.hh"

namespace ldis
{
namespace
{

TEST(Warmup, ResetZerosCountersKeepsContents)
{
    CacheGeometry g;
    g.bytes = 4ull * 8 * kLineBytes;
    g.ways = 8;
    TraditionalL2 l2(g);
    l2.access(0, false, 0, false);
    l2.access(64, false, 0, false);
    ASSERT_EQ(l2.stats().accesses, 2u);

    l2.resetStats();
    EXPECT_EQ(l2.stats().accesses, 0u);
    EXPECT_EQ(l2.stats().misses(), 0u);
    // Contents survived: the warmed lines still hit.
    EXPECT_EQ(l2.access(0, false, 0, false).outcome,
              L2Outcome::LocHit);
    EXPECT_EQ(l2.stats().hits(), 1u);
}

TEST(Warmup, CompulsoryStatePersistsAcrossReset)
{
    CacheGeometry g;
    g.bytes = 1ull * 8 * kLineBytes;
    g.ways = 8;
    TraditionalL2 l2(g);
    l2.access(0, false, 0, false); // first touch of line 0
    l2.resetStats();
    // Evict line 0 and re-miss it: NOT compulsory (seen in warmup).
    for (unsigned i = 1; i <= 8; ++i)
        l2.access(i * kLineBytes, false, 0, false);
    l2.access(0, false, 0, false);
    const L2Stats &s = l2.stats();
    EXPECT_GT(s.lineMisses, 0u);
    EXPECT_EQ(s.compulsoryMisses, 8u); // only the 8 new lines
}

TEST(Warmup, DistillResetClearsExtraStats)
{
    DistillParams p;
    p.bytes = 2ull * 8 * kLineBytes;
    DistillCache dc(p);
    // Force a distillation.
    dc.access(0, false, 0, false);
    for (unsigned i = 1; i <= 6; ++i)
        dc.access(i * 2 * kLineBytes, false, 0, false);
    ASSERT_GT(dc.distillStats().wocInstalls, 0u);
    dc.resetStats();
    EXPECT_EQ(dc.distillStats().wocInstalls, 0u);
    EXPECT_EQ(dc.stats().accesses, 0u);
    // The WOC content survived the reset.
    EXPECT_TRUE(dc.wocOf(0).linePresent(0));
}

TEST(Warmup, WarmRunsShowLowerColdMissContribution)
{
    // A fitting working set: cold misses dominate an unwarmed short
    // run and vanish after warmup.
    auto wl_cold = makeBenchmark("apsi");
    L2Instance cold = makeConfig(ConfigKind::Baseline1MB);
    RunResult r_cold = runTrace(*wl_cold, *cold.cache, 2000000);

    auto wl_warm = makeBenchmark("apsi");
    L2Instance warm = makeConfig(ConfigKind::Baseline1MB);
    RunResult r_warm =
        runTraceWarm(*wl_warm, *warm.cache, 20000000, 2000000);

    EXPECT_LT(r_warm.mpki, r_cold.mpki);
    double comp_warm = r_warm.l2.misses() == 0
        ? 0.0
        : static_cast<double>(r_warm.l2.compulsoryMisses)
              / static_cast<double>(r_warm.l2.misses());
    EXPECT_LT(comp_warm, 0.5);
}

TEST(Warmup, MeasuredInstructionCountExcludesWarmup)
{
    auto wl = makeBenchmark("twolf");
    L2Instance l2 = makeConfig(ConfigKind::Baseline1MB);
    RunResult r = runTraceWarm(*wl, *l2.cache, 500000, 250000);
    EXPECT_GE(r.instructions, 250000u);
    EXPECT_LT(r.instructions, 400000u);
}

} // namespace
} // namespace ldis
