/**
 * @file
 * Runtime semantics of the annotated lock vocabulary in
 * common/thread_annotations.hh. The Clang static analysis itself is
 * exercised by the clang-thread-safety CI job (and the negative
 * fixtures under tests/thread_safety_fixtures/); these tests pin the
 * behaviour that must hold on every compiler, including GCC where
 * the annotation macros expand to nothing.
 */

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_annotations.hh"

namespace
{

using ldis::CondVar;
using ldis::Mutex;
using ldis::ScopedLock;

TEST(ThreadAnnotations, MutexTryLockReflectsOwnership)
{
    Mutex m;

    ASSERT_TRUE(m.try_lock());

    // A contender on another thread must fail while we hold it.
    // (try_lock on a thread that already owns a std::mutex is UB,
    // so the probe has to come from elsewhere.)
    bool contender_got_it = true;
    std::thread probe([&] { contender_got_it = m.try_lock(); });
    probe.join();
    EXPECT_FALSE(contender_got_it);

    m.unlock();

    std::thread probe2([&] {
        contender_got_it = m.try_lock();
        if (contender_got_it)
            m.unlock();
    });
    probe2.join();
    EXPECT_TRUE(contender_got_it);
}

TEST(ThreadAnnotations, AssertHeldIsARuntimeNoOp)
{
    Mutex m;
    // Must be callable whether or not the lock is held, on a const
    // object, with no observable effect: it exists purely to feed
    // the static analysis inside wait predicates.
    const Mutex &cm = m;
    cm.assertHeld();
    ScopedLock lock(m);
    cm.assertHeld();
}

TEST(ThreadAnnotations, ScopedLockAcquiresAndReleases)
{
    Mutex m;
    {
        ScopedLock lock(m);
        EXPECT_TRUE(lock.ownsLock());

        bool contender_got_it = true;
        std::thread probe([&] {
            contender_got_it = m.try_lock();
            if (contender_got_it)
                m.unlock();
        });
        probe.join();
        EXPECT_FALSE(contender_got_it);
    }

    // Destructor released: the mutex is free again.
    EXPECT_TRUE(m.try_lock());
    m.unlock();
}

TEST(ThreadAnnotations, ScopedLockManualUnlockRelock)
{
    Mutex m;
    ScopedLock lock(m);

    lock.unlock();
    EXPECT_FALSE(lock.ownsLock());

    // The wait-then-rethrow shape: the guard is released, another
    // thread can take the mutex.
    bool contender_got_it = false;
    std::thread probe([&] {
        contender_got_it = m.try_lock();
        if (contender_got_it)
            m.unlock();
    });
    probe.join();
    EXPECT_TRUE(contender_got_it);

    lock.lock();
    EXPECT_TRUE(lock.ownsLock());
    // Destructor must release exactly once despite the round trip.
}

TEST(ThreadAnnotations, ScopedLockDtorAfterManualUnlockIsIdempotent)
{
    Mutex m;
    {
        ScopedLock lock(m);
        lock.unlock();
        // Dtor runs with held == false: must not double-unlock.
    }
    EXPECT_TRUE(m.try_lock());
    m.unlock();
}

TEST(ThreadAnnotations, CondVarWaitObservesPredicate)
{
    Mutex m;
    CondVar cv;
    bool ready = false;
    int payload = 0;

    std::thread producer([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        ScopedLock lock(m);
        payload = 42;
        ready = true;
        cv.notify_one();
    });

    {
        ScopedLock lock(m);
        cv.wait(m, [&] {
            m.assertHeld();
            return ready;
        });
        EXPECT_EQ(payload, 42);
    }
    producer.join();
}

TEST(ThreadAnnotations, GuardedCounterIsRaceFreeUnderContention)
{
    // The shape every GUARDED_BY member in the tree relies on:
    // N threads hammering a counter through ScopedLock sections
    // must lose no increments (TSan-visible if Mutex were broken).
    Mutex m;
    std::uint64_t counter LDIS_GUARDED_BY(m) = 0;

    constexpr int kThreads = 4;
    constexpr int kIters = 10000;
    std::vector<std::thread> workers;
    workers.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        workers.emplace_back([&] {
            for (int i = 0; i < kIters; ++i) {
                ScopedLock lock(m);
                ++counter;
            }
        });
    }
    for (auto &w : workers)
        w.join();

    ScopedLock lock(m);
    EXPECT_EQ(counter, std::uint64_t{kThreads} * kIters);
}

TEST(ThreadAnnotations, CondVarNotifyAllWakesEveryWaiter)
{
    Mutex m;
    CondVar cv;
    bool go = false;
    std::atomic<int> awake{0};

    constexpr int kWaiters = 3;
    std::vector<std::thread> waiters;
    waiters.reserve(kWaiters);
    for (int t = 0; t < kWaiters; ++t) {
        waiters.emplace_back([&] {
            ScopedLock lock(m);
            cv.wait(m, [&] {
                m.assertHeld();
                return go;
            });
            awake.fetch_add(1, std::memory_order_relaxed);
        });
    }

    {
        ScopedLock lock(m);
        go = true;
        cv.notify_all();
    }
    for (auto &w : waiters)
        w.join();
    EXPECT_EQ(awake.load(), kWaiters);
}

TEST(ThreadAnnotations, MacrosAreTransparentOffClang)
{
    // The macro family must be usable in every position the tree
    // uses it — members, parameters-less function attributes, local
    // declarations — and change nothing at runtime. If a macro
    // failed to expand away on GCC this test would not compile.
    struct Annotated
    {
        Mutex m;
        int value LDIS_GUARDED_BY(m) = 7;
        int *ptr LDIS_PT_GUARDED_BY(m) = nullptr;

        int
        read() LDIS_EXCLUDES(m)
        {
            ScopedLock lock(m);
            return value;
        }

        int
        readLocked() LDIS_REQUIRES(m)
        {
            return value;
        }
    };

    Annotated a;
    EXPECT_EQ(a.read(), 7);
    {
        ScopedLock lock(a.m);
        EXPECT_EQ(a.readLocked(), 7);
    }
}

} // namespace
