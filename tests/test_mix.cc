/**
 * @file
 * The multi-programmed mode's correctness contract: the replay-side
 * composition of recorded solo streams is bit-identical to the
 * direct SharedHierarchy run (config by config, per-stream slice by
 * per-stream slice), the composed-stream gang walk is deterministic
 * across lane settings, per-stream attribution sums to the shared
 * cache's aggregate exactly, address-space tagging keeps streams
 * disjoint, and two copies of one benchmark under an ample shared
 * L2 each see (approximately) their solo behaviour.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "cache/shared_hierarchy.hh"
#include "common/workshare.hh"
#include "sim/mix.hh"
#include "sim/replay.hh"
#include "sim/runner.hh"
#include "trace/mix.hh"

namespace ldis
{
namespace
{

constexpr InstCount kMemberRun = 400'000;
constexpr InstCount kQuantum = 50'000;

void
expectSameL2(const L2Stats &a, const L2Stats &b)
{
    EXPECT_EQ(a.accesses, b.accesses);
    EXPECT_EQ(a.locHits, b.locHits);
    EXPECT_EQ(a.wocHits, b.wocHits);
    EXPECT_EQ(a.holeMisses, b.holeMisses);
    EXPECT_EQ(a.lineMisses, b.lineMisses);
    EXPECT_EQ(a.compulsoryMisses, b.compulsoryMisses);
    EXPECT_EQ(a.writebacks, b.writebacks);
    EXPECT_EQ(a.evictions, b.evictions);
}

void
expectSameMixRun(const RunResult &a, const RunResult &b)
{
    EXPECT_EQ(a.benchmark, b.benchmark);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.mpki, b.mpki);
    expectSameL2(a.l2, b.l2);
    EXPECT_EQ(a.l1d.accesses, b.l1d.accesses);
    EXPECT_EQ(a.l1d.hits, b.l1d.hits);
    EXPECT_EQ(a.l1d.sectorMisses, b.l1d.sectorMisses);
    EXPECT_EQ(a.l1d.lineMisses, b.l1d.lineMisses);
    EXPECT_EQ(a.l1i.accesses, b.l1i.accesses);
    EXPECT_EQ(a.l1i.misses, b.l1i.misses);
    ASSERT_EQ(a.streams.size(), b.streams.size());
    for (std::size_t s = 0; s < a.streams.size(); ++s) {
        EXPECT_EQ(a.streams[s].benchmark, b.streams[s].benchmark);
        EXPECT_EQ(a.streams[s].instructions,
                  b.streams[s].instructions);
        EXPECT_EQ(a.streams[s].mpki, b.streams[s].mpki);
        expectSameL2(a.streams[s].l2, b.streams[s].l2);
    }
}

/** Record the solo streams of @p spec's members (no warmup). */
std::vector<std::shared_ptr<const L2Stream>>
recordMembers(const MixSpec &spec, InstCount instructions)
{
    std::vector<std::shared_ptr<const L2Stream>> streams;
    for (const std::string &bench : spec.members) {
        auto workload = makeBenchmark(bench, 1);
        streams.push_back(std::make_shared<L2Stream>(
            recordStream(*workload, 1, 0, instructions)));
    }
    return streams;
}

/** Replay the composed stream of @p spec into a fresh @p kind L2. */
RunResult
replayMix(const MixSpec &spec, ConfigKind kind,
          InstCount instructions)
{
    auto streams = recordMembers(spec, instructions);
    auto merged = composeMixStream(spec.name, streams, kQuantum);
    L2Instance inst = makeConfig(kind, merged->values);
    StreamAttributingL2 shared(*inst.cache);
    RunResult r = replayStream(*merged, shared);
    std::vector<MixMemberInfo> members;
    for (const auto &s : streams)
        members.push_back({s->benchmark, s->meas.instructions});
    attachStreamStats(r, shared, members);
    r.config = configName(kind);
    return r;
}

TEST(Mix, TaggingKeepsStreamsDisjoint)
{
    EXPECT_EQ(mixStreamBase(0), 0u);
    for (std::size_t s = 0; s < kMaxMixStreams; ++s) {
        Addr base = mixStreamBase(s);
        EXPECT_EQ(mixStreamOfAddr(base), s);
        EXPECT_EQ(mixStreamOfAddr(base + 0xFFFFFFFFull), s);
        EXPECT_EQ(mixStreamOfLine(base / kLineBytes), s);
        // The tag must fit the physical address space.
        EXPECT_LT(base, Addr{1} << kPhysAddrBits);
    }

    // Solo proxies really do live below the first tag: every event
    // of a recorded stream (address, PC and victim line) unmaps to
    // stream 0.
    auto workload = makeBenchmark("twolf", 1);
    L2Stream stream = recordStream(*workload, 1, 0, 200'000);
    for (const StreamEvent &e : decodeEvents(stream)) {
        EXPECT_EQ(mixStreamOfAddr(e.addr), 0u);
        EXPECT_EQ(mixStreamOfAddr(e.pc), 0u);
    }
    for (const StreamVictim &v : decodeVictims(stream))
        EXPECT_EQ(mixStreamOfLine(v.line), 0u);
}

TEST(Mix, InterleaveIsRoundRobinByQuantum)
{
    // Each member's emitted accesses stay within its turn's
    // boundary: an access consumed while member s's boundary is
    // b arrives with position <= b, and positions within one
    // member only grow (stream order preserved).
    std::vector<MixWorkload::MemberSpec> specs = {
        {"art", 1, 150'000}, {"mcf", 1, 150'000}};
    MixWorkload mix(specs, 10'000);
    std::vector<InstCount> pos(2, 0);
    MixedAccess m;
    while (mix.next(m)) {
        ASSERT_LT(m.stream, 2u);
        EXPECT_EQ(mixStreamOfAddr(m.access.addr), m.stream);
        EXPECT_EQ(mixStreamOfAddr(m.access.pc), m.stream);
        pos[m.stream] += m.access.instructions();
    }
    EXPECT_GE(pos[0], specs[0].target);
    EXPECT_GE(pos[1], specs[1].target);
    EXPECT_EQ(mix.memberInstructions(0), pos[0]);
    EXPECT_EQ(mix.memberInstructions(1), pos[1]);
}

TEST(Mix, DirectMatchesReplayComposition)
{
    // The tentpole equivalence: replaying the composed stream is
    // bit-identical to the direct shared-L2 run — including for a
    // compression config, which exercises the blended-value-profile
    // path on both sides.
    MixSpec spec{"art+mcf", {"art", "mcf"}};
    for (ConfigKind kind :
         {ConfigKind::Baseline1MB, ConfigKind::LdisMTRC,
          ConfigKind::Cmpr4xTags}) {
        RunResult direct =
            runMixDirect(spec, kind, kMemberRun, 1, kQuantum);
        RunResult replayed = replayMix(spec, kind, kMemberRun);
        expectSameMixRun(direct, replayed);
    }
}

TEST(Mix, FourWayDirectMatchesReplay)
{
    MixSpec spec{"art+mcf+twolf+vpr",
                 {"art", "mcf", "twolf", "vpr"}};
    RunResult direct = runMixDirect(spec, ConfigKind::LdisMTRC,
                                    kMemberRun, 1, kQuantum);
    RunResult replayed =
        replayMix(spec, ConfigKind::LdisMTRC, kMemberRun);
    expectSameMixRun(direct, replayed);
}

TEST(Mix, AttributionSumsToAggregate)
{
    MixSpec spec{"art+mcf+twolf+vpr",
                 {"art", "mcf", "twolf", "vpr"}};
    RunResult r = runMixDirect(spec, ConfigKind::LdisMTRC,
                               kMemberRun, 1, kQuantum);
    ASSERT_EQ(r.streams.size(), 4u);
    L2Stats sum;
    InstCount inst = 0;
    for (const StreamStat &s : r.streams) {
        sum.accesses += s.l2.accesses;
        sum.locHits += s.l2.locHits;
        sum.wocHits += s.l2.wocHits;
        sum.holeMisses += s.l2.holeMisses;
        sum.lineMisses += s.l2.lineMisses;
        sum.compulsoryMisses += s.l2.compulsoryMisses;
        sum.writebacks += s.l2.writebacks;
        sum.evictions += s.l2.evictions;
        inst += s.instructions;
    }
    expectSameL2(sum, r.l2);
    EXPECT_EQ(inst, r.instructions);
}

TEST(Mix, GangWalkDeterministicAcrossLanes)
{
    // The composed stream through replayMany, serial vs four lane
    // workers with small chunks: bit-identical stats, like the solo
    // gang determinism contract.
    MixSpec spec{"twolf+vpr", {"twolf", "vpr"}};
    auto streams = recordMembers(spec, kMemberRun);
    auto merged = composeMixStream(spec.name, streams, kQuantum);

    const std::vector<ConfigKind> kinds = {
        ConfigKind::Baseline1MB, ConfigKind::LdisMTRC,
        ConfigKind::Sfp16k};

    auto run_with_lanes = [&](unsigned lanes) {
        std::vector<L2Instance> instances;
        std::vector<std::unique_ptr<StreamAttributingL2>> wraps;
        std::vector<SecondLevelCache *> caches;
        for (ConfigKind kind : kinds) {
            instances.push_back(makeConfig(kind, merged->values));
            wraps.push_back(std::make_unique<StreamAttributingL2>(
                *instances.back().cache));
            caches.push_back(wraps.back().get());
        }
        WorkerLeaseHub hub(16);
        GangParallel par;
        par.hub = &hub;
        par.lanes = lanes;
        par.chunkEvents = 4096;
        std::vector<RunResult> rs =
            replayMany(*merged, caches, nullptr, par);
        std::vector<MixMemberInfo> members;
        for (const auto &s : streams)
            members.push_back({s->benchmark, s->meas.instructions});
        for (std::size_t k = 0; k < rs.size(); ++k)
            attachStreamStats(rs[k], *wraps[k], members);
        return rs;
    };

    std::vector<RunResult> serial = run_with_lanes(1);
    std::vector<RunResult> wide = run_with_lanes(4);
    ASSERT_EQ(serial.size(), wide.size());
    for (std::size_t k = 0; k < serial.size(); ++k)
        expectSameMixRun(serial[k], wide[k]);
}

TEST(Mix, MatrixSchedulingDeterministicAcrossWorkers)
{
    // addMixGroup behind multi-dep scheduling: one worker vs four
    // produce bit-identical slots (solo groups sharing the member
    // recordings ride along).
    auto run_matrix = [](unsigned workers) {
        RunMatrix matrix(workers);
        const std::vector<ConfigKind> kinds = {
            ConfigKind::Baseline1MB, ConfigKind::LdisMTRC};
        MixSpec spec{"art+mcf", {"art", "mcf"}};
        matrix.addReplayGroup("art", kinds, kMemberRun);
        matrix.addMixGroup(spec, kinds, kMemberRun, 1, kQuantum);
        return matrix.run();
    };
    std::vector<RunResult> serial = run_matrix(1);
    std::vector<RunResult> parallel = run_matrix(4);
    ASSERT_EQ(serial.size(), 4u);
    ASSERT_EQ(parallel.size(), 4u);
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i].mpki, parallel[i].mpki);
        expectSameL2(serial[i].l2, parallel[i].l2);
        ASSERT_EQ(serial[i].streams.size(),
                  parallel[i].streams.size());
        for (std::size_t s = 0; s < serial[i].streams.size(); ++s)
            expectSameL2(serial[i].streams[s].l2,
                         parallel[i].streams[s].l2);
    }
    // The mix cells really carry per-stream slices.
    EXPECT_EQ(serial[2].streams.size(), 2u);
    EXPECT_EQ(serial[3].streams.size(), 2u);
}

TEST(Mix, TwoCopiesSeeSoloBehaviour)
{
    // Self-contention sanity: two copies of parser (working set
    // well under half of 4MB) sharing a TRAD-4MB L2. By symmetry
    // the copies' slices agree closely, and each tracks the solo
    // run's MPKI under the same cache.
    MixSpec spec{"parser+parser", {"parser", "parser"}};
    RunResult mix = runMixDirect(spec, ConfigKind::Trad4MB,
                                 kMemberRun, 1, kQuantum);
    ASSERT_EQ(mix.streams.size(), 2u);
    RunResult solo =
        runTrace("parser", ConfigKind::Trad4MB, kMemberRun);

    double m0 = mix.streams[0].mpki;
    double m1 = mix.streams[1].mpki;
    ASSERT_GT(solo.mpki, 0.0);
    EXPECT_NEAR(m0, m1, 0.05 * std::max(m0, m1) + 0.01);
    EXPECT_NEAR(m0, solo.mpki, 0.2 * solo.mpki + 0.01);
    EXPECT_NEAR(m1, solo.mpki, 0.2 * solo.mpki + 0.01);
}

TEST(Mix, MetricsFinalizeFromSoloFigures)
{
    RunResult r;
    r.streams.resize(2);
    r.streams[0].mpki = 10.0;
    r.streams[1].mpki = 5.0;
    finalizeMixMetrics(r, {8.0, 5.0});
    // Stream 0 slowed down (solo 8 -> mix 10), stream 1 unchanged.
    double s0 = cpiProxy(8.0) / cpiProxy(10.0);
    double s1 = 1.0;
    EXPECT_DOUBLE_EQ(r.streams[0].soloMpki, 8.0);
    EXPECT_DOUBLE_EQ(r.weightedSpeedup, s0 + s1);
    EXPECT_DOUBLE_EQ(r.fairness, s0 / s1);
    EXPECT_LT(r.fairness, 1.0);
}

TEST(Mix, BlendedProfileIsTargetWeightedMean)
{
    ValueProfile a{0.4, 0.2, 0.1};
    ValueProfile b{0.1, 0.05, 0.4};
    ValueProfile blend = blendValueProfiles({a, b}, {100, 300});
    EXPECT_DOUBLE_EQ(blend.pZero, 0.25 * 0.4 + 0.75 * 0.1);
    EXPECT_DOUBLE_EQ(blend.pOne, 0.25 * 0.2 + 0.75 * 0.05);
    EXPECT_DOUBLE_EQ(blend.pNarrow, 0.25 * 0.1 + 0.75 * 0.4);
}

} // namespace
} // namespace ldis
