/** @file Unit tests for the data-value synthesis model. */

#include <gtest/gtest.h>

#include "trace/value_model.hh"

namespace ldis
{
namespace
{

TEST(ValueModel, Deterministic)
{
    ValueModel a({0.2, 0.1, 0.3}, 5);
    ValueModel b({0.2, 0.1, 0.3}, 5);
    for (LineAddr line = 0; line < 64; ++line)
        for (unsigned dw = 0; dw < kDwordsPerLine; ++dw)
            EXPECT_EQ(a.dword(line, dw), b.dword(line, dw));
}

TEST(ValueModel, DifferentSeedsDiffer)
{
    ValueModel a({0.2, 0.1, 0.3}, 5);
    ValueModel b({0.2, 0.1, 0.3}, 6);
    int same = 0;
    for (LineAddr line = 0; line < 64; ++line)
        for (unsigned dw = 0; dw < kDwordsPerLine; ++dw)
            if (a.dword(line, dw) == b.dword(line, dw))
                ++same;
    EXPECT_LT(same, 64 * 16 / 2);
}

TEST(ValueModel, MixtureProportionsRespectProfile)
{
    ValueProfile prof{0.4, 0.1, 0.2};
    ValueModel m(prof, 1);
    int zeros = 0, ones = 0, narrow = 0, full = 0;
    const int lines = 4096;
    for (LineAddr line = 0; line < lines; ++line) {
        for (unsigned dw = 0; dw < kDwordsPerLine; ++dw) {
            std::uint32_t v = m.dword(line, dw);
            if (v == 0)
                ++zeros;
            else if (v == 1)
                ++ones;
            else if ((v >> 16) == 0)
                ++narrow;
            else
                ++full;
        }
    }
    const double n = lines * kDwordsPerLine;
    EXPECT_NEAR(zeros / n, 0.4, 0.02);
    EXPECT_NEAR(ones / n, 0.1, 0.02);
    EXPECT_NEAR(narrow / n, 0.2, 0.02);
    EXPECT_NEAR(full / n, 0.3, 0.02);
}

TEST(ValueModel, NarrowValuesNeverCollideWithZeroOne)
{
    // The narrow class must stay distinguishable so the encoder's
    // class fractions match the profile.
    ValueModel m({0.0, 0.0, 1.0}, 3);
    for (LineAddr line = 0; line < 256; ++line) {
        for (unsigned dw = 0; dw < kDwordsPerLine; ++dw) {
            std::uint32_t v = m.dword(line, dw);
            EXPECT_GT(v, 1u);
            EXPECT_EQ(v >> 16, 0u);
        }
    }
}

TEST(ValueModel, IncompressibleValuesAreWide)
{
    ValueModel m({0.0, 0.0, 0.0}, 3);
    for (LineAddr line = 0; line < 256; ++line)
        for (unsigned dw = 0; dw < kDwordsPerLine; ++dw)
            EXPECT_NE(m.dword(line, dw) >> 16, 0u);
}

TEST(ValueModelDeath, OverfullProfileIsFatal)
{
    EXPECT_EXIT(ValueModel({0.6, 0.3, 0.3}, 1),
                testing::ExitedWithCode(1), "profile");
}

} // namespace
} // namespace ldis
