/** @file Unit tests for composite workloads and benchmark proxies. */

#include <map>
#include <set>

#include <gtest/gtest.h>

#include "trace/benchmarks.hh"
#include "trace/composite.hh"

namespace ldis
{
namespace
{

CompositeWorkload
makeTwoRegion()
{
    RegionParams r1;
    r1.bytes = 64 * kLineBytes;
    r1.pattern = Pattern::Sequential;
    r1.wordSel = WordSel::Full;
    r1.weight = 3.0;
    RegionParams r2;
    r2.bytes = 64 * kLineBytes;
    r2.pattern = Pattern::RandomLine;
    r2.wordSel = WordSel::Single;
    r2.weight = 1.0;
    return CompositeWorkload("test", {r1, r2}, CodeModel{},
                             ValueProfile{}, 42);
}

TEST(CompositeWorkload, RegionsAreDisjoint)
{
    CompositeWorkload wl = makeTwoRegion();
    ASSERT_EQ(wl.numRegions(), 2u);
    LineAddr b0 = wl.regionBase(0);
    LineAddr b1 = wl.regionBase(1);
    EXPECT_GE(b1, b0 + 64); // second region starts past the first
}

TEST(CompositeWorkload, WeightsSteerVisitShares)
{
    CompositeWorkload wl = makeTwoRegion();
    LineAddr b1 = wl.regionBase(1);
    std::uint64_t r1_accesses = 0, r2_accesses = 0;
    for (int i = 0; i < 200000; ++i) {
        Access a = wl.next();
        if (lineAddrOf(a.addr) >= b1)
            ++r2_accesses;
        else
            ++r1_accesses;
    }
    // Region 1 emits 8-access bursts at 3x weight; region 2 emits
    // 1-access bursts at 1x: expected access ratio 24:1.
    double ratio = static_cast<double>(r1_accesses)
                 / static_cast<double>(r2_accesses);
    EXPECT_NEAR(ratio, 24.0, 6.0);
}

TEST(CompositeWorkload, ResetReproducesStream)
{
    CompositeWorkload wl = makeTwoRegion();
    std::vector<Addr> first;
    for (int i = 0; i < 1000; ++i)
        first.push_back(wl.next().addr);
    wl.reset();
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(wl.next().addr, first[i]);
}

TEST(CompositeWorkload, SameSeedSameStream)
{
    CompositeWorkload a = makeTwoRegion();
    CompositeWorkload b = makeTwoRegion();
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next().addr, b.next().addr);
}

TEST(Benchmarks, CatalogueHasAllPaperBenchmarks)
{
    auto studied = studiedBenchmarks();
    EXPECT_EQ(studied.size(), 16u);
    const char *expected[] = {"art", "mcf", "twolf", "vpr", "ammp",
                              "galgel", "bzip2", "facerec", "parser",
                              "sixtrack", "apsi", "swim", "vortex",
                              "gcc", "wupwise", "health"};
    for (const char *name : expected) {
        EXPECT_NE(std::find(studied.begin(), studied.end(), name),
                  studied.end())
            << name;
    }
    EXPECT_EQ(insensitiveBenchmarks().size(), 11u);
}

TEST(Benchmarks, FactoryProducesWorkingStreams)
{
    for (const std::string &name : studiedBenchmarks()) {
        auto wl = makeBenchmark(name);
        ASSERT_NE(wl, nullptr) << name;
        EXPECT_EQ(wl->name(), name);
        for (int i = 0; i < 100; ++i) {
            Access a = wl->next();
            EXPECT_GT(a.addr, 0u) << name;
        }
    }
}

TEST(Benchmarks, InfoLookupMatchesCatalogue)
{
    const BenchmarkInfo &info = benchmarkInfo("mcf");
    EXPECT_DOUBLE_EQ(info.paperMpki, 136.0);
    EXPECT_FALSE(info.insensitive);
    const BenchmarkInfo &eq = benchmarkInfo("equake");
    EXPECT_TRUE(eq.insensitive);
}

TEST(Benchmarks, PaperReferenceNumbersPresent)
{
    for (const auto &info : benchmarkTable()) {
        EXPECT_GT(info.paperMpki, 0.0) << info.name;
        if (!info.insensitive)
            EXPECT_GT(info.paperWords1MB, 0.0) << info.name;
    }
}

TEST(Benchmarks, DistinctSeedsGiveDistinctStreams)
{
    auto a = makeBenchmark("twolf", 1);
    auto b = makeBenchmark("twolf", 2);
    int same = 0;
    for (int i = 0; i < 1000; ++i)
        if (a->next().addr == b->next().addr)
            ++same;
    EXPECT_LT(same, 500);
}

TEST(BenchmarksDeath, UnknownNameIsFatal)
{
    EXPECT_EXIT(makeBenchmark("no-such-benchmark"),
                testing::ExitedWithCode(1), "unknown benchmark");
    EXPECT_EXIT(benchmarkInfo("no-such-benchmark"),
                testing::ExitedWithCode(1), "unknown benchmark");
}

} // namespace
} // namespace ldis
