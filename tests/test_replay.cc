/**
 * @file
 * The generate-once replay engine's correctness contract: replaying
 * a recorded L2 stream into any configuration reproduces the direct
 * simulation's statistics bit-for-bit, and the on-disk stream cache
 * round-trips, rejects corruption, and regenerates transparently.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <sys/stat.h>
#include <vector>

#include "cache/l2_interface.hh"
#include "common/workshare.hh"
#include "sim/replay.hh"
#include "trace/benchmarks.hh"
#include "trace/trace_file.hh"

namespace ldis
{
namespace
{

constexpr InstCount kRun = 2'000'000;

/** Every counter and derived figure, exactly. */
void
expectSameRun(const RunResult &direct, const RunResult &replayed)
{
    EXPECT_EQ(direct.benchmark, replayed.benchmark);
    EXPECT_EQ(direct.config, replayed.config);
    EXPECT_EQ(direct.instructions, replayed.instructions);
    EXPECT_EQ(direct.mpki, replayed.mpki);
    EXPECT_EQ(direct.l2.accesses, replayed.l2.accesses);
    EXPECT_EQ(direct.l2.locHits, replayed.l2.locHits);
    EXPECT_EQ(direct.l2.wocHits, replayed.l2.wocHits);
    EXPECT_EQ(direct.l2.holeMisses, replayed.l2.holeMisses);
    EXPECT_EQ(direct.l2.lineMisses, replayed.l2.lineMisses);
    EXPECT_EQ(direct.l2.compulsoryMisses,
              replayed.l2.compulsoryMisses);
    EXPECT_EQ(direct.l2.writebacks, replayed.l2.writebacks);
    EXPECT_EQ(direct.l2.evictions, replayed.l2.evictions);
    EXPECT_EQ(direct.l1d.accesses, replayed.l1d.accesses);
    EXPECT_EQ(direct.l1d.hits, replayed.l1d.hits);
    EXPECT_EQ(direct.l1d.sectorMisses, replayed.l1d.sectorMisses);
    EXPECT_EQ(direct.l1d.lineMisses, replayed.l1d.lineMisses);
    EXPECT_EQ(direct.l1i.accesses, replayed.l1i.accesses);
    EXPECT_EQ(direct.l1i.misses, replayed.l1i.misses);
}

std::string
tempPath(const std::string &file)
{
    std::string dir = ::testing::TempDir() + "ldis_replay_test";
    ::mkdir(dir.c_str(), 0755);
    return dir + "/" + file;
}

/** XOR one byte of @p path at @p offset. */
void
flipByte(const std::string &path, long offset)
{
    std::FILE *f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fseek(f, offset, SEEK_SET), 0);
    int c = std::fgetc(f);
    ASSERT_NE(c, EOF);
    ASSERT_EQ(std::fseek(f, offset, SEEK_SET), 0);
    std::fputc(c ^ 0xFF, f);
    std::fclose(f);
}

long
fileSize(const std::string &path)
{
    struct stat st{};
    EXPECT_EQ(::stat(path.c_str(), &st), 0);
    return static_cast<long>(st.st_size);
}

TEST(Replay, BitIdenticalAcrossConfigGrid)
{
    const std::vector<std::string> benchmarks = {"art", "mcf",
                                                 "health"};
    const std::vector<ConfigKind> kinds = {
        ConfigKind::Baseline1MB, ConfigKind::Trad1MB32B,
        ConfigKind::LdisMTRC,    ConfigKind::Cmpr4xTags,
        ConfigKind::Sfp16k,
    };

    for (const auto &bench : benchmarks) {
        auto workload = makeBenchmark(bench, 1);
        L2Stream stream = recordStream(*workload, 1, 0, kRun);
        for (ConfigKind kind : kinds) {
            SCOPED_TRACE(bench + "/" + configName(kind));
            RunResult direct = runTrace(bench, kind, kRun);
            L2Instance l2 = makeConfig(kind, stream.values);
            RunResult replayed = replayStream(stream, *l2.cache);
            replayed.config = configName(kind);
            expectSameRun(direct, replayed);
        }
    }
}

TEST(Replay, BitIdenticalWithWarmup)
{
    constexpr InstCount kWarm = 500'000;
    auto workload = makeBenchmark("art", 1);
    L2Stream stream = recordStream(*workload, 1, kWarm, kRun);
    for (ConfigKind kind :
         {ConfigKind::Baseline1MB, ConfigKind::LdisMTRC}) {
        SCOPED_TRACE(configName(kind));
        auto direct_wl = makeBenchmark("art", 1);
        L2Instance direct_l2 =
            makeConfig(kind, direct_wl->valueProfile());
        RunResult direct =
            runTraceWarm(*direct_wl, *direct_l2.cache, kWarm, kRun);
        L2Instance l2 = makeConfig(kind, stream.values);
        RunResult replayed = replayStream(stream, *l2.cache);
        expectSameRun(direct, replayed);
    }
}

TEST(Replay, RunReplayMatchesRunTrace)
{
    ::unsetenv("LDIS_TRACE_CACHE");
    RunResult direct =
        runTrace("twolf", ConfigKind::LdisMTRC, kRun);
    RunResult replayed =
        runReplay("twolf", ConfigKind::LdisMTRC, kRun);
    expectSameRun(direct, replayed);
}

TEST(Replay, DiskCacheRoundTrips)
{
    auto workload = makeBenchmark("art", 1);
    L2Stream stream = recordStream(*workload, 1, 100'000, kRun);
    std::string path = tempPath("roundtrip.l2s");
    ASSERT_TRUE(writeL2Stream(path, stream));

    L2Stream loaded;
    ASSERT_TRUE(readL2Stream(path, loaded));
    EXPECT_EQ(loaded.benchmark, stream.benchmark);
    EXPECT_EQ(loaded.seed, stream.seed);
    EXPECT_EQ(loaded.warmupInstructions, stream.warmupInstructions);
    EXPECT_EQ(loaded.instructions, stream.instructions);
    EXPECT_EQ(loaded.frontEndKey, stream.frontEndKey);
    EXPECT_EQ(loaded.code.codeBytes, stream.code.codeBytes);
    EXPECT_EQ(loaded.code.avgRunInstrs, stream.code.avgRunInstrs);
    EXPECT_EQ(loaded.values.pZero, stream.values.pZero);
    EXPECT_EQ(loaded.values.pOne, stream.values.pOne);
    EXPECT_EQ(loaded.values.pNarrow, stream.values.pNarrow);
    EXPECT_EQ(loaded.meas.instructions, stream.meas.instructions);
    EXPECT_EQ(loaded.meas.l1dAccesses, stream.meas.l1dAccesses);
    EXPECT_EQ(loaded.totalLineMisses, stream.totalLineMisses);
    EXPECT_EQ(loaded.markerEvents, stream.markerEvents);
    EXPECT_EQ(loaded.markerVictims, stream.markerVictims);
    // The packed byte streams round-trip verbatim.
    EXPECT_EQ(loaded.victimCount, stream.victimCount);
    EXPECT_EQ(loaded.heads, stream.heads);
    EXPECT_EQ(loaded.instrBytes, stream.instrBytes);
    EXPECT_EQ(loaded.addrBytes, stream.addrBytes);
    EXPECT_EQ(loaded.pcBytes, stream.pcBytes);
    EXPECT_EQ(loaded.victimBytes, stream.victimBytes);

    // And the loaded stream drives a replay to the same numbers.
    L2Instance a = makeConfig(ConfigKind::LdisMTRC, stream.values);
    L2Instance b = makeConfig(ConfigKind::LdisMTRC, loaded.values);
    expectSameRun(replayStream(stream, *a.cache),
                  replayStream(loaded, *b.cache));
}

/**
 * The gang walk is the solo walk run N-wide: replayMany over every
 * configuration kind (including the reverter's set-dueling and the
 * compression models) must equal per-config replayStream bit for
 * bit, and the walk info must describe the shared decode.
 */
TEST(Replay, GangMatchesSoloAcrossAllConfigs)
{
    const std::vector<ConfigKind> kinds = {
        ConfigKind::Baseline1MB, ConfigKind::Trad1_5MB,
        ConfigKind::Trad2MB,     ConfigKind::Trad4MB,
        ConfigKind::Trad1MB32B,  ConfigKind::LdisBase,
        ConfigKind::LdisMT,      ConfigKind::LdisMTRC,
        ConfigKind::Ldis4xTags,  ConfigKind::Cmpr4xTags,
        ConfigKind::Fac4xTags,   ConfigKind::Sfp16k,
        ConfigKind::Sfp64k,
    };
    auto workload = makeBenchmark("mcf", 1);
    L2Stream stream = recordStream(*workload, 1, 250'000, kRun);

    std::vector<L2Instance> gang;
    std::vector<SecondLevelCache *> caches;
    for (ConfigKind kind : kinds) {
        gang.push_back(makeConfig(kind, stream.values));
        caches.push_back(gang.back().cache.get());
    }
    GangReplayInfo info;
    std::vector<RunResult> ganged =
        replayMany(stream, caches, &info);
    ASSERT_EQ(ganged.size(), kinds.size());
    EXPECT_EQ(info.configs, kinds.size());
    EXPECT_EQ(info.events, stream.numEvents());
    EXPECT_EQ(info.streamBytes, stream.packedBytes());

    for (std::size_t i = 0; i < kinds.size(); ++i) {
        SCOPED_TRACE(configName(kinds[i]));
        L2Instance solo = makeConfig(kinds[i], stream.values);
        RunResult expected = replayStream(stream, *solo.cache);
        expectSameRun(expected, ganged[i]);
    }
}

/** A gang of one is just a solo replay. */
TEST(Replay, GangOfOneMatchesSolo)
{
    auto workload = makeBenchmark("art", 1);
    L2Stream stream = recordStream(*workload, 1, 0, 500'000);
    L2Instance one = makeConfig(ConfigKind::LdisMTRC, stream.values);
    std::vector<RunResult> ganged =
        replayMany(stream, {one.cache.get()});
    ASSERT_EQ(ganged.size(), 1u);
    L2Instance solo =
        makeConfig(ConfigKind::LdisMTRC, stream.values);
    expectSameRun(replayStream(stream, *solo.cache), ganged[0]);
}

/**
 * The tentpole contract: lane-parallel, decode-pipelined walks are
 * bit-identical to the solo replay for every lane count — fewer
 * helpers than lanes, an exact split, an odd split, and far more
 * lanes than configs. A tiny chunk size forces many chunks through
 * the double-buffered pipeline (including the warmup-reset chunk).
 */
TEST(Replay, LaneGridMatchesSoloAcrossChunks)
{
    const std::vector<ConfigKind> kinds = {
        ConfigKind::Baseline1MB,
        ConfigKind::LdisMTRC,
        ConfigKind::Fac4xTags,
    };
    auto workload = makeBenchmark("art", 1);
    L2Stream stream = recordStream(*workload, 1, 50'000, 500'000);

    std::vector<RunResult> expected;
    for (ConfigKind kind : kinds) {
        L2Instance solo = makeConfig(kind, stream.values);
        expected.push_back(replayStream(stream, *solo.cache));
    }

    for (unsigned lanes : {1u, 2u, 3u, 5u, 32u}) {
        SCOPED_TRACE("lanes=" + std::to_string(lanes));
        std::vector<L2Instance> gang;
        std::vector<SecondLevelCache *> caches;
        for (ConfigKind kind : kinds) {
            gang.push_back(makeConfig(kind, stream.values));
            caches.push_back(gang.back().cache.get());
        }
        WorkerLeaseHub hub(16);
        GangReplayInfo info;
        GangParallel par;
        par.hub = &hub;
        par.lanes = lanes;
        par.chunkEvents = 4096;
        std::vector<RunResult> ganged =
            replayMany(stream, caches, &info, par);
        ASSERT_EQ(ganged.size(), kinds.size());
        for (std::size_t i = 0; i < kinds.size(); ++i) {
            SCOPED_TRACE(configName(kinds[i]));
            expectSameRun(expected[i], ganged[i]);
        }
        // All leased helpers were returned by the time the walk
        // finished, and the telemetry block is populated.
        EXPECT_EQ(hub.activeHelpers(), 0u);
        EXPECT_GE(info.laneWorkers, 1u);
        EXPECT_LE(info.laneWorkers, lanes);
        EXPECT_EQ(info.laneWallSeconds.size(), kinds.size());
        EXPECT_GT(info.replayWallSeconds, 0.0);
    }
}

/** An L2 stub that fails partway through the replay. */
class ThrowingL2 : public SecondLevelCache
{
  public:
    explicit ThrowingL2(std::uint64_t throw_after)
        : throwAfter(throw_after)
    {}

    L2Result
    access(Addr, bool, Addr, bool) override
    {
        if (++counters.accesses >= throwAfter)
            throw std::runtime_error("injected lane failure");
        return L2Result{};
    }

    void l1dEviction(LineAddr, Footprint, Footprint) override {}
    const L2Stats &stats() const override { return counters; }
    void resetStats() override { counters = L2Stats{}; }
    std::string describe() const override { return "throwing"; }

  private:
    std::uint64_t throwAfter;
    L2Stats counters;
};

/**
 * A lane throwing mid-chunk aborts the whole walk cleanly: the
 * producer stops decoding, replayMany() rethrows the lane's error,
 * and no leased helper is left running (so the hub can be reused).
 */
TEST(Replay, ThrowingLaneSurfacesErrorWithoutLeakingLeases)
{
    auto workload = makeBenchmark("art", 1);
    L2Stream stream = recordStream(*workload, 1, 0, 300'000);

    L2Instance good = makeConfig(ConfigKind::Baseline1MB,
                                 stream.values);
    ThrowingL2 bad(100);
    L2Instance good2 = makeConfig(ConfigKind::LdisMTRC,
                                  stream.values);

    WorkerLeaseHub hub(8);
    GangParallel par;
    par.hub = &hub;
    par.lanes = 3;
    par.chunkEvents = 4096;
    EXPECT_THROW(replayMany(stream,
                            {good.cache.get(), &bad,
                             good2.cache.get()},
                            nullptr, par),
                 std::runtime_error);
    EXPECT_EQ(hub.activeHelpers(), 0u);

    // The hub survives for the next walk.
    L2Instance retry = makeConfig(ConfigKind::Baseline1MB,
                                  stream.values);
    std::vector<RunResult> ganged =
        replayMany(stream, {retry.cache.get()}, nullptr, par);
    L2Instance solo = makeConfig(ConfigKind::Baseline1MB,
                                 stream.values);
    expectSameRun(replayStream(stream, *solo.cache), ganged[0]);
}

/**
 * Streams written in the legacy LDS1 layout still load: the reader
 * transcodes to the packed in-memory form, which re-encodes to the
 * exact bytes the LDS2 writer would have produced.
 */
TEST(Replay, Lds1FilesStillLoad)
{
    auto workload = makeBenchmark("art", 1);
    L2Stream stream = recordStream(*workload, 1, 100'000, kRun);
    std::string path = tempPath("legacy.l2s");
    ASSERT_TRUE(writeL2StreamV1(path, stream));

    L2Stream loaded;
    ASSERT_TRUE(readL2Stream(path, loaded));
    EXPECT_EQ(loaded.benchmark, stream.benchmark);
    EXPECT_EQ(loaded.markerEvents, stream.markerEvents);
    EXPECT_EQ(loaded.markerVictims, stream.markerVictims);
    EXPECT_EQ(loaded.totalLineMisses, stream.totalLineMisses);
    EXPECT_EQ(loaded.victimCount, stream.victimCount);
    EXPECT_EQ(loaded.heads, stream.heads);
    EXPECT_EQ(loaded.instrBytes, stream.instrBytes);
    EXPECT_EQ(loaded.addrBytes, stream.addrBytes);
    EXPECT_EQ(loaded.pcBytes, stream.pcBytes);
    EXPECT_EQ(loaded.victimBytes, stream.victimBytes);

    // And it drives a replay to the same numbers.
    L2Instance a = makeConfig(ConfigKind::LdisMTRC, stream.values);
    L2Instance b = makeConfig(ConfigKind::LdisMTRC, loaded.values);
    expectSameRun(replayStream(stream, *a.cache),
                  replayStream(loaded, *b.cache));

    // The packed LDS2 encoding is measurably smaller than LDS1.
    std::string v2path = tempPath("packed.l2s");
    ASSERT_TRUE(writeL2Stream(v2path, stream));
    EXPECT_LT(fileSize(v2path), fileSize(path));
}

/**
 * LDS2 declares its array sizes up front and they must account for
 * the rest of the file exactly — trailing garbage and mid-array
 * truncation are both rejected before any allocation happens.
 */
TEST(Replay, Lds2RejectsSizeMismatch)
{
    auto workload = makeBenchmark("vpr", 1);
    L2Stream stream = recordStream(*workload, 1, 0, 200'000);
    std::string path = tempPath("sizecheck.l2s");
    ASSERT_TRUE(writeL2Stream(path, stream));
    long size = fileSize(path);
    L2Stream out;

    // Trailing garbage byte.
    {
        std::FILE *f = std::fopen(path.c_str(), "ab");
        ASSERT_NE(f, nullptr);
        std::fputc(0x5A, f);
        std::fclose(f);
    }
    EXPECT_FALSE(readL2Stream(path, out));
    ASSERT_EQ(::truncate(path.c_str(), size), 0);
    ASSERT_TRUE(readL2Stream(path, out));

    // Truncating into the bulk arrays.
    ASSERT_EQ(::truncate(path.c_str(), size / 2), 0);
    EXPECT_FALSE(readL2Stream(path, out));
}

/**
 * The stream-cache filename is keyed on the on-disk format version,
 * so upgrading the format can never serve a stale older-format file
 * under the new code (it simply records a fresh stream).
 */
TEST(Replay, CachePathEncodesFormatVersion)
{
    std::string dir = ::testing::TempDir() + "ldis_replay_ver";
    ::mkdir(dir.c_str(), 0755);
    ASSERT_EQ(::setenv("LDIS_TRACE_CACHE", dir.c_str(), 1), 0);
    std::string path = streamCachePath("art", 1, 0, 100'000);
    ASSERT_EQ(::unsetenv("LDIS_TRACE_CACHE"), 0);
    ASSERT_FALSE(path.empty());
    std::string suffix =
        ".v" + std::to_string(kStreamFormatVersion) + ".l2s";
    ASSERT_GE(path.size(), suffix.size());
    EXPECT_EQ(path.substr(path.size() - suffix.size()), suffix);
}

TEST(Replay, DiskCacheRejectsCorruption)
{
    auto workload = makeBenchmark("vpr", 1);
    L2Stream stream = recordStream(*workload, 1, 0, 200'000);
    std::string path = tempPath("corrupt.l2s");
    ASSERT_TRUE(writeL2Stream(path, stream));
    L2Stream out;

    // Missing file: quiet failure.
    EXPECT_FALSE(readL2Stream(tempPath("nonexistent.l2s"), out));

    // A flipped payload byte breaks the checksum.
    flipByte(path, fileSize(path) / 2);
    EXPECT_FALSE(readL2Stream(path, out));
    flipByte(path, fileSize(path) / 2); // restore
    ASSERT_TRUE(readL2Stream(path, out));

    // Version mismatch (byte 4 is the low byte of the u32 version).
    flipByte(path, 4);
    EXPECT_FALSE(readL2Stream(path, out));
    flipByte(path, 4);

    // Bad magic.
    flipByte(path, 0);
    EXPECT_FALSE(readL2Stream(path, out));
    flipByte(path, 0);

    // Truncation.
    ASSERT_EQ(::truncate(path.c_str(), fileSize(path) - 16), 0);
    EXPECT_FALSE(readL2Stream(path, out));
}

TEST(Replay, TraceCacheEnvRegeneratesCorruptFiles)
{
    std::string dir = ::testing::TempDir() + "ldis_replay_env";
    ::mkdir(dir.c_str(), 0755);
    ASSERT_EQ(::setenv("LDIS_TRACE_CACHE", dir.c_str(), 1), 0);

    auto first = loadOrRecordStream("gcc", 1, 0, 200'000);
    std::string path = streamCachePath("gcc", 1, 0, 200'000);
    ASSERT_FALSE(path.empty());
    EXPECT_GT(fileSize(path), 0);

    // Second lookup is served from disk and matches exactly.
    auto second = loadOrRecordStream("gcc", 1, 0, 200'000);
    ASSERT_EQ(second->numEvents(), first->numEvents());
    EXPECT_EQ(second->meas.l1dAccesses, first->meas.l1dAccesses);
    EXPECT_EQ(second->frontEndKey, first->frontEndKey);

    // Corrupt the cached file: the loader regenerates (and the
    // regenerated stream matches the original recording).
    flipByte(path, fileSize(path) / 2);
    auto third = loadOrRecordStream("gcc", 1, 0, 200'000);
    ASSERT_EQ(third->numEvents(), first->numEvents());
    EXPECT_EQ(third->meas.l1dAccesses, first->meas.l1dAccesses);
    ASSERT_EQ(::unsetenv("LDIS_TRACE_CACHE"), 0);

    // Without the env var there is no cache path.
    EXPECT_TRUE(streamCachePath("gcc", 1, 0, 200'000).empty());
}

TEST(Replay, FrontEndKeyTracksGeometry)
{
    HierarchyParams base;
    HierarchyParams bigger_l1d = base;
    bigger_l1d.l1d.bytes *= 2;
    HierarchyParams no_iside = base;
    no_iside.modelInstructionSide = false;
    EXPECT_NE(frontEndParamsKey(base),
              frontEndParamsKey(bigger_l1d));
    EXPECT_NE(frontEndParamsKey(base),
              frontEndParamsKey(no_iside));
    EXPECT_EQ(frontEndParamsKey(base),
              frontEndParamsKey(HierarchyParams{}));
}

TEST(Replay, EnabledUnlessEnvZero)
{
    ASSERT_EQ(::setenv("LDIS_REPLAY", "0", 1), 0);
    EXPECT_FALSE(replayEnabled());
    ASSERT_EQ(::setenv("LDIS_REPLAY", "1", 1), 0);
    EXPECT_TRUE(replayEnabled());
    ASSERT_EQ(::unsetenv("LDIS_REPLAY"), 0);
    EXPECT_TRUE(replayEnabled());
}

TEST(Replay, GangEnabledUnlessEnvZero)
{
    ASSERT_EQ(::setenv("LDIS_GANG", "0", 1), 0);
    EXPECT_FALSE(gangEnabled());
    ASSERT_EQ(::setenv("LDIS_GANG", "1", 1), 0);
    EXPECT_TRUE(gangEnabled());
    ASSERT_EQ(::unsetenv("LDIS_GANG"), 0);
    EXPECT_TRUE(gangEnabled());
}

TEST(Replay, LanesEnvParsedWithinRangeAndOverridable)
{
    setGangLanes(0);
    ASSERT_EQ(::setenv("LDIS_LANES", "4", 1), 0);
    EXPECT_EQ(gangLanes(), 4u);
    ASSERT_EQ(::setenv("LDIS_LANES", "4096", 1), 0);
    EXPECT_EQ(gangLanes(), 4096u);
    // Malformed, zero and out-of-range values fall back to auto.
    ASSERT_EQ(::setenv("LDIS_LANES", "0", 1), 0);
    EXPECT_EQ(gangLanes(), 0u);
    ASSERT_EQ(::setenv("LDIS_LANES", "4097", 1), 0);
    EXPECT_EQ(gangLanes(), 0u);
    ASSERT_EQ(::setenv("LDIS_LANES", "-3", 1), 0);
    EXPECT_EQ(gangLanes(), 0u);
    ASSERT_EQ(::setenv("LDIS_LANES", "two", 1), 0);
    EXPECT_EQ(gangLanes(), 0u);
    // The CLI override (ldissim --lanes) beats the environment.
    ASSERT_EQ(::setenv("LDIS_LANES", "3", 1), 0);
    setGangLanes(7);
    EXPECT_EQ(gangLanes(), 7u);
    setGangLanes(0);
    EXPECT_EQ(gangLanes(), 3u);
    ASSERT_EQ(::unsetenv("LDIS_LANES"), 0);
    EXPECT_EQ(gangLanes(), 0u);
}

} // namespace
} // namespace ldis
