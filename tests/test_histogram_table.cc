/** @file Unit tests for the histogram and the table formatter. */

#include <gtest/gtest.h>

#include "common/histogram.hh"
#include "common/table.hh"

namespace ldis
{
namespace
{

TEST(Histogram, RecordsAndCounts)
{
    Histogram h(4);
    h.record(0);
    h.record(2);
    h.record(2);
    EXPECT_EQ(h.totalSamples(), 3u);
    EXPECT_EQ(h.countAt(0), 1u);
    EXPECT_EQ(h.countAt(1), 0u);
    EXPECT_EQ(h.countAt(2), 2u);
}

TEST(Histogram, Fractions)
{
    Histogram h(4);
    EXPECT_DOUBLE_EQ(h.fractionAt(1), 0.0);
    h.record(1);
    h.record(1);
    h.record(3);
    EXPECT_DOUBLE_EQ(h.fractionAt(1), 2.0 / 3.0);
    EXPECT_DOUBLE_EQ(h.fractionAt(3), 1.0 / 3.0);
}

TEST(Histogram, Mean)
{
    Histogram h(9);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    h.record(2);
    h.record(4);
    EXPECT_DOUBLE_EQ(h.mean(), 3.0);
    // Words-used style: buckets 1..8.
    Histogram words(9);
    for (int i = 0; i < 3; ++i)
        words.record(1);
    words.record(8);
    EXPECT_DOUBLE_EQ(words.mean(), (3.0 * 1 + 8.0) / 4.0);
}

TEST(Histogram, Clear)
{
    Histogram h(3);
    h.record(1);
    h.clear();
    EXPECT_EQ(h.totalSamples(), 0u);
    EXPECT_EQ(h.countAt(1), 0u);
}

TEST(HistogramDeath, OutOfRangeBucketPanics)
{
    Histogram h(3);
    EXPECT_DEATH(h.record(3), "assert");
}

TEST(Table, RendersAlignedColumns)
{
    Table t({"name", "value"});
    t.addRow({"a", "1"});
    t.addRow({"long-name", "12345"});
    std::string s = t.render();
    EXPECT_NE(s.find("name"), std::string::npos);
    EXPECT_NE(s.find("long-name"), std::string::npos);
    EXPECT_NE(s.find("12345"), std::string::npos);
    // Header separator present.
    EXPECT_NE(s.find("---"), std::string::npos);
}

TEST(Table, NumberFormatting)
{
    EXPECT_EQ(Table::num(3.14159, 2), "3.14");
    EXPECT_EQ(Table::num(3.0, 0), "3");
    EXPECT_EQ(Table::percent(0.123, 1), "12.3%");
    EXPECT_EQ(Table::percent(1.0, 0), "100%");
}

TEST(TableDeath, RowWidthMismatchPanics)
{
    Table t({"a", "b"});
    EXPECT_DEATH(t.addRow({"only-one"}), "assert");
}

} // namespace
} // namespace ldis
