/** @file Unit tests for the instruction cache. */

#include <gtest/gtest.h>

#include "cache/l1i.hh"
#include "cache/traditional_l2.hh"

namespace ldis
{
namespace
{

CacheGeometry
l2Geom()
{
    CacheGeometry g;
    g.bytes = 16ull * 8 * kLineBytes;
    g.ways = 8;
    return g;
}

CacheGeometry
l1iGeom()
{
    CacheGeometry g;
    g.bytes = 2ull * 2 * kLineBytes; // 2 sets, 2 ways
    g.ways = 2;
    return g;
}

TEST(L1ICache, MissThenHit)
{
    TraditionalL2 l2(l2Geom());
    L1ICache l1i(l1iGeom(), l2, 1);
    Cycle miss_lat = l1i.fetchLine(0x1000);
    EXPECT_GT(miss_lat, 1u); // went to the L2
    Cycle hit_lat = l1i.fetchLine(0x1000);
    EXPECT_EQ(hit_lat, 1u);
    EXPECT_EQ(l1i.stats().accesses, 2u);
    EXPECT_EQ(l1i.stats().misses, 1u);
}

TEST(L1ICache, SameLineDifferentPcHits)
{
    TraditionalL2 l2(l2Geom());
    L1ICache l1i(l1iGeom(), l2, 1);
    l1i.fetchLine(0x1000);
    EXPECT_EQ(l1i.fetchLine(0x1000 + 60), 1u); // same 64B line
    EXPECT_EQ(l1i.stats().misses, 1u);
}

TEST(L1ICache, FillsMarkL2LinesAsInstruction)
{
    TraditionalL2 l2(l2Geom());
    L1ICache l1i(l1iGeom(), l2, 1);
    l1i.fetchLine(0x2000);
    const CacheLineState *line = l2.tags().find(0x2000 / kLineBytes);
    ASSERT_NE(line, nullptr);
    EXPECT_TRUE(line->instr);
}

TEST(L1ICache, LruEvictionWithinSet)
{
    TraditionalL2 l2(l2Geom());
    L1ICache l1i(l1iGeom(), l2, 1);
    // Three lines mapping to set 0 (stride = 2 lines).
    l1i.fetchLine(0 * kLineBytes);
    l1i.fetchLine(2 * kLineBytes);
    l1i.fetchLine(0 * kLineBytes); // touch line 0
    l1i.fetchLine(4 * kLineBytes); // evicts line 2 (LRU)
    EXPECT_EQ(l1i.fetchLine(0 * kLineBytes), 1u);
    EXPECT_GT(l1i.fetchLine(2 * kLineBytes), 1u);
}

TEST(L1ICache, ResetStatsKeepsContents)
{
    TraditionalL2 l2(l2Geom());
    L1ICache l1i(l1iGeom(), l2, 1);
    l1i.fetchLine(0x1000);
    l1i.resetStats();
    EXPECT_EQ(l1i.stats().accesses, 0u);
    EXPECT_EQ(l1i.fetchLine(0x1000), 1u); // still cached
}

} // namespace
} // namespace ldis
