/**
 * @file
 * Quickstart: simulate one benchmark proxy against the baseline
 * cache and the distill cache (LDIS-MT-RC), and print the headline
 * comparison the paper makes — misses per kilo-instruction and the
 * distill cache's hit/miss breakdown.
 *
 * Usage: quickstart [benchmark] [instructions]
 *   benchmark     proxy name (default: mcf)
 *   instructions  run length (default: 20000000)
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/table.hh"
#include "distill/distill_cache.hh"
#include "sim/experiment.hh"

using namespace ldis;

int
main(int argc, char **argv)
{
    std::string benchmark = argc > 1 ? argv[1] : "mcf";
    InstCount instructions =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 20'000'000;

    std::printf("DistillSim quickstart: %s, %llu instructions\n\n",
                benchmark.c_str(),
                static_cast<unsigned long long>(instructions));

    // Baseline: traditional 1MB 8-way (Table 1).
    RunResult base = runTrace(benchmark, ConfigKind::Baseline1MB,
                              instructions);

    // The paper's default configuration: distill cache with
    // median-threshold filtering and the reverter circuit.
    RunResult ldis = runTrace(benchmark, ConfigKind::LdisMTRC,
                              instructions);

    Table t({"config", "MPKI", "hits", "misses", "hole-misses"});
    t.addRow({base.config, Table::num(base.mpki),
              std::to_string(base.l2.hits()),
              std::to_string(base.l2.misses()),
              std::to_string(base.l2.holeMisses)});
    t.addRow({ldis.config, Table::num(ldis.mpki),
              std::to_string(ldis.l2.hits()),
              std::to_string(ldis.l2.misses()),
              std::to_string(ldis.l2.holeMisses)});
    std::printf("%s\n", t.render().c_str());

    std::printf("MPKI reduction with LDIS-MT-RC: %.1f%%\n",
                percentReduction(base.mpki, ldis.mpki));
    return 0;
}
