/**
 * @file
 * Domain example: how much cache does a pointer-chasing workload
 * effectively gain from line distillation?
 *
 * Builds a custom linked-structure workload (not one of the paper's
 * proxies) with a configurable node footprint, then sweeps the
 * working-set size across the cache capacity and prints the misses
 * of the baseline, the distill cache, and traditional caches of
 * 1.5x/2x capacity — the Figure-8 methodology applied to a custom
 * workload via the public API.
 *
 * Usage: pointer_chase_study [words_per_node] [instructions]
 */

#include <cstdio>
#include <cstdlib>

#include "common/intmath.hh"
#include "common/table.hh"
#include "sim/experiment.hh"
#include "trace/composite.hh"

using namespace ldis;

namespace
{

CompositeWorkload
makeChase(std::uint64_t heap_bytes, unsigned words_per_node)
{
    RegionParams heap;
    heap.bytes = heap_bytes;
    heap.pattern = Pattern::PointerChase;
    heap.wordSel = WordSel::SparseK;
    heap.wordsPerVisit = words_per_node;
    heap.depDist = 1;
    heap.meanOps = 8;
    heap.weight = 0.9;

    RegionParams stack;
    stack.bytes = 32 * 1024;
    stack.pattern = Pattern::RandomLine;
    stack.wordSel = WordSel::SparseK;
    stack.wordsPerVisit = 3;
    stack.meanOps = 8;
    stack.weight = 0.1;

    return CompositeWorkload("chase", {heap, stack}, CodeModel{},
                             ValueProfile{}, 7);
}

} // namespace

int
main(int argc, char **argv)
{
    unsigned words = argc > 1
        ? static_cast<unsigned>(std::strtoul(argv[1], nullptr, 10))
        : 2;
    InstCount instructions =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 20'000'000;
    if (words < 1 || words > kWordsPerLine) {
        std::fprintf(stderr, "words_per_node must be 1..8\n");
        return 1;
    }

    std::printf("Pointer-chase capacity study: %u-word nodes, "
                "%llu instructions per point\n\n",
                words,
                static_cast<unsigned long long>(instructions));

    const ConfigKind configs[] = {
        ConfigKind::Baseline1MB, ConfigKind::LdisMTRC,
        ConfigKind::Trad1_5MB, ConfigKind::Trad2MB};

    Table t({"heap", "TRAD-1MB MPKI", "DISTILL", "TRAD-1.5MB",
             "TRAD-2MB"});
    for (std::uint64_t heap_mb : {1ull, 2ull, 3ull, 4ull, 6ull}) {
        std::vector<std::string> row{std::to_string(heap_mb) + "MB"};
        double base_mpki = 0.0;
        for (ConfigKind kind : configs) {
            CompositeWorkload wl =
                makeChase(heap_mb << 20, words);
            L2Instance l2 = makeConfig(kind, wl.valueProfile());
            RunResult r = runTrace(wl, *l2.cache, instructions);
            if (kind == ConfigKind::Baseline1MB) {
                base_mpki = r.mpki;
                row.push_back(Table::num(r.mpki, 2));
            } else {
                row.push_back(Table::num(
                    percentReduction(base_mpki, r.mpki), 1) + "%");
            }
        }
        t.addRow(row);
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("With %u-word nodes the WOC stores %u lines per "
                "way-pair entry group; sparse nodes make the distill "
                "cache act like a much larger traditional cache.\n",
                words, 8 / static_cast<unsigned>(
                               nextPow2(words)));
    return 0;
}
