/**
 * @file
 * Domain example: the reverter circuit in action (Section 5.5).
 *
 * Runs a phase-changing workload: a distillation-friendly sparse
 * phase followed by an adversarial delayed-spatial phase (unused
 * words become used later, so every distilled line turns into a
 * hole-miss) and back. Prints the PSEL value and the LDIS decision
 * over time, showing the set-sampling hysteresis disabling and
 * re-enabling distillation.
 *
 * Usage: reverter_demo [phase_instructions]
 */

#include <cstdio>
#include <cstdlib>
#include <memory>

#include "cache/hierarchy.hh"
#include "common/table.hh"
#include "distill/distill_cache.hh"
#include "trace/composite.hh"

using namespace ldis;

namespace
{

std::unique_ptr<CompositeWorkload>
makePhase(bool friendly)
{
    if (friendly) {
        // Sparse thrashing working set: WOC packs 1-word lines.
        RegionParams r;
        r.bytes = 3 << 20;
        r.pattern = Pattern::RandomLine;
        r.wordSel = WordSel::Single;
        r.wordsPerVisit = 1;
        r.meanOps = 4;
        return std::make_unique<CompositeWorkload>(
            "friendly", std::vector<RegionParams>{r}, CodeModel{},
            ValueProfile{}, 3);
    }
    // Adversarial: the trailing touch needs the words the
    // distillation threw away.
    RegionParams r;
    r.bytes = 24 << 20;
    r.pattern = Pattern::DelayedSpatial;
    r.wordSel = WordSel::Full;
    r.delayLines = 6800;
    r.meanOps = 4;
    return std::make_unique<CompositeWorkload>(
        "adversarial", std::vector<RegionParams>{r}, CodeModel{},
        ValueProfile{}, 3);
}

} // namespace

int
main(int argc, char **argv)
{
    InstCount phase_len =
        argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 30'000'000;

    DistillParams p;
    p.medianThreshold = true;
    p.useReverter = true;
    DistillCache dc(p);

    std::printf("Reverter-circuit demo: PSEL and decision across "
                "workload phases (%llu instructions each)\n\n",
                static_cast<unsigned long long>(phase_len));

    Table t({"phase", "workload", "PSEL", "LDIS", "hole-misses",
             "WOC hits", "mode switches"});
    const bool phases[] = {true, false, true};
    std::uint64_t prev_holes = 0, prev_woc = 0;
    for (int i = 0; i < 3; ++i) {
        auto wl = makePhase(phases[i]);
        Hierarchy hier(*wl, dc);
        hier.run(phase_len);
        const Reverter *rev = dc.reverter();
        t.addRow({std::to_string(i + 1), wl->name(),
                  std::to_string(rev->psel()),
                  rev->ldisEnabled() ? "enabled" : "disabled",
                  std::to_string(dc.stats().holeMisses - prev_holes),
                  std::to_string(dc.stats().wocHits - prev_woc),
                  std::to_string(dc.distillStats().modeSwitches)});
        prev_holes = dc.stats().holeMisses;
        prev_woc = dc.stats().wocHits;
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("The adversarial phase drags PSEL below 64 and LDIS "
                "switches off for follower sets; the friendly phase "
                "drives it back above 192.\n");
    return 0;
}
