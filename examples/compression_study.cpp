/**
 * @file
 * Domain example: when does footprint-aware compression (Section 8)
 * pay off? Sweeps the data-value compressibility of a fixed
 * sparse-access workload and compares plain LDIS, plain compression
 * (CMPR) and the combination (FAC), using the public configuration
 * API.
 *
 * Usage: compression_study [instructions]
 */

#include <cstdio>
#include <cstdlib>

#include "common/table.hh"
#include "sim/experiment.hh"
#include "trace/composite.hh"

using namespace ldis;

namespace
{

CompositeWorkload
makeSparse(ValueProfile values)
{
    RegionParams table;
    table.bytes = 3 << 20;
    table.pattern = Pattern::RandomLine;
    table.wordSel = WordSel::SparseK;
    table.wordsPerVisit = 2;
    table.meanOps = 6;
    table.weight = 0.85;

    RegionParams hot;
    hot.bytes = 64 * 1024;
    hot.pattern = Pattern::RandomLine;
    hot.wordSel = WordSel::SparseK;
    hot.wordsPerVisit = 4;
    hot.meanOps = 6;
    hot.weight = 0.15;

    return CompositeWorkload("sparse", {table, hot}, CodeModel{},
                             values, 11);
}

} // namespace

int
main(int argc, char **argv)
{
    InstCount instructions =
        argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 20'000'000;

    std::printf("Compression-vs-distillation study "
                "(%llu instructions per point)\n\n",
                static_cast<unsigned long long>(instructions));

    struct Point
    {
        const char *label;
        ValueProfile values;
    };
    const Point points[] = {
        {"incompressible", {0.02, 0.01, 0.05}},
        {"narrow-heavy", {0.10, 0.05, 0.50}},
        {"zero-heavy", {0.50, 0.10, 0.20}},
        {"mostly-zero", {0.80, 0.05, 0.10}},
    };

    const ConfigKind configs[] = {ConfigKind::LdisMTRC,
                                  ConfigKind::Cmpr4xTags,
                                  ConfigKind::Fac4xTags};

    Table t({"data profile", "base MPKI", "LDIS", "CMPR", "FAC"});
    for (const Point &pt : points) {
        std::vector<std::string> row{pt.label};
        CompositeWorkload base_wl = makeSparse(pt.values);
        L2Instance base_l2 = makeConfig(ConfigKind::Baseline1MB);
        RunResult base = runTrace(base_wl, *base_l2.cache,
                                  instructions);
        row.push_back(Table::num(base.mpki, 2));
        for (ConfigKind kind : configs) {
            CompositeWorkload wl = makeSparse(pt.values);
            L2Instance l2 = makeConfig(kind, pt.values);
            RunResult r = runTrace(wl, *l2.cache, instructions);
            row.push_back(Table::num(
                percentReduction(base.mpki, r.mpki), 1) + "%");
        }
        t.addRow(row);
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("LDIS wins regardless of value compressibility "
                "(it filters *unused* words); CMPR needs "
                "compressible values; FAC stacks both effects "
                "(Section 8's positive interaction).\n");
    return 0;
}
