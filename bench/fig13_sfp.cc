/**
 * @file
 * Reproduces Figure 13: LDIS against the Spatial Footprint Predictor
 * baseline (Kumar & Wilkerson) with 16k- and 64k-entry predictor
 * tables, both over a decoupled sectored cache with the same number
 * of tag entries as the distill cache, both with the reverter. The
 * paper's finding: SFP reduces misses, but significantly less than
 * LDIS — install-time prediction turns mispredictions into misses,
 * while eviction-time filtering cannot lose a line the traditional
 * cache would have kept.
 */

#include <cstdio>

#include "common/table.hh"
#include "sim/runner.hh"
#include "sim/telemetry.hh"

using namespace ldis;

int
main()
{
    telemetry::setExperiment("fig13_sfp");
    InstCount instructions = runLength();
    std::printf("Figure 13: LDIS vs SFP (%% MPKI reduction, "
                "%llu instructions)\n\n",
                static_cast<unsigned long long>(instructions));

    const ConfigKind configs[] = {ConfigKind::Sfp16k,
                                  ConfigKind::Sfp64k,
                                  ConfigKind::LdisMTRC};

    RunMatrix matrix;
    for (const std::string &name : studiedBenchmarks()) {
        std::vector<ConfigKind> kinds{ConfigKind::Baseline1MB};
        for (ConfigKind kind : configs)
            kinds.push_back(kind);
        matrix.addReplayGroup(name, kinds, instructions);
    }
    const std::vector<RunResult> &results = matrix.run();

    Table t({"name", "base MPKI", "SFP-16k", "SFP-64k", "LDIS"});
    double base_sum = 0.0;
    double cfg_sum[3] = {0.0, 0.0, 0.0};
    std::size_t idx = 0;
    for (const std::string &name : studiedBenchmarks()) {
        const RunResult &base = results[idx++];
        base_sum += base.mpki;
        std::vector<std::string> row{name, Table::num(base.mpki, 2)};
        for (int c = 0; c < 3; ++c) {
            const RunResult &r = results[idx++];
            cfg_sum[c] += r.mpki;
            row.push_back(Table::num(
                percentReduction(base.mpki, r.mpki), 1) + "%");
        }
        t.addRow(row);
    }
    t.addRow({"avg", "",
              Table::num(percentReduction(base_sum, cfg_sum[0]), 1)
                  + "%",
              Table::num(percentReduction(base_sum, cfg_sum[1]), 1)
                  + "%",
              Table::num(percentReduction(base_sum, cfg_sum[2]), 1)
                  + "%"});
    std::printf("%s\n", t.render().c_str());
    std::printf("Paper: SFP reduces misses vs baseline but "
                "significantly less than LDIS.\n\n");
    std::printf("%s", matrix.summary().c_str());
    return 0;
}
