/**
 * @file
 * Reproduces Figure 7: breakdown of L2 accesses into hit/miss
 * categories for (a) the baseline cache and (b) the distill cache
 * (LOC-hit / WOC-hit / hole-miss / line-miss). The paper highlights
 * mcf (hits triple thanks to the WOC) and art/health (LOC-hits
 * exceed the baseline's hits because the WOC absorbs thrashing).
 */

#include <cstdio>

#include "common/table.hh"
#include "sim/runner.hh"
#include "sim/telemetry.hh"

using namespace ldis;

namespace
{

std::string
pct(std::uint64_t part, std::uint64_t whole)
{
    if (whole == 0)
        return "0%";
    return Table::percent(static_cast<double>(part)
                          / static_cast<double>(whole), 1);
}

} // namespace

int
main()
{
    telemetry::setExperiment("fig07_hitmiss");
    InstCount instructions = runLength();
    std::printf("Figure 7: L2 access breakdown, baseline vs distill "
                "cache (LDIS-MT-RC, %llu instructions)\n\n",
                static_cast<unsigned long long>(instructions));

    RunMatrix matrix;
    for (const std::string &name : studiedBenchmarks()) {
        matrix.addReplayGroup(name,
                              {ConfigKind::Baseline1MB,
                               ConfigKind::LdisMTRC},
                              instructions);
    }
    const std::vector<RunResult> &results = matrix.run();

    Table t({"name", "base hit", "base miss", "LOC-hit", "WOC-hit",
             "hole-miss", "line-miss"});
    std::size_t idx = 0;
    for (const std::string &name : studiedBenchmarks()) {
        const RunResult &base = results[idx++];
        const RunResult &ldis = results[idx++];
        std::uint64_t bacc = base.l2.accesses;
        std::uint64_t dacc = ldis.l2.accesses;
        t.addRow({name,
                  pct(base.l2.hits(), bacc),
                  pct(base.l2.misses(), bacc),
                  pct(ldis.l2.locHits, dacc),
                  pct(ldis.l2.wocHits, dacc),
                  pct(ldis.l2.holeMisses, dacc),
                  pct(ldis.l2.lineMisses, dacc)});
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("Paper: mcf 12%% baseline hits -> 10%% LOC + 25%% "
                "WOC hits; art 25%% -> 63%% with half the remaining "
                "misses being hole-misses.\n\n");
    std::printf("%s", matrix.summary().c_str());
    return 0;
}
