/**
 * @file
 * Multi-programmed shared-L2 sweep: every canonical 2-way and 4-way
 * mix (configs.cc mixTable) against all 13 ConfigKinds, reporting
 * aggregate MPKI, the CPI-proxy weighted speedup over the solo runs
 * and the fairness ratio per cell. This is the capacity-pressure
 * story the paper's solo sweeps cannot tell: under contention the
 * distill cache's effective capacity win compounds, because every
 * stream's unused words were crowding out every other stream's
 * lines.
 *
 * One shared front-end recording per distinct member benchmark
 * feeds both the solo baselines and every mix that member appears
 * in; each mix cell composes the recorded streams and replays the
 * merged stream once per config group (gang) with per-stream stat
 * attribution.
 */

#include <algorithm>
#include <cstdio>
#include <map>
#include <vector>

#include "common/table.hh"
#include "sim/mix.hh"
#include "sim/runner.hh"
#include "sim/telemetry.hh"

using namespace ldis;

int
main()
{
    telemetry::setExperiment("mix_mpki");
    // Mix cells simulate members.size() times the solo length;
    // default shorter than the solo harnesses so the full table
    // stays tractable.
    InstCount instructions = runLength(20'000'000);
    std::printf("Mix MPKI: shared-L2 mixes x all configs "
                "(%llu instructions per member)\n\n",
                static_cast<unsigned long long>(instructions));

    const std::vector<ConfigKind> &kinds = allConfigKinds();

    // Distinct members across all mixes, for the solo baselines.
    std::vector<std::string> solo_names;
    for (const MixSpec &mix : mixTable())
        for (const std::string &m : mix.members)
            if (std::find(solo_names.begin(), solo_names.end(), m) ==
                solo_names.end())
                solo_names.push_back(m);

    RunMatrix matrix;
    std::map<std::string, std::size_t> solo_slot;
    for (const std::string &name : solo_names)
        solo_slot[name] =
            matrix.addReplayGroup(name, kinds, instructions);
    std::vector<std::size_t> mix_slot;
    for (const MixSpec &mix : mixTable())
        mix_slot.push_back(
            matrix.addMixGroup(mix, kinds, instructions));
    const std::vector<RunResult> &results = matrix.run();

    // Fill soloMpki / weighted speedup / fairness from the solo
    // cells of the SAME config, then print one table per metric.
    std::vector<RunResult> mixes;
    for (std::size_t m = 0; m < mixTable().size(); ++m) {
        const MixSpec &spec = mixTable()[m];
        for (std::size_t k = 0; k < kinds.size(); ++k) {
            RunResult cell = results[mix_slot[m] + k];
            std::vector<double> solo;
            for (const std::string &member : spec.members)
                solo.push_back(
                    results[solo_slot[member] + k].mpki);
            finalizeMixMetrics(cell, solo);
            mixes.push_back(std::move(cell));
        }
    }

    auto print_metric = [&](const char *title, auto value) {
        std::vector<std::string> head{"mix"};
        for (ConfigKind kind : kinds)
            head.push_back(configName(kind));
        Table t(head);
        std::size_t idx = 0;
        for (const MixSpec &spec : mixTable()) {
            std::vector<std::string> row{spec.name};
            for (std::size_t k = 0; k < kinds.size(); ++k)
                row.push_back(Table::num(value(mixes[idx + k]), 2));
            idx += kinds.size();
            t.addRow(row);
        }
        std::printf("%s\n%s\n", title, t.render().c_str());
    };

    print_metric("Aggregate MPKI",
                 [](const RunResult &r) { return r.mpki; });
    print_metric("Weighted speedup (CPI proxy, vs solo)",
                 [](const RunResult &r) { return r.weightedSpeedup; });
    print_metric("Fairness (min/max per-stream speedup)",
                 [](const RunResult &r) { return r.fairness; });

    // Per-stream detail for the first 2-way and the first 4-way mix
    // under the headline config, as a worked example.
    bool shown2 = false;
    bool shown4 = false;
    for (std::size_t m = 0; m < mixTable().size(); ++m) {
        const MixSpec &spec = mixTable()[m];
        bool &shown = spec.members.size() == 2 ? shown2 : shown4;
        if (shown)
            continue;
        shown = true;
        Table t({"stream", "solo MPKI", "mix MPKI", "speedup"});
        // LDIS-MT-RC column of this mix.
        std::size_t k = 0;
        while (kinds[k] != ConfigKind::LdisMTRC)
            ++k;
        const RunResult &cell = mixes[m * kinds.size() + k];
        for (const StreamStat &s : cell.streams) {
            t.addRow({s.benchmark, Table::num(s.soloMpki, 2),
                      Table::num(s.mpki, 2),
                      Table::num(cpiProxy(s.soloMpki)
                                     / cpiProxy(s.mpki),
                                 3)});
        }
        std::printf("Per-stream detail: %s under %s\n%s\n",
                    spec.name.c_str(),
                    configName(ConfigKind::LdisMTRC),
                    t.render().c_str());
    }

    std::printf("%s", matrix.summary().c_str());
    return 0;
}
