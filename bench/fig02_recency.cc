/**
 * @file
 * Reproduces Figure 2: distribution of the maximum recency position
 * a line attained before its footprint changed, recorded at
 * eviction (baseline 1MB 8-way; position 0 = MRU, 7 = LRU). The
 * paper's takeaway: on average 83% of footprint changes happen
 * between positions 0 and 3, under 12% after position 6 — so the
 * footprint has stabilized by the bottom quarter of the stack, which
 * is what licenses distilling at eviction time.
 */

#include <cstdio>

#include "cache/hierarchy.hh"
#include "cache/traditional_l2.hh"
#include "common/table.hh"
#include "sim/experiment.hh"

using namespace ldis;

int
main()
{
    InstCount instructions = runLength();
    std::printf("Figure 2: max recency position before "
                "footprint-change (%llu instructions)\n\n",
                static_cast<unsigned long long>(instructions));

    Table t({"name", "0", "1", "2", "3", "4", "5", "6", "7",
             "pos 0-3", "pos 6-7"});
    double sum03 = 0.0, sum67 = 0.0;
    auto names = studiedBenchmarks();
    for (const std::string &name : names) {
        auto workload = makeBenchmark(name);
        CacheGeometry g;
        g.bytes = 1 << 20;
        g.ways = 8;
        TraditionalL2 l2(g);
        Hierarchy hier(*workload, l2);
        hier.run(instructions);

        const Histogram &h = l2.recencyBeforeChange();
        std::vector<std::string> row{name};
        double p03 = 0.0, p67 = 0.0;
        for (unsigned pos = 0; pos < 8; ++pos) {
            double f = h.fractionAt(pos);
            row.push_back(Table::percent(f, 0));
            if (pos <= 3)
                p03 += f;
            if (pos >= 6)
                p67 += f;
        }
        row.push_back(Table::percent(p03, 1));
        row.push_back(Table::percent(p67, 1));
        sum03 += p03;
        sum67 += p67;
        t.addRow(row);
    }
    t.addRow({"avg", "", "", "", "", "", "", "", "",
              Table::percent(sum03 / names.size(), 1),
              Table::percent(sum67 / names.size(), 1)});
    std::printf("%s\n", t.render().c_str());
    std::printf("Paper: 83%% of footprint changes at positions 0-3; "
                "<12%% after position 6.\n");
    return 0;
}
