/**
 * @file
 * Reproduces Figure 6: percentage reduction in MPKI over the
 * baseline cache for the three LDIS configurations — LDIS-Base
 * (always distill), LDIS-MT (median-threshold filtering) and
 * LDIS-MT-RC (MT plus the reverter circuit). The paper's headline:
 * LDIS-MT-RC reduces average MPKI by 30.7% and never increases
 * misses by more than 2%.
 */

#include <cstdio>
#include <vector>

#include "common/table.hh"
#include "sim/runner.hh"
#include "sim/telemetry.hh"

using namespace ldis;

int
main()
{
    telemetry::setExperiment("fig06_mpki");
    InstCount instructions = runLength();
    std::printf("Figure 6: %% MPKI reduction vs baseline "
                "(%llu instructions per run)\n\n",
                static_cast<unsigned long long>(instructions));

    const ConfigKind configs[] = {ConfigKind::LdisBase,
                                  ConfigKind::LdisMT,
                                  ConfigKind::LdisMTRC};

    // One shared front-end pass per benchmark, then ONE gang walk
    // over its stream feeding all four config cells (LDIS_GANG=0
    // restores per-cell replay, LDIS_REPLAY=0 per-cell simulation).
    RunMatrix matrix;
    for (const std::string &name : studiedBenchmarks()) {
        std::vector<ConfigKind> kinds{ConfigKind::Baseline1MB};
        for (ConfigKind kind : configs)
            kinds.push_back(kind);
        matrix.addReplayGroup(name, kinds, instructions);
    }
    const std::vector<RunResult> &results = matrix.run();

    Table t({"name", "base MPKI", "LDIS-Base", "LDIS-MT",
             "LDIS-MT-RC"});
    std::vector<double> base_mpki;
    std::vector<std::vector<double>> red(3);

    std::size_t idx = 0;
    for (const std::string &name : studiedBenchmarks()) {
        const RunResult &base = results[idx++];
        base_mpki.push_back(base.mpki);
        std::vector<std::string> row{name, Table::num(base.mpki, 2)};
        for (int c = 0; c < 3; ++c) {
            const RunResult &r = results[idx++];
            double reduction = percentReduction(base.mpki, r.mpki);
            red[c].push_back(r.mpki);
            row.push_back(Table::num(reduction, 1) + "%");
        }
        t.addRow(row);
    }

    // Average-MPKI reduction rows (avg and avg excluding mcf, as in
    // the paper -- mcf's MPKI dominates the arithmetic mean).
    auto avg_row = [&](const char *label, bool skip_mcf) {
        std::vector<std::string> row{label, ""};
        double base_sum = 0.0;
        std::vector<double> cfg_sum(3, 0.0);
        auto names = studiedBenchmarks();
        for (std::size_t i = 0; i < names.size(); ++i) {
            if (skip_mcf && names[i] == "mcf")
                continue;
            base_sum += base_mpki[i];
            for (int c = 0; c < 3; ++c)
                cfg_sum[c] += red[c][i];
        }
        row[1] = Table::num(base_sum
                            / static_cast<double>(
                                names.size() - (skip_mcf ? 1 : 0)),
                            2);
        for (int c = 0; c < 3; ++c) {
            row.push_back(Table::num(
                percentReduction(base_sum, cfg_sum[c]), 1) + "%");
        }
        t.addRow(row);
    };
    avg_row("avg", false);
    avg_row("avgNomcf", true);

    std::printf("%s\n", t.render().c_str());
    std::printf("Paper: LDIS-Base 22.8%%, LDIS-MT-RC 30.7%% average "
                "MPKI reduction; never worse than -2%%.\n\n");
    std::printf("%s", matrix.summary().c_str());
    return 0;
}
