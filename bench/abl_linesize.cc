/**
 * @file
 * The Section-2 line-size argument: "An obvious way to reduce the
 * number of unused words is to reduce the line-size. However, ...
 * reducing cache line-size from 64B to 32B increases the cache
 * misses for most of the benchmarks" (footnote 2). This bench
 * compares the baseline 64B-line cache, a 32B-line cache of equal
 * capacity, and the distill cache — showing that naive line-size
 * reduction forfeits spatial locality, while distillation keeps it.
 */

#include <cstdio>

#include "common/table.hh"
#include "sim/runner.hh"
#include "sim/telemetry.hh"

using namespace ldis;

int
main()
{
    telemetry::setExperiment("abl_linesize");
    InstCount instructions = runLength();
    std::printf("Line-size study: 64B vs 32B lines vs distillation "
                "(%llu instructions)\n\n",
                static_cast<unsigned long long>(instructions));

    auto names = studiedBenchmarks();
    RunMatrix matrix;
    for (const std::string &name : names) {
        matrix.addReplayGroup(name,
                              {ConfigKind::Baseline1MB,
                               ConfigKind::Trad1MB32B,
                               ConfigKind::LdisMTRC},
                              instructions);
    }
    const std::vector<RunResult> &results = matrix.run();

    Table t({"name", "64B MPKI", "32B MPKI", "32B vs 64B",
             "LDIS vs 64B"});
    unsigned worse_with_32 = 0;
    std::size_t idx = 0;
    for (const std::string &name : names) {
        const RunResult &b64 = results[idx++];
        const RunResult &b32 = results[idx++];
        const RunResult &ldis = results[idx++];
        double delta32 = percentReduction(b64.mpki, b32.mpki);
        if (delta32 < 0.0)
            ++worse_with_32;
        t.addRow({name, Table::num(b64.mpki, 2),
                  Table::num(b32.mpki, 2),
                  Table::num(delta32, 1) + "%",
                  Table::num(percentReduction(b64.mpki, ldis.mpki),
                             1) + "%"});
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("32B lines increase misses for %u of %zu "
                "benchmarks; distillation filters unused words "
                "without giving up spatial locality.\n\n",
                worse_with_32, names.size());
    std::printf("%s", matrix.summary().c_str());
    return 0;
}
