/**
 * @file
 * Reproduces Figure 9: IPC improvement of the processor with the
 * distill cache over the baseline processor, using the
 * execution-driven model (Section 7.4). The distill configuration
 * pays one extra tag cycle on every L2 access and two extra cycles
 * on WOC hits. The paper reports a 12% geometric-mean improvement,
 * with art, mcf, twolf, ammp and health above 30%.
 */

#include <cstdio>
#include <vector>

#include "common/table.hh"
#include "sim/runner.hh"
#include "sim/telemetry.hh"

using namespace ldis;

int
main()
{
    telemetry::setExperiment("fig09_ipc");
    // The execution-driven model is slower per instruction than the
    // trace-driven one, so use a shorter default run.
    InstCount instructions = runLength(20'000'000);
    std::printf("Figure 9: IPC improvement with the distill cache "
                "(%llu instructions)\n\n",
                static_cast<unsigned long long>(instructions));

    IpcMatrix matrix;
    for (const std::string &name : studiedBenchmarks()) {
        matrix.add(name, ConfigKind::Baseline1MB, instructions);
        matrix.add(name, ConfigKind::LdisMTRC, instructions);
    }
    const std::vector<IpcResult> &results = matrix.run();

    Table t({"name", "base IPC", "distill IPC", "improvement",
             "bpred miss"});
    std::vector<double> speedups;
    std::size_t idx = 0;
    for (const std::string &name : studiedBenchmarks()) {
        const IpcResult &base = results[idx++];
        const IpcResult &ldis = results[idx++];
        double speedup = base.ipc == 0.0
            ? 0.0
            : ldis.ipc / base.ipc - 1.0;
        speedups.push_back(speedup);
        t.addRow({name, Table::num(base.ipc, 3),
                  Table::num(ldis.ipc, 3),
                  Table::num(speedup * 100.0, 1) + "%",
                  Table::percent(base.branch.missRate())});
    }
    t.addRow({"gmean", "", "",
              Table::num(geomeanSpeedup(speedups) * 100.0, 1) + "%",
              ""});
    std::printf("%s\n", t.render().c_str());
    std::printf("Paper: 12%% gmean IPC improvement; art, mcf, twolf, "
                "ammp, health above 30%%; gcc slightly negative "
                "(instruction-cache intensive, extra tag cycle).\n\n");
    std::printf("%s", matrix.summary().c_str());
    return 0;
}
