/**
 * @file
 * Reproduces Figure 8: MPKI reduction of the 1MB distill cache
 * compared against traditional caches of 1.5MB and 2MB. The paper's
 * claims: for facerec, ammp and sixtrack the distill cache is
 * comparable to growing the cache by 50%; for mcf and health it
 * beats doubling the cache.
 */

#include <cstdio>

#include "common/table.hh"
#include "sim/runner.hh"
#include "sim/telemetry.hh"

using namespace ldis;

int
main()
{
    telemetry::setExperiment("fig08_capacity");
    InstCount instructions = runLength();
    std::printf("Figure 8: distill cache vs bigger traditional "
                "caches (%% MPKI reduction vs 1MB baseline, "
                "%llu instructions)\n\n",
                static_cast<unsigned long long>(instructions));

    const ConfigKind configs[] = {ConfigKind::LdisMTRC,
                                  ConfigKind::Trad1_5MB,
                                  ConfigKind::Trad2MB};

    RunMatrix matrix;
    for (const std::string &name : studiedBenchmarks()) {
        std::vector<ConfigKind> kinds{ConfigKind::Baseline1MB};
        for (ConfigKind kind : configs)
            kinds.push_back(kind);
        matrix.addReplayGroup(name, kinds, instructions);
    }
    const std::vector<RunResult> &results = matrix.run();

    Table t({"name", "base MPKI", "DISTILL-1MB", "TRAD-1.5MB",
             "TRAD-2MB"});
    std::size_t idx = 0;
    for (const std::string &name : studiedBenchmarks()) {
        const RunResult &base = results[idx++];
        std::vector<std::string> row{name, Table::num(base.mpki, 2)};
        for (ConfigKind kind : configs) {
            (void)kind;
            const RunResult &r = results[idx++];
            row.push_back(Table::num(
                percentReduction(base.mpki, r.mpki), 1) + "%");
        }
        t.addRow(row);
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("Paper: distill ~ TRAD-1.5MB for facerec/ammp/"
                "sixtrack; distill > TRAD-2MB for mcf and health.\n\n");
    std::printf("%s", matrix.summary().c_str());
    return 0;
}
