/**
 * @file
 * Reproduces Table 3: the storage overhead of the distill cache,
 * plus the line-size sensitivity the paper quotes in the text
 * (12.2% at 64B lines, ~7% at 128B, ~4% at 256B — word size scales
 * with the line so there are always eight words per line).
 */

#include <cstdio>

#include "common/table.hh"
#include "distill/overhead.hh"

using namespace ldis;

int
main()
{
    OverheadParams p; // paper defaults
    OverheadBreakdown b = computeOverhead(p);

    std::printf("Table 3: storage overhead of Line Distillation\n\n");
    Table t({"component", "value"});
    t.addRow({"size of each tag-entry in WOC",
              std::to_string(b.wocEntryBits) + " bits"});
    t.addRow({"total number of tag-entries in WOC",
              std::to_string(b.wocEntries)});
    t.addRow({"overhead of tag-entries in WOC",
              std::to_string(b.wocTagBytes / 1024) + " kB"});
    t.addRow({"total number of tag-entries in LOC",
              std::to_string(b.locEntries)});
    t.addRow({"overhead of footprint bits in LOC",
              std::to_string(b.locFootprintBytes / 1024) + " kB"});
    t.addRow({"total number of lines in L1D",
              std::to_string(b.l1dLines)});
    t.addRow({"overhead of footprint bits in L1D",
              std::to_string(b.l1dFootprintBytes) + " B"});
    t.addRow({"overhead for median threshold",
              std::to_string(b.mtBytes) + " B"});
    t.addRow({"overhead of reverter circuit (ATD)",
              std::to_string(b.atdBytes / 1024) + " kB"});
    t.addRow({"total storage overhead",
              std::to_string(b.totalBytes / 1024) + " kB"});
    t.addRow({"baseline L2 area (tags + data)",
              std::to_string(b.baselineAreaBytes / 1024) + " kB"});
    t.addRow({"% increase in L2 area",
              Table::num(b.percentIncrease, 1) + "%"});
    std::printf("%s\n", t.render().c_str());
    std::printf("Paper: 29-bit WOC entries, 32k of them (116kB), "
                "16kB LOC footprints, 256B L1D footprints, 18B MT, "
                "1kB ATD; 133kB total = 12.2%%.\n\n");

    std::printf("Line-size sensitivity (word size = line/8):\n\n");
    Table t2({"line size", "total overhead", "% of baseline area"});
    for (unsigned line : {64u, 128u, 256u}) {
        OverheadParams q;
        q.lineBytes = line;
        OverheadBreakdown bb = computeOverhead(q);
        t2.addRow({std::to_string(line) + "B",
                   std::to_string(bb.totalBytes / 1024) + " kB",
                   Table::num(bb.percentIncrease, 1) + "%"});
    }
    std::printf("%s\n", t2.render().c_str());
    std::printf("Paper: 12.2%% -> ~7%% -> ~4%%.\n");
    return 0;
}
