/**
 * @file
 * Reproduces Table 5 (Appendix A): for the cache-insensitive
 * benchmarks, MPKI is essentially unchanged across Trad-1MB,
 * LDIS-1MB, Trad-2MB and Trad-4MB — if growing the cache does not
 * help, line distillation cannot help either (and, with the
 * reverter, does not hurt).
 */

#include <cstdio>

#include "common/table.hh"
#include "sim/runner.hh"
#include "sim/telemetry.hh"

using namespace ldis;

int
main()
{
    telemetry::setExperiment("table5_insensitive");
    InstCount instructions = runLength();
    std::printf("Table 5: cache-insensitive benchmarks "
                "(%llu instructions)\n\n",
                static_cast<unsigned long long>(instructions));

    const ConfigKind configs[] = {ConfigKind::Baseline1MB,
                                  ConfigKind::LdisMTRC,
                                  ConfigKind::Trad2MB,
                                  ConfigKind::Trad4MB};

    RunMatrix matrix;
    for (const std::string &name : insensitiveBenchmarks()) {
        matrix.addReplayGroup(
            name,
            {configs[0], configs[1], configs[2], configs[3]},
            instructions);
    }
    const std::vector<RunResult> &results = matrix.run();

    Table t({"name", "Trad 1MB", "LDIS 1MB", "Trad 2MB", "Trad 4MB",
             "paper 1MB"});
    std::size_t idx = 0;
    for (const std::string &name : insensitiveBenchmarks()) {
        std::vector<std::string> row{name};
        for (ConfigKind kind : configs) {
            (void)kind;
            row.push_back(Table::num(results[idx++].mpki, 2));
        }
        row.push_back(Table::num(benchmarkInfo(name).paperMpki, 2));
        t.addRow(row);
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("Paper: MPKI flat across all four configurations "
                "for these benchmarks.\n\n");
    std::printf("%s", matrix.summary().c_str());
    return 0;
}
