/**
 * @file
 * Reproduces Table 2: baseline (1MB 8-way) misses per 1000
 * instructions and the percentage of misses that are compulsory,
 * for each of the 16 studied benchmark proxies. Paper values are
 * printed alongside for comparison.
 */

#include <cstdio>

#include "common/table.hh"
#include "sim/experiment.hh"

using namespace ldis;

int
main()
{
    InstCount instructions = runLength();
    std::printf("Table 2: benchmark summary (baseline 1MB 8-way, "
                "%llu instructions per run)\n\n",
                static_cast<unsigned long long>(instructions));

    Table t({"name", "MPKI", "compulsory", "paper MPKI",
             "paper comp."});
    for (const std::string &name : studiedBenchmarks()) {
        RunResult r = runTrace(name, ConfigKind::Baseline1MB,
                               instructions);
        double comp = r.l2.misses() == 0
            ? 0.0
            : static_cast<double>(r.l2.compulsoryMisses)
                  / static_cast<double>(r.l2.misses());
        const BenchmarkInfo &info = benchmarkInfo(name);
        t.addRow({name, Table::num(r.mpki, 1), Table::percent(comp),
                  Table::num(info.paperMpki, 1),
                  Table::percent(info.paperCompulsory)});
    }
    std::printf("%s\n", t.render().c_str());
    return 0;
}
