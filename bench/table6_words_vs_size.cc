/**
 * @file
 * Reproduces Table 6 (Appendix B): average number of words used in
 * a cache line as the cache size varies from 0.75MB to 2MB (2048
 * sets throughout; associativity 6/8/10/12/16). Lines that survive
 * longer in bigger caches accumulate larger footprints, which is
 * why several benchmarks' averages grow with capacity — and why
 * spatial filtering decisions are a function of cache size
 * (Section 7.2's hole-miss discussion).
 *
 * The average blends evicted lines (the paper's histogram) with the
 * lines still resident at the end of the run, so benchmarks whose
 * working set fits (few evictions) still report a meaningful value.
 */

#include <cstdio>
#include <vector>

#include "cache/hierarchy.hh"
#include "cache/traditional_l2.hh"
#include "common/table.hh"
#include "sim/replay.hh"
#include "sim/runner.hh"
#include "sim/telemetry.hh"

using namespace ldis;

namespace
{

double
avgWordsBlended(const TraditionalL2 &l2)
{
    const Histogram &h = l2.wordsUsedAtEviction();
    double sum = h.mean() * static_cast<double>(h.totalSamples());
    std::uint64_t n = h.totalSamples();
    l2.tags().forEachLine([&](const CacheLineState &l) {
        if (l.instr || l.footprint.empty())
            return;
        sum += l.footprint.count();
        n += 1;
    });
    return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

} // namespace

int
main()
{
    telemetry::setExperiment("table6_words_vs_size");
    InstCount instructions = runLength();
    std::printf("Table 6: average words used per line vs cache size "
                "(%llu instructions)\n\n",
                static_cast<unsigned long long>(instructions));

    struct SizePoint
    {
        const char *label;
        unsigned ways; // 2048 sets x 64B lines x ways
    };
    const SizePoint sizes[] = {
        {"0.75MB", 6}, {"1.00MB", 8}, {"1.25MB", 10},
        {"1.50MB", 12}, {"2.00MB", 16},
    };

    // Each job stores its blended average into its own slot; the
    // RunResult return value carries the timing/throughput data.
    auto names = studiedBenchmarks();
    std::vector<double> avg_words(names.size() * std::size(sizes));

    // One gang walk per benchmark covers all five size points; the
    // finish hook reads the blended average off each lane's cache
    // before it is torn down.
    RunMatrix matrix;
    std::size_t slot = 0;
    for (const std::string &name : names) {
        std::vector<GangJob> jobs;
        for (const SizePoint &sp : sizes) {
            unsigned ways = sp.ways;
            double *out = &avg_words[slot++];
            jobs.push_back(
                {name + "/" + sp.label,
                 [ways](const ValueProfile &) {
                     CacheGeometry g;
                     g.bytes = static_cast<std::uint64_t>(2048) *
                               64 * ways;
                     g.ways = ways;
                     L2Instance inst;
                     inst.cache =
                         std::make_unique<TraditionalL2>(g);
                     return inst;
                 },
                 [out](SecondLevelCache &l2, RunResult &) {
                     *out = avgWordsBlended(
                         static_cast<const TraditionalL2 &>(l2));
                 }});
        }
        matrix.addReplayGroup(name, instructions, std::move(jobs));
    }
    matrix.run();

    Table t({"name", "0.75MB", "1.00MB", "1.25MB", "1.50MB",
             "2.00MB", "paper@1MB"});
    slot = 0;
    for (const std::string &name : names) {
        std::vector<std::string> row{name};
        for (std::size_t s = 0; s < std::size(sizes); ++s)
            row.push_back(Table::num(avg_words[slot++], 2));
        row.push_back(Table::num(
            benchmarkInfo(name).paperWords1MB, 2));
        t.addRow(row);
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("Paper: art grows 1.80 -> 3.63 and vpr 3.10 -> 6.09 "
                "from 0.75MB to 2MB; mcf, health stay flat.\n\n");
    std::printf("%s", matrix.summary().c_str());
    return 0;
}
