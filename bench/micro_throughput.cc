/**
 * @file
 * Simulator-throughput microbenchmarks (google-benchmark): simulated
 * instructions per second for each L2 model, plus the hot paths of
 * the WOC (install / lookup) in isolation. Not a paper experiment —
 * these guard the simulator's own performance.
 */

#include <benchmark/benchmark.h>

#include "cache/hierarchy.hh"
#include "common/random.hh"
#include "common/workshare.hh"
#include "distill/woc.hh"
#include "sim/experiment.hh"
#include "sim/replay.hh"

using namespace ldis;

namespace
{

void
runModel(benchmark::State &state, ConfigKind kind)
{
    auto workload = makeBenchmark("mcf");
    L2Instance l2 = makeConfig(kind, workload->valueProfile());
    Hierarchy hier(*workload, *l2.cache);
    const InstCount chunk = 1'000'000;
    for (auto _ : state)
        hier.run(chunk);
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * chunk);
}

void
BM_TraditionalL2(benchmark::State &state)
{
    runModel(state, ConfigKind::Baseline1MB);
}
BENCHMARK(BM_TraditionalL2)->Unit(benchmark::kMillisecond);

void
BM_DistillCache(benchmark::State &state)
{
    runModel(state, ConfigKind::LdisMTRC);
}
BENCHMARK(BM_DistillCache)->Unit(benchmark::kMillisecond);

void
BM_CompressedL2(benchmark::State &state)
{
    runModel(state, ConfigKind::Cmpr4xTags);
}
BENCHMARK(BM_CompressedL2)->Unit(benchmark::kMillisecond);

void
BM_FacCache(benchmark::State &state)
{
    runModel(state, ConfigKind::Fac4xTags);
}
BENCHMARK(BM_FacCache)->Unit(benchmark::kMillisecond);

void
BM_SfpCache(benchmark::State &state)
{
    runModel(state, ConfigKind::Sfp16k);
}
BENCHMARK(BM_SfpCache)->Unit(benchmark::kMillisecond);

void
BM_L2Replay(benchmark::State &state)
{
    // Replay throughput of the generate-once engine: the front end
    // is recorded once up front; each iteration replays the whole
    // stream into a fresh distill cache. Items = simulated
    // instructions, comparable with the direct-model benches above.
    auto workload = makeBenchmark("mcf");
    const InstCount chunk = 1'000'000;
    L2Stream stream = recordStream(*workload, 1, 0, chunk);
    for (auto _ : state) {
        L2Instance l2 =
            makeConfig(ConfigKind::LdisMTRC, stream.values);
        benchmark::DoNotOptimize(
            replayStream(stream, *l2.cache).l2.accesses);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(stream.meas.instructions));
}
BENCHMARK(BM_L2Replay)->Unit(benchmark::kMillisecond);

void
BM_GangReplay(benchmark::State &state)
{
    // Gang-walk throughput: one decode of the recorded stream feeds
    // four configurations in lockstep. Items = simulated
    // instructions x configs, so items/s is directly comparable
    // with BM_L2Replay (the per-config solo walk). The argument is
    // the walk's thread budget (1 = the serial walk; more buys the
    // decode pipeline plus lane workers), sweeping the lane-parallel
    // engine's scaling on the host.
    auto workload = makeBenchmark("mcf");
    const InstCount chunk = 1'000'000;
    L2Stream stream = recordStream(*workload, 1, 0, chunk);
    const ConfigKind kinds[] = {
        ConfigKind::Baseline1MB, ConfigKind::LdisMTRC,
        ConfigKind::Cmpr4xTags, ConfigKind::Sfp16k};
    const unsigned lanes = static_cast<unsigned>(state.range(0));
    WorkerLeaseHub hub(lanes);
    hub.setBusyWorkers(1);
    for (auto _ : state) {
        std::vector<L2Instance> gang;
        std::vector<SecondLevelCache *> caches;
        for (ConfigKind kind : kinds) {
            gang.push_back(makeConfig(kind, stream.values));
            caches.push_back(gang.back().cache.get());
        }
        GangParallel par;
        par.hub = lanes > 1 ? &hub : nullptr;
        par.lanes = lanes;
        benchmark::DoNotOptimize(
            replayMany(stream, caches, nullptr, par)[0]
                .l2.accesses);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(stream.meas.instructions) *
        static_cast<std::int64_t>(std::size(kinds)));
}
// Wall clock, not main-thread CPU time: with lanes > 1 most of the
// walk runs on leased helper threads, so CPU-time-based items/s
// would be meaninglessly inflated.
BENCHMARK(BM_GangReplay)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void
BM_OooCore(benchmark::State &state)
{
    auto workload = makeBenchmark("mcf");
    L2Instance l2 = makeConfig(ConfigKind::Baseline1MB);
    CpuParams params;
    OooCore core(params, *workload, *l2.cache);
    const InstCount chunk = 500'000;
    for (auto _ : state)
        core.run(chunk);
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * chunk);
}
BENCHMARK(BM_OooCore)->Unit(benchmark::kMillisecond);

void
BM_WocInstall(benchmark::State &state)
{
    WocSet woc(16);
    Random rng(7);
    std::vector<WocEvicted> evicted;
    LineAddr line = 0;
    const unsigned words = static_cast<unsigned>(state.range(0));
    Footprint fp;
    for (unsigned w = 0; w < words; ++w)
        fp.set(w);
    for (auto _ : state) {
        evicted.clear();
        woc.install(line++ * 2048, fp, Footprint{}, rng, evicted);
        benchmark::DoNotOptimize(evicted.size());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_WocInstall)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void
BM_WocLookup(benchmark::State &state)
{
    WocSet woc(16);
    Random rng(7);
    std::vector<WocEvicted> evicted;
    Footprint two;
    two.set(0);
    two.set(5);
    for (LineAddr l = 0; l < 8; ++l)
        woc.install(l * 2048, two, Footprint{}, rng, evicted);
    LineAddr probe = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            woc.wordsOf((probe++ % 8) * 2048).raw());
    }
}
BENCHMARK(BM_WocLookup);

} // namespace

BENCHMARK_MAIN();
