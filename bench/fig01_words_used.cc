/**
 * @file
 * Reproduces Figure 1: distribution of the number of words used in a
 * cache line of the baseline L2, recorded at eviction, plus the
 * per-benchmark average the figure annotates.
 */

#include <cstdio>

#include "cache/hierarchy.hh"
#include "cache/traditional_l2.hh"
#include "common/table.hh"
#include "sim/experiment.hh"

using namespace ldis;

int
main()
{
    InstCount instructions = runLength();
    std::printf("Figure 1: words used per evicted L2 line "
                "(baseline 1MB 8-way, %llu instructions)\n\n",
                static_cast<unsigned long long>(instructions));

    Table t({"name", "1", "2", "3", "4", "5", "6", "7", "8",
             "avg words", "paper avg"});
    for (const std::string &name : studiedBenchmarks()) {
        auto workload = makeBenchmark(name);
        CacheGeometry g;
        g.bytes = 1 << 20;
        g.ways = 8;
        TraditionalL2 l2(g);
        Hierarchy hier(*workload, l2);
        hier.run(instructions);

        const Histogram &h = l2.wordsUsedAtEviction();
        std::vector<std::string> row{name};
        for (unsigned w = 1; w <= kWordsPerLine; ++w)
            row.push_back(Table::percent(h.fractionAt(w), 0));
        row.push_back(Table::num(l2.avgWordsUsed(), 2));
        row.push_back(Table::num(
            benchmarkInfo(name).paperWords1MB, 2));
        t.addRow(row);
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("Paper: art/mcf use <2 of 8 words; 8 of 16 "
                "benchmarks use <=4 words on average.\n");
    return 0;
}
