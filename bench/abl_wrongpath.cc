/**
 * @file
 * Footnote-8 ablation: "Instructions on the wrong path can cause the
 * footprint to show a higher number of words used which reduces the
 * benefit of LDIS." Runs the execution-driven model with wrong-path
 * footprint pollution off and on (squashed loads touching random
 * words of recent lines) and reports the distill cache's MPKI
 * reduction under each.
 */

#include <cstdio>

#include "common/table.hh"
#include "sim/experiment.hh"

using namespace ldis;

namespace
{

struct WpResult
{
    double base_mpki = 0.0;
    double ldis_mpki = 0.0;
};

WpResult
runPair(const std::string &name, unsigned wrong_path, InstCount n)
{
    CpuParams params;
    params.wrongPathAccesses = wrong_path;

    WpResult out;
    {
        auto workload = makeBenchmark(name);
        L2Instance l2 = makeConfig(ConfigKind::Baseline1MB);
        OooCore core(params, *workload, *l2.cache);
        core.run(n);
        out.base_mpki = core.mpki();
    }
    {
        auto workload = makeBenchmark(name);
        L2Instance l2 = makeConfig(ConfigKind::LdisMTRC);
        OooCore core(params, *workload, *l2.cache);
        core.run(n);
        out.ldis_mpki = core.mpki();
    }
    return out;
}

const char *kBenchmarks[] = {"art", "mcf", "twolf", "ammp",
                             "health"};

} // namespace

int
main()
{
    InstCount instructions = runLength(10'000'000);
    std::printf("Ablation: wrong-path footprint pollution "
                "(footnote 8) -- LDIS %% MPKI reduction with 0 / 2 "
                "/ 6 wrong-path loads per misprediction "
                "(%llu instructions)\n\n",
                static_cast<unsigned long long>(instructions));

    Table t({"name", "clean", "2 wp-loads", "6 wp-loads"});
    for (const char *name : kBenchmarks) {
        std::vector<std::string> row{name};
        for (unsigned wp : {0u, 2u, 6u}) {
            WpResult r = runPair(name, wp, instructions);
            row.push_back(Table::num(
                percentReduction(r.base_mpki, r.ldis_mpki), 1)
                + "%");
        }
        t.addRow(row);
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("Wrong-path touches inflate footprints, so "
                "distillation keeps words the correct path never "
                "uses and the benefit shrinks -- the effect the "
                "paper proposes to mitigate by delaying footprint "
                "updates until commit.\n");
    return 0;
}
