/**
 * @file
 * Section-9 composition ablation: line-granularity prefetching and
 * line distillation attack different inefficiencies (untimely
 * fetches vs unused words), so they should compose. Compares the
 * baseline, next-line prefetching alone, LDIS alone, and the two
 * combined across the studied benchmarks.
 */

#include <cstdio>
#include <memory>

#include "cache/hierarchy.hh"
#include "cache/prefetch.hh"
#include "common/table.hh"
#include "distill/distill_cache.hh"
#include "sim/replay.hh"
#include "sim/runner.hh"
#include "sim/telemetry.hh"

using namespace ldis;

namespace
{

std::unique_ptr<SecondLevelCache>
buildOne(bool distill, bool prefetch)
{
    std::unique_ptr<SecondLevelCache> l2;
    if (distill) {
        DistillParams p;
        p.medianThreshold = true;
        p.useReverter = true;
        l2 = std::make_unique<DistillCache>(p);
    } else {
        CacheGeometry g;
        g.bytes = 1 << 20;
        g.ways = 8;
        l2 = std::make_unique<TraditionalL2>(g);
    }
    if (prefetch)
        l2 = std::make_unique<PrefetchingL2>(std::move(l2), 1);
    return l2;
}

} // namespace

int
main()
{
    telemetry::setExperiment("abl_prefetch");
    InstCount instructions = runLength(20'000'000);
    std::printf("Ablation: LDIS x next-line prefetching "
                "(%% MPKI reduction, %llu instructions)\n\n",
                static_cast<unsigned long long>(instructions));

    RunMatrix matrix;
    for (const std::string &name : studiedBenchmarks()) {
        std::vector<GangJob> jobs;
        for (bool distill : {false, true}) {
            for (bool prefetch : {false, true}) {
                std::string label = name + "/"
                    + (distill ? "ldis" : "trad")
                    + (prefetch ? "+pf" : "");
                jobs.push_back(
                    {std::move(label),
                     [distill, prefetch](const ValueProfile &) {
                         L2Instance inst;
                         inst.cache = buildOne(distill, prefetch);
                         return inst;
                     },
                     {}});
            }
        }
        matrix.addReplayGroup(name, instructions, std::move(jobs));
    }
    const std::vector<RunResult> &results = matrix.run();

    Table t({"name", "base MPKI", "prefetch", "LDIS",
             "LDIS+prefetch"});
    std::size_t idx = 0;
    for (const std::string &name : studiedBenchmarks()) {
        double base = results[idx++].mpki;
        double pf = results[idx++].mpki;
        double ldis = results[idx++].mpki;
        double both = results[idx++].mpki;
        t.addRow({name, Table::num(base, 2),
                  Table::num(percentReduction(base, pf), 1) + "%",
                  Table::num(percentReduction(base, ldis), 1) + "%",
                  Table::num(percentReduction(base, both), 1)
                      + "%"});
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("Prefetching wins on streaming benchmarks, LDIS on "
                "sparse ones; the combination covers both (Section "
                "9: LDIS removes unused words from demand and "
                "prefetched lines alike).\n\n");
    std::printf("%s", matrix.summary().c_str());
    return 0;
}
