/**
 * @file
 * Reproduces Figure 11: MPKI reduction of LDIS-3xTags (distill 6+2),
 * LDIS-4xTags (distill 5+3), CMPR-4xTags (compressed traditional
 * cache with 4x tags and perfect LRU) and FAC-4xTags (footprint-
 * aware compression in a 5+3 distill cache). The paper's headline:
 * FAC reduces average MPKI by ~50%, more than either LDIS or CMPR
 * alone — spatial filtering and compression interact positively.
 */

#include <cstdio>
#include <vector>

#include "common/table.hh"
#include "sim/runner.hh"
#include "sim/telemetry.hh"

using namespace ldis;

int
main()
{
    telemetry::setExperiment("fig11_fac");
    InstCount instructions = runLength();
    std::printf("Figure 11: LDIS vs compression vs footprint-aware "
                "compression (%% MPKI reduction, %llu "
                "instructions)\n\n",
                static_cast<unsigned long long>(instructions));

    const ConfigKind configs[] = {
        ConfigKind::LdisMTRC,   // LDIS-3xTags
        ConfigKind::Ldis4xTags, // LDIS-4xTags
        ConfigKind::Cmpr4xTags, // CMPR-4xTags
        ConfigKind::Fac4xTags,  // FAC-4xTags
    };

    RunMatrix matrix;
    for (const std::string &name : studiedBenchmarks()) {
        std::vector<ConfigKind> kinds{ConfigKind::Baseline1MB};
        for (ConfigKind kind : configs)
            kinds.push_back(kind);
        matrix.addReplayGroup(name, kinds, instructions);
    }
    const std::vector<RunResult> &results = matrix.run();

    Table t({"name", "base MPKI", "LDIS-3xTags", "LDIS-4xTags",
             "CMPR-4xTags", "FAC-4xTags"});
    double base_sum = 0.0;
    std::vector<double> cfg_sum(4, 0.0);

    std::size_t idx = 0;
    for (const std::string &name : studiedBenchmarks()) {
        const RunResult &base = results[idx++];
        base_sum += base.mpki;
        std::vector<std::string> row{name, Table::num(base.mpki, 2)};
        for (int c = 0; c < 4; ++c) {
            const RunResult &r = results[idx++];
            cfg_sum[c] += r.mpki;
            row.push_back(Table::num(
                percentReduction(base.mpki, r.mpki), 1) + "%");
        }
        t.addRow(row);
    }

    std::vector<std::string> avg{"avg", ""};
    for (int c = 0; c < 4; ++c)
        avg.push_back(Table::num(
            percentReduction(base_sum, cfg_sum[c]), 1) + "%");
    t.addRow(avg);

    std::printf("%s\n", t.render().c_str());
    std::printf("Paper: FAC beats both LDIS and CMPR on mcf, vpr, "
                "sixtrack, health; FAC averages ~50%% reduction.\n\n");
    std::printf("%s", matrix.summary().c_str());
    return 0;
}
