/**
 * @file
 * Ablation study of the distill cache's design choices (not a paper
 * figure; DESIGN.md section 4): WOC way-count sweep, fixed
 * distillation thresholds K = 1..8 vs the adaptive median threshold,
 * and leader-set count sensitivity of the reverter. Run on a
 * representative subset of proxies.
 */

#include <cstdio>
#include <vector>

#include "cache/hierarchy.hh"
#include "common/table.hh"
#include "distill/distill_cache.hh"
#include "sim/experiment.hh"

using namespace ldis;

namespace
{

double
mpkiFor(const std::string &name, const DistillParams &p,
        InstCount instructions)
{
    auto workload = makeBenchmark(name);
    DistillCache l2(p);
    return runTrace(*workload, l2, instructions).mpki;
}

const char *kBenchmarks[] = {"art", "mcf", "twolf", "sixtrack",
                             "swim"};

} // namespace

int
main()
{
    InstCount instructions = runLength(20'000'000);
    std::printf("Ablation: distill-cache design choices "
                "(%llu instructions)\n\n",
                static_cast<unsigned long long>(instructions));

    // --- WOC way-count sweep -------------------------------------
    std::printf("A. %% MPKI reduction vs baseline, by WOC ways "
                "(MT+RC):\n\n");
    Table t1({"name", "base MPKI", "1 way", "2 ways", "3 ways",
              "4 ways"});
    for (const char *name : kBenchmarks) {
        RunResult base = runTrace(name, ConfigKind::Baseline1MB,
                                  instructions);
        std::vector<std::string> row{name, Table::num(base.mpki, 2)};
        for (unsigned woc = 1; woc <= 4; ++woc) {
            DistillParams p;
            p.wocWays = woc;
            p.medianThreshold = true;
            p.useReverter = true;
            row.push_back(Table::num(
                percentReduction(base.mpki,
                                 mpkiFor(name, p, instructions)), 1)
                + "%");
        }
        t1.addRow(row);
    }
    std::printf("%s\n", t1.render().c_str());

    // --- Fixed threshold vs adaptive median ----------------------
    std::printf("B. %% MPKI reduction with fixed distillation "
                "thresholds (no RC), vs the adaptive median:\n\n");
    Table t2({"name", "K=1", "K=2", "K=4", "K=8", "median"});
    for (const char *name : kBenchmarks) {
        RunResult base = runTrace(name, ConfigKind::Baseline1MB,
                                  instructions);
        std::vector<std::string> row{name};
        for (unsigned k : {1u, 2u, 4u, 8u}) {
            DistillParams pk;
            pk.medianThreshold = true;
            pk.fixedThreshold = k;
            row.push_back(Table::num(
                percentReduction(base.mpki,
                                 mpkiFor(name, pk, instructions)),
                1) + "%");
        }
        DistillParams pm;
        pm.medianThreshold = true;
        row.push_back(Table::num(
            percentReduction(base.mpki,
                             mpkiFor(name, pm, instructions)), 1)
            + "%");
        t2.addRow(row);
    }
    std::printf("%s\n", t2.render().c_str());

    // --- WOC victim selection (footnote 4) ------------------------
    std::printf("B2. %% MPKI reduction by WOC victim policy "
                "(MT+RC) -- the paper claims random ~ LRU:\n\n");
    Table t2b({"name", "random", "round-robin"});
    for (const char *name : kBenchmarks) {
        RunResult base = runTrace(name, ConfigKind::Baseline1MB,
                                  instructions);
        std::vector<std::string> row{name};
        for (WocVictim policy :
             {WocVictim::Random, WocVictim::RoundRobin}) {
            DistillParams p;
            p.medianThreshold = true;
            p.useReverter = true;
            p.wocVictim = policy;
            row.push_back(Table::num(
                percentReduction(base.mpki,
                                 mpkiFor(name, p, instructions)), 1)
                + "%");
        }
        t2b.addRow(row);
    }
    std::printf("%s\n", t2b.render().c_str());

    // --- Leader-set count ----------------------------------------
    std::printf("C. %% MPKI reduction (MT+RC) by reverter leader-set "
                "count:\n\n");
    Table t3({"name", "8 leaders", "16", "32", "64", "128"});
    for (const char *name : kBenchmarks) {
        RunResult base = runTrace(name, ConfigKind::Baseline1MB,
                                  instructions);
        std::vector<std::string> row{name};
        for (unsigned leaders : {8u, 16u, 32u, 64u, 128u}) {
            DistillParams p;
            p.medianThreshold = true;
            p.useReverter = true;
            p.reverter.leaderSets = leaders;
            row.push_back(Table::num(
                percentReduction(base.mpki,
                                 mpkiFor(name, p, instructions)), 1)
                + "%");
        }
        t3.addRow(row);
    }
    std::printf("%s\n", t3.render().c_str());
    return 0;
}
